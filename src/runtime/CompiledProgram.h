//===--- CompiledProgram.h - Precompiled runtime fast path ------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The precompiled form of a ModuleIR that Machine executes. At Machine
/// construction each process body is flattened into dense arrays the hot
/// loop dispatches over with a single switch per operation:
///
///  * expressions become a postfix bytecode (XOp) with every operand
///    resolved at compile time — slot indices, field indices, union arms,
///    folded constants — so evaluation never chases AST pointers;
///  * patterns become a flat node pool (CPat) with match constants folded
///    where they are static, plus a top-level *discriminant* (union arm or
///    scalar constant) used by the channel dispatch tables to reject
///    non-matching readers without walking the pattern at all (§4.2's
///    "channel x pattern = port" dispatch, precomputed);
///  * instructions map 1:1 onto the IR instruction list (same indices, so
///    serialized PCs are unchanged) but carry pre-resolved operands and
///    bytecode ranges (CInst/CCase).
///
/// The compiled form also carries the per-channel static dispatch data the
/// scheduler's blocked-process bitmasks key on: which processes can ever
/// read a channel, and whether the channel's reader patterns are pairwise
/// statically disjoint (in which case the first matching reader is the
/// only possible one and dispatch can stop scanning).
///
/// Everything in here is immutable after build() and references the
/// ModuleIR/AST only for diagnostics (source locations, names) on error
/// paths; the per-step execution path is table lookups only.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_RUNTIME_COMPILEDPROGRAM_H
#define ESP_RUNTIME_COMPILEDPROGRAM_H

#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace esp {

/// One postfix bytecode operation. Operands are pre-resolved; `Origin` is
/// consulted only to format diagnostics when the operation faults.
struct XOp {
  enum class K : uint8_t {
    PushInt,        ///< push Imm as int
    PushBool,       ///< push Imm as bool
    LoadSlot,       ///< push Slots[A]; faults on uninitialized
    LoadField,      ///< pop record ref, push field A
    LoadUnionField, ///< pop union ref, push payload if Arm == A
    LoadIndex,      ///< pop index, pop array ref, push element
    Not,
    Neg,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Boolify,      ///< pop v, push bool(v) — RHS of && / ||
    AndJump,      ///< pop v; if !v push false and jump to A
    OrJump,       ///< pop v; if v push true and jump to A
    AllocRecord,  ///< allocate record of A elems, push ref
    SetElem,      ///< pop v, store into elem A of ref at stack top
    AllocUnion,   ///< allocate union, push ref
    SetUnionElem, ///< pop v, set arm A + payload of ref at stack top
    AllocArray,   ///< pop size, allocate array, push ref
    FillArray,    ///< pop init, fill the array ref at stack top
    CastCopy,     ///< pop v, push deep copy
  };

  K Op = K::PushInt;
  /// SetElem/SetUnionElem: the stored child is *borrowed* (not a fresh
  /// allocation) and needs a link edge. FillArray/CastCopy: the
  /// operand expression was a fresh allocation.
  uint8_t Flag = 0;
  uint32_t A = 0;     ///< Slot / field index / arm / elem count / jump target.
  int64_t Imm = 0;    ///< Folded constant.
  const Type *Ty = nullptr;     ///< Allocation type.
  const Expr *Origin = nullptr; ///< Diagnostics only (loc, names).
};

/// A half-open range of bytecode in CompiledProc::Code. Empty = absent.
struct XRange {
  uint32_t Begin = 0;
  uint32_t End = 0;
  bool empty() const { return Begin == End; }
};

/// One flattened pattern node. Children live in CompiledProc::PatChildren
/// [ChildBegin, ChildBegin+NumChildren).
struct CPat {
  PatternKind Kind = PatternKind::Bind;
  uint32_t Slot = 0;      ///< Bind: destination slot.
  bool IsStatic = false;  ///< Match: expression folded at compile time.
  int64_t Const = 0;      ///< Match (static): folded value.
  XRange Code;            ///< Match (dynamic): expression bytecode.
  int32_t Arm = -1;       ///< Union: required arm.
  uint32_t ChildBegin = 0;
  uint32_t NumChildren = 0;
  const Pattern *Src = nullptr; ///< Diagnostics only.
};

constexpr uint32_t kNoPattern = UINT32_MAX;

/// The top-level discriminant of a reader pattern, used to reject a
/// message without a pattern walk (the dispatch-table entry).
struct CaseDisc {
  enum class K : uint8_t { None, UnionArm, Scalar } Kind = K::None;
  int32_t Arm = -1;
  int64_t Scalar = 0;
};

/// One compiled alternative of a Block instruction.
struct CCase {
  XRange Guard;             ///< Empty = always enabled.
  XRange Out;               ///< Writer expression (non-elided).
  std::vector<XRange> ElideFields; ///< Per-field bytecode when elided.
  std::vector<uint8_t> ElideFieldIsAlloc; ///< Field expr is an allocation.
  uint32_t Pat = kNoPattern; ///< Reader pattern (compiled node index).
  CaseDisc Disc;             ///< Reader pattern discriminant.
  uint32_t ChanId = 0;
  uint32_t Target = 0;
  bool IsIn = false;
  bool LazyOut = false;
  bool ElideRecordAlloc = false;
  bool MatchFree = false;
  bool OutIsAlloc = false; ///< Out expression is a fresh allocation.
  const IRCase *Src = nullptr; ///< ChannelDecl, Loc, Out expr for diags.
};

/// One compiled instruction; indices coincide with ProcIR::Insts.
struct CInst {
  InstKind Kind = InstKind::Halt;

  XRange Code;         ///< DeclInit/Link/Unlink RHS; Branch/Assert Cond;
                       ///< Store: RHS (+ destination addressing).
  uint32_t Slot = 0;   ///< DeclInit destination.
  uint32_t Target = 0; ///< Branch/Jump.

  // Store.
  enum class StoreKind : uint8_t { None, Slot, Field, UnionField, Index,
                                   Destructure };
  StoreKind Store = StoreKind::None;
  uint32_t StoreA = 0;      ///< Slot / field index / arm.
  XRange StoreAddr;         ///< Field/Index: base address bytecode.
  XRange StoreIdx;          ///< Index: index bytecode.
  uint32_t Pat = kNoPattern; ///< Destructure pattern.
  bool RhsIsAlloc = false;   ///< Destructure RHS is a fresh allocation.

  std::vector<CCase> Cases; ///< Block.
  const Inst *Src = nullptr; ///< Diagnostics only.
};

/// One compiled process.
struct CompiledProc {
  std::vector<CInst> Insts;
  std::vector<XOp> Code;
  std::vector<CPat> Pats;
  std::vector<uint32_t> PatChildren;
};

/// Per-channel static dispatch data.
struct ChannelInfo {
  /// Every reader pattern pair on this channel is statically disjoint: a
  /// message matches at most one reader, so dispatch stops at the first.
  bool Disjoint = false;
  /// Bit I set: process I contains a Block in-case on this channel
  /// somewhere in its body (static reachability, used for the harness's
  /// environment-receive rule).
  std::vector<uint64_t> StaticReaders;
};

/// The whole precompiled module. Built once in the Machine constructor.
struct CompiledProgram {
  std::vector<CompiledProc> Procs;
  std::vector<ChannelInfo> Channels;
  uint32_t MaskWords = 0; ///< ceil(numProcs / 64): words per process mask.

  static CompiledProgram build(const ModuleIR &Module);
};

} // namespace esp

#endif // ESP_RUNTIME_COMPILEDPROGRAM_H

//===--- Heap.h - ESP runtime values and refcounted heap --------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ESP value model: scalars are immediate; records, unions, and
/// arrays are reference-counted heap objects (§4.4). The heap implements
/// the paper's explicit management scheme:
///
///  * allocation sets the reference count to 1,
///  * `link` increments, `unlink` decrements and frees at zero,
///    recursively unlinking the objects pointed to,
///  * every access checks that the object is live (the assertion the ESP
///    compiler inserts in the SPIN translation, §5.2),
///  * the object table can be bounded (`MaxObjects`), in which case
///    exhaustion signals a leak — the paper's leak-detection mechanism.
///
/// References carry a generation counter so use-after-free is detected
/// even when object slots are reused.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_RUNTIME_HEAP_H
#define ESP_RUNTIME_HEAP_H

#include "frontend/Type.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace esp {

/// One ESP runtime value: an int, a bool, or a reference to a heap
/// object. Default-constructed values are Uninit; evaluating one is a
/// runtime error (ESP requires initialization at declaration).
struct Value {
  enum class Kind : uint8_t { Uninit, Int, Bool, Ref };

  Kind K = Kind::Uninit;
  int64_t Scalar = 0;
  uint32_t Ref = 0;
  uint32_t Gen = 0;

  static Value makeInt(int64_t V) {
    Value Out;
    Out.K = Kind::Int;
    Out.Scalar = V;
    return Out;
  }
  static Value makeBool(bool V) {
    Value Out;
    Out.K = Kind::Bool;
    Out.Scalar = V ? 1 : 0;
    return Out;
  }
  static Value makeRef(uint32_t Index, uint32_t Gen) {
    Value Out;
    Out.K = Kind::Ref;
    Out.Ref = Index;
    Out.Gen = Gen;
    return Out;
  }

  bool isRef() const { return K == Kind::Ref; }
  bool isUninit() const { return K == Kind::Uninit; }
  bool asBool() const { return Scalar != 0; }

  /// Scalar equality; references compare by identity.
  friend bool operator==(const Value &A, const Value &B) {
    if (A.K != B.K)
      return false;
    if (A.K == Kind::Ref)
      return A.Ref == B.Ref && A.Gen == B.Gen;
    return A.Scalar == B.Scalar;
  }
};

/// One heap object: a record (Elems = fields), array (Elems = elements),
/// or union (Elems has a single entry, Arm names the valid field).
struct HeapObject {
  const Type *ObjType = nullptr;
  uint32_t RefCount = 0;
  uint32_t Gen = 0;
  bool Live = false;
  int32_t Arm = -1;
  std::vector<Value> Elems;
};

/// Outcomes of heap operations that can fail.
enum class HeapStatus : uint8_t {
  OK,
  DeadObject,   ///< Access/link/unlink of a freed object.
  OutOfObjects, ///< Bounded table exhausted (leak indicator, §5.2).
};

/// The reference-counted object heap. Copyable so the model checker can
/// snapshot machine states.
class Heap {
public:
  /// \p MaxObjects of 0 means unbounded. When \p ReuseIds is true, freed
  /// slots are recycled (the paper's reclaimed objectIds); generations
  /// keep use-after-free detectable.
  explicit Heap(uint32_t MaxObjects = 0, bool ReuseIds = true)
      : MaxObjects(MaxObjects), ReuseIds(ReuseIds) {}

  /// Allocates an object with \p NumElems uninitialized elements and
  /// reference count 1. Returns std::nullopt when the bounded table is
  /// exhausted.
  std::optional<Value> allocate(const Type *T, size_t NumElems);

  /// Returns the object behind \p V if it is live; null otherwise.
  HeapObject *deref(const Value &V);
  const HeapObject *deref(const Value &V) const;

  bool isLive(const Value &V) const { return deref(V) != nullptr; }

  /// rc++ (the `link` primitive). Fails on dead objects.
  HeapStatus link(const Value &V);

  /// rc-- (the `unlink` primitive); frees at zero and recursively unlinks
  /// the objects pointed to (§4.4). Fails on dead objects.
  HeapStatus unlink(const Value &V);

  // Statistics for the benchmarks and the verifier report.
  uint64_t getTotalAllocations() const { return TotalAllocations; }
  uint32_t getLiveCount() const { return LiveCount; }
  uint32_t getHighWater() const { return HighWater; }
  uint32_t getMaxObjects() const { return MaxObjects; }

  /// All live object indices (for leak sweeps and serialization).
  const std::vector<HeapObject> &objects() const { return Objects; }

private:
  void freeObject(uint32_t Index);

  uint32_t MaxObjects;
  bool ReuseIds;
  std::vector<HeapObject> Objects;
  std::vector<uint32_t> FreeList;
  uint64_t TotalAllocations = 0;
  uint32_t LiveCount = 0;
  uint32_t HighWater = 0;
};

} // namespace esp

#endif // ESP_RUNTIME_HEAP_H

//===--- Heap.h - ESP runtime values and refcounted heap --------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ESP value model: scalars are immediate; records, unions, and
/// arrays are reference-counted heap objects (§4.4). The heap implements
/// the paper's explicit management scheme:
///
///  * allocation sets the reference count to 1,
///  * `link` increments, `unlink` decrements and frees at zero,
///    recursively unlinking the objects pointed to,
///  * every access checks that the object is live (the assertion the ESP
///    compiler inserts in the SPIN translation, §5.2),
///  * the object table can be bounded (`MaxObjects`), in which case
///    exhaustion signals a leak — the paper's leak-detection mechanism.
///
/// Allocation is a free-list pop: freed slots are recycled in LIFO order
/// and keep their element storage, so steady-state firmware allocation
/// touches no allocator. References carry a generation counter with a
/// parity invariant — a live object's generation is even, a freed one's
/// odd (free and reuse each bump it) — so the execution-mode liveness
/// check is a single generation compare that detects use-after-free even
/// across slot reuse. Verification mode (`setFullChecks`) additionally
/// validates the explicit live flag and the parity invariant on every
/// dereference.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_RUNTIME_HEAP_H
#define ESP_RUNTIME_HEAP_H

#include "frontend/Type.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace esp {

/// One ESP runtime value: an int, a bool, or a reference to a heap
/// object. Default-constructed values are Uninit; evaluating one is a
/// runtime error (ESP requires initialization at declaration).
struct Value {
  enum class Kind : uint8_t { Uninit, Int, Bool, Ref };

  Kind K = Kind::Uninit;
  int64_t Scalar = 0;
  uint32_t Ref = 0;
  uint32_t Gen = 0;

  static Value makeInt(int64_t V) {
    Value Out;
    Out.K = Kind::Int;
    Out.Scalar = V;
    return Out;
  }
  static Value makeBool(bool V) {
    Value Out;
    Out.K = Kind::Bool;
    Out.Scalar = V ? 1 : 0;
    return Out;
  }
  static Value makeRef(uint32_t Index, uint32_t Gen) {
    Value Out;
    Out.K = Kind::Ref;
    Out.Ref = Index;
    Out.Gen = Gen;
    return Out;
  }

  bool isRef() const { return K == Kind::Ref; }
  bool isUninit() const { return K == Kind::Uninit; }
  bool asBool() const { return Scalar != 0; }

  /// Scalar equality; references compare by identity.
  friend bool operator==(const Value &A, const Value &B) {
    if (A.K != B.K)
      return false;
    if (A.K == Kind::Ref)
      return A.Ref == B.Ref && A.Gen == B.Gen;
    return A.Scalar == B.Scalar;
  }
};

/// One heap object: a record (Elems = fields), array (Elems = elements),
/// or union (Elems has a single entry, Arm names the valid field).
/// Invariant: Live <=> (Gen & 1) == 0 once the slot has been allocated.
struct HeapObject {
  const Type *ObjType = nullptr;
  uint32_t RefCount = 0;
  uint32_t Gen = 0;
  bool Live = false;
  int32_t Arm = -1;
  std::vector<Value> Elems;
};

/// Outcomes of heap operations that can fail.
enum class HeapStatus : uint8_t {
  OK,
  DeadObject,   ///< Access/link/unlink of a freed object.
  OutOfObjects, ///< Bounded table exhausted (leak indicator, §5.2).
};

/// The reference-counted object heap. Copyable so the model checker can
/// snapshot machine states.
class Heap {
public:
  /// \p MaxObjects of 0 means unbounded. When \p ReuseIds is true, freed
  /// slots are recycled (the paper's reclaimed objectIds); generations
  /// keep use-after-free detectable.
  explicit Heap(uint32_t MaxObjects = 0, bool ReuseIds = true)
      : MaxObjects(MaxObjects), ReuseIds(ReuseIds) {}

  /// Verification mode: validate the Live flag and the generation-parity
  /// invariant on every dereference, not just the generation compare.
  void setFullChecks(bool Enable) { FullChecks = Enable; }

  /// Allocates an object with \p NumElems uninitialized elements and
  /// reference count 1. Returns std::nullopt when the bounded table is
  /// exhausted. Pops the free list when a recycled slot is available; the
  /// slot's generation is bumped back to even (live).
  std::optional<Value> allocate(const Type *T, size_t NumElems) {
    uint32_t Index;
    if (ReuseIds && FreeHead != kNoFree) {
      Index = FreeHead;
      FreeHead = NextFree[Index];
      ++Objects[Index].Gen; // Odd (freed) -> even (live again).
    } else {
      if (MaxObjects != 0 && Objects.size() >= MaxObjects)
        return std::nullopt;
      Index = static_cast<uint32_t>(Objects.size());
      Objects.emplace_back();
      NextFree.push_back(kNoFree);
    }
    HeapObject &Obj = Objects[Index];
    Obj.ObjType = T;
    Obj.RefCount = 1;
    Obj.Live = true;
    Obj.Arm = -1;
    Obj.Elems.assign(NumElems, Value()); // Reuses the slot's capacity.
    ++TotalAllocations;
    ++LiveCount;
    if (LiveCount > HighWater)
      HighWater = LiveCount;
    return Value::makeRef(Index, Obj.Gen);
  }

  /// Returns the object behind \p V if it is live; null otherwise. The
  /// generation-parity invariant makes the generation compare alone a
  /// complete use-after-free test: handed-out generations are always
  /// even, and both freeing and reusing a slot change its generation.
  HeapObject *deref(const Value &V) {
    if (!V.isRef() || V.Ref >= Objects.size())
      return nullptr;
    HeapObject &Obj = Objects[V.Ref];
    if (Obj.Gen != V.Gen)
      return nullptr;
    if (FullChecks) {
      assert(Obj.Live == ((Obj.Gen & 1) == 0) && "generation parity broken");
      if (!Obj.Live)
        return nullptr;
    }
    return &Obj;
  }
  const HeapObject *deref(const Value &V) const {
    return const_cast<Heap *>(this)->deref(V);
  }

  bool isLive(const Value &V) const { return deref(V) != nullptr; }

  /// rc++ (the `link` primitive). Fails on dead objects.
  HeapStatus link(const Value &V) {
    HeapObject *Obj = deref(V);
    if (!Obj)
      return HeapStatus::DeadObject;
    ++Obj->RefCount;
    return HeapStatus::OK;
  }

  /// rc-- (the `unlink` primitive); frees at zero and recursively unlinks
  /// the objects pointed to (§4.4). Fails on dead objects.
  HeapStatus unlink(const Value &V);

  /// Returns the heap to its freshly-constructed state while keeping the
  /// arena: the object table and every slot's element buffer keep their
  /// capacity, so the next occupant allocates without touching the
  /// native allocator (the serve runtime recycles a connection's machine
  /// this way). Live slots are freed (generation bumped to odd, so any
  /// stale reference stays detectable) and the free list is rebuilt in
  /// ascending slot order — a reset heap hands out ids 0, 1, 2, ... like
  /// a fresh one. All statistics reset to zero.
  void reset();

  // Statistics for the benchmarks and the verifier report.
  uint64_t getTotalAllocations() const { return TotalAllocations; }
  uint32_t getLiveCount() const { return LiveCount; }
  uint32_t getHighWater() const { return HighWater; }
  uint32_t getMaxObjects() const { return MaxObjects; }

  /// All live object indices (for leak sweeps and serialization).
  const std::vector<HeapObject> &objects() const { return Objects; }

private:
  static constexpr uint32_t kNoFree = UINT32_MAX;

  void freeObject(uint32_t Index);

  uint32_t MaxObjects;
  bool ReuseIds;
  bool FullChecks = false;
  std::vector<HeapObject> Objects;
  /// Intrusive free list: NextFree[I] chains freed slots from FreeHead.
  std::vector<uint32_t> NextFree;
  uint32_t FreeHead = kNoFree;
  /// Scratch for the iterative unlink walk (kept to avoid per-unlink
  /// allocation; always empty between calls).
  std::vector<Value> UnlinkScratch;
  uint64_t TotalAllocations = 0;
  uint32_t LiveCount = 0;
  uint32_t HighWater = 0;
};

} // namespace esp

#endif // ESP_RUNTIME_HEAP_H

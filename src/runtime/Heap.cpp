//===--- Heap.cpp - ESP runtime values and refcounted heap -----------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include <cassert>

using namespace esp;

void Heap::freeObject(uint32_t Index) {
  HeapObject &Obj = Objects[Index];
  assert(Obj.Live && "double free");
  assert((Obj.Gen & 1) == 0 && "freeing a slot with odd (dead) generation");
  Obj.Live = false;
  ++Obj.Gen; // Even (live) -> odd (freed): invalidates outstanding refs.
  // Keep the element buffer's capacity for the next occupant of the slot.
  Obj.Elems.clear();
  --LiveCount;
  if (ReuseIds) {
    NextFree[Index] = FreeHead;
    FreeHead = Index;
  }
}

void Heap::reset() {
  FreeHead = kNoFree;
  for (uint32_t Index = static_cast<uint32_t>(Objects.size()); Index-- > 0;) {
    HeapObject &Obj = Objects[Index];
    if (Obj.Live) {
      Obj.Live = false;
      ++Obj.Gen; // Even (live) -> odd (freed): invalidates outstanding refs.
    }
    Obj.ObjType = nullptr;
    Obj.RefCount = 0;
    Obj.Arm = -1;
    Obj.Elems.clear(); // Capacity stays with the slot: the arena reuse.
    // High-to-low chaining leaves FreeHead at slot 0, so a reset heap
    // pops ids in the same ascending order a fresh heap appends them.
    NextFree[Index] = FreeHead;
    FreeHead = Index;
  }
  TotalAllocations = 0;
  LiveCount = 0;
  HighWater = 0;
}

HeapStatus Heap::unlink(const Value &V) {
  // Iterative recursive-unlink to avoid unbounded native recursion on
  // deep object graphs. The scratch worklist is a member so steady-state
  // unlinks are allocation-free.
  UnlinkScratch.clear();
  UnlinkScratch.push_back(V);
  while (!UnlinkScratch.empty()) {
    Value Current = UnlinkScratch.back();
    UnlinkScratch.pop_back();
    HeapObject *Obj = deref(Current);
    if (!Obj)
      return HeapStatus::DeadObject;
    assert(Obj->RefCount > 0 && "live object with zero refcount");
    if (--Obj->RefCount != 0)
      continue;
    // Queue the children, then free: freeObject clears the element list
    // (the object is dead; the slot keeps the buffer for reuse).
    for (const Value &Child : Obj->Elems)
      if (Child.isRef())
        UnlinkScratch.push_back(Child);
    freeObject(Current.Ref);
  }
  return HeapStatus::OK;
}

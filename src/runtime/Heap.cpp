//===--- Heap.cpp - ESP runtime values and refcounted heap -----------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include <cassert>

using namespace esp;

std::optional<Value> Heap::allocate(const Type *T, size_t NumElems) {
  uint32_t Index;
  if (ReuseIds && !FreeList.empty()) {
    Index = FreeList.back();
    FreeList.pop_back();
  } else {
    if (MaxObjects != 0 && Objects.size() >= MaxObjects)
      return std::nullopt;
    Index = static_cast<uint32_t>(Objects.size());
    Objects.emplace_back();
  }
  HeapObject &Obj = Objects[Index];
  Obj.ObjType = T;
  Obj.RefCount = 1;
  Obj.Live = true;
  Obj.Arm = -1;
  Obj.Elems.assign(NumElems, Value());
  ++TotalAllocations;
  ++LiveCount;
  if (LiveCount > HighWater)
    HighWater = LiveCount;
  return Value::makeRef(Index, Obj.Gen);
}

HeapObject *Heap::deref(const Value &V) {
  if (!V.isRef() || V.Ref >= Objects.size())
    return nullptr;
  HeapObject &Obj = Objects[V.Ref];
  if (!Obj.Live || Obj.Gen != V.Gen)
    return nullptr;
  return &Obj;
}

const HeapObject *Heap::deref(const Value &V) const {
  return const_cast<Heap *>(this)->deref(V);
}

HeapStatus Heap::link(const Value &V) {
  HeapObject *Obj = deref(V);
  if (!Obj)
    return HeapStatus::DeadObject;
  ++Obj->RefCount;
  return HeapStatus::OK;
}

void Heap::freeObject(uint32_t Index) {
  HeapObject &Obj = Objects[Index];
  assert(Obj.Live && "double free");
  Obj.Live = false;
  ++Obj.Gen; // Invalidate outstanding references.
  --LiveCount;
  if (ReuseIds)
    FreeList.push_back(Index);
}

HeapStatus Heap::unlink(const Value &V) {
  // Iterative recursive-unlink to avoid unbounded native recursion on
  // deep object graphs.
  std::vector<Value> Worklist = {V};
  while (!Worklist.empty()) {
    Value Current = Worklist.back();
    Worklist.pop_back();
    HeapObject *Obj = deref(Current);
    if (!Obj)
      return HeapStatus::DeadObject;
    assert(Obj->RefCount > 0 && "live object with zero refcount");
    if (--Obj->RefCount != 0)
      continue;
    // Free and recursively unlink children. Move the element list out
    // first: freeObject invalidates the object.
    std::vector<Value> Children = std::move(Obj->Elems);
    freeObject(Current.Ref);
    for (const Value &Child : Children)
      if (Child.isRef())
        Worklist.push_back(Child);
  }
  return HeapStatus::OK;
}

//===--- CompiledProgram.cpp - Precompiled runtime fast path ---------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/CompiledProgram.h"

#include "frontend/PatternAnalysis.h"
#include "frontend/Sema.h"

#include <cassert>

using namespace esp;

namespace {

bool exprIsAllocation(const Expr *E) {
  switch (E->getKind()) {
  case ExprKind::RecordLit:
  case ExprKind::UnionLit:
  case ExprKind::ArrayLit:
  case ExprKind::Cast:
    return true;
  default:
    return false;
  }
}

/// Compiles expressions and patterns of one process into the flat arrays.
class ProcCompiler {
public:
  ProcCompiler(CompiledProc &Out, const ProcIR &PIR)
      : Out(Out), Proc(PIR.Proc) {}

  XRange expr(const Expr *E) {
    XRange R;
    R.Begin = static_cast<uint32_t>(Out.Code.size());
    emitExpr(E);
    R.End = static_cast<uint32_t>(Out.Code.size());
    return R;
  }

  uint32_t pattern(const Pattern *P) {
    uint32_t Index = static_cast<uint32_t>(Out.Pats.size());
    Out.Pats.emplace_back();
    {
      CPat &N = Out.Pats[Index];
      N.Kind = P->getKind();
      N.Src = P;
    }
    switch (P->getKind()) {
    case PatternKind::Bind:
      Out.Pats[Index].Slot = ast_cast<BindPattern>(P)->getVar()->Slot;
      break;
    case PatternKind::Match: {
      const Expr *V = ast_cast<MatchPattern>(P)->getValue();
      if (std::optional<int64_t> Folded = tryEvalStatic(V, Proc)) {
        Out.Pats[Index].IsStatic = true;
        Out.Pats[Index].Const = *Folded;
      } else {
        XRange Code = expr(V);
        Out.Pats[Index].Code = Code;
      }
      break;
    }
    case PatternKind::Record: {
      const RecordPattern *R = ast_cast<RecordPattern>(P);
      std::vector<uint32_t> Kids;
      Kids.reserve(R->getElems().size());
      for (const Pattern *Elem : R->getElems())
        Kids.push_back(pattern(Elem));
      Out.Pats[Index].ChildBegin =
          static_cast<uint32_t>(Out.PatChildren.size());
      Out.Pats[Index].NumChildren = static_cast<uint32_t>(Kids.size());
      Out.PatChildren.insert(Out.PatChildren.end(), Kids.begin(), Kids.end());
      break;
    }
    case PatternKind::Union: {
      const UnionPattern *U = ast_cast<UnionPattern>(P);
      uint32_t Kid = pattern(U->getSub());
      Out.Pats[Index].Arm = U->getFieldIndex();
      Out.Pats[Index].ChildBegin =
          static_cast<uint32_t>(Out.PatChildren.size());
      Out.Pats[Index].NumChildren = 1;
      Out.PatChildren.push_back(Kid);
      break;
    }
    }
    return Index;
  }

private:
  uint32_t emit(XOp Op) {
    Out.Code.push_back(Op);
    return static_cast<uint32_t>(Out.Code.size() - 1);
  }

  void emitExpr(const Expr *E) {
    switch (E->getKind()) {
    case ExprKind::IntLit: {
      XOp Op;
      Op.Op = XOp::K::PushInt;
      Op.Imm = ast_cast<IntLitExpr>(E)->getValue();
      Op.Origin = E;
      emit(Op);
      return;
    }
    case ExprKind::BoolLit: {
      XOp Op;
      Op.Op = XOp::K::PushBool;
      Op.Imm = ast_cast<BoolLitExpr>(E)->getValue() ? 1 : 0;
      Op.Origin = E;
      emit(Op);
      return;
    }
    case ExprKind::SelfId: {
      XOp Op;
      Op.Op = XOp::K::PushInt;
      Op.Imm = Proc->ProcessId;
      Op.Origin = E;
      emit(Op);
      return;
    }
    case ExprKind::VarRef: {
      const VarRefExpr *V = ast_cast<VarRefExpr>(E);
      XOp Op;
      Op.Origin = E;
      if (const ConstDecl *C = V->getConst()) {
        Op.Op = C->ConstType->isBool() ? XOp::K::PushBool : XOp::K::PushInt;
        Op.Imm = C->ConstType->isBool() ? (C->Value != 0 ? 1 : 0) : C->Value;
      } else {
        Op.Op = XOp::K::LoadSlot;
        Op.A = V->getVar()->Slot;
      }
      emit(Op);
      return;
    }
    case ExprKind::Field: {
      const FieldExpr *F = ast_cast<FieldExpr>(E);
      emitExpr(F->getBase());
      XOp Op;
      Op.Op = F->getBase()->getType()->isUnion() ? XOp::K::LoadUnionField
                                                 : XOp::K::LoadField;
      Op.A = static_cast<uint32_t>(F->getFieldIndex());
      Op.Origin = E;
      emit(Op);
      return;
    }
    case ExprKind::Index: {
      const IndexExpr *I = ast_cast<IndexExpr>(E);
      emitExpr(I->getBase());
      emitExpr(I->getIndex());
      XOp Op;
      Op.Op = XOp::K::LoadIndex;
      Op.Origin = E;
      emit(Op);
      return;
    }
    case ExprKind::Unary: {
      const UnaryExpr *U = ast_cast<UnaryExpr>(E);
      emitExpr(U->getSub());
      XOp Op;
      Op.Op = U->getOp() == UnaryOp::Not ? XOp::K::Not : XOp::K::Neg;
      Op.Origin = E;
      emit(Op);
      return;
    }
    case ExprKind::Binary: {
      const BinaryExpr *B = ast_cast<BinaryExpr>(E);
      if (B->getOp() == BinaryOp::And || B->getOp() == BinaryOp::Or) {
        emitExpr(B->getLHS());
        XOp Jump;
        Jump.Op = B->getOp() == BinaryOp::And ? XOp::K::AndJump
                                              : XOp::K::OrJump;
        Jump.Origin = E;
        uint32_t JumpAt = emit(Jump);
        emitExpr(B->getRHS());
        XOp Cast;
        Cast.Op = XOp::K::Boolify;
        Cast.Origin = E;
        emit(Cast);
        Out.Code[JumpAt].A = static_cast<uint32_t>(Out.Code.size());
        return;
      }
      emitExpr(B->getLHS());
      emitExpr(B->getRHS());
      XOp Op;
      Op.Origin = E;
      switch (B->getOp()) {
      case BinaryOp::Add: Op.Op = XOp::K::Add; break;
      case BinaryOp::Sub: Op.Op = XOp::K::Sub; break;
      case BinaryOp::Mul: Op.Op = XOp::K::Mul; break;
      case BinaryOp::Div: Op.Op = XOp::K::Div; break;
      case BinaryOp::Mod: Op.Op = XOp::K::Mod; break;
      case BinaryOp::Lt: Op.Op = XOp::K::Lt; break;
      case BinaryOp::Le: Op.Op = XOp::K::Le; break;
      case BinaryOp::Gt: Op.Op = XOp::K::Gt; break;
      case BinaryOp::Ge: Op.Op = XOp::K::Ge; break;
      case BinaryOp::Eq: Op.Op = XOp::K::Eq; break;
      case BinaryOp::Ne: Op.Op = XOp::K::Ne; break;
      case BinaryOp::And:
      case BinaryOp::Or:
        assert(false && "handled above");
        break;
      }
      emit(Op);
      return;
    }
    case ExprKind::RecordLit: {
      const RecordLitExpr *R = ast_cast<RecordLitExpr>(E);
      XOp Alloc;
      Alloc.Op = XOp::K::AllocRecord;
      Alloc.A = static_cast<uint32_t>(R->getElems().size());
      Alloc.Ty = E->getType();
      Alloc.Origin = E;
      emit(Alloc);
      for (size_t I = 0, N = R->getElems().size(); I != N; ++I) {
        const Expr *Elem = R->getElems()[I];
        emitExpr(Elem);
        XOp Set;
        Set.Op = XOp::K::SetElem;
        Set.A = static_cast<uint32_t>(I);
        Set.Flag = exprIsAllocation(Elem) ? 0 : 1; // Borrowed child: link.
        Set.Origin = Elem;
        emit(Set);
      }
      return;
    }
    case ExprKind::UnionLit: {
      const UnionLitExpr *U = ast_cast<UnionLitExpr>(E);
      XOp Alloc;
      Alloc.Op = XOp::K::AllocUnion;
      Alloc.Ty = E->getType();
      Alloc.Origin = E;
      emit(Alloc);
      emitExpr(U->getValue());
      XOp Set;
      Set.Op = XOp::K::SetUnionElem;
      Set.A = static_cast<uint32_t>(U->getFieldIndex());
      Set.Flag = exprIsAllocation(U->getValue()) ? 0 : 1;
      Set.Origin = U->getValue();
      emit(Set);
      return;
    }
    case ExprKind::ArrayLit: {
      const ArrayLitExpr *A = ast_cast<ArrayLitExpr>(E);
      emitExpr(A->getSize());
      XOp Alloc;
      Alloc.Op = XOp::K::AllocArray;
      Alloc.Ty = E->getType();
      Alloc.Origin = E;
      emit(Alloc);
      emitExpr(A->getInit());
      XOp Fill;
      Fill.Op = XOp::K::FillArray;
      Fill.Flag = exprIsAllocation(A->getInit()) ? 1 : 0;
      Fill.Origin = A->getInit();
      emit(Fill);
      return;
    }
    case ExprKind::Cast: {
      const CastExpr *C = ast_cast<CastExpr>(E);
      emitExpr(C->getSub());
      XOp Op;
      Op.Op = XOp::K::CastCopy;
      Op.Flag = exprIsAllocation(C->getSub()) ? 1 : 0;
      Op.Origin = E;
      emit(Op);
      return;
    }
    }
    assert(false && "unhandled expression kind");
  }

  CompiledProc &Out;
  const ProcessDecl *Proc;
};

CaseDisc discOfPattern(const CompiledProc &P, uint32_t PatIndex) {
  CaseDisc Disc;
  const CPat &Root = P.Pats[PatIndex];
  if (Root.Kind == PatternKind::Union) {
    Disc.Kind = CaseDisc::K::UnionArm;
    Disc.Arm = Root.Arm;
  } else if (Root.Kind == PatternKind::Match && Root.IsStatic) {
    Disc.Kind = CaseDisc::K::Scalar;
    Disc.Scalar = Root.Const;
  }
  return Disc;
}

void compileInst(ProcCompiler &PC, CompiledProc &Out, const Inst &I) {
  Out.Insts.emplace_back();
  size_t Index = Out.Insts.size() - 1;
  // Note: PC.expr()/PC.pattern() may grow Out vectors; write through the
  // index, never a held reference.
  Out.Insts[Index].Kind = I.Kind;
  Out.Insts[Index].Src = &I;
  switch (I.Kind) {
  case InstKind::DeclInit:
    Out.Insts[Index].Slot = I.Var->Slot;
    Out.Insts[Index].Code = PC.expr(I.RHS);
    return;
  case InstKind::Link:
  case InstKind::Unlink:
    Out.Insts[Index].Code = PC.expr(I.RHS);
    return;
  case InstKind::Branch:
  case InstKind::Assert:
    Out.Insts[Index].Code = PC.expr(I.Cond);
    Out.Insts[Index].Target = I.Target;
    return;
  case InstKind::Jump:
    Out.Insts[Index].Target = I.Target;
    return;
  case InstKind::Halt:
    return;
  case InstKind::Store: {
    XRange Rhs = PC.expr(I.RHS);
    Out.Insts[Index].Code = Rhs;
    if (!I.PlainStore) {
      Out.Insts[Index].Store = CInst::StoreKind::Destructure;
      Out.Insts[Index].Pat = PC.pattern(I.LHS);
      Out.Insts[Index].RhsIsAlloc = exprIsAllocation(I.RHS);
      return;
    }
    const Expr *Target = ast_cast<MatchPattern>(I.LHS)->getValue();
    if (const VarRefExpr *V = ast_dyn_cast<VarRefExpr>(Target)) {
      Out.Insts[Index].Store = CInst::StoreKind::Slot;
      Out.Insts[Index].StoreA = V->getVar()->Slot;
      return;
    }
    if (const FieldExpr *F = ast_dyn_cast<FieldExpr>(Target)) {
      Out.Insts[Index].Store = F->getBase()->getType()->isUnion()
                                   ? CInst::StoreKind::UnionField
                                   : CInst::StoreKind::Field;
      Out.Insts[Index].StoreA = static_cast<uint32_t>(F->getFieldIndex());
      Out.Insts[Index].StoreAddr = PC.expr(F->getBase());
      return;
    }
    const IndexExpr *Ix = ast_cast<IndexExpr>(Target);
    Out.Insts[Index].Store = CInst::StoreKind::Index;
    Out.Insts[Index].StoreAddr = PC.expr(Ix->getBase());
    Out.Insts[Index].StoreIdx = PC.expr(Ix->getIndex());
    return;
  }
  case InstKind::Block: {
    for (const IRCase &Case : I.Cases) {
      CCase C;
      C.Src = &Case;
      C.ChanId = Case.Channel->Id;
      C.Target = Case.Target;
      C.IsIn = Case.IsIn;
      C.LazyOut = Case.LazyOut;
      C.ElideRecordAlloc = Case.ElideRecordAlloc;
      C.MatchFree = Case.MatchFree;
      if (Case.Guard)
        C.Guard = PC.expr(Case.Guard);
      if (Case.IsIn) {
        C.Pat = PC.pattern(Case.Pat);
        // Note: pattern() appends to Out.Pats; safe, C is a local.
      } else if (Case.ElideRecordAlloc) {
        const RecordLitExpr *R = ast_cast<RecordLitExpr>(Case.Out);
        for (const Expr *Elem : R->getElems()) {
          C.ElideFields.push_back(PC.expr(Elem));
          C.ElideFieldIsAlloc.push_back(exprIsAllocation(Elem) ? 1 : 0);
        }
      } else {
        C.Out = PC.expr(Case.Out);
        C.OutIsAlloc = exprIsAllocation(Case.Out);
      }
      Out.Insts[Index].Cases.push_back(std::move(C));
    }
    // Discriminants need the pattern pool to be final for these cases.
    for (CCase &C : Out.Insts[Index].Cases)
      if (C.IsIn)
        C.Disc = discOfPattern(Out, C.Pat);
    return;
  }
  }
}

} // namespace

CompiledProgram CompiledProgram::build(const ModuleIR &Module) {
  CompiledProgram CP;
  unsigned NP = static_cast<unsigned>(Module.Procs.size());
  CP.MaskWords = NP == 0 ? 1 : (NP + 63) / 64;

  CP.Procs.resize(NP);
  for (unsigned P = 0; P != NP; ++P) {
    const ProcIR &PIR = Module.Procs[P];
    CompiledProc &Out = CP.Procs[P];
    ProcCompiler PC(Out, PIR);
    Out.Insts.reserve(PIR.Insts.size());
    for (const Inst &I : PIR.Insts)
      compileInst(PC, Out, I);
  }

  // Per-channel static dispatch data.
  size_t NumChannels = Module.Prog->Channels.size();
  CP.Channels.resize(NumChannels);
  for (ChannelInfo &CI : CP.Channels)
    CI.StaticReaders.assign(CP.MaskWords, 0);
  for (unsigned P = 0; P != NP; ++P)
    for (const Inst &I : Module.Procs[P].Insts) {
      if (I.Kind != InstKind::Block)
        continue;
      for (const IRCase &Case : I.Cases)
        if (Case.IsIn)
          CP.Channels[Case.Channel->Id].StaticReaders[P / 64] |=
              uint64_t(1) << (P % 64);
    }
  for (const std::unique_ptr<ChannelDecl> &Chan : Module.Prog->Channels) {
    std::vector<ChannelReader> Readers =
        collectChannelReaders(*Module.Prog, Chan.get());
    bool Disjoint = true;
    for (size_t A = 0; A != Readers.size() && Disjoint; ++A)
      for (size_t B = A + 1; B != Readers.size() && Disjoint; ++B)
        if (AbsPattern::overlap(Readers[A].Abs, Readers[B].Abs) !=
            AbsPattern::Overlap::Disjoint)
          Disjoint = false;
    CP.Channels[Chan->Id].Disjoint = Disjoint;
  }
  return CP;
}

//===--- Machine.h - ESP interpreter and scheduler --------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ESP execution machine: interprets the state-machine IR with the
/// runtime structure the generated C uses (§6.1):
///
///  * processes are stackless; a context switch saves only the program
///    counter,
///  * channels are synchronous rendezvous; blocked processes are tracked
///    in per-channel bitmasks (one bit per process, exactly the generated
///    C's scheme), and reader dispatch consults a precomputed
///    channel × discriminant table before walking any pattern,
///  * scheduling is non-preemptive and stack-based: when a rendezvous
///    completes, one process continues and the other is pushed on the
///    ready queue; an idle loop polls external channels,
///  * message transfer is by reference-count increment in execution mode
///    (the paper's deep-copy elision) and by actual deep copy in
///    verification mode (the semantic model the SPIN translation uses,
///    which makes memory safety a per-process property, §4.4).
///
/// Process bodies are precompiled at construction (CompiledProgram) into
/// flat op arrays: one step is a dense switch over compact ops with
/// operands already resolved to slot/field indices — the IR and AST are
/// consulted only to format diagnostics.
///
/// The same Machine exposes a model-checking interface: enumerate the
/// enabled moves of the current state, apply one, snapshot/serialize the
/// whole state. The model checker (src/mc) drives it.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_RUNTIME_MACHINE_H
#define ESP_RUNTIME_MACHINE_H

#include "ir/IR.h"
#include "runtime/CompiledProgram.h"
#include "runtime/Heap.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace esp {

//===----------------------------------------------------------------------===//
// Errors
//===----------------------------------------------------------------------===//

enum class RuntimeErrorKind : uint8_t {
  None,
  AssertFailed,
  UseAfterFree,
  MatchFailed,        ///< Destructuring assignment did not match.
  NoMatchingPattern,  ///< A sent message matched no reader pattern.
  AmbiguousDispatch,  ///< A sent message matched patterns of two readers.
  OutOfObjects,       ///< Bounded object table exhausted (leak indicator).
  DivideByZero,
  IndexOutOfBounds,
  InvalidUnionField,  ///< Read of a union field that is not the valid arm.
  UninitializedRead,
  StepLimit,
};

const char *runtimeErrorKindName(RuntimeErrorKind Kind);

struct RuntimeError {
  RuntimeErrorKind Kind = RuntimeErrorKind::None;
  std::string Message;
  SourceLoc Loc;
  int ProcessIndex = -1;

  explicit operator bool() const { return Kind != RuntimeErrorKind::None; }
};

//===----------------------------------------------------------------------===//
// External bindings (§4.5)
//===----------------------------------------------------------------------===//

/// Implementation of an external *writer* interface: the C side of a
/// channel that external code writes. Mirrors the paper's pair of C
/// functions: `<Iface>IsReady` returning which pattern is ready (0 = not
/// ready, 1-based case index otherwise) and one function per case that
/// produces the pattern's parameters.
class ExternalWriter {
public:
  virtual ~ExternalWriter() = default;

  /// Which interface case has a message to deliver; 0 when none.
  virtual int isReady() = 0;

  /// Produces the values for the binder leaves of case \p CaseIndex
  /// (1-based), in left-to-right pattern order. Aggregate parameters are
  /// allocated by the binding in \p H. produce() must *peek*: the message
  /// is consumed only when accepted() is called; if no process was ready
  /// to receive it, the binding must re-offer it on the next poll.
  virtual void produce(int CaseIndex, Heap &H,
                       std::vector<Value> &BinderValues) = 0;

  /// The message produced for \p CaseIndex was delivered; dequeue it.
  virtual void accepted(int CaseIndex) { (void)CaseIndex; }
};

/// Implementation of an external *reader* interface. `isReady` says
/// whether the external side is willing to accept data; `consume`
/// receives the binder-leaf values of the matched case.
class ExternalReader {
public:
  virtual ~ExternalReader() = default;

  virtual bool isReady() = 0;
  virtual void consume(int CaseIndex, Heap &H,
                       const std::vector<Value> &BinderValues) = 0;
};

/// Environment model for verification: generates every value the
/// environment might send on external-writer channels (bounded domains),
/// and accepts everything on external-reader channels. Used by the
/// per-process memory-safety harness (§5.3).
///
/// Both methods are const: one model instance is shared read-only by
/// every worker Machine of a parallel search, so implementations must
/// not mutate state (allocation goes into the caller's Heap).
class EnvModel {
public:
  virtual ~EnvModel() = default;

  /// Number of distinct values the environment may send on \p Chan; 0
  /// disables environment sends on that channel.
  virtual unsigned numVariants(const ChannelDecl *Chan) const = 0;

  /// Materializes variant \p Index in \p H.
  virtual Value makeVariant(const ChannelDecl *Chan, unsigned Index,
                            Heap &H) const = 0;
};

//===----------------------------------------------------------------------===//
// Machine
//===----------------------------------------------------------------------===//

/// Outcome of one scheduler action (or one applied model-checker move).
enum class StepResult : uint8_t { Progress, Quiescent, Halted, Errored };

class Machine;

/// Observation hook for the execution machine: benchmark counters, trace
/// collectors, and simulators subscribe here instead of polling ExecStats
/// deltas. All callbacks default to no-ops; the machine pays one branch
/// per event when no observer is installed.
class MachineObserver {
public:
  virtual ~MachineObserver() = default;

  /// After every scheduler step (execution mode).
  virtual void onStep(const Machine &M, StepResult Result) {
    (void)M;
    (void)Result;
  }
  /// A rendezvous committed; the writer side (-1 = environment/external).
  virtual void onSend(const Machine &M, uint32_t ChannelId, int Writer) {
    (void)M;
    (void)ChannelId;
    (void)Writer;
  }
  /// A rendezvous committed; the reader side (-1 = environment/external).
  virtual void onRecv(const Machine &M, uint32_t ChannelId, int Reader) {
    (void)M;
    (void)ChannelId;
    (void)Reader;
  }
  /// A heap object was allocated (evaluation, deep copy, or external
  /// message construction).
  virtual void onAlloc(const Machine &M, const Value &Obj) {
    (void)M;
    (void)Obj;
  }
  /// One IR instruction is about to execute (the interpreter's inner
  /// loop; PC indexes both CompiledProc::Insts and ProcIR::Insts).
  virtual void onInstr(const Machine &M, unsigned Proc, unsigned PC) {
    (void)M;
    (void)Proc;
    (void)PC;
  }
  /// The process reached a Block instruction and parked. \p ChannelId is
  /// the first alternative's channel; alts report the channel they
  /// actually committed on in onUnblock.
  virtual void onBlock(const Machine &M, unsigned Proc, uint32_t ChannelId) {
    (void)M;
    (void)Proc;
    (void)ChannelId;
  }
  /// A blocked process committed a case and became Ready; \p ChannelId
  /// is the winning case's channel.
  virtual void onUnblock(const Machine &M, unsigned Proc,
                         uint32_t ChannelId) {
    (void)M;
    (void)Proc;
    (void)ChannelId;
  }
  /// A Block instruction with more than one alternative committed case
  /// \p CaseIndex (fires together with onUnblock).
  virtual void onAltChoice(const Machine &M, unsigned Proc,
                           unsigned CaseIndex) {
    (void)M;
    (void)Proc;
    (void)CaseIndex;
  }
};

/// One enabled transition of the machine, for the model checker.
struct Move {
  enum class Kind : uint8_t { Rendezvous, EnvSend, EnvRecv } K =
      Kind::Rendezvous;
  uint32_t Channel = 0;
  int Writer = -1; ///< Process index, or -1 for the environment.
  unsigned WriterCase = 0;
  int Reader = -1; ///< Process index, or -1 for the environment.
  unsigned ReaderCase = 0;
  unsigned EnvVariant = 0; ///< For EnvSend.

  std::string str(const ModuleIR &Module) const;

  /// Structural equality; used to validate counterexample replays.
  friend bool operator==(const Move &A, const Move &B) {
    return A.K == B.K && A.Channel == B.Channel && A.Writer == B.Writer &&
           A.WriterCase == B.WriterCase && A.Reader == B.Reader &&
           A.ReaderCase == B.ReaderCase && A.EnvVariant == B.EnvVariant;
  }
};

/// Per-process interpreter state.
struct ProcState {
  enum class Status : uint8_t { Ready, Blocked, Done, Failed };

  unsigned PC = 0;
  Status St = Status::Ready;
  std::vector<Value> Slots;
  /// Cached guard results for the Block instruction at PC (valid while
  /// Blocked); guards cannot change while the process is blocked because
  /// no other process can touch its state.
  std::vector<bool> CaseEnabled;
  /// Eagerly prepared out values per case (empty vector = not prepared).
  /// Elided cases prepare one value per record field.
  std::vector<std::vector<Value>> Prepared;
  std::vector<bool> PreparedValid;
};

/// Execution statistics; the NIC simulator derives its cycle costs from
/// these (every event here corresponds to work the firmware CPU does).
struct ExecStats {
  uint64_t Instructions = 0;
  uint64_t ContextSwitches = 0;
  uint64_t Rendezvous = 0;
  uint64_t ExternalDeliveries = 0;
  uint64_t ExternalConsumes = 0;
  uint64_t PollRounds = 0;
  uint64_t PatternMatchesTried = 0;
};

struct MachineOptions {
  /// Bound on the object table (0 = unbounded). The verifier uses a small
  /// bound so leaks exhaust it (§5.2).
  uint32_t MaxObjects = 0;
  /// Recycle freed object ids (the generated firmware does; generations
  /// keep UAF detectable either way).
  bool ReuseObjectIds = true;
  /// Deep-copy channel transfers (semantic model; used for verification)
  /// instead of refcount-increment sharing (the optimized execution).
  /// Also turns on the heap's full liveness checks (execution mode keeps
  /// only the generation compare).
  bool DeepCopyTransfers = false;
  /// Stop execution after this many interpreted instructions in one
  /// runToBlock (guards against non-terminating local loops).
  uint64_t LocalStepLimit = 10'000'000;
  /// Bound on the number of environment sends the machine will
  /// enumerate *per channel* (0 = unbounded). A finite budget turns the
  /// open, infinitely re-driven environment into a bounded workload —
  /// "verify K requests end to end" — whose state space is finite and
  /// largely acyclic even for processes with monotone counters. The
  /// budget is per channel, not global, so sends on unrelated channels
  /// stay independent (a global pool would couple every environment
  /// input through the shared counter, which both shrinks the verified
  /// workload set and defeats partial-order reduction). The per-channel
  /// counters are part of the state identity (serialized with the state
  /// vector whenever the budget is enabled).
  uint32_t EnvSendBudget = 0;
};

/// The ESP virtual machine. Copyable (for model-checker snapshots) except
/// for the external bindings, which only the execution mode uses.
class Machine {
public:
  Machine(const ModuleIR &Module, MachineOptions Options);

  /// Shares a prebuilt \p Compiled program (from compileProgram() on the
  /// same Module) instead of compiling privately. The serve runtime
  /// constructs thousands of machine instances over one immutable
  /// CompiledProgram this way; the per-instance footprint is then just
  /// the dynamic state (heap, process slots, wait masks).
  Machine(const ModuleIR &Module, MachineOptions Options,
          std::shared_ptr<const CompiledProgram> Compiled);

  /// Builds the shareable compiled form of \p Module for the sharing
  /// constructor.
  static std::shared_ptr<const CompiledProgram>
  compileProgram(const ModuleIR &Module);

  // Non-copyable because of bindings; use snapshot()/restore() for MC.
  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  //===--- Setup ----------------------------------------------------------===//

  /// Binds the execution-mode implementation of an external-writer
  /// interface (by interface name).
  void bindWriter(const std::string &InterfaceName,
                  std::unique_ptr<ExternalWriter> Writer);
  /// Binds an external-reader interface.
  void bindReader(const std::string &InterfaceName,
                  std::unique_ptr<ExternalReader> Reader);
  /// Sets the verification environment model (not owned).
  void setEnvModel(const EnvModel *Model) { Env = Model; }

  /// Installs (or clears, with nullptr) the observation hook. Not owned.
  void setObserver(MachineObserver *O) { Obs = O; }

  /// Runs every process from its entry to its first communication point.
  /// Must be called once before step()/enumerateMoves().
  void start();

  /// Returns the machine to its pre-start() state so a serve slot can
  /// recycle it for a new connection without reallocating program state:
  /// the heap keeps its arena (Heap::reset), process slot vectors keep
  /// their capacity, statistics and the scheduler state go back to zero.
  /// External bindings and the observer survive the reset. After
  /// reset() + start() the machine replays an identical input sequence
  /// bit-identically to a freshly constructed one (pinned by
  /// tests/test_serve.cpp).
  void reset();

  //===--- Execution mode (firmware scheduler) ----------------------------===//

  /// Compatibility alias: StepResult was a nested enum before the API
  /// redesign; out-of-tree `Machine::StepResult` spellings still work.
  using StepResult = esp::StepResult;

  /// One scheduler action: run the current process to its next block
  /// point and try to pair it, or poll external channels when idle.
  StepResult step();

  /// Steps until quiescent/halted/errored or \p MaxSteps scheduler
  /// actions.
  StepResult run(uint64_t MaxSteps = UINT64_MAX);

  //===--- Verification mode ----------------------------------------------===//

  /// Enumerates every enabled move in the current state. All processes
  /// must be Blocked/Done/Failed (i.e. after start()/applyMove()).
  /// Enumeration is canonically pure: probe allocations and lazily
  /// prepared out values are undone before returning, so serializeState
  /// is identical before and after (the snapshot-free DFS relies on it).
  std::vector<Move> enumerateMoves();

  /// Applies \p M: performs the transfer and runs both participants to
  /// their next block points. Returns Errored when the move faulted,
  /// Halted when every process has run to completion, Progress otherwise
  /// (callers that predate the StepResult protocol may ignore it and
  /// keep polling error()).
  StepResult applyMove(const Move &M);

  /// True when no move is enabled and some process is still Blocked.
  bool isDeadlocked();

  /// True when the machine is stuck only because the finite environment
  /// workload (MachineOptions::EnvSendBudget) is spent: lifting the
  /// budget would enable at least one move. Such a state is quiescent
  /// termination of the bounded harness, not a deadlock.
  bool stuckOnEnvBudget();

  /// True when every process ran to completion.
  bool allDone() const;

  /// Canonically serializes the entire machine state (PCs, slots,
  /// reachable object graphs, prepared values). Two states with the same
  /// serialization behave identically. Heap references are replaced by
  /// canonical ids in first-visit order, so states that differ only in
  /// object allocation order (objectIds, generations, free-list order)
  /// serialize identically.
  std::string serializeState() const;

  /// Same, writing into \p Out (cleared first). The model checker reuses
  /// one scratch buffer across millions of states instead of allocating
  /// a fresh string per state.
  void serializeState(std::string &Out) const;

  /// COLLAPSE-style component serialization (SPIN §"collapse"): fills
  /// \p Control with the per-process control data (status, PC, slots and
  /// prepared values, with heap references as canonical ids) and writes
  /// one canonical content blob per reachable heap object into
  /// \p ObjectBlobs[0..N) in first-visit order. Returns N. \p ObjectBlobs
  /// is only ever grown so its strings keep their capacity across calls;
  /// entries at index >= N are stale. Concatenating Control with the
  /// blobs in order is equivalent to serializeState() as a state identity.
  size_t serializeComponents(std::string &Control,
                             std::vector<std::string> &ObjectBlobs) const;

  /// Live objects unreachable from any root: leaked memory.
  unsigned countLeakedObjects() const;

  //===--- Introspection ---------------------------------------------------===//

  const RuntimeError &error() const { return Error; }
  const ExecStats &stats() const { return Stats; }
  Heap &heap() { return H; }
  const Heap &heap() const { return H; }
  const ModuleIR &module() const { return Module; }
  const CompiledProgram &compiled() const { return CP; }
  unsigned numProcesses() const { return Procs.size(); }
  const ProcState &proc(unsigned I) const { return Procs[I]; }

  /// Snapshot/restore of the dynamic state (for the model checker).
  struct Snapshot {
    Heap H;
    std::vector<ProcState> Procs;
    RuntimeError Error;
    bool Started = false;
    std::vector<uint32_t> EnvSends;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot &S);

private:
  //===--- Interpreter core ------------------------------------------------===//

  /// Evaluates the bytecode range \p R of process \p ProcIndex's compiled
  /// code into \p Result. False on runtime fault (machine error set).
  bool evalCode(unsigned ProcIndex, XRange R, Value &Result);
  bool execStore(unsigned ProcIndex, const CInst &I);
  /// Runs process \p ProcIndex until it blocks, halts, or fails.
  void runToBlock(unsigned ProcIndex);
  /// Evaluates guards and (for non-lazy out cases) prepared values at a
  /// block point, then publishes the process's per-channel wait bits.
  void prepareBlock(unsigned ProcIndex);

  void fail(RuntimeErrorKind Kind, SourceLoc Loc, int ProcIndex,
            std::string Message);

  void notifyAlloc(const Value &V) {
    if (Obs)
      Obs->onAlloc(*this, V);
  }

  //===--- Matching and transfer -------------------------------------------===//

  /// How a pattern walk applies its bindings.
  enum class MatchMode : uint8_t {
    Try,           ///< Dry run: no binding, no acquisition.
    CommitAcquire, ///< Channel receive: bind with receiverAcquire.
    CommitLocal,   ///< Destructuring assignment: bind without acquiring.
  };

  /// Matches compiled pattern node \p PatIndex of \p ReaderIndex against
  /// \p V. Returns false on mismatch; sets the machine error on runtime
  /// faults (except CommitLocal, whose caller reports the error).
  bool matchC(unsigned ReaderIndex, uint32_t PatIndex, const Value &V,
              MatchMode Mode);
  /// Same over the 1-or-N values of a (possibly elided) transfer.
  bool matchValues(unsigned ReaderIndex, uint32_t PatIndex,
                   const std::vector<Value> &Values, MatchMode Mode);

  /// Produces the out value(s) for case \p CaseIndex of blocked process
  /// \p ProcIndex, using the prepared cache or evaluating lazily.
  bool outValues(unsigned ProcIndex, unsigned CaseIndex,
                 std::vector<Value> &Values);

  /// Releases the temp reference of prepared-but-unused out values when a
  /// different case of the alt commits.
  void releaseLosingCases(unsigned ProcIndex, unsigned WinnerCase);

  /// Grants the receiver its reference for each aggregate bound by the
  /// pattern: rc++ in sharing mode, deep copy in verification mode.
  std::optional<Value> receiverAcquire(const Value &V);
  std::optional<Value> deepCopy(const Value &V);

  /// Drops the sender-side temp reference when the out expression was an
  /// allocation.
  void dropSenderTemp(const Expr *OutExpr, const Value &V);
  void dropValueTemp(const Value &V, SourceLoc Loc, int ProcIndex);

  /// Performs a committed rendezvous between a writer and a reader case.
  /// Either side may be the environment/externals.
  bool transfer(int WriterIndex, unsigned WriterCase, int ReaderIndex,
                unsigned ReaderCase, const std::vector<Value> *EnvValues);

  /// enumerateMoves without the purity cleanup (the raw probe walk).
  std::vector<Move> enumerateMovesImpl();

  //===--- Dispatch tables and wait bitmasks --------------------------------===//

  /// The top-level discriminant of a concrete message, if it has one.
  struct MsgDisc {
    enum class K : uint8_t { None, UnionArm, Scalar } Kind = K::None;
    int32_t Arm = -1;
    int64_t Scalar = 0;
  };
  MsgDisc discOfValues(const std::vector<Value> &Values) const;
  /// True when the dispatch table proves \p Case cannot match a message
  /// with discriminant \p D (so the pattern walk is skipped entirely).
  static bool discRejects(const CaseDisc &Case, const MsgDisc &D) {
    if (Case.Kind == CaseDisc::K::UnionArm && D.Kind == MsgDisc::K::UnionArm)
      return Case.Arm != D.Arm;
    if (Case.Kind == CaseDisc::K::Scalar && D.Kind == MsgDisc::K::Scalar)
      return Case.Scalar != D.Scalar;
    return false;
  }

  /// Sets/clears process \p ProcIndex's bit in the wait mask of every
  /// channel one of its enabled cases blocks on. The masks are an
  /// accelerator: consumers still re-check Blocked + CaseEnabled, so a
  /// stale set bit is harmless (a missing one is not).
  void addWaitBits(unsigned ProcIndex);
  void clearWaitBits(unsigned ProcIndex);
  void rebuildWaitBits();

  uint64_t *inWait(uint32_t ChannelId) {
    return &InWait[ChannelId * CP.MaskWords];
  }
  uint64_t *outWait(uint32_t ChannelId) {
    return &OutWait[ChannelId * CP.MaskWords];
  }

  //===--- Execution-mode scheduling ----------------------------------------===//

  StepResult stepImpl();
  int popReady();
  bool tryPair(unsigned ProcIndex);
  bool pollExternals();
  bool deliverExternalIn(unsigned ChannelId);
  bool tryExternalOut(unsigned ProcIndex, unsigned CaseIndex);

  /// Builds the full channel value for an external-writer interface case
  /// from the binder values the binding produced.
  std::optional<Value> buildFromInterfacePattern(const Pattern *Pat,
                                                 const std::vector<Value> &Binders,
                                                 size_t &Next);
  /// Extracts binder-leaf values of an interface pattern from a value.
  bool extractInterfaceBinders(const Pattern *Pat, const Value &V,
                               std::vector<Value> &Out);

  const ModuleIR &Module;
  MachineOptions Options;
  /// Owns (or co-owns) the compiled program; CP is the alias the hot
  /// paths dereference. Fleet serving shares one compiled program across
  /// every machine instance.
  std::shared_ptr<const CompiledProgram> CPShared;
  const CompiledProgram &CP;
  Heap H;
  std::vector<ProcState> Procs;
  RuntimeError Error;
  ExecStats Stats;
  bool Started = false;
  /// Environment sends applied so far, per channel id; only meaningful
  /// (and only part of the serialized state) when Options.EnvSendBudget
  /// is nonzero.
  std::vector<uint32_t> EnvSends;

  /// Shared postfix evaluation stack (member so steady-state evaluation
  /// is allocation-free; nested evaluations save/restore their base).
  std::vector<Value> EvalStack;

  /// Per-channel wait bitmasks, CP.MaskWords words per channel: bit P of
  /// InWait[chan] = process P blocks with an enabled in-case on chan.
  std::vector<uint64_t> InWait;
  std::vector<uint64_t> OutWait;

  // Execution-mode scheduler state.
  std::deque<unsigned> ReadyQueue;
  int Current = -1;
  unsigned PollRotor = 0;

  // External bindings, indexed by channel id.
  std::vector<std::unique_ptr<ExternalWriter>> Writers;
  std::vector<std::unique_ptr<ExternalReader>> Readers;
  const EnvModel *Env = nullptr;
  MachineObserver *Obs = nullptr;
};

} // namespace esp

#endif // ESP_RUNTIME_MACHINE_H

//===--- Machine.cpp - ESP interpreter and scheduler ------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include "frontend/Sema.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>

using namespace esp;

const char *esp::runtimeErrorKindName(RuntimeErrorKind Kind) {
  switch (Kind) {
  case RuntimeErrorKind::None:
    return "none";
  case RuntimeErrorKind::AssertFailed:
    return "assertion failed";
  case RuntimeErrorKind::UseAfterFree:
    return "use after free";
  case RuntimeErrorKind::MatchFailed:
    return "destructuring match failed";
  case RuntimeErrorKind::NoMatchingPattern:
    return "message matched no receive pattern";
  case RuntimeErrorKind::AmbiguousDispatch:
    return "message matched patterns of multiple readers";
  case RuntimeErrorKind::OutOfObjects:
    return "object table exhausted (possible memory leak)";
  case RuntimeErrorKind::DivideByZero:
    return "division by zero";
  case RuntimeErrorKind::IndexOutOfBounds:
    return "array index out of bounds";
  case RuntimeErrorKind::InvalidUnionField:
    return "access to invalid union field";
  case RuntimeErrorKind::UninitializedRead:
    return "read of uninitialized value";
  case RuntimeErrorKind::StepLimit:
    return "local step limit exceeded";
  }
  return "unknown";
}

std::string Move::str(const ModuleIR &Module) const {
  std::ostringstream OS;
  auto procName = [&](int Index) -> std::string {
    if (Index < 0)
      return "<env>";
    return Module.Procs[Index].Proc->Name;
  };
  const char *ChanName = "?";
  for (const std::unique_ptr<ChannelDecl> &C : Module.Prog->Channels)
    if (C->Id == Channel)
      ChanName = C->Name.c_str();
  switch (K) {
  case Kind::Rendezvous:
    OS << procName(Writer) << " -> " << procName(Reader) << " on "
       << ChanName;
    break;
  case Kind::EnvSend:
    OS << "env[" << EnvVariant << "] -> " << procName(Reader) << " on "
       << ChanName;
    break;
  case Kind::EnvRecv:
    OS << procName(Writer) << " -> env on " << ChanName;
    break;
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Construction and setup
//===----------------------------------------------------------------------===//

Machine::Machine(const ModuleIR &Module, MachineOptions Options)
    : Module(Module), Options(Options),
      H(Options.MaxObjects, Options.ReuseObjectIds) {
  Procs.resize(Module.Procs.size());
  Writers.resize(Module.Prog->Channels.size());
  Readers.resize(Module.Prog->Channels.size());
}

void Machine::bindWriter(const std::string &InterfaceName,
                         std::unique_ptr<ExternalWriter> Writer) {
  InterfaceDecl *Iface = Module.Prog->findInterface(InterfaceName);
  assert(Iface && Iface->ExternalWrites && "not an external-writer interface");
  Writers[Iface->Channel->Id] = std::move(Writer);
}

void Machine::bindReader(const std::string &InterfaceName,
                         std::unique_ptr<ExternalReader> Reader) {
  InterfaceDecl *Iface = Module.Prog->findInterface(InterfaceName);
  assert(Iface && !Iface->ExternalWrites &&
         "not an external-reader interface");
  Readers[Iface->Channel->Id] = std::move(Reader);
}

void Machine::start() {
  assert(!Started && "machine already started");
  Started = true;
  for (unsigned I = 0, E = Procs.size(); I != E; ++I) {
    ProcState &P = Procs[I];
    P.PC = 0;
    P.St = ProcState::Status::Ready;
    P.Slots.assign(Module.Procs[I].Proc->NumSlots, Value());
    runToBlock(I);
    if (Error)
      return;
  }
}

void Machine::fail(RuntimeErrorKind Kind, SourceLoc Loc, int ProcIndex,
                   std::string Message) {
  if (Error)
    return; // Keep the first error.
  Error.Kind = Kind;
  Error.Loc = Loc;
  Error.ProcessIndex = ProcIndex;
  Error.Message = std::move(Message);
  if (ProcIndex >= 0)
    Procs[ProcIndex].St = ProcState::Status::Failed;
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

namespace {

bool exprIsAllocation(const Expr *E) {
  switch (E->getKind()) {
  case ExprKind::RecordLit:
  case ExprKind::UnionLit:
  case ExprKind::ArrayLit:
  case ExprKind::Cast:
    return true;
  default:
    return false;
  }
}

} // namespace

std::optional<Value> Machine::evalExpr(unsigned ProcIndex, const Expr *E) {
  ProcState &P = Procs[ProcIndex];
  switch (E->getKind()) {
  case ExprKind::IntLit:
    return Value::makeInt(ast_cast<IntLitExpr>(E)->getValue());
  case ExprKind::BoolLit:
    return Value::makeBool(ast_cast<BoolLitExpr>(E)->getValue());
  case ExprKind::SelfId:
    return Value::makeInt(Module.Procs[ProcIndex].Proc->ProcessId);
  case ExprKind::VarRef: {
    const VarRefExpr *V = ast_cast<VarRefExpr>(E);
    if (const ConstDecl *C = V->getConst())
      return C->ConstType->isBool() ? Value::makeBool(C->Value != 0)
                                    : Value::makeInt(C->Value);
    const Value &Slot = P.Slots[V->getVar()->Slot];
    if (Slot.isUninit()) {
      fail(RuntimeErrorKind::UninitializedRead, E->getLoc(), ProcIndex,
           "read of uninitialized variable '" + V->getName() + "'");
      return std::nullopt;
    }
    return Slot;
  }
  case ExprKind::Field: {
    const FieldExpr *F = ast_cast<FieldExpr>(E);
    std::optional<Value> Base = evalExpr(ProcIndex, F->getBase());
    if (!Base)
      return std::nullopt;
    HeapObject *Obj = H.deref(*Base);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, E->getLoc(), ProcIndex,
           "field access on freed object");
      return std::nullopt;
    }
    if (Obj->ObjType->isUnion()) {
      if (Obj->Arm != F->getFieldIndex()) {
        fail(RuntimeErrorKind::InvalidUnionField, E->getLoc(), ProcIndex,
             "union field '" + F->getFieldName() + "' is not the valid field");
        return std::nullopt;
      }
      return Obj->Elems[0];
    }
    return Obj->Elems[F->getFieldIndex()];
  }
  case ExprKind::Index: {
    const IndexExpr *I = ast_cast<IndexExpr>(E);
    std::optional<Value> Base = evalExpr(ProcIndex, I->getBase());
    std::optional<Value> Index = evalExpr(ProcIndex, I->getIndex());
    if (!Base || !Index)
      return std::nullopt;
    HeapObject *Obj = H.deref(*Base);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, E->getLoc(), ProcIndex,
           "index access on freed object");
      return std::nullopt;
    }
    if (Index->Scalar < 0 ||
        Index->Scalar >= static_cast<int64_t>(Obj->Elems.size())) {
      fail(RuntimeErrorKind::IndexOutOfBounds, E->getLoc(), ProcIndex,
           "index " + std::to_string(Index->Scalar) + " out of bounds for "
               "array of " + std::to_string(Obj->Elems.size()));
      return std::nullopt;
    }
    return Obj->Elems[Index->Scalar];
  }
  case ExprKind::Unary: {
    const UnaryExpr *U = ast_cast<UnaryExpr>(E);
    std::optional<Value> Sub = evalExpr(ProcIndex, U->getSub());
    if (!Sub)
      return std::nullopt;
    if (U->getOp() == UnaryOp::Not)
      return Value::makeBool(!Sub->asBool());
    return Value::makeInt(-Sub->Scalar);
  }
  case ExprKind::Binary: {
    const BinaryExpr *B = ast_cast<BinaryExpr>(E);
    std::optional<Value> L = evalExpr(ProcIndex, B->getLHS());
    if (!L)
      return std::nullopt;
    // Short-circuit logicals.
    if (B->getOp() == BinaryOp::And && !L->asBool())
      return Value::makeBool(false);
    if (B->getOp() == BinaryOp::Or && L->asBool())
      return Value::makeBool(true);
    std::optional<Value> R = evalExpr(ProcIndex, B->getRHS());
    if (!R)
      return std::nullopt;
    switch (B->getOp()) {
    case BinaryOp::Add:
      return Value::makeInt(L->Scalar + R->Scalar);
    case BinaryOp::Sub:
      return Value::makeInt(L->Scalar - R->Scalar);
    case BinaryOp::Mul:
      return Value::makeInt(L->Scalar * R->Scalar);
    case BinaryOp::Div:
    case BinaryOp::Mod:
      if (R->Scalar == 0) {
        fail(RuntimeErrorKind::DivideByZero, E->getLoc(), ProcIndex,
             "division by zero");
        return std::nullopt;
      }
      return Value::makeInt(B->getOp() == BinaryOp::Div
                                ? L->Scalar / R->Scalar
                                : L->Scalar % R->Scalar);
    case BinaryOp::Lt:
      return Value::makeBool(L->Scalar < R->Scalar);
    case BinaryOp::Le:
      return Value::makeBool(L->Scalar <= R->Scalar);
    case BinaryOp::Gt:
      return Value::makeBool(L->Scalar > R->Scalar);
    case BinaryOp::Ge:
      return Value::makeBool(L->Scalar >= R->Scalar);
    case BinaryOp::Eq:
      return Value::makeBool(L->Scalar == R->Scalar);
    case BinaryOp::Ne:
      return Value::makeBool(L->Scalar != R->Scalar);
    case BinaryOp::And:
    case BinaryOp::Or:
      return Value::makeBool(R->asBool());
    }
    return std::nullopt;
  }
  case ExprKind::RecordLit: {
    const RecordLitExpr *R = ast_cast<RecordLitExpr>(E);
    std::optional<Value> Obj = H.allocate(E->getType(), R->getElems().size());
    if (!Obj) {
      fail(RuntimeErrorKind::OutOfObjects, E->getLoc(), ProcIndex,
           "object table exhausted while allocating record");
      return std::nullopt;
    }
    for (size_t I = 0, N = R->getElems().size(); I != N; ++I) {
      const Expr *Elem = R->getElems()[I];
      std::optional<Value> V = evalExpr(ProcIndex, Elem);
      if (!V)
        return std::nullopt;
      // Ownership of the construction edge: a freshly allocated child
      // donates its creation reference; a borrowed child is linked.
      if (V->isRef() && !exprIsAllocation(Elem)) {
        if (H.link(*V) != HeapStatus::OK) {
          fail(RuntimeErrorKind::UseAfterFree, Elem->getLoc(), ProcIndex,
               "storing freed object into record");
          return std::nullopt;
        }
      }
      H.deref(*Obj)->Elems[I] = *V;
    }
    return Obj;
  }
  case ExprKind::UnionLit: {
    const UnionLitExpr *U = ast_cast<UnionLitExpr>(E);
    std::optional<Value> Obj = H.allocate(E->getType(), 1);
    if (!Obj) {
      fail(RuntimeErrorKind::OutOfObjects, E->getLoc(), ProcIndex,
           "object table exhausted while allocating union");
      return std::nullopt;
    }
    std::optional<Value> V = evalExpr(ProcIndex, U->getValue());
    if (!V)
      return std::nullopt;
    if (V->isRef() && !exprIsAllocation(U->getValue())) {
      if (H.link(*V) != HeapStatus::OK) {
        fail(RuntimeErrorKind::UseAfterFree, U->getValue()->getLoc(),
             ProcIndex, "storing freed object into union");
        return std::nullopt;
      }
    }
    HeapObject *ObjPtr = H.deref(*Obj);
    ObjPtr->Arm = U->getFieldIndex();
    ObjPtr->Elems[0] = *V;
    return Obj;
  }
  case ExprKind::ArrayLit: {
    const ArrayLitExpr *A = ast_cast<ArrayLitExpr>(E);
    std::optional<Value> Size = evalExpr(ProcIndex, A->getSize());
    if (!Size)
      return std::nullopt;
    if (Size->Scalar < 0) {
      fail(RuntimeErrorKind::IndexOutOfBounds, E->getLoc(), ProcIndex,
           "negative array size");
      return std::nullopt;
    }
    size_t N = static_cast<size_t>(Size->Scalar);
    std::optional<Value> Obj = H.allocate(E->getType(), N);
    if (!Obj) {
      fail(RuntimeErrorKind::OutOfObjects, E->getLoc(), ProcIndex,
           "object table exhausted while allocating array");
      return std::nullopt;
    }
    std::optional<Value> Init = evalExpr(ProcIndex, A->getInit());
    if (!Init)
      return std::nullopt;
    if (Init->isRef()) {
      // N construction edges: the creation reference covers the first
      // (when fresh); the rest are links.
      size_t LinksNeeded = exprIsAllocation(A->getInit()) ? N - 1 : N;
      if (N == 0 && exprIsAllocation(A->getInit())) {
        // Zero-length array of a fresh object: drop the orphan temp.
        dropValueTemp(*Init, E->getLoc(), static_cast<int>(ProcIndex));
        LinksNeeded = 0;
      }
      for (size_t I = 0; I != LinksNeeded; ++I) {
        if (H.link(*Init) != HeapStatus::OK) {
          fail(RuntimeErrorKind::UseAfterFree, A->getInit()->getLoc(),
               ProcIndex, "storing freed object into array");
          return std::nullopt;
        }
      }
    }
    HeapObject *ObjPtr = H.deref(*Obj);
    for (size_t I = 0; I != N; ++I)
      ObjPtr->Elems[I] = *Init;
    return Obj;
  }
  case ExprKind::Cast: {
    const CastExpr *C = ast_cast<CastExpr>(E);
    std::optional<Value> Sub = evalExpr(ProcIndex, C->getSub());
    if (!Sub)
      return std::nullopt;
    std::optional<Value> Copy = deepCopy(*Sub);
    if (!Copy) {
      if (!Error)
        fail(RuntimeErrorKind::OutOfObjects, E->getLoc(), ProcIndex,
             "object table exhausted during cast");
      return std::nullopt;
    }
    if (exprIsAllocation(C->getSub()))
      dropValueTemp(*Sub, E->getLoc(), static_cast<int>(ProcIndex));
    return Copy;
  }
  }
  return std::nullopt;
}

std::optional<Value> Machine::deepCopy(const Value &V) {
  if (!V.isRef())
    return V;
  const HeapObject *Src = H.deref(V);
  if (!Src) {
    fail(RuntimeErrorKind::UseAfterFree, SourceLoc(), -1,
         "deep copy of freed object");
    return std::nullopt;
  }
  const Type *T = Src->ObjType;
  int32_t Arm = Src->Arm;
  // Copy the element list first: allocate() may reallocate the object
  // vector and invalidate Src.
  std::vector<Value> SrcElems = Src->Elems;
  std::optional<Value> Obj = H.allocate(T, SrcElems.size());
  if (!Obj)
    return std::nullopt;
  for (size_t I = 0, N = SrcElems.size(); I != N; ++I) {
    std::optional<Value> Elem = deepCopy(SrcElems[I]);
    if (!Elem)
      return std::nullopt;
    H.deref(*Obj)->Elems[I] = *Elem;
  }
  H.deref(*Obj)->Arm = Arm;
  return Obj;
}

void Machine::dropValueTemp(const Value &V, SourceLoc Loc, int ProcIndex) {
  if (!V.isRef())
    return;
  if (H.unlink(V) != HeapStatus::OK)
    fail(RuntimeErrorKind::UseAfterFree, Loc, ProcIndex,
         "releasing freed temporary");
}

void Machine::dropSenderTemp(const Expr *OutExpr, const Value &V) {
  if (OutExpr && exprIsAllocation(OutExpr))
    dropValueTemp(V, OutExpr->getLoc(), -1);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

namespace {

/// Describes an lvalue chain destination: either a whole slot or an
/// element of a heap object.
struct LValueRef {
  bool IsSlot = true;
  unsigned Slot = 0;
  Value Obj;        ///< Container object.
  size_t ElemIndex = 0;
};

} // namespace

bool Machine::execStore(unsigned ProcIndex, const Inst &I) {
  std::optional<Value> RHS = evalExpr(ProcIndex, I.RHS);
  if (!RHS)
    return false;
  if (I.PlainStore) {
    const MatchPattern *M = ast_cast<MatchPattern>(I.LHS);
    const Expr *Target = M->getValue();
    // Resolve the destination.
    if (const VarRefExpr *V = ast_dyn_cast<VarRefExpr>(Target)) {
      Procs[ProcIndex].Slots[V->getVar()->Slot] = *RHS;
      return true;
    }
    if (const FieldExpr *F = ast_dyn_cast<FieldExpr>(Target)) {
      std::optional<Value> Base = evalExpr(ProcIndex, F->getBase());
      if (!Base)
        return false;
      HeapObject *Obj = H.deref(*Base);
      if (!Obj) {
        fail(RuntimeErrorKind::UseAfterFree, Target->getLoc(), ProcIndex,
             "store into freed object");
        return false;
      }
      if (Obj->ObjType->isUnion()) {
        Obj->Arm = F->getFieldIndex();
        Obj->Elems[0] = *RHS;
      } else {
        Obj->Elems[F->getFieldIndex()] = *RHS;
      }
      return true;
    }
    const IndexExpr *Ix = ast_cast<IndexExpr>(Target);
    std::optional<Value> Base = evalExpr(ProcIndex, Ix->getBase());
    std::optional<Value> Index = evalExpr(ProcIndex, Ix->getIndex());
    if (!Base || !Index)
      return false;
    HeapObject *Obj = H.deref(*Base);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, Target->getLoc(), ProcIndex,
           "store into freed object");
      return false;
    }
    if (Index->Scalar < 0 ||
        Index->Scalar >= static_cast<int64_t>(Obj->Elems.size())) {
      fail(RuntimeErrorKind::IndexOutOfBounds, Target->getLoc(), ProcIndex,
           "store index out of bounds");
      return false;
    }
    Obj->Elems[Index->Scalar] = *RHS;
    return true;
  }

  // Destructuring match. Local matches bind without acquiring references
  // (assignment never manages reference counts, §4.4); a failed match is
  // a runtime error.
  std::vector<Value> Values = {*RHS};
  if (!matchPattern(ProcIndex, I.LHS, Values, /*Commit=*/false)) {
    if (!Error)
      fail(RuntimeErrorKind::MatchFailed, I.Loc, ProcIndex,
           "value does not match the left-hand-side pattern");
    return false;
  }
  // Commit: write binder slots directly (no acquire for local matches).
  struct Binder {
    static bool commit(Machine &M, unsigned ProcIndex, const Pattern *P,
                       const Value &V) {
      switch (P->getKind()) {
      case PatternKind::Bind:
        M.Procs[ProcIndex].Slots[ast_cast<BindPattern>(P)->getVar()->Slot] = V;
        return true;
      case PatternKind::Match:
        return true;
      case PatternKind::Record: {
        const RecordPattern *R = ast_cast<RecordPattern>(P);
        const HeapObject *Obj = M.H.deref(V);
        if (!Obj)
          return false;
        std::vector<Value> Elems = Obj->Elems;
        for (size_t I = 0, N = R->getElems().size(); I != N; ++I)
          if (!commit(M, ProcIndex, R->getElems()[I], Elems[I]))
            return false;
        return true;
      }
      case PatternKind::Union: {
        const UnionPattern *U = ast_cast<UnionPattern>(P);
        const HeapObject *Obj = M.H.deref(V);
        if (!Obj)
          return false;
        Value Sub = Obj->Elems[0];
        return commit(M, ProcIndex, U->getSub(), Sub);
      }
      }
      return false;
    }
  };
  if (!Binder::commit(*this, ProcIndex, I.LHS, *RHS)) {
    if (!Error)
      fail(RuntimeErrorKind::UseAfterFree, I.Loc, ProcIndex,
           "destructuring a freed object");
    return false;
  }
  // If the right-hand side was a fresh allocation, the match consumed it:
  // release the creation reference (bound components survive only if
  // they hold other references).
  if (exprIsAllocation(I.RHS))
    dropValueTemp(*RHS, I.Loc, static_cast<int>(ProcIndex));
  return true;
}

void Machine::runToBlock(unsigned ProcIndex) {
  ProcState &P = Procs[ProcIndex];
  assert(P.St == ProcState::Status::Ready && "process not runnable");
  const ProcIR &PIR = Module.Procs[ProcIndex];
  uint64_t Steps = 0;
  while (true) {
    if (Error) {
      if (P.St == ProcState::Status::Ready)
        P.St = ProcState::Status::Failed;
      return;
    }
    if (++Steps > Options.LocalStepLimit) {
      fail(RuntimeErrorKind::StepLimit, PIR.Insts[P.PC].Loc,
           static_cast<int>(ProcIndex),
           "process '" + PIR.Proc->Name +
               "' exceeded the local step limit (infinite local loop?)");
      return;
    }
    const Inst &I = PIR.Insts[P.PC];
    ++Stats.Instructions;
    switch (I.Kind) {
    case InstKind::DeclInit: {
      std::optional<Value> V = evalExpr(ProcIndex, I.RHS);
      if (!V)
        return;
      P.Slots[I.Var->Slot] = *V;
      ++P.PC;
      break;
    }
    case InstKind::Store:
      if (!execStore(ProcIndex, I))
        return;
      ++P.PC;
      break;
    case InstKind::Branch: {
      std::optional<Value> Cond = evalExpr(ProcIndex, I.Cond);
      if (!Cond)
        return;
      P.PC = Cond->asBool() ? P.PC + 1 : I.Target;
      break;
    }
    case InstKind::Jump:
      P.PC = I.Target;
      break;
    case InstKind::Link: {
      std::optional<Value> V = evalExpr(ProcIndex, I.RHS);
      if (!V)
        return;
      if (H.link(*V) != HeapStatus::OK) {
        fail(RuntimeErrorKind::UseAfterFree, I.Loc,
             static_cast<int>(ProcIndex), "link of freed object");
        return;
      }
      ++P.PC;
      break;
    }
    case InstKind::Unlink: {
      std::optional<Value> V = evalExpr(ProcIndex, I.RHS);
      if (!V)
        return;
      if (H.unlink(*V) != HeapStatus::OK) {
        fail(RuntimeErrorKind::UseAfterFree, I.Loc,
             static_cast<int>(ProcIndex), "unlink of freed object");
        return;
      }
      ++P.PC;
      break;
    }
    case InstKind::Assert: {
      std::optional<Value> Cond = evalExpr(ProcIndex, I.Cond);
      if (!Cond)
        return;
      if (!Cond->asBool()) {
        fail(RuntimeErrorKind::AssertFailed, I.Loc,
             static_cast<int>(ProcIndex),
             "assertion failed in process '" + PIR.Proc->Name + "'");
        return;
      }
      ++P.PC;
      break;
    }
    case InstKind::Block:
      P.St = ProcState::Status::Blocked;
      prepareBlock(ProcIndex);
      return;
    case InstKind::Halt:
      P.St = ProcState::Status::Done;
      return;
    }
  }
}

void Machine::prepareBlock(unsigned ProcIndex) {
  ProcState &P = Procs[ProcIndex];
  const Inst &I = Module.Procs[ProcIndex].Insts[P.PC];
  size_t N = I.Cases.size();
  P.CaseEnabled.assign(N, false);
  P.Prepared.assign(N, {});
  P.PreparedValid.assign(N, false);
  for (size_t C = 0; C != N; ++C) {
    const IRCase &Case = I.Cases[C];
    if (Case.Guard) {
      std::optional<Value> G = evalExpr(ProcIndex, Case.Guard);
      if (!G)
        return;
      P.CaseEnabled[C] = G->asBool();
    } else {
      P.CaseEnabled[C] = true;
    }
    if (!P.CaseEnabled[C] || Case.IsIn || Case.LazyOut)
      continue;
    // Eagerly prepare the out value(s).
    std::vector<Value> Values;
    if (!outValues(ProcIndex, static_cast<unsigned>(C), Values))
      return;
    (void)Values;
  }
}

bool Machine::outValues(unsigned ProcIndex, unsigned CaseIndex,
                        std::vector<Value> &Values) {
  ProcState &P = Procs[ProcIndex];
  if (P.PreparedValid[CaseIndex]) {
    Values = P.Prepared[CaseIndex];
    return true;
  }
  const Inst &I = Module.Procs[ProcIndex].Insts[P.PC];
  const IRCase &Case = I.Cases[CaseIndex];
  Values.clear();
  if (Case.ElideRecordAlloc) {
    const RecordLitExpr *R = ast_cast<RecordLitExpr>(Case.Out);
    for (const Expr *Elem : R->getElems()) {
      std::optional<Value> V = evalExpr(ProcIndex, Elem);
      if (!V)
        return false;
      Values.push_back(*V);
    }
  } else {
    std::optional<Value> V = evalExpr(ProcIndex, Case.Out);
    if (!V)
      return false;
    Values.push_back(*V);
  }
  P.Prepared[CaseIndex] = Values;
  P.PreparedValid[CaseIndex] = true;
  return true;
}

void Machine::releaseLosingCases(unsigned ProcIndex, unsigned WinnerCase) {
  ProcState &P = Procs[ProcIndex];
  const Inst &I = Module.Procs[ProcIndex].Insts[P.PC];
  for (size_t C = 0, N = I.Cases.size(); C != N; ++C) {
    if (C == WinnerCase || !P.PreparedValid[C])
      continue;
    const IRCase &Case = I.Cases[C];
    if (Case.ElideRecordAlloc) {
      const RecordLitExpr *R = ast_cast<RecordLitExpr>(Case.Out);
      for (size_t F = 0, NF = R->getElems().size(); F != NF; ++F)
        dropSenderTemp(R->getElems()[F], P.Prepared[C][F]);
    } else if (Case.Out) {
      dropSenderTemp(Case.Out, P.Prepared[C][0]);
    }
  }
  P.Prepared.clear();
  P.PreparedValid.clear();
  P.CaseEnabled.clear();
}

//===----------------------------------------------------------------------===//
// Pattern matching over channel values
//===----------------------------------------------------------------------===//

std::optional<Value> Machine::receiverAcquire(const Value &V) {
  if (!V.isRef())
    return V;
  if (Options.DeepCopyTransfers)
    return deepCopy(V);
  if (H.link(V) != HeapStatus::OK) {
    fail(RuntimeErrorKind::UseAfterFree, SourceLoc(), -1,
         "receiving a freed object");
    return std::nullopt;
  }
  return V;
}

bool Machine::matchOne(unsigned ReaderIndex, const Pattern *Pat,
                       const Value &V, bool Commit) {
  ++Stats.PatternMatchesTried;
  switch (Pat->getKind()) {
  case PatternKind::Bind: {
    if (!Commit)
      return true;
    std::optional<Value> Acquired = receiverAcquire(V);
    if (!Acquired)
      return false;
    Procs[ReaderIndex].Slots[ast_cast<BindPattern>(Pat)->getVar()->Slot] =
        *Acquired;
    return true;
  }
  case PatternKind::Match: {
    if (Commit)
      return true; // Verified during the dry run.
    std::optional<Value> Expected =
        evalExpr(ReaderIndex, ast_cast<MatchPattern>(Pat)->getValue());
    if (!Expected)
      return false;
    return Expected->Scalar == V.Scalar;
  }
  case PatternKind::Record: {
    const RecordPattern *R = ast_cast<RecordPattern>(Pat);
    const HeapObject *Obj = H.deref(V);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, Pat->getLoc(),
           static_cast<int>(ReaderIndex), "matching a freed object");
      return false;
    }
    std::vector<Value> Elems = Obj->Elems;
    for (size_t I = 0, N = R->getElems().size(); I != N; ++I)
      if (!matchOne(ReaderIndex, R->getElems()[I], Elems[I], Commit))
        return false;
    return true;
  }
  case PatternKind::Union: {
    const UnionPattern *U = ast_cast<UnionPattern>(Pat);
    const HeapObject *Obj = H.deref(V);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, Pat->getLoc(),
           static_cast<int>(ReaderIndex), "matching a freed object");
      return false;
    }
    if (Obj->Arm != U->getFieldIndex())
      return false;
    Value Sub = Obj->Elems[0];
    return matchOne(ReaderIndex, U->getSub(), Sub, Commit);
  }
  }
  return false;
}

bool Machine::matchPattern(unsigned ReaderIndex, const Pattern *Pat,
                           const std::vector<Value> &Values, bool Commit) {
  if (Values.size() == 1)
    return matchOne(ReaderIndex, Pat, Values[0], Commit);
  // Elided record: the pattern is guaranteed to be a record pattern.
  const RecordPattern *R = ast_cast<RecordPattern>(Pat);
  assert(R->getElems().size() == Values.size() &&
         "elided field count mismatch");
  for (size_t I = 0, N = Values.size(); I != N; ++I)
    if (!matchOne(ReaderIndex, R->getElems()[I], Values[I], Commit))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Transfer
//===----------------------------------------------------------------------===//

bool Machine::transfer(int WriterIndex, unsigned WriterCase, int ReaderIndex,
                       unsigned ReaderCase,
                       const std::vector<Value> *EnvValues) {
  // 1. Obtain the value(s) from the writer side.
  std::vector<Value> Values;
  const IRCase *WCase = nullptr;
  if (WriterIndex >= 0) {
    const Inst &I =
        Module.Procs[WriterIndex].Insts[Procs[WriterIndex].PC];
    WCase = &I.Cases[WriterCase];
    if (!outValues(static_cast<unsigned>(WriterIndex), WriterCase, Values))
      return false;
  } else {
    assert(EnvValues && "environment send without values");
    Values = *EnvValues;
  }

  // 2. Deliver to the reader side.
  if (ReaderIndex >= 0) {
    const Inst &I =
        Module.Procs[ReaderIndex].Insts[Procs[ReaderIndex].PC];
    const IRCase &RCase = I.Cases[ReaderCase];
    if (!matchPattern(static_cast<unsigned>(ReaderIndex), RCase.Pat, Values,
                      /*Commit=*/false)) {
      if (!Error)
        fail(RuntimeErrorKind::NoMatchingPattern, RCase.Loc, ReaderIndex,
             "committed transfer does not match the reader pattern");
      return false;
    }
    if (!matchPattern(static_cast<unsigned>(ReaderIndex), RCase.Pat, Values,
                      /*Commit=*/true))
      return false;
  }
  ++Stats.Rendezvous;

  // 3. Writer-side cleanup and advance.
  if (WriterIndex >= 0) {
    if (WCase->ElideRecordAlloc) {
      const RecordLitExpr *R = ast_cast<RecordLitExpr>(WCase->Out);
      for (size_t F = 0, NF = R->getElems().size(); F != NF; ++F)
        dropSenderTemp(R->getElems()[F], Values[F]);
    } else {
      dropSenderTemp(WCase->Out, Values[0]);
    }
    unsigned Target = WCase->Target;
    releaseLosingCases(static_cast<unsigned>(WriterIndex), WriterCase);
    Procs[WriterIndex].PC = Target;
    Procs[WriterIndex].St = ProcState::Status::Ready;
  } else {
    // Environment-produced values are owned temps; release them now that
    // the receiver has acquired what it binds.
    for (const Value &V : Values)
      dropValueTemp(V, SourceLoc(), -1);
  }

  // 4. Reader-side advance.
  if (ReaderIndex >= 0) {
    const Inst &I =
        Module.Procs[ReaderIndex].Insts[Procs[ReaderIndex].PC];
    unsigned Target = I.Cases[ReaderCase].Target;
    releaseLosingCases(static_cast<unsigned>(ReaderIndex), ReaderCase);
    Procs[ReaderIndex].PC = Target;
    Procs[ReaderIndex].St = ProcState::Status::Ready;
  }
  return !Error;
}

//===----------------------------------------------------------------------===//
// Execution-mode scheduling
//===----------------------------------------------------------------------===//

int Machine::popReady() {
  while (!ReadyQueue.empty()) {
    // FIFO drain prevents starvation; the rendezvous initiator is pushed
    // to the front, which realizes the stack-based continue-the-current-
    // process policy (§6.1) without starving parked peers.
    unsigned P = ReadyQueue.front();
    ReadyQueue.pop_front();
    if (Procs[P].St == ProcState::Status::Ready)
      return static_cast<int>(P);
  }
  return -1;
}

bool Machine::tryExternalOut(unsigned ProcIndex, unsigned CaseIndex) {
  const Inst &I = Module.Procs[ProcIndex].Insts[Procs[ProcIndex].PC];
  const IRCase &Case = I.Cases[CaseIndex];
  ExternalReader *Reader = Readers[Case.Channel->Id].get();
  if (!Reader || !Reader->isReady())
    return false;
  std::vector<Value> Values;
  if (!outValues(ProcIndex, CaseIndex, Values))
    return false;
  // Dispatch over the interface cases to find the matching one and
  // extract its binder-leaf values.
  const InterfaceDecl *Iface = Case.Channel->Interface;
  assert(Iface && "external-reader channel without interface");
  assert(!Case.ElideRecordAlloc &&
         "record elision is disabled on external channels");
  const Value &V = Values[0];
  for (size_t C = 0, N = Iface->Cases.size(); C != N; ++C) {
    std::vector<Value> Binders;
    if (!extractInterfaceBinders(Iface->Cases[C].Pat, V, Binders)) {
      if (Error)
        return false;
      continue;
    }
    Reader->consume(static_cast<int>(C) + 1, H, Binders);
    ++Stats.ExternalConsumes;
    dropSenderTemp(Case.Out, V);
    unsigned Target = Case.Target;
    releaseLosingCases(ProcIndex, CaseIndex);
    Procs[ProcIndex].PC = Target;
    Procs[ProcIndex].St = ProcState::Status::Ready;
    return true;
  }
  fail(RuntimeErrorKind::NoMatchingPattern, Case.Loc,
       static_cast<int>(ProcIndex),
       "message on external channel '" + Case.Channel->Name +
           "' matches no interface case");
  return false;
}

bool Machine::tryPair(unsigned ProcIndex) {
  ProcState &P = Procs[ProcIndex];
  if (P.St != ProcState::Status::Blocked)
    return false;
  const Inst &I = Module.Procs[ProcIndex].Insts[P.PC];
  size_t N = I.Cases.size();
  for (size_t CO = 0; CO != N; ++CO) {
    // Rotate the starting case to avoid starving later alternatives.
    size_t C = (CO + PollRotor) % N;
    if (!P.CaseEnabled[C])
      continue;
    const IRCase &Case = I.Cases[C];
    if (Case.IsIn) {
      // Find a blocked internal writer whose value matches our pattern.
      for (unsigned W = 0, NP = Procs.size(); W != NP; ++W) {
        if (W == ProcIndex || Procs[W].St != ProcState::Status::Blocked)
          continue;
        const Inst &WI = Module.Procs[W].Insts[Procs[W].PC];
        for (size_t WC = 0, NW = WI.Cases.size(); WC != NW; ++WC) {
          const IRCase &WCase = WI.Cases[WC];
          if (WCase.IsIn || WCase.Channel != Case.Channel ||
              !Procs[W].CaseEnabled[WC])
            continue;
          // A MatchFree lazy writer pairs without materializing its
          // value: allocation is postponed to the commit (§6.1).
          if (!(WCase.LazyOut && WCase.MatchFree)) {
            std::vector<Value> Values;
            if (!outValues(W, static_cast<unsigned>(WC), Values))
              return false;
            if (!matchPattern(ProcIndex, Case.Pat, Values,
                              /*Commit=*/false)) {
              if (Error)
                return false;
              continue;
            }
          }
          if (!transfer(static_cast<int>(W), static_cast<unsigned>(WC),
                        static_cast<int>(ProcIndex),
                        static_cast<unsigned>(C), nullptr))
            return false;
          // Stack-based policy: the peer joins the ready queue; the
          // initiator goes to the front so the next pop continues it.
          ReadyQueue.push_back(W);
          ReadyQueue.push_front(ProcIndex);
          return true;
        }
      }
    } else {
      // Find the blocked internal reader whose pattern matches our value;
      // two matching readers is a dispatch-disjointness violation.
      const bool NeedValue = !(Case.LazyOut && Case.MatchFree);
      std::vector<Value> Values;
      if (NeedValue &&
          !outValues(ProcIndex, static_cast<unsigned>(C), Values))
        return false;
      int FoundReader = -1;
      unsigned FoundCase = 0;
      for (unsigned R = 0, NP = Procs.size(); R != NP; ++R) {
        if (R == ProcIndex || Procs[R].St != ProcState::Status::Blocked)
          continue;
        const Inst &RI = Module.Procs[R].Insts[Procs[R].PC];
        for (size_t RC = 0, NR = RI.Cases.size(); RC != NR; ++RC) {
          const IRCase &RCase = RI.Cases[RC];
          if (!RCase.IsIn || RCase.Channel != Case.Channel ||
              !Procs[R].CaseEnabled[RC])
            continue;
          if (NeedValue &&
              !matchPattern(R, RCase.Pat, Values, /*Commit=*/false)) {
            if (Error)
              return false;
            continue;
          }
          if (FoundReader >= 0 && FoundReader != static_cast<int>(R)) {
            fail(RuntimeErrorKind::AmbiguousDispatch, Case.Loc,
                 static_cast<int>(ProcIndex),
                 "message on channel '" + Case.Channel->Name +
                     "' matches patterns in two processes");
            return false;
          }
          if (FoundReader < 0) {
            FoundReader = static_cast<int>(R);
            FoundCase = static_cast<unsigned>(RC);
          }
        }
      }
      if (FoundReader >= 0) {
        if (!transfer(static_cast<int>(ProcIndex),
                      static_cast<unsigned>(C), FoundReader, FoundCase,
                      nullptr))
          return false;
        ReadyQueue.push_back(static_cast<unsigned>(FoundReader));
        ReadyQueue.push_front(ProcIndex);
        return true;
      }
      // Or hand it to an external reader.
      if (Readers[Case.Channel->Id] &&
          tryExternalOut(ProcIndex, static_cast<unsigned>(C))) {
        ReadyQueue.push_back(ProcIndex);
        return true;
      }
      if (Error)
        return false;
    }
  }
  return false;
}

std::optional<Value>
Machine::buildFromInterfacePattern(const Pattern *Pat,
                                   const std::vector<Value> &Binders,
                                   size_t &Next) {
  switch (Pat->getKind()) {
  case PatternKind::Bind: {
    assert(Next < Binders.size() && "interface binding produced too few "
                                    "values");
    return Binders[Next++];
  }
  case PatternKind::Match: {
    std::optional<int64_t> V =
        tryEvalStatic(ast_cast<MatchPattern>(Pat)->getValue(), nullptr);
    assert(V && "interface constants are checked by Sema");
    return Pat->getType()->isBool() ? Value::makeBool(*V != 0)
                                    : Value::makeInt(*V);
  }
  case PatternKind::Record: {
    const RecordPattern *R = ast_cast<RecordPattern>(Pat);
    std::optional<Value> Obj =
        H.allocate(Pat->getType(), R->getElems().size());
    if (!Obj) {
      fail(RuntimeErrorKind::OutOfObjects, Pat->getLoc(), -1,
           "object table exhausted building external message");
      return std::nullopt;
    }
    for (size_t I = 0, N = R->getElems().size(); I != N; ++I) {
      std::optional<Value> Elem =
          buildFromInterfacePattern(R->getElems()[I], Binders, Next);
      if (!Elem)
        return std::nullopt;
      // Binder-provided aggregates arrive as owned temps from the
      // binding; the construction edge takes that ownership.
      H.deref(*Obj)->Elems[I] = *Elem;
    }
    return Obj;
  }
  case PatternKind::Union: {
    const UnionPattern *U = ast_cast<UnionPattern>(Pat);
    std::optional<Value> Obj = H.allocate(Pat->getType(), 1);
    if (!Obj) {
      fail(RuntimeErrorKind::OutOfObjects, Pat->getLoc(), -1,
           "object table exhausted building external message");
      return std::nullopt;
    }
    std::optional<Value> Sub =
        buildFromInterfacePattern(U->getSub(), Binders, Next);
    if (!Sub)
      return std::nullopt;
    HeapObject *ObjPtr = H.deref(*Obj);
    ObjPtr->Arm = U->getFieldIndex();
    ObjPtr->Elems[0] = *Sub;
    return Obj;
  }
  }
  return std::nullopt;
}

bool Machine::extractInterfaceBinders(const Pattern *Pat, const Value &V,
                                      std::vector<Value> &Out) {
  switch (Pat->getKind()) {
  case PatternKind::Bind:
    Out.push_back(V);
    return true;
  case PatternKind::Match: {
    std::optional<int64_t> Expected =
        tryEvalStatic(ast_cast<MatchPattern>(Pat)->getValue(), nullptr);
    return Expected && *Expected == V.Scalar;
  }
  case PatternKind::Record: {
    const RecordPattern *R = ast_cast<RecordPattern>(Pat);
    const HeapObject *Obj = H.deref(V);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, Pat->getLoc(), -1,
           "external dispatch on freed object");
      return false;
    }
    std::vector<Value> Elems = Obj->Elems;
    for (size_t I = 0, N = R->getElems().size(); I != N; ++I)
      if (!extractInterfaceBinders(R->getElems()[I], Elems[I], Out))
        return false;
    return true;
  }
  case PatternKind::Union: {
    const UnionPattern *U = ast_cast<UnionPattern>(Pat);
    const HeapObject *Obj = H.deref(V);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, Pat->getLoc(), -1,
           "external dispatch on freed object");
      return false;
    }
    if (Obj->Arm != U->getFieldIndex())
      return false;
    Value Sub = Obj->Elems[0];
    return extractInterfaceBinders(U->getSub(), Sub, Out);
  }
  }
  return false;
}

bool Machine::deliverExternalIn(unsigned ChannelId) {
  ExternalWriter *Writer = Writers[ChannelId].get();
  if (!Writer)
    return false;
  int CaseIndex = Writer->isReady();
  if (CaseIndex <= 0)
    return false;
  const ChannelDecl *Chan = nullptr;
  for (const std::unique_ptr<ChannelDecl> &C : Module.Prog->Channels)
    if (C->Id == ChannelId)
      Chan = C.get();
  assert(Chan && Chan->Interface && "bad external channel");
  const InterfaceCase &ICase =
      Chan->Interface->Cases[static_cast<size_t>(CaseIndex) - 1];

  std::vector<Value> Binders;
  Writer->produce(CaseIndex, H, Binders);
  size_t Next = 0;
  std::optional<Value> V =
      buildFromInterfacePattern(ICase.Pat, Binders, Next);
  if (!V)
    return false;

  // Find the blocked reader whose pattern matches.
  std::vector<Value> Values = {*V};
  for (unsigned R = 0, NP = Procs.size(); R != NP; ++R) {
    if (Procs[R].St != ProcState::Status::Blocked)
      continue;
    const Inst &RI = Module.Procs[R].Insts[Procs[R].PC];
    for (size_t RC = 0, NR = RI.Cases.size(); RC != NR; ++RC) {
      const IRCase &RCase = RI.Cases[RC];
      if (!RCase.IsIn || RCase.Channel != Chan || !Procs[R].CaseEnabled[RC])
        continue;
      if (!matchPattern(R, RCase.Pat, Values, /*Commit=*/false)) {
        if (Error)
          return false;
        continue;
      }
      if (!matchPattern(R, RCase.Pat, Values, /*Commit=*/true))
        return false;
      Writer->accepted(CaseIndex);
      dropValueTemp(*V, ICase.Loc, -1);
      unsigned Target = RCase.Target;
      releaseLosingCases(R, static_cast<unsigned>(RC));
      Procs[R].PC = Target;
      Procs[R].St = ProcState::Status::Ready;
      ReadyQueue.push_back(R);
      ++Stats.ExternalDeliveries;
      ++Stats.Rendezvous;
      return true;
    }
  }
  // No process is waiting for this message right now; drop it back. A
  // real firmware would leave it in the device queue; our bindings are
  // required to re-offer it on the next poll, so releasing the built
  // value is safe.
  dropValueTemp(*V, ICase.Loc, -1);
  return false;
}

bool Machine::pollExternals() {
  ++Stats.PollRounds;
  unsigned NumChannels = static_cast<unsigned>(Writers.size());
  // Poll external writers (message arrival).
  for (unsigned Off = 0; Off != NumChannels; ++Off) {
    unsigned Chan = (Off + PollRotor) % NumChannels;
    if (deliverExternalIn(Chan))
      return true;
    if (Error)
      return false;
  }
  // Poll external readers (blocked processes wanting to emit).
  for (unsigned P = 0, NP = Procs.size(); P != NP; ++P) {
    if (Procs[P].St != ProcState::Status::Blocked)
      continue;
    const Inst &I = Module.Procs[P].Insts[Procs[P].PC];
    for (size_t C = 0, N = I.Cases.size(); C != N; ++C) {
      const IRCase &Case = I.Cases[C];
      if (Case.IsIn || !Procs[P].CaseEnabled[C] ||
          !Readers[Case.Channel->Id])
        continue;
      if (tryExternalOut(P, static_cast<unsigned>(C))) {
        ReadyQueue.push_back(P);
        return true;
      }
      if (Error)
        return false;
    }
  }
  return false;
}

Machine::StepResult Machine::step() {
  assert(Started && "call start() first");
  if (Error)
    return StepResult::Errored;
  ++PollRotor;

  int Next = popReady();
  if (Next < 0) {
    if (allDone())
      return StepResult::Halted;
    // Resolve any internal rendezvous between parked processes (this also
    // kicks off the very first pairings after start()).
    bool Paired = false;
    for (unsigned I = 0, E = Procs.size(); I != E && !Paired; ++I) {
      if (Procs[I].St != ProcState::Status::Blocked)
        continue;
      Paired = tryPair(I);
      if (Error)
        return StepResult::Errored;
    }
    // Idle loop: poll external channels (§6.1).
    if (!Paired && !pollExternals())
      return Error ? StepResult::Errored : StepResult::Quiescent;
    Next = popReady();
    if (Next < 0)
      return StepResult::Progress;
  }
  if (Current != Next) {
    ++Stats.ContextSwitches;
    Current = Next;
  }

  runToBlock(static_cast<unsigned>(Next));
  if (Error)
    return StepResult::Errored;
  ProcState &P = Procs[Next];
  if (P.St == ProcState::Status::Done)
    return allDone() ? StepResult::Halted : StepResult::Progress;
  assert(P.St == ProcState::Status::Blocked);
  tryPair(static_cast<unsigned>(Next));
  return Error ? StepResult::Errored : StepResult::Progress;
}

Machine::StepResult Machine::run(uint64_t MaxSteps) {
  StepResult Result = StepResult::Progress;
  for (uint64_t I = 0; I != MaxSteps; ++I) {
    Result = step();
    if (Result != StepResult::Progress)
      return Result;
  }
  return Result;
}

bool Machine::allDone() const {
  for (const ProcState &P : Procs)
    if (P.St != ProcState::Status::Done)
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Verification mode
//===----------------------------------------------------------------------===//

std::vector<Move> Machine::enumerateMoves() {
  std::vector<Move> Moves = enumerateMovesImpl();
  // Undo the lazy-out preparation done while probing: enumeration must
  // not perturb the serializable state. The model checker's snapshot-free
  // DFS re-derives frame states by replaying moves from sparse
  // checkpoints and relies on enumeration being canonically pure.
  for (unsigned I = 0, E = static_cast<unsigned>(Procs.size()); I != E; ++I) {
    ProcState &P = Procs[I];
    if (P.St != ProcState::Status::Blocked)
      continue;
    const Inst &Ins = Module.Procs[I].Insts[P.PC];
    size_t N = std::min(Ins.Cases.size(), P.PreparedValid.size());
    for (size_t C = 0; C != N; ++C) {
      const IRCase &Case = Ins.Cases[C];
      if (!P.PreparedValid[C] || Case.IsIn || !Case.LazyOut)
        continue;
      if (Case.ElideRecordAlloc) {
        const RecordLitExpr *R = ast_cast<RecordLitExpr>(Case.Out);
        for (size_t F = 0, NF = R->getElems().size(); F != NF; ++F)
          dropSenderTemp(R->getElems()[F], P.Prepared[C][F]);
      } else if (Case.Out) {
        dropSenderTemp(Case.Out, P.Prepared[C][0]);
      }
      P.Prepared[C].clear();
      P.PreparedValid[C] = false;
    }
  }
  return Moves;
}

std::vector<Move> Machine::enumerateMovesImpl() {
  std::vector<Move> Moves;
  if (Error)
    return Moves;
  unsigned NP = static_cast<unsigned>(Procs.size());
  for (unsigned W = 0; W != NP; ++W) {
    if (Procs[W].St != ProcState::Status::Blocked)
      continue;
    const Inst &WI = Module.Procs[W].Insts[Procs[W].PC];
    for (size_t WC = 0, NW = WI.Cases.size(); WC != NW; ++WC) {
      const IRCase &WCase = WI.Cases[WC];
      if (WCase.IsIn || !Procs[W].CaseEnabled[WC])
        continue;
      std::vector<Value> Values;
      if (!outValues(W, static_cast<unsigned>(WC), Values))
        return Moves;
      int MatchingReaderOwner = -1;
      for (unsigned R = 0; R != NP; ++R) {
        if (R == W || Procs[R].St != ProcState::Status::Blocked)
          continue;
        const Inst &RI = Module.Procs[R].Insts[Procs[R].PC];
        for (size_t RC = 0, NR = RI.Cases.size(); RC != NR; ++RC) {
          const IRCase &RCase = RI.Cases[RC];
          if (!RCase.IsIn || RCase.Channel != WCase.Channel ||
              !Procs[R].CaseEnabled[RC])
            continue;
          if (!matchPattern(R, RCase.Pat, Values, /*Commit=*/false)) {
            if (Error)
              return Moves;
            continue;
          }
          if (MatchingReaderOwner >= 0 &&
              MatchingReaderOwner != static_cast<int>(R)) {
            fail(RuntimeErrorKind::AmbiguousDispatch, WCase.Loc,
                 static_cast<int>(W),
                 "message on channel '" + WCase.Channel->Name +
                     "' matches patterns in two processes");
            return Moves;
          }
          MatchingReaderOwner = static_cast<int>(R);
          Move M;
          M.K = Move::Kind::Rendezvous;
          M.Channel = WCase.Channel->Id;
          M.Writer = static_cast<int>(W);
          M.WriterCase = static_cast<unsigned>(WC);
          M.Reader = static_cast<int>(R);
          M.ReaderCase = static_cast<unsigned>(RC);
          Moves.push_back(M);
        }
      }
      // Environment receive.
      if (Env && Env->numVariants(WCase.Channel) == 0 &&
          WCase.Channel->Role == ChannelRole::ExternalReader) {
        Move M;
        M.K = Move::Kind::EnvRecv;
        M.Channel = WCase.Channel->Id;
        M.Writer = static_cast<int>(W);
        M.WriterCase = static_cast<unsigned>(WC);
        Moves.push_back(M);
      }
      // In per-process harness mode the environment consumes from any
      // channel it does not drive.
      if (Env && WCase.Channel->Role != ChannelRole::ExternalReader &&
          Env->numVariants(WCase.Channel) == 0 && MatchingReaderOwner < 0) {
        bool AnyInternalReader = false;
        for (unsigned R = 0; R != NP && !AnyInternalReader; ++R) {
          if (R == W)
            continue;
          for (const Inst &I : Module.Procs[R].Insts) {
            if (I.Kind != InstKind::Block)
              continue;
            for (const IRCase &C : I.Cases)
              if (C.IsIn && C.Channel == WCase.Channel)
                AnyInternalReader = true;
          }
        }
        if (!AnyInternalReader) {
          Move M;
          M.K = Move::Kind::EnvRecv;
          M.Channel = WCase.Channel->Id;
          M.Writer = static_cast<int>(W);
          M.WriterCase = static_cast<unsigned>(WC);
          Moves.push_back(M);
        }
      }
    }
  }

  // Environment sends.
  if (Env) {
    for (const std::unique_ptr<ChannelDecl> &Chan : Module.Prog->Channels) {
      unsigned NumVariants = Env->numVariants(Chan.get());
      for (unsigned Variant = 0; Variant != NumVariants; ++Variant) {
        Value V = Env->makeVariant(Chan.get(), Variant, H);
        std::vector<Value> Values = {V};
        for (unsigned R = 0; R != NP; ++R) {
          if (Procs[R].St != ProcState::Status::Blocked)
            continue;
          const Inst &RI = Module.Procs[R].Insts[Procs[R].PC];
          for (size_t RC = 0, NR = RI.Cases.size(); RC != NR; ++RC) {
            const IRCase &RCase = RI.Cases[RC];
            if (!RCase.IsIn || RCase.Channel != Chan.get() ||
                !Procs[R].CaseEnabled[RC])
              continue;
            if (!matchPattern(R, RCase.Pat, Values, /*Commit=*/false)) {
              if (Error)
                return Moves;
              continue;
            }
            Move M;
            M.K = Move::Kind::EnvSend;
            M.Channel = Chan->Id;
            M.Reader = static_cast<int>(R);
            M.ReaderCase = static_cast<unsigned>(RC);
            M.EnvVariant = Variant;
            Moves.push_back(M);
          }
        }
        // Undo the probe allocation so enumeration does not perturb the
        // state.
        dropValueTemp(V, SourceLoc(), -1);
        if (Error)
          return Moves;
      }
    }
  }
  return Moves;
}

void Machine::applyMove(const Move &M) {
  assert(!Error && "applying a move to a failed machine");
  switch (M.K) {
  case Move::Kind::Rendezvous: {
    if (!transfer(M.Writer, M.WriterCase, M.Reader, M.ReaderCase, nullptr))
      return;
    runToBlock(static_cast<unsigned>(M.Writer));
    if (Error)
      return;
    runToBlock(static_cast<unsigned>(M.Reader));
    return;
  }
  case Move::Kind::EnvSend: {
    const ChannelDecl *Chan = nullptr;
    for (const std::unique_ptr<ChannelDecl> &C : Module.Prog->Channels)
      if (C->Id == M.Channel)
        Chan = C.get();
    Value V = Env->makeVariant(Chan, M.EnvVariant, H);
    std::vector<Value> Values = {V};
    if (!transfer(-1, 0, M.Reader, M.ReaderCase, &Values))
      return;
    runToBlock(static_cast<unsigned>(M.Reader));
    return;
  }
  case Move::Kind::EnvRecv: {
    if (!transfer(M.Writer, M.WriterCase, -1, 0, nullptr))
      return;
    runToBlock(static_cast<unsigned>(M.Writer));
    return;
  }
  }
}

bool Machine::isDeadlocked() {
  if (Error)
    return false;
  bool AnyBlocked = false;
  for (const ProcState &P : Procs)
    AnyBlocked |= P.St == ProcState::Status::Blocked;
  if (!AnyBlocked)
    return false;
  return enumerateMoves().empty() && !Error;
}

//===----------------------------------------------------------------------===//
// Snapshot, serialization, leak sweep
//===----------------------------------------------------------------------===//

Machine::Snapshot Machine::snapshot() const {
  return Snapshot{H, Procs, Error, Started};
}

void Machine::restore(const Snapshot &S) {
  H = S.H;
  Procs = S.Procs;
  Error = S.Error;
  Started = S.Started;
  ReadyQueue.clear();
  Current = -1;
}

namespace {

/// Canonical state serializer. Heap references serialize as canonical
/// ids assigned in first-visit order, never as raw objectIds, so states
/// differing only in allocation order (ids, generations, free-list
/// order) coincide. Runs in two layouts:
///
///  * inline (Blobs == nullptr): object contents follow the first-visit
///    marker in the single output string — the classic flat vector;
///  * component (Blobs != nullptr): object contents go one-per-object
///    into Blobs[id], and the control stream carries only canonical ids.
///    The model checker's COLLAPSE table interns each blob once and the
///    stored state vector shrinks to control bytes + component indices.
///
/// Targets are addressed by blob id (kControl for the control stream)
/// and re-resolved on every write: recursion may grow the blob vector
/// and invalidate outstanding string references.
class StateSerializer {
public:
  static constexpr size_t kControl = SIZE_MAX;

  StateSerializer(const Heap &H, std::string &Control,
                  std::vector<std::string> *Blobs)
      : H(H), Control(Control), Blobs(Blobs) {}

  size_t numBlobs() const { return NumBlobs; }

  void value(size_t Target, const Value &V) {
    switch (V.K) {
    case Value::Kind::Uninit:
      out(Target).push_back(0);
      return;
    case Value::Kind::Int: {
      std::string &O = out(Target);
      O.push_back(1);
      appendVarint(O, zigzagEncode(V.Scalar));
      return;
    }
    case Value::Kind::Bool: {
      std::string &O = out(Target);
      O.push_back(2);
      O.push_back(V.Scalar ? 1 : 0);
      return;
    }
    case Value::Kind::Ref:
      ref(Target, V);
      return;
    }
  }

private:
  std::string &out(size_t Target) {
    if (!Blobs || Target == kControl)
      return Control;
    return (*Blobs)[Target];
  }

  void ref(size_t Target, const Value &V) {
    const HeapObject *Obj = H.deref(V);
    if (!Obj) {
      out(Target).push_back(3); // Dangling reference: canonical "dead".
      return;
    }
    uint64_t Key = (static_cast<uint64_t>(V.Ref) << 32) | V.Gen;
    auto It = CanonicalIds.find(Key);
    if (It != CanonicalIds.end()) {
      std::string &O = out(Target);
      O.push_back(4); // Back reference.
      appendVarint(O, It->second);
      return;
    }
    uint64_t Id = NumBlobs++;
    CanonicalIds.emplace(Key, Id);
    {
      std::string &O = out(Target);
      O.push_back(5); // First visit.
      appendVarint(O, Id);
    }
    size_t ContentTarget = Target;
    if (Blobs) {
      if (Blobs->size() < NumBlobs)
        Blobs->emplace_back();
      (*Blobs)[Id].clear();
      ContentTarget = Id;
    }
    {
      std::string &O = out(ContentTarget);
      appendVarint(O, reinterpret_cast<uintptr_t>(Obj->ObjType));
      appendVarint(O, zigzagEncode(Obj->Arm));
      appendVarint(O, Obj->RefCount);
      appendVarint(O, Obj->Elems.size());
    }
    for (const Value &Elem : Obj->Elems)
      value(ContentTarget, Elem);
  }

  const Heap &H;
  std::string &Control;
  std::vector<std::string> *Blobs;
  size_t NumBlobs = 0;
  std::unordered_map<uint64_t, uint64_t> CanonicalIds;
};

/// Walks the machine state through \p S, writing control data into
/// \p Control. Shared by the inline and component serializations.
size_t serializeMachineState(const std::vector<ProcState> &Procs,
                             const RuntimeError &Error, std::string &Control,
                             StateSerializer &S) {
  for (const ProcState &P : Procs) {
    Control.push_back(static_cast<char>(P.St));
    appendVarint(Control, P.PC);
    for (const Value &Slot : P.Slots)
      S.value(StateSerializer::kControl, Slot);
    for (size_t C = 0; C != P.PreparedValid.size(); ++C) {
      Control.push_back(P.PreparedValid[C] ? 1 : 0);
      if (P.PreparedValid[C])
        for (const Value &V : P.Prepared[C])
          S.value(StateSerializer::kControl, V);
    }
  }
  Control.push_back(static_cast<char>(Error.Kind));
  return S.numBlobs();
}

} // namespace

std::string Machine::serializeState() const {
  std::string Out;
  serializeState(Out);
  return Out;
}

void Machine::serializeState(std::string &Out) const {
  Out.clear();
  StateSerializer S(H, Out, nullptr);
  serializeMachineState(Procs, Error, Out, S);
}

size_t Machine::serializeComponents(std::string &Control,
                                    std::vector<std::string> &ObjectBlobs) const {
  Control.clear();
  StateSerializer S(H, Control, &ObjectBlobs);
  return serializeMachineState(Procs, Error, Control, S);
}

unsigned Machine::countLeakedObjects() const {
  // Mark phase: everything reachable from the roots of live processes.
  std::vector<uint8_t> Reachable(H.objects().size(), 0);
  std::vector<uint32_t> Worklist;
  auto root = [&](const Value &V) {
    const HeapObject *Obj = H.deref(V);
    if (Obj && !Reachable[V.Ref]) {
      Reachable[V.Ref] = 1;
      Worklist.push_back(V.Ref);
    }
  };
  for (const ProcState &P : Procs) {
    if (P.St == ProcState::Status::Done)
      continue; // A finished process can never unlink: its refs leak.
    for (const Value &Slot : P.Slots)
      root(Slot);
    for (size_t C = 0; C != P.PreparedValid.size(); ++C)
      if (P.PreparedValid[C])
        for (const Value &V : P.Prepared[C])
          root(V);
  }
  while (!Worklist.empty()) {
    uint32_t Index = Worklist.back();
    Worklist.pop_back();
    for (const Value &Elem : H.objects()[Index].Elems) {
      const HeapObject *Obj = H.deref(Elem);
      if (Obj && !Reachable[Elem.Ref]) {
        Reachable[Elem.Ref] = 1;
        Worklist.push_back(Elem.Ref);
      }
    }
  }
  unsigned Leaked = 0;
  for (size_t I = 0, E = H.objects().size(); I != E; ++I)
    if (H.objects()[I].Live && !Reachable[I])
      ++Leaked;
  return Leaked;
}

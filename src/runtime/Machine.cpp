//===--- Machine.cpp - ESP interpreter and scheduler ------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include "frontend/Sema.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>
#include <unordered_map>

using namespace esp;

const char *esp::runtimeErrorKindName(RuntimeErrorKind Kind) {
  switch (Kind) {
  case RuntimeErrorKind::None:
    return "none";
  case RuntimeErrorKind::AssertFailed:
    return "assertion failed";
  case RuntimeErrorKind::UseAfterFree:
    return "use after free";
  case RuntimeErrorKind::MatchFailed:
    return "destructuring match failed";
  case RuntimeErrorKind::NoMatchingPattern:
    return "message matched no receive pattern";
  case RuntimeErrorKind::AmbiguousDispatch:
    return "message matched patterns of multiple readers";
  case RuntimeErrorKind::OutOfObjects:
    return "object table exhausted (possible memory leak)";
  case RuntimeErrorKind::DivideByZero:
    return "division by zero";
  case RuntimeErrorKind::IndexOutOfBounds:
    return "array index out of bounds";
  case RuntimeErrorKind::InvalidUnionField:
    return "access to invalid union field";
  case RuntimeErrorKind::UninitializedRead:
    return "read of uninitialized value";
  case RuntimeErrorKind::StepLimit:
    return "local step limit exceeded";
  }
  return "unknown";
}

std::string Move::str(const ModuleIR &Module) const {
  std::ostringstream OS;
  auto procName = [&](int Index) -> std::string {
    if (Index < 0)
      return "<env>";
    return Module.Procs[Index].Proc->Name;
  };
  const char *ChanName = "?";
  for (const std::unique_ptr<ChannelDecl> &C : Module.Prog->Channels)
    if (C->Id == Channel)
      ChanName = C->Name.c_str();
  switch (K) {
  case Kind::Rendezvous:
    OS << procName(Writer) << " -> " << procName(Reader) << " on "
       << ChanName;
    break;
  case Kind::EnvSend:
    OS << "env[" << EnvVariant << "] -> " << procName(Reader) << " on "
       << ChanName;
    break;
  case Kind::EnvRecv:
    OS << procName(Writer) << " -> env on " << ChanName;
    break;
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Construction and setup
//===----------------------------------------------------------------------===//

std::shared_ptr<const CompiledProgram>
Machine::compileProgram(const ModuleIR &Module) {
  return std::make_shared<const CompiledProgram>(
      CompiledProgram::build(Module));
}

Machine::Machine(const ModuleIR &Module, MachineOptions Options)
    : Machine(Module, Options, compileProgram(Module)) {}

Machine::Machine(const ModuleIR &Module, MachineOptions Options,
                 std::shared_ptr<const CompiledProgram> Compiled)
    : Module(Module), Options(Options), CPShared(std::move(Compiled)),
      CP(*CPShared), H(Options.MaxObjects, Options.ReuseObjectIds) {
  H.setFullChecks(Options.DeepCopyTransfers);
  Procs.resize(Module.Procs.size());
  InWait.assign(Module.Prog->Channels.size() * CP.MaskWords, 0);
  OutWait.assign(Module.Prog->Channels.size() * CP.MaskWords, 0);
  Writers.resize(Module.Prog->Channels.size());
  Readers.resize(Module.Prog->Channels.size());
  EnvSends.assign(Module.Prog->Channels.size(), 0);
}

void Machine::reset() {
  H.reset();
  for (ProcState &P : Procs) {
    P.PC = 0;
    P.St = ProcState::Status::Ready;
    // clear() keeps each vector's capacity; start() reassigns the slots
    // and prepareBlock() regrows the case caches without reallocating.
    P.Slots.clear();
    P.CaseEnabled.clear();
    P.Prepared.clear();
    P.PreparedValid.clear();
  }
  Error = RuntimeError();
  Stats = ExecStats();
  Started = false;
  std::fill(EnvSends.begin(), EnvSends.end(), 0);
  EvalStack.clear();
  std::fill(InWait.begin(), InWait.end(), 0);
  std::fill(OutWait.begin(), OutWait.end(), 0);
  ReadyQueue.clear();
  Current = -1;
  PollRotor = 0;
}

void Machine::bindWriter(const std::string &InterfaceName,
                         std::unique_ptr<ExternalWriter> Writer) {
  InterfaceDecl *Iface = Module.Prog->findInterface(InterfaceName);
  assert(Iface && Iface->ExternalWrites && "not an external-writer interface");
  Writers[Iface->Channel->Id] = std::move(Writer);
}

void Machine::bindReader(const std::string &InterfaceName,
                         std::unique_ptr<ExternalReader> Reader) {
  InterfaceDecl *Iface = Module.Prog->findInterface(InterfaceName);
  assert(Iface && !Iface->ExternalWrites &&
         "not an external-reader interface");
  Readers[Iface->Channel->Id] = std::move(Reader);
}

void Machine::start() {
  assert(!Started && "machine already started");
  Started = true;
  for (unsigned I = 0, E = Procs.size(); I != E; ++I) {
    ProcState &P = Procs[I];
    P.PC = 0;
    P.St = ProcState::Status::Ready;
    P.Slots.assign(Module.Procs[I].Proc->NumSlots, Value());
    runToBlock(I);
    if (Error)
      return;
  }
}

void Machine::fail(RuntimeErrorKind Kind, SourceLoc Loc, int ProcIndex,
                   std::string Message) {
  if (Error)
    return; // Keep the first error.
  Error.Kind = Kind;
  Error.Loc = Loc;
  Error.ProcessIndex = ProcIndex;
  Error.Message = std::move(Message);
  if (ProcIndex >= 0) {
    if (Procs[ProcIndex].St == ProcState::Status::Blocked)
      clearWaitBits(static_cast<unsigned>(ProcIndex));
    Procs[ProcIndex].St = ProcState::Status::Failed;
  }
}

//===----------------------------------------------------------------------===//
// Wait bitmasks
//===----------------------------------------------------------------------===//

// The masks are an accelerator over the truth (Blocked + CaseEnabled +
// channel): every consumer re-checks those, so the invariant that matters
// is masks >= truth. Bits are added when a process publishes its block
// point (end of prepareBlock) and cleared when it leaves it
// (releaseLosingCases, fail) or wholesale on restore().

void Machine::addWaitBits(unsigned ProcIndex) {
  const ProcState &P = Procs[ProcIndex];
  const CInst &I = CP.Procs[ProcIndex].Insts[P.PC];
  const uint64_t Bit = uint64_t(1) << (ProcIndex % 64);
  const unsigned Word = ProcIndex / 64;
  size_t N = std::min(I.Cases.size(), P.CaseEnabled.size());
  for (size_t C = 0; C != N; ++C) {
    if (!P.CaseEnabled[C])
      continue;
    const CCase &Case = I.Cases[C];
    (Case.IsIn ? inWait(Case.ChanId) : outWait(Case.ChanId))[Word] |= Bit;
  }
}

void Machine::clearWaitBits(unsigned ProcIndex) {
  const CInst &I = CP.Procs[ProcIndex].Insts[Procs[ProcIndex].PC];
  const uint64_t Bit = uint64_t(1) << (ProcIndex % 64);
  const unsigned Word = ProcIndex / 64;
  for (const CCase &Case : I.Cases)
    (Case.IsIn ? inWait(Case.ChanId) : outWait(Case.ChanId))[Word] &= ~Bit;
}

void Machine::rebuildWaitBits() {
  std::fill(InWait.begin(), InWait.end(), 0);
  std::fill(OutWait.begin(), OutWait.end(), 0);
  for (unsigned P = 0, NP = static_cast<unsigned>(Procs.size()); P != NP; ++P)
    if (Procs[P].St == ProcState::Status::Blocked)
      addWaitBits(P);
}

//===----------------------------------------------------------------------===//
// Expression evaluation (compiled bytecode)
//===----------------------------------------------------------------------===//

namespace {

bool exprIsAllocation(const Expr *E) {
  switch (E->getKind()) {
  case ExprKind::RecordLit:
  case ExprKind::UnionLit:
  case ExprKind::ArrayLit:
  case ExprKind::Cast:
    return true;
  default:
    return false;
  }
}

SourceLoc plainStoreTargetLoc(const CInst &I) {
  return ast_cast<MatchPattern>(I.Src->LHS)->getValue()->getLoc();
}

} // namespace

bool Machine::evalCode(unsigned ProcIndex, XRange R, Value &Result) {
  const CompiledProc &CProc = CP.Procs[ProcIndex];
  std::vector<Value> &XS = EvalStack;
  const size_t Base = XS.size();
  auto failEval = [&](RuntimeErrorKind Kind, SourceLoc Loc, std::string Msg) {
    fail(Kind, Loc, static_cast<int>(ProcIndex), std::move(Msg));
    XS.resize(Base);
    return false;
  };
  for (uint32_t IP = R.Begin; IP != R.End;) {
    const XOp &Op = CProc.Code[IP];
    switch (Op.Op) {
    case XOp::K::PushInt:
      XS.push_back(Value::makeInt(Op.Imm));
      break;
    case XOp::K::PushBool:
      XS.push_back(Value::makeBool(Op.Imm != 0));
      break;
    case XOp::K::LoadSlot: {
      const Value &Slot = Procs[ProcIndex].Slots[Op.A];
      if (Slot.isUninit())
        return failEval(RuntimeErrorKind::UninitializedRead,
                        Op.Origin->getLoc(),
                        "read of uninitialized variable '" +
                            ast_cast<VarRefExpr>(Op.Origin)->getName() + "'");
      XS.push_back(Slot);
      break;
    }
    case XOp::K::LoadField: {
      HeapObject *Obj = H.deref(XS.back());
      if (!Obj)
        return failEval(RuntimeErrorKind::UseAfterFree, Op.Origin->getLoc(),
                        "field access on freed object");
      XS.back() = Obj->Elems[Op.A];
      break;
    }
    case XOp::K::LoadUnionField: {
      HeapObject *Obj = H.deref(XS.back());
      if (!Obj)
        return failEval(RuntimeErrorKind::UseAfterFree, Op.Origin->getLoc(),
                        "field access on freed object");
      if (Obj->Arm != static_cast<int32_t>(Op.A))
        return failEval(
            RuntimeErrorKind::InvalidUnionField, Op.Origin->getLoc(),
            "union field '" +
                ast_cast<FieldExpr>(Op.Origin)->getFieldName() +
                "' is not the valid field");
      XS.back() = Obj->Elems[0];
      break;
    }
    case XOp::K::LoadIndex: {
      Value Index = XS.back();
      XS.pop_back();
      HeapObject *Obj = H.deref(XS.back());
      if (!Obj)
        return failEval(RuntimeErrorKind::UseAfterFree, Op.Origin->getLoc(),
                        "index access on freed object");
      if (Index.Scalar < 0 ||
          Index.Scalar >= static_cast<int64_t>(Obj->Elems.size()))
        return failEval(RuntimeErrorKind::IndexOutOfBounds,
                        Op.Origin->getLoc(),
                        "index " + std::to_string(Index.Scalar) +
                            " out of bounds for array of " +
                            std::to_string(Obj->Elems.size()));
      XS.back() = Obj->Elems[Index.Scalar];
      break;
    }
    case XOp::K::Not:
      XS.back() = Value::makeBool(!XS.back().asBool());
      break;
    case XOp::K::Neg:
      XS.back() = Value::makeInt(-XS.back().Scalar);
      break;
    case XOp::K::Add: {
      Value Rv = XS.back();
      XS.pop_back();
      XS.back() = Value::makeInt(XS.back().Scalar + Rv.Scalar);
      break;
    }
    case XOp::K::Sub: {
      Value Rv = XS.back();
      XS.pop_back();
      XS.back() = Value::makeInt(XS.back().Scalar - Rv.Scalar);
      break;
    }
    case XOp::K::Mul: {
      Value Rv = XS.back();
      XS.pop_back();
      XS.back() = Value::makeInt(XS.back().Scalar * Rv.Scalar);
      break;
    }
    case XOp::K::Div:
    case XOp::K::Mod: {
      Value Rv = XS.back();
      XS.pop_back();
      if (Rv.Scalar == 0)
        return failEval(RuntimeErrorKind::DivideByZero, Op.Origin->getLoc(),
                        "division by zero");
      XS.back() = Value::makeInt(Op.Op == XOp::K::Div
                                     ? XS.back().Scalar / Rv.Scalar
                                     : XS.back().Scalar % Rv.Scalar);
      break;
    }
    case XOp::K::Lt: {
      Value Rv = XS.back();
      XS.pop_back();
      XS.back() = Value::makeBool(XS.back().Scalar < Rv.Scalar);
      break;
    }
    case XOp::K::Le: {
      Value Rv = XS.back();
      XS.pop_back();
      XS.back() = Value::makeBool(XS.back().Scalar <= Rv.Scalar);
      break;
    }
    case XOp::K::Gt: {
      Value Rv = XS.back();
      XS.pop_back();
      XS.back() = Value::makeBool(XS.back().Scalar > Rv.Scalar);
      break;
    }
    case XOp::K::Ge: {
      Value Rv = XS.back();
      XS.pop_back();
      XS.back() = Value::makeBool(XS.back().Scalar >= Rv.Scalar);
      break;
    }
    case XOp::K::Eq: {
      Value Rv = XS.back();
      XS.pop_back();
      XS.back() = Value::makeBool(XS.back().Scalar == Rv.Scalar);
      break;
    }
    case XOp::K::Ne: {
      Value Rv = XS.back();
      XS.pop_back();
      XS.back() = Value::makeBool(XS.back().Scalar != Rv.Scalar);
      break;
    }
    case XOp::K::Boolify:
      XS.back() = Value::makeBool(XS.back().asBool());
      break;
    case XOp::K::AndJump:
      if (!XS.back().asBool()) {
        XS.back() = Value::makeBool(false);
        IP = Op.A;
        continue;
      }
      XS.pop_back();
      break;
    case XOp::K::OrJump:
      if (XS.back().asBool()) {
        XS.back() = Value::makeBool(true);
        IP = Op.A;
        continue;
      }
      XS.pop_back();
      break;
    case XOp::K::AllocRecord: {
      std::optional<Value> Obj = H.allocate(Op.Ty, Op.A);
      if (!Obj)
        return failEval(RuntimeErrorKind::OutOfObjects, Op.Origin->getLoc(),
                        "object table exhausted while allocating record");
      notifyAlloc(*Obj);
      XS.push_back(*Obj);
      break;
    }
    case XOp::K::SetElem: {
      Value V = XS.back();
      XS.pop_back();
      // Ownership of the construction edge: a freshly allocated child
      // donates its creation reference; a borrowed child is linked.
      if (V.isRef() && Op.Flag) {
        if (H.link(V) != HeapStatus::OK)
          return failEval(RuntimeErrorKind::UseAfterFree, Op.Origin->getLoc(),
                          "storing freed object into record");
      }
      H.deref(XS.back())->Elems[Op.A] = V;
      break;
    }
    case XOp::K::AllocUnion: {
      std::optional<Value> Obj = H.allocate(Op.Ty, 1);
      if (!Obj)
        return failEval(RuntimeErrorKind::OutOfObjects, Op.Origin->getLoc(),
                        "object table exhausted while allocating union");
      notifyAlloc(*Obj);
      XS.push_back(*Obj);
      break;
    }
    case XOp::K::SetUnionElem: {
      Value V = XS.back();
      XS.pop_back();
      if (V.isRef() && Op.Flag) {
        if (H.link(V) != HeapStatus::OK)
          return failEval(RuntimeErrorKind::UseAfterFree, Op.Origin->getLoc(),
                          "storing freed object into union");
      }
      HeapObject *ObjPtr = H.deref(XS.back());
      ObjPtr->Arm = static_cast<int32_t>(Op.A);
      ObjPtr->Elems[0] = V;
      break;
    }
    case XOp::K::AllocArray: {
      Value Size = XS.back();
      XS.pop_back();
      if (Size.Scalar < 0)
        return failEval(RuntimeErrorKind::IndexOutOfBounds,
                        Op.Origin->getLoc(), "negative array size");
      std::optional<Value> Obj =
          H.allocate(Op.Ty, static_cast<size_t>(Size.Scalar));
      if (!Obj)
        return failEval(RuntimeErrorKind::OutOfObjects, Op.Origin->getLoc(),
                        "object table exhausted while allocating array");
      notifyAlloc(*Obj);
      XS.push_back(*Obj);
      break;
    }
    case XOp::K::FillArray: {
      Value Init = XS.back();
      XS.pop_back();
      Value Obj = XS.back();
      size_t N = H.deref(Obj)->Elems.size();
      if (Init.isRef()) {
        // N construction edges: the creation reference covers the first
        // (when fresh); the rest are links.
        size_t LinksNeeded = Op.Flag ? N - 1 : N;
        if (N == 0 && Op.Flag) {
          // Zero-length array of a fresh object: drop the orphan temp.
          dropValueTemp(Init, Op.Origin->getLoc(),
                        static_cast<int>(ProcIndex));
          LinksNeeded = 0;
        }
        for (size_t I = 0; I != LinksNeeded; ++I) {
          if (H.link(Init) != HeapStatus::OK)
            return failEval(RuntimeErrorKind::UseAfterFree,
                            Op.Origin->getLoc(),
                            "storing freed object into array");
        }
      }
      HeapObject *ObjPtr = H.deref(Obj);
      for (size_t I = 0; I != N; ++I)
        ObjPtr->Elems[I] = Init;
      break;
    }
    case XOp::K::CastCopy: {
      Value Sub = XS.back();
      XS.pop_back();
      std::optional<Value> Copy = deepCopy(Sub);
      if (!Copy) {
        if (!Error)
          fail(RuntimeErrorKind::OutOfObjects, Op.Origin->getLoc(),
               static_cast<int>(ProcIndex),
               "object table exhausted during cast");
        XS.resize(Base);
        return false;
      }
      if (Op.Flag)
        dropValueTemp(Sub, Op.Origin->getLoc(), static_cast<int>(ProcIndex));
      XS.push_back(*Copy);
      break;
    }
    }
    ++IP;
  }
  assert(XS.size() == Base + 1 && "expression bytecode left a bad stack");
  Result = XS.back();
  XS.pop_back();
  return true;
}

std::optional<Value> Machine::deepCopy(const Value &V) {
  if (!V.isRef())
    return V;
  const HeapObject *Src = H.deref(V);
  if (!Src) {
    fail(RuntimeErrorKind::UseAfterFree, SourceLoc(), -1,
         "deep copy of freed object");
    return std::nullopt;
  }
  const Type *T = Src->ObjType;
  int32_t Arm = Src->Arm;
  // Copy the element list first: allocate() may reallocate the object
  // vector and invalidate Src.
  std::vector<Value> SrcElems = Src->Elems;
  std::optional<Value> Obj = H.allocate(T, SrcElems.size());
  if (!Obj)
    return std::nullopt;
  notifyAlloc(*Obj);
  for (size_t I = 0, N = SrcElems.size(); I != N; ++I) {
    std::optional<Value> Elem = deepCopy(SrcElems[I]);
    if (!Elem)
      return std::nullopt;
    H.deref(*Obj)->Elems[I] = *Elem;
  }
  H.deref(*Obj)->Arm = Arm;
  return Obj;
}

void Machine::dropValueTemp(const Value &V, SourceLoc Loc, int ProcIndex) {
  if (!V.isRef())
    return;
  if (H.unlink(V) != HeapStatus::OK)
    fail(RuntimeErrorKind::UseAfterFree, Loc, ProcIndex,
         "releasing freed temporary");
}

void Machine::dropSenderTemp(const Expr *OutExpr, const Value &V) {
  if (OutExpr && exprIsAllocation(OutExpr))
    dropValueTemp(V, OutExpr->getLoc(), -1);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool Machine::execStore(unsigned ProcIndex, const CInst &I) {
  Value RHS;
  if (!evalCode(ProcIndex, I.Code, RHS))
    return false;
  switch (I.Store) {
  case CInst::StoreKind::Slot:
    Procs[ProcIndex].Slots[I.StoreA] = RHS;
    return true;
  case CInst::StoreKind::Field:
  case CInst::StoreKind::UnionField: {
    Value Base;
    if (!evalCode(ProcIndex, I.StoreAddr, Base))
      return false;
    HeapObject *Obj = H.deref(Base);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, plainStoreTargetLoc(I),
           static_cast<int>(ProcIndex), "store into freed object");
      return false;
    }
    if (I.Store == CInst::StoreKind::UnionField) {
      Obj->Arm = static_cast<int32_t>(I.StoreA);
      Obj->Elems[0] = RHS;
    } else {
      Obj->Elems[I.StoreA] = RHS;
    }
    return true;
  }
  case CInst::StoreKind::Index: {
    Value Base, Index;
    if (!evalCode(ProcIndex, I.StoreAddr, Base))
      return false;
    if (!evalCode(ProcIndex, I.StoreIdx, Index))
      return false;
    HeapObject *Obj = H.deref(Base);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, plainStoreTargetLoc(I),
           static_cast<int>(ProcIndex), "store into freed object");
      return false;
    }
    if (Index.Scalar < 0 ||
        Index.Scalar >= static_cast<int64_t>(Obj->Elems.size())) {
      fail(RuntimeErrorKind::IndexOutOfBounds, plainStoreTargetLoc(I),
           static_cast<int>(ProcIndex), "store index out of bounds");
      return false;
    }
    Obj->Elems[Index.Scalar] = RHS;
    return true;
  }
  case CInst::StoreKind::Destructure: {
    // Destructuring match. Local matches bind without acquiring references
    // (assignment never manages reference counts, §4.4); a failed match is
    // a runtime error.
    std::vector<Value> Values = {RHS};
    if (!matchValues(ProcIndex, I.Pat, Values, MatchMode::Try)) {
      if (!Error)
        fail(RuntimeErrorKind::MatchFailed, I.Src->Loc,
             static_cast<int>(ProcIndex),
             "value does not match the left-hand-side pattern");
      return false;
    }
    if (!matchValues(ProcIndex, I.Pat, Values, MatchMode::CommitLocal)) {
      if (!Error)
        fail(RuntimeErrorKind::UseAfterFree, I.Src->Loc,
             static_cast<int>(ProcIndex), "destructuring a freed object");
      return false;
    }
    // If the right-hand side was a fresh allocation, the match consumed
    // it: release the creation reference (bound components survive only
    // if they hold other references).
    if (I.RhsIsAlloc)
      dropValueTemp(RHS, I.Src->Loc, static_cast<int>(ProcIndex));
    return true;
  }
  case CInst::StoreKind::None:
    break;
  }
  return false;
}

void Machine::runToBlock(unsigned ProcIndex) {
  ProcState &P = Procs[ProcIndex];
  assert(P.St == ProcState::Status::Ready && "process not runnable");
  const CompiledProc &CProc = CP.Procs[ProcIndex];
  uint64_t Steps = 0;
  while (true) {
    if (Error) {
      if (P.St == ProcState::Status::Ready)
        P.St = ProcState::Status::Failed;
      return;
    }
    if (++Steps > Options.LocalStepLimit) {
      fail(RuntimeErrorKind::StepLimit, CProc.Insts[P.PC].Src->Loc,
           static_cast<int>(ProcIndex),
           "process '" + Module.Procs[ProcIndex].Proc->Name +
               "' exceeded the local step limit (infinite local loop?)");
      return;
    }
    const CInst &I = CProc.Insts[P.PC];
    ++Stats.Instructions;
    if (Obs)
      Obs->onInstr(*this, ProcIndex, P.PC);
    switch (I.Kind) {
    case InstKind::DeclInit: {
      Value V;
      if (!evalCode(ProcIndex, I.Code, V))
        return;
      P.Slots[I.Slot] = V;
      ++P.PC;
      break;
    }
    case InstKind::Store:
      if (!execStore(ProcIndex, I))
        return;
      ++P.PC;
      break;
    case InstKind::Branch: {
      Value Cond;
      if (!evalCode(ProcIndex, I.Code, Cond))
        return;
      P.PC = Cond.asBool() ? P.PC + 1 : I.Target;
      break;
    }
    case InstKind::Jump:
      P.PC = I.Target;
      break;
    case InstKind::Link: {
      Value V;
      if (!evalCode(ProcIndex, I.Code, V))
        return;
      if (H.link(V) != HeapStatus::OK) {
        fail(RuntimeErrorKind::UseAfterFree, I.Src->Loc,
             static_cast<int>(ProcIndex), "link of freed object");
        return;
      }
      ++P.PC;
      break;
    }
    case InstKind::Unlink: {
      Value V;
      if (!evalCode(ProcIndex, I.Code, V))
        return;
      if (H.unlink(V) != HeapStatus::OK) {
        fail(RuntimeErrorKind::UseAfterFree, I.Src->Loc,
             static_cast<int>(ProcIndex), "unlink of freed object");
        return;
      }
      ++P.PC;
      break;
    }
    case InstKind::Assert: {
      Value Cond;
      if (!evalCode(ProcIndex, I.Code, Cond))
        return;
      if (!Cond.asBool()) {
        fail(RuntimeErrorKind::AssertFailed, I.Src->Loc,
             static_cast<int>(ProcIndex),
             "assertion failed in process '" +
                 Module.Procs[ProcIndex].Proc->Name + "'");
        return;
      }
      ++P.PC;
      break;
    }
    case InstKind::Block:
      P.St = ProcState::Status::Blocked;
      prepareBlock(ProcIndex);
      if (Obs && !Error)
        Obs->onBlock(*this, ProcIndex,
                     I.Cases.empty() ? 0 : I.Cases[0].ChanId);
      return;
    case InstKind::Halt:
      P.St = ProcState::Status::Done;
      return;
    }
  }
}

void Machine::prepareBlock(unsigned ProcIndex) {
  ProcState &P = Procs[ProcIndex];
  const CInst &I = CP.Procs[ProcIndex].Insts[P.PC];
  size_t N = I.Cases.size();
  P.CaseEnabled.assign(N, false);
  P.Prepared.assign(N, {});
  P.PreparedValid.assign(N, false);
  for (size_t C = 0; C != N; ++C) {
    const CCase &Case = I.Cases[C];
    if (!Case.Guard.empty()) {
      Value G;
      if (!evalCode(ProcIndex, Case.Guard, G))
        return;
      P.CaseEnabled[C] = G.asBool();
    } else {
      P.CaseEnabled[C] = true;
    }
    if (!P.CaseEnabled[C] || Case.IsIn || Case.LazyOut)
      continue;
    // Eagerly prepare the out value(s).
    std::vector<Value> Values;
    if (!outValues(ProcIndex, static_cast<unsigned>(C), Values))
      return;
    (void)Values;
  }
  addWaitBits(ProcIndex);
}

bool Machine::outValues(unsigned ProcIndex, unsigned CaseIndex,
                        std::vector<Value> &Values) {
  ProcState &P = Procs[ProcIndex];
  if (P.PreparedValid[CaseIndex]) {
    Values = P.Prepared[CaseIndex];
    return true;
  }
  const CCase &Case = CP.Procs[ProcIndex].Insts[P.PC].Cases[CaseIndex];
  Values.clear();
  if (Case.ElideRecordAlloc) {
    for (const XRange &FieldCode : Case.ElideFields) {
      Value V;
      if (!evalCode(ProcIndex, FieldCode, V))
        return false;
      Values.push_back(V);
    }
  } else {
    Value V;
    if (!evalCode(ProcIndex, Case.Out, V))
      return false;
    Values.push_back(V);
  }
  P.Prepared[CaseIndex] = Values;
  P.PreparedValid[CaseIndex] = true;
  return true;
}

void Machine::releaseLosingCases(unsigned ProcIndex, unsigned WinnerCase) {
  clearWaitBits(ProcIndex);
  ProcState &P = Procs[ProcIndex];
  const CInst &I = CP.Procs[ProcIndex].Insts[P.PC];
  // Called exactly once per commit, at every Blocked -> Ready site, with
  // P.PC still at the Block instruction: the one place the winning case
  // is known.
  if (Obs) {
    Obs->onUnblock(*this, ProcIndex, I.Cases[WinnerCase].ChanId);
    if (I.Cases.size() > 1)
      Obs->onAltChoice(*this, ProcIndex, WinnerCase);
  }
  for (size_t C = 0, N = I.Cases.size(); C != N; ++C) {
    if (C == WinnerCase || !P.PreparedValid[C])
      continue;
    const CCase &Case = I.Cases[C];
    if (Case.ElideRecordAlloc) {
      const RecordLitExpr *R = ast_cast<RecordLitExpr>(Case.Src->Out);
      for (size_t F = 0, NF = R->getElems().size(); F != NF; ++F)
        dropSenderTemp(R->getElems()[F], P.Prepared[C][F]);
    } else if (Case.Src->Out) {
      dropSenderTemp(Case.Src->Out, P.Prepared[C][0]);
    }
  }
  P.Prepared.clear();
  P.PreparedValid.clear();
  P.CaseEnabled.clear();
}

//===----------------------------------------------------------------------===//
// Pattern matching over channel values
//===----------------------------------------------------------------------===//

std::optional<Value> Machine::receiverAcquire(const Value &V) {
  if (!V.isRef())
    return V;
  if (Options.DeepCopyTransfers)
    return deepCopy(V);
  if (H.link(V) != HeapStatus::OK) {
    fail(RuntimeErrorKind::UseAfterFree, SourceLoc(), -1,
         "receiving a freed object");
    return std::nullopt;
  }
  return V;
}

bool Machine::matchC(unsigned ReaderIndex, uint32_t PatIndex, const Value &V,
                     MatchMode Mode) {
  const CompiledProc &CProc = CP.Procs[ReaderIndex];
  const CPat &Pat = CProc.Pats[PatIndex];
  if (Mode != MatchMode::CommitLocal)
    ++Stats.PatternMatchesTried;
  switch (Pat.Kind) {
  case PatternKind::Bind:
    switch (Mode) {
    case MatchMode::Try:
      return true;
    case MatchMode::CommitAcquire: {
      std::optional<Value> Acquired = receiverAcquire(V);
      if (!Acquired)
        return false;
      Procs[ReaderIndex].Slots[Pat.Slot] = *Acquired;
      return true;
    }
    case MatchMode::CommitLocal:
      Procs[ReaderIndex].Slots[Pat.Slot] = V;
      return true;
    }
    return false;
  case PatternKind::Match: {
    if (Mode != MatchMode::Try)
      return true; // Verified during the dry run.
    if (Pat.IsStatic)
      return Pat.Const == V.Scalar;
    Value Expected;
    if (!evalCode(ReaderIndex, Pat.Code, Expected))
      return false;
    return Expected.Scalar == V.Scalar;
  }
  case PatternKind::Record: {
    const HeapObject *Obj = H.deref(V);
    if (!Obj) {
      if (Mode != MatchMode::CommitLocal)
        fail(RuntimeErrorKind::UseAfterFree, Pat.Src->getLoc(),
             static_cast<int>(ReaderIndex), "matching a freed object");
      return false;
    }
    for (uint32_t I = 0; I != Pat.NumChildren; ++I) {
      // Re-dereference per child: a commit's deep copy may reallocate the
      // object table.
      Value Elem = H.deref(V)->Elems[I];
      if (!matchC(ReaderIndex, CProc.PatChildren[Pat.ChildBegin + I], Elem,
                  Mode))
        return false;
    }
    return true;
  }
  case PatternKind::Union: {
    const HeapObject *Obj = H.deref(V);
    if (!Obj) {
      if (Mode != MatchMode::CommitLocal)
        fail(RuntimeErrorKind::UseAfterFree, Pat.Src->getLoc(),
             static_cast<int>(ReaderIndex), "matching a freed object");
      return false;
    }
    if (Obj->Arm != Pat.Arm)
      return false;
    Value Sub = Obj->Elems[0];
    return matchC(ReaderIndex, CProc.PatChildren[Pat.ChildBegin], Sub, Mode);
  }
  }
  return false;
}

bool Machine::matchValues(unsigned ReaderIndex, uint32_t PatIndex,
                          const std::vector<Value> &Values, MatchMode Mode) {
  if (Values.size() == 1)
    return matchC(ReaderIndex, PatIndex, Values[0], Mode);
  // Elided record: the pattern is guaranteed to be a record pattern.
  const CompiledProc &CProc = CP.Procs[ReaderIndex];
  const CPat &Pat = CProc.Pats[PatIndex];
  assert(Pat.Kind == PatternKind::Record &&
         Pat.NumChildren == Values.size() && "elided field count mismatch");
  for (size_t I = 0, N = Values.size(); I != N; ++I)
    if (!matchC(ReaderIndex, CProc.PatChildren[Pat.ChildBegin + I],
                Values[I], Mode))
      return false;
  return true;
}

Machine::MsgDisc
Machine::discOfValues(const std::vector<Value> &Values) const {
  MsgDisc D;
  if (Values.size() != 1)
    return D;
  const Value &V = Values[0];
  if (V.isRef()) {
    const HeapObject *Obj = H.deref(V);
    if (Obj && Obj->ObjType->isUnion()) {
      D.Kind = MsgDisc::K::UnionArm;
      D.Arm = Obj->Arm;
    }
    return D;
  }
  if (V.K == Value::Kind::Int || V.K == Value::Kind::Bool) {
    D.Kind = MsgDisc::K::Scalar;
    D.Scalar = V.Scalar;
  }
  return D;
}

//===----------------------------------------------------------------------===//
// Transfer
//===----------------------------------------------------------------------===//

bool Machine::transfer(int WriterIndex, unsigned WriterCase, int ReaderIndex,
                       unsigned ReaderCase,
                       const std::vector<Value> *EnvValues) {
  // 1. Obtain the value(s) from the writer side.
  std::vector<Value> Values;
  const CCase *WCase = nullptr;
  if (WriterIndex >= 0) {
    WCase = &CP.Procs[WriterIndex].Insts[Procs[WriterIndex].PC]
                 .Cases[WriterCase];
    if (!outValues(static_cast<unsigned>(WriterIndex), WriterCase, Values))
      return false;
  } else {
    assert(EnvValues && "environment send without values");
    Values = *EnvValues;
  }

  // 2. Deliver to the reader side.
  const CCase *RCase = nullptr;
  if (ReaderIndex >= 0) {
    RCase = &CP.Procs[ReaderIndex].Insts[Procs[ReaderIndex].PC]
                 .Cases[ReaderCase];
    if (!matchValues(static_cast<unsigned>(ReaderIndex), RCase->Pat, Values,
                     MatchMode::Try)) {
      if (!Error)
        fail(RuntimeErrorKind::NoMatchingPattern, RCase->Src->Loc,
             ReaderIndex,
             "committed transfer does not match the reader pattern");
      return false;
    }
    if (!matchValues(static_cast<unsigned>(ReaderIndex), RCase->Pat, Values,
                     MatchMode::CommitAcquire))
      return false;
  }
  ++Stats.Rendezvous;
  if (Obs) {
    uint32_t Chan = WCase ? WCase->ChanId : RCase->ChanId;
    Obs->onSend(*this, Chan, WriterIndex);
    Obs->onRecv(*this, Chan, ReaderIndex);
  }

  // 3. Writer-side cleanup and advance.
  if (WriterIndex >= 0) {
    if (WCase->ElideRecordAlloc) {
      const RecordLitExpr *R = ast_cast<RecordLitExpr>(WCase->Src->Out);
      for (size_t F = 0, NF = R->getElems().size(); F != NF; ++F)
        dropSenderTemp(R->getElems()[F], Values[F]);
    } else {
      dropSenderTemp(WCase->Src->Out, Values[0]);
    }
    unsigned Target = WCase->Target;
    releaseLosingCases(static_cast<unsigned>(WriterIndex), WriterCase);
    Procs[WriterIndex].PC = Target;
    Procs[WriterIndex].St = ProcState::Status::Ready;
  } else {
    // Environment-produced values are owned temps; release them now that
    // the receiver has acquired what it binds.
    for (const Value &V : Values)
      dropValueTemp(V, SourceLoc(), -1);
  }

  // 4. Reader-side advance.
  if (ReaderIndex >= 0) {
    unsigned Target = RCase->Target;
    releaseLosingCases(static_cast<unsigned>(ReaderIndex), ReaderCase);
    Procs[ReaderIndex].PC = Target;
    Procs[ReaderIndex].St = ProcState::Status::Ready;
  }
  return !Error;
}

//===----------------------------------------------------------------------===//
// Execution-mode scheduling
//===----------------------------------------------------------------------===//

int Machine::popReady() {
  while (!ReadyQueue.empty()) {
    // FIFO drain prevents starvation; the rendezvous initiator is pushed
    // to the front, which realizes the stack-based continue-the-current-
    // process policy (§6.1) without starving parked peers.
    unsigned P = ReadyQueue.front();
    ReadyQueue.pop_front();
    if (Procs[P].St == ProcState::Status::Ready)
      return static_cast<int>(P);
  }
  return -1;
}

bool Machine::tryExternalOut(unsigned ProcIndex, unsigned CaseIndex) {
  const CCase &Case =
      CP.Procs[ProcIndex].Insts[Procs[ProcIndex].PC].Cases[CaseIndex];
  ExternalReader *Reader = Readers[Case.ChanId].get();
  if (!Reader || !Reader->isReady())
    return false;
  std::vector<Value> Values;
  if (!outValues(ProcIndex, CaseIndex, Values))
    return false;
  // Dispatch over the interface cases to find the matching one and
  // extract its binder-leaf values.
  const InterfaceDecl *Iface = Case.Src->Channel->Interface;
  assert(Iface && "external-reader channel without interface");
  assert(!Case.ElideRecordAlloc &&
         "record elision is disabled on external channels");
  const Value &V = Values[0];
  for (size_t C = 0, N = Iface->Cases.size(); C != N; ++C) {
    std::vector<Value> Binders;
    if (!extractInterfaceBinders(Iface->Cases[C].Pat, V, Binders)) {
      if (Error)
        return false;
      continue;
    }
    Reader->consume(static_cast<int>(C) + 1, H, Binders);
    ++Stats.ExternalConsumes;
    if (Obs) {
      Obs->onSend(*this, Case.ChanId, static_cast<int>(ProcIndex));
      Obs->onRecv(*this, Case.ChanId, -1);
    }
    dropSenderTemp(Case.Src->Out, V);
    unsigned Target = Case.Target;
    releaseLosingCases(ProcIndex, CaseIndex);
    Procs[ProcIndex].PC = Target;
    Procs[ProcIndex].St = ProcState::Status::Ready;
    return true;
  }
  fail(RuntimeErrorKind::NoMatchingPattern, Case.Src->Loc,
       static_cast<int>(ProcIndex),
       "message on external channel '" + Case.Src->Channel->Name +
           "' matches no interface case");
  return false;
}

bool Machine::tryPair(unsigned ProcIndex) {
  ProcState &P = Procs[ProcIndex];
  if (P.St != ProcState::Status::Blocked)
    return false;
  const CInst &I = CP.Procs[ProcIndex].Insts[P.PC];
  size_t N = I.Cases.size();
  for (size_t CO = 0; CO != N; ++CO) {
    // Rotate the starting case to avoid starving later alternatives.
    size_t C = (CO + PollRotor) % N;
    if (!P.CaseEnabled[C])
      continue;
    const CCase &Case = I.Cases[C];
    if (Case.IsIn) {
      // Scan the channel's blocked-writer bitmask (LSB-first, so writers
      // are visited in ascending process order, same as the old scan).
      const uint64_t *Mask = outWait(Case.ChanId);
      for (unsigned Word = 0; Word != CP.MaskWords; ++Word) {
        for (uint64_t Bits = Mask[Word]; Bits; Bits &= Bits - 1) {
          unsigned W =
              Word * 64 + static_cast<unsigned>(std::countr_zero(Bits));
          if (W == ProcIndex || Procs[W].St != ProcState::Status::Blocked)
            continue;
          const CInst &WI = CP.Procs[W].Insts[Procs[W].PC];
          for (size_t WC = 0, NW = WI.Cases.size(); WC != NW; ++WC) {
            const CCase &WCase = WI.Cases[WC];
            if (WCase.IsIn || WCase.ChanId != Case.ChanId ||
                !Procs[W].CaseEnabled[WC])
              continue;
            // A MatchFree lazy writer pairs without materializing its
            // value: allocation is postponed to the commit (§6.1).
            if (!(WCase.LazyOut && WCase.MatchFree)) {
              std::vector<Value> Values;
              if (!outValues(W, static_cast<unsigned>(WC), Values))
                return false;
              if (discRejects(Case.Disc, discOfValues(Values)))
                continue;
              if (!matchValues(ProcIndex, Case.Pat, Values,
                               MatchMode::Try)) {
                if (Error)
                  return false;
                continue;
              }
            }
            if (!transfer(static_cast<int>(W), static_cast<unsigned>(WC),
                          static_cast<int>(ProcIndex),
                          static_cast<unsigned>(C), nullptr))
              return false;
            // Stack-based policy: the peer joins the ready queue; the
            // initiator goes to the front so the next pop continues it.
            ReadyQueue.push_back(W);
            ReadyQueue.push_front(ProcIndex);
            return true;
          }
        }
      }
    } else {
      // Find the blocked internal reader whose pattern matches our value;
      // two matching readers is a dispatch-disjointness violation. When
      // the channel's reader patterns are statically disjoint the first
      // match is provably the only one and the scan stops there.
      const bool NeedValue = !(Case.LazyOut && Case.MatchFree);
      std::vector<Value> Values;
      if (NeedValue &&
          !outValues(ProcIndex, static_cast<unsigned>(C), Values))
        return false;
      MsgDisc D;
      if (NeedValue)
        D = discOfValues(Values);
      int FoundReader = -1;
      unsigned FoundCase = 0;
      const bool Disjoint = CP.Channels[Case.ChanId].Disjoint;
      bool Stop = false;
      const uint64_t *Mask = inWait(Case.ChanId);
      for (unsigned Word = 0; Word != CP.MaskWords && !Stop; ++Word) {
        for (uint64_t Bits = Mask[Word]; Bits && !Stop; Bits &= Bits - 1) {
          unsigned R =
              Word * 64 + static_cast<unsigned>(std::countr_zero(Bits));
          if (R == ProcIndex || Procs[R].St != ProcState::Status::Blocked)
            continue;
          const CInst &RI = CP.Procs[R].Insts[Procs[R].PC];
          for (size_t RC = 0, NR = RI.Cases.size(); RC != NR; ++RC) {
            const CCase &RCase = RI.Cases[RC];
            if (!RCase.IsIn || RCase.ChanId != Case.ChanId ||
                !Procs[R].CaseEnabled[RC])
              continue;
            if (NeedValue) {
              if (discRejects(RCase.Disc, D))
                continue;
              if (!matchValues(R, RCase.Pat, Values, MatchMode::Try)) {
                if (Error)
                  return false;
                continue;
              }
            }
            if (FoundReader >= 0 && FoundReader != static_cast<int>(R)) {
              fail(RuntimeErrorKind::AmbiguousDispatch, Case.Src->Loc,
                   static_cast<int>(ProcIndex),
                   "message on channel '" + Case.Src->Channel->Name +
                       "' matches patterns in two processes");
              return false;
            }
            if (FoundReader < 0) {
              FoundReader = static_cast<int>(R);
              FoundCase = static_cast<unsigned>(RC);
              if (Disjoint) {
                Stop = true;
                break;
              }
            }
          }
        }
      }
      if (FoundReader >= 0) {
        if (!transfer(static_cast<int>(ProcIndex),
                      static_cast<unsigned>(C), FoundReader, FoundCase,
                      nullptr))
          return false;
        ReadyQueue.push_back(static_cast<unsigned>(FoundReader));
        ReadyQueue.push_front(ProcIndex);
        return true;
      }
      // Or hand it to an external reader.
      if (Readers[Case.ChanId] &&
          tryExternalOut(ProcIndex, static_cast<unsigned>(C))) {
        ReadyQueue.push_back(ProcIndex);
        return true;
      }
      if (Error)
        return false;
    }
  }
  return false;
}

std::optional<Value>
Machine::buildFromInterfacePattern(const Pattern *Pat,
                                   const std::vector<Value> &Binders,
                                   size_t &Next) {
  switch (Pat->getKind()) {
  case PatternKind::Bind: {
    assert(Next < Binders.size() && "interface binding produced too few "
                                    "values");
    return Binders[Next++];
  }
  case PatternKind::Match: {
    std::optional<int64_t> V =
        tryEvalStatic(ast_cast<MatchPattern>(Pat)->getValue(), nullptr);
    assert(V && "interface constants are checked by Sema");
    return Pat->getType()->isBool() ? Value::makeBool(*V != 0)
                                    : Value::makeInt(*V);
  }
  case PatternKind::Record: {
    const RecordPattern *R = ast_cast<RecordPattern>(Pat);
    std::optional<Value> Obj =
        H.allocate(Pat->getType(), R->getElems().size());
    if (!Obj) {
      fail(RuntimeErrorKind::OutOfObjects, Pat->getLoc(), -1,
           "object table exhausted building external message");
      return std::nullopt;
    }
    notifyAlloc(*Obj);
    for (size_t I = 0, N = R->getElems().size(); I != N; ++I) {
      std::optional<Value> Elem =
          buildFromInterfacePattern(R->getElems()[I], Binders, Next);
      if (!Elem)
        return std::nullopt;
      // Binder-provided aggregates arrive as owned temps from the
      // binding; the construction edge takes that ownership.
      H.deref(*Obj)->Elems[I] = *Elem;
    }
    return Obj;
  }
  case PatternKind::Union: {
    const UnionPattern *U = ast_cast<UnionPattern>(Pat);
    std::optional<Value> Obj = H.allocate(Pat->getType(), 1);
    if (!Obj) {
      fail(RuntimeErrorKind::OutOfObjects, Pat->getLoc(), -1,
           "object table exhausted building external message");
      return std::nullopt;
    }
    notifyAlloc(*Obj);
    std::optional<Value> Sub =
        buildFromInterfacePattern(U->getSub(), Binders, Next);
    if (!Sub)
      return std::nullopt;
    HeapObject *ObjPtr = H.deref(*Obj);
    ObjPtr->Arm = U->getFieldIndex();
    ObjPtr->Elems[0] = *Sub;
    return Obj;
  }
  }
  return std::nullopt;
}

bool Machine::extractInterfaceBinders(const Pattern *Pat, const Value &V,
                                      std::vector<Value> &Out) {
  switch (Pat->getKind()) {
  case PatternKind::Bind:
    Out.push_back(V);
    return true;
  case PatternKind::Match: {
    std::optional<int64_t> Expected =
        tryEvalStatic(ast_cast<MatchPattern>(Pat)->getValue(), nullptr);
    return Expected && *Expected == V.Scalar;
  }
  case PatternKind::Record: {
    const RecordPattern *R = ast_cast<RecordPattern>(Pat);
    const HeapObject *Obj = H.deref(V);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, Pat->getLoc(), -1,
           "external dispatch on freed object");
      return false;
    }
    std::vector<Value> Elems = Obj->Elems;
    for (size_t I = 0, N = R->getElems().size(); I != N; ++I)
      if (!extractInterfaceBinders(R->getElems()[I], Elems[I], Out))
        return false;
    return true;
  }
  case PatternKind::Union: {
    const UnionPattern *U = ast_cast<UnionPattern>(Pat);
    const HeapObject *Obj = H.deref(V);
    if (!Obj) {
      fail(RuntimeErrorKind::UseAfterFree, Pat->getLoc(), -1,
           "external dispatch on freed object");
      return false;
    }
    if (Obj->Arm != U->getFieldIndex())
      return false;
    Value Sub = Obj->Elems[0];
    return extractInterfaceBinders(U->getSub(), Sub, Out);
  }
  }
  return false;
}

bool Machine::deliverExternalIn(unsigned ChannelId) {
  ExternalWriter *Writer = Writers[ChannelId].get();
  if (!Writer)
    return false;
  int CaseIndex = Writer->isReady();
  if (CaseIndex <= 0)
    return false;
  const ChannelDecl *Chan = nullptr;
  for (const std::unique_ptr<ChannelDecl> &C : Module.Prog->Channels)
    if (C->Id == ChannelId)
      Chan = C.get();
  assert(Chan && Chan->Interface && "bad external channel");
  const InterfaceCase &ICase =
      Chan->Interface->Cases[static_cast<size_t>(CaseIndex) - 1];

  std::vector<Value> Binders;
  Writer->produce(CaseIndex, H, Binders);
  size_t Next = 0;
  std::optional<Value> V =
      buildFromInterfacePattern(ICase.Pat, Binders, Next);
  if (!V)
    return false;

  // Find the blocked reader whose pattern matches.
  std::vector<Value> Values = {*V};
  MsgDisc D = discOfValues(Values);
  const uint64_t *Mask = inWait(ChannelId);
  for (unsigned Word = 0; Word != CP.MaskWords; ++Word) {
    for (uint64_t Bits = Mask[Word]; Bits; Bits &= Bits - 1) {
      unsigned R = Word * 64 + static_cast<unsigned>(std::countr_zero(Bits));
      if (Procs[R].St != ProcState::Status::Blocked)
        continue;
      const CInst &RI = CP.Procs[R].Insts[Procs[R].PC];
      for (size_t RC = 0, NR = RI.Cases.size(); RC != NR; ++RC) {
        const CCase &RCase = RI.Cases[RC];
        if (!RCase.IsIn || RCase.ChanId != ChannelId ||
            !Procs[R].CaseEnabled[RC])
          continue;
        if (discRejects(RCase.Disc, D))
          continue;
        if (!matchValues(R, RCase.Pat, Values, MatchMode::Try)) {
          if (Error)
            return false;
          continue;
        }
        if (!matchValues(R, RCase.Pat, Values, MatchMode::CommitAcquire))
          return false;
        Writer->accepted(CaseIndex);
        if (Obs) {
          Obs->onSend(*this, ChannelId, -1);
          Obs->onRecv(*this, ChannelId, static_cast<int>(R));
        }
        dropValueTemp(*V, ICase.Loc, -1);
        unsigned Target = RCase.Target;
        releaseLosingCases(R, static_cast<unsigned>(RC));
        Procs[R].PC = Target;
        Procs[R].St = ProcState::Status::Ready;
        ReadyQueue.push_back(R);
        ++Stats.ExternalDeliveries;
        ++Stats.Rendezvous;
        return true;
      }
    }
  }
  // No process is waiting for this message right now; drop it back. A
  // real firmware would leave it in the device queue; our bindings are
  // required to re-offer it on the next poll, so releasing the built
  // value is safe.
  dropValueTemp(*V, ICase.Loc, -1);
  return false;
}

bool Machine::pollExternals() {
  ++Stats.PollRounds;
  unsigned NumChannels = static_cast<unsigned>(Writers.size());
  // Poll external writers (message arrival).
  for (unsigned Off = 0; Off != NumChannels; ++Off) {
    unsigned Chan = (Off + PollRotor) % NumChannels;
    if (deliverExternalIn(Chan))
      return true;
    if (Error)
      return false;
  }
  // Poll external readers (blocked processes wanting to emit).
  for (unsigned P = 0, NP = static_cast<unsigned>(Procs.size()); P != NP;
       ++P) {
    if (Procs[P].St != ProcState::Status::Blocked)
      continue;
    const CInst &I = CP.Procs[P].Insts[Procs[P].PC];
    for (size_t C = 0, N = I.Cases.size(); C != N; ++C) {
      const CCase &Case = I.Cases[C];
      if (Case.IsIn || !Procs[P].CaseEnabled[C] || !Readers[Case.ChanId])
        continue;
      if (tryExternalOut(P, static_cast<unsigned>(C))) {
        ReadyQueue.push_back(P);
        return true;
      }
      if (Error)
        return false;
    }
  }
  return false;
}

StepResult Machine::step() {
  StepResult Result = stepImpl();
  if (Obs)
    Obs->onStep(*this, Result);
  return Result;
}

StepResult Machine::stepImpl() {
  assert(Started && "call start() first");
  if (Error)
    return StepResult::Errored;
  ++PollRotor;

  int Next = popReady();
  if (Next < 0) {
    if (allDone())
      return StepResult::Halted;
    // Resolve any internal rendezvous between parked processes (this also
    // kicks off the very first pairings after start()).
    bool Paired = false;
    for (unsigned I = 0, E = Procs.size(); I != E && !Paired; ++I) {
      if (Procs[I].St != ProcState::Status::Blocked)
        continue;
      Paired = tryPair(I);
      if (Error)
        return StepResult::Errored;
    }
    // Idle loop: poll external channels (§6.1).
    if (!Paired && !pollExternals())
      return Error ? StepResult::Errored : StepResult::Quiescent;
    Next = popReady();
    if (Next < 0)
      return StepResult::Progress;
  }
  if (Current != Next) {
    ++Stats.ContextSwitches;
    Current = Next;
  }

  runToBlock(static_cast<unsigned>(Next));
  if (Error)
    return StepResult::Errored;
  ProcState &P = Procs[Next];
  if (P.St == ProcState::Status::Done)
    return allDone() ? StepResult::Halted : StepResult::Progress;
  assert(P.St == ProcState::Status::Blocked);
  tryPair(static_cast<unsigned>(Next));
  return Error ? StepResult::Errored : StepResult::Progress;
}

StepResult Machine::run(uint64_t MaxSteps) {
  StepResult Result = StepResult::Progress;
  for (uint64_t I = 0; I != MaxSteps; ++I) {
    Result = step();
    if (Result != StepResult::Progress)
      return Result;
  }
  return Result;
}

bool Machine::allDone() const {
  for (const ProcState &P : Procs)
    if (P.St != ProcState::Status::Done)
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Verification mode
//===----------------------------------------------------------------------===//

std::vector<Move> Machine::enumerateMoves() {
  std::vector<Move> Moves = enumerateMovesImpl();
  // Undo the lazy-out preparation done while probing: enumeration must
  // not perturb the serializable state. The model checker's snapshot-free
  // DFS re-derives frame states by replaying moves from sparse
  // checkpoints and relies on enumeration being canonically pure.
  for (unsigned I = 0, E = static_cast<unsigned>(Procs.size()); I != E; ++I) {
    ProcState &P = Procs[I];
    if (P.St != ProcState::Status::Blocked)
      continue;
    const CInst &Ins = CP.Procs[I].Insts[P.PC];
    size_t N = std::min(Ins.Cases.size(), P.PreparedValid.size());
    for (size_t C = 0; C != N; ++C) {
      const CCase &Case = Ins.Cases[C];
      if (!P.PreparedValid[C] || Case.IsIn || !Case.LazyOut)
        continue;
      if (Case.ElideRecordAlloc) {
        const RecordLitExpr *R = ast_cast<RecordLitExpr>(Case.Src->Out);
        for (size_t F = 0, NF = R->getElems().size(); F != NF; ++F)
          dropSenderTemp(R->getElems()[F], P.Prepared[C][F]);
      } else if (Case.Src->Out) {
        dropSenderTemp(Case.Src->Out, P.Prepared[C][0]);
      }
      P.Prepared[C].clear();
      P.PreparedValid[C] = false;
    }
  }
  return Moves;
}

std::vector<Move> Machine::enumerateMovesImpl() {
  std::vector<Move> Moves;
  if (Error)
    return Moves;
  unsigned NP = static_cast<unsigned>(Procs.size());
  for (unsigned W = 0; W != NP; ++W) {
    if (Procs[W].St != ProcState::Status::Blocked)
      continue;
    const CInst &WI = CP.Procs[W].Insts[Procs[W].PC];
    for (size_t WC = 0, NW = WI.Cases.size(); WC != NW; ++WC) {
      const CCase &WCase = WI.Cases[WC];
      if (WCase.IsIn || !Procs[W].CaseEnabled[WC])
        continue;
      std::vector<Value> Values;
      if (!outValues(W, static_cast<unsigned>(WC), Values))
        return Moves;
      MsgDisc D = discOfValues(Values);
      const bool Disjoint = CP.Channels[WCase.ChanId].Disjoint;
      int MatchingReaderOwner = -1;
      bool Stop = false;
      const uint64_t *Mask = inWait(WCase.ChanId);
      for (unsigned Word = 0; Word != CP.MaskWords && !Stop; ++Word) {
        for (uint64_t Bits = Mask[Word]; Bits && !Stop; Bits &= Bits - 1) {
          unsigned R =
              Word * 64 + static_cast<unsigned>(std::countr_zero(Bits));
          if (R == W || Procs[R].St != ProcState::Status::Blocked)
            continue;
          const CInst &RI = CP.Procs[R].Insts[Procs[R].PC];
          for (size_t RC = 0, NR = RI.Cases.size(); RC != NR; ++RC) {
            const CCase &RCase = RI.Cases[RC];
            if (!RCase.IsIn || RCase.ChanId != WCase.ChanId ||
                !Procs[R].CaseEnabled[RC])
              continue;
            if (discRejects(RCase.Disc, D))
              continue;
            if (!matchValues(R, RCase.Pat, Values, MatchMode::Try)) {
              if (Error)
                return Moves;
              continue;
            }
            if (MatchingReaderOwner >= 0 &&
                MatchingReaderOwner != static_cast<int>(R)) {
              fail(RuntimeErrorKind::AmbiguousDispatch, WCase.Src->Loc,
                   static_cast<int>(W),
                   "message on channel '" + WCase.Src->Channel->Name +
                       "' matches patterns in two processes");
              return Moves;
            }
            MatchingReaderOwner = static_cast<int>(R);
            Move M;
            M.K = Move::Kind::Rendezvous;
            M.Channel = WCase.ChanId;
            M.Writer = static_cast<int>(W);
            M.WriterCase = static_cast<unsigned>(WC);
            M.Reader = static_cast<int>(R);
            M.ReaderCase = static_cast<unsigned>(RC);
            Moves.push_back(M);
            if (Disjoint) {
              Stop = true;
              break;
            }
          }
        }
      }
      // Environment receive.
      if (Env && Env->numVariants(WCase.Src->Channel) == 0 &&
          WCase.Src->Channel->Role == ChannelRole::ExternalReader) {
        Move M;
        M.K = Move::Kind::EnvRecv;
        M.Channel = WCase.ChanId;
        M.Writer = static_cast<int>(W);
        M.WriterCase = static_cast<unsigned>(WC);
        Moves.push_back(M);
      }
      // In per-process harness mode the environment consumes from any
      // channel it does not drive and no other process can ever read
      // (the precomputed static-reader masks answer that in O(words)).
      if (Env && WCase.Src->Channel->Role != ChannelRole::ExternalReader &&
          Env->numVariants(WCase.Src->Channel) == 0 &&
          MatchingReaderOwner < 0) {
        bool AnyInternalReader = false;
        const ChannelInfo &CInfo = CP.Channels[WCase.ChanId];
        for (unsigned Word = 0; Word != CP.MaskWords; ++Word) {
          uint64_t Bits = CInfo.StaticReaders[Word];
          if (Word == W / 64)
            Bits &= ~(uint64_t(1) << (W % 64));
          if (Bits) {
            AnyInternalReader = true;
            break;
          }
        }
        if (!AnyInternalReader) {
          Move M;
          M.K = Move::Kind::EnvRecv;
          M.Channel = WCase.ChanId;
          M.Writer = static_cast<int>(W);
          M.WriterCase = static_cast<unsigned>(WC);
          Moves.push_back(M);
        }
      }
    }
  }

  // Environment sends (per channel, skipped once that channel's finite
  // workload budget is spent).
  if (Env) {
    for (const std::unique_ptr<ChannelDecl> &Chan : Module.Prog->Channels) {
      if (Options.EnvSendBudget != 0 &&
          EnvSends[Chan->Id] >= Options.EnvSendBudget)
        continue;
      unsigned NumVariants = Env->numVariants(Chan.get());
      for (unsigned Variant = 0; Variant != NumVariants; ++Variant) {
        Value V = Env->makeVariant(Chan.get(), Variant, H);
        std::vector<Value> Values = {V};
        MsgDisc D = discOfValues(Values);
        const uint64_t *Mask = inWait(Chan->Id);
        for (unsigned Word = 0; Word != CP.MaskWords; ++Word) {
          for (uint64_t Bits = Mask[Word]; Bits; Bits &= Bits - 1) {
            unsigned R =
                Word * 64 + static_cast<unsigned>(std::countr_zero(Bits));
            if (Procs[R].St != ProcState::Status::Blocked)
              continue;
            const CInst &RI = CP.Procs[R].Insts[Procs[R].PC];
            for (size_t RC = 0, NR = RI.Cases.size(); RC != NR; ++RC) {
              const CCase &RCase = RI.Cases[RC];
              if (!RCase.IsIn || RCase.ChanId != Chan->Id ||
                  !Procs[R].CaseEnabled[RC])
                continue;
              if (discRejects(RCase.Disc, D))
                continue;
              if (!matchValues(R, RCase.Pat, Values, MatchMode::Try)) {
                if (Error)
                  return Moves;
                continue;
              }
              Move M;
              M.K = Move::Kind::EnvSend;
              M.Channel = Chan->Id;
              M.Reader = static_cast<int>(R);
              M.ReaderCase = static_cast<unsigned>(RC);
              M.EnvVariant = Variant;
              Moves.push_back(M);
            }
          }
        }
        // Undo the probe allocation so enumeration does not perturb the
        // state.
        dropValueTemp(V, SourceLoc(), -1);
        if (Error)
          return Moves;
      }
    }
  }
  return Moves;
}

StepResult Machine::applyMove(const Move &M) {
  assert(!Error && "applying a move to a failed machine");
  switch (M.K) {
  case Move::Kind::Rendezvous: {
    if (transfer(M.Writer, M.WriterCase, M.Reader, M.ReaderCase, nullptr)) {
      runToBlock(static_cast<unsigned>(M.Writer));
      if (!Error)
        runToBlock(static_cast<unsigned>(M.Reader));
    }
    break;
  }
  case Move::Kind::EnvSend: {
    const ChannelDecl *Chan = nullptr;
    for (const std::unique_ptr<ChannelDecl> &C : Module.Prog->Channels)
      if (C->Id == M.Channel)
        Chan = C.get();
    Value V = Env->makeVariant(Chan, M.EnvVariant, H);
    std::vector<Value> Values = {V};
    ++EnvSends[M.Channel];
    if (transfer(-1, 0, M.Reader, M.ReaderCase, &Values))
      runToBlock(static_cast<unsigned>(M.Reader));
    break;
  }
  case Move::Kind::EnvRecv: {
    if (transfer(M.Writer, M.WriterCase, -1, 0, nullptr))
      runToBlock(static_cast<unsigned>(M.Writer));
    break;
  }
  }
  if (Error)
    return StepResult::Errored;
  return allDone() ? StepResult::Halted : StepResult::Progress;
}

bool Machine::stuckOnEnvBudget() {
  if (Options.EnvSendBudget == 0 || Error)
    return false;
  bool AnySpent = false;
  for (uint32_t N : EnvSends)
    AnySpent |= N >= Options.EnvSendBudget;
  if (!AnySpent)
    return false;
  std::vector<uint32_t> Saved = EnvSends;
  std::fill(EnvSends.begin(), EnvSends.end(), 0u);
  bool Any = !enumerateMoves().empty();
  EnvSends = std::move(Saved);
  return Any && !Error;
}

bool Machine::isDeadlocked() {
  if (Error)
    return false;
  bool AnyBlocked = false;
  for (const ProcState &P : Procs)
    AnyBlocked |= P.St == ProcState::Status::Blocked;
  if (!AnyBlocked)
    return false;
  return enumerateMoves().empty() && !Error;
}

//===----------------------------------------------------------------------===//
// Snapshot, serialization, leak sweep
//===----------------------------------------------------------------------===//

Machine::Snapshot Machine::snapshot() const {
  return Snapshot{H, Procs, Error, Started, EnvSends};
}

void Machine::restore(const Snapshot &S) {
  H = S.H;
  Procs = S.Procs;
  Error = S.Error;
  Started = S.Started;
  EnvSends = S.EnvSends;
  ReadyQueue.clear();
  Current = -1;
  rebuildWaitBits();
}

namespace {

/// Canonical state serializer. Heap references serialize as canonical
/// ids assigned in first-visit order, never as raw objectIds, so states
/// differing only in allocation order (ids, generations, free-list
/// order) coincide. Runs in two layouts:
///
///  * inline (Blobs == nullptr): object contents follow the first-visit
///    marker in the single output string — the classic flat vector;
///  * component (Blobs != nullptr): object contents go one-per-object
///    into Blobs[id], and the control stream carries only canonical ids.
///    The model checker's COLLAPSE table interns each blob once and the
///    stored state vector shrinks to control bytes + component indices.
///
/// Targets are addressed by blob id (kControl for the control stream)
/// and re-resolved on every write: recursion may grow the blob vector
/// and invalidate outstanding string references.
class StateSerializer {
public:
  static constexpr size_t kControl = SIZE_MAX;

  StateSerializer(const Heap &H, std::string &Control,
                  std::vector<std::string> *Blobs)
      : H(H), Control(Control), Blobs(Blobs) {}

  size_t numBlobs() const { return NumBlobs; }

  void value(size_t Target, const Value &V) {
    switch (V.K) {
    case Value::Kind::Uninit:
      out(Target).push_back(0);
      return;
    case Value::Kind::Int: {
      std::string &O = out(Target);
      O.push_back(1);
      appendVarint(O, zigzagEncode(V.Scalar));
      return;
    }
    case Value::Kind::Bool: {
      std::string &O = out(Target);
      O.push_back(2);
      O.push_back(V.Scalar ? 1 : 0);
      return;
    }
    case Value::Kind::Ref:
      ref(Target, V);
      return;
    }
  }

private:
  std::string &out(size_t Target) {
    if (!Blobs || Target == kControl)
      return Control;
    return (*Blobs)[Target];
  }

  void ref(size_t Target, const Value &V) {
    const HeapObject *Obj = H.deref(V);
    if (!Obj) {
      out(Target).push_back(3); // Dangling reference: canonical "dead".
      return;
    }
    uint64_t Key = (static_cast<uint64_t>(V.Ref) << 32) | V.Gen;
    auto It = CanonicalIds.find(Key);
    if (It != CanonicalIds.end()) {
      std::string &O = out(Target);
      O.push_back(4); // Back reference.
      appendVarint(O, It->second);
      return;
    }
    uint64_t Id = NumBlobs++;
    CanonicalIds.emplace(Key, Id);
    {
      std::string &O = out(Target);
      O.push_back(5); // First visit.
      appendVarint(O, Id);
    }
    size_t ContentTarget = Target;
    if (Blobs) {
      if (Blobs->size() < NumBlobs)
        Blobs->emplace_back();
      (*Blobs)[Id].clear();
      ContentTarget = Id;
    }
    {
      std::string &O = out(ContentTarget);
      appendVarint(O, reinterpret_cast<uintptr_t>(Obj->ObjType));
      appendVarint(O, zigzagEncode(Obj->Arm));
      appendVarint(O, Obj->RefCount);
      appendVarint(O, Obj->Elems.size());
    }
    for (const Value &Elem : Obj->Elems)
      value(ContentTarget, Elem);
  }

  const Heap &H;
  std::string &Control;
  std::vector<std::string> *Blobs;
  size_t NumBlobs = 0;
  std::unordered_map<uint64_t, uint64_t> CanonicalIds;
};

/// Walks the machine state through \p S, writing control data into
/// \p Control. Shared by the inline and component serializations.
size_t serializeMachineState(const std::vector<ProcState> &Procs,
                             const RuntimeError &Error, std::string &Control,
                             StateSerializer &S) {
  for (const ProcState &P : Procs) {
    Control.push_back(static_cast<char>(P.St));
    appendVarint(Control, P.PC);
    for (const Value &Slot : P.Slots)
      S.value(StateSerializer::kControl, Slot);
    for (size_t C = 0; C != P.PreparedValid.size(); ++C) {
      Control.push_back(P.PreparedValid[C] ? 1 : 0);
      if (P.PreparedValid[C])
        for (const Value &V : P.Prepared[C])
          S.value(StateSerializer::kControl, V);
    }
  }
  Control.push_back(static_cast<char>(Error.Kind));
  return S.numBlobs();
}

} // namespace

std::string Machine::serializeState() const {
  std::string Out;
  serializeState(Out);
  return Out;
}

/// The spent per-channel env-send budget distinguishes states under a
/// finite workload; with an unbounded environment it is omitted so the
/// state vector is byte-identical to the budget-free build.
static void appendEnvBudget(const MachineOptions &Options,
                            const std::vector<uint32_t> &EnvSends,
                            std::string &Out) {
  if (Options.EnvSendBudget == 0)
    return;
  for (uint32_t N : EnvSends)
    for (int Shift = 0; Shift != 32; Shift += 8)
      Out.push_back(static_cast<char>((N >> Shift) & 0xff));
}

void Machine::serializeState(std::string &Out) const {
  Out.clear();
  StateSerializer S(H, Out, nullptr);
  serializeMachineState(Procs, Error, Out, S);
  appendEnvBudget(Options, EnvSends, Out);
}

size_t Machine::serializeComponents(std::string &Control,
                                    std::vector<std::string> &ObjectBlobs) const {
  Control.clear();
  StateSerializer S(H, Control, &ObjectBlobs);
  size_t N = serializeMachineState(Procs, Error, Control, S);
  appendEnvBudget(Options, EnvSends, Control);
  return N;
}

unsigned Machine::countLeakedObjects() const {
  // Mark phase: everything reachable from the roots of live processes.
  std::vector<uint8_t> Reachable(H.objects().size(), 0);
  std::vector<uint32_t> Worklist;
  auto root = [&](const Value &V) {
    const HeapObject *Obj = H.deref(V);
    if (Obj && !Reachable[V.Ref]) {
      Reachable[V.Ref] = 1;
      Worklist.push_back(V.Ref);
    }
  };
  for (const ProcState &P : Procs) {
    if (P.St == ProcState::Status::Done)
      continue; // A finished process can never unlink: its refs leak.
    for (const Value &Slot : P.Slots)
      root(Slot);
    for (size_t C = 0; C != P.PreparedValid.size(); ++C)
      if (P.PreparedValid[C])
        for (const Value &V : P.Prepared[C])
          root(V);
  }
  while (!Worklist.empty()) {
    uint32_t Index = Worklist.back();
    Worklist.pop_back();
    for (const Value &Elem : H.objects()[Index].Elems) {
      const HeapObject *Obj = H.deref(Elem);
      if (Obj && !Reachable[Elem.Ref]) {
        Reachable[Elem.Ref] = 1;
        Worklist.push_back(Elem.Ref);
      }
    }
  }
  unsigned Leaked = 0;
  for (size_t I = 0, E = H.objects().size(); I != E; ++I)
    if (H.objects()[I].Live && !Reachable[I])
      ++Leaked;
  return Leaked;
}

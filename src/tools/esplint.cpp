//===--- esplint.cpp - Whole-program static analyzer for ESP ---------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Runs the esplint analyses (deadlock, link/unlink balance, reachability,
// see src/analysis/) over one or more ESP programs. Each input file is a
// whole program: ESP has no separate compilation (§4), so the analyses
// are whole-program by construction.
//
// The exit code is the total number of analysis (plus frontend) errors,
// capped at 125 so it survives the 8-bit exit status.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "vmmc/EspFirmwareSource.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace esp;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: esplint [options] <file.esp>...\n"
      "\n"
      "Whole-program static analysis for ESP: deadlock detection over the\n"
      "communication topology, link/unlink balance (leaks and refcount\n"
      "underflows), and reachability/usefulness checks. Exit code is the\n"
      "number of errors found (capped at 125).\n"
      "\n"
      "options:\n"
      "  --format=text|json  output format (default text)\n"
      "  --no-deadlock       skip the deadlock search\n"
      "  --no-links          skip the link/unlink balance analysis\n"
      "  --no-reachability   skip the reachability checks\n"
      "  --max-configs N     deadlock search state cap (default 1048576)\n"
      "  --builtin-vmmc      also analyze the built-in VMMC firmware\n"
      "  -q                  print errors only (warnings still counted)\n");
}

struct LintStats {
  unsigned Errors = 0;
  unsigned Warnings = 0;
  unsigned Files = 0;
};

/// Analyzes one registered buffer; renders to stdout. Returns false only
/// when the program does not parse/check (frontend errors).
bool lintBuffer(SourceManager &SM, uint32_t FileId, const std::string &Label,
                const AnalysisOptions &Options, bool Json, bool Quiet,
                bool &FirstJson, LintStats &Stats) {
  ++Stats.Files;
  DiagnosticEngine Diags(SM);
  Parser P(SM, FileId, Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  if (Diags.hasErrors() || !checkProgram(*Prog, Diags)) {
    std::fprintf(stderr, "%s", Diags.renderAll().c_str());
    std::fprintf(stderr, "esplint: %s: program does not compile; skipping "
                         "analysis\n",
                 Label.c_str());
    Stats.Errors += Diags.getNumErrors();
    return false;
  }

  ModuleIR Module = lowerProgram(*Prog); // Unoptimized, like the checker.
  AnalysisResult Result = analyzeProgram(*Prog, Module, Options);
  Stats.Errors += Result.numErrors();
  Stats.Warnings += Result.numWarnings();

  if (Json) {
    std::printf("%s{\"file\": \"%s\", \"analysis\": ", FirstJson ? "" : ",\n",
                Label.c_str());
    FirstJson = false;
    std::string Doc = renderFindingsJson(Result, SM);
    while (!Doc.empty() && (Doc.back() == '\n'))
      Doc.pop_back();
    std::fputs(Doc.c_str(), stdout);
    std::fputs("}", stdout);
    return true;
  }

  if (Quiet) {
    AnalysisResult ErrorsOnly;
    ErrorsOnly.DeadlockSearchIncomplete = Result.DeadlockSearchIncomplete;
    for (const AnalysisFinding &F : Result.Findings)
      if (F.Severity == AnalysisSeverity::Error)
        ErrorsOnly.Findings.push_back(F);
    std::printf("%s", renderFindingsText(ErrorsOnly, SM).c_str());
  } else {
    std::printf("%s", renderFindingsText(Result, SM).c_str());
  }
  std::printf("esplint: %s: %u error(s), %u warning(s)\n", Label.c_str(),
              Result.numErrors(), Result.numWarnings());
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  AnalysisOptions Options;
  bool Json = false;
  bool Quiet = false;
  bool BuiltinVmmc = false;
  std::vector<std::string> Inputs;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--format=text") {
      Json = false;
    } else if (Arg == "--format=json") {
      Json = true;
    } else if (Arg == "--format" && I + 1 < Argc) {
      Json = std::strcmp(Argv[++I], "json") == 0;
    } else if (Arg == "--no-deadlock") {
      Options.CheckDeadlock = false;
    } else if (Arg == "--no-links") {
      Options.CheckLinkBalance = false;
    } else if (Arg == "--no-reachability") {
      Options.CheckReachability = false;
    } else if (Arg == "--max-configs" && I + 1 < Argc) {
      char *End = nullptr;
      unsigned long long Value = std::strtoull(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || Value == 0) {
        std::fprintf(stderr,
                     "esplint: --max-configs expects a positive integer, "
                     "got '%s'\n",
                     Argv[I]);
        return 2;
      }
      Options.MaxConfigs = static_cast<uint64_t>(Value);
    } else if (Arg == "--builtin-vmmc") {
      BuiltinVmmc = true;
    } else if (Arg == "-q") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "esplint: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.empty() && !BuiltinVmmc) {
    printUsage();
    return 2;
  }

  SourceManager SM;
  LintStats Stats;
  bool FirstJson = true;
  if (Json)
    std::printf("[");
  for (const std::string &Path : Inputs) {
    uint32_t FileId = SM.addFile(Path);
    if (FileId == UINT32_MAX) {
      std::fprintf(stderr, "esplint: cannot read '%s'\n", Path.c_str());
      ++Stats.Errors;
      continue;
    }
    lintBuffer(SM, FileId, Path, Options, Json, Quiet, FirstJson, Stats);
  }
  if (BuiltinVmmc) {
    uint32_t FileId =
        SM.addBuffer("<builtin-vmmc>", vmmc::getVmmcEspSource());
    lintBuffer(SM, FileId, "<builtin-vmmc>", Options, Json, Quiet, FirstJson,
               Stats);
  }
  if (Json)
    std::printf("%s]\n", FirstJson ? "" : "\n");
  else if (Stats.Files > 1)
    std::printf("esplint: total: %u file(s), %u error(s), %u warning(s)\n",
                Stats.Files, Stats.Errors, Stats.Warnings);

  return Stats.Errors > 125 ? 125 : static_cast<int>(Stats.Errors);
}

//===--- esplint.cpp - Whole-program static analyzer for ESP ---------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Runs the esplint analyses (deadlock, link/unlink balance, reachability,
// see src/analysis/) over one or more ESP programs. Each input file is a
// whole program: ESP has no separate compilation (§4), so the analyses
// are whole-program by construction. Compilation goes through
// esp::compile (src/driver/).
//
// The exit code is the total number of analysis (plus frontend) errors,
// capped at 125 so it survives the 8-bit exit status.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "driver/Driver.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/ToolArgs.h"
#include "vmmc/EspFirmwareSource.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace esp;

namespace {

const char kUsage[] =
    "usage: esplint [options] <file.esp>...\n"
    "\n"
    "Whole-program static analysis for ESP: deadlock detection over the\n"
    "communication topology, link/unlink balance (leaks and refcount\n"
    "underflows), and reachability/usefulness checks. Exit code is the\n"
    "number of errors found (capped at 125).\n"
    "\n"
    "options:\n"
    "  --format=text|json  output format (default text)\n"
    "  --no-deadlock       skip the deadlock search\n"
    "  --no-links          skip the link/unlink balance analysis\n"
    "  --no-reachability   skip the reachability checks\n"
    "  --no-interference   skip the interference warnings\n"
    "                      (self-rendezvous channels)\n"
    "  --interference      also print the conflict classes computed by\n"
    "                      the independence analysis: the channel of\n"
    "                      each communication site, a conflict-matrix\n"
    "                      summary, and the share of statically\n"
    "                      commuting move pairs (what espmc --por\n"
    "                      exploits)\n"
    "  --max-configs N     deadlock search state cap (default 1048576)\n"
    "  --builtin-vmmc      also analyze the built-in VMMC firmware\n"
    "  -q, --quiet         print errors only (warnings still counted)\n";

struct LintStats {
  unsigned Errors = 0;
  unsigned Warnings = 0;
  unsigned Files = 0;
};

/// Analyzes one input; renders to stdout. Returns false only when the
/// program does not parse/check (frontend errors).
bool lintInput(SourceManager &SM, const CompileInput &Input,
               const AnalysisOptions &Options, bool Json, bool Quiet,
               bool &FirstJson, LintStats &Stats) {
  DiagnosticEngine Diags(SM);
  CompileResult R = esp::compile(SM, Diags, {Input});
  if (!R.IOError.empty()) {
    std::fprintf(stderr, "esplint: %s\n", R.IOError.c_str());
    ++Stats.Errors;
    return false;
  }
  ++Stats.Files;
  if (!R.Success) {
    std::fprintf(stderr, "%s", Diags.renderAll().c_str());
    std::fprintf(stderr, "esplint: %s: program does not compile; skipping "
                         "analysis\n",
                 Input.Name.c_str());
    Stats.Errors += Diags.getNumErrors();
    return false;
  }

  // The analyses run on the unoptimized lowering, like the checker.
  AnalysisResult Result = analyzeProgram(*R.Prog, R.Module, Options);
  Stats.Errors += Result.numErrors();
  Stats.Warnings += Result.numWarnings();

  if (Json) {
    std::printf("%s{\"file\": \"%s\", \"analysis\": ", FirstJson ? "" : ",\n",
                Input.Name.c_str());
    FirstJson = false;
    std::string Doc = renderFindingsJson(Result, SM);
    while (!Doc.empty() && (Doc.back() == '\n'))
      Doc.pop_back();
    std::fputs(Doc.c_str(), stdout);
    std::fputs("}", stdout);
    return true;
  }

  if (Quiet) {
    AnalysisResult ErrorsOnly;
    ErrorsOnly.DeadlockSearchIncomplete = Result.DeadlockSearchIncomplete;
    for (const AnalysisFinding &F : Result.Findings)
      if (F.Severity == AnalysisSeverity::Error)
        ErrorsOnly.Findings.push_back(F);
    std::printf("%s", renderFindingsText(ErrorsOnly, SM).c_str());
  } else {
    std::printf("%s", renderFindingsText(Result, SM).c_str());
  }
  std::printf("esplint: %s: %u error(s), %u warning(s)\n", Input.Name.c_str(),
              Result.numErrors(), Result.numWarnings());
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  AnalysisOptions Options;
  bool Json = false;
  bool Quiet = false;
  bool BuiltinVmmc = false;
  std::vector<std::string> Inputs;

  ToolArgs Args(Argc, Argv, "esplint", kUsage);
  while (Args.next()) {
    std::string Format;
    uint64_t MaxConfigs = 0;
    if (Args.flag("--format=text"))
      Json = false;
    else if (Args.flag("--format=json"))
      Json = true;
    else if (Args.option("--format", Format))
      Json = Format == "json";
    else if (Args.flag("--no-deadlock"))
      Options.CheckDeadlock = false;
    else if (Args.flag("--no-links"))
      Options.CheckLinkBalance = false;
    else if (Args.flag("--no-reachability"))
      Options.CheckReachability = false;
    else if (Args.flag("--no-interference"))
      Options.CheckInterference = false;
    else if (Args.flag("--interference"))
      Options.ReportInterference = true;
    else if (Args.optionUInt("--max-configs", MaxConfigs, 1))
      Options.MaxConfigs = MaxConfigs;
    else if (Args.flag("--builtin-vmmc"))
      BuiltinVmmc = true;
    else if (Args.flag("-q"))
      Quiet = true;
    else if (Args.positional())
      Inputs.push_back(Args.arg());
    else
      Args.unknownOrBuiltin();
  }
  Quiet |= Args.quiet(); // The scanner-level --quiet spelling.
  if (Args.shouldExit())
    return Args.exitCode();
  if (Inputs.empty() && !BuiltinVmmc) {
    Args.printUsage();
    return 2;
  }

  SourceManager SM;
  LintStats Stats;
  bool FirstJson = true;
  if (Json)
    std::printf("[");
  for (const std::string &Path : Inputs)
    lintInput(SM, CompileInput::file(Path), Options, Json, Quiet, FirstJson,
              Stats);
  if (BuiltinVmmc) {
    lintInput(SM,
              CompileInput::buffer("<builtin-vmmc>", vmmc::getVmmcEspSource()),
              Options, Json, Quiet, FirstJson, Stats);
  }
  if (Json)
    std::printf("%s]\n", FirstJson ? "" : "\n");
  else if (Stats.Files > 1)
    std::printf("esplint: total: %u file(s), %u error(s), %u warning(s)\n",
                Stats.Files, Stats.Errors, Stats.Warnings);

  return Stats.Errors > 125 ? 125 : static_cast<int>(Stats.Errors);
}

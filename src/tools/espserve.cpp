//===--- espserve.cpp - Fleet-scale ESP serving driver ----------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Drives the src/serve runtime: N machine instances of the VMMC serve
// firmware (one per simulated client connection, one shared compiled
// program) on a work-stealing worker pool, under a deterministic load.
// Verifies the aggregate totals against the load generator's prediction
// and reports throughput plus latency percentiles. See docs/serving.md.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "serve/Serve.h"
#include "support/ToolArgs.h"

#include <cstdio>
#include <string>

using namespace esp;

namespace {

const char kUsage[] =
    "usage: espserve [options]\n"
    "\n"
    "Fleet-scale ESP serving: thousands of firmware machine instances\n"
    "on a work-stealing thread pool, driven by a deterministic load\n"
    "generator. Exit 0 only when every request was answered and the\n"
    "aggregate totals match the generator's prediction.\n"
    "\n"
    "options:\n"
    "  --machines N        connection slots / machine instances\n"
    "                      (default 256)\n"
    "  --requests N        total requests across the fleet\n"
    "                      (default 10000)\n"
    "  --serve-jobs N      worker threads; 1 = deterministic schedule\n"
    "                      (default 1)\n"
    "  --inbox-cap N       per-machine inbox bound (default 64)\n"
    "  --batch N           max burst / event-delivery batch (default 16)\n"
    "  --conn-requests N   recycle a machine after N responses\n"
    "                      (default 0 = never)\n"
    "  --seed N            load-generator seed (default 1)\n"
    "  --stats-json FILE   write serve.* metrics as JSON\n"
    "  --trace FILE        Chrome trace of the first --trace-machines\n"
    "                      machines (implies --serve-jobs 1)\n"
    "  --trace-machines N  how many machines get trace tracks\n"
    "                      (default 1)\n"
    "  --quiet, -q         suppress the summary line\n"
    "  --help, --version\n";

} // namespace

int main(int Argc, char **Argv) {
  ToolArgs Args(Argc, Argv, "espserve", kUsage);

  serve::ServeOptions Opt;
  uint64_t Machines = 256, Requests = 10'000, Jobs = 1, InboxCap = 64,
           Batch = 16, ConnRequests = 0, Seed = 1, TraceMachines = 1;
  std::string StatsPath, TracePath;

  while (Args.next()) {
    if (Args.optionUInt("--machines", Machines, 1))
      ;
    else if (Args.optionUInt("--requests", Requests, 1))
      ;
    else if (Args.optionUInt("--serve-jobs", Jobs, 1))
      ;
    else if (Args.optionUInt("--inbox-cap", InboxCap, 1))
      ;
    else if (Args.optionUInt("--batch", Batch, 1))
      ;
    else if (Args.optionUInt("--conn-requests", ConnRequests))
      ;
    else if (Args.optionUInt("--seed", Seed))
      ;
    else if (Args.optionUInt("--trace-machines", TraceMachines, 1))
      ;
    else if (Args.option("--stats-json", StatsPath))
      ;
    else if (Args.option("--trace", TracePath))
      ;
    else
      Args.unknownOrBuiltin();
  }
  if (Args.shouldExit())
    return Args.exitCode();

  Opt.Machines = static_cast<uint32_t>(Machines);
  Opt.Requests = Requests;
  Opt.Workers = static_cast<unsigned>(Jobs);
  Opt.InboxCap = static_cast<unsigned>(InboxCap);
  Opt.Batch = static_cast<uint32_t>(Batch);
  Opt.ConnRequests = ConnRequests;
  Opt.Seed = Seed;
  Opt.TraceMachines = static_cast<uint32_t>(TraceMachines);

  obs::MetricsRegistry Metrics;
  obs::TraceWriter Trace;
  const bool Observing = !StatsPath.empty() || !TracePath.empty();
  if (Observing)
    obs::setEnabled(true);
  if (!StatsPath.empty())
    Opt.Metrics = &Metrics;
  if (!TracePath.empty()) {
    if (Opt.Workers != 1) {
      // Tracing needs the deterministic single-worker schedule; honor
      // the trace request rather than silently dropping it.
      if (!Args.quiet())
        std::fprintf(stderr,
                     "espserve: --trace forces --serve-jobs 1 "
                     "(deterministic schedule)\n");
      Opt.Workers = 1;
    }
    Opt.Trace = &Trace;
  }

  serve::ServeResult R = serve::runServe(Opt);

  if (!TracePath.empty() && !Trace.writeFile(TracePath)) {
    Args.error("cannot write trace file '" + TracePath + "'");
    return Args.exitCode();
  }

  if (!StatsPath.empty()) {
    obs::JsonValue Stats = obs::JsonValue::object();
    Stats.set("metrics", Metrics.json());
    obs::JsonValue Run = obs::JsonValue::object();
    Run.set("machines", obs::JsonValue::integer(Opt.Machines));
    Run.set("requests", obs::JsonValue::integer(
                            static_cast<int64_t>(Opt.Requests)));
    Run.set("workers", obs::JsonValue::integer(Opt.Workers));
    Run.set("elapsed_ns", obs::JsonValue::integer(
                              static_cast<int64_t>(R.ElapsedNs)));
    Run.set("requests_per_sec", obs::JsonValue::number(R.RequestsPerSec));
    Run.set("p50_ns",
            obs::JsonValue::integer(static_cast<int64_t>(R.P50Ns)));
    Run.set("p99_ns",
            obs::JsonValue::integer(static_cast<int64_t>(R.P99Ns)));
    Run.set("p999_ns",
            obs::JsonValue::integer(static_cast<int64_t>(R.P999Ns)));
    Run.set("inbox_high_water", obs::JsonValue::integer(
                                    static_cast<int64_t>(R.InboxHighWater)));
    Run.set("heap_high_water_max",
            obs::JsonValue::integer(
                static_cast<int64_t>(R.HeapHighWaterMax)));
    Run.set("checksum", obs::JsonValue::integer(
                            static_cast<int64_t>(R.Totals.Checksum)));
    Stats.set("run", std::move(Run));
    std::string Text = Stats.dump(2);
    std::FILE *Out = std::fopen(StatsPath.c_str(), "w");
    if (!Out) {
      Args.error("cannot write stats file '" + StatsPath + "'");
      return Args.exitCode();
    }
    std::fwrite(Text.data(), 1, Text.size(), Out);
    std::fputc('\n', Out);
    std::fclose(Out);
  }

  if (!R.Ok) {
    Args.error(R.Error);
    return Args.exitCode();
  }

  if (!Args.quiet())
    std::printf("espserve: %llu machines, %llu requests, %u workers: "
                "%.0f req/s, p50 %.1f us, p99 %.1f us, p999 %.1f us "
                "(steals %llu, resets %llu, stalls %llu)\n",
                static_cast<unsigned long long>(Opt.Machines),
                static_cast<unsigned long long>(R.Totals.Responses),
                Opt.Workers, R.RequestsPerSec, R.P50Ns / 1000.0,
                R.P99Ns / 1000.0, R.P999Ns / 1000.0,
                static_cast<unsigned long long>(R.Steals),
                static_cast<unsigned long long>(R.Resets),
                static_cast<unsigned long long>(R.BackpressureStalls));
  return 0;
}

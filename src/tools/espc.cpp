//===--- espc.cpp - The ESP compiler driver ----------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// The compiler of Figure 4: takes an ESP program and generates the two
// targets — a C file for the firmware build and a SPIN (Promela)
// specification for verification. Additionally supports IR dumps,
// check-only runs, and direct execution of closed programs on the ESP
// runtime.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "codegen/CCodeGen.h"
#include "codegen/PromelaGen.h"
#include "frontend/Parser.h"
#include "frontend/PrettyPrinter.h"
#include "frontend/Sema.h"
#include "ir/Passes.h"
#include "runtime/Machine.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace esp;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: espc [options] <file.esp>\n"
      "\n"
      "The ESP compiler (PLDI 2001 reproduction). Generates the two\n"
      "targets of the paper's Figure 4.\n"
      "\n"
      "options:\n"
      "  --emit-c          generate C firmware code (default)\n"
      "  --emit-header     generate the C entry-point header\n"
      "  --emit-spin       generate the SPIN (Promela) specification\n"
      "  --dump-ir         dump the state-machine IR\n"
      "  --check           parse and type-check only\n"
      "  --analyze         run the esplint static analyses (deadlock,\n"
      "                    link balance, reachability); analysis errors\n"
      "                    fail the compile\n"
      "  -Wanalysis        like --analyze, but report everything as\n"
      "                    warnings (never fails the compile)\n"
      "  --format          pretty-print the program in canonical form\n"
      "  --run             execute a closed program on the ESP runtime\n"
      "  --safety          compile liveness/bounds assertions into the C\n"
      "                    (debug firmware; freed objects are quarantined)\n"
      "  --max-steps N     step limit for --run (default 1000000)\n"
      "  --instances N     program copies in the SPIN spec (default 1)\n"
      "  -O0               disable the section 6.1 optimizations\n"
      "  -o <file>         write output to <file> instead of stdout\n");
}

} // namespace

int main(int Argc, char **Argv) {
  enum class Action { EmitC, EmitHeader, EmitSpin, DumpIR, Check, Run, Format };
  Action Act = Action::EmitC;
  bool Optimize = true;
  bool SafetyChecks = false;
  bool Analyze = false;
  bool AnalyzeAsWarnings = false;
  std::string InputPath;
  std::string OutputPath;
  unsigned Instances = 1;
  uint64_t MaxSteps = 1'000'000;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--emit-c") {
      Act = Action::EmitC;
    } else if (Arg == "--emit-header") {
      Act = Action::EmitHeader;
    } else if (Arg == "--emit-spin") {
      Act = Action::EmitSpin;
    } else if (Arg == "--dump-ir") {
      Act = Action::DumpIR;
    } else if (Arg == "--check") {
      Act = Action::Check;
    } else if (Arg == "--format") {
      Act = Action::Format;
    } else if (Arg == "--run") {
      Act = Action::Run;
    } else if (Arg == "-O0") {
      Optimize = false;
    } else if (Arg == "--safety") {
      SafetyChecks = true;
    } else if (Arg == "--analyze") {
      Analyze = true;
    } else if (Arg == "-Wanalysis") {
      AnalyzeAsWarnings = true;
    } else if (Arg == "-o" && I + 1 < Argc) {
      OutputPath = Argv[++I];
    } else if (Arg == "--instances" && I + 1 < Argc) {
      Instances = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (Arg == "--max-steps" && I + 1 < Argc) {
      MaxSteps = static_cast<uint64_t>(std::atoll(Argv[++I]));
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "espc: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    } else {
      if (!InputPath.empty()) {
        std::fprintf(stderr, "espc: multiple input files\n");
        return 2;
      }
      InputPath = Arg;
    }
  }
  if (InputPath.empty()) {
    printUsage();
    return 2;
  }

  SourceManager SM;
  DiagnosticEngine Diags(SM);
  uint32_t FileId = SM.addFile(InputPath);
  if (FileId == UINT32_MAX) {
    std::fprintf(stderr, "espc: cannot read '%s'\n", InputPath.c_str());
    return 1;
  }
  Parser P(SM, FileId, Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  bool OK = !Diags.hasErrors() && checkProgram(*Prog, Diags);
  if (OK && (Analyze || AnalyzeAsWarnings)) {
    // The analyses run on the unoptimized lowering, like the model
    // checker, so findings map directly onto the source.
    ModuleIR Unoptimized = lowerProgram(*Prog);
    AnalysisResult Result = analyzeProgram(*Prog, Unoptimized);
    reportFindings(Result, Diags, /*DemoteErrors=*/!Analyze);
    OK = !Diags.hasErrors();
  }
  std::fprintf(stderr, "%s", Diags.renderAll().c_str());
  if (!OK)
    return 1;
  if (Act == Action::Check) {
    std::fprintf(stderr, "espc: %s: ok (%zu processes, %zu channels)\n",
                 InputPath.c_str(), Prog->Processes.size(),
                 Prog->Channels.size());
    return 0;
  }

  std::string Output;
  if (Act == Action::Format) {
    Output = printProgram(*Prog);
  } else if (Act == Action::EmitSpin) {
    PromelaGenOptions Options;
    Options.Instances = Instances;
    Output = generatePromela(*Prog, Options);
  } else {
    ModuleIR Module = lowerProgram(*Prog);
    if (Optimize)
      optimizeModule(Module, OptOptions::all());
    switch (Act) {
    case Action::EmitC: {
      CCodeGenOptions CGOptions;
      CGOptions.EmitSafetyChecks = SafetyChecks;
      Output = generateC(Module, CGOptions);
      break;
    }
    case Action::EmitHeader:
      Output = generateCHeader(Module);
      break;
    case Action::DumpIR:
      Output = Module.dump();
      break;
    case Action::Run: {
      for (const std::unique_ptr<ChannelDecl> &Chan : Prog->Channels) {
        if (Chan->Role != ChannelRole::Internal) {
          std::fprintf(stderr,
                       "espc: --run requires a closed program; channel "
                       "'%s' has an external interface\n",
                       Chan->Name.c_str());
          return 1;
        }
      }
      Machine M(Module, MachineOptions());
      M.start();
      Machine::StepResult R = M.run(MaxSteps);
      if (M.error()) {
        std::fprintf(stderr, "espc: runtime error: %s (%s)\n",
                     M.error().Message.c_str(),
                     runtimeErrorKindName(M.error().Kind));
        return 1;
      }
      std::fprintf(stderr,
                   "espc: %s after %llu rendezvous, %llu instructions, "
                   "%llu context switches (%u live objects)\n",
                   R == Machine::StepResult::Halted ? "halted"
                                                    : "quiescent",
                   (unsigned long long)M.stats().Rendezvous,
                   (unsigned long long)M.stats().Instructions,
                   (unsigned long long)M.stats().ContextSwitches,
                   M.heap().getLiveCount());
      return 0;
    }
    case Action::EmitSpin:
    case Action::Check:
    case Action::Format:
      break;
    }
  }

  if (OutputPath.empty()) {
    std::fwrite(Output.data(), 1, Output.size(), stdout);
  } else {
    std::ofstream Out(OutputPath);
    if (!Out) {
      std::fprintf(stderr, "espc: cannot write '%s'\n", OutputPath.c_str());
      return 1;
    }
    Out << Output;
  }
  return 0;
}

//===--- espc.cpp - The ESP compiler driver ----------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// The compiler of Figure 4: takes an ESP program and generates the two
// targets — a C file for the firmware build and a SPIN (Promela)
// specification for verification. Additionally supports IR dumps,
// check-only runs, and direct execution of closed programs on the ESP
// runtime. All compilation goes through esp::compile (src/driver/).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "codegen/CCodeGen.h"
#include "codegen/PromelaGen.h"
#include "driver/Driver.h"
#include "frontend/PrettyPrinter.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Profile.h"
#include "obs/TracingObserver.h"
#include "runtime/Machine.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/ToolArgs.h"

#include <cstdio>
#include <fstream>
#include <string>

using namespace esp;

namespace {

const char kUsage[] =
    "usage: espc [options] <file.esp>\n"
    "\n"
    "The ESP compiler (PLDI 2001 reproduction). Generates the two\n"
    "targets of the paper's Figure 4.\n"
    "\n"
    "options:\n"
    "  --emit-c          generate C firmware code (default)\n"
    "  --emit-header     generate the C entry-point header\n"
    "  --emit-spin       generate the SPIN (Promela) specification\n"
    "  --dump-ir         dump the state-machine IR\n"
    "  --check           parse and type-check only\n"
    "  --analyze         run the esplint static analyses (deadlock,\n"
    "                    link balance, reachability); analysis errors\n"
    "                    fail the compile\n"
    "  -Wanalysis        like --analyze, but report everything as\n"
    "                    warnings (never fails the compile)\n"
    "  --format          pretty-print the program in canonical form\n"
    "  --run             execute a closed program on the ESP runtime\n"
    "  --safety          compile liveness/bounds assertions into the C\n"
    "                    (debug firmware; freed objects are quarantined)\n"
    "  --max-steps N     step limit for --run (default 1000000)\n"
    "  --instances N     program copies in the SPIN spec (default 1)\n"
    "  --trace <file>    run the program (implies --run) and write a\n"
    "                    Chrome trace_event JSON file: one track per\n"
    "                    process, flow arrows per rendezvous, heap\n"
    "                    counters; load it in chrome://tracing or Perfetto\n"
    "  --profile         run the program (implies --run) and print an\n"
    "                    IR-level hotspot profile (per-instruction step\n"
    "                    counts, blocked time per channel) to stderr\n"
    "  --quiet, -q       suppress the --run summary line and shorten the\n"
    "                    --profile report\n"
    "  -O0               disable the section 6.1 optimizations\n"
    "  -o <file>         write output to <file> instead of stdout\n";

} // namespace

int main(int Argc, char **Argv) {
  enum class Action { EmitC, EmitHeader, EmitSpin, DumpIR, Check, Run, Format };
  Action Act = Action::EmitC;
  bool Optimize = true;
  bool SafetyChecks = false;
  bool Analyze = false;
  bool AnalyzeAsWarnings = false;
  std::string InputPath;
  std::string OutputPath;
  std::string TracePath;
  bool Profile = false;
  uint64_t Instances = 1;
  uint64_t MaxSteps = 1'000'000;

  ToolArgs Args(Argc, Argv, "espc", kUsage);
  while (Args.next()) {
    if (Args.flag("--emit-c"))
      Act = Action::EmitC;
    else if (Args.flag("--emit-header"))
      Act = Action::EmitHeader;
    else if (Args.flag("--emit-spin"))
      Act = Action::EmitSpin;
    else if (Args.flag("--dump-ir"))
      Act = Action::DumpIR;
    else if (Args.flag("--check"))
      Act = Action::Check;
    else if (Args.flag("--format"))
      Act = Action::Format;
    else if (Args.flag("--run"))
      Act = Action::Run;
    else if (Args.flag("-O0"))
      Optimize = false;
    else if (Args.flag("--safety"))
      SafetyChecks = true;
    else if (Args.flag("--analyze"))
      Analyze = true;
    else if (Args.flag("-Wanalysis"))
      AnalyzeAsWarnings = true;
    else if (Args.option("-o", OutputPath))
      ;
    else if (Args.option("--trace", TracePath))
      Act = Action::Run;
    else if (Args.flag("--profile")) {
      Profile = true;
      Act = Action::Run;
    } else if (Args.optionUInt("--instances", Instances, 1))
      ;
    else if (Args.optionUInt("--max-steps", MaxSteps))
      ;
    else if (Args.positional()) {
      if (!InputPath.empty())
        Args.usageError("multiple input files");
      else
        InputPath = Args.arg();
    } else
      Args.unknownOrBuiltin();
  }
  if (Args.shouldExit())
    return Args.exitCode();
  if (InputPath.empty()) {
    Args.printUsage();
    return 2;
  }

  const bool Observing = !TracePath.empty() || Profile;
  if (Observing)
    obs::setEnabled(true);

  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileOptions Options;
  Options.Optimize = Optimize;
  CompileResult R =
      esp::compile(SM, Diags, {CompileInput::file(InputPath)}, Options);
  if (!R.IOError.empty()) {
    Args.error(R.IOError);
    return Args.exitCode();
  }
  bool OK = R.Success;
  if (OK && (Analyze || AnalyzeAsWarnings)) {
    // The analyses run on the unoptimized lowering, like the model
    // checker, so findings map directly onto the source.
    AnalysisResult Result = analyzeProgram(*R.Prog, R.Module);
    reportFindings(Result, Diags, /*DemoteErrors=*/!Analyze);
    OK = !Diags.hasErrors();
  }
  std::fprintf(stderr, "%s", Diags.renderAll().c_str());
  if (!OK)
    return 1;
  if (Act == Action::Check) {
    std::fprintf(stderr, "espc: %s: ok (%zu processes, %zu channels)\n",
                 InputPath.c_str(), R.Prog->Processes.size(),
                 R.Prog->Channels.size());
    return 0;
  }

  std::string Output;
  if (Act == Action::Format) {
    Output = printProgram(*R.Prog);
  } else if (Act == Action::EmitSpin) {
    PromelaGenOptions PGOptions;
    PGOptions.Instances = static_cast<unsigned>(Instances);
    Output = generatePromela(*R.Prog, PGOptions);
  } else {
    const ModuleIR &Module = Optimize ? R.Optimized : R.Module;
    switch (Act) {
    case Action::EmitC: {
      CCodeGenOptions CGOptions;
      CGOptions.EmitSafetyChecks = SafetyChecks;
      Output = generateC(Module, CGOptions);
      break;
    }
    case Action::EmitHeader:
      Output = generateCHeader(Module);
      break;
    case Action::DumpIR:
      Output = Module.dump();
      break;
    case Action::Run: {
      for (const std::unique_ptr<ChannelDecl> &Chan : R.Prog->Channels) {
        if (Chan->Role != ChannelRole::Internal) {
          std::fprintf(stderr,
                       "espc: --run requires a closed program; channel "
                       "'%s' has an external interface\n",
                       Chan->Name.c_str());
          return 1;
        }
      }
      Machine M(Module, MachineOptions());

      // Observability: --trace and/or --profile hook the MachineObserver;
      // a plain --run installs nothing and pays nothing.
      obs::TraceWriter Trace;
      obs::TracingObserver Tracer(Trace);
      obs::IrProfiler Profiler(Module);
      obs::FanoutObserver Fanout;
      if (!TracePath.empty()) {
        Tracer.attach(M, InputPath);
        Fanout.add(&Tracer);
      }
      if (Profile)
        Fanout.add(&Profiler);
      if (Observing)
        M.setObserver(&Fanout);

      M.start();
      StepResult Res = M.run(MaxSteps);
      if (M.error()) {
        std::fprintf(stderr, "espc: runtime error: %s (%s)\n",
                     M.error().Message.c_str(),
                     runtimeErrorKindName(M.error().Kind));
        return 1;
      }
      if (!TracePath.empty()) {
        Tracer.finishTrace(M);
        if (!Trace.writeFile(TracePath)) {
          std::fprintf(stderr, "espc: cannot write '%s'\n",
                       TracePath.c_str());
          return 1;
        }
        if (!Args.quiet())
          std::fprintf(stderr, "espc: wrote %zu trace events to %s\n",
                       Trace.eventCount(), TracePath.c_str());
      }
      if (Profile) {
        std::string Report = Profiler.report(&SM, Args.quiet() ? 5 : 10,
                                             /*Compact=*/Args.quiet());
        std::fputs(Report.c_str(), stderr);
        if (R.Metrics && !Args.quiet())
          std::fputs(R.Metrics->report().c_str(), stderr);
      }
      if (!Args.quiet())
        std::fprintf(stderr,
                     "espc: %s after %llu rendezvous, %llu instructions, "
                     "%llu context switches (%u live objects)\n",
                     Res == StepResult::Halted ? "halted" : "quiescent",
                     (unsigned long long)M.stats().Rendezvous,
                     (unsigned long long)M.stats().Instructions,
                     (unsigned long long)M.stats().ContextSwitches,
                     M.heap().getLiveCount());
      return 0;
    }
    case Action::EmitSpin:
    case Action::Check:
    case Action::Format:
      break;
    }
  }

  if (OutputPath.empty()) {
    std::fwrite(Output.data(), 1, Output.size(), stdout);
  } else {
    std::ofstream Out(OutputPath);
    if (!Out) {
      std::fprintf(stderr, "espc: cannot write '%s'\n", OutputPath.c_str());
      return 1;
    }
    Out << Output;
  }
  return 0;
}

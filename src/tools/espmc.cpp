//===--- espmc.cpp - The ESP model-checking driver ----------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// The verification side of Figure 4: combines the program with optional
// test-harness ESP files (the analogue of the paper's test.SPIN files —
// extra processes that generate external events and assert properties),
// then explores the state space. Also runs the §5.3 per-process
// memory-safety harness.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "mc/SafetyHarness.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace esp;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: espmc [options] <file.esp> [harness.esp ...]\n"
      "\n"
      "The ESP verifier (PLDI 2001 reproduction of the SPIN workflow).\n"
      "Harness files are concatenated with the program, as the paper\n"
      "combines pgm.SPIN with test.SPIN.\n"
      "\n"
      "options:\n"
      "  --mode exhaustive|bitstate|sim   exploration mode (default\n"
      "                                   exhaustive, section 5.1)\n"
      "  --process <name>    verify one process's memory safety against\n"
      "                      a nondeterministic environment (section 5.3)\n"
      "  --max-states N      state bound (default 10000000)\n"
      "  --max-depth N       search depth bound; a truncated exhaustive\n"
      "                      search reports 'verified (partial)'\n"
      "  --max-objects N     object-table bound; exhaustion = leak\n"
      "  --visited exact|hash64|hash128\n"
      "                      visited-state storage for exhaustive search\n"
      "                      (default hash64: 64-bit hash compaction;\n"
      "                      exact stores full state vectors)\n"
      "  --collapse / --no-collapse\n"
      "                      COLLAPSE compression of exact-mode state\n"
      "                      vectors (default on)\n"
      "  --snapshot-stride N keep one machine snapshot every N DFS levels\n"
      "                      and replay moves in between (default 16)\n"
      "  --bits N            bit-state table log2 size (default 24,\n"
      "                      clamped to [10,28])\n"
      "  --runs N            simulation runs (default 256)\n"
      "  --seed N            simulation / swarm base seed\n"
      "  --jobs N            worker threads (default 1: the sequential\n"
      "                      engine; 0 = one per hardware thread). A\n"
      "                      completed exhaustive search reports the same\n"
      "                      verdict and stored-state count at any N\n"
      "  --swarm             with --mode bitstate --jobs N: independent\n"
      "                      searches per worker with distinct hash seeds\n"
      "                      and randomized move order; coverage is the\n"
      "                      union of the workers'\n"
      "  --no-deadlock       do not report deadlocks\n"
      "  --no-leaks          do not report unreachable live objects\n"
      "  --int-domain a,b,c  environment int values (default 0,1)\n");
}

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "espmc: cannot read '%s'\n", Path.c_str());
    std::exit(1);
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  return Text.str();
}

} // namespace

int main(int Argc, char **Argv) {
  McOptions Mc;
  std::string ProcessName;
  std::vector<std::string> Inputs;
  std::vector<int64_t> IntDomain = {0, 1};

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--mode" && I + 1 < Argc) {
      std::string Mode = Argv[++I];
      if (Mode == "exhaustive")
        Mc.Mode = SearchMode::Exhaustive;
      else if (Mode == "bitstate")
        Mc.Mode = SearchMode::BitState;
      else if (Mode == "sim")
        Mc.Mode = SearchMode::Simulation;
      else {
        std::fprintf(stderr, "espmc: unknown mode '%s'\n", Mode.c_str());
        return 2;
      }
    } else if (Arg == "--process" && I + 1 < Argc) {
      ProcessName = Argv[++I];
    } else if (Arg == "--max-states" && I + 1 < Argc) {
      Mc.MaxStates = static_cast<uint64_t>(std::atoll(Argv[++I]));
    } else if ((Arg == "--max-depth" || Arg == "--maxdepth") && I + 1 < Argc) {
      Mc.MaxDepth = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (Arg == "--max-objects" && I + 1 < Argc) {
      Mc.MaxObjects = static_cast<uint32_t>(std::atoi(Argv[++I]));
    } else if (Arg == "--visited" && I + 1 < Argc) {
      std::string Kind = Argv[++I];
      if (Kind == "exact")
        Mc.Visited = VisitedKind::Exact;
      else if (Kind == "hash64")
        Mc.Visited = VisitedKind::Hash64;
      else if (Kind == "hash128")
        Mc.Visited = VisitedKind::Hash128;
      else {
        std::fprintf(stderr, "espmc: unknown visited kind '%s'\n",
                     Kind.c_str());
        return 2;
      }
    } else if (Arg == "--collapse") {
      Mc.Collapse = true;
    } else if (Arg == "--no-collapse") {
      Mc.Collapse = false;
    } else if (Arg == "--snapshot-stride" && I + 1 < Argc) {
      Mc.SnapshotStride = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (Arg == "--bits" && I + 1 < Argc) {
      unsigned Bits = static_cast<unsigned>(std::atoi(Argv[++I]));
      if (clampedBitStateBits(Bits) != Bits)
        std::fprintf(stderr, "espmc: --bits %u out of range, clamping to %u\n",
                     Bits, clampedBitStateBits(Bits));
      Mc.BitStateBits = Bits;
    } else if (Arg == "--runs" && I + 1 < Argc) {
      Mc.SimulationRuns = static_cast<uint64_t>(std::atoll(Argv[++I]));
    } else if (Arg == "--seed" && I + 1 < Argc) {
      Mc.Seed = static_cast<uint64_t>(std::atoll(Argv[++I]));
    } else if (Arg == "--jobs" && I + 1 < Argc) {
      Mc.Jobs = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (Arg == "--swarm") {
      Mc.Swarm = true;
    } else if (Arg == "--no-deadlock") {
      Mc.CheckDeadlock = false;
    } else if (Arg == "--no-leaks") {
      Mc.CheckLeaks = false;
    } else if (Arg == "--int-domain" && I + 1 < Argc) {
      IntDomain.clear();
      std::string Spec = Argv[++I];
      size_t Pos = 0;
      while (Pos < Spec.size()) {
        size_t Comma = Spec.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = Spec.size();
        IntDomain.push_back(std::atoll(Spec.substr(Pos, Comma - Pos).c_str()));
        Pos = Comma + 1;
      }
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "espmc: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.empty()) {
    printUsage();
    return 2;
  }

  // Concatenate the program with its test harness files (Figure 4).
  std::string Combined;
  for (const std::string &Path : Inputs) {
    Combined += "// ---- ";
    Combined += Path;
    Combined += " ----\n";
    Combined += readFileOrDie(Path);
    Combined += "\n";
  }

  SourceManager SM;
  DiagnosticEngine Diags(SM);
  std::unique_ptr<Program> Prog =
      Parser::parse(SM, Diags, Inputs[0], Combined);
  bool OK = Prog && checkProgram(*Prog, Diags);
  std::fprintf(stderr, "%s", Diags.renderAll().c_str());
  if (!OK)
    return 1;

  McResult Result;
  if (!ProcessName.empty()) {
    SafetyOptions Options;
    Options.IntDomain = IntDomain;
    Options.Mc = Mc;
    Result = verifyProcessMemorySafety(*Prog, ProcessName, Options);
  } else {
    // Whole-system verification: the harness must close the program.
    ModuleIR Module = lowerProgram(*Prog);
    Result = checkModel(Module, Mc);
  }
  std::printf("%s", Result.report().c_str());
  return Result.foundViolation() ? 3 : 0;
}

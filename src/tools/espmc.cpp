//===--- espmc.cpp - The ESP model-checking driver ----------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// The verification side of Figure 4: combines the program with optional
// test-harness ESP files (the analogue of the paper's test.SPIN files —
// extra processes that generate external events and assert properties),
// then explores the state space. Also runs the §5.3 per-process
// memory-safety harness. Compilation goes through esp::compile
// (src/driver/), which concatenates program and harness files.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "mc/SafetyHarness.h"
#include "obs/Progress.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/ToolArgs.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace esp;

namespace {

const char kUsage[] =
    "usage: espmc [options] <file.esp> [harness.esp ...]\n"
    "\n"
    "The ESP verifier (PLDI 2001 reproduction of the SPIN workflow).\n"
    "Harness files are concatenated with the program, as the paper\n"
    "combines pgm.SPIN with test.SPIN.\n"
    "\n"
    "options:\n"
    "  --mode exhaustive|bitstate|sim   exploration mode (default\n"
    "                                   exhaustive, section 5.1)\n"
    "  --process <name[,name...]>\n"
    "                      verify the memory safety of one process (or a\n"
    "                      comma-separated cluster of processes) against\n"
    "                      a nondeterministic environment (section 5.3);\n"
    "                      channels between cluster members rendezvous\n"
    "                      for real, only the rest are driven\n"
    "  --por               ample-set partial-order reduction: expand\n"
    "                      only a provably sufficient subset of moves\n"
    "                      per state, from the static independence\n"
    "                      analysis. Same verdicts, fewer states; not\n"
    "                      compatible with --swarm or --mode sim\n"
    "  --env-budget N      bound the environment to N sends per channel\n"
    "                      along any path (default 0 = unbounded): a\n"
    "                      finite 'verify N requests end to end'\n"
    "                      workload. Pairs well with --por, whose\n"
    "                      reduction is largest on the acyclic state\n"
    "                      spaces a finite workload produces\n"
    "  --max-states N      state bound (default 10000000)\n"
    "  --max-depth N       search depth bound; a truncated exhaustive\n"
    "                      search reports 'verified (partial)'\n"
    "  --max-objects N     object-table bound; exhaustion = leak\n"
    "  --visited exact|hash64|hash128\n"
    "                      visited-state storage for exhaustive search\n"
    "                      (default hash64: 64-bit hash compaction;\n"
    "                      exact stores full state vectors)\n"
    "  --collapse / --no-collapse\n"
    "                      COLLAPSE compression of exact-mode state\n"
    "                      vectors (default on)\n"
    "  --snapshot-stride N keep one machine snapshot every N DFS levels\n"
    "                      and replay moves in between (default 16)\n"
    "  --bits N            bit-state table log2 size (default 24,\n"
    "                      clamped to [10,28])\n"
    "  --runs N            simulation runs (default 256)\n"
    "  --seed N            simulation / swarm base seed\n"
    "  --jobs N            worker threads (default 1: the sequential\n"
    "                      engine; 0 = one per hardware thread). A\n"
    "                      completed exhaustive search reports the same\n"
    "                      verdict and stored-state count at any N\n"
    "  --swarm             with --mode bitstate --jobs N: independent\n"
    "                      searches per worker with distinct hash seeds\n"
    "                      and randomized move order; coverage is the\n"
    "                      union of the workers'\n"
    "  --no-deadlock       do not report deadlocks\n"
    "  --no-leaks          do not report unreachable live objects\n"
    "  --int-domain a,b,c  environment int values (default 0,1)\n"
    "  --progress[=secs]   print live search telemetry to stderr every\n"
    "                      secs seconds (default 2; 0 = one final line\n"
    "                      only): states/sec, stored states, frontier\n"
    "                      depth, visited-set memory, per-worker items\n"
    "  --stats-json <file> write the result as JSON to <file>\n"
    "  --quiet, -q         suppress the textual report (verdict still\n"
    "                      drives the exit status)\n";

/// The --progress ticker: samples a SearchProgress on its own thread
/// while the search runs. Observe-only by construction — it holds no
/// lock the engines ever touch.
class ProgressTicker {
public:
  ProgressTicker(const obs::SearchProgress &P, unsigned PeriodSecs)
      : P(P), Period(PeriodSecs) {
    if (Period > 0)
      T = std::thread([this] { run(); });
  }

  /// Joins the ticker and prints the final snapshot line.
  void finish() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Done = true;
    }
    CV.notify_all();
    if (T.joinable())
      T.join();
    line(/*Final=*/true);
  }

private:
  void run() {
    std::unique_lock<std::mutex> Lock(M);
    while (!CV.wait_for(Lock, std::chrono::seconds(Period),
                        [this] { return Done; }))
      line(/*Final=*/false);
  }

  void line(bool Final) {
    using namespace std::chrono;
    uint64_t Explored = P.totalExplored();
    uint64_t Stored = P.totalStored();
    double Secs =
        duration<double>(steady_clock::now() - Start).count();
    double Rate = Secs > 0 ? Explored / Secs : 0;
    std::string Line = "espmc: " + std::to_string(Explored) +
                       " states explored (" +
                       std::to_string(static_cast<uint64_t>(Rate)) +
                       "/sec), " + std::to_string(Stored) + " stored";
    uint64_t Depth = P.FrontierDepth.load(std::memory_order_relaxed);
    Line += Final ? ", frontier drained" : ", frontier depth " +
                                               std::to_string(Depth);
    if (uint64_t Bytes = P.VisitedBytes.load(std::memory_order_relaxed))
      Line += ", visited ~" +
              std::to_string(Bytes / (1024 * 1024)) + " MB";
    unsigned Workers = P.Workers.load(std::memory_order_relaxed);
    if (Workers > 1) {
      Line += ", items/worker";
      for (unsigned I = 0; I != Workers && I != obs::kMaxProgressWorkers;
           ++I)
        Line += (I ? " " : " [") +
                std::to_string(P.PerWorker[I].Items.load(
                    std::memory_order_relaxed));
      Line += "]";
    }
    std::fprintf(stderr, "%s\n", Line.c_str());
  }

  const obs::SearchProgress &P;
  unsigned Period;
  std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();
  std::mutex M;
  std::condition_variable CV;
  bool Done = false;
  std::thread T;
};

} // namespace

int main(int Argc, char **Argv) {
  McOptions Mc;
  std::string ProcessName;
  std::vector<std::string> Inputs;
  std::vector<int64_t> IntDomain = {0, 1};
  bool Progress = false;
  uint64_t ProgressSecs = 2;
  std::string StatsJsonPath;

  ToolArgs Args(Argc, Argv, "espmc", kUsage);
  while (Args.next()) {
    std::string Text;
    uint64_t Num = 0;
    if (Args.option("--mode", Text)) {
      if (Text == "exhaustive")
        Mc.Mode = SearchMode::Exhaustive;
      else if (Text == "bitstate")
        Mc.Mode = SearchMode::BitState;
      else if (Text == "sim")
        Mc.Mode = SearchMode::Simulation;
      else if (!Args.shouldExit())
        Args.usageError("unknown mode '" + Text + "'");
    } else if (Args.option("--process", ProcessName)) {
      ;
    } else if (Args.optionUInt("--max-states", Num)) {
      Mc.MaxStates = Num;
    } else if (Args.optionUInt("--max-depth", Num) ||
               Args.optionUInt("--maxdepth", Num)) {
      Mc.MaxDepth = static_cast<unsigned>(Num);
    } else if (Args.optionUInt("--max-objects", Num)) {
      Mc.MaxObjects = static_cast<uint32_t>(Num);
    } else if (Args.optionUInt("--env-budget", Num)) {
      Mc.EnvSendBudget = static_cast<uint32_t>(Num);
    } else if (Args.option("--visited", Text)) {
      if (Text == "exact")
        Mc.Visited = VisitedKind::Exact;
      else if (Text == "hash64")
        Mc.Visited = VisitedKind::Hash64;
      else if (Text == "hash128")
        Mc.Visited = VisitedKind::Hash128;
      else if (!Args.shouldExit())
        Args.usageError("unknown visited kind '" + Text + "'");
    } else if (Args.flag("--collapse")) {
      Mc.Collapse = true;
    } else if (Args.flag("--no-collapse")) {
      Mc.Collapse = false;
    } else if (Args.optionUInt("--snapshot-stride", Num)) {
      Mc.SnapshotStride = static_cast<unsigned>(Num);
    } else if (Args.optionUInt("--bits", Num)) {
      unsigned Bits = static_cast<unsigned>(Num);
      if (clampedBitStateBits(Bits) != Bits)
        std::fprintf(stderr, "espmc: --bits %u out of range, clamping to %u\n",
                     Bits, clampedBitStateBits(Bits));
      Mc.BitStateBits = Bits;
    } else if (Args.optionUInt("--runs", Num)) {
      Mc.SimulationRuns = Num;
    } else if (Args.optionUInt("--seed", Num)) {
      Mc.Seed = Num;
    } else if (Args.optionUInt("--jobs", Num)) {
      Mc.Jobs = static_cast<unsigned>(Num);
    } else if (Args.flag("--swarm")) {
      Mc.Swarm = true;
    } else if (Args.flag("--por")) {
      Mc.Por = true;
    } else if (Args.flag("--progress")) {
      // Bare flag: default period. Checked before the option so the
      // input filename is never consumed as a value; --progress=N goes
      // through the =value spelling below.
      Progress = true;
    } else if (Args.optionUInt("--progress", Num)) {
      Progress = true;
      ProgressSecs = Num;
    } else if (Args.option("--stats-json", StatsJsonPath)) {
      ;
    } else if (Args.flag("--no-deadlock")) {
      Mc.CheckDeadlock = false;
    } else if (Args.flag("--no-leaks")) {
      Mc.CheckLeaks = false;
    } else if (Args.option("--int-domain", Text)) {
      IntDomain.clear();
      size_t Pos = 0;
      while (Pos < Text.size()) {
        size_t Comma = Text.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = Text.size();
        IntDomain.push_back(std::atoll(Text.substr(Pos, Comma - Pos).c_str()));
        Pos = Comma + 1;
      }
    } else if (Args.positional()) {
      Inputs.push_back(Args.arg());
    } else {
      Args.unknownOrBuiltin();
    }
  }
  // Reject flag combinations that would silently disable each other.
  if (Mc.Por && Mc.Swarm)
    Args.usageError("--por cannot be combined with --swarm: per-worker "
                    "shuffled move order breaks the ample-set cycle "
                    "proviso");
  else if (Mc.Por && Mc.Mode == SearchMode::Simulation)
    Args.usageError("--por requires a state-space search; use --mode "
                    "exhaustive or --mode bitstate");
  if (Args.shouldExit())
    return Args.exitCode();
  if (Inputs.empty()) {
    Args.printUsage();
    return 2;
  }

  // Split --process into a cluster and reject duplicates up front.
  std::vector<std::string> ProcessNames;
  {
    size_t Pos = 0;
    while (Pos <= ProcessName.size() && !ProcessName.empty()) {
      size_t Comma = ProcessName.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = ProcessName.size();
      std::string Name = ProcessName.substr(Pos, Comma - Pos);
      if (Name.empty()) {
        Args.usageError("--process: empty process name in '" + ProcessName +
                        "'");
        return Args.exitCode();
      }
      for (const std::string &Seen : ProcessNames)
        if (Seen == Name) {
          Args.usageError("--process: duplicate process name '" + Name +
                          "'");
          return Args.exitCode();
        }
      ProcessNames.push_back(std::move(Name));
      if (Comma == ProcessName.size())
        break;
      Pos = Comma + 1;
    }
  }

  // The program plus its test harness files compile as one buffer
  // (Figure 4); the driver adds the concatenation banners.
  std::vector<CompileInput> Files;
  for (const std::string &Path : Inputs)
    Files.push_back(CompileInput::file(Path));
  CompileOptions Options;
  Options.Concatenate = true;

  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R = esp::compile(SM, Diags, Files, Options);
  if (!R.IOError.empty()) {
    Args.error(R.IOError);
    return Args.exitCode();
  }
  std::fprintf(stderr, "%s", Diags.renderAll().c_str());
  if (!R.Success)
    return 1;

  // --progress attaches a telemetry sink the engines publish into and a
  // ticker thread that samples it; the search itself is unaffected.
  auto Telemetry = Progress ? std::make_unique<obs::SearchProgress>()
                            : nullptr;
  if (Telemetry)
    Mc.Progress = Telemetry.get();
  std::unique_ptr<ProgressTicker> Ticker;
  if (Telemetry)
    Ticker = std::make_unique<ProgressTicker>(
        *Telemetry, static_cast<unsigned>(ProgressSecs));

  // Validate the --process names against the compiled program so a typo
  // fails with a clear error instead of an assert in the harness.
  for (const std::string &Name : ProcessNames) {
    bool Found = false;
    for (const ProcIR &P : R.Module.Procs)
      if (P.Proc->Name == Name) {
        Found = true;
        break;
      }
    if (!Found) {
      Args.error("no process named '" + Name + "' in the program");
      return Args.exitCode();
    }
  }

  McResult Result;
  if (ProcessNames.size() > 1) {
    SafetyOptions SafOptions;
    SafOptions.IntDomain = IntDomain;
    SafOptions.Mc = Mc;
    Result =
        verifyProcessClusterMemorySafety(*R.Prog, ProcessNames, SafOptions);
  } else if (!ProcessNames.empty()) {
    SafetyOptions SafOptions;
    SafOptions.IntDomain = IntDomain;
    SafOptions.Mc = Mc;
    Result = verifyProcessMemorySafety(*R.Prog, ProcessNames[0], SafOptions);
  } else {
    // Whole-system verification: the harness must close the program.
    Result = checkModel(R.Module, Mc);
  }
  if (Ticker)
    Ticker->finish();
  if (!StatsJsonPath.empty()) {
    std::ofstream Out(StatsJsonPath);
    if (!Out) {
      std::fprintf(stderr, "espmc: cannot write '%s'\n",
                   StatsJsonPath.c_str());
      return 1;
    }
    Out << Result.json();
  }
  if (!Args.quiet())
    std::printf("%s", Result.report().c_str());
  return Result.foundViolation() ? 3 : 0;
}

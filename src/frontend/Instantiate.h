//===--- Instantiate.h - Multi-copy program instantiation --------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.2: "The ESP compiler generates SPIN specification that can
/// instantiate multiple copies of the ESP program... allows one to mimic
/// a setup where the firmware on multiple machines are communicating
/// with each other."
///
/// This reproduction instantiates at the source level: every top-level
/// name (types, consts, channels, interfaces, processes) of the program
/// is prefixed per instance, the copies are concatenated, and —
/// optionally — the external interfaces are stripped so that a
/// user-written harness (the test.SPIN analogue) can drive each
/// instance's device channels and model the network between them. The
/// result is one closed ESP program that the native model checker
/// explores directly.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_FRONTEND_INSTANTIATE_H
#define ESP_FRONTEND_INSTANTIATE_H

#include <string>
#include <vector>

namespace esp {

struct InstantiateOptions {
  /// Number of program copies.
  unsigned Instances = 2;
  /// Prefix template; instance I gets Prefix + std::to_string(I) + "_".
  std::string Prefix = "m";
  /// Drop `interface` declarations so the per-instance device channels
  /// become internal and harness processes can read/write them.
  bool StripInterfaces = true;
};

/// Returns the instantiated source: N renamed copies of \p Source
/// concatenated (plus \p Harness verbatim at the end). Purely textual /
/// token-level; the result is parsed and checked like any program.
std::string instantiateProgram(const std::string &Source,
                               const InstantiateOptions &Options,
                               const std::string &Harness = "");

} // namespace esp

#endif // ESP_FRONTEND_INSTANTIATE_H

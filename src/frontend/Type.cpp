//===--- Type.cpp - ESP structural type system -----------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Type.h"

using namespace esp;

int Type::getFieldIndex(const std::string &Name) const {
  const std::vector<TypeField> &Fs = getFields();
  for (size_t I = 0, E = Fs.size(); I != E; ++I)
    if (Fs[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

bool Type::isSendable() const {
  if (Mutable)
    return false;
  switch (Kind) {
  case TypeKind::Int:
  case TypeKind::Bool:
    return true;
  case TypeKind::Record:
  case TypeKind::Union:
    for (const TypeField &F : Fields)
      if (!F.FieldType->isSendable())
        return false;
    return true;
  case TypeKind::Array:
    return Element->isSendable();
  }
  return false;
}

std::string Type::str() const {
  std::string Out;
  if (Mutable)
    Out += '#';
  switch (Kind) {
  case TypeKind::Int:
    Out += "int";
    return Out;
  case TypeKind::Bool:
    Out += "bool";
    return Out;
  case TypeKind::Record:
  case TypeKind::Union: {
    Out += isRecord() ? "record of { " : "union of { ";
    for (size_t I = 0, E = Fields.size(); I != E; ++I) {
      if (I != 0)
        Out += ", ";
      Out += Fields[I].Name;
      Out += ": ";
      Out += Fields[I].FieldType->str();
    }
    Out += " }";
    return Out;
  }
  case TypeKind::Array:
    Out += "array of ";
    Out += Element->str();
    return Out;
  }
  return Out;
}

TypeContext::TypeContext() {
  Type IntCandidate;
  IntCandidate.Kind = TypeKind::Int;
  IntType = intern(std::move(IntCandidate));
  Type BoolCandidate;
  BoolCandidate.Kind = TypeKind::Bool;
  BoolType = intern(std::move(BoolCandidate));
}

static bool sameStructure(const Type &A, const Type &B) {
  if (A.getKind() != B.getKind() || A.isMutable() != B.isMutable())
    return false;
  switch (A.getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
    return true;
  case TypeKind::Record:
  case TypeKind::Union:
    return A.getFields() == B.getFields();
  case TypeKind::Array:
    return A.getElementType() == B.getElementType();
  }
  return false;
}

const Type *TypeContext::intern(Type Candidate) {
  for (const std::unique_ptr<Type> &Existing : OwnedTypes)
    if (sameStructure(*Existing, Candidate))
      return Existing.get();
  OwnedTypes.push_back(std::make_unique<Type>(std::move(Candidate)));
  return OwnedTypes.back().get();
}

const Type *TypeContext::getRecordType(std::vector<TypeField> Fields,
                                       bool Mutable) {
  Type Candidate;
  Candidate.Kind = TypeKind::Record;
  Candidate.Mutable = Mutable;
  Candidate.Fields = std::move(Fields);
  return intern(std::move(Candidate));
}

const Type *TypeContext::getUnionType(std::vector<TypeField> Fields,
                                      bool Mutable) {
  Type Candidate;
  Candidate.Kind = TypeKind::Union;
  Candidate.Mutable = Mutable;
  Candidate.Fields = std::move(Fields);
  return intern(std::move(Candidate));
}

const Type *TypeContext::getArrayType(const Type *Element, bool Mutable) {
  Type Candidate;
  Candidate.Kind = TypeKind::Array;
  Candidate.Mutable = Mutable;
  Candidate.Element = Element;
  return intern(std::move(Candidate));
}

const Type *TypeContext::withMutability(const Type *T, bool Mutable) {
  if (T->isMutable() == Mutable || T->isScalar())
    return T;
  switch (T->getKind()) {
  case TypeKind::Record:
    return getRecordType(T->getFields(), Mutable);
  case TypeKind::Union:
    return getUnionType(T->getFields(), Mutable);
  case TypeKind::Array:
    return getArrayType(T->getElementType(), Mutable);
  case TypeKind::Int:
  case TypeKind::Bool:
    break;
  }
  return T;
}

const Type *TypeContext::withDeepMutability(const Type *T, bool Mutable) {
  switch (T->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
    return T;
  case TypeKind::Record:
  case TypeKind::Union: {
    std::vector<TypeField> Fields;
    Fields.reserve(T->getFields().size());
    for (const TypeField &F : T->getFields())
      Fields.push_back(
          TypeField{F.Name, withDeepMutability(F.FieldType, Mutable)});
    return T->isRecord() ? getRecordType(std::move(Fields), Mutable)
                         : getUnionType(std::move(Fields), Mutable);
  }
  case TypeKind::Array:
    return getArrayType(withDeepMutability(T->getElementType(), Mutable),
                        Mutable);
  }
  return T;
}

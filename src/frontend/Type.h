//===--- Type.h - ESP structural type system --------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ESP's type system (paper §4.1): `int`, `bool`, and mutable (`#`) or
/// immutable versions of `record`, `union` and `array`. Types are
/// structural, immutable once built, and uniqued by a TypeContext so that
/// pointer equality is type equality. Recursive types are impossible by
/// construction (a type can only reference already-built types), matching
/// the paper's restriction that recursive data types are not supported.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_FRONTEND_TYPE_H
#define ESP_FRONTEND_TYPE_H

#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace esp {

class Type;
class TypeContext;

enum class TypeKind : uint8_t { Int, Bool, Record, Union, Array };

/// One named field of a record or union type.
struct TypeField {
  std::string Name;
  const Type *FieldType = nullptr;

  friend bool operator==(const TypeField &A, const TypeField &B) {
    return A.Name == B.Name && A.FieldType == B.FieldType;
  }
};

/// An ESP type. Instances are owned and uniqued by a TypeContext; compare
/// types by pointer.
class Type {
public:
  TypeKind getKind() const { return Kind; }
  bool isMutable() const { return Mutable; }

  bool isInt() const { return Kind == TypeKind::Int; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isRecord() const { return Kind == TypeKind::Record; }
  bool isUnion() const { return Kind == TypeKind::Union; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isScalar() const { return isInt() || isBool(); }
  bool isAggregate() const { return !isScalar(); }

  /// Fields of a record or union type.
  const std::vector<TypeField> &getFields() const {
    assert((isRecord() || isUnion()) && "not a record or union");
    return Fields;
  }

  /// Index of field \p Name, or -1 if absent.
  int getFieldIndex(const std::string &Name) const;

  /// Element type of an array.
  const Type *getElementType() const {
    assert(isArray() && "not an array");
    return Element;
  }

  /// True if a value of this type may be sent over a channel: the type and
  /// every type recursively reachable from it must be immutable (§4.2).
  bool isSendable() const;

  /// Renders the type in ESP surface syntax, e.g.
  /// "#record of { dest: int, data: array of int }".
  std::string str() const;

private:
  friend class TypeContext;
  Type() = default;

  TypeKind Kind = TypeKind::Int;
  bool Mutable = false;
  std::vector<TypeField> Fields; ///< Record/union only.
  const Type *Element = nullptr; ///< Array only.
};

/// Owns and uniques Type instances.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const Type *getIntType() const { return IntType; }
  const Type *getBoolType() const { return BoolType; }
  const Type *getRecordType(std::vector<TypeField> Fields, bool Mutable);
  const Type *getUnionType(std::vector<TypeField> Fields, bool Mutable);
  const Type *getArrayType(const Type *Element, bool Mutable);

  /// Returns \p T with its own mutability replaced by \p Mutable (shallow:
  /// nested field types are unchanged).
  const Type *withMutability(const Type *T, bool Mutable);

  /// Returns \p T with the mutability of T and of every nested aggregate
  /// set to \p Mutable. This is the type produced by `cast` (§4.2), which
  /// semantically deep-copies the object into the other mutability world.
  const Type *withDeepMutability(const Type *T, bool Mutable);

private:
  const Type *intern(Type Candidate);

  std::vector<std::unique_ptr<Type>> OwnedTypes;
  const Type *IntType = nullptr;
  const Type *BoolType = nullptr;
};

} // namespace esp

#endif // ESP_FRONTEND_TYPE_H

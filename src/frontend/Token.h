//===--- Token.h - ESP token definitions ------------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the ESP language. ESP has a C-style surface syntax with
/// a few additions from the paper: `$` variable-declaration prefix, `#`
/// mutable prefix, `@` process-instance id, `|>` union selector, and
/// `N -> v` array-fill syntax.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_FRONTEND_TOKEN_H
#define ESP_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string_view>

namespace esp {

enum class TokenKind : uint8_t {
  EndOfFile,
  Error,

  Identifier,
  IntLiteral,

  // Keywords.
  KwType,
  KwRecord,
  KwUnion,
  KwArray,
  KwOf,
  KwInt,
  KwBool,
  KwTrue,
  KwFalse,
  KwChannel,
  KwInterface,
  KwProcess,
  KwConst,
  KwWhile,
  KwIf,
  KwElse,
  KwAlt,
  KwCase,
  KwIn,
  KwOut,
  KwLink,
  KwUnlink,
  KwCast,
  KwAssert,

  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Dollar,
  Hash,
  At,
  Dot,
  Ellipsis,
  PipeGreater, ///< `|>`, the union-field selector.
  Arrow,       ///< `->`, the array-fill separator.
  Assign,
  EqualEqual,
  NotEqual,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,
  AmpAmp,
  PipePipe,
};

/// Returns a printable spelling for a token kind (for diagnostics).
const char *tokenKindName(TokenKind Kind);

/// One lexed token. The text view points into the SourceManager buffer.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLoc Loc;
  std::string_view Text;
  int64_t IntValue = 0; ///< Valid for IntLiteral tokens.

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace esp

#endif // ESP_FRONTEND_TOKEN_H

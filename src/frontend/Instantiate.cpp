//===--- Instantiate.cpp - Multi-copy program instantiation -------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Instantiate.h"

#include "frontend/Lexer.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <set>

using namespace esp;

namespace {

/// Collects the top-level declared names of \p Tokens: the identifier
/// following `type`, `const`, `channel`, `interface`, or `process` at
/// brace depth zero.
std::set<std::string> collectTopLevelNames(const std::vector<Token> &Tokens) {
  std::set<std::string> Names;
  unsigned Depth = 0;
  for (size_t I = 0; I + 1 < Tokens.size(); ++I) {
    const Token &T = Tokens[I];
    if (T.is(TokenKind::LBrace))
      ++Depth;
    else if (T.is(TokenKind::RBrace) && Depth > 0)
      --Depth;
    if (Depth != 0)
      continue;
    switch (T.Kind) {
    case TokenKind::KwType:
    case TokenKind::KwConst:
    case TokenKind::KwChannel:
    case TokenKind::KwInterface:
    case TokenKind::KwProcess:
      if (Tokens[I + 1].is(TokenKind::Identifier))
        Names.insert(std::string(Tokens[I + 1].Text));
      break;
    default:
      break;
    }
  }
  return Names;
}

/// Emits one renamed copy of the token stream. Identifiers in \p Names
/// get the prefix unless they are field accesses (preceded by `.`) or
/// union selectors (followed by `|>`). When \p StripInterfaces is set,
/// whole `interface ... { ... }` declarations are dropped.
std::string emitInstance(const std::vector<Token> &Tokens,
                         const std::set<std::string> &Names,
                         const std::string &Prefix, bool StripInterfaces) {
  std::string Out;
  unsigned Depth = 0;
  for (size_t I = 0; I < Tokens.size(); ++I) {
    const Token &T = Tokens[I];
    if (T.is(TokenKind::EndOfFile))
      break;
    if (T.is(TokenKind::LBrace))
      ++Depth;
    else if (T.is(TokenKind::RBrace) && Depth > 0)
      --Depth;

    if (StripInterfaces && Depth == 0 && T.is(TokenKind::KwInterface)) {
      // Skip to the matching close brace of the interface body.
      unsigned Inner = 0;
      while (I < Tokens.size() && !Tokens[I].is(TokenKind::EndOfFile)) {
        if (Tokens[I].is(TokenKind::LBrace))
          ++Inner;
        else if (Tokens[I].is(TokenKind::RBrace) && --Inner == 0)
          break;
        ++I;
      }
      continue;
    }

    bool Rename = false;
    if (T.is(TokenKind::Identifier) && Names.count(std::string(T.Text))) {
      bool AfterDot = I > 0 && Tokens[I - 1].is(TokenKind::Dot);
      bool BeforeSelector =
          I + 1 < Tokens.size() && Tokens[I + 1].is(TokenKind::PipeGreater);
      Rename = !AfterDot && !BeforeSelector;
    }
    if (Rename)
      Out += Prefix;
    Out += std::string(T.Text);
    Out += ' ';
    // Keep declarations on their own lines for readable diagnostics.
    if (T.is(TokenKind::Semicolon) || T.is(TokenKind::LBrace) ||
        T.is(TokenKind::RBrace))
      Out += '\n';
  }
  Out += '\n';
  return Out;
}

} // namespace

std::string esp::instantiateProgram(const std::string &Source,
                                    const InstantiateOptions &Options,
                                    const std::string &Harness) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  uint32_t FileId = SM.addBuffer("instantiate.esp", Source);
  Lexer Lex(SM, FileId, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  std::set<std::string> Names = collectTopLevelNames(Tokens);

  std::string Out;
  for (unsigned I = 0; I != Options.Instances; ++I) {
    Out += "// ==== instance " + std::to_string(I) + " ====\n";
    Out += emitInstance(Tokens, Names,
                        Options.Prefix + std::to_string(I) + "_",
                        Options.StripInterfaces);
  }
  if (!Harness.empty()) {
    Out += "// ==== harness ====\n";
    Out += Harness;
  }
  return Out;
}

//===--- PrettyPrinter.h - ESP source pretty-printer ------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a checked Program back to ESP surface syntax. Used by
/// `espc --format`, by diagnostics, and by the round-trip property tests
/// (parse → print → reparse must produce an identical IR).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_FRONTEND_PRETTYPRINTER_H
#define ESP_FRONTEND_PRETTYPRINTER_H

#include "frontend/AST.h"

#include <string>

namespace esp {

/// Renders the whole program in canonical formatting.
std::string printProgram(const Program &Prog);

/// Renders one expression / pattern / statement (exposed for tests and
/// diagnostics).
std::string printExpr(const Expr *E);
std::string printPattern(const Pattern *P);
std::string printStmt(const Stmt *S, unsigned Indent = 0);

} // namespace esp

#endif // ESP_FRONTEND_PRETTYPRINTER_H

//===--- Parser.cpp - ESP recursive-descent parser -------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cassert>

using namespace esp;

Parser::Parser(const SourceManager &SM, uint32_t FileId,
               DiagnosticEngine &Diags)
    : Diags(Diags) {
  Lexer Lex(SM, FileId, Diags);
  Tokens = Lex.lexAll();
}

const Token &Parser::tok(unsigned Ahead) const {
  size_t Index = std::min(Pos + Ahead, Tokens.size() - 1);
  return Tokens[Index];
}

bool Parser::consumeIf(TokenKind Kind) {
  if (tok().isNot(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (consumeIf(Kind))
    return true;
  Diags.error(tok().Loc, std::string("expected ") + tokenKindName(Kind) +
                             " " + Context + ", found " +
                             tokenKindName(tok().Kind));
  return false;
}

/// Skips ahead to a statement/declaration boundary after a parse error.
void Parser::skipToSync() {
  unsigned Depth = 0;
  while (tok().isNot(TokenKind::EndOfFile)) {
    switch (tok().Kind) {
    case TokenKind::Semicolon:
      if (Depth == 0) {
        advance();
        return;
      }
      break;
    case TokenKind::LBrace:
      ++Depth;
      break;
    case TokenKind::RBrace:
      if (Depth == 0)
        return;
      --Depth;
      break;
    case TokenKind::KwProcess:
    case TokenKind::KwChannel:
    case TokenKind::KwType:
    case TokenKind::KwInterface:
      if (Depth == 0)
        return;
      break;
    default:
      break;
    }
    advance();
  }
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  Prog = std::make_unique<Program>();
  while (tok().isNot(TokenKind::EndOfFile)) {
    switch (tok().Kind) {
    case TokenKind::KwType:
      parseTypeDecl();
      break;
    case TokenKind::KwConst:
      parseConstDecl();
      break;
    case TokenKind::KwChannel:
      parseChannelDecl();
      break;
    case TokenKind::KwInterface:
      parseInterfaceDecl();
      break;
    case TokenKind::KwProcess:
      parseProcessDecl();
      break;
    case TokenKind::Semicolon:
      advance();
      break;
    default:
      Diags.error(tok().Loc,
                  std::string("expected a top-level declaration, found ") +
                      tokenKindName(tok().Kind));
      advance();
      skipToSync();
      break;
    }
  }
  return std::move(Prog);
}

std::unique_ptr<Program> Parser::parse(SourceManager &SM,
                                       DiagnosticEngine &Diags,
                                       const std::string &Name,
                                       const std::string &Source) {
  uint32_t FileId = SM.addBuffer(Name, Source);
  Parser P(SM, FileId, Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  if (Diags.hasErrors())
    return nullptr;
  return Prog;
}

void Parser::parseTypeDecl() {
  SourceLoc Loc = tok().Loc;
  advance(); // 'type'
  std::string Name(tok().Text);
  if (!expect(TokenKind::Identifier, "after 'type'")) {
    skipToSync();
    return;
  }
  if (!expect(TokenKind::Assign, "in type declaration")) {
    skipToSync();
    return;
  }
  const Type *T = parseType();
  if (!T) {
    skipToSync();
    return;
  }
  consumeIf(TokenKind::Semicolon);
  if (NamedTypes.count(Name)) {
    Diags.error(Loc, "redefinition of type '" + Name + "'");
    return;
  }
  NamedTypes[Name] = T;
  Prog->TypeDecls.push_back(TypeDecl{Name, T, Loc});
}

void Parser::parseConstDecl() {
  SourceLoc Loc = tok().Loc;
  advance(); // 'const'
  std::string Name(tok().Text);
  if (!expect(TokenKind::Identifier, "after 'const'") ||
      !expect(TokenKind::Assign, "in const declaration")) {
    skipToSync();
    return;
  }
  Expr *Init = parseExpr();
  consumeIf(TokenKind::Semicolon);
  if (!Init)
    return;
  auto Decl = std::make_unique<ConstDecl>();
  Decl->Name = std::move(Name);
  Decl->Init = Init;
  Decl->Loc = Loc;
  Prog->ConstDecls.push_back(std::move(Decl));
}

void Parser::parseChannelDecl() {
  SourceLoc Loc = tok().Loc;
  advance(); // 'channel'
  std::string Name(tok().Text);
  if (!expect(TokenKind::Identifier, "after 'channel'") ||
      !expect(TokenKind::Colon, "in channel declaration")) {
    skipToSync();
    return;
  }
  const Type *T = parseType();
  consumeIf(TokenKind::Semicolon);
  if (!T)
    return;
  auto Decl = std::make_unique<ChannelDecl>();
  Decl->Name = std::move(Name);
  Decl->ElemType = T;
  Decl->Id = static_cast<unsigned>(Prog->Channels.size());
  Decl->Loc = Loc;
  Prog->Channels.push_back(std::move(Decl));
}

void Parser::parseInterfaceDecl() {
  SourceLoc Loc = tok().Loc;
  advance(); // 'interface'
  auto Decl = std::make_unique<InterfaceDecl>();
  Decl->Loc = Loc;
  Decl->Name = std::string(tok().Text);
  if (!expect(TokenKind::Identifier, "after 'interface'") ||
      !expect(TokenKind::LParen, "in interface declaration")) {
    skipToSync();
    return;
  }
  if (consumeIf(TokenKind::KwOut)) {
    Decl->ExternalWrites = true;
  } else if (consumeIf(TokenKind::KwIn)) {
    Decl->ExternalWrites = false;
  } else {
    Diags.error(tok().Loc, "expected 'in' or 'out' in interface declaration");
    skipToSync();
    return;
  }
  Decl->ChannelName = std::string(tok().Text);
  if (!expect(TokenKind::Identifier, "as interface channel") ||
      !expect(TokenKind::RParen, "in interface declaration") ||
      !expect(TokenKind::LBrace, "to open interface cases")) {
    skipToSync();
    return;
  }
  while (tok().isNot(TokenKind::RBrace) &&
         tok().isNot(TokenKind::EndOfFile)) {
    InterfaceCase Case;
    Case.Loc = tok().Loc;
    Case.Name = std::string(tok().Text);
    if (!expect(TokenKind::Identifier, "as interface case name") ||
        !expect(TokenKind::LParen, "in interface case")) {
      skipToSync();
      return;
    }
    Case.Pat = parsePattern();
    if (!Case.Pat || !expect(TokenKind::RParen, "to close interface case")) {
      skipToSync();
      return;
    }
    Decl->Cases.push_back(Case);
    if (!consumeIf(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RBrace, "to close interface declaration");
  consumeIf(TokenKind::Semicolon);
  Prog->Interfaces.push_back(std::move(Decl));
}

void Parser::parseProcessDecl() {
  SourceLoc Loc = tok().Loc;
  advance(); // 'process'
  auto Decl = std::make_unique<ProcessDecl>();
  Decl->Loc = Loc;
  Decl->Name = std::string(tok().Text);
  if (!expect(TokenKind::Identifier, "after 'process'")) {
    skipToSync();
    return;
  }
  if (tok().isNot(TokenKind::LBrace)) {
    Diags.error(tok().Loc, "expected '{' to open process body");
    skipToSync();
    return;
  }
  Stmt *Body = parseBlock();
  if (!Body)
    return;
  Decl->Body = ast_cast<BlockStmt>(Body);
  Decl->ProcessId = static_cast<unsigned>(Prog->Processes.size());
  Prog->Processes.push_back(std::move(Decl));
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

const Type *Parser::parseType() {
  bool Mutable = consumeIf(TokenKind::Hash);
  return parseBaseType(Mutable);
}

const Type *Parser::parseBaseType(bool Mutable) {
  TypeContext &Ctx = Prog->getTypeContext();
  SourceLoc Loc = tok().Loc;
  switch (tok().Kind) {
  case TokenKind::KwInt:
    advance();
    return Ctx.getIntType();
  case TokenKind::KwBool:
    advance();
    return Ctx.getBoolType();
  case TokenKind::Identifier: {
    std::string Name(tok().Text);
    advance();
    auto It = NamedTypes.find(Name);
    if (It == NamedTypes.end()) {
      Diags.error(Loc, "unknown type '" + Name + "'");
      return nullptr;
    }
    return Mutable ? Ctx.withMutability(It->second, true) : It->second;
  }
  case TokenKind::KwRecord:
  case TokenKind::KwUnion: {
    bool IsRecord = tok().is(TokenKind::KwRecord);
    advance();
    if (!expect(TokenKind::KwOf, "in aggregate type") ||
        !expect(TokenKind::LBrace, "to open field list"))
      return nullptr;
    std::vector<TypeField> Fields = parseFieldList();
    if (!expect(TokenKind::RBrace, "to close field list"))
      return nullptr;
    if (Fields.empty()) {
      Diags.error(Loc, "aggregate type requires at least one field");
      return nullptr;
    }
    return IsRecord ? Ctx.getRecordType(std::move(Fields), Mutable)
                    : Ctx.getUnionType(std::move(Fields), Mutable);
  }
  case TokenKind::KwArray: {
    advance();
    if (!expect(TokenKind::KwOf, "in array type"))
      return nullptr;
    const Type *Elem = parseType();
    if (!Elem)
      return nullptr;
    return Ctx.getArrayType(Elem, Mutable);
  }
  default:
    Diags.error(Loc, std::string("expected a type, found ") +
                         tokenKindName(tok().Kind));
    return nullptr;
  }
}

std::vector<TypeField> Parser::parseFieldList() {
  std::vector<TypeField> Fields;
  while (tok().is(TokenKind::Identifier)) {
    TypeField Field;
    Field.Name = std::string(tok().Text);
    advance();
    if (!expect(TokenKind::Colon, "after field name"))
      return Fields;
    Field.FieldType = parseType();
    if (!Field.FieldType)
      return Fields;
    Fields.push_back(std::move(Field));
    if (!consumeIf(TokenKind::Comma))
      break;
    // Allow a trailing "..." in field lists (the paper elides fields with
    // "..." in its examples); it contributes nothing.
    if (consumeIf(TokenKind::Ellipsis))
      break;
  }
  return Fields;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Stmt *Parser::parseStmt() {
  switch (tok().Kind) {
  case TokenKind::LBrace: {
    // `{` opens either a block statement or a pattern assignment like
    // `{ send |> { $dest, ... } }: userT = ur;`. Scan to the matching
    // close brace: a `:` or `=` after it means a pattern assignment.
    unsigned Depth = 0;
    unsigned Ahead = 0;
    while (true) {
      const Token &T = tok(Ahead);
      if (T.is(TokenKind::EndOfFile))
        break;
      if (T.is(TokenKind::LBrace))
        ++Depth;
      else if (T.is(TokenKind::RBrace) && --Depth == 0) {
        const Token &Next = tok(Ahead + 1);
        if (Next.is(TokenKind::Colon) || Next.is(TokenKind::Assign))
          return parsePatternAssignStmt();
        break;
      }
      ++Ahead;
    }
    return parseBlock();
  }
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwAlt:
    return parseAlt();
  case TokenKind::KwIn:
  case TokenKind::KwOut:
    return parseCommStmt();
  case TokenKind::Dollar:
    return parseDeclStmt();
  case TokenKind::KwLink:
  case TokenKind::KwUnlink: {
    bool IsLink = tok().is(TokenKind::KwLink);
    SourceLoc Loc = tok().Loc;
    advance();
    if (!expect(TokenKind::LParen, "after link/unlink"))
      return nullptr;
    Expr *Obj = parseExpr();
    if (!Obj || !expect(TokenKind::RParen, "to close link/unlink") ||
        !expect(TokenKind::Semicolon, "after link/unlink"))
      return nullptr;
    if (IsLink)
      return Prog->create<LinkStmt>(Loc, Obj);
    return Prog->create<UnlinkStmt>(Loc, Obj);
  }
  case TokenKind::KwAssert: {
    SourceLoc Loc = tok().Loc;
    advance();
    if (!expect(TokenKind::LParen, "after 'assert'"))
      return nullptr;
    Expr *Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen, "to close 'assert'") ||
        !expect(TokenKind::Semicolon, "after 'assert'"))
      return nullptr;
    return Prog->create<AssertStmt>(Loc, Cond);
  }
  default:
    return parseExprLeadStmt();
  }
}

Stmt *Parser::parseBlock() {
  SourceLoc Loc = tok().Loc;
  if (!expect(TokenKind::LBrace, "to open block"))
    return nullptr;
  std::vector<Stmt *> Body;
  while (tok().isNot(TokenKind::RBrace) &&
         tok().isNot(TokenKind::EndOfFile)) {
    Stmt *S = parseStmt();
    if (!S) {
      skipToSync();
      continue;
    }
    Body.push_back(S);
  }
  expect(TokenKind::RBrace, "to close block");
  return Prog->create<BlockStmt>(Loc, std::move(Body));
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = tok().Loc;
  advance(); // 'if'
  if (!expect(TokenKind::LParen, "after 'if'"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokenKind::RParen, "to close 'if' condition"))
    return nullptr;
  Stmt *Then = parseStmt();
  if (!Then)
    return nullptr;
  Stmt *Else = nullptr;
  if (consumeIf(TokenKind::KwElse)) {
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return Prog->create<IfStmt>(Loc, Cond, Then, Else);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = tok().Loc;
  advance(); // 'while'
  Expr *Cond = nullptr;
  if (consumeIf(TokenKind::LParen)) {
    Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen, "to close 'while' condition"))
      return nullptr;
    // `while (true)` is the idiomatic infinite loop; normalize to no-cond.
    if (BoolLitExpr *B = ast_dyn_cast<BoolLitExpr>(Cond))
      if (B->getValue())
        Cond = nullptr;
  }
  Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return Prog->create<WhileStmt>(Loc, Cond, Body);
}

CommAction Parser::parseCommAction() {
  CommAction Action;
  Action.Loc = tok().Loc;
  Action.IsIn = tok().is(TokenKind::KwIn);
  advance(); // 'in' or 'out'
  if (!expect(TokenKind::LParen, "after in/out"))
    return Action;
  Action.ChannelName = std::string(tok().Text);
  if (!expect(TokenKind::Identifier, "as channel name") ||
      !expect(TokenKind::Comma, "after channel name"))
    return Action;
  if (Action.IsIn)
    Action.Pat = parsePattern();
  else
    Action.Out = parseExpr();
  expect(TokenKind::RParen, "to close in/out");
  return Action;
}

Stmt *Parser::parseCommStmt() {
  SourceLoc Loc = tok().Loc;
  CommAction Action = parseCommAction();
  expect(TokenKind::Semicolon, "after in/out statement");
  AltCase Case;
  Case.Action = Action;
  Case.Loc = Loc;
  std::vector<AltCase> Cases;
  Cases.push_back(Case);
  return Prog->create<AltStmt>(Loc, std::move(Cases));
}

Stmt *Parser::parseAlt() {
  SourceLoc Loc = tok().Loc;
  advance(); // 'alt'
  if (!expect(TokenKind::LBrace, "to open alt"))
    return nullptr;
  std::vector<AltCase> Cases;
  while (tok().is(TokenKind::KwCase)) {
    AltCase Case;
    Case.Loc = tok().Loc;
    advance(); // 'case'
    if (!expect(TokenKind::LParen, "after 'case'"))
      return nullptr;
    // A case is either `case( action )` or `case( guard, action )`.
    if (tok().is(TokenKind::KwIn) || tok().is(TokenKind::KwOut)) {
      Case.Action = parseCommAction();
    } else {
      Case.Guard = parseExpr();
      if (!Case.Guard || !expect(TokenKind::Comma, "after case guard"))
        return nullptr;
      if (tok().isNot(TokenKind::KwIn) && tok().isNot(TokenKind::KwOut)) {
        Diags.error(tok().Loc, "expected 'in' or 'out' action in case");
        return nullptr;
      }
      Case.Action = parseCommAction();
    }
    if (!expect(TokenKind::RParen, "to close 'case'"))
      return nullptr;
    if (tok().is(TokenKind::LBrace)) {
      Case.Body = parseBlock();
      if (!Case.Body)
        return nullptr;
    }
    Cases.push_back(Case);
  }
  if (!expect(TokenKind::RBrace, "to close alt"))
    return nullptr;
  if (Cases.empty()) {
    Diags.error(Loc, "alt statement requires at least one case");
    return nullptr;
  }
  return Prog->create<AltStmt>(Loc, std::move(Cases));
}

Stmt *Parser::parseDeclStmt() {
  SourceLoc Loc = tok().Loc;
  advance(); // '$'
  std::string Name(tok().Text);
  if (!expect(TokenKind::Identifier, "after '$'"))
    return nullptr;
  const Type *Annotation = nullptr;
  if (consumeIf(TokenKind::Colon)) {
    Annotation = parseType();
    if (!Annotation)
      return nullptr;
  }
  if (!expect(TokenKind::Assign, "in variable declaration"))
    return nullptr;
  Expr *Init = parseExpr();
  if (!Init || !expect(TokenKind::Semicolon, "after variable declaration"))
    return nullptr;
  return Prog->create<DeclStmt>(Loc, std::move(Name), Annotation, Init);
}

Stmt *Parser::parsePatternAssignStmt() {
  SourceLoc Loc = tok().Loc;
  Pattern *LHS = parseBracePattern();
  if (!LHS)
    return nullptr;
  const Type *Annotation = nullptr;
  if (consumeIf(TokenKind::Colon)) {
    Annotation = parseType();
    if (!Annotation)
      return nullptr;
  }
  if (!expect(TokenKind::Assign, "in pattern assignment"))
    return nullptr;
  Expr *RHS = parseExpr();
  if (!RHS || !expect(TokenKind::Semicolon, "after assignment"))
    return nullptr;
  return Prog->create<AssignStmt>(Loc, LHS, Annotation, RHS);
}

Stmt *Parser::parseExprLeadStmt() {
  SourceLoc Loc = tok().Loc;
  if (tok().is(TokenKind::LBrace))
    return parsePatternAssignStmt();
  Expr *LHS = parseExpr();
  if (!LHS)
    return nullptr;
  if (!expect(TokenKind::Assign, "in assignment statement"))
    return nullptr;
  Expr *RHS = parseExpr();
  if (!RHS || !expect(TokenKind::Semicolon, "after assignment"))
    return nullptr;
  Pattern *LHSPat = Prog->create<MatchPattern>(LHS->getLoc(), LHS);
  return Prog->create<AssignStmt>(Loc, LHSPat, nullptr, RHS);
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

Pattern *Parser::parsePattern() {
  SourceLoc Loc = tok().Loc;
  if (tok().is(TokenKind::Dollar)) {
    advance();
    std::string Name(tok().Text);
    if (!expect(TokenKind::Identifier, "after '$' in pattern"))
      return nullptr;
    return Prog->create<BindPattern>(Loc, std::move(Name));
  }
  if (tok().is(TokenKind::LBrace))
    return parseBracePattern();
  Expr *Value = parseExpr();
  if (!Value)
    return nullptr;
  return Prog->create<MatchPattern>(Loc, Value);
}

Pattern *Parser::parseBracePattern() {
  SourceLoc Loc = tok().Loc;
  if (!expect(TokenKind::LBrace, "to open pattern"))
    return nullptr;
  // `{ field |> sub }` is a union pattern.
  if (tok().is(TokenKind::Identifier) && tok(1).is(TokenKind::PipeGreater)) {
    std::string FieldName(tok().Text);
    advance();
    advance(); // '|>'
    Pattern *Sub = parsePattern();
    if (!Sub || !expect(TokenKind::RBrace, "to close union pattern"))
      return nullptr;
    return Prog->create<UnionPattern>(Loc, std::move(FieldName), Sub);
  }
  std::vector<Pattern *> Elems;
  while (tok().isNot(TokenKind::RBrace) &&
         tok().isNot(TokenKind::EndOfFile)) {
    Pattern *Elem = parsePattern();
    if (!Elem)
      return nullptr;
    Elems.push_back(Elem);
    if (!consumeIf(TokenKind::Comma))
      break;
    if (consumeIf(TokenKind::Ellipsis))
      break;
  }
  if (!expect(TokenKind::RBrace, "to close record pattern"))
    return nullptr;
  return Prog->create<RecordPattern>(Loc, std::move(Elems));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

static int binaryPrecedence(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Less:
  case TokenKind::LessEqual:
  case TokenKind::Greater:
  case TokenKind::GreaterEqual:
    return 4;
  case TokenKind::EqualEqual:
  case TokenKind::NotEqual:
    return 3;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::PipePipe:
    return 1;
  default:
    return 0;
  }
}

static BinaryOp binaryOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Mod;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Less:
    return BinaryOp::Lt;
  case TokenKind::LessEqual:
    return BinaryOp::Le;
  case TokenKind::Greater:
    return BinaryOp::Gt;
  case TokenKind::GreaterEqual:
    return BinaryOp::Ge;
  case TokenKind::EqualEqual:
    return BinaryOp::Eq;
  case TokenKind::NotEqual:
    return BinaryOp::Ne;
  case TokenKind::AmpAmp:
    return BinaryOp::And;
  case TokenKind::PipePipe:
    return BinaryOp::Or;
  default:
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
  }
}

Expr *Parser::parseExpr() {
  Expr *LHS = parseUnary();
  if (!LHS)
    return nullptr;
  return parseBinaryRHS(1, LHS);
}

Expr *Parser::parseBinaryRHS(int MinPrec, Expr *LHS) {
  while (true) {
    int Prec = binaryPrecedence(tok().Kind);
    if (Prec < MinPrec)
      return LHS;
    TokenKind OpKind = tok().Kind;
    SourceLoc OpLoc = tok().Loc;
    advance();
    Expr *RHS = parseUnary();
    if (!RHS)
      return nullptr;
    int NextPrec = binaryPrecedence(tok().Kind);
    if (Prec < NextPrec) {
      RHS = parseBinaryRHS(Prec + 1, RHS);
      if (!RHS)
        return nullptr;
    }
    LHS = Prog->create<BinaryExpr>(OpLoc, binaryOpFor(OpKind), LHS, RHS);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = tok().Loc;
  if (consumeIf(TokenKind::Bang)) {
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return Prog->create<UnaryExpr>(Loc, UnaryOp::Not, Sub);
  }
  if (consumeIf(TokenKind::Minus)) {
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return Prog->create<UnaryExpr>(Loc, UnaryOp::Neg, Sub);
  }
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  if (!E)
    return nullptr;
  while (true) {
    SourceLoc Loc = tok().Loc;
    if (consumeIf(TokenKind::Dot)) {
      std::string FieldName(tok().Text);
      if (!expect(TokenKind::Identifier, "after '.'"))
        return nullptr;
      E = Prog->create<FieldExpr>(Loc, E, std::move(FieldName));
      continue;
    }
    if (consumeIf(TokenKind::LBracket)) {
      Expr *Index = parseExpr();
      if (!Index || !expect(TokenKind::RBracket, "to close index"))
        return nullptr;
      E = Prog->create<IndexExpr>(Loc, E, Index);
      continue;
    }
    return E;
  }
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = tok().Loc;
  switch (tok().Kind) {
  case TokenKind::IntLiteral: {
    int64_t Value = tok().IntValue;
    advance();
    return Prog->create<IntLitExpr>(Loc, Value);
  }
  case TokenKind::KwTrue:
    advance();
    return Prog->create<BoolLitExpr>(Loc, true);
  case TokenKind::KwFalse:
    advance();
    return Prog->create<BoolLitExpr>(Loc, false);
  case TokenKind::At:
    advance();
    return Prog->create<SelfIdExpr>(Loc);
  case TokenKind::Identifier: {
    std::string Name(tok().Text);
    advance();
    return Prog->create<VarRefExpr>(Loc, std::move(Name));
  }
  case TokenKind::LParen: {
    advance();
    Expr *E = parseExpr();
    if (!E || !expect(TokenKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return E;
  }
  case TokenKind::KwCast: {
    advance();
    if (!expect(TokenKind::LParen, "after 'cast'"))
      return nullptr;
    Expr *Sub = parseExpr();
    if (!Sub || !expect(TokenKind::RParen, "to close 'cast'"))
      return nullptr;
    return Prog->create<CastExpr>(Loc, Sub);
  }
  case TokenKind::Hash:
    advance();
    if (tok().isNot(TokenKind::LBrace)) {
      Diags.error(tok().Loc, "expected '{' after '#' in expression");
      return nullptr;
    }
    return parseBraceLiteral(/*Mutable=*/true);
  case TokenKind::LBrace:
    return parseBraceLiteral(/*Mutable=*/false);
  default:
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokenKindName(tok().Kind));
    return nullptr;
  }
}

Expr *Parser::parseBraceLiteral(bool Mutable) {
  SourceLoc Loc = tok().Loc;
  expect(TokenKind::LBrace, "to open literal");
  // `{ field |> expr }` allocates a union.
  if (tok().is(TokenKind::Identifier) && tok(1).is(TokenKind::PipeGreater)) {
    std::string FieldName(tok().Text);
    advance();
    advance(); // '|>'
    Expr *Value = parseExpr();
    if (!Value || !expect(TokenKind::RBrace, "to close union literal"))
      return nullptr;
    return Prog->create<UnionLitExpr>(Loc, Mutable, std::move(FieldName),
                                      Value);
  }
  Expr *First = parseExpr();
  if (!First)
    return nullptr;
  // `{ size -> init }` allocates an array.
  if (consumeIf(TokenKind::Arrow)) {
    Expr *Init = parseExpr();
    if (!Init)
      return nullptr;
    if (consumeIf(TokenKind::Comma))
      consumeIf(TokenKind::Ellipsis);
    if (!expect(TokenKind::RBrace, "to close array literal"))
      return nullptr;
    return Prog->create<ArrayLitExpr>(Loc, Mutable, First, Init);
  }
  // Otherwise a record literal.
  std::vector<Expr *> Elems;
  Elems.push_back(First);
  while (consumeIf(TokenKind::Comma)) {
    if (consumeIf(TokenKind::Ellipsis))
      break;
    Expr *Elem = parseExpr();
    if (!Elem)
      return nullptr;
    Elems.push_back(Elem);
  }
  if (!expect(TokenKind::RBrace, "to close record literal"))
    return nullptr;
  return Prog->create<RecordLitExpr>(Loc, Mutable, std::move(Elems));
}

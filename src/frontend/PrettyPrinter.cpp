//===--- PrettyPrinter.cpp - ESP source pretty-printer ------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/PrettyPrinter.h"

#include <sstream>

using namespace esp;

namespace {

std::string indentOf(unsigned Indent) { return std::string(Indent * 2, ' '); }

void printExprInto(const Expr *E, std::ostream &OS);

void printCommaExprs(const std::vector<Expr *> &Elems, std::ostream &OS) {
  for (size_t I = 0; I != Elems.size(); ++I) {
    if (I)
      OS << ", ";
    printExprInto(Elems[I], OS);
  }
}

void printExprInto(const Expr *E, std::ostream &OS) {
  switch (E->getKind()) {
  case ExprKind::IntLit:
    OS << ast_cast<IntLitExpr>(E)->getValue();
    return;
  case ExprKind::BoolLit:
    OS << (ast_cast<BoolLitExpr>(E)->getValue() ? "true" : "false");
    return;
  case ExprKind::SelfId:
    OS << '@';
    return;
  case ExprKind::VarRef:
    OS << ast_cast<VarRefExpr>(E)->getName();
    return;
  case ExprKind::Field: {
    const FieldExpr *F = ast_cast<FieldExpr>(E);
    printExprInto(F->getBase(), OS);
    OS << '.' << F->getFieldName();
    return;
  }
  case ExprKind::Index: {
    const IndexExpr *I = ast_cast<IndexExpr>(E);
    printExprInto(I->getBase(), OS);
    OS << '[';
    printExprInto(I->getIndex(), OS);
    OS << ']';
    return;
  }
  case ExprKind::Unary: {
    const UnaryExpr *U = ast_cast<UnaryExpr>(E);
    // Canonical form fully parenthesizes so reparsing is unambiguous.
    OS << (U->getOp() == UnaryOp::Not ? "(!" : "(-");
    printExprInto(U->getSub(), OS);
    OS << ')';
    return;
  }
  case ExprKind::Binary: {
    const BinaryExpr *B = ast_cast<BinaryExpr>(E);
    OS << '(';
    printExprInto(B->getLHS(), OS);
    OS << ' ' << binaryOpSpelling(B->getOp()) << ' ';
    printExprInto(B->getRHS(), OS);
    OS << ')';
    return;
  }
  case ExprKind::RecordLit: {
    const RecordLitExpr *R = ast_cast<RecordLitExpr>(E);
    OS << (R->isMutableLit() ? "#{ " : "{ ");
    printCommaExprs(R->getElems(), OS);
    OS << " }";
    return;
  }
  case ExprKind::UnionLit: {
    const UnionLitExpr *U = ast_cast<UnionLitExpr>(E);
    OS << (U->isMutableLit() ? "#{ " : "{ ") << U->getFieldName() << " |> ";
    printExprInto(U->getValue(), OS);
    OS << " }";
    return;
  }
  case ExprKind::ArrayLit: {
    const ArrayLitExpr *A = ast_cast<ArrayLitExpr>(E);
    OS << (A->isMutableLit() ? "#{ " : "{ ");
    printExprInto(A->getSize(), OS);
    OS << " -> ";
    printExprInto(A->getInit(), OS);
    OS << " }";
    return;
  }
  case ExprKind::Cast:
    OS << "cast(";
    printExprInto(ast_cast<CastExpr>(E)->getSub(), OS);
    OS << ')';
    return;
  }
}

void printPatternInto(const Pattern *P, std::ostream &OS) {
  switch (P->getKind()) {
  case PatternKind::Bind:
    OS << '$' << ast_cast<BindPattern>(P)->getName();
    return;
  case PatternKind::Match:
    printExprInto(ast_cast<MatchPattern>(P)->getValue(), OS);
    return;
  case PatternKind::Record: {
    const RecordPattern *R = ast_cast<RecordPattern>(P);
    OS << "{ ";
    for (size_t I = 0; I != R->getElems().size(); ++I) {
      if (I)
        OS << ", ";
      printPatternInto(R->getElems()[I], OS);
    }
    OS << " }";
    return;
  }
  case PatternKind::Union: {
    const UnionPattern *U = ast_cast<UnionPattern>(P);
    OS << "{ " << U->getFieldName() << " |> ";
    printPatternInto(U->getSub(), OS);
    OS << " }";
    return;
  }
  }
}

void printStmtInto(const Stmt *S, unsigned Indent, std::ostream &OS);

void printBlockBody(const Stmt *S, unsigned Indent, std::ostream &OS) {
  OS << "{\n";
  if (const BlockStmt *B = ast_dyn_cast<BlockStmt>(S)) {
    for (const Stmt *Child : B->getBody())
      printStmtInto(Child, Indent + 1, OS);
  } else if (S) {
    printStmtInto(S, Indent + 1, OS);
  }
  OS << indentOf(Indent) << "}";
}

void printCommAction(const CommAction &Action, std::ostream &OS) {
  if (Action.IsIn) {
    OS << "in( " << Action.ChannelName << ", ";
    printPatternInto(Action.Pat, OS);
    OS << ")";
  } else {
    OS << "out( " << Action.ChannelName << ", ";
    printExprInto(Action.Out, OS);
    OS << ")";
  }
}

void printStmtInto(const Stmt *S, unsigned Indent, std::ostream &OS) {
  std::string Pad = indentOf(Indent);
  switch (S->getKind()) {
  case StmtKind::Block:
    OS << Pad;
    printBlockBody(S, Indent, OS);
    OS << '\n';
    return;
  case StmtKind::Decl: {
    const DeclStmt *D = ast_cast<DeclStmt>(S);
    OS << Pad << '$' << D->getName();
    const Type *Annotation =
        D->getVar() ? D->getVar()->VarType : D->getAnnotation();
    if (Annotation)
      OS << ": " << Annotation->str();
    OS << " = ";
    printExprInto(D->getInit(), OS);
    OS << ";\n";
    return;
  }
  case StmtKind::Assign: {
    const AssignStmt *A = ast_cast<AssignStmt>(S);
    OS << Pad;
    printPatternInto(A->getLHS(), OS);
    if (A->getAnnotation())
      OS << ": " << A->getAnnotation()->str();
    OS << " = ";
    printExprInto(A->getRHS(), OS);
    OS << ";\n";
    return;
  }
  case StmtKind::If: {
    const IfStmt *I = ast_cast<IfStmt>(S);
    OS << Pad << "if (";
    printExprInto(I->getCond(), OS);
    OS << ") ";
    printBlockBody(I->getThen(), Indent, OS);
    if (I->getElse()) {
      OS << " else ";
      printBlockBody(I->getElse(), Indent, OS);
    }
    OS << '\n';
    return;
  }
  case StmtKind::While: {
    const WhileStmt *W = ast_cast<WhileStmt>(S);
    OS << Pad << "while (";
    if (W->getCond())
      printExprInto(W->getCond(), OS);
    else
      OS << "true";
    OS << ") ";
    printBlockBody(W->getBody(), Indent, OS);
    OS << '\n';
    return;
  }
  case StmtKind::Alt: {
    const AltStmt *A = ast_cast<AltStmt>(S);
    // A bare in/out statement prints back as itself.
    if (A->getCases().size() == 1 && !A->getCases()[0].Guard &&
        !A->getCases()[0].Body) {
      OS << Pad;
      printCommAction(A->getCases()[0].Action, OS);
      OS << ";\n";
      return;
    }
    OS << Pad << "alt {\n";
    for (const AltCase &Case : A->getCases()) {
      OS << indentOf(Indent + 1) << "case( ";
      if (Case.Guard) {
        printExprInto(Case.Guard, OS);
        OS << ", ";
      }
      printCommAction(Case.Action, OS);
      OS << ") ";
      if (Case.Body)
        printBlockBody(Case.Body, Indent + 1, OS);
      else
        OS << "{ }";
      OS << '\n';
    }
    OS << Pad << "}\n";
    return;
  }
  case StmtKind::Link:
    OS << Pad << "link(";
    printExprInto(ast_cast<LinkStmt>(S)->getObj(), OS);
    OS << ");\n";
    return;
  case StmtKind::Unlink:
    OS << Pad << "unlink(";
    printExprInto(ast_cast<UnlinkStmt>(S)->getObj(), OS);
    OS << ");\n";
    return;
  case StmtKind::Assert:
    OS << Pad << "assert(";
    printExprInto(ast_cast<AssertStmt>(S)->getCond(), OS);
    OS << ");\n";
    return;
  }
}

} // namespace

std::string esp::printExpr(const Expr *E) {
  std::ostringstream OS;
  printExprInto(E, OS);
  return OS.str();
}

std::string esp::printPattern(const Pattern *P) {
  std::ostringstream OS;
  printPatternInto(P, OS);
  return OS.str();
}

std::string esp::printStmt(const Stmt *S, unsigned Indent) {
  std::ostringstream OS;
  printStmtInto(S, Indent, OS);
  return OS.str();
}

std::string esp::printProgram(const Program &Prog) {
  std::ostringstream OS;
  for (const TypeDecl &T : Prog.TypeDecls)
    OS << "type " << T.Name << " = " << T.Resolved->str() << "\n";
  for (const std::unique_ptr<ConstDecl> &C : Prog.ConstDecls) {
    OS << "const " << C->Name << " = ";
    printExprInto(C->Init, OS);
    OS << ";\n";
  }
  for (const std::unique_ptr<ChannelDecl> &C : Prog.Channels)
    OS << "channel " << C->Name << ": " << C->ElemType->str() << "\n";
  for (const std::unique_ptr<InterfaceDecl> &I : Prog.Interfaces) {
    OS << "interface " << I->Name << "("
       << (I->ExternalWrites ? "out " : "in ") << I->ChannelName << ") {\n";
    for (size_t C = 0; C != I->Cases.size(); ++C) {
      OS << "  " << I->Cases[C].Name << "( ";
      printPatternInto(I->Cases[C].Pat, OS);
      OS << " )" << (C + 1 != I->Cases.size() ? "," : "") << "\n";
    }
    OS << "}\n";
  }
  for (const std::unique_ptr<ProcessDecl> &P : Prog.Processes) {
    OS << "\nprocess " << P->Name << " {\n";
    for (const Stmt *S : P->Body->getBody())
      OS << printStmt(S, 1);
    OS << "}\n";
  }
  return OS.str();
}

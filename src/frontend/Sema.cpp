//===--- Sema.cpp - ESP semantic checker -----------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include "frontend/PatternAnalysis.h"
#include "support/Diagnostics.h"

#include <cassert>

using namespace esp;
using namespace esp::detail;

//===----------------------------------------------------------------------===//
// Static constant evaluation
//===----------------------------------------------------------------------===//

std::optional<int64_t> esp::tryEvalStatic(const Expr *E,
                                          const ProcessDecl *Proc) {
  switch (E->getKind()) {
  case ExprKind::IntLit:
    return ast_cast<IntLitExpr>(E)->getValue();
  case ExprKind::BoolLit:
    return ast_cast<BoolLitExpr>(E)->getValue() ? 1 : 0;
  case ExprKind::SelfId:
    if (!Proc)
      return std::nullopt;
    return static_cast<int64_t>(Proc->ProcessId);
  case ExprKind::VarRef: {
    const VarRefExpr *V = ast_cast<VarRefExpr>(E);
    if (const ConstDecl *C = V->getConst())
      return C->Value;
    return std::nullopt;
  }
  case ExprKind::Unary: {
    const UnaryExpr *U = ast_cast<UnaryExpr>(E);
    std::optional<int64_t> Sub = tryEvalStatic(U->getSub(), Proc);
    if (!Sub)
      return std::nullopt;
    return U->getOp() == UnaryOp::Not ? (*Sub == 0 ? 1 : 0) : -*Sub;
  }
  case ExprKind::Binary: {
    const BinaryExpr *B = ast_cast<BinaryExpr>(E);
    std::optional<int64_t> L = tryEvalStatic(B->getLHS(), Proc);
    std::optional<int64_t> R = tryEvalStatic(B->getRHS(), Proc);
    if (!L || !R)
      return std::nullopt;
    switch (B->getOp()) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return *L * *R;
    case BinaryOp::Div:
      return *R == 0 ? std::nullopt : std::optional<int64_t>(*L / *R);
    case BinaryOp::Mod:
      return *R == 0 ? std::nullopt : std::optional<int64_t>(*L % *R);
    case BinaryOp::Lt:
      return *L < *R;
    case BinaryOp::Le:
      return *L <= *R;
    case BinaryOp::Gt:
      return *L > *R;
    case BinaryOp::Ge:
      return *L >= *R;
    case BinaryOp::Eq:
      return *L == *R;
    case BinaryOp::Ne:
      return *L != *R;
    case BinaryOp::And:
      return (*L != 0 && *R != 0) ? 1 : 0;
    case BinaryOp::Or:
      return (*L != 0 || *R != 0) ? 1 : 0;
    }
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Top-level driver
//===----------------------------------------------------------------------===//

bool esp::checkProgram(Program &Prog, DiagnosticEngine &Diags) {
  Sema S(Prog, Diags);
  if (!S.run())
    return false;
  return checkChannelPatterns(Prog, Diags);
}

bool Sema::run() {
  unsigned ErrorsBefore = Diags.getNumErrors();
  checkConstDecls();
  checkChannels();
  checkInterfaces();
  for (std::unique_ptr<ProcessDecl> &Proc : Prog.Processes)
    checkProcess(*Proc);
  if (Prog.Processes.empty())
    Diags.error(SourceLoc(), "program declares no processes");
  return Diags.getNumErrors() == ErrorsBefore;
}

void Sema::checkConstDecls() {
  for (std::unique_ptr<ConstDecl> &C : Prog.ConstDecls) {
    // Resolve const-to-const references first so nested consts work.
    const Type *T = checkExpr(C->Init, nullptr);
    if (!T)
      continue;
    if (!T->isScalar()) {
      Diags.error(C->Loc, "constant '" + C->Name + "' must be int or bool");
      continue;
    }
    std::optional<int64_t> Value = tryEvalStatic(C->Init, nullptr);
    if (!Value) {
      Diags.error(C->Loc, "initializer of constant '" + C->Name +
                              "' is not a compile-time constant");
      continue;
    }
    C->ConstType = T;
    C->Value = *Value;
  }
}

void Sema::checkChannels() {
  for (std::unique_ptr<ChannelDecl> &C : Prog.Channels) {
    if (!C->ElemType->isSendable())
      Diags.error(C->Loc,
                  "channel '" + C->Name +
                      "' carries a mutable type; only immutable objects "
                      "can be sent over channels");
  }
}

void Sema::checkInterfaces() {
  for (std::unique_ptr<InterfaceDecl> &I : Prog.Interfaces) {
    ChannelDecl *Chan = Prog.findChannel(I->ChannelName);
    if (!Chan) {
      Diags.error(I->Loc, "interface '" + I->Name +
                              "' references unknown channel '" +
                              I->ChannelName + "'");
      continue;
    }
    if (Chan->Role != ChannelRole::Internal) {
      Diags.error(I->Loc, "channel '" + Chan->Name +
                              "' already has an external interface; a "
                              "channel can have an external reader or "
                              "writer but not both");
      continue;
    }
    Chan->Role = I->ExternalWrites ? ChannelRole::ExternalWriter
                                   : ChannelRole::ExternalReader;
    Chan->Interface = I.get();
    I->Channel = Chan;
    if (I->Cases.empty()) {
      Diags.error(I->Loc,
                  "interface '" + I->Name + "' declares no cases");
      continue;
    }
    for (InterfaceCase &Case : I->Cases)
      checkInterfacePattern(Case.Pat, Chan->ElemType);
  }
}

//===----------------------------------------------------------------------===//
// Processes
//===----------------------------------------------------------------------===//

VarInfo *Sema::lookupVar(const std::string &Name) const {
  auto It = ProcessVars.find(Name);
  return It == ProcessVars.end() ? nullptr : It->second;
}

VarInfo *Sema::lookupOrCreateVar(const std::string &Name, const Type *T,
                                 SourceLoc Loc) {
  assert(CurrentProcess && "variable outside a process");
  if (VarInfo *Existing = lookupVar(Name)) {
    if (Existing->VarType != T) {
      Diags.error(Loc, "variable '" + Name + "' was previously used with "
                           "type '" + Existing->VarType->str() +
                           "'; all uses of a name within a process must "
                           "agree (it names one storage slot)");
      Diags.note(Existing->Loc, "previous use is here");
    }
    return Existing;
  }
  VarInfo *V = CurrentProcess->createVar(Name, Loc);
  V->VarType = T;
  ProcessVars[Name] = V;
  return V;
}

void Sema::checkProcess(ProcessDecl &Proc) {
  CurrentProcess = &Proc;
  ProcessVars.clear();
  checkStmt(Proc.Body);
  CurrentProcess = nullptr;
}

void Sema::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case StmtKind::Block:
    for (Stmt *Child : ast_cast<BlockStmt>(S)->getBody())
      checkStmt(Child);
    return;
  case StmtKind::Decl: {
    DeclStmt *D = ast_cast<DeclStmt>(S);
    const Type *T = checkExpr(D->getInit(), D->getAnnotation());
    if (!T)
      return;
    if (D->getAnnotation() && T != D->getAnnotation()) {
      Diags.error(D->getInit()->getLoc(),
                  "initializer of type '" + T->str() +
                      "' does not match the declared type '" +
                      D->getAnnotation()->str() + "'");
      return;
    }
    D->setVar(lookupOrCreateVar(D->getName(), T, D->getLoc()));
    return;
  }
  case StmtKind::Assign:
    checkAssign(ast_cast<AssignStmt>(S));
    return;
  case StmtKind::If: {
    IfStmt *I = ast_cast<IfStmt>(S);
    const Type *T = checkExpr(I->getCond(), Types.getBoolType());
    if (T && !T->isBool())
      Diags.error(I->getCond()->getLoc(), "'if' condition must be bool");
    checkStmt(I->getThen());
    checkStmt(I->getElse());
    return;
  }
  case StmtKind::While: {
    WhileStmt *W = ast_cast<WhileStmt>(S);
    if (W->getCond()) {
      const Type *T = checkExpr(W->getCond(), Types.getBoolType());
      if (T && !T->isBool())
        Diags.error(W->getCond()->getLoc(),
                    "'while' condition must be bool");
    }
    checkStmt(W->getBody());
    return;
  }
  case StmtKind::Alt:
    checkAlt(ast_cast<AltStmt>(S));
    return;
  case StmtKind::Link:
  case StmtKind::Unlink: {
    Expr *Obj = S->getKind() == StmtKind::Link
                    ? ast_cast<LinkStmt>(S)->getObj()
                    : ast_cast<UnlinkStmt>(S)->getObj();
    const Type *T = checkExpr(Obj, nullptr);
    if (T && !T->isAggregate())
      Diags.error(Obj->getLoc(),
                  "link/unlink operates on heap objects (record, union, "
                  "or array), not scalars");
    return;
  }
  case StmtKind::Assert: {
    AssertStmt *A = ast_cast<AssertStmt>(S);
    const Type *T = checkExpr(A->getCond(), Types.getBoolType());
    if (T && !T->isBool())
      Diags.error(A->getCond()->getLoc(), "'assert' condition must be bool");
    return;
  }
  }
}

bool Sema::isLValue(const Expr *E) const {
  switch (E->getKind()) {
  case ExprKind::VarRef:
    return ast_cast<VarRefExpr>(E)->getVar() != nullptr;
  case ExprKind::Field:
    return isLValue(ast_cast<FieldExpr>(E)->getBase());
  case ExprKind::Index:
    return isLValue(ast_cast<IndexExpr>(E)->getBase());
  default:
    return false;
  }
}

void Sema::checkAssign(AssignStmt *S) {
  Pattern *LHS = S->getLHS();

  // Case 1: plain store `lvalue = expr;`.
  if (MatchPattern *M = ast_dyn_cast<MatchPattern>(LHS)) {
    Expr *Target = M->getValue();
    const Type *TargetType = checkExpr(Target, nullptr);
    if (!TargetType)
      return;
    if (!isLValue(Target)) {
      Diags.error(Target->getLoc(),
                  "left-hand side of assignment is not assignable");
      return;
    }
    // Stores through a field or index require the containing aggregate to
    // be mutable; re-binding a whole variable is always allowed.
    if (Target->getKind() == ExprKind::Field) {
      const Type *BaseType = ast_cast<FieldExpr>(Target)->getBase()->getType();
      if (BaseType && !BaseType->isMutable()) {
        Diags.error(Target->getLoc(),
                    "cannot store into a field of an immutable object");
        return;
      }
    } else if (Target->getKind() == ExprKind::Index) {
      const Type *BaseType = ast_cast<IndexExpr>(Target)->getBase()->getType();
      if (BaseType && !BaseType->isMutable()) {
        Diags.error(Target->getLoc(),
                    "cannot store into an element of an immutable array");
        return;
      }
    }
    const Type *RHSType = checkExpr(S->getRHS(), TargetType);
    if (RHSType && RHSType != TargetType)
      Diags.error(S->getRHS()->getLoc(),
                  "assigning '" + RHSType->str() + "' to location of type '" +
                      TargetType->str() + "'");
    S->setPlainStore(true);
    M->setType(TargetType);
    return;
  }

  // Case 2: destructuring match `pattern = expr;`.
  const Type *RHSType = checkExpr(S->getRHS(), S->getAnnotation());
  if (!RHSType)
    return;
  if (S->getAnnotation() && RHSType != S->getAnnotation()) {
    Diags.error(S->getRHS()->getLoc(),
                "expression type '" + RHSType->str() +
                    "' does not match annotation '" +
                    S->getAnnotation()->str() + "'");
    return;
  }
  checkPattern(LHS, RHSType);
}

void Sema::requireAllocationFree(const Expr *E, const char *What) {
  switch (E->getKind()) {
  case ExprKind::RecordLit:
  case ExprKind::UnionLit:
  case ExprKind::ArrayLit:
  case ExprKind::Cast:
    Diags.error(E->getLoc(), std::string(What) +
                                 " must not allocate (it may be evaluated "
                                 "repeatedly while the process is blocked)");
    return;
  case ExprKind::Field:
    requireAllocationFree(ast_cast<FieldExpr>(E)->getBase(), What);
    return;
  case ExprKind::Index: {
    const IndexExpr *I = ast_cast<IndexExpr>(E);
    requireAllocationFree(I->getBase(), What);
    requireAllocationFree(I->getIndex(), What);
    return;
  }
  case ExprKind::Unary:
    requireAllocationFree(ast_cast<UnaryExpr>(E)->getSub(), What);
    return;
  case ExprKind::Binary: {
    const BinaryExpr *B = ast_cast<BinaryExpr>(E);
    requireAllocationFree(B->getLHS(), What);
    requireAllocationFree(B->getRHS(), What);
    return;
  }
  default:
    return;
  }
}

void Sema::checkAlt(AltStmt *S) {
  for (AltCase &Case : S->getCases()) {
    if (Case.Guard) {
      const Type *T = checkExpr(Case.Guard, Types.getBoolType());
      if (T && !T->isBool())
        Diags.error(Case.Guard->getLoc(), "case guard must be bool");
      requireAllocationFree(Case.Guard, "case guard");
    }
    CommAction &Action = Case.Action;
    ChannelDecl *Chan = Prog.findChannel(Action.ChannelName);
    if (!Chan) {
      Diags.error(Action.Loc,
                  "unknown channel '" + Action.ChannelName + "'");
      continue;
    }
    Action.Channel = Chan;
    if (Action.IsIn) {
      if (Chan->Role == ChannelRole::ExternalReader) {
        Diags.error(Action.Loc,
                    "channel '" + Chan->Name +
                        "' has an external reader; processes may only "
                        "write it");
        continue;
      }
      checkPattern(Action.Pat, Chan->ElemType);
    } else {
      if (Chan->Role == ChannelRole::ExternalWriter) {
        Diags.error(Action.Loc,
                    "channel '" + Chan->Name +
                        "' has an external writer; processes may only "
                        "read it");
        continue;
      }
      const Type *T = checkExpr(Action.Out, Chan->ElemType);
      if (T && T != Chan->ElemType)
        Diags.error(Action.Out->getLoc(),
                    "sending '" + T->str() + "' on channel of type '" +
                        Chan->ElemType->str() + "'");
    }
    checkStmt(Case.Body);
  }
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

bool Sema::checkPattern(Pattern *P, const Type *Component) {
  P->setType(Component);
  switch (P->getKind()) {
  case PatternKind::Bind: {
    BindPattern *B = ast_cast<BindPattern>(P);
    B->setVar(lookupOrCreateVar(B->getName(), Component, B->getLoc()));
    return true;
  }
  case PatternKind::Match: {
    MatchPattern *M = ast_cast<MatchPattern>(P);
    const Type *T = checkExpr(M->getValue(), Component);
    if (!T)
      return false;
    if (!T->isScalar()) {
      Diags.error(M->getLoc(),
                  "equality-match pattern components must be scalar");
      return false;
    }
    if (T != Component) {
      Diags.error(M->getLoc(), "pattern component of type '" + T->str() +
                                   "' does not match '" + Component->str() +
                                   "'");
      return false;
    }
    return true;
  }
  case PatternKind::Record: {
    RecordPattern *R = ast_cast<RecordPattern>(P);
    if (!Component->isRecord()) {
      Diags.error(P->getLoc(), "record pattern applied to non-record type '" +
                                   Component->str() + "'");
      return false;
    }
    const std::vector<TypeField> &Fields = Component->getFields();
    if (R->getElems().size() != Fields.size()) {
      Diags.error(P->getLoc(),
                  "record pattern has " +
                      std::to_string(R->getElems().size()) +
                      " components but type has " +
                      std::to_string(Fields.size()) + " fields");
      return false;
    }
    bool OK = true;
    for (size_t I = 0, E = Fields.size(); I != E; ++I)
      OK &= checkPattern(R->getElems()[I], Fields[I].FieldType);
    return OK;
  }
  case PatternKind::Union: {
    UnionPattern *U = ast_cast<UnionPattern>(P);
    if (!Component->isUnion()) {
      Diags.error(P->getLoc(), "union pattern applied to non-union type '" +
                                   Component->str() + "'");
      return false;
    }
    int Index = Component->getFieldIndex(U->getFieldName());
    if (Index < 0) {
      Diags.error(P->getLoc(), "union type has no field named '" +
                                   U->getFieldName() + "'");
      return false;
    }
    U->setFieldIndex(Index);
    return checkPattern(U->getSub(),
                        Component->getFields()[Index].FieldType);
  }
  }
  return false;
}

bool Sema::checkInterfacePattern(Pattern *P, const Type *Component) {
  P->setType(Component);
  switch (P->getKind()) {
  case PatternKind::Bind: {
    // Interface binders are the parameters the external C function fills
    // in or receives; they do not create process variables.
    if (!Component->isScalar() && !Component->isSendable()) {
      Diags.error(P->getLoc(),
                  "interface parameter must be a sendable type");
      return false;
    }
    return true;
  }
  case PatternKind::Match: {
    MatchPattern *M = ast_cast<MatchPattern>(P);
    if (!tryEvalStatic(M->getValue(), nullptr)) {
      Diags.error(M->getLoc(),
                  "interface pattern components must be compile-time "
                  "constants");
      return false;
    }
    if (!Component->isScalar()) {
      Diags.error(M->getLoc(),
                  "interface constant components must be scalar");
      return false;
    }
    // Type the constant expression for the backends.
    checkExpr(M->getValue(), Component);
    return true;
  }
  case PatternKind::Record: {
    RecordPattern *R = ast_cast<RecordPattern>(P);
    if (!Component->isRecord()) {
      Diags.error(P->getLoc(), "record pattern applied to non-record type '" +
                                   Component->str() + "'");
      return false;
    }
    const std::vector<TypeField> &Fields = Component->getFields();
    if (R->getElems().size() != Fields.size()) {
      Diags.error(P->getLoc(), "record pattern arity mismatch");
      return false;
    }
    bool OK = true;
    for (size_t I = 0, E = Fields.size(); I != E; ++I)
      OK &= checkInterfacePattern(R->getElems()[I], Fields[I].FieldType);
    return OK;
  }
  case PatternKind::Union: {
    UnionPattern *U = ast_cast<UnionPattern>(P);
    if (!Component->isUnion()) {
      Diags.error(P->getLoc(), "union pattern applied to non-union type '" +
                                   Component->str() + "'");
      return false;
    }
    int Index = Component->getFieldIndex(U->getFieldName());
    if (Index < 0) {
      Diags.error(P->getLoc(), "union type has no field named '" +
                                   U->getFieldName() + "'");
      return false;
    }
    U->setFieldIndex(Index);
    return checkInterfacePattern(U->getSub(),
                                 Component->getFields()[Index].FieldType);
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Type *Sema::checkExpr(Expr *E, const Type *Expected) {
  const Type *Result = nullptr;
  switch (E->getKind()) {
  case ExprKind::IntLit:
    Result = Types.getIntType();
    break;
  case ExprKind::BoolLit:
    Result = Types.getBoolType();
    break;
  case ExprKind::SelfId:
    if (!CurrentProcess) {
      Diags.error(E->getLoc(), "'@' may only appear inside a process");
      return nullptr;
    }
    Result = Types.getIntType();
    break;
  case ExprKind::VarRef: {
    VarRefExpr *V = ast_cast<VarRefExpr>(E);
    if (VarInfo *Var = lookupVar(V->getName())) {
      V->setVar(Var);
      Result = Var->VarType;
      break;
    }
    if (const ConstDecl *C = Prog.findConst(V->getName())) {
      if (!C->ConstType) {
        Diags.error(E->getLoc(), "constant '" + V->getName() +
                                     "' used before its value is known");
        return nullptr;
      }
      V->setConst(C);
      Result = C->ConstType;
      break;
    }
    Diags.error(E->getLoc(),
                "use of undeclared name '" + V->getName() + "'");
    return nullptr;
  }
  case ExprKind::Field: {
    FieldExpr *F = ast_cast<FieldExpr>(E);
    const Type *BaseType = checkExpr(F->getBase(), nullptr);
    if (!BaseType)
      return nullptr;
    if (!BaseType->isRecord() && !BaseType->isUnion()) {
      Diags.error(E->getLoc(), "field access on non-aggregate type '" +
                                   BaseType->str() + "'");
      return nullptr;
    }
    int Index = BaseType->getFieldIndex(F->getFieldName());
    if (Index < 0) {
      Diags.error(E->getLoc(), "type '" + BaseType->str() +
                                   "' has no field named '" +
                                   F->getFieldName() + "'");
      return nullptr;
    }
    F->setFieldIndex(Index);
    Result = BaseType->getFields()[Index].FieldType;
    break;
  }
  case ExprKind::Index: {
    IndexExpr *I = ast_cast<IndexExpr>(E);
    const Type *BaseType = checkExpr(I->getBase(), nullptr);
    const Type *IndexType = checkExpr(I->getIndex(), Types.getIntType());
    if (!BaseType || !IndexType)
      return nullptr;
    if (!BaseType->isArray()) {
      Diags.error(E->getLoc(),
                  "indexing non-array type '" + BaseType->str() + "'");
      return nullptr;
    }
    if (!IndexType->isInt()) {
      Diags.error(I->getIndex()->getLoc(), "array index must be int");
      return nullptr;
    }
    Result = BaseType->getElementType();
    break;
  }
  case ExprKind::Unary: {
    UnaryExpr *U = ast_cast<UnaryExpr>(E);
    const Type *SubType = checkExpr(
        U->getSub(),
        U->getOp() == UnaryOp::Not ? Types.getBoolType() : Types.getIntType());
    if (!SubType)
      return nullptr;
    if (U->getOp() == UnaryOp::Not && !SubType->isBool()) {
      Diags.error(E->getLoc(), "'!' requires a bool operand");
      return nullptr;
    }
    if (U->getOp() == UnaryOp::Neg && !SubType->isInt()) {
      Diags.error(E->getLoc(), "unary '-' requires an int operand");
      return nullptr;
    }
    Result = SubType;
    break;
  }
  case ExprKind::Binary: {
    BinaryExpr *B = ast_cast<BinaryExpr>(E);
    BinaryOp Op = B->getOp();
    const Type *L = nullptr;
    const Type *R = nullptr;
    switch (Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      L = checkExpr(B->getLHS(), Types.getIntType());
      R = checkExpr(B->getRHS(), Types.getIntType());
      if (!L || !R)
        return nullptr;
      if (!L->isInt() || !R->isInt()) {
        Diags.error(E->getLoc(), std::string("operator '") +
                                     binaryOpSpelling(Op) +
                                     "' requires int operands");
        return nullptr;
      }
      Result = (Op == BinaryOp::Lt || Op == BinaryOp::Le ||
                Op == BinaryOp::Gt || Op == BinaryOp::Ge)
                   ? Types.getBoolType()
                   : Types.getIntType();
      break;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      L = checkExpr(B->getLHS(), nullptr);
      if (!L)
        return nullptr;
      R = checkExpr(B->getRHS(), L);
      if (!R)
        return nullptr;
      if (!L->isScalar() || L != R) {
        Diags.error(E->getLoc(),
                    "equality comparison requires matching scalar operands");
        return nullptr;
      }
      Result = Types.getBoolType();
      break;
    case BinaryOp::And:
    case BinaryOp::Or:
      L = checkExpr(B->getLHS(), Types.getBoolType());
      R = checkExpr(B->getRHS(), Types.getBoolType());
      if (!L || !R)
        return nullptr;
      if (!L->isBool() || !R->isBool()) {
        Diags.error(E->getLoc(), std::string("operator '") +
                                     binaryOpSpelling(Op) +
                                     "' requires bool operands");
        return nullptr;
      }
      Result = Types.getBoolType();
      break;
    }
    break;
  }
  case ExprKind::RecordLit: {
    RecordLitExpr *R = ast_cast<RecordLitExpr>(E);
    if (!Expected || !Expected->isRecord()) {
      Diags.error(E->getLoc(),
                  Expected ? "record literal used where type '" +
                                 Expected->str() + "' is expected"
                           : "cannot infer the type of this record literal; "
                             "add a type annotation");
      return nullptr;
    }
    if (Expected->isMutable() != R->isMutableLit()) {
      Diags.error(E->getLoc(),
                  R->isMutableLit()
                      ? "mutable literal ('#') used where an immutable "
                        "record is expected"
                      : "immutable literal used where a mutable record is "
                        "expected (add '#')");
      return nullptr;
    }
    const std::vector<TypeField> &Fields = Expected->getFields();
    if (R->getElems().size() != Fields.size()) {
      Diags.error(E->getLoc(),
                  "record literal has " +
                      std::to_string(R->getElems().size()) +
                      " values but type has " +
                      std::to_string(Fields.size()) + " fields");
      return nullptr;
    }
    bool OK = true;
    for (size_t I = 0, N = Fields.size(); I != N; ++I) {
      const Type *T = checkExpr(R->getElems()[I], Fields[I].FieldType);
      if (!T) {
        OK = false;
        continue;
      }
      if (T != Fields[I].FieldType) {
        Diags.error(R->getElems()[I]->getLoc(),
                    "field '" + Fields[I].Name + "' expects type '" +
                        Fields[I].FieldType->str() + "', found '" + T->str() +
                        "'");
        OK = false;
      }
    }
    if (!OK)
      return nullptr;
    Result = Expected;
    break;
  }
  case ExprKind::UnionLit: {
    UnionLitExpr *U = ast_cast<UnionLitExpr>(E);
    if (!Expected || !Expected->isUnion()) {
      Diags.error(E->getLoc(),
                  Expected ? "union literal used where type '" +
                                 Expected->str() + "' is expected"
                           : "cannot infer the type of this union literal; "
                             "add a type annotation");
      return nullptr;
    }
    if (Expected->isMutable() != U->isMutableLit()) {
      Diags.error(E->getLoc(), "literal mutability does not match the "
                               "expected union type");
      return nullptr;
    }
    int Index = Expected->getFieldIndex(U->getFieldName());
    if (Index < 0) {
      Diags.error(E->getLoc(), "union type '" + Expected->str() +
                                   "' has no field named '" +
                                   U->getFieldName() + "'");
      return nullptr;
    }
    U->setFieldIndex(Index);
    const Type *FieldType = Expected->getFields()[Index].FieldType;
    const Type *T = checkExpr(U->getValue(), FieldType);
    if (!T)
      return nullptr;
    if (T != FieldType) {
      Diags.error(U->getValue()->getLoc(),
                  "union field '" + U->getFieldName() + "' expects type '" +
                      FieldType->str() + "', found '" + T->str() + "'");
      return nullptr;
    }
    Result = Expected;
    break;
  }
  case ExprKind::ArrayLit: {
    ArrayLitExpr *A = ast_cast<ArrayLitExpr>(E);
    const Type *SizeType = checkExpr(A->getSize(), Types.getIntType());
    if (!SizeType)
      return nullptr;
    if (!SizeType->isInt()) {
      Diags.error(A->getSize()->getLoc(), "array size must be int");
      return nullptr;
    }
    const Type *ElemExpected = nullptr;
    if (Expected && Expected->isArray()) {
      if (Expected->isMutable() != A->isMutableLit()) {
        Diags.error(E->getLoc(), "literal mutability does not match the "
                                 "expected array type");
        return nullptr;
      }
      ElemExpected = Expected->getElementType();
    }
    const Type *ElemType = checkExpr(A->getInit(), ElemExpected);
    if (!ElemType)
      return nullptr;
    if (ElemExpected && ElemType != ElemExpected) {
      Diags.error(A->getInit()->getLoc(),
                  "array element expects type '" + ElemExpected->str() +
                      "', found '" + ElemType->str() + "'");
      return nullptr;
    }
    Result = Types.getArrayType(ElemType, A->isMutableLit());
    break;
  }
  case ExprKind::Cast: {
    CastExpr *C = ast_cast<CastExpr>(E);
    const Type *SubType = checkExpr(C->getSub(), nullptr);
    if (!SubType)
      return nullptr;
    if (!SubType->isAggregate()) {
      Diags.error(E->getLoc(),
                  "'cast' converts between mutable and immutable "
                  "aggregates; scalar casts are meaningless");
      return nullptr;
    }
    Result = Types.withDeepMutability(SubType, !SubType->isMutable());
    break;
  }
  }
  if (Result)
    E->setType(Result);
  return Result;
}

//===--- PatternAnalysis.cpp - Channel pattern dispatch checks -------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/PatternAnalysis.h"

#include "frontend/Sema.h"
#include "support/Diagnostics.h"

#include <functional>

using namespace esp;

//===----------------------------------------------------------------------===//
// Abstract patterns
//===----------------------------------------------------------------------===//

AbsPattern AbsPattern::fromPattern(const Pattern *P,
                                   const ProcessDecl *Proc) {
  AbsPattern Out;
  switch (P->getKind()) {
  case PatternKind::Bind:
    Out.K = Any;
    return Out;
  case PatternKind::Match: {
    const MatchPattern *M = ast_cast<MatchPattern>(P);
    if (std::optional<int64_t> V = tryEvalStatic(M->getValue(), Proc)) {
      Out.K = Const;
      Out.Value = *V;
    } else {
      Out.K = Unknown;
    }
    return Out;
  }
  case PatternKind::Record: {
    Out.K = Record;
    for (const Pattern *Child : ast_cast<RecordPattern>(P)->getElems())
      Out.Kids.push_back(fromPattern(Child, Proc));
    return Out;
  }
  case PatternKind::Union: {
    const UnionPattern *U = ast_cast<UnionPattern>(P);
    Out.K = Union;
    Out.Arm = U->getFieldIndex();
    Out.Kids.push_back(fromPattern(U->getSub(), Proc));
    return Out;
  }
  }
  return Out;
}

AbsPattern::Overlap AbsPattern::overlap(const AbsPattern &A,
                                        const AbsPattern &B) {
  // Any overlaps everything.
  if (A.K == Any || B.K == Any)
    return Overlap::Overlapping;
  if (A.K == Unknown || B.K == Unknown)
    return Overlap::Unknown;
  if (A.K == Const && B.K == Const)
    return A.Value == B.Value ? Overlap::Overlapping : Overlap::Disjoint;
  if (A.K == Union && B.K == Union) {
    if (A.Arm != B.Arm)
      return Overlap::Disjoint;
    return overlap(A.Kids[0], B.Kids[0]);
  }
  if (A.K == Record && B.K == Record) {
    // Records overlap iff every component pair overlaps; a single
    // disjoint component makes the records disjoint.
    size_t N = std::min(A.Kids.size(), B.Kids.size());
    Overlap Result = Overlap::Overlapping;
    for (size_t I = 0; I != N; ++I) {
      Overlap Component = overlap(A.Kids[I], B.Kids[I]);
      if (Component == Overlap::Disjoint)
        return Overlap::Disjoint;
      if (Component == Overlap::Unknown)
        Result = Overlap::Unknown;
    }
    return Result;
  }
  // Mixed kinds (e.g. Const vs Record) cannot arise on well-typed
  // channels; be conservative.
  return Overlap::Unknown;
}

bool AbsPattern::coversAll() const {
  switch (K) {
  case Any:
    return true;
  case Const:
  case Unknown:
    return false;
  case Record:
    for (const AbsPattern &Kid : Kids)
      if (!Kid.coversAll())
        return false;
    return true;
  case Union:
    return false; // A single arm never covers the whole union.
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Reader collection
//===----------------------------------------------------------------------===//

namespace {

/// Invokes \p Fn on every AltStmt reachable in \p S.
void forEachAlt(Stmt *S, const std::function<void(AltStmt *)> &Fn) {
  if (!S)
    return;
  switch (S->getKind()) {
  case StmtKind::Block:
    for (Stmt *Child : ast_cast<BlockStmt>(S)->getBody())
      forEachAlt(Child, Fn);
    return;
  case StmtKind::If: {
    IfStmt *I = ast_cast<IfStmt>(S);
    forEachAlt(I->getThen(), Fn);
    forEachAlt(I->getElse(), Fn);
    return;
  }
  case StmtKind::While:
    forEachAlt(ast_cast<WhileStmt>(S)->getBody(), Fn);
    return;
  case StmtKind::Alt: {
    AltStmt *A = ast_cast<AltStmt>(S);
    Fn(A);
    for (AltCase &Case : A->getCases())
      forEachAlt(Case.Body, Fn);
    return;
  }
  default:
    return;
  }
}

} // namespace

std::vector<ChannelReader>
esp::collectChannelReaders(const Program &Prog, const ChannelDecl *Chan) {
  std::vector<ChannelReader> Readers;
  for (const std::unique_ptr<ProcessDecl> &Proc : Prog.Processes) {
    forEachAlt(Proc->Body, [&](AltStmt *A) {
      for (const AltCase &Case : A->getCases()) {
        if (!Case.Action.IsIn || Case.Action.Channel != Chan)
          continue;
        ChannelReader Reader;
        Reader.Pat = Case.Action.Pat;
        Reader.Abs = AbsPattern::fromPattern(Case.Action.Pat, Proc.get());
        Reader.Owner = Proc->ProcessId;
        Reader.OwnerName = Proc->Name;
        Reader.Loc = Case.Action.Loc;
        Readers.push_back(std::move(Reader));
      }
    });
  }
  if (Chan->Role == ChannelRole::ExternalReader && Chan->Interface) {
    unsigned CaseIndex = 0;
    for (const InterfaceCase &Case : Chan->Interface->Cases) {
      ChannelReader Reader;
      Reader.Pat = Case.Pat;
      Reader.Abs = AbsPattern::fromPattern(Case.Pat, nullptr);
      Reader.Owner = (1u << 16) + CaseIndex++;
      Reader.OwnerName = Chan->Interface->Name + "." + Case.Name;
      Reader.Loc = Case.Loc;
      Readers.push_back(std::move(Reader));
    }
  }
  return Readers;
}

//===----------------------------------------------------------------------===//
// Whole-program check
//===----------------------------------------------------------------------===//

static bool hasProcessWriter(const Program &Prog, const ChannelDecl *Chan) {
  for (const std::unique_ptr<ProcessDecl> &Proc : Prog.Processes) {
    bool Found = false;
    forEachAlt(Proc->Body, [&](AltStmt *A) {
      for (const AltCase &Case : A->getCases())
        if (!Case.Action.IsIn && Case.Action.Channel == Chan)
          Found = true;
    });
    if (Found)
      return true;
  }
  return false;
}

/// Approximate exhaustiveness of \p Readers over channel type \p T.
static bool isExhaustive(const std::vector<const AbsPattern *> &Pats,
                         const Type *T) {
  for (const AbsPattern *P : Pats)
    if (P->coversAll())
      return true;
  if (T->isUnion()) {
    const std::vector<TypeField> &Fields = T->getFields();
    for (size_t Arm = 0, N = Fields.size(); Arm != N; ++Arm) {
      std::vector<const AbsPattern *> ArmPats;
      for (const AbsPattern *P : Pats)
        if (P->K == AbsPattern::Union &&
            P->Arm == static_cast<int>(Arm))
          ArmPats.push_back(&P->Kids[0]);
      if (ArmPats.empty() || !isExhaustive(ArmPats, Fields[Arm].FieldType))
        return false;
    }
    return true;
  }
  return false;
}

bool esp::checkChannelPatterns(Program &Prog, DiagnosticEngine &Diags) {
  unsigned ErrorsBefore = Diags.getNumErrors();
  for (const std::unique_ptr<ChannelDecl> &Chan : Prog.Channels) {
    std::vector<ChannelReader> Readers =
        collectChannelReaders(Prog, Chan.get());

    bool HasWriter = Chan->Role == ChannelRole::ExternalWriter ||
                     hasProcessWriter(Prog, Chan.get());
    if (Readers.empty() && HasWriter)
      Diags.warning(Chan->Loc, "channel '" + Chan->Name +
                                   "' is written but never read; writers "
                                   "will block forever");
    if (!Readers.empty() && !HasWriter)
      Diags.warning(Chan->Loc, "channel '" + Chan->Name +
                                   "' is read but never written; readers "
                                   "will block forever");

    // Pairwise disjointness across different owners (§4.2: a channel plus
    // a pattern is a port with a single reader).
    for (size_t I = 0; I != Readers.size(); ++I) {
      for (size_t J = I + 1; J != Readers.size(); ++J) {
        if (Readers[I].Owner == Readers[J].Owner)
          continue;
        AbsPattern::Overlap O =
            AbsPattern::overlap(Readers[I].Abs, Readers[J].Abs);
        if (O == AbsPattern::Overlap::Overlapping) {
          Diags.error(Readers[J].Loc,
                      "receive pattern on channel '" + Chan->Name +
                          "' in '" + Readers[J].OwnerName +
                          "' overlaps a pattern used by '" +
                          Readers[I].OwnerName +
                          "'; patterns on a channel must be disjoint and "
                          "each pattern may be used by one process only");
          Diags.note(Readers[I].Loc, "conflicting pattern is here");
        } else if (O == AbsPattern::Overlap::Unknown) {
          Diags.warning(Readers[J].Loc,
                        "cannot statically prove this pattern disjoint "
                        "from the one used by '" + Readers[I].OwnerName +
                            "' on channel '" + Chan->Name +
                            "'; dispatch ambiguity will be detected at "
                            "run time");
        }
      }
    }

    // Exhaustiveness (approximate: value-level matches such as `{ @, .. }`
    // are inherently not statically exhaustive; a message matching no
    // pattern is reported at run time and by the verifier).
    if (!Readers.empty()) {
      std::vector<const AbsPattern *> Pats;
      Pats.reserve(Readers.size());
      for (const ChannelReader &Reader : Readers)
        Pats.push_back(&Reader.Abs);
      if (!isExhaustive(Pats, Chan->ElemType))
        Diags.warning(Chan->Loc,
                      "receive patterns on channel '" + Chan->Name +
                          "' may not be exhaustive; a message matching no "
                          "pattern is a runtime error");
    }
  }
  return Diags.getNumErrors() == ErrorsBefore;
}

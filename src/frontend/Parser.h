//===--- Parser.h - ESP recursive-descent parser ----------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for ESP. The parser resolves named types while
/// parsing (declare-before-use), assigns dense ids to channels and
/// processes, and desugars standalone `in`/`out` statements into
/// single-case `alt` statements so that later stages handle one construct.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_FRONTEND_PARSER_H
#define ESP_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Token.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace esp {

class DiagnosticEngine;
class SourceManager;

/// Parses one source buffer into a Program.
class Parser {
public:
  Parser(const SourceManager &SM, uint32_t FileId, DiagnosticEngine &Diags);

  /// Parses the whole buffer. Returns the program even if diagnostics were
  /// reported; callers must check Diags.hasErrors().
  std::unique_ptr<Program> parseProgram();

  /// Convenience: lex+parse \p Source registered as \p Name. Returns null
  /// on parse errors.
  static std::unique_ptr<Program> parse(SourceManager &SM,
                                        DiagnosticEngine &Diags,
                                        const std::string &Name,
                                        const std::string &Source);

private:
  // Token access.
  const Token &tok(unsigned Ahead = 0) const;
  void advance() { Pos = std::min(Pos + 1, Tokens.size() - 1); }
  bool consumeIf(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void skipToSync();

  // Top level.
  void parseTypeDecl();
  void parseConstDecl();
  void parseChannelDecl();
  void parseInterfaceDecl();
  void parseProcessDecl();

  // Types.
  const Type *parseType();
  const Type *parseBaseType(bool Mutable);
  std::vector<TypeField> parseFieldList();

  // Statements.
  Stmt *parseStmt();
  Stmt *parseBlock();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseAlt();
  Stmt *parseCommStmt();
  Stmt *parseDeclStmt();
  Stmt *parsePatternAssignStmt();
  Stmt *parseExprLeadStmt();
  CommAction parseCommAction();

  // Patterns and expressions.
  Pattern *parsePattern();
  Pattern *parseBracePattern();
  Expr *parseExpr();
  Expr *parseBinaryRHS(int MinPrec, Expr *LHS);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();
  Expr *parseBraceLiteral(bool Mutable);

  std::unique_ptr<Program> Prog;
  DiagnosticEngine &Diags;
  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::unordered_map<std::string, const Type *> NamedTypes;
};

} // namespace esp

#endif // ESP_FRONTEND_PARSER_H

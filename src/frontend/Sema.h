//===--- Sema.h - ESP semantic checker --------------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for ESP. Sema performs:
///  * compile-time evaluation of `const` declarations,
///  * binding of interfaces to channels and channel-role assignment
///    (external reader xor writer, §4.5),
///  * per-statement bidirectional type checking with the paper's "simple
///    type inferencing on a per statement basis" (§4.1),
///  * variable resolution: all declarations and pattern binders of one
///    name within a process share a slot and must agree on type (this is
///    exactly the storage model of the generated C, where process locals
///    live in the static region, §4.3),
///  * mutability checking: only immutable objects can be sent over
///    channels; stores require mutable aggregates (§4.1/§4.2),
///  * channel direction legality and guard purity.
///
/// Pattern disjointness/exhaustiveness is checked afterwards by
/// PatternAnalysis (see PatternAnalysis.h).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_FRONTEND_SEMA_H
#define ESP_FRONTEND_SEMA_H

#include "frontend/AST.h"

#include <optional>
#include <string>
#include <unordered_map>

namespace esp {

class DiagnosticEngine;

/// Runs semantic analysis over \p Prog, reporting problems to \p Diags.
/// Returns true when no errors were found.
bool checkProgram(Program &Prog, DiagnosticEngine &Diags);

/// Attempts to evaluate \p E as a compile-time constant in the context of
/// process \p Proc (may be null for interface patterns). Supports integer
/// and boolean literals, `const` references, `@` (when \p Proc is given),
/// and arithmetic/logic over those. Used by the pattern-dispatch analysis
/// and by backends.
std::optional<int64_t> tryEvalStatic(const Expr *E, const ProcessDecl *Proc);

namespace detail {

/// Implementation of checkProgram; exposed for unit tests that want to
/// poke at intermediate state.
class Sema {
public:
  Sema(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags), Types(Prog.getTypeContext()) {}

  bool run();

private:
  void checkConstDecls();
  void checkChannels();
  void checkInterfaces();
  void checkProcess(ProcessDecl &Proc);

  void checkStmt(Stmt *S);
  void checkAssign(AssignStmt *S);
  void checkAlt(AltStmt *S);

  /// Bidirectional expression checking. \p Expected may be null (infer).
  /// Returns the expression's type, or null after reporting an error.
  const Type *checkExpr(Expr *E, const Type *Expected);

  /// Checks \p P against component type \p Component, creating binder
  /// variables. \p AllowBinders is false for guard-position patterns.
  bool checkPattern(Pattern *P, const Type *Component);

  /// Checks an interface case pattern: only binders, constants, records
  /// and unions are allowed (no process context exists).
  bool checkInterfacePattern(Pattern *P, const Type *Component);

  /// True if \p E is an lvalue chain (variable, field, or index rooted at
  /// a variable).
  bool isLValue(const Expr *E) const;

  /// Reports an error if \p E contains an allocation or cast; used for
  /// alt guards, which may be re-evaluated many times while blocked.
  void requireAllocationFree(const Expr *E, const char *What);

  VarInfo *lookupOrCreateVar(const std::string &Name, const Type *T,
                             SourceLoc Loc);
  VarInfo *lookupVar(const std::string &Name) const;

  Program &Prog;
  DiagnosticEngine &Diags;
  TypeContext &Types;
  ProcessDecl *CurrentProcess = nullptr;
  std::unordered_map<std::string, VarInfo *> ProcessVars;
};

} // namespace detail
} // namespace esp

#endif // ESP_FRONTEND_SEMA_H

//===--- Lexer.h - ESP lexer ------------------------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for ESP. Supports `//` and `/* */` comments,
/// decimal and hexadecimal integer literals, and the ESP-specific operator
/// tokens (`|>`, `->`, `$`, `#`, `@`, `...`).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_FRONTEND_LEXER_H
#define ESP_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/SourceLoc.h"

#include <string_view>
#include <vector>

namespace esp {

class DiagnosticEngine;
class SourceManager;

/// Lexes one registered source buffer into tokens.
class Lexer {
public:
  Lexer(const SourceManager &SM, uint32_t FileId, DiagnosticEngine &Diags);

  /// Lexes and returns the next token. At the end of the buffer returns
  /// an EndOfFile token (repeatedly, if called again).
  Token next();

  /// Lexes the whole buffer. The returned vector always ends with an
  /// EndOfFile token.
  std::vector<Token> lexAll();

private:
  void skipTrivia();
  Token makeToken(TokenKind Kind, uint32_t Begin);
  Token lexIdentifierOrKeyword();
  Token lexNumber();

  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
  }
  bool atEnd() const { return Pos >= Text.size(); }

  std::string_view Text;
  uint32_t FileId;
  DiagnosticEngine &Diags;
  uint32_t Pos = 0;
};

} // namespace esp

#endif // ESP_FRONTEND_LEXER_H

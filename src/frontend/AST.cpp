//===--- AST.cpp - ESP abstract syntax tree --------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/AST.h"

using namespace esp;

const char *esp::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

bool Pattern::containsBinder() const {
  switch (Kind) {
  case PatternKind::Bind:
    return true;
  case PatternKind::Match:
    return false;
  case PatternKind::Record: {
    for (const Pattern *P : ast_cast<RecordPattern>(this)->getElems())
      if (P->containsBinder())
        return true;
    return false;
  }
  case PatternKind::Union:
    return ast_cast<UnionPattern>(this)->getSub()->containsBinder();
  }
  return false;
}

ChannelDecl *Program::findChannel(const std::string &Name) const {
  for (const std::unique_ptr<ChannelDecl> &C : Channels)
    if (C->Name == Name)
      return C.get();
  return nullptr;
}

ProcessDecl *Program::findProcess(const std::string &Name) const {
  for (const std::unique_ptr<ProcessDecl> &P : Processes)
    if (P->Name == Name)
      return P.get();
  return nullptr;
}

const ConstDecl *Program::findConst(const std::string &Name) const {
  for (const std::unique_ptr<ConstDecl> &C : ConstDecls)
    if (C->Name == Name)
      return C.get();
  return nullptr;
}

InterfaceDecl *Program::findInterface(const std::string &Name) const {
  for (const std::unique_ptr<InterfaceDecl> &I : Interfaces)
    if (I->Name == Name)
      return I.get();
  return nullptr;
}

const TypeDecl *Program::findTypeDecl(const std::string &Name) const {
  for (const TypeDecl &T : TypeDecls)
    if (T.Name == Name)
      return &T;
  return nullptr;
}

//===--- AST.h - ESP abstract syntax tree -----------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ESP AST. A Program owns every node. Expressions, statements, and
/// patterns use an LLVM-style kind discriminator with hand-rolled
/// isa/dyn_cast helpers (no RTTI). The parser resolves named types while
/// parsing (types must be declared before use, which the paper's examples
/// follow); the semantic checker (Sema) fills in the analysis fields:
/// expression types, variable slots, field indices, and constant values.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_FRONTEND_AST_H
#define ESP_FRONTEND_AST_H

#include "frontend/Type.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace esp {

class ChannelDecl;
class Expr;
class Pattern;
class Stmt;

/// Hand-rolled dyn_cast for AST nodes (esplang builds without RTTI).
template <typename To, typename From> To *ast_dyn_cast(From *Node) {
  return Node && To::classof(Node) ? static_cast<To *>(Node) : nullptr;
}
template <typename To, typename From>
const To *ast_dyn_cast(const From *Node) {
  return Node && To::classof(Node) ? static_cast<const To *>(Node) : nullptr;
}
template <typename To, typename From> To *ast_cast(From *Node) {
  assert(Node && To::classof(Node) && "ast_cast to wrong node kind");
  return static_cast<To *>(Node);
}
template <typename To, typename From> const To *ast_cast(const From *Node) {
  assert(Node && To::classof(Node) && "ast_cast to wrong node kind");
  return static_cast<const To *>(Node);
}

/// One variable of a process: either a `$name` declaration or a pattern
/// binder. Sema assigns each a dense slot index within its process.
struct VarInfo {
  std::string Name;
  const Type *VarType = nullptr;
  unsigned Slot = 0;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  BoolLit,
  SelfId,
  VarRef,
  Field,
  Index,
  Unary,
  Binary,
  RecordLit,
  UnionLit,
  ArrayLit,
  Cast,
};

enum class UnaryOp : uint8_t { Not, Neg };
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
};

/// Returns the ESP spelling of \p Op ("+", "&&", ...).
const char *binaryOpSpelling(BinaryOp Op);

/// Base class of all ESP expressions.
class Expr {
public:
  ExprKind getKind() const { return Kind; }
  SourceLoc getLoc() const { return Loc; }

  /// The type computed by Sema; null before checking.
  const Type *getType() const { return ExprType; }
  void setType(const Type *T) { ExprType = T; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
  const Type *ExprType = nullptr;
};

class IntLitExpr : public Expr {
public:
  IntLitExpr(SourceLoc Loc, int64_t Value)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  int64_t getValue() const { return Value; }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IntLit;
  }

private:
  int64_t Value;
};

class BoolLitExpr : public Expr {
public:
  BoolLitExpr(SourceLoc Loc, bool Value)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}
  bool getValue() const { return Value; }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::BoolLit;
  }

private:
  bool Value;
};

/// `@`: the instantiation id of the enclosing process (§4.3 footnote: a
/// constant different for each process).
class SelfIdExpr : public Expr {
public:
  explicit SelfIdExpr(SourceLoc Loc) : Expr(ExprKind::SelfId, Loc) {}
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::SelfId;
  }
};

class ConstDecl;

/// A reference to a process variable or a top-level constant.
class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(ExprKind::VarRef, Loc), Name(std::move(Name)) {}
  const std::string &getName() const { return Name; }

  VarInfo *getVar() const { return Var; }
  void setVar(VarInfo *V) { Var = V; }
  const ConstDecl *getConst() const { return Constant; }
  void setConst(const ConstDecl *C) { Constant = C; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::VarRef;
  }

private:
  std::string Name;
  VarInfo *Var = nullptr;          ///< Set by Sema when a variable.
  const ConstDecl *Constant = nullptr; ///< Set by Sema when a constant.
};

class FieldExpr : public Expr {
public:
  FieldExpr(SourceLoc Loc, Expr *Base, std::string FieldName)
      : Expr(ExprKind::Field, Loc), Base(Base),
        FieldName(std::move(FieldName)) {}
  Expr *getBase() const { return Base; }
  const std::string &getFieldName() const { return FieldName; }
  int getFieldIndex() const { return FieldIndex; }
  void setFieldIndex(int I) { FieldIndex = I; }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Field;
  }

private:
  Expr *Base;
  std::string FieldName;
  int FieldIndex = -1; ///< Set by Sema.
};

class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, Expr *Base, Expr *Index)
      : Expr(ExprKind::Index, Loc), Base(Base), Index(Index) {}
  Expr *getBase() const { return Base; }
  Expr *getIndex() const { return Index; }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Index;
  }

private:
  Expr *Base;
  Expr *Index;
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, Expr *Sub)
      : Expr(ExprKind::Unary, Loc), Op(Op), Sub(Sub) {}
  UnaryOp getOp() const { return Op; }
  Expr *getSub() const { return Sub; }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Unary;
  }

private:
  UnaryOp Op;
  Expr *Sub;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, Expr *LHS, Expr *RHS)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}
  BinaryOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Binary;
  }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// `{ e1, e2, ... }` or `#{ ... }`: allocates a record.
class RecordLitExpr : public Expr {
public:
  RecordLitExpr(SourceLoc Loc, bool Mutable, std::vector<Expr *> Elems)
      : Expr(ExprKind::RecordLit, Loc), Mutable(Mutable),
        Elems(std::move(Elems)) {}
  bool isMutableLit() const { return Mutable; }
  const std::vector<Expr *> &getElems() const { return Elems; }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::RecordLit;
  }

private:
  bool Mutable;
  std::vector<Expr *> Elems;
};

/// `{ field |> e }` or `#{ field |> e }`: allocates a union with the given
/// valid field (§4.1: exactly one field of a union is valid).
class UnionLitExpr : public Expr {
public:
  UnionLitExpr(SourceLoc Loc, bool Mutable, std::string FieldName,
               Expr *Value)
      : Expr(ExprKind::UnionLit, Loc), Mutable(Mutable),
        FieldName(std::move(FieldName)), Value(Value) {}
  bool isMutableLit() const { return Mutable; }
  const std::string &getFieldName() const { return FieldName; }
  Expr *getValue() const { return Value; }
  int getFieldIndex() const { return FieldIndex; }
  void setFieldIndex(int I) { FieldIndex = I; }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::UnionLit;
  }

private:
  bool Mutable;
  std::string FieldName;
  Expr *Value;
  int FieldIndex = -1; ///< Set by Sema.
};

/// `{ size -> init }` or `#{ size -> init, ... }`: allocates an array of
/// `size` elements, each initialized to `init` (the trailing `...` of the
/// paper's syntax is accepted and means "fill the rest the same way").
class ArrayLitExpr : public Expr {
public:
  ArrayLitExpr(SourceLoc Loc, bool Mutable, Expr *Size, Expr *Init)
      : Expr(ExprKind::ArrayLit, Loc), Mutable(Mutable), Size(Size),
        Init(Init) {}
  bool isMutableLit() const { return Mutable; }
  Expr *getSize() const { return Size; }
  Expr *getInit() const { return Init; }
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::ArrayLit;
  }

private:
  bool Mutable;
  Expr *Size;
  Expr *Init;
};

/// `cast(e)`: converts between the mutable and immutable versions of a
/// type. Semantically allocates a deep copy (§4.2); the implementation may
/// reuse the object when it can prove the source is dead.
class CastExpr : public Expr {
public:
  CastExpr(SourceLoc Loc, Expr *Sub) : Expr(ExprKind::Cast, Loc), Sub(Sub) {}
  Expr *getSub() const { return Sub; }
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Cast; }

private:
  Expr *Sub;
};

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

enum class PatternKind : uint8_t { Bind, Match, Record, Union };

/// Base class of patterns. Patterns appear as the target of `in`
/// operations, on the left-hand side of `=`, and in interface cases.
/// Pattern leaves either bind a fresh variable (`$x`) or contain an
/// expression whose value must equal the matched component (this is how a
/// process receives only its own replies: `in(ptReplyC, { @, $pAddr })`).
class Pattern {
public:
  PatternKind getKind() const { return Kind; }
  SourceLoc getLoc() const { return Loc; }

  /// The component type established by Sema.
  const Type *getType() const { return PatType; }
  void setType(const Type *T) { PatType = T; }

  /// True if this pattern or any sub-pattern binds a variable.
  bool containsBinder() const;

protected:
  Pattern(PatternKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  PatternKind Kind;
  SourceLoc Loc;
  const Type *PatType = nullptr;
};

/// `$name`: binds the matched component to a fresh variable.
class BindPattern : public Pattern {
public:
  BindPattern(SourceLoc Loc, std::string Name)
      : Pattern(PatternKind::Bind, Loc), Name(std::move(Name)) {}
  const std::string &getName() const { return Name; }
  VarInfo *getVar() const { return Var; }
  void setVar(VarInfo *V) { Var = V; }
  static bool classof(const Pattern *P) {
    return P->getKind() == PatternKind::Bind;
  }

private:
  std::string Name;
  VarInfo *Var = nullptr; ///< Set by Sema.
};

/// An expression in pattern position: matches when the component equals
/// the expression's value. When an assignment LHS is a single Match
/// pattern whose expression is an lvalue, the statement is a plain store.
class MatchPattern : public Pattern {
public:
  MatchPattern(SourceLoc Loc, Expr *Value)
      : Pattern(PatternKind::Match, Loc), Value(Value) {}
  Expr *getValue() const { return Value; }
  static bool classof(const Pattern *P) {
    return P->getKind() == PatternKind::Match;
  }

private:
  Expr *Value;
};

/// `{ p1, p2, ... }` destructures a record positionally.
class RecordPattern : public Pattern {
public:
  RecordPattern(SourceLoc Loc, std::vector<Pattern *> Elems)
      : Pattern(PatternKind::Record, Loc), Elems(std::move(Elems)) {}
  const std::vector<Pattern *> &getElems() const { return Elems; }
  static bool classof(const Pattern *P) {
    return P->getKind() == PatternKind::Record;
  }

private:
  std::vector<Pattern *> Elems;
};

/// `{ field |> p }` matches a union whose valid field is `field`.
class UnionPattern : public Pattern {
public:
  UnionPattern(SourceLoc Loc, std::string FieldName, Pattern *Sub)
      : Pattern(PatternKind::Union, Loc), FieldName(std::move(FieldName)),
        Sub(Sub) {}
  const std::string &getFieldName() const { return FieldName; }
  Pattern *getSub() const { return Sub; }
  int getFieldIndex() const { return FieldIndex; }
  void setFieldIndex(int I) { FieldIndex = I; }
  static bool classof(const Pattern *P) {
    return P->getKind() == PatternKind::Union;
  }

private:
  std::string FieldName;
  Pattern *Sub;
  int FieldIndex = -1; ///< Set by Sema.
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Decl,
  Assign,
  If,
  While,
  Block,
  Alt,
  Link,
  Unlink,
  Assert,
};

class Stmt {
public:
  StmtKind getKind() const { return Kind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
};

/// `$name (: type)? = init;`
class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLoc Loc, std::string Name, const Type *Annotation,
           Expr *Init)
      : Stmt(StmtKind::Decl, Loc), Name(std::move(Name)),
        Annotation(Annotation), Init(Init) {}
  const std::string &getName() const { return Name; }
  const Type *getAnnotation() const { return Annotation; }
  Expr *getInit() const { return Init; }
  VarInfo *getVar() const { return Var; }
  void setVar(VarInfo *V) { Var = V; }
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Decl;
  }

private:
  std::string Name;
  const Type *Annotation; ///< Null when the type is inferred (§4.1).
  Expr *Init;
  VarInfo *Var = nullptr; ///< Set by Sema.
};

/// `pattern (: type)? = expr;` — a plain store when the LHS is an lvalue
/// expression, otherwise a destructuring match (binding `$` leaves and
/// checking equality leaves; a failed match is a runtime error that the
/// verifier can catch).
class AssignStmt : public Stmt {
public:
  AssignStmt(SourceLoc Loc, Pattern *LHS, const Type *Annotation, Expr *RHS)
      : Stmt(StmtKind::Assign, Loc), LHS(LHS), Annotation(Annotation),
        RHS(RHS) {}
  Pattern *getLHS() const { return LHS; }
  const Type *getAnnotation() const { return Annotation; }
  Expr *getRHS() const { return RHS; }
  bool isPlainStore() const { return PlainStore; }
  void setPlainStore(bool V) { PlainStore = V; }
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Assign;
  }

private:
  Pattern *LHS;
  const Type *Annotation;
  Expr *RHS;
  bool PlainStore = false; ///< Set by Sema.
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(StmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *getCond() const { return Cond; }
  Stmt *getThen() const { return Then; }
  Stmt *getElse() const { return Else; }
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; ///< May be null.
};

/// `while (cond) stmt` — `while { ... }` (no condition) loops forever.
class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::While, Loc), Cond(Cond), Body(Body) {}
  Expr *getCond() const { return Cond; } ///< Null means `while (true)`.
  Stmt *getBody() const { return Body; }
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::While;
  }

private:
  Expr *Cond;
  Stmt *Body;
};

class BlockStmt : public Stmt {
public:
  BlockStmt(SourceLoc Loc, std::vector<Stmt *> Body)
      : Stmt(StmtKind::Block, Loc), Body(std::move(Body)) {}
  const std::vector<Stmt *> &getBody() const { return Body; }
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Block;
  }

private:
  std::vector<Stmt *> Body;
};

/// A communication action: `in(chan, pattern)` or `out(chan, expr)`.
struct CommAction {
  bool IsIn = true;
  std::string ChannelName;
  ChannelDecl *Channel = nullptr; ///< Set by Sema.
  Pattern *Pat = nullptr;         ///< For `in`.
  Expr *Out = nullptr;            ///< For `out`.
  SourceLoc Loc;
};

/// One `case( [guard,] action ) { body }` of an alt statement.
struct AltCase {
  Expr *Guard = nullptr; ///< Null means always enabled.
  CommAction Action;
  Stmt *Body = nullptr; ///< Null for a bare `in`/`out` statement.
  SourceLoc Loc;
};

/// `alt { case(...) {...} ... }`. Standalone `in`/`out` statements are
/// parsed as a single-case alt. Channel selection must prevent starvation
/// but need not be fair (§4.2).
class AltStmt : public Stmt {
public:
  AltStmt(SourceLoc Loc, std::vector<AltCase> Cases)
      : Stmt(StmtKind::Alt, Loc), Cases(std::move(Cases)) {}
  const std::vector<AltCase> &getCases() const { return Cases; }
  std::vector<AltCase> &getCases() { return Cases; }
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Alt; }

private:
  std::vector<AltCase> Cases;
};

/// `link(e);` / `unlink(e);` — the reference-counting primitives (§4.4),
/// the only source of unsafety in the language.
class LinkStmt : public Stmt {
public:
  LinkStmt(SourceLoc Loc, Expr *Obj) : Stmt(StmtKind::Link, Loc), Obj(Obj) {}
  Expr *getObj() const { return Obj; }
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Link;
  }

private:
  Expr *Obj;
};

class UnlinkStmt : public Stmt {
public:
  UnlinkStmt(SourceLoc Loc, Expr *Obj)
      : Stmt(StmtKind::Unlink, Loc), Obj(Obj) {}
  Expr *getObj() const { return Obj; }
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Unlink;
  }

private:
  Expr *Obj;
};

/// `assert(e);` — checked during execution and by the model checker. This
/// is the ESP-level analogue of the assertions the paper writes in the
/// user-supplied SPIN test code.
class AssertStmt : public Stmt {
public:
  AssertStmt(SourceLoc Loc, Expr *Cond)
      : Stmt(StmtKind::Assert, Loc), Cond(Cond) {}
  Expr *getCond() const { return Cond; }
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Assert;
  }

private:
  Expr *Cond;
};

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

/// `type name = type-expr` — resolved to a structural Type at parse time.
struct TypeDecl {
  std::string Name;
  const Type *Resolved = nullptr;
  SourceLoc Loc;
};

/// `const name = expr;` — evaluated at compile time by Sema.
struct ConstDecl {
  std::string Name;
  Expr *Init = nullptr;
  const Type *ConstType = nullptr; ///< Set by Sema (int or bool).
  int64_t Value = 0;               ///< Set by Sema.
  SourceLoc Loc;
};

/// Whether a channel is internal or one end is implemented externally
/// (§4.5: a channel can have an external reader or writer, but not both).
enum class ChannelRole : uint8_t { Internal, ExternalWriter, ExternalReader };

class InterfaceDecl;

/// `channel name: type`
class ChannelDecl {
public:
  std::string Name;
  const Type *ElemType = nullptr;
  unsigned Id = 0; ///< Dense index assigned by the parser.
  ChannelRole Role = ChannelRole::Internal;
  InterfaceDecl *Interface = nullptr; ///< Set when Role != Internal.
  SourceLoc Loc;
};

/// One named case of an external interface, e.g.
/// `Send( { send |> { $dest, $vAddr, $size } } )`. The binders are the
/// parameters the external function produces (external writer) or
/// receives (external reader).
struct InterfaceCase {
  std::string Name;
  Pattern *Pat = nullptr;
  SourceLoc Loc;
};

/// `interface name(out chan) { Case(pattern), ... }` — `out chan` means
/// the external code writes the channel; `in chan` means it reads (§4.5).
class InterfaceDecl {
public:
  std::string Name;
  bool ExternalWrites = false;
  std::string ChannelName;
  ChannelDecl *Channel = nullptr; ///< Set by Sema.
  std::vector<InterfaceCase> Cases;
  SourceLoc Loc;
};

/// `process name { ... }`
class ProcessDecl {
public:
  std::string Name;
  BlockStmt *Body = nullptr;
  unsigned ProcessId = 0; ///< Dense index; the value of `@`.
  SourceLoc Loc;

  /// All variables of the process (declarations and pattern binders),
  /// owned here; Slot indices are dense in [0, NumSlots).
  std::vector<std::unique_ptr<VarInfo>> Vars;
  unsigned NumSlots = 0;

  VarInfo *createVar(std::string Name, SourceLoc Loc) {
    Vars.push_back(std::make_unique<VarInfo>());
    VarInfo *V = Vars.back().get();
    V->Name = std::move(Name);
    V->Slot = NumSlots++;
    V->Loc = Loc;
    return V;
  }
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

/// A whole ESP program: owns the TypeContext, every AST node, and the
/// top-level declarations. All processes and channels are static and known
/// at compile time (§4).
class Program {
public:
  Program() = default;
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  TypeContext &getTypeContext() { return Types; }
  const TypeContext &getTypeContext() const { return Types; }

  /// Allocates an AST node owned by this program.
  template <typename T, typename... Args> T *create(Args &&...As) {
    auto Node = std::make_unique<T>(std::forward<Args>(As)...);
    T *Raw = Node.get();
    NodePool.push_back(
        std::unique_ptr<void, void (*)(void *)>(Node.release(), [](void *P) {
          delete static_cast<T *>(P);
        }));
    return Raw;
  }

  std::vector<TypeDecl> TypeDecls;
  std::vector<std::unique_ptr<ConstDecl>> ConstDecls;
  std::vector<std::unique_ptr<ChannelDecl>> Channels;
  std::vector<std::unique_ptr<InterfaceDecl>> Interfaces;
  std::vector<std::unique_ptr<ProcessDecl>> Processes;

  ChannelDecl *findChannel(const std::string &Name) const;
  ProcessDecl *findProcess(const std::string &Name) const;
  const ConstDecl *findConst(const std::string &Name) const;
  InterfaceDecl *findInterface(const std::string &Name) const;
  const TypeDecl *findTypeDecl(const std::string &Name) const;

private:
  TypeContext Types;
  std::vector<std::unique_ptr<void, void (*)(void *)>> NodePool;
};

} // namespace esp

#endif // ESP_FRONTEND_AST_H

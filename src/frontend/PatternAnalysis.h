//===--- PatternAnalysis.h - Channel pattern dispatch checks ----*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static checks for ESP's pattern-dispatch rules (§4.2): all the patterns
/// used to receive on a channel must be pairwise disjoint across readers,
/// and each pattern may be used by only one process — a channel plus a
/// pattern defines a *port* with a single reader. The analysis also warns
/// when the pattern set is not statically exhaustive (a message matching
/// no pattern is then a runtime/verifier-detected error) and when a
/// channel has no reader or no writer at all.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_FRONTEND_PATTERNANALYSIS_H
#define ESP_FRONTEND_PATTERNANALYSIS_H

#include "frontend/AST.h"

#include <cstdint>
#include <vector>

namespace esp {

class DiagnosticEngine;

/// An abstract pattern used for disjointness/exhaustiveness reasoning.
/// Expression leaves that can be evaluated statically (literals, consts,
/// `@`) become Const; others become Unknown.
struct AbsPattern {
  enum Kind : uint8_t { Any, Const, Unknown, Record, Union } K = Any;
  int64_t Value = 0; ///< For Const.
  int Arm = -1;      ///< For Union.
  std::vector<AbsPattern> Kids;

  static AbsPattern fromPattern(const Pattern *P, const ProcessDecl *Proc);

  /// Three-valued overlap test between two abstract patterns.
  enum class Overlap { Disjoint, Overlapping, Unknown };
  static Overlap overlap(const AbsPattern &A, const AbsPattern &B);

  /// True if this pattern alone matches every value of its type.
  bool coversAll() const;
};

/// One reader of a channel: a process `in` pattern or an external-reader
/// interface case.
struct ChannelReader {
  const Pattern *Pat = nullptr;
  AbsPattern Abs;
  /// Owner key: process id, or (1<<16)+case index for interface cases.
  unsigned Owner = 0;
  std::string OwnerName;
  SourceLoc Loc;
};

/// Runs the pattern-dispatch checks over the whole program. Returns true
/// when no errors were found (warnings do not fail the check).
bool checkChannelPatterns(Program &Prog, DiagnosticEngine &Diags);

/// Collects the readers of channel \p Chan across the program (exposed
/// for the backends, which build their dispatch tables from it).
std::vector<ChannelReader> collectChannelReaders(const Program &Prog,
                                                 const ChannelDecl *Chan);

} // namespace esp

#endif // ESP_FRONTEND_PATTERNANALYSIS_H

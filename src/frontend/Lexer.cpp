//===--- Lexer.cpp - ESP lexer ---------------------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringExtras.h"

#include <cassert>
#include <string>
#include <unordered_map>

using namespace esp;

const char *esp::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwType:
    return "'type'";
  case TokenKind::KwRecord:
    return "'record'";
  case TokenKind::KwUnion:
    return "'union'";
  case TokenKind::KwArray:
    return "'array'";
  case TokenKind::KwOf:
    return "'of'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwChannel:
    return "'channel'";
  case TokenKind::KwInterface:
    return "'interface'";
  case TokenKind::KwProcess:
    return "'process'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwAlt:
    return "'alt'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwOut:
    return "'out'";
  case TokenKind::KwLink:
    return "'link'";
  case TokenKind::KwUnlink:
    return "'unlink'";
  case TokenKind::KwCast:
    return "'cast'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Dollar:
    return "'$'";
  case TokenKind::Hash:
    return "'#'";
  case TokenKind::At:
    return "'@'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Ellipsis:
    return "'...'";
  case TokenKind::PipeGreater:
    return "'|>'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::NotEqual:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  }
  return "unknown token";
}

static TokenKind keywordKind(std::string_view Text) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"type", TokenKind::KwType},      {"record", TokenKind::KwRecord},
      {"union", TokenKind::KwUnion},    {"array", TokenKind::KwArray},
      {"of", TokenKind::KwOf},          {"int", TokenKind::KwInt},
      {"bool", TokenKind::KwBool},      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},    {"channel", TokenKind::KwChannel},
      {"interface", TokenKind::KwInterface},
      {"process", TokenKind::KwProcess},
      {"const", TokenKind::KwConst},    {"while", TokenKind::KwWhile},
      {"if", TokenKind::KwIf},          {"else", TokenKind::KwElse},
      {"alt", TokenKind::KwAlt},        {"case", TokenKind::KwCase},
      {"in", TokenKind::KwIn},          {"out", TokenKind::KwOut},
      {"link", TokenKind::KwLink},      {"unlink", TokenKind::KwUnlink},
      {"cast", TokenKind::KwCast},      {"assert", TokenKind::KwAssert},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

Lexer::Lexer(const SourceManager &SM, uint32_t FileId, DiagnosticEngine &Diags)
    : Text(SM.getBuffer(FileId)), FileId(FileId), Diags(Diags) {}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      uint32_t CommentBegin = Pos;
      Pos += 2;
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        ++Pos;
      if (atEnd()) {
        Diags.error(SourceLoc(FileId, CommentBegin),
                    "unterminated block comment");
        return;
      }
      Pos += 2;
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, uint32_t Begin) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = SourceLoc(FileId, Begin);
  Tok.Text = Text.substr(Begin, Pos - Begin);
  return Tok;
}

Token Lexer::lexIdentifierOrKeyword() {
  uint32_t Begin = Pos;
  while (!atEnd() && isIdentChar(peek()))
    ++Pos;
  std::string_view Spelling = Text.substr(Begin, Pos - Begin);
  return makeToken(keywordKind(Spelling), Begin);
}

Token Lexer::lexNumber() {
  uint32_t Begin = Pos;
  int64_t Value = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Pos += 2;
    uint32_t DigitsBegin = Pos;
    while (!atEnd() &&
           (isDigit(peek()) || (peek() >= 'a' && peek() <= 'f') ||
            (peek() >= 'A' && peek() <= 'F'))) {
      char C = peek();
      int Digit = isDigit(C) ? C - '0'
                             : (C >= 'a' ? C - 'a' + 10 : C - 'A' + 10);
      Value = Value * 16 + Digit;
      ++Pos;
    }
    if (Pos == DigitsBegin)
      Diags.error(SourceLoc(FileId, Begin),
                  "hexadecimal literal requires at least one digit");
  } else {
    while (!atEnd() && isDigit(peek())) {
      Value = Value * 10 + (peek() - '0');
      ++Pos;
    }
  }
  if (!atEnd() && isIdentStart(peek()))
    Diags.error(SourceLoc(FileId, Pos),
                "unexpected character in integer literal");
  Token Tok = makeToken(TokenKind::IntLiteral, Begin);
  Tok.IntValue = Value;
  return Tok;
}

Token Lexer::next() {
  skipTrivia();
  if (atEnd())
    return makeToken(TokenKind::EndOfFile, Pos);

  uint32_t Begin = Pos;
  char C = peek();

  if (isIdentStart(C))
    return lexIdentifierOrKeyword();
  if (isDigit(C))
    return lexNumber();

  auto single = [&](TokenKind Kind) {
    ++Pos;
    return makeToken(Kind, Begin);
  };
  auto twoChar = [&](TokenKind Kind) {
    Pos += 2;
    return makeToken(Kind, Begin);
  };

  switch (C) {
  case '{':
    return single(TokenKind::LBrace);
  case '}':
    return single(TokenKind::RBrace);
  case '(':
    return single(TokenKind::LParen);
  case ')':
    return single(TokenKind::RParen);
  case '[':
    return single(TokenKind::LBracket);
  case ']':
    return single(TokenKind::RBracket);
  case ',':
    return single(TokenKind::Comma);
  case ';':
    return single(TokenKind::Semicolon);
  case ':':
    return single(TokenKind::Colon);
  case '$':
    return single(TokenKind::Dollar);
  case '#':
    return single(TokenKind::Hash);
  case '@':
    return single(TokenKind::At);
  case '.':
    if (peek(1) == '.' && peek(2) == '.') {
      Pos += 3;
      return makeToken(TokenKind::Ellipsis, Begin);
    }
    return single(TokenKind::Dot);
  case '|':
    if (peek(1) == '>')
      return twoChar(TokenKind::PipeGreater);
    if (peek(1) == '|')
      return twoChar(TokenKind::PipePipe);
    break;
  case '&':
    if (peek(1) == '&')
      return twoChar(TokenKind::AmpAmp);
    break;
  case '-':
    if (peek(1) == '>')
      return twoChar(TokenKind::Arrow);
    return single(TokenKind::Minus);
  case '=':
    if (peek(1) == '=')
      return twoChar(TokenKind::EqualEqual);
    return single(TokenKind::Assign);
  case '!':
    if (peek(1) == '=')
      return twoChar(TokenKind::NotEqual);
    return single(TokenKind::Bang);
  case '<':
    if (peek(1) == '=')
      return twoChar(TokenKind::LessEqual);
    return single(TokenKind::Less);
  case '>':
    if (peek(1) == '=')
      return twoChar(TokenKind::GreaterEqual);
    return single(TokenKind::Greater);
  case '+':
    return single(TokenKind::Plus);
  case '*':
    return single(TokenKind::Star);
  case '/':
    return single(TokenKind::Slash);
  case '%':
    return single(TokenKind::Percent);
  default:
    break;
  }

  Diags.error(SourceLoc(FileId, Begin),
              std::string("unexpected character '") + C + "'");
  ++Pos;
  return makeToken(TokenKind::Error, Begin);
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token Tok = next();
    Tokens.push_back(Tok);
    if (Tok.is(TokenKind::EndOfFile))
      return Tokens;
  }
}

//===--- Deadlock.cpp - Static deadlock detection --------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// A reachability search over the product of the per-process
/// communication skeletons (CommGraph). Data is abstracted away: branch
/// conditions are nondeterministic unless statically constant, guards are
/// assumed satisfiable unless statically false, and pattern/value pairing
/// uses the three-valued AbsPattern overlap with "unknown" treated as
/// "may fire". A deadlock is a reachable configuration in which every
/// process sits at a block point and no rendezvous (internal or with the
/// always-willing environment) can fire.
///
/// The abstractions are chosen so that a *reported* configuration is
/// stuck under every data valuation that reaches it; what remains
/// approximate is whether the configuration is reachable at all (the
/// product search ignores data), so findings are "possible deadlock" —
/// see docs/analysis.md.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/CommGraph.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace esp;

namespace {

/// One product configuration: the current stop of every participating
/// process (States.size() encodes the terminal stop).
using Config = std::vector<unsigned>;

std::string encodeConfig(const Config &C) {
  std::string Key;
  Key.reserve(C.size() * 4);
  for (unsigned Stop : C)
    for (unsigned B = 0; B != 4; ++B)
      Key.push_back(static_cast<char>((Stop >> (8 * B)) & 0xff));
  return Key;
}

struct DeadlockSearch {
  const CommGraph &Graph;
  const std::vector<unsigned> &Parts; ///< Module proc index per config slot.
  uint64_t MaxConfigs;

  std::unordered_set<std::string> Visited;
  std::deque<Config> Queue;
  uint64_t Explored = 0;
  bool Incomplete = false;

  DeadlockSearch(const CommGraph &Graph, const std::vector<unsigned> &Parts,
                 uint64_t MaxConfigs)
      : Graph(Graph), Parts(Parts), MaxConfigs(MaxConfigs) {}

  unsigned terminalOf(unsigned Slot) const {
    return static_cast<unsigned>(Graph.Procs[Parts[Slot]].States.size());
  }

  bool isTerminal(const Config &C, unsigned Slot) const {
    return C[Slot] == terminalOf(Slot);
  }

  unsigned stopFromComm(unsigned Slot, unsigned Stop) const {
    return Stop == ProcComm::TerminalStop ? terminalOf(Slot) : Stop;
  }

  void enqueue(Config C) {
    std::string Key = encodeConfig(C);
    if (Visited.count(Key))
      return;
    if (Visited.size() >= MaxConfigs) {
      Incomplete = true;
      return;
    }
    Visited.insert(std::move(Key));
    Queue.push_back(std::move(C));
  }

  /// Appends every configuration reachable from \p C in one move to
  /// \p Out. Returns true if at least one move exists.
  bool successors(const Config &C, std::vector<Config> &Out) const {
    bool Any = false;
    for (unsigned I = 0, N = Parts.size(); I != N; ++I) {
      if (isTerminal(C, I))
        continue;
      const ProcComm &PC = Graph.Procs[Parts[I]];
      const CommState &State = PC.States[C[I]];
      for (const CommCase &Case : State.Cases) {
        if (Case.GuardFalse)
          continue;
        if (Case.External) {
          if (!Case.ExternalFireable)
            continue;
          Any = true;
          for (unsigned Succ : Case.Succs) {
            Config Next = C;
            Next[I] = stopFromComm(I, Succ);
            Out.push_back(std::move(Next));
          }
          continue;
        }
        if (Case.IR->IsIn)
          continue; // Internal rendezvous are driven from the out side.
        for (unsigned J = 0; J != N; ++J) {
          if (J == I || isTerminal(C, J))
            continue;
          const CommState &Peer = Graph.Procs[Parts[J]].States[C[J]];
          for (const CommCase &InCase : Peer.Cases) {
            if (InCase.GuardFalse || InCase.External || !InCase.IR->IsIn ||
                InCase.IR->Channel != Case.IR->Channel)
              continue;
            if (!mayPair(InCase.Abs, Case.Abs))
              continue;
            Any = true;
            for (unsigned SI : Case.Succs)
              for (unsigned SJ : InCase.Succs) {
                Config Next = C;
                Next[I] = stopFromComm(I, SI);
                Next[J] = stopFromComm(J, SJ);
                Out.push_back(std::move(Next));
              }
          }
        }
      }
    }
    return Any;
  }
};

/// In a stuck configuration, process \p I waits for process \p J when one
/// of I's current alternatives names a channel whose opposite end is
/// (somewhere) implemented by J.
std::vector<std::vector<unsigned>> waitForEdges(const CommGraph &Graph,
                                                const DeadlockSearch &Search,
                                                const Config &C) {
  unsigned N = static_cast<unsigned>(Search.Parts.size());
  std::vector<std::vector<unsigned>> Edges(N);
  for (unsigned I = 0; I != N; ++I) {
    const CommState &State = Graph.Procs[Search.Parts[I]].States[C[I]];
    for (const CommCase &Case : State.Cases) {
      if (Case.GuardFalse || Case.External)
        continue;
      unsigned ChanId = Case.IR->Channel->Id;
      const std::vector<ChannelEnd> &Peers =
          Case.IR->IsIn ? Graph.Writers[ChanId] : Graph.Readers[ChanId];
      for (const ChannelEnd &Peer : Peers)
        for (unsigned J = 0; J != N; ++J)
          if (Search.Parts[J] == Peer.Proc && J != I &&
              std::find(Edges[I].begin(), Edges[I].end(), J) ==
                  Edges[I].end())
            Edges[I].push_back(J);
    }
  }
  return Edges;
}

/// Follows wait-for edges from slot 0 until a slot repeats; returns the
/// cycle as a slot sequence (first == last), or empty if a process with
/// no outgoing edge is reached (it waits on a channel nobody serves).
std::vector<unsigned> findWaitCycle(
    const std::vector<std::vector<unsigned>> &Edges) {
  std::vector<unsigned> Path;
  std::vector<int> PosInPath(Edges.size(), -1);
  unsigned Cur = 0;
  while (true) {
    if (PosInPath[Cur] >= 0) {
      std::vector<unsigned> Cycle(Path.begin() + PosInPath[Cur], Path.end());
      Cycle.push_back(Cur);
      return Cycle;
    }
    PosInPath[Cur] = static_cast<int>(Path.size());
    Path.push_back(Cur);
    if (Edges[Cur].empty())
      return {};
    Cur = Edges[Cur].front();
  }
}

} // namespace

void esp::detail::checkDeadlock(const Program &Prog, const ModuleIR &Module,
                                const AnalysisOptions &Options,
                                AnalysisResult &Result) {
  (void)Prog;
  CommGraph Graph = CommGraph::build(Module);

  // Only processes that communicate at all participate; a process with
  // no block point can never hold up a rendezvous.
  std::vector<unsigned> Parts;
  for (unsigned P = 0, N = Graph.Procs.size(); P != N; ++P)
    if (!Graph.Procs[P].States.empty())
      Parts.push_back(P);
  if (Parts.empty())
    return;

  DeadlockSearch Search(Graph, Parts, Options.MaxConfigs);

  // Seed with the cross product of every process's initial stop set.
  std::vector<Config> Seeds = {Config()};
  for (unsigned I = 0, N = Parts.size(); I != N; ++I) {
    std::vector<Config> Expanded;
    for (const Config &Partial : Seeds)
      for (unsigned Stop : Graph.Procs[Parts[I]].InitialStops) {
        Config Next = Partial;
        Next.push_back(Search.stopFromComm(I, Stop));
        Expanded.push_back(std::move(Next));
      }
    Seeds = std::move(Expanded);
    if (Seeds.size() > Options.MaxConfigs) {
      Result.DeadlockSearchIncomplete = true;
      return;
    }
  }
  for (Config &Seed : Seeds)
    Search.enqueue(std::move(Seed));

  std::vector<Config> Next;
  while (!Search.Queue.empty()) {
    Config C = std::move(Search.Queue.front());
    Search.Queue.pop_front();
    ++Search.Explored;

    Next.clear();
    bool AnyMove = Search.successors(C, Next);
    if (!AnyMove) {
      bool AllBlocked = true;
      for (unsigned I = 0, N = Parts.size(); I != N; ++I)
        AllBlocked &= !Search.isTerminal(C, I);
      // A configuration with terminated processes is quiescence, not a
      // wait cycle; espmc's deadlock check covers that case (§5).
      if (AllBlocked) {
        AnalysisFinding Finding;
        Finding.Kind = AnalysisKind::Deadlock;
        Finding.Severity = AnalysisSeverity::Error;

        std::string Names;
        for (unsigned I = 0, N = Parts.size(); I != N; ++I) {
          if (I)
            Names += ", ";
          Names += "'" + Graph.Procs[Parts[I]].IR->Proc->Name + "'";
        }
        Finding.Message =
            "possible deadlock: processes " + Names +
            " can all be blocked with no rendezvous able to fire";

        std::vector<std::vector<unsigned>> Edges =
            waitForEdges(Graph, Search, C);
        std::vector<unsigned> Cycle = findWaitCycle(Edges);
        std::string Chain;
        for (unsigned I = 0, N = Cycle.size(); I != N; ++I) {
          if (I)
            Chain += " -> ";
          Chain += Graph.Procs[Parts[Cycle[I]]].IR->Proc->Name;
        }

        for (unsigned I = 0, N = Parts.size(); I != N; ++I) {
          const ProcComm &PC = Graph.Procs[Parts[I]];
          const CommState &State = PC.States[C[I]];
          std::string Chans;
          for (const CommCase &Case : State.Cases) {
            if (Case.GuardFalse)
              continue;
            if (!Chans.empty())
              Chans += ", ";
            Chans += (Case.IR->IsIn ? "in " : "out ");
            Chans += "'" + Case.IR->Channel->Name + "'";
          }
          SourceLoc BlockLoc = PC.IR->Insts[State.InstIndex].Loc;
          if (!Finding.Loc.isValid())
            Finding.Loc = BlockLoc;
          Finding.Notes.push_back(
              {BlockLoc, "process '" + PC.IR->Proc->Name +
                             "' is blocked here on " + Chans});
        }
        if (!Chain.empty())
          Finding.Notes.insert(Finding.Notes.begin(),
                               {Finding.Loc, "wait cycle: " + Chain});
        Result.Findings.push_back(std::move(Finding));
        break; // One witness per program is enough.
      }
    }
    for (Config &N2 : Next)
      Search.enqueue(std::move(N2));
  }

  Result.ConfigsExplored += Search.Explored;
  Result.DeadlockSearchIncomplete |= Search.Incomplete;
}

//===--- Analysis.h - Whole-program static analysis (esplint) ---*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The esplint static analyzers: compile-time detection of a useful
/// subset of the defects the paper finds with SPIN (§5), with no test
/// harness at all. Three cooperating whole-program passes run over the
/// instantiated AST and the state-machine IR:
///
///  * deadlock: a reachability search over the product of the per-process
///    communication skeletons (CommGraph) that reports configurations in
///    which every process is blocked and no rendezvous can fire, with a
///    witness wait-for cycle,
///  * link balance: a forward dataflow over each process's IR that flags
///    objects that are never unlinked (static leak, the compile-time
///    analogue of the paper's objectId-table exhaustion check, §5.2) and
///    unlinks of already-released objects (refcount underflow),
///  * reachability: states that can never execute or never receive,
///    alt cases with statically-false guards, and channels whose only
///    readers or writers are unreachable.
///
/// Severities are calibrated so that an *error* is only reported when the
/// defect holds on every abstract path (see docs/analysis.md for each
/// detector's soundness/completeness caveats); uncertain findings are
/// warnings. esplint's exit code counts errors only.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_ANALYSIS_ANALYSIS_H
#define ESP_ANALYSIS_ANALYSIS_H

#include "ir/IR.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace esp {

class DiagnosticEngine;
class SourceManager;

enum class AnalysisKind : uint8_t {
  Deadlock,
  LinkBalance,
  Reachability,
  Interference,
};

/// Returns the stable detector name ("deadlock", "link-balance",
/// "reachability", "interference") used in text and JSON output.
const char *analysisKindName(AnalysisKind Kind);

enum class AnalysisSeverity : uint8_t { Note, Warning, Error };

const char *analysisSeverityName(AnalysisSeverity Severity);

/// One finding with optional attached notes (witness steps, related
/// locations).
struct AnalysisFinding {
  AnalysisKind Kind = AnalysisKind::Reachability;
  AnalysisSeverity Severity = AnalysisSeverity::Warning;
  SourceLoc Loc;
  std::string Message;
  struct Note {
    SourceLoc Loc;
    std::string Message;
  };
  std::vector<Note> Notes;
};

struct AnalysisOptions {
  bool CheckDeadlock = true;
  bool CheckLinkBalance = true;
  bool CheckReachability = true;
  /// Interference warnings (self-rendezvous channels).
  bool CheckInterference = true;
  /// Also emit the note-severity conflict-class report (the
  /// `esplint --interference` mode: sites, conflict matrix summary,
  /// % statically-commuting pairs).
  bool ReportInterference = false;
  /// Cap on product configurations the deadlock search explores; beyond
  /// it the search stops and the result is marked incomplete.
  uint64_t MaxConfigs = 1u << 20;
};

struct AnalysisResult {
  std::vector<AnalysisFinding> Findings;
  /// The deadlock search hit MaxConfigs; absence of a deadlock finding
  /// is then inconclusive.
  bool DeadlockSearchIncomplete = false;
  /// Product configurations the deadlock search explored.
  uint64_t ConfigsExplored = 0;

  unsigned numErrors() const;
  unsigned numWarnings() const;
};

/// Runs the selected analyses. \p Module must be the *unoptimized*
/// lowering of \p Prog (the same convention the model checker uses,
/// §5.2), and \p Prog must have passed checkProgram.
AnalysisResult analyzeProgram(const Program &Prog, const ModuleIR &Module,
                              const AnalysisOptions &Options = {});

/// Forwards every finding to \p Diags (notes follow their finding).
/// When \p DemoteErrors is set, errors are reported as warnings — the
/// `espc -Wanalysis` mode.
void reportFindings(const AnalysisResult &Result, DiagnosticEngine &Diags,
                    bool DemoteErrors = false);

/// Renders the findings as "file:line:col: severity: [detector] message"
/// lines, one per finding/note.
std::string renderFindingsText(const AnalysisResult &Result,
                               const SourceManager &SM);

/// Renders the findings as a JSON document (stable detector and severity
/// names; locations decoded to file/line/column).
std::string renderFindingsJson(const AnalysisResult &Result,
                               const SourceManager &SM);

namespace detail {

/// The individual passes; exposed for unit tests. Each appends to
/// \p Result.Findings.
void checkDeadlock(const Program &Prog, const ModuleIR &Module,
                   const AnalysisOptions &Options, AnalysisResult &Result);
void checkLinkBalance(const Program &Prog, const ModuleIR &Module,
                      AnalysisResult &Result);
void checkReachability(const Program &Prog, const ModuleIR &Module,
                       AnalysisResult &Result);
void checkInterference(const Program &Prog, const ModuleIR &Module,
                       const AnalysisOptions &Options,
                       AnalysisResult &Result);

} // namespace detail
} // namespace esp

#endif // ESP_ANALYSIS_ANALYSIS_H

//===--- Analysis.cpp - Analysis driver, reporting, rendering --------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <algorithm>
#include <sstream>

using namespace esp;

const char *esp::analysisKindName(AnalysisKind Kind) {
  switch (Kind) {
  case AnalysisKind::Deadlock:
    return "deadlock";
  case AnalysisKind::LinkBalance:
    return "link-balance";
  case AnalysisKind::Reachability:
    return "reachability";
  case AnalysisKind::Interference:
    return "interference";
  }
  return "unknown";
}

const char *esp::analysisSeverityName(AnalysisSeverity Severity) {
  switch (Severity) {
  case AnalysisSeverity::Note:
    return "note";
  case AnalysisSeverity::Warning:
    return "warning";
  case AnalysisSeverity::Error:
    return "error";
  }
  return "unknown";
}

unsigned AnalysisResult::numErrors() const {
  unsigned N = 0;
  for (const AnalysisFinding &F : Findings)
    N += F.Severity == AnalysisSeverity::Error;
  return N;
}

unsigned AnalysisResult::numWarnings() const {
  unsigned N = 0;
  for (const AnalysisFinding &F : Findings)
    N += F.Severity == AnalysisSeverity::Warning;
  return N;
}

AnalysisResult esp::analyzeProgram(const Program &Prog, const ModuleIR &Module,
                                   const AnalysisOptions &Options) {
  AnalysisResult Result;
  if (Options.CheckDeadlock)
    detail::checkDeadlock(Prog, Module, Options, Result);
  if (Options.CheckLinkBalance)
    detail::checkLinkBalance(Prog, Module, Result);
  if (Options.CheckReachability)
    detail::checkReachability(Prog, Module, Result);
  if (Options.CheckInterference || Options.ReportInterference)
    detail::checkInterference(Prog, Module, Options, Result);

  // Deterministic presentation order: by location, then severity (errors
  // first), keeping the per-detector insertion order as the tiebreak.
  std::stable_sort(Result.Findings.begin(), Result.Findings.end(),
                   [](const AnalysisFinding &A, const AnalysisFinding &B) {
                     if (A.Loc.getFileId() != B.Loc.getFileId())
                       return A.Loc.getFileId() < B.Loc.getFileId();
                     if (A.Loc.getOffset() != B.Loc.getOffset())
                       return A.Loc.getOffset() < B.Loc.getOffset();
                     return static_cast<int>(A.Severity) >
                            static_cast<int>(B.Severity);
                   });
  return Result;
}

void esp::reportFindings(const AnalysisResult &Result, DiagnosticEngine &Diags,
                         bool DemoteErrors) {
  for (const AnalysisFinding &F : Result.Findings) {
    std::string Message = "[";
    Message += analysisKindName(F.Kind);
    Message += "] ";
    Message += F.Message;
    AnalysisSeverity Severity = F.Severity;
    if (DemoteErrors && Severity == AnalysisSeverity::Error)
      Severity = AnalysisSeverity::Warning;
    switch (Severity) {
    case AnalysisSeverity::Error:
      Diags.error(F.Loc, Message);
      break;
    case AnalysisSeverity::Warning:
      Diags.warning(F.Loc, Message);
      break;
    case AnalysisSeverity::Note:
      Diags.note(F.Loc, Message);
      break;
    }
    for (const AnalysisFinding::Note &N : F.Notes)
      Diags.note(N.Loc, N.Message);
  }
}

namespace {

void renderLoc(const SourceManager &SM, SourceLoc Loc, std::ostream &OS) {
  DecodedLoc D = SM.decode(Loc);
  OS << D.FileName << ":" << D.Line << ":" << D.Column;
}

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void renderJsonLoc(const SourceManager &SM, SourceLoc Loc, std::ostream &OS) {
  DecodedLoc D = SM.decode(Loc);
  OS << "{\"file\": \"" << jsonEscape(D.FileName) << "\", \"line\": " << D.Line
     << ", \"column\": " << D.Column << "}";
}

} // namespace

std::string esp::renderFindingsText(const AnalysisResult &Result,
                                    const SourceManager &SM) {
  std::ostringstream OS;
  for (const AnalysisFinding &F : Result.Findings) {
    renderLoc(SM, F.Loc, OS);
    OS << ": " << analysisSeverityName(F.Severity) << ": ["
       << analysisKindName(F.Kind) << "] " << F.Message << "\n";
    for (const AnalysisFinding::Note &N : F.Notes) {
      if (N.Loc.isValid()) {
        OS << "  ";
        renderLoc(SM, N.Loc, OS);
        OS << ": ";
      } else {
        OS << "  ";
      }
      OS << "note: " << N.Message << "\n";
    }
  }
  if (Result.DeadlockSearchIncomplete)
    OS << "note: [deadlock] state search hit the configuration limit; "
          "deadlock results are incomplete\n";
  return OS.str();
}

std::string esp::renderFindingsJson(const AnalysisResult &Result,
                                    const SourceManager &SM) {
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"errors\": " << Result.numErrors() << ",\n";
  OS << "  \"warnings\": " << Result.numWarnings() << ",\n";
  OS << "  \"deadlockSearchIncomplete\": "
     << (Result.DeadlockSearchIncomplete ? "true" : "false") << ",\n";
  OS << "  \"findings\": [";
  for (unsigned I = 0, E = Result.Findings.size(); I != E; ++I) {
    const AnalysisFinding &F = Result.Findings[I];
    OS << (I ? ",\n    " : "\n    ");
    OS << "{\"detector\": \"" << analysisKindName(F.Kind) << "\", "
       << "\"severity\": \"" << analysisSeverityName(F.Severity) << "\", "
       << "\"location\": ";
    renderJsonLoc(SM, F.Loc, OS);
    OS << ", \"message\": \"" << jsonEscape(F.Message) << "\", \"notes\": [";
    for (unsigned J = 0, NE = F.Notes.size(); J != NE; ++J) {
      const AnalysisFinding::Note &N = F.Notes[J];
      OS << (J ? ", " : "") << "{\"location\": ";
      renderJsonLoc(SM, N.Loc, OS);
      OS << ", \"message\": \"" << jsonEscape(N.Message) << "\"}";
    }
    OS << "]}";
  }
  OS << (Result.Findings.empty() ? "]\n" : "\n  ]\n");
  OS << "}\n";
  return OS.str();
}

//===--- CommGraph.h - Whole-program communication topology -----*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The may-block communication topology of a lowered ESP program, shared
/// by the static analyzers (esplint). Every process is abstracted to its
/// *stop points* — the Block instructions of the state-machine IR (§4.3)
/// plus a synthetic terminal stop — and every alt case carries the
/// abstract pattern (receive side) or abstract value (send side) used for
/// static pairing, honoring the pattern ports of PatternAnalysis (§4.2).
///
/// Control flow between stops follows the per-process CFG with
/// statically-constant branches pruned (a `const`-guarded `if` only
/// contributes its live arm), so guards like `if (KEEP == 1)` do not
/// smear infeasible paths into the analyses.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_ANALYSIS_COMMGRAPH_H
#define ESP_ANALYSIS_COMMGRAPH_H

#include "frontend/PatternAnalysis.h"
#include "ir/IR.h"

#include <vector>

namespace esp {

/// One alternative of a stop point, with its static pairing abstraction.
struct CommCase {
  const IRCase *IR = nullptr;
  /// Receive pattern abstraction (in) or sent-value abstraction (out).
  AbsPattern Abs;
  /// The guard is statically false: the case can never be selected.
  bool GuardFalse = false;
  /// The channel's opposite end is an external interface (§4.5).
  bool External = false;
  /// External and at least one interface case may pair with this case;
  /// the environment is assumed always willing, so the case can fire.
  bool ExternalFireable = false;
  /// Stop indices this process may block at next after the case commits
  /// (ProcComm::TerminalStop when the process may halt instead).
  std::vector<unsigned> Succs;
};

/// One may-block state of a process: a Block instruction.
struct CommState {
  unsigned InstIndex = 0;
  std::vector<CommCase> Cases;
};

/// The communication skeleton of one process.
struct ProcComm {
  /// Synthetic stop index meaning "the process has halted".
  static constexpr unsigned TerminalStop = ~0u;

  const ProcIR *IR = nullptr;
  std::vector<CommState> States;
  /// Stops the process may first block at (or TerminalStop).
  std::vector<unsigned> InitialStops;
  /// Instruction reachability from entry over the pruned CFG.
  std::vector<bool> ReachableInsts;

  bool isReachableState(unsigned StateIndex) const {
    return ReachableInsts[States[StateIndex].InstIndex];
  }
};

/// One end of a channel: a specific case of a specific stop point.
struct ChannelEnd {
  unsigned Proc = 0;
  unsigned State = 0;
  unsigned Case = 0;
};

/// The whole-program communication topology.
struct CommGraph {
  const ModuleIR *Module = nullptr;
  std::vector<ProcComm> Procs;
  /// Per channel id: all process-side writer / reader ends.
  std::vector<std::vector<ChannelEnd>> Writers;
  std::vector<std::vector<ChannelEnd>> Readers;

  static CommGraph build(const ModuleIR &Module);

  const CommCase &caseAt(const ChannelEnd &End) const {
    return Procs[End.Proc].States[End.State].Cases[End.Case];
  }
};

/// Abstracts an out expression into the pattern domain: statically
/// evaluable scalars become Const, record/union literals destructure, and
/// everything else is Unknown.
AbsPattern absFromOutExpr(const Expr *E, const ProcessDecl *Proc);

/// May a receive pattern pair with a sent value? True unless the overlap
/// is provably Disjoint (the bias keeps every analysis built on top of
/// this an under-approximation of "stuck": an uncertain pair is assumed
/// to fire, so esplint never reports a rendezvous that could happen).
bool mayPair(const AbsPattern &In, const AbsPattern &Out);

/// Successor instruction indices of Insts[Index] with statically-constant
/// branch conditions pruned to their live arm.
void prunedSuccessors(const ProcIR &Proc, unsigned Index,
                      std::vector<unsigned> &Succs);

} // namespace esp

#endif // ESP_ANALYSIS_COMMGRAPH_H

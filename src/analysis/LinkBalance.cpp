//===--- LinkBalance.cpp - link/unlink balance analysis --------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// A forward dataflow over each process's state-machine IR that tracks,
/// per variable slot, how many references the process holds to the object
/// the slot owns. The abstract value is a three-bit may-set over the
/// reference count: {0}, {1}, {>=2}; joins are unions.
///
/// Only slots whose ownership is unambiguous are tracked: aggregate-typed
/// slots whose every whole definition is a fresh allocation (record,
/// union, or array literal, a cast — which allocates a deep copy, §4.2 —
/// or a channel receive binder, which owns the incoming message). A slot
/// is abandoned the moment it may alias another (whole-variable copies,
/// destructuring assignments, or appearing inside a stored literal), so a
/// tracked count of {1} really is the last reference. `out` does not give
/// up the sender's reference (messages transfer by value on the wire), so
/// sends are ordinary uses.
///
/// Reported, at reachable instructions only and against the pruned CFG
/// (statically-constant branches contribute one arm, so `if (KEEP == 1)
/// unlink(m);` is not smeared):
///  * unlink with count {0}: refcount underflow (error); with a mix that
///    includes 0: may-underflow (warning),
///  * a redefinition (or receive) into a slot whose count includes >=1:
///    the previous object's references are dropped un-released (error if
///    the count cannot be 0, else warning),
///  * a reachable halt with a slot count including >=1: the object is
///    never unlinked — a static leak (error if definite, else warning),
///    the compile-time analogue of the objectId-exhaustion leak the paper
///    finds with SPIN (§5.2).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/CommGraph.h"

using namespace esp;

namespace {

// May-set over the per-slot reference count: {0}, {1}, {2}, {>=3}. Two is
// tracked exactly so one link and its balancing extra unlink round-trip
// without losing precision.
enum : uint8_t {
  CountZero = 1 << 0,
  CountOne = 1 << 1,
  CountTwo = 1 << 2,
  CountMany = 1 << 3, // >= 3
};

constexpr uint8_t CountPositive = CountOne | CountTwo | CountMany;

uint8_t shiftUp(uint8_t M) {
  uint8_t Out = 0;
  if (M & CountZero)
    Out |= CountOne;
  if (M & CountOne)
    Out |= CountTwo;
  if (M & (CountTwo | CountMany))
    Out |= CountMany;
  return Out;
}

uint8_t shiftDown(uint8_t M) {
  uint8_t Out = static_cast<uint8_t>(M & CountZero); // Underflow sticks at 0.
  if (M & CountOne)
    Out |= CountZero;
  if (M & CountTwo)
    Out |= CountOne;
  if (M & CountMany)
    Out |= CountTwo | CountMany; // >=3 minus one is >=2.
  return Out;
}

/// The slot of a link/unlink operand when it is a whole tracked variable,
/// else -1 (a nested operand adjusts a sub-object's count, not the
/// slot's).
int wholeVarSlot(const Expr *E) {
  if (const VarRefExpr *V = ast_dyn_cast<VarRefExpr>(E))
    if (V->getVar())
      return static_cast<int>(V->getVar()->Slot);
  return -1;
}

/// Whole-slot definition of a DeclInit or plain Store, else -1.
int wholeDefSlot(const Inst &I) {
  if (I.Kind == InstKind::DeclInit)
    return static_cast<int>(I.Var->Slot);
  if (I.Kind == InstKind::Store && I.PlainStore) {
    const MatchPattern *M = ast_cast<MatchPattern>(I.LHS);
    return wholeVarSlot(M->getValue());
  }
  return -1;
}

bool isAllocExpr(const Expr *E) {
  switch (E->getKind()) {
  case ExprKind::RecordLit:
  case ExprKind::UnionLit:
  case ExprKind::ArrayLit:
  case ExprKind::Cast: // Allocates a deep copy (§4.2).
    return true;
  default:
    return false;
  }
}

/// Marks slots whose value may be captured by reference inside the stored
/// value of \p E: a whole variable at the root or embedded in record,
/// union, or array literals. Field/index projections and casts produce
/// scalar or freshly-copied values and are copy boundaries.
void collectEscapes(const Expr *E, std::vector<bool> &Escaped) {
  if (!E)
    return;
  switch (E->getKind()) {
  case ExprKind::VarRef: {
    const VarRefExpr *V = ast_cast<VarRefExpr>(E);
    if (V->getVar() && V->getVar()->VarType &&
        V->getVar()->VarType->isAggregate())
      Escaped[V->getVar()->Slot] = true;
    return;
  }
  case ExprKind::RecordLit:
    for (const Expr *Elem : ast_cast<RecordLitExpr>(E)->getElems())
      collectEscapes(Elem, Escaped);
    return;
  case ExprKind::UnionLit:
    collectEscapes(ast_cast<UnionLitExpr>(E)->getValue(), Escaped);
    return;
  case ExprKind::ArrayLit:
    collectEscapes(ast_cast<ArrayLitExpr>(E)->getInit(), Escaped);
    return;
  default:
    return;
  }
}

/// Every aggregate variable mentioned anywhere in \p E (used when an
/// expression feeds a destructuring match, which may alias components).
void collectAggregateRefs(const Expr *E, std::vector<bool> &Out) {
  if (!E)
    return;
  switch (E->getKind()) {
  case ExprKind::VarRef: {
    const VarRefExpr *V = ast_cast<VarRefExpr>(E);
    if (V->getVar() && V->getVar()->VarType &&
        V->getVar()->VarType->isAggregate())
      Out[V->getVar()->Slot] = true;
    return;
  }
  case ExprKind::Unary:
    collectAggregateRefs(ast_cast<UnaryExpr>(E)->getSub(), Out);
    return;
  case ExprKind::Binary:
    collectAggregateRefs(ast_cast<BinaryExpr>(E)->getLHS(), Out);
    collectAggregateRefs(ast_cast<BinaryExpr>(E)->getRHS(), Out);
    return;
  case ExprKind::Field:
    collectAggregateRefs(ast_cast<FieldExpr>(E)->getBase(), Out);
    return;
  case ExprKind::Index:
    collectAggregateRefs(ast_cast<IndexExpr>(E)->getBase(), Out);
    collectAggregateRefs(ast_cast<IndexExpr>(E)->getIndex(), Out);
    return;
  case ExprKind::RecordLit:
    for (const Expr *Elem : ast_cast<RecordLitExpr>(E)->getElems())
      collectAggregateRefs(Elem, Out);
    return;
  case ExprKind::UnionLit:
    collectAggregateRefs(ast_cast<UnionLitExpr>(E)->getValue(), Out);
    return;
  case ExprKind::ArrayLit:
    collectAggregateRefs(ast_cast<ArrayLitExpr>(E)->getSize(), Out);
    collectAggregateRefs(ast_cast<ArrayLitExpr>(E)->getInit(), Out);
    return;
  case ExprKind::Cast:
    collectAggregateRefs(ast_cast<CastExpr>(E)->getSub(), Out);
    return;
  default:
    return;
  }
}

void collectAggregateBinders(const Pattern *P,
                             std::vector<const VarInfo *> &Out) {
  if (!P)
    return;
  switch (P->getKind()) {
  case PatternKind::Bind: {
    const VarInfo *V = ast_cast<BindPattern>(P)->getVar();
    if (V && V->VarType && V->VarType->isAggregate())
      Out.push_back(V);
    return;
  }
  case PatternKind::Record:
    for (const Pattern *Elem : ast_cast<RecordPattern>(P)->getElems())
      collectAggregateBinders(Elem, Out);
    return;
  case PatternKind::Union:
    collectAggregateBinders(ast_cast<UnionPattern>(P)->getSub(), Out);
    return;
  case PatternKind::Match:
    return;
  }
}

struct ProcLinkAnalysis {
  const ProcIR &Proc;
  AnalysisResult &Result;

  std::vector<bool> Tracked;
  std::vector<bool> Reachable;
  /// IN state per instruction: one count mask per slot; all-zero means
  /// "not yet reached".
  std::vector<std::vector<uint8_t>> In;

  ProcLinkAnalysis(const ProcIR &Proc, AnalysisResult &Result)
      : Proc(Proc), Result(Result) {}

  void run() {
    computeTracked();
    computeReachable();
    bool AnyTracked = false;
    for (bool T : Tracked)
      AnyTracked |= T;
    if (!AnyTracked)
      return;
    solve();
    report();
  }

  void computeTracked() {
    unsigned NumSlots = Proc.Proc->NumSlots;
    Tracked.assign(NumSlots, false);
    for (const auto &Var : Proc.Proc->Vars)
      if (Var->VarType && Var->VarType->isAggregate())
        Tracked[Var->Slot] = true;

    std::vector<bool> Escaped(NumSlots, false);
    std::vector<const VarInfo *> Binders;
    for (const Inst &I : Proc.Insts) {
      switch (I.Kind) {
      case InstKind::DeclInit:
        if (!isAllocExpr(I.RHS))
          Tracked[I.Var->Slot] = false;
        collectEscapes(I.RHS, Escaped);
        break;
      case InstKind::Store:
        if (I.PlainStore) {
          int Slot = wholeDefSlot(I);
          if (Slot >= 0 && !isAllocExpr(I.RHS))
            Tracked[Slot] = false;
          collectEscapes(I.RHS, Escaped);
        } else {
          // Destructuring may alias components of the source into the
          // binders; give up on both sides.
          Binders.clear();
          collectAggregateBinders(I.LHS, Binders);
          for (const VarInfo *V : Binders)
            Tracked[V->Slot] = false;
          collectAggregateRefs(I.RHS, Escaped);
        }
        break;
      default:
        break;
      }
    }
    for (unsigned S = 0; S != NumSlots; ++S)
      if (Escaped[S])
        Tracked[S] = false;
  }

  void computeReachable() {
    Reachable.assign(Proc.Insts.size(), false);
    std::vector<unsigned> Worklist = {0};
    std::vector<unsigned> Succs;
    while (!Worklist.empty()) {
      unsigned I = Worklist.back();
      Worklist.pop_back();
      if (I >= Proc.Insts.size() || Reachable[I])
        continue;
      Reachable[I] = true;
      prunedSuccessors(Proc, I, Succs);
      for (unsigned S : Succs)
        Worklist.push_back(S);
    }
  }

  /// Transfer through the non-communication effect of Insts[Index].
  void transfer(unsigned Index, std::vector<uint8_t> &S) const {
    const Inst &I = Proc.Insts[Index];
    switch (I.Kind) {
    case InstKind::DeclInit:
    case InstKind::Store: {
      int Slot = wholeDefSlot(I);
      if (Slot >= 0 && Tracked[Slot])
        S[Slot] = CountOne; // Fresh allocation: the slot owns one ref.
      return;
    }
    case InstKind::Link: {
      int Slot = wholeVarSlot(I.RHS);
      if (Slot >= 0 && Tracked[Slot])
        S[Slot] = shiftUp(S[Slot]);
      return;
    }
    case InstKind::Unlink: {
      int Slot = wholeVarSlot(I.RHS);
      if (Slot >= 0 && Tracked[Slot])
        S[Slot] = shiftDown(S[Slot]);
      return;
    }
    default:
      return;
    }
  }

  bool joinInto(std::vector<uint8_t> &Dst, const std::vector<uint8_t> &Src) {
    bool Changed = false;
    for (unsigned S = 0, N = Dst.size(); S != N; ++S) {
      uint8_t Merged = Dst[S] | Src[S];
      Changed |= Merged != Dst[S];
      Dst[S] = Merged;
    }
    return Changed;
  }

  void solve() {
    unsigned NumSlots = Proc.Proc->NumSlots;
    In.assign(Proc.Insts.size(), std::vector<uint8_t>(NumSlots, 0));
    if (Proc.Insts.empty())
      return;
    In[0].assign(NumSlots, CountZero);

    std::vector<unsigned> Succs;
    std::vector<const VarInfo *> Binders;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned Index = 0, E = Proc.Insts.size(); Index != E; ++Index) {
        if (!Reachable[Index])
          continue;
        bool Seen = false;
        for (uint8_t M : In[Index])
          Seen |= M != 0;
        if (!Seen)
          continue;
        const Inst &I = Proc.Insts[Index];
        if (I.Kind == InstKind::Block) {
          for (const IRCase &Case : I.Cases) {
            std::vector<uint8_t> S = In[Index];
            if (Case.IsIn) {
              // The receive binders own the incoming message's objects.
              Binders.clear();
              collectAggregateBinders(Case.Pat, Binders);
              for (const VarInfo *V : Binders)
                if (Tracked[V->Slot])
                  S[V->Slot] = CountOne;
            }
            if (Case.Target < In.size())
              Changed |= joinInto(In[Case.Target], S);
          }
          continue;
        }
        std::vector<uint8_t> S = In[Index];
        transfer(Index, S);
        prunedSuccessors(Proc, Index, Succs);
        for (unsigned Succ : Succs)
          if (Succ < In.size())
            Changed |= joinInto(In[Succ], S);
      }
    }
  }

  void addFinding(AnalysisSeverity Severity, SourceLoc Loc,
                  std::string Message,
                  std::vector<AnalysisFinding::Note> Notes = {}) {
    AnalysisFinding F;
    F.Kind = AnalysisKind::LinkBalance;
    F.Severity = Severity;
    F.Loc = Loc;
    F.Message = std::move(Message);
    F.Notes = std::move(Notes);
    Result.Findings.push_back(std::move(F));
  }

  const std::string &slotName(unsigned Slot) const {
    for (const auto &Var : Proc.Proc->Vars)
      if (Var->Slot == Slot)
        return Var->Name;
    static const std::string Unknown = "?";
    return Unknown;
  }

  SourceLoc slotLoc(unsigned Slot) const {
    for (const auto &Var : Proc.Proc->Vars)
      if (Var->Slot == Slot)
        return Var->Loc;
    return SourceLoc();
  }

  void reportDrop(unsigned Slot, uint8_t Mask, SourceLoc Loc,
                  const char *What) {
    if (!(Mask & CountPositive))
      return;
    std::string Name = slotName(Slot);
    if (!(Mask & CountZero))
      addFinding(AnalysisSeverity::Error, Loc,
                 std::string(What) + " '" + Name +
                     "' drops the last reference to its previous object, "
                     "which is never unlinked (leak)");
    else
      addFinding(AnalysisSeverity::Warning, Loc,
                 std::string(What) + " '" + Name +
                     "' may drop a still-linked object on some paths");
  }

  void report() {
    std::vector<const VarInfo *> Binders;
    std::vector<bool> LeakReported(Proc.Proc->NumSlots, false);
    for (unsigned Index = 0, E = Proc.Insts.size(); Index != E; ++Index) {
      if (!Reachable[Index])
        continue;
      const Inst &I = Proc.Insts[Index];
      bool Seen = false;
      for (uint8_t M : In[Index])
        Seen |= M != 0;
      if (!Seen)
        continue;
      switch (I.Kind) {
      case InstKind::DeclInit:
      case InstKind::Store: {
        int Slot = wholeDefSlot(I);
        if (Slot >= 0 && Tracked[Slot])
          reportDrop(static_cast<unsigned>(Slot), In[Index][Slot], I.Loc,
                     "reassignment of");
        break;
      }
      case InstKind::Block:
        for (const IRCase &Case : I.Cases) {
          if (!Case.IsIn)
            continue;
          Binders.clear();
          collectAggregateBinders(Case.Pat, Binders);
          for (const VarInfo *V : Binders)
            if (Tracked[V->Slot])
              reportDrop(V->Slot, In[Index][V->Slot], Case.Loc,
                         "receiving into");
        }
        break;
      case InstKind::Unlink: {
        int Slot = wholeVarSlot(I.RHS);
        if (Slot < 0 || !Tracked[Slot])
          break;
        uint8_t Mask = In[Index][Slot];
        if (Mask == CountZero)
          addFinding(AnalysisSeverity::Error, I.Loc,
                     "'" + slotName(Slot) +
                         "' is unlinked here but no longer holds a "
                         "reference (refcount underflow)");
        else if (Mask & CountZero)
          addFinding(AnalysisSeverity::Warning, I.Loc,
                     "'" + slotName(Slot) +
                         "' may already have been unlinked on some paths "
                         "(possible refcount underflow)");
        break;
      }
      case InstKind::Halt:
        for (unsigned Slot = 0, NS = Proc.Proc->NumSlots; Slot != NS;
             ++Slot) {
          if (!Tracked[Slot] || LeakReported[Slot])
            continue;
          uint8_t Mask = In[Index][Slot];
          if (!(Mask & CountPositive))
            continue;
          LeakReported[Slot] = true;
          std::vector<AnalysisFinding::Note> Notes;
          if (I.Loc.isValid())
            Notes.push_back({I.Loc, "process ends here"});
          if (!(Mask & CountZero))
            addFinding(AnalysisSeverity::Error, slotLoc(Slot),
                       "object held by '" + slotName(Slot) +
                           "' in process '" + Proc.Proc->Name +
                           "' is never unlinked (leak)",
                       std::move(Notes));
          else
            addFinding(AnalysisSeverity::Warning, slotLoc(Slot),
                       "object held by '" + slotName(Slot) +
                           "' in process '" + Proc.Proc->Name +
                           "' may not be unlinked on some paths "
                           "(possible leak)",
                       std::move(Notes));
        }
        break;
      default:
        break;
      }
    }
  }
};

} // namespace

void esp::detail::checkLinkBalance(const Program &Prog, const ModuleIR &Module,
                                   AnalysisResult &Result) {
  (void)Prog;
  for (const ProcIR &Proc : Module.Procs)
    ProcLinkAnalysis(Proc, Result).run();
}

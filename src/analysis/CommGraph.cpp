//===--- CommGraph.cpp - Whole-program communication topology --------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CommGraph.h"

#include "frontend/Sema.h"

#include <algorithm>

using namespace esp;

AbsPattern esp::absFromOutExpr(const Expr *E, const ProcessDecl *Proc) {
  AbsPattern Out;
  if (!E) {
    Out.K = AbsPattern::Unknown;
    return Out;
  }
  if (std::optional<int64_t> V = tryEvalStatic(E, Proc)) {
    Out.K = AbsPattern::Const;
    Out.Value = *V;
    return Out;
  }
  switch (E->getKind()) {
  case ExprKind::RecordLit: {
    Out.K = AbsPattern::Record;
    for (const Expr *Elem : ast_cast<RecordLitExpr>(E)->getElems())
      Out.Kids.push_back(absFromOutExpr(Elem, Proc));
    return Out;
  }
  case ExprKind::UnionLit: {
    const UnionLitExpr *U = ast_cast<UnionLitExpr>(E);
    Out.K = AbsPattern::Union;
    Out.Arm = U->getFieldIndex();
    Out.Kids.push_back(absFromOutExpr(U->getValue(), Proc));
    return Out;
  }
  default:
    Out.K = AbsPattern::Unknown;
    return Out;
  }
}

bool esp::mayPair(const AbsPattern &In, const AbsPattern &Out) {
  return AbsPattern::overlap(In, Out) != AbsPattern::Overlap::Disjoint;
}

void esp::prunedSuccessors(const ProcIR &Proc, unsigned Index,
                           std::vector<unsigned> &Succs) {
  Succs.clear();
  const Inst &I = Proc.Insts[Index];
  switch (I.Kind) {
  case InstKind::Branch: {
    // "If Cond is false, jump to Target; otherwise fall through."
    if (std::optional<int64_t> V = tryEvalStatic(I.Cond, Proc.Proc)) {
      Succs.push_back(*V != 0 ? Index + 1 : I.Target);
      return;
    }
    Succs.push_back(Index + 1);
    Succs.push_back(I.Target);
    return;
  }
  case InstKind::Jump:
    Succs.push_back(I.Target);
    return;
  case InstKind::Block:
    for (const IRCase &Case : I.Cases)
      Succs.push_back(Case.Target);
    return;
  case InstKind::Halt:
    return;
  default:
    Succs.push_back(Index + 1);
    return;
  }
}

namespace {

/// Collects the stops (Block instructions or TerminalStop) a process may
/// next block at starting *from* instruction \p Start, without crossing
/// another stop. \p BlockStop maps instruction index to stop index.
std::vector<unsigned> nextStops(const ProcIR &Proc,
                                const std::vector<int> &BlockStop,
                                unsigned Start) {
  std::vector<unsigned> Stops;
  std::vector<bool> Seen(Proc.Insts.size() + 1, false);
  std::vector<unsigned> Worklist = {Start};
  std::vector<unsigned> Succs;
  auto AddStop = [&Stops](unsigned Stop) {
    if (std::find(Stops.begin(), Stops.end(), Stop) == Stops.end())
      Stops.push_back(Stop);
  };
  while (!Worklist.empty()) {
    unsigned I = Worklist.back();
    Worklist.pop_back();
    if (I >= Proc.Insts.size()) {
      AddStop(ProcComm::TerminalStop);
      continue;
    }
    if (Seen[I])
      continue;
    Seen[I] = true;
    if (Proc.Insts[I].Kind == InstKind::Block) {
      AddStop(static_cast<unsigned>(BlockStop[I]));
      continue;
    }
    if (Proc.Insts[I].Kind == InstKind::Halt) {
      AddStop(ProcComm::TerminalStop);
      continue;
    }
    prunedSuccessors(Proc, I, Succs);
    for (unsigned S : Succs)
      Worklist.push_back(S);
  }
  return Stops;
}

/// Can the environment pair with a process-side case on an external
/// channel? The interface cases describe every value the external side
/// produces (writer) or accepts (reader), so the case can fire iff it is
/// not provably disjoint from all of them.
bool environmentMayPair(const ChannelDecl *Chan, const AbsPattern &Abs) {
  if (!Chan->Interface)
    return true; // Defensive: role without interface, assume fireable.
  for (const InterfaceCase &Case : Chan->Interface->Cases) {
    AbsPattern IfaceAbs = AbsPattern::fromPattern(Case.Pat, nullptr);
    if (AbsPattern::overlap(Abs, IfaceAbs) != AbsPattern::Overlap::Disjoint)
      return true;
  }
  return false;
}

} // namespace

CommGraph CommGraph::build(const ModuleIR &Module) {
  CommGraph Graph;
  Graph.Module = &Module;
  Graph.Writers.resize(Module.Prog->Channels.size());
  Graph.Readers.resize(Module.Prog->Channels.size());

  for (unsigned P = 0, NP = Module.Procs.size(); P != NP; ++P) {
    const ProcIR &Proc = Module.Procs[P];
    ProcComm Comm;
    Comm.IR = &Proc;

    // Instruction reachability over the pruned CFG.
    Comm.ReachableInsts.assign(Proc.Insts.size(), false);
    std::vector<unsigned> Worklist = {0};
    std::vector<unsigned> Succs;
    while (!Worklist.empty()) {
      unsigned I = Worklist.back();
      Worklist.pop_back();
      if (I >= Proc.Insts.size() || Comm.ReachableInsts[I])
        continue;
      Comm.ReachableInsts[I] = true;
      prunedSuccessors(Proc, I, Succs);
      for (unsigned S : Succs)
        Worklist.push_back(S);
    }

    // Stop points: every Block instruction (reachable or not, so the
    // reachability pass can name the unreachable ones).
    std::vector<int> BlockStop(Proc.Insts.size(), -1);
    for (unsigned I = 0, E = Proc.Insts.size(); I != E; ++I) {
      if (Proc.Insts[I].Kind != InstKind::Block)
        continue;
      BlockStop[I] = static_cast<int>(Comm.States.size());
      CommState State;
      State.InstIndex = I;
      Comm.States.push_back(std::move(State));
    }

    for (CommState &State : Comm.States) {
      const Inst &Ins = Proc.Insts[State.InstIndex];
      for (const IRCase &Case : Ins.Cases) {
        CommCase CC;
        CC.IR = &Case;
        CC.Abs = Case.IsIn
                     ? AbsPattern::fromPattern(Case.Pat, Proc.Proc)
                     : absFromOutExpr(Case.Out, Proc.Proc);
        if (Case.Guard) {
          if (std::optional<int64_t> G = tryEvalStatic(Case.Guard, Proc.Proc))
            CC.GuardFalse = *G == 0;
        }
        CC.External = Case.Channel->Role != ChannelRole::Internal;
        if (CC.External && !CC.GuardFalse)
          CC.ExternalFireable = environmentMayPair(Case.Channel, CC.Abs);
        CC.Succs = nextStops(Proc, BlockStop, Case.Target);
        State.Cases.push_back(std::move(CC));
      }
    }

    Comm.InitialStops = nextStops(Proc, BlockStop, 0);
    Graph.Procs.push_back(std::move(Comm));
  }

  for (unsigned P = 0, NP = Graph.Procs.size(); P != NP; ++P) {
    const ProcComm &Comm = Graph.Procs[P];
    for (unsigned S = 0, NS = Comm.States.size(); S != NS; ++S) {
      const CommState &State = Comm.States[S];
      for (unsigned C = 0, NC = State.Cases.size(); C != NC; ++C) {
        const CommCase &CC = State.Cases[C];
        unsigned ChanId = CC.IR->Channel->Id;
        ChannelEnd End{P, S, C};
        (CC.IR->IsIn ? Graph.Readers : Graph.Writers)[ChanId].push_back(End);
      }
    }
  }
  return Graph;
}

//===--- Independence.cpp - Static move-independence analysis ------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Builds the whole-program independence summary (see Independence.h) on
// top of CommGraph's stop-point skeleton, and implements the esplint
// interference detector: the self-rendezvous warning and the
// --interference conflict-class report.
//
//===----------------------------------------------------------------------===//

#include "analysis/Independence.h"

#include "analysis/Analysis.h"
#include "analysis/CommGraph.h"
#include "frontend/PatternAnalysis.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

using namespace esp;

namespace {

/// Does the commit body starting at \p Target free heap objects (Unlink)
/// or halt / fall off the end of the process before reaching the next
/// stop point? Freeing is visible to the object-table bound and the leak
/// sweep; halting changes the deadlock predicate. Either makes the case
/// ineligible for an ample set.
bool commitBodyHeapUnsafe(const ProcIR &Proc, unsigned Target) {
  std::vector<bool> Seen(Proc.Insts.size(), false);
  std::vector<unsigned> Work = {Target};
  std::vector<unsigned> Succs;
  while (!Work.empty()) {
    unsigned Index = Work.back();
    Work.pop_back();
    if (Index >= Proc.Insts.size())
      return true; // Fell off the end: implicit halt.
    if (Seen[Index])
      continue;
    Seen[Index] = true;
    const Inst &I = Proc.Insts[Index];
    if (I.Kind == InstKind::Unlink || I.Kind == InstKind::Halt)
      return true;
    if (I.Kind == InstKind::Block)
      continue; // Reached the next stop point: the body is clean.
    Succs.clear();
    prunedSuccessors(Proc, Index, Succs);
    if (Succs.empty())
      return true; // No successor: end of process.
    for (unsigned S : Succs)
      Work.push_back(S);
  }
  return false;
}

/// Are the reader patterns of \p Chan pairwise disjoint? Mirrors the
/// runtime's per-channel Disjoint flag (CompiledProgram): on such a
/// channel dispatch stops at the first match and AmbiguousDispatch can
/// never be raised, so the channel creates no visibility clique.
bool readersPairwiseDisjoint(const Program &Prog, const ChannelDecl *Chan) {
  std::vector<ChannelReader> Readers = collectChannelReaders(Prog, Chan);
  for (size_t I = 0; I != Readers.size(); ++I)
    for (size_t J = I + 1; J != Readers.size(); ++J)
      if (AbsPattern::overlap(Readers[I].Abs, Readers[J].Abs) !=
          AbsPattern::Overlap::Disjoint)
        return false;
  return true;
}

} // namespace

IndependenceInfo esp::buildIndependence(const ModuleIR &Module) {
  IndependenceInfo Info;
  Info.Module = &Module;

  CommGraph CG = CommGraph::build(Module);

  // Channel ids are dense parser-assigned indices over Prog->Channels,
  // but stay defensive about gaps.
  unsigned NumChannels =
      Module.Prog ? static_cast<unsigned>(Module.Prog->Channels.size()) : 0;
  for (const ProcComm &PC : CG.Procs)
    for (const CommState &S : PC.States)
      for (const CommCase &C : S.Cases)
        NumChannels = std::max(NumChannels, C.IR->Channel->Id + 1);
  Info.NumChannels = NumChannels;

  // Per-process stop facts, mirroring CommGraph's state/case indexing so
  // case indices line up with IRCase order (and with the runtime's
  // CaseEnabled vector and Move case fields).
  Info.Procs.resize(CG.Procs.size());
  for (size_t P = 0; P != CG.Procs.size(); ++P) {
    const ProcComm &PC = CG.Procs[P];
    IndepProc &IP = Info.Procs[P];
    IP.IR = PC.IR;
    IP.StopOfInst.assign(PC.IR->Insts.size(), -1);
    IP.Stops.resize(PC.States.size());
    for (size_t S = 0; S != PC.States.size(); ++S) {
      const CommState &CS = PC.States[S];
      IndepStop &Stop = IP.Stops[S];
      Stop.InstIndex = CS.InstIndex;
      if (CS.InstIndex < IP.StopOfInst.size())
        IP.StopOfInst[CS.InstIndex] = static_cast<int>(S);
      Stop.ReachIn.assign(NumChannels, false);
      Stop.ReachOut.assign(NumChannels, false);
      Stop.Cases.resize(CS.Cases.size());
      for (size_t K = 0; K != CS.Cases.size(); ++K) {
        const CommCase &CC = CS.Cases[K];
        IndepCase &IC = Stop.Cases[K];
        IC.Channel = CC.IR->Channel->Id;
        IC.IsIn = CC.IR->IsIn;
        IC.GuardFalse = CC.GuardFalse;
        IC.Loc = CC.IR->Loc;
        IC.HeapUnsafe =
            IC.GuardFalse ? false
                          : commitBodyHeapUnsafe(*PC.IR, CC.IR->Target);
        if (!IC.GuardFalse)
          (IC.IsIn ? Stop.ReachIn : Stop.ReachOut)[IC.Channel] = true;
      }
    }

    // Transitive endpoint reachability: fixpoint over the stop graph.
    // Guard-false cases can never commit, so neither their own endpoint
    // nor their successors contribute.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t S = 0; S != PC.States.size(); ++S) {
        IndepStop &Stop = IP.Stops[S];
        for (size_t K = 0; K != PC.States[S].Cases.size(); ++K) {
          const CommCase &CC = PC.States[S].Cases[K];
          if (CC.GuardFalse)
            continue;
          for (unsigned Succ : CC.Succs) {
            if (Succ == ProcComm::TerminalStop)
              continue;
            const IndepStop &T = IP.Stops[Succ];
            for (unsigned C = 0; C != NumChannels; ++C) {
              if (T.ReachIn[C] && !Stop.ReachIn[C]) {
                Stop.ReachIn[C] = true;
                Changed = true;
              }
              if (T.ReachOut[C] && !Stop.ReachOut[C]) {
                Stop.ReachOut[C] = true;
                Changed = true;
              }
            }
          }
        }
      }
    }
  }

  // Visibility cliques: a non-disjoint channel whose internal writer may
  // pair with reader ends in two or more distinct processes can raise
  // AmbiguousDispatch, a predicate over the joint configuration of the
  // writer and all candidate readers. Every member's moves must stay
  // visible so the reduced search still reaches the error state.
  std::vector<const ChannelDecl *> ChanById(NumChannels, nullptr);
  if (Module.Prog)
    for (const std::unique_ptr<ChannelDecl> &C : Module.Prog->Channels)
      if (C->Id < NumChannels)
        ChanById[C->Id] = C.get();
  for (unsigned C = 0; C != NumChannels; ++C) {
    if (C >= CG.Writers.size() || C >= CG.Readers.size())
      continue;
    if (CG.Writers[C].empty() || CG.Readers[C].empty())
      continue;
    const ChannelDecl *Chan = ChanById[C];
    if (Chan && Module.Prog && readersPairwiseDisjoint(*Module.Prog, Chan))
      continue;
    for (const ChannelEnd &W : CG.Writers[C]) {
      if (!CG.Procs[W.Proc].isReachableState(W.State))
        continue;
      const CommCase &WC = CG.caseAt(W);
      if (WC.GuardFalse)
        continue;
      std::set<unsigned> ReaderProcs;
      for (const ChannelEnd &R : CG.Readers[C]) {
        if (!CG.Procs[R.Proc].isReachableState(R.State))
          continue;
        const CommCase &RC = CG.caseAt(R);
        if (RC.GuardFalse)
          continue;
        if (mayPair(RC.Abs, WC.Abs))
          ReaderProcs.insert(R.Proc);
      }
      if (ReaderProcs.size() >= 2) {
        Info.Procs[W.Proc].InClique = true;
        for (unsigned RP : ReaderProcs)
          Info.Procs[RP].InClique = true;
      }
    }
  }

  // Interference summary over reachable, non-guard-false sites.
  for (size_t P = 0; P != CG.Procs.size(); ++P)
    for (size_t S = 0; S != CG.Procs[P].States.size(); ++S) {
      if (!CG.Procs[P].isReachableState(static_cast<unsigned>(S)))
        continue;
      for (size_t K = 0; K != CG.Procs[P].States[S].Cases.size(); ++K) {
        if (CG.Procs[P].States[S].Cases[K].GuardFalse)
          continue;
        Info.Sites.push_back({static_cast<unsigned>(P),
                              static_cast<unsigned>(S),
                              static_cast<unsigned>(K)});
      }
    }
  size_t N = Info.Sites.size();
  Info.SitePairs = N < 2 ? 0 : static_cast<uint64_t>(N) * (N - 1) / 2;
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J)
      if (Info.conflicts(Info.Sites[I], Info.Sites[J]))
        ++Info.ConflictingPairs;

  return Info;
}

//===----------------------------------------------------------------------===//
// The esplint interference detector.
//===----------------------------------------------------------------------===//

namespace {

std::string channelNameById(const Program &Prog, uint32_t Id) {
  for (const std::unique_ptr<ChannelDecl> &C : Prog.Channels)
    if (C->Id == Id)
      return C->Name;
  return "<channel " + std::to_string(Id) + ">";
}

std::string siteLabel(const Program &Prog, const IndependenceInfo &Info,
                      const IndepSite &S) {
  const IndepCase &C = Info.caseAt(S);
  std::string Proc = Info.Procs[S.Proc].IR->Proc
                         ? Info.Procs[S.Proc].IR->Proc->Name
                         : "<proc>";
  return "process '" + Proc + "' " + (C.IsIn ? "in(" : "out(") +
         channelNameById(Prog, C.Channel) + ")";
}

/// Flags internal channels whose send and receive endpoints are all in
/// one and the same process instance: a process cannot rendezvous with
/// itself, so every send on such a channel blocks forever. The model
/// checker only catches this dynamically, as a deadlock.
void checkSelfRendezvous(const Program &Prog, const IndependenceInfo &Info,
                         AnalysisResult &Result) {
  for (unsigned C = 0; C != Info.NumChannels; ++C) {
    const ChannelDecl *Chan = nullptr;
    for (const std::unique_ptr<ChannelDecl> &CD : Prog.Channels)
      if (CD->Id == C)
        Chan = CD.get();
    if (!Chan || Chan->Role != ChannelRole::Internal)
      continue;
    std::set<unsigned> WriterProcs, ReaderProcs;
    const IndepSite *FirstWriter = nullptr, *FirstReader = nullptr;
    for (const IndepSite &S : Info.Sites) {
      const IndepCase &IC = Info.caseAt(S);
      if (IC.Channel != C)
        continue;
      if (IC.IsIn) {
        ReaderProcs.insert(S.Proc);
        if (!FirstReader)
          FirstReader = &S;
      } else {
        WriterProcs.insert(S.Proc);
        if (!FirstWriter)
          FirstWriter = &S;
      }
    }
    if (WriterProcs.empty() || ReaderProcs.empty())
      continue;
    if (WriterProcs != ReaderProcs || WriterProcs.size() != 1)
      continue;
    std::string Proc = Info.Procs[*WriterProcs.begin()].IR->Proc->Name;
    AnalysisFinding F;
    F.Kind = AnalysisKind::Interference;
    F.Severity = AnalysisSeverity::Warning;
    F.Loc = Info.caseAt(*FirstWriter).Loc;
    F.Message = "channel '" + Chan->Name +
                "': send and receive endpoints are both in process '" +
                Proc +
                "'; a process cannot rendezvous with itself, so every "
                "send here blocks forever (self-rendezvous deadlock)";
    F.Notes.push_back(
        {Info.caseAt(*FirstReader).Loc, "the only receive endpoint is here"});
    Result.Findings.push_back(std::move(F));
  }
}

/// The --interference report: one note-severity finding summarizing the
/// conflict classes, with one note per communication site listing its
/// channel and how many other sites it conflicts with.
void reportInterference(const Program &Prog, const IndependenceInfo &Info,
                        AnalysisResult &Result) {
  if (Info.Sites.empty())
    return;
  char Percent[32];
  std::snprintf(Percent, sizeof(Percent), "%.1f", Info.commutingPercent());
  AnalysisFinding F;
  F.Kind = AnalysisKind::Interference;
  F.Severity = AnalysisSeverity::Note;
  F.Loc = Info.caseAt(Info.Sites.front()).Loc;
  F.Message = std::to_string(Info.Sites.size()) +
              " communication site(s), " + std::to_string(Info.SitePairs) +
              " site pair(s), " + std::to_string(Info.ConflictingPairs) +
              " conflicting; " + Percent + "% statically commuting";
  for (size_t I = 0; I != Info.Sites.size(); ++I) {
    const IndepSite &S = Info.Sites[I];
    uint64_t Conflicts = 0;
    for (size_t J = 0; J != Info.Sites.size(); ++J)
      if (J != I && Info.conflicts(S, Info.Sites[J]))
        ++Conflicts;
    std::string Label = "site " + std::to_string(I) + ": " +
                        siteLabel(Prog, Info, S) + ", conflicts with " +
                        std::to_string(Conflicts) + " site(s)";
    if (Info.caseAt(S).HeapUnsafe)
      Label += ", heap-visible commit body";
    if (Info.Procs[S.Proc].InClique)
      Label += ", in a dispatch visibility clique";
    F.Notes.push_back({Info.caseAt(S).Loc, std::move(Label)});
  }
  Result.Findings.push_back(std::move(F));
}

} // namespace

void esp::detail::checkInterference(const Program &Prog,
                                    const ModuleIR &Module,
                                    const AnalysisOptions &Options,
                                    AnalysisResult &Result) {
  IndependenceInfo Info = buildIndependence(Module);
  if (Options.CheckInterference)
    checkSelfRendezvous(Prog, Info, Result);
  if (Options.ReportInterference)
    reportInterference(Prog, Info, Result);
}

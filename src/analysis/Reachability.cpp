//===--- Reachability.cpp - Reachability / usefulness analysis -------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Usefulness checks over the communication topology: code the program
/// can never execute and communication that can never happen. All
/// findings here are warnings — dead code is suspicious but harmless.
/// The channel-level no-reader/no-writer checks stay in the frontend's
/// PatternAnalysis (they need no IR); this pass covers what only the
/// pruned CFG and whole-program pairing can see.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/CommGraph.h"

using namespace esp;

namespace {

void addWarning(AnalysisResult &Result, SourceLoc Loc, std::string Message) {
  AnalysisFinding F;
  F.Kind = AnalysisKind::Reachability;
  F.Severity = AnalysisSeverity::Warning;
  F.Loc = Loc;
  F.Message = std::move(Message);
  Result.Findings.push_back(std::move(F));
}

} // namespace

void esp::detail::checkReachability(const Program &Prog,
                                    const ModuleIR &Module,
                                    AnalysisResult &Result) {
  CommGraph Graph = CommGraph::build(Module);

  // 1. Communication points the process can never reach.
  for (const ProcComm &Comm : Graph.Procs)
    for (const CommState &State : Comm.States)
      if (!Comm.ReachableInsts[State.InstIndex])
        addWarning(Result, Comm.IR->Insts[State.InstIndex].Loc,
                   "this communication statement in process '" +
                       Comm.IR->Proc->Name + "' is unreachable");

  // 2 & 3. Case-level checks at reachable stops: statically-false guards
  // and receives/sends that can never pair with any counterpart.
  for (unsigned P = 0, NP = Graph.Procs.size(); P != NP; ++P) {
    const ProcComm &Comm = Graph.Procs[P];
    for (unsigned S = 0, NS = Comm.States.size(); S != NS; ++S) {
      if (!Comm.isReachableState(S))
        continue;
      for (const CommCase &Case : Comm.States[S].Cases) {
        const ChannelDecl *Chan = Case.IR->Channel;
        if (Case.GuardFalse) {
          addWarning(Result, Case.IR->Loc,
                     "the guard of this case is statically false; the "
                     "case can never be selected");
          continue;
        }
        if (Case.External) {
          if (!Case.ExternalFireable)
            addWarning(Result, Case.IR->Loc,
                       Case.IR->IsIn
                           ? "this receive on external channel '" +
                                 Chan->Name +
                                 "' matches none of the values interface '" +
                                 Chan->Interface->Name + "' can send"
                           : "this send on external channel '" + Chan->Name +
                                 "' matches none of the values interface '" +
                                 Chan->Interface->Name + "' accepts");
          continue;
        }
        // Internal: collect reachable, non-dead counterpart ends.
        const std::vector<ChannelEnd> &Peers =
            Case.IR->IsIn ? Graph.Writers[Chan->Id] : Graph.Readers[Chan->Id];
        bool AnyPeer = false, AnyLivePair = false;
        for (const ChannelEnd &End : Peers) {
          const CommCase &Peer = Graph.caseAt(End);
          if (Peer.GuardFalse)
            continue;
          AnyPeer = true;
          if (!Graph.Procs[End.Proc].isReachableState(End.State))
            continue;
          if (mayPair(Case.IR->IsIn ? Case.Abs : Peer.Abs,
                      Case.IR->IsIn ? Peer.Abs : Case.Abs))
            AnyLivePair = true;
        }
        // No counterpart at all is already a frontend pattern warning
        // ("written but never read" / "read but never written").
        if (AnyPeer && !AnyLivePair)
          addWarning(Result, Case.IR->Loc,
                     Case.IR->IsIn
                         ? "this receive on channel '" + Chan->Name +
                               "' can never fire: no reachable send "
                               "produces a matching value"
                         : "this send on channel '" + Chan->Name +
                               "' can never fire: no reachable receive "
                               "accepts the value");
      }
    }
  }

  // 4. Channels whose only readers (or writers) sit in unreachable code.
  for (const auto &Chan : Prog.Channels) {
    if (Chan->Role != ChannelRole::Internal)
      continue;
    unsigned Id = Chan->Id;
    auto CountEnds = [&](const std::vector<ChannelEnd> &Ends,
                         unsigned &Total, unsigned &Live) {
      Total = Live = 0;
      for (const ChannelEnd &End : Ends) {
        if (Graph.caseAt(End).GuardFalse)
          continue;
        ++Total;
        if (Graph.Procs[End.Proc].isReachableState(End.State))
          ++Live;
      }
    };
    unsigned TotalW, LiveW, TotalR, LiveR;
    CountEnds(Graph.Writers[Id], TotalW, LiveW);
    CountEnds(Graph.Readers[Id], TotalR, LiveR);
    if (LiveW > 0 && LiveR == 0 && TotalR > 0)
      addWarning(Result, Chan->Loc,
                 "channel '" + Chan->Name +
                     "' is written, but all of its receives are "
                     "unreachable");
    else if (LiveR > 0 && LiveW == 0 && TotalW > 0)
      addWarning(Result, Chan->Loc,
                 "channel '" + Chan->Name +
                     "' is read, but all of its sends are unreachable");
  }
}

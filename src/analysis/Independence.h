//===--- Independence.h - Static move-independence analysis -----*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program static independence analysis over the state-machine IR,
/// built on CommGraph's stop-point skeleton. For every alt case of every
/// stop point it records the channel the case may commit on, whether the
/// commit body has heap-visible effects, and per-stop transitive
/// reachability of channel endpoints over the pruned CFG. From those
/// facts it derives a conservative conflict relation between moves: two
/// moves commute unless they share a channel endpoint, a participating
/// process, or a global-visibility effect (an AmbiguousDispatch clique or
/// a heap-mutating commit body).
///
/// ESP's rendezvous-only communication makes the relation unusually
/// sparse: a commit between two processes transfers deep-copied values
/// and touches no other process, so moves with disjoint participant sets
/// commute exactly (the canonical state serialization is first-visit
/// ordered, so commuting move sequences reach bit-identical state keys).
///
/// Consumers: the model checker's ample-set partial-order reduction
/// (src/mc/Por.h, `espmc --por`) and the esplint interference report
/// (`esplint --interference`).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_ANALYSIS_INDEPENDENCE_H
#define ESP_ANALYSIS_INDEPENDENCE_H

#include "ir/IR.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <vector>

namespace esp {

/// Static facts about one alt case of a stop point.
struct IndepCase {
  uint32_t Channel = 0; ///< ChannelDecl::Id (dense).
  bool IsIn = true;
  /// Statically-false guard: the case can never be selected.
  bool GuardFalse = false;
  /// The commit body may free heap objects (Unlink) or halt the process
  /// before reaching the next stop point. Freeing is visible to the
  /// object-table bound and the leak sweep, and halting changes the
  /// deadlock predicate, so such a move is never ample-eligible.
  bool HeapUnsafe = false;
  SourceLoc Loc;
};

/// Static facts about one stop point (Block instruction) of a process.
struct IndepStop {
  unsigned InstIndex = 0;
  std::vector<IndepCase> Cases;
  /// Channel ids (indexed densely) with a receive / send end reachable at
  /// or after this stop, transitively over the pruned CFG. Guard-false
  /// cases contribute nothing (they can never commit).
  std::vector<bool> ReachIn;
  std::vector<bool> ReachOut;
};

/// Static facts about one process of the module.
struct IndepProc {
  const ProcIR *IR = nullptr;
  std::vector<IndepStop> Stops;
  /// Instruction index -> stop index, or -1 when not a Block instruction.
  std::vector<int> StopOfInst;
  /// Member of a visibility clique: some channel without pairwise-disjoint
  /// reader patterns has an internal writer end that may pair with reader
  /// ends in two or more distinct processes, so an AmbiguousDispatch
  /// error can observe the joint configuration of all clique members.
  bool InClique = false;
};

/// One communication site (a reachable, non-guard-false case), used by
/// the interference report.
struct IndepSite {
  unsigned Proc = 0;
  unsigned Stop = 0;
  unsigned Case = 0;
};

/// The whole-program independence summary.
struct IndependenceInfo {
  const ModuleIR *Module = nullptr;
  /// One past the largest ChannelDecl::Id in the program.
  unsigned NumChannels = 0;
  std::vector<IndepProc> Procs;

  /// All reachable, non-guard-false sites, in (proc, stop, case) order.
  std::vector<IndepSite> Sites;
  /// Unordered site pairs and how many of them conflict.
  uint64_t SitePairs = 0;
  uint64_t ConflictingPairs = 0;

  const IndepCase &caseAt(const IndepSite &S) const {
    return Procs[S.Proc].Stops[S.Stop].Cases[S.Case];
  }

  /// Stop index of the Block instruction at \p InstIndex in process
  /// \p Proc, or -1 when the instruction is not a stop point.
  int stopIndex(unsigned Proc, unsigned InstIndex) const {
    const std::vector<int> &Map = Procs[Proc].StopOfInst;
    if (InstIndex >= Map.size())
      return -1;
    return Map[InstIndex];
  }

  /// The conservative conflict relation: moves at the two sites commute
  /// unless they share a process, share a channel, or both processes
  /// belong to a visibility clique.
  bool conflicts(const IndepSite &A, const IndepSite &B) const {
    if (A.Proc == B.Proc)
      return true;
    if (caseAt(A).Channel == caseAt(B).Channel)
      return true;
    return Procs[A.Proc].InClique && Procs[B.Proc].InClique;
  }

  /// Percentage of unordered site pairs that statically commute.
  double commutingPercent() const {
    if (SitePairs == 0)
      return 100.0;
    return 100.0 * static_cast<double>(SitePairs - ConflictingPairs) /
           static_cast<double>(SitePairs);
  }
};

/// Builds the independence summary for a lowered module. \p Module must
/// be an unoptimized lowering whose instruction indices match the
/// compiled program's (the convention the model checker already relies
/// on), and Module.Prog must be set.
IndependenceInfo buildIndependence(const ModuleIR &Module);

} // namespace esp

#endif // ESP_ANALYSIS_INDEPENDENCE_H

//===--- CCodeGen.h - ESP to C compiler backend -----------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C backend (§6.1). The whole ESP program is compiled into one C
/// translation unit:
///
///  * processes are stackless: locals live in the static region; a
///    context switch saves only the program counter (a label index),
///  * every communication point compiles to specialized pairing code —
///    the compiler sees all processes and channels, so each block point
///    checks exactly the peers that can ever match (the paper's bitmask
///    scheme compiles to these static enabled-mask tests),
///  * message transfer increments reference counts instead of copying,
///  * allocation is postponed past the rendezvous for lazy out cases and
///    elided entirely for elidable record sends,
///  * external interfaces become the paper's C function pairs:
///    `<Iface>IsReady()` plus one function per interface case,
///  * an idle loop polls external channels and drives the stack-based
///    non-preemptive scheduler.
///
/// The generated file compiles standalone with any C99 compiler; the
/// test suite compiles and runs it with the system `cc`.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_CODEGEN_CCODEGEN_H
#define ESP_CODEGEN_CCODEGEN_H

#include "ir/IR.h"

#include <string>

namespace esp {

struct CCodeGenOptions {
  /// Emit live-object assertions before each access (mirrors the checks
  /// the verifier inserts; off by default — the paper's firmware relies
  /// on pre-verification instead of runtime checks).
  bool EmitSafetyChecks = false;
  /// Prefix for all generated symbols.
  std::string Prefix = "esp";
};

/// Compiles \p Module to a single C translation unit. The module should
/// be optimized (the backend honors LazyOut/ElideRecordAlloc flags).
std::string generateC(const ModuleIR &Module,
                      const CCodeGenOptions &Options = CCodeGenOptions());

/// Generates the companion header declaring the entry points and the
/// extern functions the user must supply for the external interfaces.
std::string generateCHeader(const ModuleIR &Module,
                            const CCodeGenOptions &Options = CCodeGenOptions());

} // namespace esp

#endif // ESP_CODEGEN_CCODEGEN_H

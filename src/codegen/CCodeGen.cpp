//===--- CCodeGen.cpp - ESP to C compiler backend ---------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/CCodeGen.h"

#include "frontend/Sema.h"

#include <cassert>
#include <map>
#include <sstream>

using namespace esp;

namespace {

bool exprIsAllocation(const Expr *E) {
  switch (E->getKind()) {
  case ExprKind::RecordLit:
  case ExprKind::UnionLit:
  case ExprKind::ArrayLit:
  case ExprKind::Cast:
    return true;
  default:
    return false;
  }
}

/// Collects every distinct aggregate type used by the program and emits
/// one static descriptor per type.
class TypeTable {
public:
  unsigned idFor(const Type *T) {
    auto It = Ids.find(T);
    if (It != Ids.end())
      return It->second;
    unsigned Id = static_cast<unsigned>(Order.size());
    Ids.emplace(T, Id);
    Order.push_back(T);
    // Visit children so their descriptors exist too.
    if (T->isRecord() || T->isUnion()) {
      for (const TypeField &F : T->getFields())
        if (F.FieldType->isAggregate())
          idFor(F.FieldType);
    } else if (T->isArray() && T->getElementType()->isAggregate()) {
      idFor(T->getElementType());
    }
    return Id;
  }

  std::string emit() const {
    std::ostringstream OS;
    // Two passes so field descriptors can reference each other by index.
    for (size_t I = 0; I != Order.size(); ++I) {
      const Type *T = Order[I];
      if (T->isRecord() || T->isUnion()) {
        OS << "static const unsigned char esp_ty" << I << "_refs[] = {";
        for (size_t F = 0; F != T->getFields().size(); ++F) {
          if (F)
            OS << ", ";
          OS << (T->getFields()[F].FieldType->isAggregate() ? 1 : 0);
        }
        OS << "};\n";
      }
    }
    for (size_t I = 0; I != Order.size(); ++I) {
      const Type *T = Order[I];
      OS << "/* " << T->str() << " */\n";
      OS << "static const esp_type esp_ty" << I << " = { ";
      if (T->isRecord())
        OS << "0, " << T->getFields().size() << ", esp_ty" << I
           << "_refs, 0 };\n";
      else if (T->isUnion())
        OS << "1, " << T->getFields().size() << ", esp_ty" << I
           << "_refs, 0 };\n";
      else
        OS << "2, 0, 0, "
           << (T->getElementType()->isAggregate() ? 1 : 0) << " };\n";
    }
    return OS.str();
  }

private:
  std::map<const Type *, unsigned> Ids;
  std::vector<const Type *> Order;
};

/// One channel-side endpoint: a (process, block instruction, case) triple.
struct Endpoint {
  unsigned Proc;
  unsigned InstIndex;
  unsigned CaseIndex;
  const IRCase *Case;
};

class CGenerator {
public:
  CGenerator(const ModuleIR &Module, const CCodeGenOptions &Options)
      : Module(Module), Options(Options) {}

  std::string run() {
    collectEndpoints();
    // Generate all code into buffers first: code generation registers
    // type descriptors on the fly, and the descriptor table must be
    // emitted before any code that references it.
    std::ostringstream Decls;
    std::ostringstream Procs;
    for (unsigned P = 0; P != Module.Procs.size(); ++P)
      emitProcess(P, Decls, Procs);
    std::ostringstream Pairs;
    emitPairFunctions(Pairs);
    std::ostringstream Sched;
    emitScheduler(Sched);
    std::ostringstream Out;
    emitPrelude(Out);
    Out << Types.emit() << "\n";
    Out << Decls.str() << "\n";
    emitPreparedDecls(Out);
    emitExternDecls(Out);
    Out << Procs.str() << "\n";
    Out << Pairs.str() << "\n";
    Out << Sched.str();
    return Out.str();
  }

private:
  //===--- Names ------------------------------------------------------------===//

  std::string varName(unsigned Proc, const VarInfo *V) const {
    std::string Name = "v";
    Name += std::to_string(Proc);
    Name += "_";
    Name += V->Name;
    return Name;
  }
  std::string prepName(unsigned Proc, unsigned Inst, unsigned Case,
                       int Field = -1) const {
    std::string Name = "prep_p" + std::to_string(Proc) + "_i" +
                       std::to_string(Inst) + "_c" + std::to_string(Case);
    if (Field >= 0)
      Name += "_f" + std::to_string(Field);
    return Name;
  }
  std::string prepValidName(unsigned Proc, unsigned Inst,
                            unsigned Case) const {
    return "prepv_p" + std::to_string(Proc) + "_i" + std::to_string(Inst) +
           "_c" + std::to_string(Case);
  }
  static std::string cType(const Type *T) {
    return T->isAggregate() ? "esp_obj *" : "long long ";
  }
  static const char *valField(const Type *T) {
    return T->isAggregate() ? "o" : "i";
  }

  //===--- Expression compilation -------------------------------------------===//

  /// Compiles \p E in the context of process \p Proc. Statements that the
  /// expression needs (allocations) are appended to \p Body; the returned
  /// string is a C expression.
  std::string emitExpr(unsigned Proc, const Expr *E, std::ostream &Body) {
    switch (E->getKind()) {
    case ExprKind::IntLit:
      return std::to_string(ast_cast<IntLitExpr>(E)->getValue()) + "LL";
    case ExprKind::BoolLit:
      return ast_cast<BoolLitExpr>(E)->getValue() ? "1LL" : "0LL";
    case ExprKind::SelfId:
      return std::to_string(Module.Procs[Proc].Proc->ProcessId) + "LL";
    case ExprKind::VarRef: {
      const VarRefExpr *V = ast_cast<VarRefExpr>(E);
      if (const ConstDecl *C = V->getConst())
        return std::to_string(C->Value) + "LL";
      return varName(Proc, V->getVar());
    }
    case ExprKind::Field: {
      const FieldExpr *F = ast_cast<FieldExpr>(E);
      std::string Base = emitExpr(Proc, F->getBase(), Body);
      const Type *BaseType = F->getBase()->getType();
      if (Options.EmitSafetyChecks) {
        if (BaseType->isUnion())
          Base = "esp_chk_arm(" + Base + ", " +
                 std::to_string(F->getFieldIndex()) + ")";
        else
          Base = "esp_chk(" + Base + ")";
      }
      unsigned Index =
          BaseType->isUnion() ? 0 : static_cast<unsigned>(F->getFieldIndex());
      return "(" + Base + ")->elems[" + std::to_string(Index) + "]." +
             valField(E->getType());
    }
    case ExprKind::Index: {
      const IndexExpr *I = ast_cast<IndexExpr>(E);
      std::string Base = emitExpr(Proc, I->getBase(), Body);
      std::string Index = emitExpr(Proc, I->getIndex(), Body);
      if (Options.EmitSafetyChecks) {
        std::string T = newTemp(Body);
        Body << "  " << T << " = esp_chk(" << Base << ");\n";
        return "(" + T + ")->elems[esp_chk_idx(" + T + ", " + Index +
               ")]." + valField(E->getType());
      }
      return "(" + Base + ")->elems[" + Index + "]." +
             valField(E->getType());
    }
    case ExprKind::Unary: {
      const UnaryExpr *U = ast_cast<UnaryExpr>(E);
      std::string Sub = emitExpr(Proc, U->getSub(), Body);
      return std::string(U->getOp() == UnaryOp::Not ? "(!" : "(-") + Sub +
             ")";
    }
    case ExprKind::Binary: {
      const BinaryExpr *B = ast_cast<BinaryExpr>(E);
      std::string L = emitExpr(Proc, B->getLHS(), Body);
      std::string R = emitExpr(Proc, B->getRHS(), Body);
      return "(" + L + " " + binaryOpSpelling(B->getOp()) + " " + R + ")";
    }
    case ExprKind::RecordLit: {
      const RecordLitExpr *R = ast_cast<RecordLitExpr>(E);
      std::string T = newTemp(Body);
      Body << "  " << T << " = esp_alloc(&esp_ty"
           << Types.idFor(E->getType()) << ", " << R->getElems().size()
           << ");\n";
      for (size_t I = 0; I != R->getElems().size(); ++I) {
        const Expr *Elem = R->getElems()[I];
        std::string V = emitExpr(Proc, Elem, Body);
        Body << "  " << T << "->elems[" << I << "]."
             << valField(Elem->getType()) << " = " << V << ";\n";
        if (Elem->getType()->isAggregate() && !exprIsAllocation(Elem))
          Body << "  esp_link(" << T << "->elems[" << I << "].o);\n";
      }
      return T;
    }
    case ExprKind::UnionLit: {
      const UnionLitExpr *U = ast_cast<UnionLitExpr>(E);
      std::string T = newTemp(Body);
      Body << "  " << T << " = esp_alloc(&esp_ty"
           << Types.idFor(E->getType()) << ", 1);\n";
      Body << "  " << T << "->arm = " << U->getFieldIndex() << ";\n";
      std::string V = emitExpr(Proc, U->getValue(), Body);
      Body << "  " << T << "->elems[0]."
           << valField(U->getValue()->getType()) << " = " << V << ";\n";
      if (U->getValue()->getType()->isAggregate() &&
          !exprIsAllocation(U->getValue()))
        Body << "  esp_link(" << T << "->elems[0].o);\n";
      return T;
    }
    case ExprKind::ArrayLit: {
      const ArrayLitExpr *A = ast_cast<ArrayLitExpr>(E);
      std::string Size = emitExpr(Proc, A->getSize(), Body);
      std::string T = newTemp(Body);
      Body << "  " << T << " = esp_alloc(&esp_ty"
           << Types.idFor(E->getType()) << ", (unsigned)(" << Size
           << "));\n";
      std::string Init = emitExpr(Proc, A->getInit(), Body);
      const Type *ElemType = A->getInit()->getType();
      Body << "  { unsigned esp_i; for (esp_i = 0; esp_i < " << T
           << "->n; esp_i++) { " << T << "->elems[esp_i]."
           << valField(ElemType) << " = " << Init << ";";
      if (ElemType->isAggregate())
        Body << " esp_link(" << T << "->elems[esp_i].o);";
      Body << " } }\n";
      if (ElemType->isAggregate())
        // One creation reference is donated when the init was fresh;
        // otherwise the element links above already account for all N.
        Body << "  "
             << (exprIsAllocation(A->getInit())
                     ? "esp_unlink(" + Init + ");\n"
                     : std::string());
      return T;
    }
    case ExprKind::Cast: {
      const CastExpr *C = ast_cast<CastExpr>(E);
      std::string Sub = emitExpr(Proc, C->getSub(), Body);
      std::string T = newTemp(Body);
      Body << "  " << T << " = esp_copy(" << Sub << ");\n";
      if (exprIsAllocation(C->getSub()))
        Body << "  esp_unlink(" << Sub << ");\n";
      return T;
    }
    }
    return "0";
  }

  std::string newTemp(std::ostream &) {
    std::string Name = "t";
    Name += std::to_string(TempCounter++);
    TempDecls << "  esp_obj *" << Name << ";\n";
    return Name;
  }

  //===--- Pattern compilation ----------------------------------------------===//

  /// Emits a C condition that is true when \p ValueExpr (of the pattern's
  /// component type) matches \p Pat. Match-expression leaves are compiled
  /// in \p ReaderProc's context.
  std::string matchCond(unsigned ReaderProc, const Pattern *Pat,
                        const std::string &ValueExpr, std::ostream &Body) {
    switch (Pat->getKind()) {
    case PatternKind::Bind:
      return "1";
    case PatternKind::Match: {
      std::string Expected = emitExpr(
          ReaderProc, ast_cast<MatchPattern>(Pat)->getValue(), Body);
      return "(" + ValueExpr + " == " + Expected + ")";
    }
    case PatternKind::Record: {
      const RecordPattern *R = ast_cast<RecordPattern>(Pat);
      std::string Cond = "1";
      for (size_t I = 0; I != R->getElems().size(); ++I) {
        const Pattern *Sub = R->getElems()[I];
        std::string Elem = "(" + ValueExpr + ")->elems[" +
                           std::to_string(I) + "]." +
                           valField(Sub->getType());
        Cond += " && " + matchCond(ReaderProc, Sub, Elem, Body);
      }
      return "(" + Cond + ")";
    }
    case PatternKind::Union: {
      const UnionPattern *U = ast_cast<UnionPattern>(Pat);
      std::string Elem = "(" + ValueExpr + ")->elems[0]." +
                         valField(U->getSub()->getType());
      return "((" + ValueExpr +
             ")->arm == " + std::to_string(U->getFieldIndex()) + " && " +
             matchCond(ReaderProc, U->getSub(), Elem, Body) + ")";
    }
    }
    return "0";
  }

  /// Emits the commit statements binding \p Pat's binders from
  /// \p ValueExpr into \p ReaderProc's locals (rc++ on bound aggregates:
  /// the receiver's reference, §6.1).
  void emitBinds(unsigned ReaderProc, const Pattern *Pat,
                 const std::string &ValueExpr, std::ostream &Body) {
    switch (Pat->getKind()) {
    case PatternKind::Bind: {
      const BindPattern *B = ast_cast<BindPattern>(Pat);
      Body << "      " << varName(ReaderProc, B->getVar()) << " = "
           << ValueExpr << ";\n";
      if (Pat->getType()->isAggregate())
        Body << "      esp_link(" << varName(ReaderProc, B->getVar())
             << ");\n";
      return;
    }
    case PatternKind::Match:
      return;
    case PatternKind::Record: {
      const RecordPattern *R = ast_cast<RecordPattern>(Pat);
      for (size_t I = 0; I != R->getElems().size(); ++I) {
        const Pattern *Sub = R->getElems()[I];
        emitBinds(ReaderProc, Sub,
                  "(" + ValueExpr + ")->elems[" + std::to_string(I) + "]." +
                      valField(Sub->getType()),
                  Body);
      }
      return;
    }
    case PatternKind::Union: {
      const UnionPattern *U = ast_cast<UnionPattern>(Pat);
      emitBinds(ReaderProc, U->getSub(),
                "(" + ValueExpr + ")->elems[0]." +
                    valField(U->getSub()->getType()),
                Body);
      return;
    }
    }
  }

  //===--- Process bodies ----------------------------------------------------===//

  void emitProcess(unsigned P, std::ostream &Decls, std::ostream &Out) {
    const ProcIR &PIR = Module.Procs[P];
    // Locals in the static region (§4.3: processes need no stack).
    for (const std::unique_ptr<VarInfo> &V : PIR.Proc->Vars)
      Decls << "static " << cType(V->VarType) << varName(P, V.get())
            << "; /* " << PIR.Proc->Name << "." << V->Name << " */\n";

    std::ostringstream Body;
    TempDecls.str("");
    TempCounter = 0;
    for (unsigned I = 0; I != PIR.Insts.size(); ++I) {
      const Inst &Ins = PIR.Insts[I];
      Body << "P" << P << "_I" << I << ":\n";
      switch (Ins.Kind) {
      case InstKind::DeclInit: {
        std::string V = emitExpr(P, Ins.RHS, Body);
        Body << "  " << varName(P, Ins.Var) << " = " << V << ";\n";
        break;
      }
      case InstKind::Store:
        emitStore(P, Ins, Body);
        break;
      case InstKind::Branch: {
        std::string Cond = emitExpr(P, Ins.Cond, Body);
        Body << "  if (!(" << Cond << ")) goto P" << P << "_I" << Ins.Target
             << ";\n";
        break;
      }
      case InstKind::Jump:
        Body << "  goto P" << P << "_I" << Ins.Target << ";\n";
        break;
      case InstKind::Link: {
        std::string V = emitExpr(P, Ins.RHS, Body);
        Body << "  esp_link(" << V << ");\n";
        break;
      }
      case InstKind::Unlink: {
        std::string V = emitExpr(P, Ins.RHS, Body);
        Body << "  esp_unlink(" << V << ");\n";
        break;
      }
      case InstKind::Assert: {
        std::string Cond = emitExpr(P, Ins.Cond, Body);
        Body << "  if (!(" << Cond << ")) esp_panic(\"assertion failed in "
             << PIR.Proc->Name << "\");\n";
        break;
      }
      case InstKind::Block: {
        Body << "  esp_pc[" << P << "] = " << I << ";\n";
        Body << "  esp_enabled[" << P << "] = 0;\n";
        for (size_t C = 0; C != Ins.Cases.size(); ++C) {
          const IRCase &Case = Ins.Cases[C];
          if (Case.Guard) {
            std::string G = emitExpr(P, Case.Guard, Body);
            Body << "  if (" << G << ") esp_enabled[" << P << "] |= "
                 << (1u << C) << "u;\n";
          } else {
            Body << "  esp_enabled[" << P << "] |= " << (1u << C) << "u;\n";
          }
          if (!Case.IsIn)
            Body << "  " << prepValidName(P, I, C) << " = 0;\n";
          if (!Case.IsIn && !Case.LazyOut) {
            Body << "  if (esp_enabled[" << P << "] & " << (1u << C)
                 << "u) {\n";
            emitPrepare(P, I, static_cast<unsigned>(C), Case, Body);
            Body << "  }\n";
          }
        }
        Body << "  esp_status[" << P << "] = ESP_BLOCKED;\n";
        Body << "  return;\n";
        break;
      }
      case InstKind::Halt:
        Body << "  esp_status[" << P << "] = ESP_DONE;\n";
        Body << "  return;\n";
        break;
      }
    }

    Out << "static void esp_run_P" << P << "(void) { /* process "
        << PIR.Proc->Name << " */\n";
    Out << TempDecls.str();
    Out << "  switch (esp_pc[" << P << "]) {\n";
    for (unsigned I = 0; I != PIR.Insts.size(); ++I)
      Out << "  case " << I << ": goto P" << P << "_I" << I << ";\n";
    Out << "  }\n";
    Out << Body.str();
    Out << "}\n\n";
  }

  void emitPrepare(unsigned P, unsigned I, unsigned C, const IRCase &Case,
                   std::ostream &Body) {
    if (Case.ElideRecordAlloc) {
      const RecordLitExpr *R = ast_cast<RecordLitExpr>(Case.Out);
      for (size_t F = 0; F != R->getElems().size(); ++F) {
        std::string V = emitExpr(P, R->getElems()[F], Body);
        Body << "    " << prepName(P, I, C, static_cast<int>(F)) << " = "
             << V << ";\n";
      }
    } else {
      std::string V = emitExpr(P, Case.Out, Body);
      Body << "    " << prepName(P, I, C) << " = " << V << ";\n";
    }
    Body << "    " << prepValidName(P, I, C) << " = 1;\n";
  }

  void emitStore(unsigned P, const Inst &Ins, std::ostream &Body) {
    std::string RHS = emitExpr(P, Ins.RHS, Body);
    if (Ins.PlainStore) {
      const Expr *Target = ast_cast<MatchPattern>(Ins.LHS)->getValue();
      if (const VarRefExpr *V = ast_dyn_cast<VarRefExpr>(Target)) {
        Body << "  " << varName(P, V->getVar()) << " = " << RHS << ";\n";
        return;
      }
      if (const FieldExpr *F = ast_dyn_cast<FieldExpr>(Target)) {
        std::string Base = emitExpr(P, F->getBase(), Body);
        if (Options.EmitSafetyChecks)
          Base = "esp_chk(" + Base + ")";
        if (F->getBase()->getType()->isUnion()) {
          Body << "  (" << Base << ")->arm = " << F->getFieldIndex()
               << ";\n";
          Body << "  (" << Base << ")->elems[0]."
               << valField(Target->getType()) << " = " << RHS << ";\n";
        } else {
          Body << "  (" << Base << ")->elems[" << F->getFieldIndex()
               << "]." << valField(Target->getType()) << " = " << RHS
               << ";\n";
        }
        return;
      }
      const IndexExpr *Ix = ast_cast<IndexExpr>(Target);
      std::string Base = emitExpr(P, Ix->getBase(), Body);
      std::string Index = emitExpr(P, Ix->getIndex(), Body);
      if (Options.EmitSafetyChecks) {
        std::string T = newTemp(Body);
        Body << "  " << T << " = esp_chk(" << Base << ");\n";
        Body << "  " << T << "->elems[esp_chk_idx(" << T << ", " << Index
             << ")]." << valField(Target->getType()) << " = " << RHS
             << ";\n";
        return;
      }
      Body << "  (" << Base << ")->elems[" << Index << "]."
           << valField(Target->getType()) << " = " << RHS << ";\n";
      return;
    }
    // Destructuring match.
    std::ostringstream CondStream;
    std::string Cond = matchCond(P, Ins.LHS, RHS, CondStream);
    Body << CondStream.str();
    Body << "  if (!" << Cond << ") esp_panic(\"match failed in "
         << Module.Procs[P].Proc->Name << "\");\n";
    std::ostringstream BindStream;
    emitBinds2(P, Ins.LHS, RHS, BindStream);
    Body << BindStream.str();
    if (exprIsAllocation(Ins.RHS))
      Body << "  esp_unlink(" << RHS << ");\n";
  }

  /// Local destructuring binds: no rc++ (assignment never manages
  /// counts); only channel receives acquire references.
  void emitBinds2(unsigned ReaderProc, const Pattern *Pat,
                  const std::string &ValueExpr, std::ostream &Body) {
    switch (Pat->getKind()) {
    case PatternKind::Bind:
      Body << "  "
           << varName(ReaderProc, ast_cast<BindPattern>(Pat)->getVar())
           << " = " << ValueExpr << ";\n";
      return;
    case PatternKind::Match:
      return;
    case PatternKind::Record: {
      const RecordPattern *R = ast_cast<RecordPattern>(Pat);
      for (size_t I = 0; I != R->getElems().size(); ++I)
        emitBinds2(ReaderProc, R->getElems()[I],
                   "(" + ValueExpr + ")->elems[" + std::to_string(I) +
                       "]." + valField(R->getElems()[I]->getType()),
                   Body);
      return;
    }
    case PatternKind::Union:
      emitBinds2(ReaderProc, ast_cast<UnionPattern>(Pat)->getSub(),
                 "(" + ValueExpr + ")->elems[0]." +
                     valField(ast_cast<UnionPattern>(Pat)->getSub()->getType()),
                 Body);
      return;
    }
  }

  //===--- Channel endpoints -------------------------------------------------===//

  void collectEndpoints() {
    InEndpoints.clear();
    OutEndpoints.clear();
    for (unsigned P = 0; P != Module.Procs.size(); ++P) {
      const ProcIR &PIR = Module.Procs[P];
      for (unsigned I = 0; I != PIR.Insts.size(); ++I) {
        if (PIR.Insts[I].Kind != InstKind::Block)
          continue;
        for (unsigned C = 0; C != PIR.Insts[I].Cases.size(); ++C) {
          const IRCase &Case = PIR.Insts[I].Cases[C];
          Endpoint Ep{P, I, C, &Case};
          if (Case.IsIn)
            InEndpoints[Case.Channel].push_back(Ep);
          else
            OutEndpoints[Case.Channel].push_back(Ep);
        }
      }
    }
  }

  void emitPreparedDecls(std::ostream &Out) {
    for (auto &Entry : OutEndpoints) {
      for (const Endpoint &Ep : Entry.second) {
        Out << "static int "
            << prepValidName(Ep.Proc, Ep.InstIndex, Ep.CaseIndex) << ";\n";
        if (Ep.Case->ElideRecordAlloc) {
          const RecordLitExpr *R = ast_cast<RecordLitExpr>(Ep.Case->Out);
          for (size_t F = 0; F != R->getElems().size(); ++F)
            Out << "static " << cType(R->getElems()[F]->getType())
                << prepName(Ep.Proc, Ep.InstIndex, Ep.CaseIndex,
                            static_cast<int>(F))
                << ";\n";
        } else {
          Out << "static " << cType(Entry.first->ElemType)
              << prepName(Ep.Proc, Ep.InstIndex, Ep.CaseIndex) << ";\n";
        }
      }
    }
    Out << "\n";
  }

  /// Emits `if (!prepv) { prep = ...; prepv = 1; }` for lazy out cases.
  void emitEnsurePrepared(const Endpoint &Ep, std::ostream &Body) {
    Body << "    if (!" << prepValidName(Ep.Proc, Ep.InstIndex, Ep.CaseIndex)
         << ") {\n";
    std::ostringstream Inner;
    emitPrepare(Ep.Proc, Ep.InstIndex, Ep.CaseIndex, *Ep.Case, Inner);
    Body << Inner.str();
    Body << "    }\n";
  }

  /// Emits the release of prepared-but-unused out temps of (Proc, Inst)
  /// except \p WinnerCase.
  void emitReleaseLosing(unsigned Proc, unsigned InstIndex, int WinnerCase,
                         std::ostream &Body) {
    const Inst &I = Module.Procs[Proc].Insts[InstIndex];
    for (unsigned C = 0; C != I.Cases.size(); ++C) {
      if (static_cast<int>(C) == WinnerCase || I.Cases[C].IsIn)
        continue;
      const IRCase &Case = I.Cases[C];
      Body << "      if (" << prepValidName(Proc, InstIndex, C) << ") {\n";
      if (Case.ElideRecordAlloc) {
        const RecordLitExpr *R = ast_cast<RecordLitExpr>(Case.Out);
        for (size_t F = 0; F != R->getElems().size(); ++F)
          if (exprIsAllocation(R->getElems()[F]))
            Body << "        esp_unlink("
                 << prepName(Proc, InstIndex, C, static_cast<int>(F))
                 << ");\n";
      } else if (exprIsAllocation(Case.Out)) {
        Body << "        esp_unlink(" << prepName(Proc, InstIndex, C)
             << ");\n";
      }
      Body << "        " << prepValidName(Proc, InstIndex, C) << " = 0;\n";
      Body << "      }\n";
    }
  }

  /// The committed transfer from writer endpoint \p W to reader endpoint
  /// \p R. Assumes the writer's prepared values are valid.
  void emitCommit(const Endpoint &W, const Endpoint &R, std::ostream &Body) {
    // Bind the reader's pattern from the prepared value(s).
    std::ostringstream Binds;
    if (W.Case->ElideRecordAlloc) {
      const RecordPattern *RP = ast_cast<RecordPattern>(R.Case->Pat);
      const RecordLitExpr *RL = ast_cast<RecordLitExpr>(W.Case->Out);
      for (size_t F = 0; F != RP->getElems().size(); ++F)
        emitBinds(R.Proc, RP->getElems()[F],
                  prepName(W.Proc, W.InstIndex, W.CaseIndex,
                           static_cast<int>(F)),
                  Binds);
      // Drop fresh field temps (their creation reference).
      for (size_t F = 0; F != RL->getElems().size(); ++F)
        if (exprIsAllocation(RL->getElems()[F]))
          Binds << "      esp_unlink("
                << prepName(W.Proc, W.InstIndex, W.CaseIndex,
                            static_cast<int>(F))
                << ");\n";
    } else {
      emitBinds(R.Proc, R.Case->Pat,
                prepName(W.Proc, W.InstIndex, W.CaseIndex), Binds);
      if (exprIsAllocation(W.Case->Out))
        Binds << "      esp_unlink("
              << prepName(W.Proc, W.InstIndex, W.CaseIndex) << ");\n";
    }
    Body << Binds.str();
    Body << "      " << prepValidName(W.Proc, W.InstIndex, W.CaseIndex)
         << " = 0;\n";
    emitReleaseLosing(W.Proc, W.InstIndex, static_cast<int>(W.CaseIndex),
                      Body);
    emitReleaseLosing(R.Proc, R.InstIndex, -1, Body);
    Body << "      esp_pc[" << W.Proc << "] = " << W.Case->Target << ";\n";
    Body << "      esp_status[" << W.Proc << "] = ESP_READY;\n";
    Body << "      esp_pc[" << R.Proc << "] = " << R.Case->Target << ";\n";
    Body << "      esp_status[" << R.Proc << "] = ESP_READY;\n";
    Body << "      esp_rendezvous++;\n";
  }

  /// Generates esp_try_pair_p<P>_i<I>() for one block point.
  void emitPairFunction(unsigned P, unsigned InstIndex, const Inst &I,
                        std::ostream &Out) {
    Out << "static int esp_try_pair_p" << P << "_i" << InstIndex
        << "(void) {\n";
    TempDecls.str("");
    std::ostringstream Body;
    for (unsigned C = 0; C != I.Cases.size(); ++C) {
      const IRCase &Case = I.Cases[C];
      Endpoint Self{P, InstIndex, C, &Case};
      Body << "  if (esp_enabled[" << P << "] & " << (1u << C)
           << "u) { /* case " << C << " on " << Case.Channel->Name
           << " */\n";
      if (Case.IsIn) {
        for (const Endpoint &W : OutEndpoints[Case.Channel]) {
          if (W.Proc == P)
            continue;
          Body << "    if (esp_status[" << W.Proc << "] == ESP_BLOCKED && "
               << "esp_pc[" << W.Proc << "] == " << W.InstIndex
               << " && (esp_enabled[" << W.Proc << "] & "
               << (1u << W.CaseIndex) << "u)) {\n";
          bool CommitTimePrep = W.Case->LazyOut && W.Case->MatchFree;
          std::string Cond = "1";
          if (!CommitTimePrep) {
            emitEnsurePreparedIndented(W, Body);
            std::ostringstream CondSetup;
            Cond = matchValueAgainst(Self, W, CondSetup);
            Body << CondSetup.str();
          }
          Body << "    if (" << Cond << ") {\n";
          if (CommitTimePrep)
            emitEnsurePrepared(W, Body);
          emitCommit(W, Self, Body);
          Body << "      esp_push_ready(" << W.Proc << ");\n";
          Body << "      esp_push_ready(" << P << ");\n";
          Body << "      return 1;\n";
          Body << "    }\n";
          Body << "    }\n";
        }
      } else {
        for (const Endpoint &R : InEndpoints[Case.Channel]) {
          if (R.Proc == P)
            continue;
          Body << "    if (esp_status[" << R.Proc << "] == ESP_BLOCKED && "
               << "esp_pc[" << R.Proc << "] == " << R.InstIndex
               << " && (esp_enabled[" << R.Proc << "] & "
               << (1u << R.CaseIndex) << "u)) {\n";
          bool CommitTimePrep = Self.Case->LazyOut && Self.Case->MatchFree;
          std::string Cond = "1";
          if (!CommitTimePrep) {
            emitEnsurePreparedIndented(Self, Body);
            std::ostringstream CondSetup;
            Cond = matchValueAgainst(R, Self, CondSetup);
            Body << CondSetup.str();
          }
          Body << "    if (" << Cond << ") {\n";
          if (CommitTimePrep)
            emitEnsurePrepared(Self, Body);
          emitCommit(Self, R, Body);
          Body << "      esp_push_ready(" << R.Proc << ");\n";
          Body << "      esp_push_ready(" << P << ");\n";
          Body << "      return 1;\n";
          Body << "    }\n";
          Body << "    }\n";
        }
        if (Case.Channel->Role == ChannelRole::ExternalReader)
          emitExternalOut(Self, Body);
      }
      Body << "  }\n";
    }
    Body << "  return 0;\n";
    Out << TempDecls.str();
    Out << Body.str();
    Out << "}\n\n";
  }

  void emitEnsurePreparedIndented(const Endpoint &Ep, std::ostream &Body) {
    if (Ep.Case->LazyOut || !Ep.Case->IsIn)
      emitEnsurePrepared(Ep, Body);
  }

  /// Emits the condition matching reader endpoint \p R's pattern against
  /// writer endpoint \p W's prepared value(s).
  std::string matchValueAgainst(const Endpoint &R, const Endpoint &W,
                                std::ostream &Setup) {
    if (W.Case->ElideRecordAlloc) {
      const RecordPattern *RP = ast_cast<RecordPattern>(R.Case->Pat);
      std::string Cond = "1";
      for (size_t F = 0; F != RP->getElems().size(); ++F)
        Cond += " && " + matchCond(R.Proc, RP->getElems()[F],
                                   prepName(W.Proc, W.InstIndex,
                                            W.CaseIndex,
                                            static_cast<int>(F)),
                                   Setup);
      return "(" + Cond + ")";
    }
    return matchCond(R.Proc, R.Case->Pat,
                     prepName(W.Proc, W.InstIndex, W.CaseIndex), Setup);
  }

  //===--- External interfaces ------------------------------------------------===//

  static std::string ifaceFnName(const InterfaceDecl *Iface,
                                 const InterfaceCase &Case) {
    return Iface->Name + Case.Name;
  }

  void collectBinders(const Pattern *Pat,
                      std::vector<const BindPattern *> &Out) const {
    switch (Pat->getKind()) {
    case PatternKind::Bind:
      Out.push_back(ast_cast<BindPattern>(Pat));
      return;
    case PatternKind::Match:
      return;
    case PatternKind::Record:
      for (const Pattern *Sub : ast_cast<RecordPattern>(Pat)->getElems())
        collectBinders(Sub, Out);
      return;
    case PatternKind::Union:
      collectBinders(ast_cast<UnionPattern>(Pat)->getSub(), Out);
      return;
    }
  }

  void emitExternDecls(std::ostream &Out) {
    Out << "/* External interfaces (§4.5): supplied by the user. */\n";
    for (const std::unique_ptr<InterfaceDecl> &Iface :
         Module.Prog->Interfaces) {
      Out << "extern int " << Iface->Name << "IsReady(void);\n";
      for (const InterfaceCase &Case : Iface->Cases) {
        std::vector<const BindPattern *> Binders;
        collectBinders(Case.Pat, Binders);
        Out << "extern void " << ifaceFnName(Iface.get(), Case) << "(";
        for (size_t I = 0; I != Binders.size(); ++I) {
          if (I)
            Out << ", ";
          const Type *T = Binders[I]->getType();
          if (Iface->ExternalWrites)
            Out << (T->isAggregate() ? "esp_obj **" : "long long *");
          else
            Out << (T->isAggregate() ? "esp_obj *" : "long long ");
          Out << Binders[I]->getName();
        }
        if (Binders.empty())
          Out << "void";
        Out << ");\n";
      }
    }
    Out << "\n";
  }

  /// Emits the build of a channel value from an external-writer interface
  /// case pattern, calling the user's fill function.
  std::string emitBuildFromInterface(const InterfaceDecl *Iface,
                                     const InterfaceCase &Case,
                                     std::ostream &Body) {
    std::vector<const BindPattern *> Binders;
    collectBinders(Case.Pat, Binders);
    // Declare parameter slots and call the user function.
    std::string ArgList;
    for (size_t I = 0; I != Binders.size(); ++I) {
      const Type *T = Binders[I]->getType();
      std::string Name = "arg" + std::to_string(I);
      Body << "    " << cType(T) << Name << (T->isAggregate() ? " = 0" : " = 0")
           << ";\n";
      if (I)
        ArgList += ", ";
      ArgList += "&" + Name;
    }
    Body << "    " << ifaceFnName(Iface, Case) << "(" << ArgList << ");\n";
    size_t Next = 0;
    return buildPatternValue(Case.Pat, Binders, Next, Body);
  }

  std::string buildPatternValue(const Pattern *Pat,
                                const std::vector<const BindPattern *> &Binders,
                                size_t &Next, std::ostream &Body) {
    switch (Pat->getKind()) {
    case PatternKind::Bind:
      return "arg" + std::to_string(Next++);
    case PatternKind::Match: {
      std::optional<int64_t> V =
          tryEvalStatic(ast_cast<MatchPattern>(Pat)->getValue(), nullptr);
      return std::to_string(V ? *V : 0) + "LL";
    }
    case PatternKind::Record: {
      const RecordPattern *R = ast_cast<RecordPattern>(Pat);
      std::string T = "b" + std::to_string(BuildCounter++);
      Body << "    esp_obj *" << T << " = esp_alloc(&esp_ty"
           << Types.idFor(Pat->getType()) << ", " << R->getElems().size()
           << ");\n";
      for (size_t I = 0; I != R->getElems().size(); ++I) {
        std::string V =
            buildPatternValue(R->getElems()[I], Binders, Next, Body);
        Body << "    " << T << "->elems[" << I << "]."
             << valField(R->getElems()[I]->getType()) << " = " << V
             << ";\n";
      }
      return T;
    }
    case PatternKind::Union: {
      const UnionPattern *U = ast_cast<UnionPattern>(Pat);
      std::string T = "b" + std::to_string(BuildCounter++);
      Body << "    esp_obj *" << T << " = esp_alloc(&esp_ty"
           << Types.idFor(Pat->getType()) << ", 1);\n";
      Body << "    " << T << "->arm = " << U->getFieldIndex() << ";\n";
      std::string V = buildPatternValue(U->getSub(), Binders, Next, Body);
      Body << "    " << T << "->elems[0]."
           << valField(U->getSub()->getType()) << " = " << V << ";\n";
      return T;
    }
    }
    return "0";
  }

  /// Out-case to an external reader: dispatch over interface cases.
  void emitExternalOut(const Endpoint &Self, std::ostream &Body) {
    const InterfaceDecl *Iface = Self.Case->Channel->Interface;
    Body << "    if (" << Iface->Name << "IsReady()) {\n";
    emitEnsurePrepared(Self, Body);
    std::string V = prepName(Self.Proc, Self.InstIndex, Self.CaseIndex);
    for (size_t C = 0; C != Iface->Cases.size(); ++C) {
      const InterfaceCase &Case = Iface->Cases[C];
      std::ostringstream Setup;
      std::string Cond = matchCond(Self.Proc, Case.Pat, V, Setup);
      Body << Setup.str();
      Body << "    if (" << Cond << ") {\n";
      // Extract binder values and call the user's consume function.
      ExtractedArgs.clear();
      emitExtractArgs(Case.Pat, V);
      Body << "      " << ifaceFnName(Iface, Case) << "("
           << ExtractedArgs << ");\n";
      ExtractedArgs.clear();
      if (exprIsAllocation(Self.Case->Out))
        Body << "      esp_unlink(" << V << ");\n";
      Body << "      " << prepValidName(Self.Proc, Self.InstIndex,
                                        Self.CaseIndex)
           << " = 0;\n";
      emitReleaseLosing(Self.Proc, Self.InstIndex,
                        static_cast<int>(Self.CaseIndex), Body);
      Body << "      esp_pc[" << Self.Proc << "] = " << Self.Case->Target
           << ";\n";
      Body << "      esp_status[" << Self.Proc << "] = ESP_READY;\n";
      Body << "      esp_push_ready(" << Self.Proc << ");\n";
      Body << "      esp_rendezvous++;\n";
      Body << "      return 1;\n";
      Body << "    }\n";
    }
    Body << "    }\n";
  }

  void emitExtractArgs(const Pattern *Pat, const std::string &ValueExpr) {
    switch (Pat->getKind()) {
    case PatternKind::Bind:
      if (!ExtractedArgs.empty())
        ExtractedArgs += ", ";
      ExtractedArgs += ValueExpr;
      return;
    case PatternKind::Match:
      return;
    case PatternKind::Record: {
      const RecordPattern *R = ast_cast<RecordPattern>(Pat);
      for (size_t I = 0; I != R->getElems().size(); ++I)
        emitExtractArgs(R->getElems()[I],
                        "(" + ValueExpr + ")->elems[" + std::to_string(I) +
                            "]." + valField(R->getElems()[I]->getType()));
      return;
    }
    case PatternKind::Union:
      emitExtractArgs(
          ast_cast<UnionPattern>(Pat)->getSub(),
          "(" + ValueExpr + ")->elems[0]." +
              valField(ast_cast<UnionPattern>(Pat)->getSub()->getType()));
      return;
    }
  }

  /// Polls all external-writer channels, building and delivering one
  /// message if possible.
  void emitPollExternals(std::ostream &Out) {
    Out << "static int esp_poll_externals(void) {\n";
    TempDecls.str("");
    std::ostringstream Body;
    for (const std::unique_ptr<InterfaceDecl> &Iface :
         Module.Prog->Interfaces) {
      if (!Iface->ExternalWrites)
        continue;
      const ChannelDecl *Chan = Iface->Channel;
      Body << "  { int c = " << Iface->Name << "IsReady();\n";
      for (size_t C = 0; C != Iface->Cases.size(); ++C) {
        Body << "  if (c == " << (C + 1) << ") {\n";
        std::string V =
            emitBuildFromInterface(Iface.get(), Iface->Cases[C], Body);
        // Try every reader endpoint on this channel.
        for (const Endpoint &R : InEndpoints[Chan]) {
          Body << "    if (esp_status[" << R.Proc << "] == ESP_BLOCKED && "
               << "esp_pc[" << R.Proc << "] == " << R.InstIndex
               << " && (esp_enabled[" << R.Proc << "] & "
               << (1u << R.CaseIndex) << "u)) {\n";
          std::ostringstream Setup;
          std::string Cond = matchCond(R.Proc, R.Case->Pat, V, Setup);
          Body << Setup.str();
          Body << "    if (" << Cond << ") {\n";
          std::ostringstream Binds;
          emitBinds(R.Proc, R.Case->Pat, V, Binds);
          Body << Binds.str();
          Body << "      esp_unlink(" << V << ");\n";
          emitReleaseLosing(R.Proc, R.InstIndex, -1, Body);
          Body << "      esp_pc[" << R.Proc << "] = " << R.Case->Target
               << ";\n";
          Body << "      esp_status[" << R.Proc << "] = ESP_READY;\n";
          Body << "      esp_push_ready(" << R.Proc << ");\n";
          Body << "      esp_rendezvous++; esp_ext_deliveries++;\n";
          Body << "      return 1;\n";
          Body << "    }\n";
          Body << "    }\n";
        }
        Body << "    esp_unlink(" << V << "); /* nobody waiting */\n";
        Body << "  }\n";
      }
      Body << "  }\n";
    }
    Body << "  return 0;\n";
    Out << TempDecls.str();
    Out << Body.str();
    Out << "}\n\n";
  }

  //===--- Top-level structure -------------------------------------------------===//

  void emitPrelude(std::ostream &Out) {
    Out << "/* Generated by espc (esplang, PLDI 2001 ESP reproduction). */\n"
        << "#include <stdint.h>\n#include <stdio.h>\n#include <stdlib.h>\n"
        << "#include <string.h>\n\n"
        << "#define ESP_SAFETY " << (Options.EmitSafetyChecks ? 1 : 0)
        << "\n\n"
        << "typedef struct esp_obj esp_obj;\n"
        << "typedef union esp_val { long long i; esp_obj *o; } esp_val;\n"
        << "typedef struct esp_type { int kind; unsigned nfields; const "
           "unsigned char *is_ref; int elem_is_ref; } esp_type;\n"
        << "struct esp_obj { const esp_type *ty; unsigned rc; int arm; "
           "unsigned n; int freed; esp_val *elems; };\n\n"
        << "static unsigned long long esp_alloc_count = 0;\n"
        << "static long long esp_live = 0;\n"
        << "static unsigned long long esp_rendezvous = 0;\n"
        << "static unsigned long long esp_ctx_switches = 0;\n"
        << "static unsigned long long esp_ext_deliveries = 0;\n\n"
        << "void esp_panic(const char *msg) {\n"
        << "  fprintf(stderr, \"esp_panic: %s\\n\", msg);\n"
        << "  exit(2);\n}\n\n"
        << "static esp_obj *esp_alloc(const esp_type *ty, unsigned n) {\n"
        << "  esp_obj *o = (esp_obj *)malloc(sizeof(esp_obj));\n"
        << "  o->ty = ty; o->rc = 1; o->arm = -1; o->n = n; o->freed = 0;\n"
        << "  o->elems = n ? (esp_val *)calloc(n, sizeof(esp_val)) : 0;\n"
        << "  esp_alloc_count++; esp_live++;\n"
        << "  return o;\n}\n\n"
        << "static void esp_unlink(esp_obj *o);\n"
        << "static void esp_free_obj(esp_obj *o) {\n"
        << "  unsigned i; esp_live--;\n"
        << "  for (i = 0; i < o->n; i++) {\n"
        << "    int isref = o->ty->kind == 2 ? o->ty->elem_is_ref\n"
        << "              : o->ty->kind == 1 ? (o->arm >= 0 && "
           "o->ty->is_ref[o->arm])\n"
        << "              : o->ty->is_ref[i];\n"
        << "    if (isref && o->elems[i].o) esp_unlink(o->elems[i].o);\n"
        << "  }\n"
        << "#if ESP_SAFETY\n"
        << "  /* Safety builds quarantine freed objects so stale uses trap\n"
        << "     (the assertions the verifier relies on, section 5.2). */\n"
        << "  o->freed = 1;\n"
        << "#else\n"
        << "  free(o->elems); free(o);\n"
        << "#endif\n}\n\n"
        << "#if ESP_SAFETY\n"
        << "static void esp_unlink(esp_obj *o) {\n"
        << "  if (!o || o->freed || o->rc == 0) esp_panic(\"unlink of freed "
           "object\");\n"
        << "  if (--o->rc == 0) esp_free_obj(o);\n}\n"
        << "static void esp_link(esp_obj *o) {\n"
        << "  if (!o || o->freed) esp_panic(\"link of freed object\");\n"
        << "  o->rc++;\n}\n"
        << "static esp_obj *esp_chk(esp_obj *o) {\n"
        << "  if (!o || o->freed) esp_panic(\"use after free\");\n"
        << "  return o;\n}\n"
        << "static esp_obj *esp_chk_arm(esp_obj *o, int arm) {\n"
        << "  o = esp_chk(o);\n"
        << "  if (o->arm != arm) esp_panic(\"invalid union field "
           "access\");\n"
        << "  return o;\n}\n"
        << "static unsigned esp_chk_idx(esp_obj *o, long long i) {\n"
        << "  if (i < 0 || i >= (long long)o->n) esp_panic(\"array index "
           "out of bounds\");\n"
        << "  return (unsigned)i;\n}\n"
        << "#else\n"
        << "static void esp_unlink(esp_obj *o) { if (--o->rc == 0) "
           "esp_free_obj(o); }\n"
        << "static void esp_link(esp_obj *o) { o->rc++; }\n"
        << "#endif\n\n"
        << "static esp_obj *esp_copy(esp_obj *o) {\n"
        << "  unsigned i;\n"
        << "  esp_obj *c = esp_alloc(o->ty, o->n);\n"
        << "  c->arm = o->arm;\n"
        << "  for (i = 0; i < o->n; i++) {\n"
        << "    int isref = o->ty->kind == 2 ? o->ty->elem_is_ref\n"
        << "              : o->ty->kind == 1 ? (o->arm >= 0 && "
           "o->ty->is_ref[o->arm])\n"
        << "              : o->ty->is_ref[i];\n"
        << "    if (isref && o->elems[i].o) c->elems[i].o = "
           "esp_copy(o->elems[i].o);\n"
        << "    else c->elems[i] = o->elems[i];\n"
        << "  }\n"
        << "  return c;\n}\n\n"
        << "enum { ESP_READY = 0, ESP_BLOCKED = 1, ESP_DONE = 2 };\n"
        << "enum { ESP_RES_PROGRESS = 0, ESP_RES_QUIESCENT = 1, "
           "ESP_RES_HALTED = 2 };\n"
        << "#define ESP_NPROCS " << Module.Procs.size() << "\n"
        << "static int esp_status[ESP_NPROCS];\n"
        << "static int esp_pc[ESP_NPROCS];\n"
        << "static unsigned esp_enabled[ESP_NPROCS];\n"
        << "/* FIFO ready ring: prevents starvation (section 4.2 requires\n"
        << "   the runtime to avoid starving ready processes). */\n"
        << "#define ESP_QCAP (8 * ESP_NPROCS + 8)\n"
        << "static int esp_ready_q[ESP_QCAP];\n"
        << "static unsigned esp_q_head = 0, esp_q_tail = 0;\n"
        << "static int esp_last_run = -1;\n"
        << "static void esp_push_ready(int p) {\n"
        << "  if (esp_q_tail - esp_q_head < ESP_QCAP)\n"
        << "    esp_ready_q[esp_q_tail++ % ESP_QCAP] = p;\n}\n"
        << "static int esp_pop_ready(void) {\n"
        << "  while (esp_q_head != esp_q_tail) {\n"
        << "    int p = esp_ready_q[esp_q_head++ % ESP_QCAP];\n"
        << "    if (esp_status[p] == ESP_READY) return p;\n"
        << "  }\n  return -1;\n}\n\n"
        << "unsigned long long esp_stat_allocs(void) { return "
           "esp_alloc_count; }\n"
        << "long long esp_stat_live(void) { return esp_live; }\n"
        << "unsigned long long esp_stat_rendezvous(void) { return "
           "esp_rendezvous; }\n"
        << "unsigned long long esp_stat_ctx_switches(void) { return "
           "esp_ctx_switches; }\n\n";
  }

  void emitPairFunctions(std::ostream &Out) {
    for (unsigned P = 0; P != Module.Procs.size(); ++P) {
      const ProcIR &PIR = Module.Procs[P];
      for (unsigned I = 0; I != PIR.Insts.size(); ++I)
        if (PIR.Insts[I].Kind == InstKind::Block)
          emitPairFunction(P, I, PIR.Insts[I], Out);
    }
  }

  void emitScheduler(std::ostream &Out) {
    emitPollExternals(Out);

    Out << "static void esp_run_proc(int p) {\n  switch (p) {\n";
    for (unsigned P = 0; P != Module.Procs.size(); ++P)
      Out << "  case " << P << ": esp_run_P" << P << "(); break;\n";
    Out << "  }\n}\n\n";

    Out << "static int esp_try_pair(int p) {\n  switch (p) {\n";
    for (unsigned P = 0; P != Module.Procs.size(); ++P) {
      Out << "  case " << P << ": switch (esp_pc[" << P << "]) {\n";
      const ProcIR &PIR = Module.Procs[P];
      for (unsigned I = 0; I != PIR.Insts.size(); ++I)
        if (PIR.Insts[I].Kind == InstKind::Block)
          Out << "    case " << I << ": return esp_try_pair_p" << P << "_i"
              << I << "();\n";
      Out << "    }\n    return 0;\n";
    }
    Out << "  }\n  return 0;\n}\n\n";

    Out << "void esp_start(void) {\n"
        << "  int i;\n"
        << "  for (i = 0; i < ESP_NPROCS; i++) {\n"
        << "    esp_status[i] = ESP_READY; esp_pc[i] = 0;\n"
        << "  }\n"
        << "  for (i = 0; i < ESP_NPROCS; i++) esp_run_proc(i);\n"
        << "}\n\n";

    Out << "int esp_sched_step(void) {\n"
        << "  int p = esp_pop_ready();\n"
        << "  if (p < 0) {\n"
        << "    int i, all_done = 1, paired = 0;\n"
        << "    for (i = 0; i < ESP_NPROCS; i++)\n"
        << "      if (esp_status[i] != ESP_DONE) all_done = 0;\n"
        << "    if (all_done) return ESP_RES_HALTED;\n"
        << "    for (i = 0; i < ESP_NPROCS && !paired; i++)\n"
        << "      if (esp_status[i] == ESP_BLOCKED) paired = "
           "esp_try_pair(i);\n"
        << "    if (!paired && !esp_poll_externals()) return "
           "ESP_RES_QUIESCENT;\n"
        << "    p = esp_pop_ready();\n"
        << "    if (p < 0) return ESP_RES_PROGRESS;\n"
        << "  }\n"
        << "  if (p != esp_last_run) { esp_ctx_switches++; esp_last_run = "
           "p; }\n"
        << "  esp_run_proc(p);\n"
        << "  if (esp_status[p] == ESP_BLOCKED) esp_try_pair(p);\n"
        << "  return ESP_RES_PROGRESS;\n"
        << "}\n\n";

    Out << "int esp_main_loop(long max_steps) {\n"
        << "  while (max_steps-- > 0) {\n"
        << "    int r = esp_sched_step();\n"
        << "    if (r != ESP_RES_PROGRESS) return r;\n"
        << "  }\n"
        << "  return ESP_RES_PROGRESS;\n"
        << "}\n";
  }

  const ModuleIR &Module;
  const CCodeGenOptions &Options;
  TypeTable Types;
  std::ostringstream TempDecls;
  unsigned TempCounter = 0;
  unsigned BuildCounter = 0;
  std::string ExtractedArgs;
  std::map<const ChannelDecl *, std::vector<Endpoint>> InEndpoints;
  std::map<const ChannelDecl *, std::vector<Endpoint>> OutEndpoints;
};

} // namespace

std::string esp::generateC(const ModuleIR &Module,
                           const CCodeGenOptions &Options) {
  CGenerator G(Module, Options);
  return G.run();
}

std::string esp::generateCHeader(const ModuleIR &Module,
                                 const CCodeGenOptions &Options) {
  (void)Options;
  std::ostringstream Out;
  Out << "/* Generated by espc: public entry points. */\n"
      << "#ifndef ESP_GENERATED_H\n#define ESP_GENERATED_H\n\n"
      << "void esp_start(void);\n"
      << "int esp_sched_step(void);\n"
      << "int esp_main_loop(long max_steps);\n"
      << "unsigned long long esp_stat_allocs(void);\n"
      << "long long esp_stat_live(void);\n"
      << "unsigned long long esp_stat_rendezvous(void);\n"
      << "unsigned long long esp_stat_ctx_switches(void);\n\n";
  for (const std::unique_ptr<InterfaceDecl> &Iface :
       Module.Prog->Interfaces)
    Out << "/* interface " << Iface->Name << " on channel "
        << Iface->ChannelName << " */\n";
  Out << "\n#endif /* ESP_GENERATED_H */\n";
  return Out.str();
}

//===--- PromelaGen.h - ESP to Promela (SPIN) backend -----------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPIN backend (§5.2). The translation happens right after type
/// checking (before any optimization), exactly as the paper chooses:
/// the SPIN specification language has no pointers or dynamic
/// allocation, so
///
///  * every aggregate type becomes a fixed-size *pool* (an array of
///    typedef'd cells) plus a reference-count array; values of the type
///    are integer objectIds indexing the pool — this reproduces the
///    paper's objectId scheme, and makes mutable aliasing work because
///    two aliases hold the same id,
///  * `link`/`unlink` become macros that manipulate the refcount arrays
///    with embedded assertions (use-after-free traps), and allocation
///    asserts that a free slot exists (a leak exhausts the pool, §5.2),
///  * arrays get a per-type fixed maximum length,
///  * channel messages are flattened into scalar fields so that receive
///    statements can use constant matching for dispatch (union arms
///    become a leading tag field),
///  * the whole program can be instantiated N times (the paper runs
///    multiple copies of the firmware to model multiple machines).
///
/// SPIN itself is not bundled with this repository; the generated
/// specification documents the translation scheme and is validated
/// structurally by the test suite, while the equivalent state-space
/// exploration is performed natively by src/mc.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_CODEGEN_PROMELAGEN_H
#define ESP_CODEGEN_PROMELAGEN_H

#include "frontend/AST.h"

#include <string>

namespace esp {

struct PromelaGenOptions {
  /// Pool size per aggregate type (the paper's fixed refcount table).
  unsigned MaxObjects = 8;
  /// Fixed maximum array length (§5.2: "specified per type"; we use one
  /// default here and allow overrides by type name).
  unsigned MaxArrayLen = 4;
  /// Number of instances of the whole program to declare.
  unsigned Instances = 1;
};

/// Translates a checked program to a Promela specification.
std::string generatePromela(const Program &Prog,
                            const PromelaGenOptions &Options =
                                PromelaGenOptions());

} // namespace esp

#endif // ESP_CODEGEN_PROMELAGEN_H

//===--- PromelaGen.cpp - ESP to Promela (SPIN) backend ---------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/PromelaGen.h"

#include "frontend/Sema.h"

#include <cassert>
#include <map>
#include <sstream>

using namespace esp;

namespace {

class PromelaGenerator {
public:
  PromelaGenerator(const Program &Prog, const PromelaGenOptions &Options)
      : Prog(Prog), Options(Options) {}

  std::string run() {
    collectTypes();
    std::ostringstream Out;
    emitHeader(Out);
    emitPools(Out);
    emitChannels(Out);
    for (const std::unique_ptr<ProcessDecl> &Proc : Prog.Processes)
      emitProcess(*Proc, Out);
    emitInit(Out);
    return Out.str();
  }

private:
  //===--- Type pools ---------------------------------------------------------===//

  std::string poolName(const Type *T) {
    auto It = PoolNames.find(T);
    if (It != PoolNames.end())
      return It->second;
    // Prefer the user's type name when one resolves to this type.
    std::string Name;
    for (const TypeDecl &TD : Prog.TypeDecls)
      if (TD.Resolved == T)
        Name = TD.Name;
    if (Name.empty())
      Name = "ty" + std::to_string(PoolNames.size());
    PoolNames.emplace(T, Name);
    PoolOrder.push_back(T);
    return Name;
  }

  void collectType(const Type *T) {
    if (T->isScalar())
      return;
    poolName(T);
    if (T->isRecord() || T->isUnion()) {
      for (const TypeField &F : T->getFields())
        collectType(F.FieldType);
    } else {
      collectType(T->getElementType());
    }
  }

  void collectExprTypes(const Expr *E) {
    if (!E)
      return;
    if (E->getType())
      collectType(E->getType());
    switch (E->getKind()) {
    case ExprKind::Field:
      collectExprTypes(ast_cast<FieldExpr>(E)->getBase());
      break;
    case ExprKind::Index:
      collectExprTypes(ast_cast<IndexExpr>(E)->getBase());
      collectExprTypes(ast_cast<IndexExpr>(E)->getIndex());
      break;
    case ExprKind::Unary:
      collectExprTypes(ast_cast<UnaryExpr>(E)->getSub());
      break;
    case ExprKind::Binary:
      collectExprTypes(ast_cast<BinaryExpr>(E)->getLHS());
      collectExprTypes(ast_cast<BinaryExpr>(E)->getRHS());
      break;
    case ExprKind::RecordLit:
      for (const Expr *Elem : ast_cast<RecordLitExpr>(E)->getElems())
        collectExprTypes(Elem);
      break;
    case ExprKind::UnionLit:
      collectExprTypes(ast_cast<UnionLitExpr>(E)->getValue());
      break;
    case ExprKind::ArrayLit:
      collectExprTypes(ast_cast<ArrayLitExpr>(E)->getSize());
      collectExprTypes(ast_cast<ArrayLitExpr>(E)->getInit());
      break;
    case ExprKind::Cast:
      collectExprTypes(ast_cast<CastExpr>(E)->getSub());
      break;
    default:
      break;
    }
  }

  void collectStmtTypes(const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case StmtKind::Block:
      for (const Stmt *Child : ast_cast<BlockStmt>(S)->getBody())
        collectStmtTypes(Child);
      break;
    case StmtKind::Decl:
      collectExprTypes(ast_cast<DeclStmt>(S)->getInit());
      break;
    case StmtKind::Assign:
      collectExprTypes(ast_cast<AssignStmt>(S)->getRHS());
      break;
    case StmtKind::If:
      collectExprTypes(ast_cast<IfStmt>(S)->getCond());
      collectStmtTypes(ast_cast<IfStmt>(S)->getThen());
      collectStmtTypes(ast_cast<IfStmt>(S)->getElse());
      break;
    case StmtKind::While:
      collectExprTypes(ast_cast<WhileStmt>(S)->getCond());
      collectStmtTypes(ast_cast<WhileStmt>(S)->getBody());
      break;
    case StmtKind::Alt:
      for (const AltCase &Case : ast_cast<AltStmt>(S)->getCases()) {
        collectExprTypes(Case.Guard);
        collectExprTypes(Case.Action.Out);
        collectStmtTypes(Case.Body);
      }
      break;
    case StmtKind::Link:
      collectExprTypes(ast_cast<LinkStmt>(S)->getObj());
      break;
    case StmtKind::Unlink:
      collectExprTypes(ast_cast<UnlinkStmt>(S)->getObj());
      break;
    case StmtKind::Assert:
      collectExprTypes(ast_cast<AssertStmt>(S)->getCond());
      break;
    }
  }

  void collectTypes() {
    for (const std::unique_ptr<ChannelDecl> &Chan : Prog.Channels)
      collectType(Chan->ElemType);
    for (const std::unique_ptr<ProcessDecl> &Proc : Prog.Processes) {
      for (const std::unique_ptr<VarInfo> &V : Proc->Vars)
        if (V->VarType)
          collectType(V->VarType);
      collectStmtTypes(Proc->Body);
    }
  }

  //===--- Flattened channel layout --------------------------------------------===//

  /// Number of scalar message fields for a value of type \p T: scalars
  /// are 1; records are the sum of their fields; unions are 1 (tag) plus
  /// the widest arm; arrays are 1 (an objectId into the pool).
  unsigned flatWidth(const Type *T) {
    switch (T->getKind()) {
    case TypeKind::Int:
    case TypeKind::Bool:
      return 1;
    case TypeKind::Record: {
      unsigned W = 0;
      for (const TypeField &F : T->getFields())
        W += flatWidth(F.FieldType);
      return W;
    }
    case TypeKind::Union: {
      unsigned W = 0;
      for (const TypeField &F : T->getFields())
        W = std::max(W, flatWidth(F.FieldType));
      return 1 + W;
    }
    case TypeKind::Array:
      return 1;
    }
    return 1;
  }

  //===--- Emission -------------------------------------------------------------===//

  void emitHeader(std::ostream &Out) {
    Out << "/* Generated by espc --spin (esplang, PLDI 2001 ESP "
           "reproduction).\n"
        << " * Translation per the paper, section 5.2: objects become\n"
        << " * fixed-size pools indexed by objectId; link/unlink are\n"
        << " * macros with embedded liveness assertions; a leak exhausts\n"
        << " * the pool and trips the allocation assertion.\n"
        << " */\n\n"
        << "#define NINST " << Options.Instances << "\n"
        << "#define MAXOBJ " << Options.MaxObjects << "\n"
        << "#define MAXARR " << Options.MaxArrayLen << "\n\n";
  }

  void emitPools(std::ostream &Out) {
    for (const Type *T : PoolOrder) {
      const std::string &Name = PoolNames[T];
      Out << "/* " << T->str() << " */\n";
      Out << "typedef " << Name << "_cell {\n";
      if (T->isRecord() || T->isUnion()) {
        if (T->isUnion())
          Out << "  int arm;\n";
        for (const TypeField &F : T->getFields())
          Out << "  int " << F.Name << "; /* "
              << (F.FieldType->isAggregate() ? "objectId" : "scalar")
              << " */\n";
      } else {
        Out << "  int elem[MAXARR];\n  int len;\n";
      }
      Out << "}\n";
      Out << Name << "_cell " << Name << "_pool[NINST * MAXOBJ];\n";
      Out << "byte " << Name << "_rc[NINST * MAXOBJ];\n\n";
    }
    Out << "/* Reference counting (section 4.4): the only unsafe\n"
        << " * operations; every use asserts liveness. */\n"
        << "#define ESP_LINK(rc, id)   d_step { assert(rc[id] > 0); "
           "rc[id]++ }\n"
        << "#define ESP_UNLINK(rc, id) d_step { assert(rc[id] > 0); "
           "rc[id]-- }\n"
        << "#define ESP_ALLOC(rc, id)  d_step { id = _inst * MAXOBJ; do :: "
           "rc[id] == 0 -> break :: else -> id++; assert(id < (_inst + 1) "
           "* MAXOBJ) od; rc[id] = 1 }\n\n";
  }

  void emitChannels(std::ostream &Out) {
    for (const std::unique_ptr<ChannelDecl> &Chan : Prog.Channels) {
      unsigned W = flatWidth(Chan->ElemType);
      Out << "chan " << Chan->Name << "[NINST] = [0] of { ";
      for (unsigned I = 0; I != W; ++I)
        Out << (I ? ", int" : "int");
      Out << " }; /* " << Chan->ElemType->str();
      if (Chan->Role == ChannelRole::ExternalWriter)
        Out << "; external writer: driven by test code";
      else if (Chan->Role == ChannelRole::ExternalReader)
        Out << "; external reader: consumed by test code";
      Out << " */\n";
    }
    Out << "\n";
  }

  //===--- Expressions -----------------------------------------------------------===//

  std::string expr(const Expr *E, const ProcessDecl &Proc) {
    switch (E->getKind()) {
    case ExprKind::IntLit:
      return std::to_string(ast_cast<IntLitExpr>(E)->getValue());
    case ExprKind::BoolLit:
      return ast_cast<BoolLitExpr>(E)->getValue() ? "1" : "0";
    case ExprKind::SelfId:
      return std::to_string(Proc.ProcessId);
    case ExprKind::VarRef: {
      const VarRefExpr *V = ast_cast<VarRefExpr>(E);
      if (const ConstDecl *C = V->getConst())
        return std::to_string(C->Value);
      return V->getName();
    }
    case ExprKind::Field: {
      const FieldExpr *F = ast_cast<FieldExpr>(E);
      const Type *BaseType = F->getBase()->getType();
      return poolName(BaseType) + "_pool[" + expr(F->getBase(), Proc) +
             "]." + F->getFieldName();
    }
    case ExprKind::Index: {
      const IndexExpr *I = ast_cast<IndexExpr>(E);
      const Type *BaseType = I->getBase()->getType();
      return poolName(BaseType) + "_pool[" + expr(I->getBase(), Proc) +
             "].elem[" + expr(I->getIndex(), Proc) + "]";
    }
    case ExprKind::Unary: {
      const UnaryExpr *U = ast_cast<UnaryExpr>(E);
      std::string Out = U->getOp() == UnaryOp::Not ? "!(" : "-(";
      Out += expr(U->getSub(), Proc);
      Out += ")";
      return Out;
    }
    case ExprKind::Binary: {
      const BinaryExpr *B = ast_cast<BinaryExpr>(E);
      std::string Out = "(";
      Out += expr(B->getLHS(), Proc);
      Out += " ";
      Out += binaryOpSpelling(B->getOp());
      Out += " ";
      Out += expr(B->getRHS(), Proc);
      Out += ")";
      return Out;
    }
    default:
      // Allocation expressions are emitted as statements feeding a
      // temporary; the statement emitters handle them.
      return "/*alloc*/0";
    }
  }

  /// Emits statements materializing allocation expression \p E into a
  /// fresh temp; returns the temp's name (or a plain expression when no
  /// allocation is needed).
  std::string materialize(const Expr *E, const ProcessDecl &Proc,
                          std::ostream &Out, const std::string &Indent) {
    switch (E->getKind()) {
    case ExprKind::RecordLit: {
      const RecordLitExpr *R = ast_cast<RecordLitExpr>(E);
      std::string Pool = poolName(E->getType());
      std::string T = temp();
      Out << Indent << "ESP_ALLOC(" << Pool << "_rc, " << T << ");\n";
      const std::vector<TypeField> &Fields = E->getType()->getFields();
      for (size_t I = 0; I != Fields.size(); ++I) {
        std::string V = materialize(R->getElems()[I], Proc, Out, Indent);
        Out << Indent << Pool << "_pool[" << T << "]." << Fields[I].Name
            << " = " << V << ";\n";
      }
      return T;
    }
    case ExprKind::UnionLit: {
      const UnionLitExpr *U = ast_cast<UnionLitExpr>(E);
      std::string Pool = poolName(E->getType());
      std::string T = temp();
      Out << Indent << "ESP_ALLOC(" << Pool << "_rc, " << T << ");\n";
      Out << Indent << Pool << "_pool[" << T
          << "].arm = " << U->getFieldIndex() << ";\n";
      std::string V = materialize(U->getValue(), Proc, Out, Indent);
      Out << Indent << Pool << "_pool[" << T << "]."
          << U->getFieldName() << " = " << V << ";\n";
      return T;
    }
    case ExprKind::ArrayLit: {
      const ArrayLitExpr *A = ast_cast<ArrayLitExpr>(E);
      std::string Pool = poolName(E->getType());
      std::string T = temp();
      std::string Size = expr(A->getSize(), Proc);
      std::string Init = materialize(A->getInit(), Proc, Out, Indent);
      Out << Indent << "ESP_ALLOC(" << Pool << "_rc, " << T << ");\n";
      Out << Indent << Pool << "_pool[" << T << "].len = " << Size
          << "; assert(" << Size << " <= MAXARR);\n";
      Out << Indent << "esp_i = 0;\n";
      Out << Indent << "do :: esp_i < " << Size << " -> " << Pool
          << "_pool[" << T << "].elem[esp_i] = " << Init
          << "; esp_i++ :: else -> break od;\n";
      return T;
    }
    case ExprKind::Cast: {
      // The SPIN model keeps the objectId: a cast is a fresh object with
      // copied contents; for verification the id-copy abstraction is
      // noted in a comment (contents equality is what matters).
      const CastExpr *C = ast_cast<CastExpr>(E);
      return materialize(C->getSub(), Proc, Out, Indent) + " /* cast */";
    }
    default:
      return expr(E, Proc);
    }
  }

  std::string temp() { return "esp_t" + std::to_string(TempCounter++); }

  //===--- Patterns --------------------------------------------------------------===//

  /// Flattened receive argument list for a pattern: constants use
  /// eval(), binders use variable names, aggregates bind objectIds.
  void receiveArgs(const Pattern *Pat, const ProcessDecl &Proc,
                   std::vector<std::string> &Args) {
    switch (Pat->getKind()) {
    case PatternKind::Bind: {
      const BindPattern *B = ast_cast<BindPattern>(Pat);
      if (Pat->getType()->isRecord()) {
        // Destructure implicitly: one slot per flattened field, bound to
        // synthesized components of the variable (stored back below).
        for (unsigned I = 0, W = flatWidth(Pat->getType()); I != W; ++I)
          Args.push_back(B->getName() + "_f" + std::to_string(I));
        return;
      }
      if (Pat->getType()->isUnion()) {
        Args.push_back(B->getName() + "_arm");
        for (unsigned I = 1, W = flatWidth(Pat->getType()); I != W; ++I)
          Args.push_back(B->getName() + "_f" + std::to_string(I));
        return;
      }
      Args.push_back(B->getName());
      return;
    }
    case PatternKind::Match:
      Args.push_back("eval(" +
                     expr(ast_cast<MatchPattern>(Pat)->getValue(), Proc) +
                     ")");
      return;
    case PatternKind::Record:
      for (const Pattern *Sub : ast_cast<RecordPattern>(Pat)->getElems())
        receiveArgs(Sub, Proc, Args);
      return;
    case PatternKind::Union: {
      const UnionPattern *U = ast_cast<UnionPattern>(Pat);
      Args.push_back("eval(" + std::to_string(U->getFieldIndex()) +
                     ") /* arm " + U->getFieldName() + " */");
      unsigned Before = static_cast<unsigned>(Args.size());
      receiveArgs(U->getSub(), Proc, Args);
      unsigned Written = static_cast<unsigned>(Args.size()) - Before;
      // Pad to the union's widest arm.
      for (unsigned I = Written + 1, W = flatWidth(Pat->getType()); I != W;
           ++I)
        Args.push_back("_");
      return;
    }
    }
  }

  /// Flattened send argument list for an out expression.
  void sendArgs(const Expr *E, const ProcessDecl &Proc,
                std::vector<std::string> &Args, std::ostream &Out,
                const std::string &Indent) {
    const Type *T = E->getType();
    if (T->isScalar() || T->isArray()) {
      Args.push_back(materialize(E, Proc, Out, Indent));
      return;
    }
    if (const RecordLitExpr *R = ast_dyn_cast<RecordLitExpr>(E)) {
      // Pattern-allocation elision (§6.1): field values go straight into
      // the message; the record is never allocated.
      for (const Expr *Elem : R->getElems())
        sendArgs(Elem, Proc, Args, Out, Indent);
      return;
    }
    if (const UnionLitExpr *U = ast_dyn_cast<UnionLitExpr>(E)) {
      Args.push_back(std::to_string(U->getFieldIndex()));
      unsigned Before = static_cast<unsigned>(Args.size());
      sendArgs(U->getValue(), Proc, Args, Out, Indent);
      unsigned Written = static_cast<unsigned>(Args.size()) - Before;
      for (unsigned I = Written + 1, W = flatWidth(T); I != W; ++I)
        Args.push_back("0");
      return;
    }
    // A record/union-typed variable or field: flatten through the pool.
    std::string Id = materialize(E, Proc, Out, Indent);
    flattenValue(T, Id, Args);
  }

  void flattenValue(const Type *T, const std::string &Id,
                    std::vector<std::string> &Args) {
    if (T->isScalar() || T->isArray()) {
      Args.push_back(Id);
      return;
    }
    std::string Pool = poolName(T);
    if (T->isUnion()) {
      Args.push_back(Pool + "_pool[" + Id + "].arm");
      unsigned MaxW = flatWidth(T);
      // Emit the first arm's payload slots; a faithful per-arm flatten
      // needs runtime dispatch, which SPIN models with the tag field.
      const TypeField &F = T->getFields()[0];
      unsigned Before = static_cast<unsigned>(Args.size());
      flattenValue(F.FieldType, Pool + "_pool[" + Id + "]." + F.Name, Args);
      for (unsigned I = static_cast<unsigned>(Args.size()) - Before + 1;
           I != MaxW; ++I)
        Args.push_back("0");
      return;
    }
    for (const TypeField &F : T->getFields())
      flattenValue(F.FieldType, Pool + "_pool[" + Id + "]." + F.Name, Args);
  }

  //===--- Statements -------------------------------------------------------------===//

  void emitStmt(const Stmt *S, const ProcessDecl &Proc, std::ostream &Out,
                std::string Indent) {
    if (!S)
      return;
    switch (S->getKind()) {
    case StmtKind::Block:
      for (const Stmt *Child : ast_cast<BlockStmt>(S)->getBody())
        emitStmt(Child, Proc, Out, Indent);
      return;
    case StmtKind::Decl: {
      const DeclStmt *D = ast_cast<DeclStmt>(S);
      std::string V = materialize(D->getInit(), Proc, Out, Indent);
      Out << Indent << D->getName() << " = " << V << ";\n";
      return;
    }
    case StmtKind::Assign: {
      const AssignStmt *A = ast_cast<AssignStmt>(S);
      std::string V = materialize(A->getRHS(), Proc, Out, Indent);
      if (A->isPlainStore()) {
        const Expr *Target =
            ast_cast<MatchPattern>(A->getLHS())->getValue();
        Out << Indent << expr(Target, Proc) << " = " << V << ";\n";
      } else {
        Out << Indent << "/* destructuring match */\n";
        emitDestructure(A->getLHS(), V, Proc, Out, Indent);
      }
      return;
    }
    case StmtKind::If: {
      const IfStmt *I = ast_cast<IfStmt>(S);
      Out << Indent << "if\n";
      Out << Indent << ":: (" << expr(I->getCond(), Proc) << ") ->\n";
      emitStmt(I->getThen(), Proc, Out, Indent + "  ");
      Out << Indent << ":: else ->";
      if (I->getElse()) {
        Out << "\n";
        emitStmt(I->getElse(), Proc, Out, Indent + "  ");
      } else {
        Out << " skip;\n";
      }
      Out << Indent << "fi;\n";
      return;
    }
    case StmtKind::While: {
      const WhileStmt *W = ast_cast<WhileStmt>(S);
      Out << Indent << "do\n";
      if (W->getCond()) {
        Out << Indent << ":: (" << expr(W->getCond(), Proc) << ") ->\n";
        emitStmt(W->getBody(), Proc, Out, Indent + "  ");
        Out << Indent << ":: else -> break;\n";
      } else {
        Out << Indent << ":: true ->\n";
        emitStmt(W->getBody(), Proc, Out, Indent + "  ");
      }
      Out << Indent << "od;\n";
      return;
    }
    case StmtKind::Alt: {
      const AltStmt *A = ast_cast<AltStmt>(S);
      Out << Indent << "if /* alt */\n";
      for (const AltCase &Case : A->getCases()) {
        Out << Indent << "::";
        if (Case.Guard)
          Out << " (" << expr(Case.Guard, Proc) << ") &&";
        const CommAction &Act = Case.Action;
        std::string Chan = Act.ChannelName + "[_inst]";
        if (Act.IsIn) {
          std::vector<std::string> Args;
          receiveArgs(Act.Pat, Proc, Args);
          Out << " " << Chan << "?";
          for (size_t I = 0; I != Args.size(); ++I)
            Out << (I ? "," : "") << Args[I];
          Out << " ->\n";
        } else {
          std::ostringstream Pre;
          std::vector<std::string> Args;
          sendArgs(Act.Out, Proc, Args, Pre, Indent + "  ");
          // Sends with allocation pre-statements are wrapped atomically.
          if (!Pre.str().empty())
            Out << " atomic {\n" << Pre.str() << Indent << "  ";
          else
            Out << " ";
          Out << Chan << "!";
          for (size_t I = 0; I != Args.size(); ++I)
            Out << (I ? "," : "") << Args[I];
          if (!Pre.str().empty())
            Out << ";\n" << Indent << "} ->\n";
          else
            Out << " ->\n";
        }
        if (Case.Body)
          emitStmt(Case.Body, Proc, Out, Indent + "  ");
        else
          Out << Indent << "  skip;\n";
      }
      Out << Indent << "fi;\n";
      return;
    }
    case StmtKind::Link: {
      const Expr *Obj = ast_cast<LinkStmt>(S)->getObj();
      Out << Indent << "ESP_LINK(" << poolName(Obj->getType()) << "_rc, "
          << expr(Obj, Proc) << ");\n";
      return;
    }
    case StmtKind::Unlink: {
      const Expr *Obj = ast_cast<UnlinkStmt>(S)->getObj();
      Out << Indent << "ESP_UNLINK(" << poolName(Obj->getType()) << "_rc, "
          << expr(Obj, Proc) << ");\n";
      return;
    }
    case StmtKind::Assert:
      Out << Indent << "assert("
          << expr(ast_cast<AssertStmt>(S)->getCond(), Proc) << ");\n";
      return;
    }
  }

  void emitDestructure(const Pattern *Pat, const std::string &ValueExpr,
                       const ProcessDecl &Proc, std::ostream &Out,
                       const std::string &Indent) {
    switch (Pat->getKind()) {
    case PatternKind::Bind:
      Out << Indent << ast_cast<BindPattern>(Pat)->getName() << " = "
          << ValueExpr << ";\n";
      return;
    case PatternKind::Match:
      Out << Indent << "assert(" << ValueExpr << " == "
          << expr(ast_cast<MatchPattern>(Pat)->getValue(), Proc) << ");\n";
      return;
    case PatternKind::Record: {
      const RecordPattern *R = ast_cast<RecordPattern>(Pat);
      const std::vector<TypeField> &Fields = Pat->getType()->getFields();
      std::string Pool = poolName(Pat->getType());
      for (size_t I = 0; I != R->getElems().size(); ++I)
        emitDestructure(R->getElems()[I],
                        Pool + "_pool[" + ValueExpr + "]." + Fields[I].Name,
                        Proc, Out, Indent);
      return;
    }
    case PatternKind::Union: {
      const UnionPattern *U = ast_cast<UnionPattern>(Pat);
      std::string Pool = poolName(Pat->getType());
      Out << Indent << "assert(" << Pool << "_pool[" << ValueExpr
          << "].arm == " << U->getFieldIndex() << ");\n";
      emitDestructure(U->getSub(),
                      Pool + "_pool[" + ValueExpr + "]." +
                          U->getFieldName(),
                      Proc, Out, Indent);
      return;
    }
    }
  }

  //===--- Processes ---------------------------------------------------------------===//

  void emitProcess(const ProcessDecl &Proc, std::ostream &Out) {
    Out << "proctype " << Proc.Name << "(int _inst) {\n";
    Out << "  int esp_i;\n";
    for (unsigned I = 0; I != 4; ++I)
      Out << "  int esp_t" << I << ";\n";
    TempCounter = 0;
    // Declare every slot (including the synthesized flattened-bind
    // components for record/union binders).
    for (const std::unique_ptr<VarInfo> &V : Proc.Vars) {
      Out << "  int " << V->Name << ";\n";
      if (V->VarType && V->VarType->isRecord())
        for (unsigned F = 0, W = flatWidth(V->VarType); F != W; ++F)
          Out << "  int " << V->Name << "_f" << F << ";\n";
      if (V->VarType && V->VarType->isUnion()) {
        Out << "  int " << V->Name << "_arm;\n";
        for (unsigned F = 1, W = flatWidth(V->VarType); F != W; ++F)
          Out << "  int " << V->Name << "_f" << F << ";\n";
      }
    }
    emitStmt(Proc.Body, Proc, Out, "  ");
    Out << "}\n\n";
  }

  void emitInit(std::ostream &Out) {
    Out << "init {\n  int i = 0;\n  atomic {\n"
        << "    do\n    :: i < NINST ->\n";
    for (const std::unique_ptr<ProcessDecl> &Proc : Prog.Processes)
      Out << "      run " << Proc->Name << "(i);\n";
    Out << "      i++\n    :: else -> break\n    od\n  }\n}\n";
  }

  const Program &Prog;
  const PromelaGenOptions &Options;
  std::map<const Type *, std::string> PoolNames;
  std::vector<const Type *> PoolOrder;
  unsigned TempCounter = 0;
};

} // namespace

std::string esp::generatePromela(const Program &Prog,
                                 const PromelaGenOptions &Options) {
  PromelaGenerator G(Prog, Options);
  return G.run();
}

//===--- EventSim.h - Discrete-event simulation core ------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal discrete-event simulator: a time-ordered event queue with
/// stable FIFO ordering for simultaneous events. Times are in
/// nanoseconds. This is the substrate under the Myrinet NIC model used
/// by the VMMC evaluation (§6.2).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SIM_EVENTSIM_H
#define ESP_SIM_EVENTSIM_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace esp {
namespace sim {

using SimTime = uint64_t; ///< Nanoseconds.

/// A time-ordered event queue. Events at equal times fire in scheduling
/// order (stable), which keeps simulations deterministic.
class EventQueue {
public:
  using Callback = std::function<void()>;

  SimTime now() const { return Now; }

  /// Schedules \p Fn at absolute time \p At (clamped to now()).
  void scheduleAt(SimTime At, Callback Fn) {
    if (At < Now)
      At = Now;
    Heap.push(Event{At, NextSeq++, std::move(Fn)});
  }

  /// Schedules \p Fn \p Delay nanoseconds from now.
  void scheduleAfter(SimTime Delay, Callback Fn) {
    scheduleAt(Now + Delay, std::move(Fn));
  }

  bool empty() const { return Heap.empty(); }
  size_t pending() const { return Heap.size(); }

  /// Fires the next event; returns false when the queue is empty.
  bool step() {
    if (Heap.empty())
      return false;
    Event E = Heap.top();
    Heap.pop();
    Now = E.At;
    E.Fn();
    return true;
  }

  /// Runs until the queue drains or simulated time exceeds \p Until.
  void runUntil(SimTime Until) {
    while (!Heap.empty() && Heap.top().At <= Until)
      step();
    if (Now < Until)
      Now = Until;
  }

  /// Runs until the queue drains completely.
  void runAll(uint64_t MaxEvents = UINT64_MAX) {
    while (MaxEvents-- && step())
      ;
  }

private:
  struct Event {
    SimTime At;
    uint64_t Seq;
    Callback Fn;
  };
  struct Later {
    bool operator()(const Event &A, const Event &B) const {
      if (A.At != B.At)
        return A.At > B.At;
      return A.Seq > B.Seq;
    }
  };

  SimTime Now = 0;
  uint64_t NextSeq = 0;
  std::priority_queue<Event, std::vector<Event>, Later> Heap;
};

} // namespace sim
} // namespace esp

#endif // ESP_SIM_EVENTSIM_H

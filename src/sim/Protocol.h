//===--- Protocol.h - Host requests and wire packets ------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data structures shared by the host library, both firmware
/// implementations, and the network model: VMMC host requests (send /
/// address-translation update, §2.2) and the wire packet format of the
/// sliding-window retransmission protocol (§5.3).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SIM_PROTOCOL_H
#define ESP_SIM_PROTOCOL_H

#include "sim/EventSim.h"

#include <cstdint>

namespace esp {
namespace sim {

/// A request posted by the host library to the NIC (the userT union of
/// the paper's Appendix B).
struct HostReq {
  enum class Kind : uint8_t { Send, Update };
  Kind K = Kind::Send;
  // Send.
  int Dest = 0;
  uint64_t VAddr = 0;
  uint32_t Size = 0;
  uint64_t Token = 0; ///< Opaque message id for workload bookkeeping.
  // Update.
  uint64_t PAddr = 0;
  SimTime PostedAt = 0;
};

/// One packet on the wire. Data packets carry a window sequence number
/// and a piggybacked cumulative ack; pure-ack packets have Kind::Ack.
struct Packet {
  enum class Kind : uint8_t { Data, Ack };
  Kind K = Kind::Data;
  int Src = 0;
  int Dest = 0;
  uint32_t Seq = 0;
  uint32_t Ack = 0; ///< Piggybacked cumulative ack (next expected seq).
  uint32_t PayloadBytes = 0;
  uint32_t MsgBytes = 0; ///< Total message size (for reassembly).
  uint64_t Token = 0;
  SimTime SentAt = 0;
};

/// Host-visible receive completion.
struct RecvNotification {
  int Src = 0;
  uint32_t Size = 0;
  uint64_t Token = 0;
  SimTime At = 0;
};

} // namespace sim
} // namespace esp

#endif // ESP_SIM_PROTOCOL_H

//===--- CostModel.h - NIC and firmware cost model --------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing model of the simulated Myrinet network interface card
/// (§2.1: 33 MHz LANai4.1, 1 MB SRAM, three DMA engines) and of the two
/// firmware implementations. The paper's absolute numbers came from real
/// hardware; these constants are calibrated so the *shape* of Figure 5
/// reproduces: the hand-optimized fast path wins on small messages, the
/// ESP firmware pays ~2x on 4-byte latency against the fast path but
/// ~1.35x worst case against the no-fast-path baseline, and all three
/// converge at large sizes where DMA/wire time dominates.
///
/// Firmware CPU time is *derived from execution*, not scripted: the ESP
/// firmware charges per interpreted instruction / context switch /
/// rendezvous measured from the real interpreter run, and the C-style
/// firmware charges per handler dispatch / state transition performed by
/// its actual handler code. Shared data-path actions (DMA programming,
/// packet header work) cost the same on both.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SIM_COSTMODEL_H
#define ESP_SIM_COSTMODEL_H

#include <cstdint>

namespace esp {
namespace sim {

struct CostModel {
  //===--- CPU ---------------------------------------------------------------===//

  /// 33 MHz LANai: ~30 ns per cycle.
  uint64_t NsPerCycle = 30;

  // ESP runtime costs (charged from interpreter statistics, §6.1).
  uint64_t CyclesPerEspInstruction = 4;
  uint64_t CyclesPerContextSwitch = 8;  ///< "only a few instructions".
  uint64_t CyclesPerRendezvous = 12;    ///< Bitmask checks + transfer.
  uint64_t CyclesPerPollRound = 6;      ///< Idle-loop poll of externals.

  // C-style event-driven state machine costs (Appendix A runtime).
  // Hand-written handlers spill live values to globals at every block
  // point (§2.2), so a dispatch costs noticeably more than the ESP
  // runtime's pc-only context switch — but a handler body is straight
  // C, cheaper per unit of work than interpreted ESP.
  uint64_t CyclesPerHandlerDispatch = 35; ///< Event lookup + call + spills.
  uint64_t CyclesPerStateTransition = 8;  ///< setState.
  uint64_t CyclesPerHandlerWork = 45;     ///< Body of a typical handler.
  uint64_t CyclesPerFastPathSend = 50;    ///< Whole inlined send path.
  uint64_t CyclesPerFastPathRecv = 45;    ///< Whole inlined receive path.

  // Shared data-path actions (identical for every firmware).
  uint64_t CyclesPerDmaProgram = 20;   ///< Writing DMA control registers.
  uint64_t CyclesPerHeaderWork = 15;   ///< Packet header marshalling.
  uint64_t CyclesPerTableLookup = 8;   ///< Address translation lookup.
  uint64_t CyclesPerCompletion = 12;   ///< Posting a host notification.
  uint64_t CyclesPerInlineByte = 1;    ///< PIO copy for small messages.

  //===--- DMA engines ---------------------------------------------------------===//

  /// Host (EBUS) DMA: ~133 MB/s sustained.
  uint64_t HostDmaSetupNs = 900;
  double HostDmaNsPerByte = 7.5;

  /// Network send/receive DMA: ~160 MB/s (1.28 Gb/s Myrinet).
  uint64_t NetDmaSetupNs = 500;
  double NetDmaNsPerByte = 6.25;

  //===--- Wire ---------------------------------------------------------------===//

  uint64_t WireLatencyNs = 500;        ///< Propagation + switch.
  double WireNsPerByte = 6.25;         ///< 1.28 Gb/s.
  uint64_t PacketHeaderBytes = 16;

  //===--- Protocol constants ---------------------------------------------------===//

  uint32_t PageSize = 4096;
  uint32_t Mtu = 4096;             ///< One packet per page.
  uint32_t SmallMessageMax = 32;   ///< Inlined small-message special case.
  uint32_t WindowSize = 8;         ///< Sliding-window width.
  uint64_t RetransTimeoutNs = 2'000'000;
  uint64_t TimerTickNs = 500'000;
  uint32_t NumSramBuffers = 64;
};

} // namespace sim
} // namespace esp

#endif // ESP_SIM_COSTMODEL_H

//===--- Nic.h - Simulated Myrinet network interface card -------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated Myrinet NIC (§2.1): a firmware CPU (33 MHz LANai), SRAM
/// packet buffers, a host DMA engine, a send DMA engine (the receive DMA
/// is folded into packet delivery timing), a watchdog timer, and queues
/// connecting it to the host library and the wire. The firmware is
/// pluggable: the ESP firmware runs the actual ESP program on the
/// interpreter; the baseline firmware runs C-style event-driven state
/// machines. Both see the same NicEnv.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SIM_NIC_H
#define ESP_SIM_NIC_H

#include "sim/CostModel.h"
#include "sim/EventSim.h"
#include "sim/Protocol.h"

#include <deque>
#include <functional>
#include <memory>
#include <vector>

namespace esp {
namespace sim {

class Nic;
class Simulator;

/// The environment a firmware quantum runs against. All interaction with
/// the device happens here, and every data-path action charges the same
/// cycle costs for every firmware implementation.
class NicEnv {
public:
  explicit NicEnv(Nic &N) : Device(N) {}

  //===--- Time ---------------------------------------------------------------===//

  const CostModel &costs() const;
  void charge(uint64_t Cycles) { ChargedCycles += Cycles; }
  uint64_t charged() const { return ChargedCycles; }
  /// Simulated time at the current point inside the quantum.
  SimTime localNow() const;

  //===--- Host request queue ----------------------------------------------------===//

  bool hasHostReq() const;
  const HostReq &peekHostReq() const;
  HostReq popHostReq();

  //===--- SRAM buffers ----------------------------------------------------------===//

  bool bufferAvailable() const;
  int allocBuffer();
  void freeBuffer(int Buf);

  //===--- Host DMA (one engine, shared by fetch and deliver) ---------------------===//

  bool hostDmaFree() const;
  /// Fetch \p Bytes from host memory; completion appears in fetchDone
  /// with \p Tag.
  void startHostDmaFetch(uint32_t Bytes, uint64_t Tag);
  /// Deliver \p Bytes to host memory; completion appears in deliverDone.
  void startHostDmaDeliver(uint32_t Bytes, uint64_t Tag);
  bool hasFetchDone() const;
  uint64_t popFetchDone();
  bool hasDeliverDone() const;
  uint64_t popDeliverDone();

  //===--- Network ----------------------------------------------------------------===//

  bool sendDmaFree() const;
  /// When an engine is busy, these say when it frees (for re-polls).
  SimTime hostDmaBusyUntilTime() const;
  SimTime sendDmaBusyUntilTime() const;
  void transmit(Packet P);
  bool hasRxPacket() const;
  const Packet &peekRxPacket() const;
  Packet popRxPacket();

  //===--- Watchdog timer ------------------------------------------------------------===//

  /// Monotonic tick counter (incremented every TimerTickNs).
  uint64_t ticks() const;
  /// True once a new tick has elapsed since clearTimerEvent().
  bool timerFired() const;
  void clearTimerEvent();

  //===--- Host completion -------------------------------------------------------------===//

  void notifyRecv(int Src, uint32_t Size, uint64_t Token);

private:
  Nic &Device;
  uint64_t ChargedCycles = 0;
};

/// A firmware implementation: runs on the NIC CPU in quanta.
class Firmware {
public:
  virtual ~Firmware() = default;

  /// Processes all currently available work without blocking, using
  /// \p Env for device access and cycle charging. Called whenever the
  /// CPU is free and work may be pending.
  virtual void runQuantum(NicEnv &Env) = 0;

  /// Short name for reports ("vmmcESP", "vmmcOrig", ...).
  virtual const char *name() const = 0;

  /// If the last quantum stalled on a busy device resource, the time it
  /// frees up (0 = not stalled). The NIC re-polls then.
  virtual SimTime repollAt() const { return 0; }
};

/// The simulated NIC device.
class Nic {
public:
  Nic(int NodeId, Simulator &Sim);

  int nodeId() const { return NodeId; }
  Simulator &simulator() { return Sim; }

  void setFirmware(std::unique_ptr<Firmware> FW);
  Firmware *firmware() { return FW.get(); }

  //===--- Host-side API ----------------------------------------------------------===//

  void postRequest(HostReq Req);
  std::function<void(const RecvNotification &)> OnRecv;

  //===--- Wire-side API -----------------------------------------------------------===//

  void deliverPacket(Packet P);

  //===--- Device state (accessed by NicEnv) ---------------------------------------===//

  std::deque<HostReq> HostQ;
  std::deque<Packet> RxQ;
  std::deque<uint64_t> FetchDoneQ;
  std::deque<uint64_t> DeliverDoneQ;
  std::vector<int> FreeBuffers;
  SimTime HostDmaBusyUntil = 0;
  SimTime SendDmaBusyUntil = 0;
  uint64_t TickCount = 0;
  uint64_t LastSeenTick = 0;
  SimTime CpuBusyUntil = 0;
  SimTime QuantumStart = 0;
  NicEnv *ActiveEnv = nullptr;

  // Statistics.
  uint64_t TotalCycles = 0;
  uint64_t PacketsSent = 0;
  uint64_t PacketsReceived = 0;

  /// Requests a firmware poll as soon as the CPU is free.
  void schedulePoll();
  /// Starts the periodic watchdog tick.
  void startTimer();

private:
  void pollNow();
  void timerTick();
  bool workPending() const;

  int NodeId;
  Simulator &Sim;
  std::unique_ptr<Firmware> FW;
  bool PollScheduled = false;
  bool TimerRunning = false;
};

/// The whole simulated system: the event queue, the cost model, N NICs
/// and the full-duplex links between them.
class Simulator {
public:
  explicit Simulator(unsigned NumNodes, CostModel Costs = CostModel());

  EventQueue &events() { return Events; }
  const CostModel &costs() const { return Costs; }
  Nic &nic(unsigned Node) { return *Nics[Node]; }
  unsigned numNodes() const { return static_cast<unsigned>(Nics.size()); }
  SimTime now() const { return Events.now(); }

  /// Transmits \p P from its source NIC: occupies the send DMA and the
  /// per-direction wire, then delivers to the destination NIC.
  void transmit(Packet P, SimTime EarliestStart);

  /// Optional loss injection: return true to drop the packet.
  std::function<bool(const Packet &)> DropFn;

  /// Runs until \p Pred() is true or \p MaxTime is reached. Returns true
  /// when the predicate fired.
  bool runUntil(const std::function<bool()> &Pred, SimTime MaxTime);

  uint64_t PacketsDropped = 0;

private:
  EventQueue Events;
  CostModel Costs;
  std::vector<std::unique_ptr<Nic>> Nics;
  /// Wire busy time per ordered (src, dest) pair.
  std::vector<SimTime> WireBusyUntil;
};

} // namespace sim
} // namespace esp

#endif // ESP_SIM_NIC_H

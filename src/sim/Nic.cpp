//===--- Nic.cpp - Simulated Myrinet network interface card -----------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Nic.h"

#include <cassert>

using namespace esp;
using namespace esp::sim;

//===----------------------------------------------------------------------===//
// NicEnv
//===----------------------------------------------------------------------===//

const CostModel &NicEnv::costs() const {
  return Device.simulator().costs();
}

SimTime NicEnv::localNow() const {
  return Device.QuantumStart + ChargedCycles * costs().NsPerCycle;
}

bool NicEnv::hasHostReq() const { return !Device.HostQ.empty(); }
const HostReq &NicEnv::peekHostReq() const { return Device.HostQ.front(); }
HostReq NicEnv::popHostReq() {
  HostReq Req = Device.HostQ.front();
  Device.HostQ.pop_front();
  return Req;
}

bool NicEnv::bufferAvailable() const { return !Device.FreeBuffers.empty(); }
int NicEnv::allocBuffer() {
  assert(!Device.FreeBuffers.empty() && "SRAM buffer underflow");
  int Buf = Device.FreeBuffers.back();
  Device.FreeBuffers.pop_back();
  return Buf;
}
void NicEnv::freeBuffer(int Buf) { Device.FreeBuffers.push_back(Buf); }

bool NicEnv::hostDmaFree() const {
  return Device.HostDmaBusyUntil <= localNow();
}

void NicEnv::startHostDmaFetch(uint32_t Bytes, uint64_t Tag) {
  const CostModel &C = costs();
  charge(C.CyclesPerDmaProgram);
  SimTime Start = std::max(localNow(), Device.HostDmaBusyUntil);
  SimTime Done = Start + C.HostDmaSetupNs +
                 static_cast<SimTime>(Bytes * C.HostDmaNsPerByte);
  Device.HostDmaBusyUntil = Done;
  Nic *N = &Device;
  Device.simulator().events().scheduleAt(Done, [N, Tag] {
    N->FetchDoneQ.push_back(Tag);
    N->schedulePoll();
  });
}

void NicEnv::startHostDmaDeliver(uint32_t Bytes, uint64_t Tag) {
  const CostModel &C = costs();
  charge(C.CyclesPerDmaProgram);
  SimTime Start = std::max(localNow(), Device.HostDmaBusyUntil);
  SimTime Done = Start + C.HostDmaSetupNs +
                 static_cast<SimTime>(Bytes * C.HostDmaNsPerByte);
  Device.HostDmaBusyUntil = Done;
  Nic *N = &Device;
  Device.simulator().events().scheduleAt(Done, [N, Tag] {
    N->DeliverDoneQ.push_back(Tag);
    N->schedulePoll();
  });
}

bool NicEnv::hasFetchDone() const { return !Device.FetchDoneQ.empty(); }
uint64_t NicEnv::popFetchDone() {
  uint64_t Tag = Device.FetchDoneQ.front();
  Device.FetchDoneQ.pop_front();
  return Tag;
}
bool NicEnv::hasDeliverDone() const {
  return !Device.DeliverDoneQ.empty();
}
uint64_t NicEnv::popDeliverDone() {
  uint64_t Tag = Device.DeliverDoneQ.front();
  Device.DeliverDoneQ.pop_front();
  return Tag;
}

bool NicEnv::sendDmaFree() const {
  return Device.SendDmaBusyUntil <= localNow();
}

SimTime NicEnv::hostDmaBusyUntilTime() const {
  return Device.HostDmaBusyUntil;
}
SimTime NicEnv::sendDmaBusyUntilTime() const {
  return Device.SendDmaBusyUntil;
}

void NicEnv::transmit(Packet P) {
  const CostModel &C = costs();
  charge(C.CyclesPerDmaProgram + C.CyclesPerHeaderWork);
  P.Src = Device.nodeId();
  P.SentAt = localNow();
  ++Device.PacketsSent;
  Device.simulator().transmit(P, localNow());
}

bool NicEnv::hasRxPacket() const { return !Device.RxQ.empty(); }
const Packet &NicEnv::peekRxPacket() const { return Device.RxQ.front(); }
Packet NicEnv::popRxPacket() {
  Packet P = Device.RxQ.front();
  Device.RxQ.pop_front();
  return P;
}

uint64_t NicEnv::ticks() const { return Device.TickCount; }
bool NicEnv::timerFired() const {
  return Device.TickCount > Device.LastSeenTick;
}
void NicEnv::clearTimerEvent() { Device.LastSeenTick = Device.TickCount; }

void NicEnv::notifyRecv(int Src, uint32_t Size, uint64_t Token) {
  charge(costs().CyclesPerCompletion);
  if (!Device.OnRecv)
    return;
  RecvNotification Note;
  Note.Src = Src;
  Note.Size = Size;
  Note.Token = Token;
  Note.At = localNow();
  // The host observes the completion after the quantum's local time.
  Nic *N = &Device;
  Device.simulator().events().scheduleAt(Note.At, [N, Note] {
    if (N->OnRecv)
      N->OnRecv(Note);
  });
}

//===----------------------------------------------------------------------===//
// Nic
//===----------------------------------------------------------------------===//

Nic::Nic(int NodeId, Simulator &Sim) : NodeId(NodeId), Sim(Sim) {
  const CostModel &C = Sim.costs();
  for (unsigned I = 0; I != C.NumSramBuffers; ++I)
    FreeBuffers.push_back(static_cast<int>(I));
}

void Nic::setFirmware(std::unique_ptr<Firmware> NewFW) {
  FW = std::move(NewFW);
}

void Nic::postRequest(HostReq Req) {
  Req.PostedAt = Sim.now();
  HostQ.push_back(Req);
  schedulePoll();
}

void Nic::deliverPacket(Packet P) {
  ++PacketsReceived;
  RxQ.push_back(P);
  schedulePoll();
}

bool Nic::workPending() const {
  return !HostQ.empty() || !RxQ.empty() || !FetchDoneQ.empty() ||
         !DeliverDoneQ.empty() || TickCount > LastSeenTick;
}

void Nic::schedulePoll() {
  if (PollScheduled || !FW)
    return;
  PollScheduled = true;
  SimTime At = std::max(Sim.now(), CpuBusyUntil);
  Sim.events().scheduleAt(At, [this] {
    PollScheduled = false;
    pollNow();
  });
}

void Nic::pollNow() {
  if (!FW || !workPending())
    return;
  QuantumStart = std::max(Sim.now(), CpuBusyUntil);
  NicEnv Env(*this);
  ActiveEnv = &Env;
  FW->runQuantum(Env);
  ActiveEnv = nullptr;
  TotalCycles += Env.charged();
  CpuBusyUntil = QuantumStart + Env.charged() * Sim.costs().NsPerCycle;
  // If the quantum left work behind (e.g. it stopped because a DMA was
  // busy), poll again once the blocking resource frees up; the next
  // completion event will also wake us.
  SimTime Repoll = FW->repollAt();
  if (Repoll > Sim.now() && !PollScheduled) {
    PollScheduled = true;
    Sim.events().scheduleAt(std::max(Repoll, CpuBusyUntil), [this] {
      PollScheduled = false;
      pollNow();
    });
  } else if (workPending()) {
    schedulePoll();
  }
}

void Nic::startTimer() {
  if (TimerRunning)
    return;
  TimerRunning = true;
  Sim.events().scheduleAfter(Sim.costs().TimerTickNs,
                             [this] { timerTick(); });
}

void Nic::timerTick() {
  ++TickCount;
  schedulePoll();
  Sim.events().scheduleAfter(Sim.costs().TimerTickNs,
                             [this] { timerTick(); });
}

//===----------------------------------------------------------------------===//
// Simulator
//===----------------------------------------------------------------------===//

Simulator::Simulator(unsigned NumNodes, CostModel InitialCosts)
    : Costs(InitialCosts) {
  for (unsigned I = 0; I != NumNodes; ++I)
    Nics.push_back(std::make_unique<Nic>(static_cast<int>(I), *this));
  WireBusyUntil.assign(NumNodes * NumNodes, 0);
}

void Simulator::transmit(Packet P, SimTime EarliestStart) {
  assert(P.Dest >= 0 && P.Dest < static_cast<int>(Nics.size()) &&
         "bad destination node");
  Nic &Src = *Nics[P.Src];
  uint32_t WireBytes = P.PayloadBytes + Costs.PacketHeaderBytes;

  // Send DMA: SRAM to wire.
  SimTime DmaStart = std::max(EarliestStart, Src.SendDmaBusyUntil);
  SimTime DmaDone = DmaStart + Costs.NetDmaSetupNs +
                    static_cast<SimTime>(WireBytes * Costs.NetDmaNsPerByte);
  Src.SendDmaBusyUntil = DmaDone;

  if (DropFn && DropFn(P)) {
    ++PacketsDropped;
    return;
  }

  // Wire occupancy per direction, then propagation, then the receive DMA
  // into the destination's SRAM.
  SimTime &Wire = WireBusyUntil[P.Src * Nics.size() + P.Dest];
  SimTime WireStart = std::max(DmaDone, Wire);
  SimTime WireDone =
      WireStart + static_cast<SimTime>(WireBytes * Costs.WireNsPerByte);
  Wire = WireDone;
  SimTime Arrive = WireDone + Costs.WireLatencyNs + Costs.NetDmaSetupNs +
                   static_cast<SimTime>(WireBytes * Costs.NetDmaNsPerByte);
  Nic *Dest = Nics[P.Dest].get();
  Events.scheduleAt(Arrive, [Dest, P] { Dest->deliverPacket(P); });
}

bool Simulator::runUntil(const std::function<bool()> &Pred,
                         SimTime MaxTime) {
  while (!Pred()) {
    if (Events.empty() || Events.now() > MaxTime)
      return Pred();
    Events.step();
  }
  return true;
}

//===--- Progress.h - Model-checker search telemetry ------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live counters a running search publishes for `espmc --progress`: a
/// background ticker thread reads them while the engines write with
/// relaxed stores. The parallel engine gives every worker its own padded
/// slot (no shared-line traffic on the hot path); totals are the sum of
/// the slots plus the root-state contribution. All telemetry is
/// observe-only — attaching a SearchProgress changes no verdict and no
/// stored-state count.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_OBS_PROGRESS_H
#define ESP_OBS_PROGRESS_H

#include <array>
#include <atomic>
#include <cstdint>

namespace esp {
namespace obs {

inline constexpr unsigned kMaxProgressWorkers = 64;

struct alignas(64) WorkerProgress {
  std::atomic<uint64_t> Explored{0};
  std::atomic<uint64_t> Stored{0};
  std::atomic<uint64_t> Transitions{0};
  /// Work items this worker popped from the shared queue (its share of
  /// the work-stealing traffic).
  std::atomic<uint64_t> Items{0};
};

class SearchProgress {
public:
  /// Sequential-engine totals (the parallel engine leaves these at the
  /// root-state contribution and publishes per worker instead).
  std::atomic<uint64_t> Explored{0};
  std::atomic<uint64_t> Stored{0};
  std::atomic<uint64_t> Transitions{0};
  /// DFS stack depth (sequential) or shared-queue length (parallel).
  std::atomic<uint64_t> FrontierDepth{0};
  /// Visited-set memory, refreshed at a coarse stride (0 until the
  /// first refresh).
  std::atomic<uint64_t> VisitedBytes{0};
  /// Number of per-worker slots in use; 0 for the sequential engine.
  std::atomic<unsigned> Workers{0};
  std::array<WorkerProgress, kMaxProgressWorkers> PerWorker;

  uint64_t totalExplored() const {
    return Explored.load(std::memory_order_relaxed) + sumWorkers(0);
  }
  uint64_t totalStored() const {
    return Stored.load(std::memory_order_relaxed) + sumWorkers(1);
  }
  uint64_t totalTransitions() const {
    return Transitions.load(std::memory_order_relaxed) + sumWorkers(2);
  }

private:
  uint64_t sumWorkers(int Field) const {
    uint64_t Sum = 0;
    unsigned N = Workers.load(std::memory_order_relaxed);
    if (N > kMaxProgressWorkers)
      N = kMaxProgressWorkers;
    for (unsigned I = 0; I != N; ++I) {
      const WorkerProgress &W = PerWorker[I];
      Sum += (Field == 0   ? W.Explored
              : Field == 1 ? W.Stored
                           : W.Transitions)
                 .load(std::memory_order_relaxed);
    }
    return Sum;
  }
};

} // namespace obs
} // namespace esp

#endif // ESP_OBS_PROGRESS_H

//===--- TracingObserver.h - MachineObserver -> TraceWriter -----*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TracingObserver turns MachineObserver callbacks into a Chrome trace:
/// one track per ESP process carrying a slice per scheduling quantum,
/// flow arrows from sender to receiver for every rendezvous (external
/// sides land on the "environment" track), and a heap counter track
/// sampled at allocations and communication points.
///
/// The clock is pluggable: by default virtual time (1 executed ESP
/// instruction = 1 us — fully deterministic, so traces diff cleanly),
/// or a caller-supplied closure (the VMMC simulator passes EventQueue
/// time so slices line up with simulated DMA/wire events).
///
/// FanoutObserver composes observers (trace + profile in one run).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_OBS_TRACINGOBSERVER_H
#define ESP_OBS_TRACINGOBSERVER_H

#include "obs/Trace.h"
#include "runtime/Machine.h"

#include <functional>
#include <string>
#include <vector>

namespace esp {
namespace obs {

class TracingObserver : public MachineObserver {
public:
  /// Microsecond clock; null means virtual time (instruction count).
  using Clock = std::function<uint64_t()>;

  explicit TracingObserver(TraceWriter &Writer, Clock C = nullptr,
                           uint32_t Pid = 1);

  /// Emits track metadata for \p M's processes. Call once, before
  /// stepping (does not install the observer — callers own that).
  void attach(const Machine &M, const std::string &ProcessName = "esp");

  /// Closes the open slice and emits final heap counters.
  void finishTrace(const Machine &M);

  void onStep(const Machine &M, StepResult Result) override;
  void onSend(const Machine &M, uint32_t ChannelId, int Writer) override;
  void onRecv(const Machine &M, uint32_t ChannelId, int Reader) override;
  void onAlloc(const Machine &M, const Value &Obj) override;
  void onInstr(const Machine &M, unsigned Proc, unsigned PC) override;
  void onBlock(const Machine &M, unsigned Proc, uint32_t ChannelId) override;

private:
  uint64_t now(const Machine &M) const;
  uint32_t tidOf(int Proc) const {
    return Proc < 0 ? 0 : static_cast<uint32_t>(Proc) + 1;
  }
  const std::string &channelName(uint32_t ChannelId) const;
  void heapCounters(const Machine &M, uint64_t Ts);

  TraceWriter &W;
  Clock C;
  uint32_t Pid;
  int CurProc = -1;
  uint64_t FlowSeq = 0;
  uint64_t LastHeapLive = UINT64_MAX;
  std::vector<std::string> ProcNames;
  std::vector<std::string> ChanNames;
};

/// Broadcasts every callback to a fixed list of observers.
class FanoutObserver : public MachineObserver {
public:
  void add(MachineObserver *O) { Obs.push_back(O); }

  void onStep(const Machine &M, StepResult Result) override {
    for (MachineObserver *O : Obs)
      O->onStep(M, Result);
  }
  void onSend(const Machine &M, uint32_t ChannelId, int Writer) override {
    for (MachineObserver *O : Obs)
      O->onSend(M, ChannelId, Writer);
  }
  void onRecv(const Machine &M, uint32_t ChannelId, int Reader) override {
    for (MachineObserver *O : Obs)
      O->onRecv(M, ChannelId, Reader);
  }
  void onAlloc(const Machine &M, const Value &Obj) override {
    for (MachineObserver *O : Obs)
      O->onAlloc(M, Obj);
  }
  void onInstr(const Machine &M, unsigned Proc, unsigned PC) override {
    for (MachineObserver *O : Obs)
      O->onInstr(M, Proc, PC);
  }
  void onBlock(const Machine &M, unsigned Proc, uint32_t ChannelId) override {
    for (MachineObserver *O : Obs)
      O->onBlock(M, Proc, ChannelId);
  }
  void onUnblock(const Machine &M, unsigned Proc,
                 uint32_t ChannelId) override {
    for (MachineObserver *O : Obs)
      O->onUnblock(M, Proc, ChannelId);
  }
  void onAltChoice(const Machine &M, unsigned Proc,
                   unsigned CaseIndex) override {
    for (MachineObserver *O : Obs)
      O->onAltChoice(M, Proc, CaseIndex);
  }

private:
  std::vector<MachineObserver *> Obs;
};

} // namespace obs
} // namespace esp

#endif // ESP_OBS_TRACINGOBSERVER_H

//===--- Json.cpp - Minimal JSON value, parser, and printer -----------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace esp;
using namespace esp::obs;

//===----------------------------------------------------------------------===//
// Construction and access
//===----------------------------------------------------------------------===//

JsonValue JsonValue::boolean(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.Bool = B;
  return V;
}

JsonValue JsonValue::integer(int64_t I) {
  JsonValue V;
  V.K = Kind::Int;
  V.Int = I;
  return V;
}

JsonValue JsonValue::number(double D) {
  JsonValue V;
  V.K = Kind::Double;
  V.Dbl = D;
  return V;
}

JsonValue JsonValue::str(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

JsonValue JsonValue::array() {
  JsonValue V;
  V.K = Kind::Array;
  return V;
}

JsonValue JsonValue::object() {
  JsonValue V;
  V.K = Kind::Object;
  return V;
}

bool JsonValue::has(std::string_view Key) const {
  for (const auto &M : Members)
    if (M.first == Key)
      return true;
  return false;
}

const JsonValue &JsonValue::get(std::string_view Key) const {
  static const JsonValue Null;
  for (const auto &M : Members)
    if (M.first == Key)
      return M.second;
  return Null;
}

void JsonValue::set(std::string Key, JsonValue V) {
  for (auto &M : Members) {
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  }
  Members.emplace_back(std::move(Key), std::move(V));
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

void esp::obs::appendJsonEscaped(std::string &Out, std::string_view Text) {
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

namespace {

void dumpTo(const JsonValue &V, std::string &Out, unsigned Indent,
            unsigned Depth) {
  auto newline = [&](unsigned D) {
    if (Indent == 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * D, ' ');
  };
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case JsonValue::Kind::Int: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(V.asInt()));
    Out += Buf;
    break;
  }
  case JsonValue::Kind::Double: {
    double D = V.asDouble();
    if (!std::isfinite(D)) {
      Out += "null"; // JSON has no Inf/NaN.
      break;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
    break;
  }
  case JsonValue::Kind::String:
    Out += '"';
    appendJsonEscaped(Out, V.asString());
    Out += '"';
    break;
  case JsonValue::Kind::Array: {
    Out += '[';
    for (size_t I = 0; I != V.size(); ++I) {
      if (I)
        Out += ',';
      newline(Depth + 1);
      dumpTo(V.at(I), Out, Indent, Depth + 1);
    }
    if (V.size())
      newline(Depth);
    Out += ']';
    break;
  }
  case JsonValue::Kind::Object: {
    Out += '{';
    const auto &Members = V.members();
    for (size_t I = 0; I != Members.size(); ++I) {
      if (I)
        Out += ',';
      newline(Depth + 1);
      Out += '"';
      appendJsonEscaped(Out, Members[I].first);
      Out += Indent ? "\": " : "\":";
      dumpTo(Members[I].second, Out, Indent, Depth + 1);
    }
    if (!Members.empty())
      newline(Depth);
    Out += '}';
    break;
  }
  }
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool run(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  bool fail(const std::string &Message) {
    Error = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected '\"'");
    ++Pos;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // UTF-8 encode (no surrogate-pair handling; trace content is
        // ASCII plus the occasional control escape).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    bool IsDouble = false;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsDouble = true;
      ++Pos;
      while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(
                                      Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsDouble = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(
                                      Text[Pos])))
        ++Pos;
    }
    std::string Num(Text.substr(Start, Pos - Start));
    if (Num.empty() || Num == "-")
      return fail("malformed number");
    if (IsDouble)
      Out = JsonValue::number(std::strtod(Num.c_str(), nullptr));
    else
      Out = JsonValue::integer(std::strtoll(Num.c_str(), nullptr, 10));
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (++Depth > 256)
      return fail("nesting too deep");
    bool OK = parseValueInner(Out);
    --Depth;
    return OK;
  }

  bool parseValueInner(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == 'n')
      return literal("null") ? (Out = JsonValue::null(), true)
                             : fail("bad literal");
    if (C == 't')
      return literal("true") ? (Out = JsonValue::boolean(true), true)
                             : fail("bad literal");
    if (C == 'f')
      return literal("false") ? (Out = JsonValue::boolean(false), true)
                              : fail("bad literal");
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::str(std::move(S));
      return true;
    }
    if (C == '[') {
      ++Pos;
      Out = JsonValue::array();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JsonValue Elem;
        if (!parseValue(Elem))
          return false;
        Out.push(std::move(Elem));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '{') {
      ++Pos;
      Out = JsonValue::object();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        JsonValue Val;
        if (!parseValue(Val))
          return false;
        Out.set(std::move(Key), std::move(Val));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C)))
      return parseNumber(Out);
    return fail("unexpected character");
  }

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;
  unsigned Depth = 0;
};

} // namespace

std::string JsonValue::dump(unsigned Indent) const {
  std::string Out;
  dumpTo(*this, Out, Indent, 0);
  return Out;
}

bool esp::obs::parseJson(std::string_view Text, JsonValue &Out,
                         std::string &Error) {
  Parser P(Text, Error);
  return P.run(Out);
}

//===--- TracingObserver.cpp - MachineObserver -> TraceWriter ---------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/TracingObserver.h"

#include "frontend/AST.h"
#include "ir/IR.h"

using namespace esp;
using namespace esp::obs;

TracingObserver::TracingObserver(TraceWriter &Writer, Clock C, uint32_t Pid)
    : W(Writer), C(std::move(C)), Pid(Pid) {}

uint64_t TracingObserver::now(const Machine &M) const {
  return C ? C() : M.stats().Instructions;
}

const std::string &TracingObserver::channelName(uint32_t ChannelId) const {
  static const std::string Unknown = "chan?";
  return ChannelId < ChanNames.size() ? ChanNames[ChannelId] : Unknown;
}

void TracingObserver::attach(const Machine &M,
                             const std::string &ProcessName) {
  const ModuleIR &Module = M.module();
  W.nameProcess(Pid, ProcessName);
  W.nameThread(Pid, 0, "environment");
  ProcNames.clear();
  for (size_t I = 0; I != Module.Procs.size(); ++I) {
    ProcNames.push_back(Module.Procs[I].Proc->Name);
    W.nameThread(Pid, static_cast<uint32_t>(I) + 1, ProcNames.back());
  }
  ChanNames.clear();
  if (Module.Prog) {
    for (const auto &Chan : Module.Prog->Channels) {
      if (Chan->Id >= ChanNames.size())
        ChanNames.resize(Chan->Id + 1, "chan?");
      ChanNames[Chan->Id] = Chan->Name;
    }
  }
}

void TracingObserver::heapCounters(const Machine &M, uint64_t Ts) {
  uint64_t Live = M.heap().getLiveCount();
  if (Live == LastHeapLive)
    return;
  LastHeapLive = Live;
  W.counter(Pid, "heap", "live", static_cast<int64_t>(Live), Ts);
  W.counter(Pid, "heap", "allocated",
            static_cast<int64_t>(M.heap().getTotalAllocations()), Ts);
}

void TracingObserver::onInstr(const Machine &M, unsigned Proc, unsigned PC) {
  (void)PC;
  if (CurProc == static_cast<int>(Proc))
    return;
  uint64_t Ts = now(M);
  if (CurProc >= 0)
    W.sliceEnd(Pid, tidOf(CurProc), Ts);
  static const std::string Anon = "proc?";
  const std::string &Name =
      Proc < ProcNames.size() ? ProcNames[Proc] : Anon;
  W.sliceBegin(Pid, tidOf(static_cast<int>(Proc)), Name, Ts);
  CurProc = static_cast<int>(Proc);
}

void TracingObserver::onBlock(const Machine &M, unsigned Proc,
                              uint32_t ChannelId) {
  (void)ChannelId;
  uint64_t Ts = now(M);
  if (CurProc == static_cast<int>(Proc)) {
    W.sliceEnd(Pid, tidOf(CurProc), Ts);
    CurProc = -1;
  }
  heapCounters(M, Ts);
}

void TracingObserver::onSend(const Machine &M, uint32_t ChannelId,
                             int Writer) {
  ++FlowSeq;
  W.flowStart(Pid, tidOf(Writer), channelName(ChannelId), FlowSeq, now(M));
}

void TracingObserver::onRecv(const Machine &M, uint32_t ChannelId,
                             int Reader) {
  // onRecv always follows its onSend immediately (the transfer commit
  // emits the pair), so the open FlowSeq is the matching id.
  W.flowEnd(Pid, tidOf(Reader), channelName(ChannelId), FlowSeq, now(M));
}

void TracingObserver::onAlloc(const Machine &M, const Value &Obj) {
  (void)Obj;
  heapCounters(M, now(M));
}

void TracingObserver::onStep(const Machine &M, StepResult Result) {
  if (Result == StepResult::Halted || Result == StepResult::Errored)
    finishTrace(M);
}

void TracingObserver::finishTrace(const Machine &M) {
  uint64_t Ts = now(M);
  if (CurProc >= 0) {
    W.sliceEnd(Pid, tidOf(CurProc), Ts);
    CurProc = -1;
  }
  LastHeapLive = UINT64_MAX;
  heapCounters(M, Ts);
  W.finish(Ts);
}

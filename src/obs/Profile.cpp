//===--- Profile.cpp - IR-level execution profiler --------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "frontend/AST.h"
#include "ir/IR.h"
#include "support/SourceManager.h"

#include <algorithm>
#include <sstream>

using namespace esp;
using namespace esp::obs;

namespace {

constexpr uint64_t kNotBlocked = UINT64_MAX;

const char *instKindName(InstKind K) {
  switch (K) {
  case InstKind::DeclInit:
    return "declinit";
  case InstKind::Store:
    return "store";
  case InstKind::Branch:
    return "branch";
  case InstKind::Jump:
    return "jump";
  case InstKind::Block:
    return "block";
  case InstKind::Link:
    return "link";
  case InstKind::Unlink:
    return "unlink";
  case InstKind::Assert:
    return "assert";
  case InstKind::Halt:
    return "halt";
  }
  return "?";
}

} // namespace

IrProfiler::IrProfiler(const ModuleIR &Module) : Module(Module) {
  StepCounts.resize(Module.Procs.size());
  for (size_t I = 0; I != Module.Procs.size(); ++I)
    StepCounts[I].assign(Module.Procs[I].Insts.size(), 0);
  BlockedSince.assign(Module.Procs.size(), kNotBlocked);
  AltChoices.assign(Module.Procs.size(), 0);
  if (Module.Prog) {
    for (const auto &Chan : Module.Prog->Channels) {
      if (Chan->Id >= ChanNames.size()) {
        ChanNames.resize(Chan->Id + 1, "chan?");
        ChanBlocked.resize(Chan->Id + 1);
      }
      ChanNames[Chan->Id] = Chan->Name;
    }
  }
}

void IrProfiler::onInstr(const Machine &M, unsigned Proc, unsigned PC) {
  (void)M;
  if (Proc < StepCounts.size() && PC < StepCounts[Proc].size())
    ++StepCounts[Proc][PC];
}

void IrProfiler::onBlock(const Machine &M, unsigned Proc,
                         uint32_t ChannelId) {
  (void)ChannelId;
  if (Proc < BlockedSince.size())
    BlockedSince[Proc] = M.stats().Instructions;
}

void IrProfiler::onUnblock(const Machine &M, unsigned Proc,
                           uint32_t ChannelId) {
  if (Proc >= BlockedSince.size() || BlockedSince[Proc] == kNotBlocked)
    return;
  uint64_t Waited = M.stats().Instructions - BlockedSince[Proc];
  BlockedSince[Proc] = kNotBlocked;
  if (ChannelId >= ChanBlocked.size())
    ChanBlocked.resize(ChannelId + 1);
  ChanBlocked[ChannelId].Blocked += Waited;
  ++ChanBlocked[ChannelId].Commits;
}

void IrProfiler::onAltChoice(const Machine &M, unsigned Proc,
                             unsigned CaseIndex) {
  (void)M;
  (void)CaseIndex;
  if (Proc < AltChoices.size())
    ++AltChoices[Proc];
}

uint64_t IrProfiler::totalSteps() const {
  uint64_t Total = 0;
  for (const auto &Counts : StepCounts)
    for (uint64_t N : Counts)
      Total += N;
  return Total;
}

std::string IrProfiler::report(const SourceManager *SM, unsigned TopN,
                               bool Compact) const {
  struct Hot {
    unsigned Proc;
    unsigned PC;
    uint64_t Count;
  };
  std::vector<Hot> Hots;
  for (unsigned P = 0; P != StepCounts.size(); ++P)
    for (unsigned PC = 0; PC != StepCounts[P].size(); ++PC)
      if (StepCounts[P][PC])
        Hots.push_back({P, PC, StepCounts[P][PC]});
  std::stable_sort(Hots.begin(), Hots.end(),
                   [](const Hot &A, const Hot &B) { return A.Count > B.Count; });
  uint64_t Total = totalSteps();

  std::ostringstream OS;
  OS << "IR profile: " << Total << " instruction steps\n";
  OS << "hotspots (top " << std::min<size_t>(TopN, Hots.size()) << "):\n";
  char Buf[160];
  for (size_t I = 0; I != Hots.size() && I != TopN; ++I) {
    const Hot &H = Hots[I];
    const Inst &Ins = Module.Procs[H.Proc].Insts[H.PC];
    double Pct =
        Total ? 100.0 * static_cast<double>(H.Count) / Total : 0.0;
    std::snprintf(Buf, sizeof(Buf), "  %10llu  %5.1f%%  %-12s pc %-4u %s",
                  static_cast<unsigned long long>(H.Count), Pct,
                  Module.Procs[H.Proc].Proc->Name.c_str(), H.PC,
                  instKindName(Ins.Kind));
    OS << Buf;
    if (SM) {
      DecodedLoc Loc = SM->decode(Ins.Loc);
      if (Loc.Line)
        OS << "  (line " << Loc.Line << ")";
    }
    OS << "\n";
  }
  if (Compact)
    return OS.str();

  bool AnyChan = false;
  for (const ChanStat &S : ChanBlocked)
    AnyChan |= S.Commits != 0;
  if (AnyChan) {
    OS << "blocked time per channel (instruction-count time):\n";
    for (size_t C = 0; C != ChanBlocked.size(); ++C) {
      const ChanStat &S = ChanBlocked[C];
      if (!S.Commits)
        continue;
      std::snprintf(Buf, sizeof(Buf), "  %-12s %8llu commits %10llu waited\n",
                    C < ChanNames.size() ? ChanNames[C].c_str() : "chan?",
                    static_cast<unsigned long long>(S.Commits),
                    static_cast<unsigned long long>(S.Blocked));
      OS << Buf;
    }
  }
  bool AnyAlt = false;
  for (uint64_t N : AltChoices)
    AnyAlt |= N != 0;
  if (AnyAlt) {
    OS << "alt commits per process:\n";
    for (size_t P = 0; P != AltChoices.size(); ++P)
      if (AltChoices[P])
        OS << "  " << Module.Procs[P].Proc->Name << "  " << AltChoices[P]
           << "\n";
  }
  return OS.str();
}

//===--- Trace.h - Chrome trace_event JSON writer ---------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TraceWriter buffers Chrome trace_event records and serializes them as
/// a JSON object loadable in chrome://tracing and Perfetto. Tracks are
/// (pid, tid) pairs — one per ESP process, named via metadata events.
///
/// Slices are recorded as begin/end pairs: sliceEnd() emits *both* the
/// B and the E event (the B with the timestamp saved at sliceBegin), so
/// pairs are matched by construction, and finish() closes anything still
/// open. json() sorts events by timestamp (stably, so a B never follows
/// its own E), which keeps `ts` monotonically non-decreasing per track —
/// the structural properties tests/test_obs.cpp pins.
///
/// Timestamps are microseconds of whatever clock the producer uses: the
/// runtime tracer uses virtual time (1 instruction = 1 us, perfectly
/// deterministic), the simulator uses EventQueue time.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_OBS_TRACE_H
#define ESP_OBS_TRACE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace esp {
namespace obs {

class TraceWriter {
public:
  /// Metadata: names the process-level track group.
  void nameProcess(uint32_t Pid, std::string Name);
  /// Metadata: names one track.
  void nameThread(uint32_t Pid, uint32_t Tid, std::string Name);

  /// Opens a slice on (Pid, Tid). Slices on one track may nest.
  void sliceBegin(uint32_t Pid, uint32_t Tid, std::string Name, uint64_t Ts);
  /// Closes the innermost open slice; emits its B and E events. End
  /// timestamps are clamped to the begin (time never runs backwards
  /// within a slice). No-op if nothing is open.
  void sliceEnd(uint32_t Pid, uint32_t Tid, uint64_t Ts);

  /// Counter track sample ("C" event), one series per call.
  void counter(uint32_t Pid, std::string Name, std::string Series,
               int64_t Value, uint64_t Ts);

  /// Flow arrow between tracks ("s"/"f" events with a shared id);
  /// renders channel sends as arrows from writer to reader.
  void flowStart(uint32_t Pid, uint32_t Tid, std::string Name, uint64_t Id,
                 uint64_t Ts);
  void flowEnd(uint32_t Pid, uint32_t Tid, std::string Name, uint64_t Id,
               uint64_t Ts);

  /// Instantaneous marker ("i" event, thread scope).
  void instant(uint32_t Pid, uint32_t Tid, std::string Name, uint64_t Ts);

  /// Closes every open slice at \p Ts. Idempotent.
  void finish(uint64_t Ts);

  /// The complete trace JSON ({"traceEvents": [...]}). Does not finish()
  /// implicitly — callers close slices first.
  std::string json() const;

  /// Writes json() to \p Path; false on I/O failure.
  bool writeFile(const std::string &Path) const;

  size_t eventCount() const { return Events.size(); }

private:
  struct Event {
    char Phase;
    uint64_t Ts = 0;
    uint32_t Pid = 0;
    uint32_t Tid = 0;
    std::string Name;
    uint64_t Id = 0;      // Flow events.
    int64_t Value = 0;    // Counter events.
    std::string Series;   // Counter series / metadata name payload.
  };

  struct OpenSlice {
    std::string Name;
    uint64_t Ts;
  };

  std::vector<Event> Meta;   // Metadata events, emitted first.
  std::vector<Event> Events; // Everything else, sorted on output.
  std::map<std::pair<uint32_t, uint32_t>, std::vector<OpenSlice>> Open;
};

} // namespace obs
} // namespace esp

#endif // ESP_OBS_TRACE_H

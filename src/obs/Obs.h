//===--- Obs.h - Global observability kill-switch ---------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one global switch for the observability layer (src/obs). Tools
/// flip it on when a tracing/profiling/metrics flag is passed; every
/// optional collection site (driver stage timers, bench observers)
/// checks it first, so a default run pays a single relaxed atomic load
/// at most — and usually nothing, because the observer pointers those
/// sites guard on are null anyway.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_OBS_OBS_H
#define ESP_OBS_OBS_H

#include <atomic>

namespace esp {
namespace obs {

namespace detail {
inline std::atomic<bool> Enabled{false};
} // namespace detail

/// True when an observability consumer (trace, profile, metrics,
/// progress) is active in this process.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

inline void setEnabled(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

} // namespace obs
} // namespace esp

#endif // ESP_OBS_OBS_H

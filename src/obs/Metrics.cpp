//===--- Metrics.cpp - Sharded counters, gauges, and histograms -------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <algorithm>
#include <bit>
#include <sstream>

using namespace esp;
using namespace esp::obs;

unsigned esp::obs::metricShard() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Shard =
      Next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return Shard;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

void Histogram::record(uint64_t Sample, unsigned Shard) {
  unsigned Bucket = Sample == 0 ? 0 : 64 - std::countl_zero(Sample);
  if (Bucket >= kBuckets)
    Bucket = kBuckets - 1;
  Cell &C = Cells[Shard % kMetricShards];
  C.B[Bucket].fetch_add(1, std::memory_order_relaxed);
  C.Sum.fetch_add(Sample, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  uint64_t N = 0;
  for (const Cell &C : Cells)
    for (const auto &B : C.B)
      N += B.load(std::memory_order_relaxed);
  return N;
}

uint64_t Histogram::sum() const {
  uint64_t S = 0;
  for (const Cell &C : Cells)
    S += C.Sum.load(std::memory_order_relaxed);
  return S;
}

std::array<uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::array<uint64_t, kBuckets> Out{};
  for (const Cell &C : Cells)
    for (unsigned I = 0; I != kBuckets; ++I)
      Out[I] += C.B[I].load(std::memory_order_relaxed);
  return Out;
}

uint64_t Histogram::quantileBound(double Q) const {
  std::array<uint64_t, kBuckets> B = buckets();
  uint64_t Total = 0;
  for (uint64_t N : B)
    Total += N;
  if (Total == 0)
    return 0;
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total));
  uint64_t Seen = 0;
  for (unsigned I = 0; I != kBuckets; ++I) {
    Seen += B[I];
    if (Seen > Rank)
      return I == 0 ? 0 : (uint64_t{1} << I) - 1;
  }
  return UINT64_MAX;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

namespace {

template <typename Deque>
auto &findOrCreate(Deque &D, std::string_view Name, std::mutex &M) {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &E : D)
    if (E.Name == Name)
      return E.Metric;
  D.emplace_back();
  D.back().Name = std::string(Name);
  return D.back().Metric;
}

} // namespace

Counter &MetricsRegistry::counter(std::string_view Name) {
  return findOrCreate(Counters, Name, M);
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  return findOrCreate(Gauges, Name, M);
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  return findOrCreate(Histograms, Name, M);
}

JsonValue MetricsRegistry::json() const {
  std::lock_guard<std::mutex> Lock(M);
  JsonValue Root = JsonValue::object();
  JsonValue C = JsonValue::object();
  for (const auto &E : Counters)
    C.set(E.Name, JsonValue::integer(static_cast<int64_t>(E.Metric.value())));
  Root.set("counters", std::move(C));
  JsonValue G = JsonValue::object();
  for (const auto &E : Gauges) {
    JsonValue V = JsonValue::object();
    V.set("value", JsonValue::integer(E.Metric.value()));
    V.set("max", JsonValue::integer(E.Metric.max()));
    G.set(E.Name, std::move(V));
  }
  Root.set("gauges", std::move(G));
  JsonValue H = JsonValue::object();
  for (const auto &E : Histograms) {
    JsonValue V = JsonValue::object();
    V.set("count",
          JsonValue::integer(static_cast<int64_t>(E.Metric.count())));
    V.set("sum", JsonValue::integer(static_cast<int64_t>(E.Metric.sum())));
    V.set("p50", JsonValue::integer(
                     static_cast<int64_t>(E.Metric.quantileBound(0.50))));
    V.set("p99", JsonValue::integer(
                     static_cast<int64_t>(E.Metric.quantileBound(0.99))));
    H.set(E.Name, std::move(V));
  }
  Root.set("histograms", std::move(H));
  return Root;
}

std::string MetricsRegistry::report() const {
  struct Line {
    std::string Name;
    std::string Text;
  };
  std::vector<Line> Lines;
  {
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &E : Counters)
      Lines.push_back({E.Name, std::to_string(E.Metric.value())});
    for (const auto &E : Gauges)
      Lines.push_back({E.Name, std::to_string(E.Metric.value()) + " (max " +
                                   std::to_string(E.Metric.max()) + ")"});
    for (const auto &E : Histograms)
      Lines.push_back(
          {E.Name, "count " + std::to_string(E.Metric.count()) + ", sum " +
                       std::to_string(E.Metric.sum()) + ", p50<=" +
                       std::to_string(E.Metric.quantileBound(0.50)) +
                       ", p99<=" +
                       std::to_string(E.Metric.quantileBound(0.99))});
  }
  std::sort(Lines.begin(), Lines.end(),
            [](const Line &A, const Line &B) { return A.Name < B.Name; });
  std::ostringstream OS;
  for (const Line &L : Lines)
    OS << "  " << L.Name << " = " << L.Text << "\n";
  return OS.str();
}

//===--- Profile.h - IR-level execution profiler ----------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IrProfiler counts executed steps per IR instruction (CompiledProgram
/// keeps a 1:1 PC mapping onto ProcIR::Insts, so counts attribute
/// directly to source constructs) and accumulates blocked time per
/// channel in instruction-count virtual time: a process is charged from
/// the moment it parks at a Block instruction until the commit, and the
/// wait is attributed to the channel that actually unblocked it (for an
/// alt, the winning alternative). The text report lists the hottest
/// instructions and the most-contended channels.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_OBS_PROFILE_H
#define ESP_OBS_PROFILE_H

#include "runtime/Machine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace esp {

class SourceManager;

namespace obs {

class IrProfiler : public MachineObserver {
public:
  explicit IrProfiler(const ModuleIR &Module);

  void onInstr(const Machine &M, unsigned Proc, unsigned PC) override;
  void onBlock(const Machine &M, unsigned Proc, uint32_t ChannelId) override;
  void onUnblock(const Machine &M, unsigned Proc,
                 uint32_t ChannelId) override;
  void onAltChoice(const Machine &M, unsigned Proc,
                   unsigned CaseIndex) override;

  /// Total instruction steps observed (equals ExecStats::Instructions
  /// accumulated while this observer was installed).
  uint64_t totalSteps() const;
  /// Per-instruction step counts for one process.
  const std::vector<uint64_t> &counts(unsigned Proc) const {
    return StepCounts[Proc];
  }
  uint64_t blockedTime(uint32_t ChannelId) const {
    return ChannelId < ChanBlocked.size() ? ChanBlocked[ChannelId].Blocked
                                          : 0;
  }
  uint64_t altChoices(unsigned Proc) const {
    return Proc < AltChoices.size() ? AltChoices[Proc] : 0;
  }

  /// Hotspot report: the top \p TopN instructions by step count, plus
  /// (unless \p Compact) per-channel blocked time and alt statistics.
  /// \p SM, when given, resolves source lines.
  std::string report(const SourceManager *SM = nullptr, unsigned TopN = 10,
                     bool Compact = false) const;

private:
  struct ChanStat {
    uint64_t Blocked = 0; ///< Instruction-count time waited.
    uint64_t Commits = 0; ///< Unblocks charged to this channel.
  };

  const ModuleIR &Module;
  std::vector<std::vector<uint64_t>> StepCounts; // [proc][pc]
  std::vector<uint64_t> BlockedSince;            // [proc]; sentinel = idle
  std::vector<ChanStat> ChanBlocked;             // [channel id]
  std::vector<uint64_t> AltChoices;              // [proc]
  std::vector<std::string> ChanNames;
};

} // namespace obs
} // namespace esp

#endif // ESP_OBS_PROFILE_H

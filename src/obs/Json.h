//===--- Json.h - Minimal JSON value, parser, and printer -------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON DOM for the observability layer: the trace and stats
/// emitters print through it (or are validated against it in tests), and
/// the structural trace tests parse their own output back. No external
/// dependency — the container ships no JSON library.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_OBS_JSON_H
#define ESP_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace esp {
namespace obs {

/// One JSON value. Numbers keep an integer/double distinction so trace
/// timestamps round-trip exactly.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool B);
  static JsonValue integer(int64_t I);
  static JsonValue number(double D);
  static JsonValue str(std::string S);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return Bool; }
  int64_t asInt() const { return K == Kind::Double ? (int64_t)Dbl : Int; }
  double asDouble() const { return K == Kind::Int ? (double)Int : Dbl; }
  const std::string &asString() const { return Str; }

  /// Array access.
  size_t size() const { return Elems.size(); }
  const JsonValue &at(size_t I) const { return Elems[I]; }
  void push(JsonValue V) { Elems.push_back(std::move(V)); }

  /// Object access. get() returns null for a missing key.
  bool has(std::string_view Key) const;
  const JsonValue &get(std::string_view Key) const;
  void set(std::string Key, JsonValue V);
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  /// Serializes the value. Compact (no whitespace) unless \p Indent > 0.
  std::string dump(unsigned Indent = 0) const;

private:
  Kind K = Kind::Null;
  bool Bool = false;
  int64_t Int = 0;
  double Dbl = 0;
  std::string Str;
  std::vector<JsonValue> Elems;
  // Insertion-ordered; lookup is linear (observability payloads are
  // small and mostly iterated, not queried).
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Appends \p Text to \p Out with JSON string escaping (no quotes).
void appendJsonEscaped(std::string &Out, std::string_view Text);

/// Parses \p Text into \p Out. Returns false and fills \p Error (with a
/// byte offset) on malformed input. Trailing garbage after the value is
/// an error.
bool parseJson(std::string_view Text, JsonValue &Out, std::string &Error);

} // namespace obs
} // namespace esp

#endif // ESP_OBS_JSON_H

//===--- Trace.cpp - Chrome trace_event JSON writer -------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <algorithm>
#include <fstream>

using namespace esp;
using namespace esp::obs;

void TraceWriter::nameProcess(uint32_t Pid, std::string Name) {
  Event E;
  E.Phase = 'M';
  E.Pid = Pid;
  E.Name = "process_name";
  E.Series = std::move(Name);
  Meta.push_back(std::move(E));
}

void TraceWriter::nameThread(uint32_t Pid, uint32_t Tid, std::string Name) {
  Event E;
  E.Phase = 'M';
  E.Pid = Pid;
  E.Tid = Tid;
  E.Name = "thread_name";
  E.Series = std::move(Name);
  Meta.push_back(std::move(E));
}

void TraceWriter::sliceBegin(uint32_t Pid, uint32_t Tid, std::string Name,
                             uint64_t Ts) {
  Open[{Pid, Tid}].push_back({std::move(Name), Ts});
}

void TraceWriter::sliceEnd(uint32_t Pid, uint32_t Tid, uint64_t Ts) {
  auto It = Open.find({Pid, Tid});
  if (It == Open.end() || It->second.empty())
    return;
  OpenSlice S = std::move(It->second.back());
  It->second.pop_back();
  uint64_t End = std::max(Ts, S.Ts);
  Event B;
  B.Phase = 'B';
  B.Ts = S.Ts;
  B.Pid = Pid;
  B.Tid = Tid;
  B.Name = S.Name;
  Events.push_back(std::move(B));
  Event E;
  E.Phase = 'E';
  E.Ts = End;
  E.Pid = Pid;
  E.Tid = Tid;
  Events.push_back(std::move(E));
}

void TraceWriter::counter(uint32_t Pid, std::string Name, std::string Series,
                          int64_t Value, uint64_t Ts) {
  Event E;
  E.Phase = 'C';
  E.Ts = Ts;
  E.Pid = Pid;
  E.Name = std::move(Name);
  E.Series = std::move(Series);
  E.Value = Value;
  Events.push_back(std::move(E));
}

void TraceWriter::flowStart(uint32_t Pid, uint32_t Tid, std::string Name,
                            uint64_t Id, uint64_t Ts) {
  Event E;
  E.Phase = 's';
  E.Ts = Ts;
  E.Pid = Pid;
  E.Tid = Tid;
  E.Name = std::move(Name);
  E.Id = Id;
  Events.push_back(std::move(E));
}

void TraceWriter::flowEnd(uint32_t Pid, uint32_t Tid, std::string Name,
                          uint64_t Id, uint64_t Ts) {
  Event E;
  E.Phase = 'f';
  E.Ts = Ts;
  E.Pid = Pid;
  E.Tid = Tid;
  E.Name = std::move(Name);
  E.Id = Id;
  Events.push_back(std::move(E));
}

void TraceWriter::instant(uint32_t Pid, uint32_t Tid, std::string Name,
                          uint64_t Ts) {
  Event E;
  E.Phase = 'i';
  E.Ts = Ts;
  E.Pid = Pid;
  E.Tid = Tid;
  E.Name = std::move(Name);
  Events.push_back(std::move(E));
}

void TraceWriter::finish(uint64_t Ts) {
  for (auto &[Track, Slices] : Open)
    while (!Slices.empty())
      sliceEnd(Track.first, Track.second, Ts);
}

std::string TraceWriter::json() const {
  // Stable sort keeps push order among equal timestamps, so an E pushed
  // before the next B at the same instant stays before it, and nested
  // slices keep their B-inside-B order.
  std::vector<const Event *> Sorted;
  Sorted.reserve(Events.size());
  for (const Event &E : Events)
    Sorted.push_back(&E);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const Event *A, const Event *B) { return A->Ts < B->Ts; });

  JsonValue Root = JsonValue::object();
  JsonValue Arr = JsonValue::array();
  auto emit = [&](const Event &E) {
    JsonValue O = JsonValue::object();
    O.set("ph", JsonValue::str(std::string(1, E.Phase)));
    O.set("pid", JsonValue::integer(E.Pid));
    O.set("tid", JsonValue::integer(E.Tid));
    if (E.Phase != 'M')
      O.set("ts", JsonValue::integer(static_cast<int64_t>(E.Ts)));
    if (E.Phase != 'E')
      O.set("name", JsonValue::str(E.Name));
    switch (E.Phase) {
    case 'M': {
      JsonValue Args = JsonValue::object();
      Args.set("name", JsonValue::str(E.Series));
      O.set("args", std::move(Args));
      break;
    }
    case 'C': {
      JsonValue Args = JsonValue::object();
      Args.set(E.Series, JsonValue::integer(E.Value));
      O.set("args", std::move(Args));
      break;
    }
    case 's':
      O.set("cat", JsonValue::str("channel"));
      O.set("id", JsonValue::integer(static_cast<int64_t>(E.Id)));
      break;
    case 'f':
      O.set("cat", JsonValue::str("channel"));
      O.set("id", JsonValue::integer(static_cast<int64_t>(E.Id)));
      O.set("bp", JsonValue::str("e"));
      break;
    case 'i':
      O.set("s", JsonValue::str("t"));
      break;
    default:
      break;
    }
    Arr.push(std::move(O));
  };
  for (const Event &E : Meta)
    emit(E);
  for (const Event *E : Sorted)
    emit(*E);
  Root.set("traceEvents", std::move(Arr));
  Root.set("displayTimeUnit", JsonValue::str("ms"));
  return Root.dump(1);
}

bool TraceWriter::writeFile(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << json() << "\n";
  return static_cast<bool>(Out);
}

//===--- Metrics.h - Sharded counters, gauges, and histograms ---*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named metrics shared by the runtime, the model checker,
/// and the simulator. Counters and histograms keep one cache-line-padded
/// shard per thread slot, so `--jobs N` search workers increment without
/// ever touching the same line; reads aggregate the shards. Totals are
/// exact once the writers have joined (relaxed atomics: every increment
/// lands, only the read-while-writing snapshot is approximate), and the
/// layout is clean under -fsanitize=thread.
///
/// Handles returned by the registry are stable for its lifetime;
/// registration takes a mutex, the increment paths are lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_OBS_METRICS_H
#define ESP_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace esp {
namespace obs {

class JsonValue;

/// Number of independent shards per counter/histogram. Threads map onto
/// shards round-robin; two threads share a shard only beyond this many
/// concurrent writers (still correct, just contended).
inline constexpr unsigned kMetricShards = 16;

/// The calling thread's shard slot, assigned on first use.
unsigned metricShard();

/// Monotone counter.
class Counter {
public:
  void add(uint64_t Delta = 1) { add(Delta, metricShard()); }
  void add(uint64_t Delta, unsigned Shard) {
    Cells[Shard % kMetricShards].V.fetch_add(Delta,
                                             std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t Sum = 0;
    for (const Cell &C : Cells)
      Sum += C.V.load(std::memory_order_relaxed);
    return Sum;
  }

private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> V{0};
  };
  std::array<Cell, kMetricShards> Cells;
};

/// Last-writer-wins instantaneous value (plus a max watermark).
class Gauge {
public:
  void set(int64_t Value) {
    V.store(Value, std::memory_order_relaxed);
    int64_t Seen = Max.load(std::memory_order_relaxed);
    while (Value > Seen &&
           !Max.compare_exchange_weak(Seen, Value,
                                      std::memory_order_relaxed))
      ;
  }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  int64_t max() const { return Max.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
  std::atomic<int64_t> Max{0};
};

/// Power-of-two-bucket histogram: bucket B counts samples in
/// [2^(B-1), 2^B) with bucket 0 holding zeros. Enough resolution for
/// latency/size distributions without per-sample allocation.
class Histogram {
public:
  static constexpr unsigned kBuckets = 64;

  void record(uint64_t Sample) { record(Sample, metricShard()); }
  void record(uint64_t Sample, unsigned Shard);

  uint64_t count() const;
  uint64_t sum() const;
  /// Aggregated per-bucket counts.
  std::array<uint64_t, kBuckets> buckets() const;
  /// Upper bound of the bucket containing the \p Q quantile (0..1).
  uint64_t quantileBound(double Q) const;

private:
  struct alignas(64) Cell {
    std::array<std::atomic<uint64_t>, kBuckets> B{};
    std::atomic<uint64_t> Sum{0};
  };
  std::array<Cell, kMetricShards> Cells;
};

/// Named metrics, grouped by kind. Lookup-or-create is mutex-guarded;
/// returned references remain valid for the registry's lifetime (deque
/// storage never moves elements).
class MetricsRegistry {
public:
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Snapshot of every metric as JSON:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  JsonValue json() const;

  /// Human-readable listing, one metric per line, sorted by name.
  std::string report() const;

private:
  template <typename T> struct Entry {
    std::string Name;
    T Metric;
  };

  mutable std::mutex M;
  std::deque<Entry<Counter>> Counters;
  std::deque<Entry<Gauge>> Gauges;
  std::deque<Entry<Histogram>> Histograms;
};

} // namespace obs
} // namespace esp

#endif // ESP_OBS_METRICS_H

//===--- Lowering.cpp - AST to state-machine IR ----------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/AST.h"
#include "ir/IR.h"

#include <cassert>
#include <sstream>

using namespace esp;

namespace {

/// Lowers one process body to a flat instruction list.
class ProcessLowerer {
public:
  explicit ProcessLowerer(ProcIR &Out) : Out(Out) {}

  void lower(const ProcessDecl &Proc) {
    lowerStmt(Proc.Body);
    emit(InstKind::Halt, Proc.Loc);
  }

private:
  unsigned emit(InstKind Kind, SourceLoc Loc) {
    Inst I;
    I.Kind = Kind;
    I.Loc = Loc;
    Out.Insts.push_back(std::move(I));
    return static_cast<unsigned>(Out.Insts.size() - 1);
  }

  unsigned here() const { return static_cast<unsigned>(Out.Insts.size()); }

  void lowerStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case StmtKind::Block:
      for (const Stmt *Child : ast_cast<BlockStmt>(S)->getBody())
        lowerStmt(Child);
      return;
    case StmtKind::Decl: {
      const DeclStmt *D = ast_cast<DeclStmt>(S);
      unsigned I = emit(InstKind::DeclInit, D->getLoc());
      Out.Insts[I].Var = D->getVar();
      Out.Insts[I].RHS = D->getInit();
      return;
    }
    case StmtKind::Assign: {
      const AssignStmt *A = ast_cast<AssignStmt>(S);
      unsigned I = emit(InstKind::Store, A->getLoc());
      Out.Insts[I].LHS = A->getLHS();
      Out.Insts[I].PlainStore = A->isPlainStore();
      Out.Insts[I].RHS = A->getRHS();
      return;
    }
    case StmtKind::If: {
      const IfStmt *If = ast_cast<IfStmt>(S);
      unsigned BranchI = emit(InstKind::Branch, If->getLoc());
      Out.Insts[BranchI].Cond = If->getCond();
      lowerStmt(If->getThen());
      if (If->getElse()) {
        unsigned SkipElseI = emit(InstKind::Jump, If->getLoc());
        Out.Insts[BranchI].Target = here();
        lowerStmt(If->getElse());
        Out.Insts[SkipElseI].Target = here();
      } else {
        Out.Insts[BranchI].Target = here();
      }
      return;
    }
    case StmtKind::While: {
      const WhileStmt *W = ast_cast<WhileStmt>(S);
      unsigned Top = here();
      unsigned BranchI = ~0u;
      if (W->getCond()) {
        BranchI = emit(InstKind::Branch, W->getLoc());
        Out.Insts[BranchI].Cond = W->getCond();
      }
      lowerStmt(W->getBody());
      unsigned BackI = emit(InstKind::Jump, W->getLoc());
      Out.Insts[BackI].Target = Top;
      if (BranchI != ~0u)
        Out.Insts[BranchI].Target = here();
      return;
    }
    case StmtKind::Alt: {
      const AltStmt *A = ast_cast<AltStmt>(S);
      unsigned BlockI = emit(InstKind::Block, A->getLoc());
      // Case bodies follow the Block; each ends with a jump to the join.
      std::vector<unsigned> ExitJumps;
      std::vector<IRCase> Cases;
      for (const AltCase &Case : A->getCases()) {
        IRCase IRC;
        IRC.Guard = Case.Guard;
        IRC.Channel = Case.Action.Channel;
        IRC.IsIn = Case.Action.IsIn;
        IRC.Pat = Case.Action.Pat;
        IRC.Out = Case.Action.Out;
        IRC.Loc = Case.Loc;
        IRC.Target = here();
        lowerStmt(Case.Body);
        ExitJumps.push_back(emit(InstKind::Jump, Case.Loc));
        Cases.push_back(std::move(IRC));
      }
      unsigned Join = here();
      for (unsigned J : ExitJumps)
        Out.Insts[J].Target = Join;
      Out.Insts[BlockI].Cases = std::move(Cases);
      return;
    }
    case StmtKind::Link: {
      unsigned I = emit(InstKind::Link, S->getLoc());
      Out.Insts[I].RHS = ast_cast<LinkStmt>(S)->getObj();
      return;
    }
    case StmtKind::Unlink: {
      unsigned I = emit(InstKind::Unlink, S->getLoc());
      Out.Insts[I].RHS = ast_cast<UnlinkStmt>(S)->getObj();
      return;
    }
    case StmtKind::Assert: {
      unsigned I = emit(InstKind::Assert, S->getLoc());
      Out.Insts[I].Cond = ast_cast<AssertStmt>(S)->getCond();
      return;
    }
    }
  }

  ProcIR &Out;
};

} // namespace

ModuleIR esp::lowerProgram(const Program &Prog) {
  ModuleIR Module;
  Module.Prog = &Prog;
  for (const std::unique_ptr<ProcessDecl> &Proc : Prog.Processes) {
    ProcIR PIR;
    PIR.Proc = Proc.get();
    ProcessLowerer Lowerer(PIR);
    Lowerer.lower(*Proc);
    Module.Procs.push_back(std::move(PIR));
  }
  return Module;
}

//===----------------------------------------------------------------------===//
// Dumping
//===----------------------------------------------------------------------===//

static void dumpExprShort(const Expr *E, std::ostringstream &OS) {
  if (!E) {
    OS << "<null>";
    return;
  }
  switch (E->getKind()) {
  case ExprKind::IntLit:
    OS << ast_cast<IntLitExpr>(E)->getValue();
    return;
  case ExprKind::BoolLit:
    OS << (ast_cast<BoolLitExpr>(E)->getValue() ? "true" : "false");
    return;
  case ExprKind::SelfId:
    OS << '@';
    return;
  case ExprKind::VarRef:
    OS << ast_cast<VarRefExpr>(E)->getName();
    return;
  case ExprKind::Field: {
    const FieldExpr *F = ast_cast<FieldExpr>(E);
    dumpExprShort(F->getBase(), OS);
    OS << '.' << F->getFieldName();
    return;
  }
  case ExprKind::Index: {
    const IndexExpr *I = ast_cast<IndexExpr>(E);
    dumpExprShort(I->getBase(), OS);
    OS << '[';
    dumpExprShort(I->getIndex(), OS);
    OS << ']';
    return;
  }
  case ExprKind::Unary: {
    const UnaryExpr *U = ast_cast<UnaryExpr>(E);
    OS << (U->getOp() == UnaryOp::Not ? '!' : '-');
    dumpExprShort(U->getSub(), OS);
    return;
  }
  case ExprKind::Binary: {
    const BinaryExpr *B = ast_cast<BinaryExpr>(E);
    OS << '(';
    dumpExprShort(B->getLHS(), OS);
    OS << ' ' << binaryOpSpelling(B->getOp()) << ' ';
    dumpExprShort(B->getRHS(), OS);
    OS << ')';
    return;
  }
  case ExprKind::RecordLit: {
    const RecordLitExpr *R = ast_cast<RecordLitExpr>(E);
    OS << (R->isMutableLit() ? "#{" : "{");
    for (size_t I = 0; I != R->getElems().size(); ++I) {
      if (I)
        OS << ", ";
      dumpExprShort(R->getElems()[I], OS);
    }
    OS << '}';
    return;
  }
  case ExprKind::UnionLit: {
    const UnionLitExpr *U = ast_cast<UnionLitExpr>(E);
    OS << (U->isMutableLit() ? "#{" : "{") << U->getFieldName() << " |> ";
    dumpExprShort(U->getValue(), OS);
    OS << '}';
    return;
  }
  case ExprKind::ArrayLit: {
    const ArrayLitExpr *A = ast_cast<ArrayLitExpr>(E);
    OS << (A->isMutableLit() ? "#{" : "{");
    dumpExprShort(A->getSize(), OS);
    OS << " -> ";
    dumpExprShort(A->getInit(), OS);
    OS << '}';
    return;
  }
  case ExprKind::Cast:
    OS << "cast(";
    dumpExprShort(ast_cast<CastExpr>(E)->getSub(), OS);
    OS << ')';
    return;
  }
}

static void dumpPatternShort(const Pattern *P, std::ostringstream &OS) {
  if (!P) {
    OS << "<null>";
    return;
  }
  switch (P->getKind()) {
  case PatternKind::Bind:
    OS << '$' << ast_cast<BindPattern>(P)->getName();
    return;
  case PatternKind::Match:
    dumpExprShort(ast_cast<MatchPattern>(P)->getValue(), OS);
    return;
  case PatternKind::Record: {
    const RecordPattern *R = ast_cast<RecordPattern>(P);
    OS << '{';
    for (size_t I = 0; I != R->getElems().size(); ++I) {
      if (I)
        OS << ", ";
      dumpPatternShort(R->getElems()[I], OS);
    }
    OS << '}';
    return;
  }
  case PatternKind::Union: {
    const UnionPattern *U = ast_cast<UnionPattern>(P);
    OS << '{' << U->getFieldName() << " |> ";
    dumpPatternShort(U->getSub(), OS);
    OS << '}';
    return;
  }
  }
}

std::string ProcIR::dump() const {
  std::ostringstream OS;
  OS << "process " << (Proc ? Proc->Name : "<?>") << " ("
     << blockPoints().size() << " states)\n";
  for (unsigned I = 0, E = Insts.size(); I != E; ++I) {
    const Inst &Ins = Insts[I];
    OS << "  " << I << ": ";
    switch (Ins.Kind) {
    case InstKind::DeclInit:
      OS << "decl " << Ins.Var->Name << " = ";
      dumpExprShort(Ins.RHS, OS);
      break;
    case InstKind::Store:
      OS << (Ins.PlainStore ? "store " : "match ");
      dumpPatternShort(Ins.LHS, OS);
      OS << " = ";
      dumpExprShort(Ins.RHS, OS);
      break;
    case InstKind::Branch:
      OS << "br ";
      dumpExprShort(Ins.Cond, OS);
      OS << " else -> " << Ins.Target;
      break;
    case InstKind::Jump:
      OS << "jmp -> " << Ins.Target;
      break;
    case InstKind::Block:
      OS << "block";
      for (const IRCase &Case : Ins.Cases) {
        OS << "\n       case ";
        if (Case.Guard) {
          OS << '(';
          dumpExprShort(Case.Guard, OS);
          OS << ") ";
        }
        OS << (Case.IsIn ? "in(" : "out(") << Case.Channel->Name << ", ";
        if (Case.IsIn)
          dumpPatternShort(Case.Pat, OS);
        else
          dumpExprShort(Case.Out, OS);
        OS << ") -> " << Case.Target;
        if (Case.LazyOut)
          OS << " [lazy]";
        if (Case.ElideRecordAlloc)
          OS << " [elide]";
      }
      break;
    case InstKind::Link:
      OS << "link ";
      dumpExprShort(Ins.RHS, OS);
      break;
    case InstKind::Unlink:
      OS << "unlink ";
      dumpExprShort(Ins.RHS, OS);
      break;
    case InstKind::Assert:
      OS << "assert ";
      dumpExprShort(Ins.Cond, OS);
      break;
    case InstKind::Halt:
      OS << "halt";
      break;
    }
    OS << '\n';
  }
  return OS.str();
}

std::string ModuleIR::dump() const {
  std::string Out;
  for (const ProcIR &P : Procs)
    Out += P.dump();
  return Out;
}

//===--- Passes.h - IR optimization passes ----------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optimization passes over the state-machine IR, reproducing §6.1:
///
///  * jump threading and unreachable-code compaction (the per-process
///    "traditional optimizations" the ESP compiler performs before
///    emitting C),
///  * dead-store elimination driven by a per-slot liveness dataflow (the
///    paper's copy propagation / dead code elimination pair: a copy whose
///    destination is dead is removed),
///  * allocation sinking: out-case expressions that allocate are marked
///    lazy so no allocation happens when another alternative commits,
///  * record-allocation elision: when an out expression is a record
///    literal and every reader of the channel destructures it with a
///    record pattern, the record shell is never allocated.
///
/// The SPIN translation (and hence the model checker) runs on the
/// *unoptimized* IR, matching the paper's choice to translate right after
/// type checking (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_IR_PASSES_H
#define ESP_IR_PASSES_H

#include "ir/IR.h"

namespace esp {

/// Which passes to run; used directly by the ablation benchmarks.
struct OptOptions {
  bool ThreadJumps = true;
  bool EliminateDeadStores = true;
  bool SinkAllocations = true;
  bool ElideRecordAllocs = true;

  static OptOptions none() {
    OptOptions O;
    O.ThreadJumps = O.EliminateDeadStores = O.SinkAllocations =
        O.ElideRecordAllocs = false;
    return O;
  }
  static OptOptions all() { return OptOptions(); }
};

/// Counters reported by optimizeModule for tests and ablation benches.
struct OptStats {
  unsigned JumpsThreaded = 0;
  unsigned DeadStoresRemoved = 0;
  unsigned InstsRemoved = 0;
  unsigned CasesLazified = 0;
  unsigned CasesElided = 0;
};

/// Runs the selected passes in place and returns what they did.
OptStats optimizeModule(ModuleIR &Module, const OptOptions &Options);

/// Per-instruction live-out slot sets for one process (bit I of word I/64
/// is slot I). Exposed for unit tests of the dataflow.
std::vector<std::vector<uint64_t>> computeLiveOut(const ProcIR &Proc);

} // namespace esp

#endif // ESP_IR_PASSES_H

//===--- IR.h - ESP state-machine IR ----------------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lowered form of an ESP program: one flat instruction list per
/// process. Control flow is explicit (Branch/Jump); every communication
/// point becomes a Block instruction whose cases correspond to the alt
/// alternatives. The Block instructions are exactly the *states* of the
/// process's state machine (§4.3: "each location in the process where it
/// can block implicitly represents a state in the state machine").
///
/// Instructions reference type-checked AST expressions and patterns
/// directly; the IR adds control-flow structure and per-case optimization
/// flags (§6.1: postponing allocation until after the rendezvous, and
/// eliding the record allocation when every reader destructures).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_IR_IR_H
#define ESP_IR_IR_H

#include "frontend/AST.h"

#include <string>
#include <vector>

namespace esp {

class DiagnosticEngine;

enum class InstKind : uint8_t {
  DeclInit, ///< Initialize variable Var with RHS.
  Store,    ///< Match/assign LHS pattern from RHS (plain store or destructure).
  Branch,   ///< If Cond is false, jump to Target; otherwise fall through.
  Jump,     ///< Unconditional jump to Target.
  Block,    ///< Communication point with one or more cases.
  Link,     ///< rc++ of the object RHS evaluates to.
  Unlink,   ///< rc-- (free at zero) of the object RHS evaluates to.
  Assert,   ///< Runtime/verifier-checked assertion on Cond.
  Halt,     ///< Process finished.
};

/// One alternative of a Block instruction.
struct IRCase {
  const Expr *Guard = nullptr; ///< Null means always enabled.
  const ChannelDecl *Channel = nullptr;
  bool IsIn = true;
  const Pattern *Pat = nullptr; ///< For in.
  const Expr *Out = nullptr;    ///< For out.
  unsigned Target = 0;          ///< Instruction index of the case body.
  SourceLoc Loc;

  /// §6.1 optimization: evaluate the out expression only when this case
  /// commits, so no allocation happens if another alternative succeeds.
  bool LazyOut = false;

  /// §6.1 optimization: the out expression is a record literal and every
  /// reader pattern on the channel destructures it, so the record shell
  /// need not be allocated at all; field values transfer directly.
  bool ElideRecordAlloc = false;

  /// Every reader pattern on the channel matches any value, so pairing
  /// never needs the out value; combined with LazyOut, the value is
  /// materialized only when this case commits (the full strength of the
  /// §6.1 allocation postponement).
  bool MatchFree = false;
};

/// One lowered instruction.
struct Inst {
  InstKind Kind = InstKind::Halt;
  SourceLoc Loc;

  // DeclInit.
  const VarInfo *Var = nullptr;
  // Store.
  const Pattern *LHS = nullptr;
  bool PlainStore = false;
  // DeclInit / Store / Link / Unlink.
  const Expr *RHS = nullptr;
  // Branch / Assert.
  const Expr *Cond = nullptr;
  // Branch / Jump.
  unsigned Target = 0;
  // Block.
  std::vector<IRCase> Cases;
};

/// The lowered form of one process.
struct ProcIR {
  const ProcessDecl *Proc = nullptr;
  std::vector<Inst> Insts;

  /// Indices of Block instructions; the states of the state machine.
  std::vector<unsigned> blockPoints() const {
    std::vector<unsigned> Points;
    for (unsigned I = 0, E = Insts.size(); I != E; ++I)
      if (Insts[I].Kind == InstKind::Block)
        Points.push_back(I);
    return Points;
  }

  /// Renders a readable listing for tests and debugging.
  std::string dump() const;
};

/// The lowered form of a whole program.
struct ModuleIR {
  const Program *Prog = nullptr;
  std::vector<ProcIR> Procs;

  std::string dump() const;
};

/// Lowers a checked program. Never fails on checked input.
ModuleIR lowerProgram(const Program &Prog);

} // namespace esp

#endif // ESP_IR_IR_H

//===--- Passes.cpp - IR optimization passes -------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Passes.h"

#include "frontend/PatternAnalysis.h"

#include <cassert>
#include <functional>

using namespace esp;

//===----------------------------------------------------------------------===//
// Slot use/def collection
//===----------------------------------------------------------------------===//

namespace {

using SlotSet = std::vector<uint64_t>;

void setSlot(SlotSet &Set, unsigned Slot) {
  Set[Slot / 64] |= uint64_t(1) << (Slot % 64);
}
bool testSlot(const SlotSet &Set, unsigned Slot) {
  return (Set[Slot / 64] >> (Slot % 64)) & 1;
}
bool unionInto(SlotSet &Dest, const SlotSet &Src) {
  bool Changed = false;
  for (size_t I = 0, E = Dest.size(); I != E; ++I) {
    uint64_t Merged = Dest[I] | Src[I];
    Changed |= Merged != Dest[I];
    Dest[I] = Merged;
  }
  return Changed;
}

void collectExprUses(const Expr *E, SlotSet &Uses) {
  if (!E)
    return;
  switch (E->getKind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::SelfId:
    return;
  case ExprKind::VarRef:
    if (const VarInfo *V = ast_cast<VarRefExpr>(E)->getVar())
      setSlot(Uses, V->Slot);
    return;
  case ExprKind::Field:
    collectExprUses(ast_cast<FieldExpr>(E)->getBase(), Uses);
    return;
  case ExprKind::Index: {
    const IndexExpr *I = ast_cast<IndexExpr>(E);
    collectExprUses(I->getBase(), Uses);
    collectExprUses(I->getIndex(), Uses);
    return;
  }
  case ExprKind::Unary:
    collectExprUses(ast_cast<UnaryExpr>(E)->getSub(), Uses);
    return;
  case ExprKind::Binary: {
    const BinaryExpr *B = ast_cast<BinaryExpr>(E);
    collectExprUses(B->getLHS(), Uses);
    collectExprUses(B->getRHS(), Uses);
    return;
  }
  case ExprKind::RecordLit:
    for (const Expr *Elem : ast_cast<RecordLitExpr>(E)->getElems())
      collectExprUses(Elem, Uses);
    return;
  case ExprKind::UnionLit:
    collectExprUses(ast_cast<UnionLitExpr>(E)->getValue(), Uses);
    return;
  case ExprKind::ArrayLit: {
    const ArrayLitExpr *A = ast_cast<ArrayLitExpr>(E);
    collectExprUses(A->getSize(), Uses);
    collectExprUses(A->getInit(), Uses);
    return;
  }
  case ExprKind::Cast:
    collectExprUses(ast_cast<CastExpr>(E)->getSub(), Uses);
    return;
  }
}

void collectPatternUsesDefs(const Pattern *P, SlotSet &Uses, SlotSet &Defs) {
  if (!P)
    return;
  switch (P->getKind()) {
  case PatternKind::Bind:
    if (const VarInfo *V = ast_cast<BindPattern>(P)->getVar())
      setSlot(Defs, V->Slot);
    return;
  case PatternKind::Match:
    collectExprUses(ast_cast<MatchPattern>(P)->getValue(), Uses);
    return;
  case PatternKind::Record:
    for (const Pattern *Child : ast_cast<RecordPattern>(P)->getElems())
      collectPatternUsesDefs(Child, Uses, Defs);
    return;
  case PatternKind::Union:
    collectPatternUsesDefs(ast_cast<UnionPattern>(P)->getSub(), Uses, Defs);
    return;
  }
}

/// Whole-variable definition slot of a plain store, or -1 if the store is
/// through a field/index (then the root is a use, not a def).
int plainStoreWholeSlot(const Inst &I) {
  assert(I.Kind == InstKind::Store && I.PlainStore);
  const MatchPattern *M = ast_cast<MatchPattern>(I.LHS);
  if (const VarRefExpr *V = ast_dyn_cast<VarRefExpr>(M->getValue()))
    if (V->getVar())
      return static_cast<int>(V->getVar()->Slot);
  return -1;
}

void collectInstUsesDefs(const Inst &I, SlotSet &Uses, SlotSet &Defs) {
  switch (I.Kind) {
  case InstKind::DeclInit:
    collectExprUses(I.RHS, Uses);
    setSlot(Defs, I.Var->Slot);
    return;
  case InstKind::Store:
    collectExprUses(I.RHS, Uses);
    if (I.PlainStore) {
      int WholeSlot = plainStoreWholeSlot(I);
      if (WholeSlot >= 0) {
        setSlot(Defs, static_cast<unsigned>(WholeSlot));
      } else {
        // Partial store: root object and any index expressions are used.
        collectExprUses(ast_cast<MatchPattern>(I.LHS)->getValue(), Uses);
      }
    } else {
      collectPatternUsesDefs(I.LHS, Uses, Defs);
    }
    return;
  case InstKind::Branch:
  case InstKind::Assert:
    collectExprUses(I.Cond, Uses);
    return;
  case InstKind::Jump:
  case InstKind::Halt:
    return;
  case InstKind::Link:
  case InstKind::Unlink:
    collectExprUses(I.RHS, Uses);
    return;
  case InstKind::Block:
    for (const IRCase &Case : I.Cases) {
      collectExprUses(Case.Guard, Uses);
      collectExprUses(Case.Out, Uses);
      if (Case.Pat)
        collectPatternUsesDefs(Case.Pat, Uses, Defs);
    }
    return;
  }
}

void collectSuccessors(const Inst &I, unsigned Index,
                       std::vector<unsigned> &Succs) {
  Succs.clear();
  switch (I.Kind) {
  case InstKind::Branch:
    Succs.push_back(Index + 1);
    Succs.push_back(I.Target);
    return;
  case InstKind::Jump:
    Succs.push_back(I.Target);
    return;
  case InstKind::Block:
    for (const IRCase &Case : I.Cases)
      Succs.push_back(Case.Target);
    return;
  case InstKind::Halt:
    return;
  default:
    Succs.push_back(Index + 1);
    return;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

std::vector<std::vector<uint64_t>> esp::computeLiveOut(const ProcIR &Proc) {
  unsigned NumInsts = static_cast<unsigned>(Proc.Insts.size());
  unsigned Words = (Proc.Proc->NumSlots + 63) / 64;
  std::vector<SlotSet> LiveOut(NumInsts, SlotSet(Words, 0));
  std::vector<SlotSet> Uses(NumInsts, SlotSet(Words, 0));
  std::vector<SlotSet> Defs(NumInsts, SlotSet(Words, 0));
  for (unsigned I = 0; I != NumInsts; ++I)
    collectInstUsesDefs(Proc.Insts[I], Uses[I], Defs[I]);

  bool Changed = true;
  std::vector<unsigned> Succs;
  while (Changed) {
    Changed = false;
    for (unsigned I = NumInsts; I-- > 0;) {
      collectSuccessors(Proc.Insts[I], I, Succs);
      SlotSet NewOut(Words, 0);
      for (unsigned S : Succs) {
        if (S >= NumInsts)
          continue;
        // live-in(S) = uses(S) | (live-out(S) & ~defs(S)).
        for (unsigned W = 0; W != Words; ++W)
          NewOut[W] |= Uses[S][W] | (LiveOut[S][W] & ~Defs[S][W]);
      }
      Changed |= unionInto(LiveOut[I], NewOut);
    }
  }
  return LiveOut;
}

//===----------------------------------------------------------------------===//
// Jump threading + compaction
//===----------------------------------------------------------------------===//

namespace {

unsigned resolveJumpChain(const std::vector<Inst> &Insts, unsigned Target) {
  unsigned Hops = 0;
  while (Target < Insts.size() && Insts[Target].Kind == InstKind::Jump &&
         Hops++ < Insts.size())
    Target = Insts[Target].Target;
  return Target;
}

unsigned threadJumps(ProcIR &Proc) {
  unsigned Count = 0;
  for (Inst &I : Proc.Insts) {
    switch (I.Kind) {
    case InstKind::Branch:
    case InstKind::Jump: {
      unsigned Resolved = resolveJumpChain(Proc.Insts, I.Target);
      if (Resolved != I.Target) {
        I.Target = Resolved;
        ++Count;
      }
      break;
    }
    case InstKind::Block:
      for (IRCase &Case : I.Cases) {
        unsigned Resolved = resolveJumpChain(Proc.Insts, Case.Target);
        if (Resolved != Case.Target) {
          Case.Target = Resolved;
          ++Count;
        }
      }
      break;
    default:
      break;
    }
  }
  return Count;
}

/// Removes unreachable instructions and jumps-to-next, remapping targets.
unsigned compact(ProcIR &Proc) {
  unsigned NumInsts = static_cast<unsigned>(Proc.Insts.size());
  std::vector<bool> Reachable(NumInsts, false);
  std::vector<unsigned> Worklist = {0};
  std::vector<unsigned> Succs;
  while (!Worklist.empty()) {
    unsigned I = Worklist.back();
    Worklist.pop_back();
    if (I >= NumInsts || Reachable[I])
      continue;
    Reachable[I] = true;
    collectSuccessors(Proc.Insts[I], I, Succs);
    for (unsigned S : Succs)
      Worklist.push_back(S);
  }

  std::vector<bool> Keep(NumInsts, false);
  for (unsigned I = 0; I != NumInsts; ++I) {
    if (!Reachable[I])
      continue;
    // A jump straight to the next kept instruction is a no-op... but we
    // can only know "next kept" after deciding everything; drop only
    // jumps to the textually next instruction (safe and common).
    if (Proc.Insts[I].Kind == InstKind::Jump && Proc.Insts[I].Target == I + 1)
      continue;
    Keep[I] = true;
  }

  // Remap: target T moves to the first kept instruction at or after T.
  std::vector<unsigned> NewIndex(NumInsts + 1, 0);
  unsigned Next = 0;
  for (unsigned I = 0; I != NumInsts; ++I) {
    NewIndex[I] = Next;
    if (Keep[I])
      ++Next;
  }
  NewIndex[NumInsts] = Next;

  unsigned Removed = NumInsts - Next;
  if (Removed == 0)
    return 0;

  std::vector<Inst> NewInsts;
  NewInsts.reserve(Next);
  for (unsigned I = 0; I != NumInsts; ++I) {
    if (!Keep[I])
      continue;
    Inst Ins = std::move(Proc.Insts[I]);
    switch (Ins.Kind) {
    case InstKind::Branch:
    case InstKind::Jump:
      Ins.Target = NewIndex[Ins.Target];
      break;
    case InstKind::Block:
      for (IRCase &Case : Ins.Cases)
        Case.Target = NewIndex[Case.Target];
      break;
    default:
      break;
    }
    NewInsts.push_back(std::move(Ins));
  }
  Proc.Insts = std::move(NewInsts);
  return Removed;
}

bool exprAllocates(const Expr *E) {
  if (!E)
    return false;
  switch (E->getKind()) {
  case ExprKind::RecordLit:
  case ExprKind::UnionLit:
  case ExprKind::ArrayLit:
  case ExprKind::Cast:
    return true;
  case ExprKind::Field:
    return exprAllocates(ast_cast<FieldExpr>(E)->getBase());
  case ExprKind::Index: {
    const IndexExpr *I = ast_cast<IndexExpr>(E);
    return exprAllocates(I->getBase()) || exprAllocates(I->getIndex());
  }
  case ExprKind::Unary:
    return exprAllocates(ast_cast<UnaryExpr>(E)->getSub());
  case ExprKind::Binary: {
    const BinaryExpr *B = ast_cast<BinaryExpr>(E);
    return exprAllocates(B->getLHS()) || exprAllocates(B->getRHS());
  }
  default:
    return false;
  }
}

unsigned eliminateDeadStores(ProcIR &Proc) {
  std::vector<SlotSet> LiveOut = computeLiveOut(Proc);
  unsigned Count = 0;
  for (unsigned I = 0, E = Proc.Insts.size(); I != E; ++I) {
    Inst &Ins = Proc.Insts[I];
    int Slot = -1;
    if (Ins.Kind == InstKind::DeclInit)
      Slot = static_cast<int>(Ins.Var->Slot);
    else if (Ins.Kind == InstKind::Store && Ins.PlainStore)
      Slot = plainStoreWholeSlot(Ins);
    if (Slot < 0)
      continue;
    if (testSlot(LiveOut[I], static_cast<unsigned>(Slot)))
      continue;
    // Removing an allocation that is never used is exactly the dead-code
    // elimination benefit the paper describes; scalar computations are
    // trivially removable too.
    Inst Replacement;
    Replacement.Kind = InstKind::Jump;
    Replacement.Loc = Ins.Loc;
    Replacement.Target = I + 1;
    Ins = std::move(Replacement);
    ++Count;
  }
  return Count;
}

} // namespace

//===----------------------------------------------------------------------===//
// Channel-level optimizations (§6.1)
//===----------------------------------------------------------------------===//

namespace {

/// True when every reader pattern of \p Chan destructures with a record
/// pattern, so the record shell can be elided. External-reader channels
/// are excluded: the C side receives a real object (§4.5).
bool allReadersDestructure(const Program &Prog, const ChannelDecl *Chan) {
  if (Chan->Role != ChannelRole::Internal)
    return false;
  std::vector<ChannelReader> Readers = collectChannelReaders(Prog, Chan);
  if (Readers.empty())
    return false;
  for (const ChannelReader &Reader : Readers)
    if (Reader.Pat->getKind() != PatternKind::Record)
      return false;
  return true;
}

} // namespace

OptStats esp::optimizeModule(ModuleIR &Module, const OptOptions &Options) {
  OptStats Stats;
  for (ProcIR &Proc : Module.Procs) {
    if (Options.EliminateDeadStores)
      Stats.DeadStoresRemoved += eliminateDeadStores(Proc);
    if (Options.ThreadJumps) {
      Stats.JumpsThreaded += threadJumps(Proc);
      Stats.InstsRemoved += compact(Proc);
    }
    for (Inst &I : Proc.Insts) {
      if (I.Kind != InstKind::Block)
        continue;
      for (IRCase &Case : I.Cases) {
        if (Case.IsIn)
          continue;
        if (Options.SinkAllocations && exprAllocates(Case.Out) &&
            !Case.LazyOut) {
          Case.LazyOut = true;
          ++Stats.CasesLazified;
        }
        if (Options.SinkAllocations && !Case.MatchFree) {
          // Pairing needs no value when every reader pattern is a
          // catch-all (pattern disjointness then guarantees at most one
          // reader process, so dispatch is value-free).
          std::vector<ChannelReader> Readers =
              collectChannelReaders(*Module.Prog, Case.Channel);
          bool AllCoverAll = !Readers.empty();
          for (const ChannelReader &Reader : Readers)
            AllCoverAll &= Reader.Abs.coversAll();
          Case.MatchFree = AllCoverAll;
        }
        if (Options.ElideRecordAllocs && !Case.ElideRecordAlloc &&
            ast_dyn_cast<RecordLitExpr>(Case.Out) &&
            allReadersDestructure(*Module.Prog, Case.Channel)) {
          Case.ElideRecordAlloc = true;
          ++Stats.CasesElided;
        }
      }
    }
  }
  return Stats;
}

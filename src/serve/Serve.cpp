//===--- Serve.cpp - Fleet-scale ESP serving runtime ------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TracingObserver.h"
#include "runtime/Machine.h"
#include "serve/ExternalPort.h"
#include "serve/Latency.h"
#include "vmmc/ServeFirmware.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

using namespace esp;
using namespace esp::serve;

namespace {

uint64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Slot readiness states. The word is the synchronization hinge between
// producers and workers: a slot is enqueued exactly once per Parked ->
// Queued transition, and only its current runner may move it back to
// Parked, so no slot is ever on two deques or run by two workers.
constexpr uint32_t kParked = 0;
constexpr uint32_t kQueued = 1;
constexpr uint32_t kRunning = 2;

struct Slot {
  explicit Slot(unsigned InboxCap) : Inbox(InboxCap) {}

  std::atomic<uint32_t> State{kParked};
  ExternalPort Inbox;
  std::unique_ptr<Machine> M;
  unsigned Home = 0;

  // Everything below is touched only by the worker currently Running the
  // slot; the Parked handoff (release store -> CAS -> queue mutex)
  // publishes it to the next runner.
  std::deque<uint64_t> PendingT0; ///< T0 of delivered, unanswered requests.
  uint64_t ConnResponses = 0;     ///< Responses since the last recycle.
  uint64_t Frags = 0;
  uint64_t Bytes = 0;
  uint64_t Checksum = 0;
  uint64_t Responses = 0;
  uint64_t HeapHighWater = 0; ///< Max live-heap watermark over recycles.
  uint64_t InstrAccum = 0;    ///< Instructions retired before recycles
                              ///< (reset() zeroes the machine's stats).
  std::unique_ptr<obs::TracingObserver> Tracer;
};

struct WorkerQueue {
  std::mutex M;
  std::deque<uint32_t> Q;
};

struct Fleet; // below

/// The machine side of a slot's inbox: ESP's external-writer protocol
/// (peek in produce, consume in accepted) over the bounded FIFO.
class PortReqWriter : public ExternalWriter {
public:
  explicit PortReqWriter(Slot &S) : S(S) {}

  int isReady() override { return S.Inbox.peek(Cur) ? 1 : 0; }

  void produce(int, Heap &, std::vector<Value> &Out) override {
    // Binder leaves of `Post( { $seq, $vAddr, $size } )`, in order.
    Out.push_back(Value::makeInt(static_cast<int64_t>(Cur.Seq)));
    Out.push_back(Value::makeInt(static_cast<int64_t>(Cur.VAddr)));
    Out.push_back(Value::makeInt(static_cast<int64_t>(Cur.Size)));
  }

  void accepted(int) override {
    S.Inbox.popFront();
    // FIFO pairing: responses come back in request order (one server
    // process, synchronous channels), so positional matching suffices.
    S.PendingT0.push_back(Cur.T0Ns);
  }

private:
  Slot &S;
  ServeEvent Cur;
};

/// The collector side: always ready, closes the latency measurement and
/// folds the response into the slot's running totals.
class RespCollector : public ExternalReader {
public:
  RespCollector(Slot &S, Fleet &F) : S(S), F(F) {}

  bool isReady() override { return true; }
  void consume(int, Heap &, const std::vector<Value> &Args) override;

private:
  Slot &S;
  Fleet &F;
};

struct Fleet {
  explicit Fleet(const ServeOptions &Options)
      : Opt(Options), Lat(Options.Workers) {}

  ServeOptions Opt;
  std::vector<std::unique_ptr<Slot>> Slots;
  std::vector<WorkerQueue> Queues;
  LatencyRecorder Lat;

  std::atomic<uint64_t> Responses{0};
  std::atomic<uint64_t> QueuedSlots{0};
  std::atomic<bool> Done{false};

  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> Parks{0};
  std::atomic<uint64_t> Wakes{0};
  std::atomic<uint64_t> Stalls{0};
  std::atomic<uint64_t> Resets{0};

  std::mutex IdleM;
  std::condition_variable IdleCV;

  std::mutex ErrM;
  std::string FirstError;

  void fail(const std::string &Message) {
    {
      std::lock_guard<std::mutex> Lock(ErrM);
      if (FirstError.empty())
        FirstError = Message;
    }
    Done.store(true, std::memory_order_seq_cst);
    IdleCV.notify_all();
  }

  /// Queued -> a worker deque. Producers call it after winning the
  /// Parked->Queued CAS; runners call it when the park-recheck found
  /// fresh events.
  void enqueue(uint32_t SlotIndex, unsigned Worker) {
    {
      std::lock_guard<std::mutex> Lock(Queues[Worker].M);
      Queues[Worker].Q.push_back(SlotIndex);
    }
    QueuedSlots.fetch_add(1, std::memory_order_relaxed);
    IdleCV.notify_one();
  }

  /// Wakes a slot if it is Parked; exactly one caller wins.
  void wake(uint32_t SlotIndex) {
    Slot &S = *Slots[SlotIndex];
    uint32_t Expected = kParked;
    if (S.State.compare_exchange_strong(Expected, kQueued,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      Wakes.fetch_add(1, std::memory_order_relaxed);
      enqueue(SlotIndex, S.Home);
    }
    // Queued or Running: the events are in the inbox; the runner's
    // drain-then-recheck picks them up.
  }

  /// Pops work for \p Worker: own deque front first, then steal from the
  /// back of the others. -1 when everything is empty.
  int dequeue(unsigned Worker) {
    {
      std::lock_guard<std::mutex> Lock(Queues[Worker].M);
      if (!Queues[Worker].Q.empty()) {
        uint32_t S = Queues[Worker].Q.front();
        Queues[Worker].Q.pop_front();
        QueuedSlots.fetch_sub(1, std::memory_order_relaxed);
        return static_cast<int>(S);
      }
    }
    for (unsigned I = 1; I < Queues.size(); ++I) {
      unsigned Victim = (Worker + I) % Queues.size();
      std::lock_guard<std::mutex> Lock(Queues[Victim].M);
      if (!Queues[Victim].Q.empty()) {
        uint32_t S = Queues[Victim].Q.back();
        Queues[Victim].Q.pop_back();
        QueuedSlots.fetch_sub(1, std::memory_order_relaxed);
        Steals.fetch_add(1, std::memory_order_relaxed);
        return static_cast<int>(S);
      }
    }
    return -1;
  }

  void runSlot(uint32_t SlotIndex);
  void workerMain(unsigned Worker);
};

void RespCollector::consume(int, Heap &, const std::vector<Value> &Args) {
  // Binder leaves of `Done( { $seq, $frags, $bytes, $sum } )`.
  uint64_t Seq = static_cast<uint64_t>(Args[0].Scalar);
  uint64_t Frags = static_cast<uint64_t>(Args[1].Scalar);
  uint64_t Bytes = static_cast<uint64_t>(Args[2].Scalar);
  uint64_t Sum = static_cast<uint64_t>(Args[3].Scalar);

  S.Frags += Frags;
  S.Bytes += Bytes;
  S.Checksum += vmmc::serveResponseDigest(Seq, Frags, Bytes, Sum);
  ++S.Responses;
  ++S.ConnResponses;

  if (!S.PendingT0.empty()) {
    uint64_t T0 = S.PendingT0.front();
    S.PendingT0.pop_front();
    uint64_t Now = nowNs();
    F.Lat.record(obs::metricShard(), Now > T0 ? Now - T0 : 0);
  }

  uint64_t Total = F.Responses.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Total >= F.Opt.Requests)
    F.IdleCV.notify_all(); // The producer waits for the last response.
}

void Fleet::runSlot(uint32_t SlotIndex) {
  Slot &S = *Slots[SlotIndex];
  S.State.store(kRunning, std::memory_order_relaxed);

  for (;;) {
    StepResult R = S.M->run();
    if (R == StepResult::Errored) {
      fail("machine " + std::to_string(SlotIndex) + ": " +
           std::string(runtimeErrorKindName(S.M->error().Kind)) +
           (S.M->error().Message.empty() ? "" : ": " + S.M->error().Message));
      return;
    }
    if (R == StepResult::Halted) {
      fail("machine " + std::to_string(SlotIndex) +
           ": firmware halted (server loop exited)");
      return;
    }

    // Quiescent: inbox drained, all responses emitted. Recycle point.
    if (Opt.ConnRequests != 0 && S.ConnResponses >= Opt.ConnRequests &&
        S.PendingT0.empty() && S.Inbox.empty()) {
      uint64_t HW = S.M->heap().getHighWater();
      if (HW > S.HeapHighWater)
        S.HeapHighWater = HW;
      if (Opt.Metrics)
        Opt.Metrics->histogram("serve.machine_heap_highwater").record(HW);
      S.InstrAccum += S.M->stats().Instructions;
      S.M->reset();
      S.M->start();
      S.ConnResponses = 0;
      Resets.fetch_add(1, std::memory_order_relaxed);
    }

    // Park, then recheck: a producer that pushed between our last drain
    // and the store sees Parked and re-wakes us — but it may also have
    // pushed *before* we parked and lost the CAS, so we must look again
    // ourselves. Either the recheck or the producer's wake runs the
    // slot; the CAS makes sure it is not both.
    S.State.store(kParked, std::memory_order_release);
    Parks.fetch_add(1, std::memory_order_relaxed);
    if (S.Inbox.empty() || Done.load(std::memory_order_relaxed))
      return;
    uint32_t Expected = kParked;
    if (!S.State.compare_exchange_strong(Expected, kRunning,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
      return; // A producer won the race; the slot is queued elsewhere.
  }
}

void Fleet::workerMain(unsigned Worker) {
  for (;;) {
    int SlotIndex = dequeue(Worker);
    if (SlotIndex >= 0) {
      runSlot(static_cast<uint32_t>(SlotIndex));
      continue;
    }
    if (Done.load(std::memory_order_seq_cst))
      return;
    // Timed wait instead of precise wakeup bookkeeping: a missed notify
    // costs at most one timeout period, and the recheck-after-park on
    // the slot side already guarantees no event is stranded forever.
    std::unique_lock<std::mutex> Lock(IdleM);
    IdleCV.wait_for(Lock, std::chrono::microseconds(500));
  }
}

} // namespace

ServeResult esp::serve::runServe(const ServeOptions &Options) {
  ServeResult Result;

  ServeOptions Opt = Options;
  if (Opt.Machines == 0)
    Opt.Machines = 1;
  if (Opt.Workers == 0)
    Opt.Workers = 1;
  if (Opt.InboxCap == 0)
    Opt.InboxCap = 1;
  if (Opt.Batch == 0)
    Opt.Batch = 1;
  if (Opt.Batch > Opt.InboxCap)
    Opt.Batch = Opt.InboxCap;
  if (Opt.Trace && Opt.Workers != 1)
    Opt.Trace = nullptr; // Tracing is defined for the deterministic case.

  LoadGenOptions LoadOpt;
  LoadOpt.Seed = Opt.Seed;
  LoadOpt.Machines = Opt.Machines;
  LoadOpt.Requests = Opt.Requests;
  LoadOpt.Batch = Opt.Batch;
  Result.Expected = LoadGen::expectedTotals(LoadOpt);

  // One compiled program for the whole fleet; each machine shares it and
  // owns only its dynamic state.
  std::unique_ptr<vmmc::ServeProgram> Firmware = vmmc::compileServeFirmware();
  std::shared_ptr<const CompiledProgram> Compiled =
      Machine::compileProgram(Firmware->Module);

  Fleet F(Opt);
  F.Queues = std::vector<WorkerQueue>(Opt.Workers);
  F.Slots.reserve(Opt.Machines);
  for (uint32_t I = 0; I != Opt.Machines; ++I) {
    auto S = std::make_unique<Slot>(Opt.InboxCap);
    S->Home = I % Opt.Workers;
    MachineOptions MOpt;
    S->M = std::make_unique<Machine>(Firmware->Module, MOpt, Compiled);
    S->M->bindWriter("Req", std::make_unique<PortReqWriter>(*S));
    S->M->bindReader("Resp", std::make_unique<RespCollector>(*S, F));
    if (Opt.Trace && I < Opt.TraceMachines) {
      S->Tracer = std::make_unique<obs::TracingObserver>(
          *Opt.Trace, nullptr, /*Pid=*/I + 1);
      S->Tracer->attach(*S->M, "machine" + std::to_string(I));
      S->M->setObserver(S->Tracer.get());
    }
    S->M->start();
    F.Slots.push_back(std::move(S));
  }

  uint64_t StartNs = nowNs();

  std::vector<std::thread> Workers;
  Workers.reserve(Opt.Workers);
  for (unsigned W = 0; W != Opt.Workers; ++W)
    Workers.emplace_back([&F, W] { F.workerMain(W); });

  // Closed-loop producer: generate bursts, stamp T0, push with
  // backpressure, wake the slot. Runs on the calling thread.
  {
    LoadGen Gen(LoadOpt);
    std::vector<ServeEvent> Burst;
    Burst.reserve(Opt.Batch);
    LoadRequest Req;
    bool Pending = false;
    uint64_t Pushed = 0;
    while (!F.Done.load(std::memory_order_relaxed)) {
      // Collect one burst: consecutive requests to the same machine.
      Burst.clear();
      uint32_t Target = 0;
      while (Burst.size() < Opt.Batch) {
        if (!Pending && !Gen.next(Req))
          break;
        Pending = true;
        if (!Burst.empty() && Req.Machine != Target)
          break; // Next burst; keep Req pending.
        Target = Req.Machine;
        Req.Ev.T0Ns = nowNs();
        Burst.push_back(Req.Ev);
        Pending = false;
      }
      if (Burst.empty())
        break; // Stream exhausted.

      size_t Offset = 0;
      while (Offset < Burst.size() &&
             !F.Done.load(std::memory_order_relaxed)) {
        size_t Took = F.Slots[Target]->Inbox.pushBatch(Burst.data() + Offset,
                                                       Burst.size() - Offset);
        if (Took > 0) {
          Offset += Took;
          F.wake(Target);
          continue;
        }
        // Inbox full: the slot has a deep backlog. Nudge it (its wake
        // may have been consumed already) and yield to the workers.
        F.Stalls.fetch_add(1, std::memory_order_relaxed);
        F.wake(Target);
        std::this_thread::yield();
      }
      Pushed += Offset;
      if (Opt.Metrics)
        Opt.Metrics->gauge("serve.queue_depth")
            .set(static_cast<int64_t>(
                F.QueuedSlots.load(std::memory_order_relaxed)));
    }

    // Wait for the fleet to answer everything (or fail). Timed waits:
    // the workers notify without holding IdleM (the counters are
    // atomics), so a bare wait could miss a notify that lands between
    // the predicate check and the sleep.
    std::unique_lock<std::mutex> Lock(F.IdleM);
    while (!F.Done.load(std::memory_order_relaxed) &&
           F.Responses.load(std::memory_order_relaxed) < Pushed)
      F.IdleCV.wait_for(Lock, std::chrono::milliseconds(1));
  }

  F.Done.store(true, std::memory_order_seq_cst);
  F.IdleCV.notify_all();
  for (std::thread &T : Workers)
    T.join();

  uint64_t EndNs = nowNs();

  // Aggregate the per-slot totals (single-threaded now; the joins above
  // publish every worker's writes).
  for (std::unique_ptr<Slot> &S : F.Slots) {
    Result.Totals.Responses += S->Responses;
    Result.Totals.Frags += S->Frags;
    Result.Totals.Bytes += S->Bytes;
    Result.Totals.Checksum += S->Checksum;
    if (S->Inbox.highWater() > Result.InboxHighWater)
      Result.InboxHighWater = S->Inbox.highWater();
    uint64_t HW = std::max<uint64_t>(S->HeapHighWater,
                                     S->M->heap().getHighWater());
    if (HW > Result.HeapHighWaterMax)
      Result.HeapHighWaterMax = HW;
    Result.InstrTotal += S->InstrAccum + S->M->stats().Instructions;
    if (S->Tracer) {
      S->Tracer->finishTrace(*S->M);
      S->M->setObserver(nullptr);
    }
  }

  Result.ElapsedNs = EndNs > StartNs ? EndNs - StartNs : 1;
  Result.RequestsPerSec =
      double(Result.Totals.Responses) * 1e9 / double(Result.ElapsedNs);
  Result.P50Ns = F.Lat.quantile(0.50);
  Result.P99Ns = F.Lat.quantile(0.99);
  Result.P999Ns = F.Lat.quantile(0.999);
  Result.Steals = F.Steals.load();
  Result.Parks = F.Parks.load();
  Result.Wakes = F.Wakes.load();
  Result.BackpressureStalls = F.Stalls.load();
  Result.Resets = F.Resets.load();

  if (Opt.Metrics) {
    obs::MetricsRegistry &M = *Opt.Metrics;
    M.counter("serve.requests").add(Opt.Requests);
    M.counter("serve.responses").add(Result.Totals.Responses);
    M.counter("serve.steals").add(Result.Steals);
    M.counter("serve.parks").add(Result.Parks);
    M.counter("serve.wakes").add(Result.Wakes);
    M.counter("serve.backpressure_stalls").add(Result.BackpressureStalls);
    M.counter("serve.resets").add(Result.Resets);
    M.counter("serve.instructions").add(Result.InstrTotal);
    for (std::unique_ptr<Slot> &S : F.Slots)
      M.histogram("serve.machine_heap_highwater")
          .record(S->M->heap().getHighWater());
  }

  {
    std::lock_guard<std::mutex> Lock(F.ErrM);
    Result.Error = F.FirstError;
  }
  if (Result.Error.empty() && Result.Totals != Result.Expected)
    Result.Error = "aggregate totals mismatch (fleet vs load-generator "
                   "prediction)";
  Result.Ok = Result.Error.empty();
  return Result;
}

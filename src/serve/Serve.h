//===--- Serve.h - Fleet-scale ESP serving runtime --------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet serving runtime: thousands of independent ESP machine
/// instances — one per simulated client connection, all sharing one
/// immutable CompiledProgram of the VMMC serve firmware — multiplexed
/// onto an N-worker work-stealing thread pool.
///
/// Each connection slot owns a bounded ExternalPort inbox (the
/// epoll-style readiness boundary) and a three-state readiness word:
///
///   Parked --CAS by producer--> Queued --dequeue--> Running --park-->
///   Parked (recheck inbox; self-requeue if events raced in)
///
/// A producer that lands events in a Parked slot's inbox wins the CAS
/// and enqueues the slot on its home worker's deque; idle workers steal
/// from the back of other deques. The runner drains the machine to
/// quiescence, parks, and rechecks the inbox — the recheck closes the
/// park/push race, so no event is ever stranded (lost-wakeup freedom;
/// the tsan CI job runs this path). Because a slot is Running on exactly
/// one worker at a time and every handoff goes through the state word
/// plus a queue mutex, machine state needs no locks of its own.
///
/// Determinism: the firmware's response is a pure function of the
/// request, so the aggregate totals (responses/frags/bytes/checksum)
/// are identical at any worker count and match LoadGen::expectedTotals
/// exactly — runServe() verifies this. See docs/serving.md.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SERVE_SERVE_H
#define ESP_SERVE_SERVE_H

#include "serve/LoadGen.h"

#include <cstdint>
#include <string>

namespace esp {

namespace obs {
class MetricsRegistry;
class TraceWriter;
} // namespace obs

namespace serve {

struct ServeOptions {
  /// Connection slots (machine instances) in the simulated cluster.
  uint32_t Machines = 256;
  /// Total requests the load generator drives across the fleet.
  uint64_t Requests = 10'000;
  /// Worker threads. 1 = fully deterministic scheduling order (the
  /// golden-totals tests run this way).
  unsigned Workers = 1;
  /// Per-slot inbox bound; producers stall (and count it) when full.
  unsigned InboxCap = 64;
  /// Max burst length: consecutive requests to one machine, and the
  /// event-delivery batch size at the readiness boundary.
  uint32_t Batch = 16;
  /// Recycle (reset + restart) a machine after this many responses, at
  /// the next quiescent point with an empty inbox; 0 = never. Exercises
  /// Machine::reset() arena reuse under load.
  uint64_t ConnRequests = 0;
  uint64_t Seed = 1;
  /// Optional metrics sink (serve.* counters/gauges/histograms).
  obs::MetricsRegistry *Metrics = nullptr;
  /// Optional per-machine execution tracing; honored only when
  /// Workers == 1 (one TraceWriter is not a concurrent structure, and a
  /// deterministic schedule is the only one worth diffing).
  obs::TraceWriter *Trace = nullptr;
  /// How many machines (slots 0..N-1) get trace tracks.
  uint32_t TraceMachines = 1;
};

struct ServeResult {
  bool Ok = false;
  std::string Error; ///< First machine/runtime error, empty when Ok.

  ServeTotals Totals;   ///< What the fleet actually produced.
  ServeTotals Expected; ///< LoadGen::expectedTotals for the same options.

  uint64_t ElapsedNs = 0;
  double RequestsPerSec = 0;
  uint64_t P50Ns = 0;
  uint64_t P99Ns = 0;
  uint64_t P999Ns = 0;

  uint64_t Steals = 0;             ///< Slot activations run off-home.
  uint64_t Parks = 0;              ///< Slot transitions to Parked.
  uint64_t Wakes = 0;              ///< Producer/runner CAS Parked->Queued.
  uint64_t BackpressureStalls = 0; ///< Producer retries on a full inbox.
  uint64_t Resets = 0;             ///< Machine recycles (ConnRequests).
  uint64_t InboxHighWater = 0;     ///< Max inbox depth over all slots.
  uint64_t HeapHighWaterMax = 0;   ///< Max per-machine live-heap watermark.
  uint64_t InstrTotal = 0;         ///< ESP instructions over all machines.
};

/// Runs the load described by \p Options to completion and verifies the
/// aggregate totals against the load generator's prediction. Returns
/// with Ok=false (and Error set) on a machine runtime error or a totals
/// mismatch.
ServeResult runServe(const ServeOptions &Options);

} // namespace serve
} // namespace esp

#endif // ESP_SERVE_SERVE_H

//===--- LoadGen.h - Deterministic fleet load generator ---------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic request stream over a simulated cluster: a splitmix64
/// PRNG picks a machine, a burst length, and per-request (vAddr, size)
/// pairs. The same (seed, machines, requests) always yields the same
/// stream, so:
///
///  * expectedTotals() predicts the exact aggregate (responses, frags,
///    bytes, order-independent checksum) without running any machine —
///    espserve and the tests verify the serve run against it;
///  * the stream is independent of worker count, so single-worker and
///    multi-worker runs of the same load must agree (the determinism
///    test).
///
/// Sizes follow a skewed service distribution: mostly small control
/// messages (<= 512 B), a band of near-MTU transfers, and ~1% multi-
/// fragment sends up to 4 * MTU — enough to exercise the firmware's
/// fragmentation loop without drowning the run in large requests.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SERVE_LOADGEN_H
#define ESP_SERVE_LOADGEN_H

#include "serve/ExternalPort.h"

#include <cstdint>

namespace esp {
namespace serve {

struct LoadGenOptions {
  uint64_t Seed = 1;
  uint32_t Machines = 1;
  uint64_t Requests = 0;
  /// Upper bound on burst length (consecutive requests to one machine);
  /// matches the scheduler's event-delivery batch.
  uint32_t Batch = 16;
};

/// One generated request, addressed to a machine slot. Ev.T0Ns is left 0;
/// the pusher stamps it at enqueue time.
struct LoadRequest {
  uint32_t Machine = 0;
  ServeEvent Ev;
};

/// Aggregate over a completed load: what every serve run must add up to.
struct ServeTotals {
  uint64_t Responses = 0;
  uint64_t Frags = 0;
  uint64_t Bytes = 0;
  uint64_t Checksum = 0; ///< Sum of per-response digests (order-free).

  friend bool operator==(const ServeTotals &A, const ServeTotals &B) {
    return A.Responses == B.Responses && A.Frags == B.Frags &&
           A.Bytes == B.Bytes && A.Checksum == B.Checksum;
  }
  friend bool operator!=(const ServeTotals &A, const ServeTotals &B) {
    return !(A == B);
  }
};

class LoadGen {
public:
  explicit LoadGen(const LoadGenOptions &Options);

  /// Produces the next request; false when the stream is exhausted.
  bool next(LoadRequest &Out);

  uint64_t generated() const { return Emitted; }

  /// Replays the whole stream through the firmware's response model
  /// (vmmc::serveResponseModel) without touching a machine.
  static ServeTotals expectedTotals(const LoadGenOptions &Options);

private:
  uint64_t rng();

  LoadGenOptions Opt;
  uint64_t State;
  uint64_t Emitted = 0;
  uint32_t BurstMachine = 0;
  uint32_t BurstLeft = 0;
};

} // namespace serve
} // namespace esp

#endif // ESP_SERVE_LOADGEN_H

//===--- LoadGen.cpp - Deterministic fleet load generator -------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/LoadGen.h"

#include "vmmc/ServeFirmware.h"

using namespace esp;
using namespace esp::serve;

LoadGen::LoadGen(const LoadGenOptions &Options)
    : Opt(Options), State(Options.Seed * 0x9e3779b97f4a7c15ULL + 1) {
  if (Opt.Machines == 0)
    Opt.Machines = 1;
  if (Opt.Batch == 0)
    Opt.Batch = 1;
}

uint64_t LoadGen::rng() {
  // splitmix64: tiny, well mixed, and trivially reproducible from the
  // seed alone — the whole point of this generator.
  uint64_t X = (State += 0x9e3779b97f4a7c15ULL);
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

bool LoadGen::next(LoadRequest &Out) {
  if (Emitted >= Opt.Requests)
    return false;
  if (BurstLeft == 0) {
    uint64_t R = rng();
    BurstMachine = static_cast<uint32_t>(R % Opt.Machines);
    BurstLeft = static_cast<uint32_t>((R >> 32) % Opt.Batch) + 1;
  }
  --BurstLeft;
  uint64_t R = rng();
  uint32_t SizeClass = static_cast<uint32_t>(R % 100);
  uint32_t Size;
  if (SizeClass < 80)
    Size = static_cast<uint32_t>((R >> 16) % 512) + 1;
  else if (SizeClass < 99)
    Size = static_cast<uint32_t>((R >> 16) % vmmc::kServeMtu) + 1;
  else
    Size = vmmc::kServeMtu + 1 +
           static_cast<uint32_t>((R >> 16) % (3 * vmmc::kServeMtu));
  Out.Machine = BurstMachine;
  Out.Ev.Seq = Emitted;
  // Page-aligned-ish virtual addresses across the translation table's
  // index space; the offset bits exercise the % PAGESIZE path.
  Out.Ev.VAddr = static_cast<uint32_t>(
      (R >> 40) % (vmmc::kServePtSize * vmmc::kServePageSize));
  Out.Ev.Size = Size;
  Out.Ev.T0Ns = 0;
  ++Emitted;
  return true;
}

ServeTotals LoadGen::expectedTotals(const LoadGenOptions &Options) {
  LoadGen G(Options);
  ServeTotals T;
  LoadRequest R;
  while (G.next(R)) {
    vmmc::ServeResponseModel M =
        vmmc::serveResponseModel(R.Ev.Seq, R.Ev.VAddr, R.Ev.Size);
    ++T.Responses;
    T.Frags += M.Frags;
    T.Bytes += M.Bytes;
    T.Checksum += vmmc::serveResponseDigest(M.Seq, M.Frags, M.Bytes, M.Sum);
  }
  return T;
}

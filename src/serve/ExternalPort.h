//===--- ExternalPort.h - Per-machine bounded event inbox -------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The epoll-style readiness boundary between the load generator and one
/// ESP machine instance: a bounded FIFO of request events. Producers
/// (the load generator) push batches; the single consumer — whichever
/// worker currently runs the machine — peeks/pops through the machine's
/// `Req` ExternalWriter binding.
///
/// The contract the serve scheduler builds on:
///
///  * bounded: pushBatch accepts at most capacity() - depth() events and
///    reports how many it took; the producer handles the remainder
///    (backpressure — the inbox never exceeds its cap, pinned by
///    tests/test_serve.cpp);
///  * FIFO: events leave in push order, so per-connection request order
///    is generation order and the latency bookkeeping can pair
///    completions positionally;
///  * multi-producer / single-consumer: any thread may push; only the
///    worker that owns the slot's Running state consumes. A mutex keeps
///    it simple and tsan-clean — pushes are batched precisely so the
///    lock (and the wakeup that follows) amortizes over the batch.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SERVE_EXTERNALPORT_H
#define ESP_SERVE_EXTERNALPORT_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

namespace esp {
namespace serve {

/// One request event: what the load generator knows when it fires a VMMC
/// request at a connection. T0Ns is the enqueue timestamp the latency
/// measurement starts from (steady-clock nanoseconds).
struct ServeEvent {
  uint64_t Seq = 0;
  uint32_t VAddr = 0;
  uint32_t Size = 0;
  uint64_t T0Ns = 0;
};

class ExternalPort {
public:
  explicit ExternalPort(unsigned Cap) : Cap(Cap) {}

  /// Pushes up to \p N events; returns how many fit under the cap (a
  /// prefix of \p Events — order is preserved). 0 means the producer
  /// must back off and retry after the consumer drains.
  size_t pushBatch(const ServeEvent *Events, size_t N) {
    std::lock_guard<std::mutex> Lock(M);
    size_t Take = Q.size() >= Cap ? 0 : std::min(N, Cap - Q.size());
    for (size_t I = 0; I != Take; ++I)
      Q.push_back(Events[I]);
    if (Q.size() > HighWater)
      HighWater = Q.size();
    return Take;
  }

  /// Copies the front event without consuming it. The ExternalWriter
  /// contract requires peek-then-accept: the machine may probe readiness
  /// several times before a reader commits.
  bool peek(ServeEvent &Out) const {
    std::lock_guard<std::mutex> Lock(M);
    if (Q.empty())
      return false;
    Out = Q.front();
    return true;
  }

  /// Consumes the front event (after a successful delivery).
  void popFront() {
    std::lock_guard<std::mutex> Lock(M);
    if (!Q.empty())
      Q.pop_front();
  }

  bool empty() const {
    std::lock_guard<std::mutex> Lock(M);
    return Q.empty();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> Lock(M);
    return Q.size();
  }

  /// Deepest the inbox ever got; never exceeds capacity().
  size_t highWater() const {
    std::lock_guard<std::mutex> Lock(M);
    return HighWater;
  }

  unsigned capacity() const { return Cap; }

private:
  mutable std::mutex M;
  std::deque<ServeEvent> Q;
  size_t HighWater = 0;
  unsigned Cap;
};

} // namespace serve
} // namespace esp

#endif // ESP_SERVE_EXTERNALPORT_H

//===--- Latency.h - Log-linear latency histogram ---------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free latency recording for the serve runtime. Workers record
/// nanosecond samples on every response; the driver asks for p50/p99/p999
/// once at the end. An HdrHistogram-style log-linear bucketing keeps the
/// table small (~2.3k buckets to cover 64-bit ns) with bounded relative
/// error: each power-of-two range is split into 2^kPrecisionBits linear
/// sub-buckets, so the quantile error is at most 1/32 ≈ 3.1%.
///
/// Buckets are plain relaxed atomics, sharded by worker to keep the hot
/// increment uncontended; quantile() sums the shards after the pool has
/// joined (the joins publish the counts, so no stronger ordering is
/// needed on the increments).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SERVE_LATENCY_H
#define ESP_SERVE_LATENCY_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace esp {
namespace serve {

class LatencyRecorder {
public:
  static constexpr unsigned kPrecisionBits = 5;
  static constexpr unsigned kSubBuckets = 1u << kPrecisionBits; // 32
  // Values below kSubBuckets*2 are exact; above, 64 - kPrecisionBits - 1
  // doubling ranges of kSubBuckets sub-buckets each cover uint64.
  static constexpr unsigned kBucketCount =
      kSubBuckets * 2 + (64 - kPrecisionBits - 1) * kSubBuckets;

  explicit LatencyRecorder(unsigned Shards)
      : ShardCount(Shards ? Shards : 1),
        Buckets(new std::atomic<uint64_t>[size_t(ShardCount) * kBucketCount]) {
    for (size_t I = 0; I != size_t(ShardCount) * kBucketCount; ++I)
      Buckets[I].store(0, std::memory_order_relaxed);
  }

  /// Maps a value to its bucket index. Monotone and total: consecutive
  /// values map to the same or the next bucket (continuity is pinned by
  /// tests/test_serve.cpp).
  static unsigned bucketOf(uint64_t V) {
    if (V < kSubBuckets * 2)
      return static_cast<unsigned>(V); // exact range
    // Highest set bit gives the doubling range; the kPrecisionBits bits
    // below it give the linear sub-bucket.
    unsigned Msb = 63u - static_cast<unsigned>(__builtin_clzll(V));
    unsigned Shift = Msb - kPrecisionBits; // >= 1 here
    unsigned Sub = static_cast<unsigned>((V >> Shift) & (kSubBuckets - 1));
    return (Shift + 1) * kSubBuckets + Sub;
  }

  /// Lower edge of a bucket: the smallest value mapping into it. The
  /// quantile report uses the midpoint of [lower, next-lower).
  static uint64_t bucketLow(unsigned Bucket) {
    if (Bucket < kSubBuckets * 2)
      return Bucket;
    unsigned Shift = Bucket / kSubBuckets - 1;
    unsigned Sub = Bucket % kSubBuckets;
    return (uint64_t(kSubBuckets) + Sub) << Shift;
  }

  void record(unsigned Shard, uint64_t ValueNs) {
    auto &B = Buckets[size_t(Shard % ShardCount) * kBucketCount +
                      bucketOf(ValueNs)];
    B.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t N = 0;
    for (size_t I = 0; I != size_t(ShardCount) * kBucketCount; ++I)
      N += Buckets[I].load(std::memory_order_relaxed);
    return N;
  }

  /// Value (ns, bucket-midpoint estimate) at quantile \p Q in [0, 1].
  /// 0 when empty. Call after the recording threads joined.
  uint64_t quantile(double Q) const {
    std::vector<uint64_t> Merged(kBucketCount, 0);
    uint64_t Total = 0;
    for (unsigned S = 0; S != ShardCount; ++S)
      for (unsigned B = 0; B != kBucketCount; ++B) {
        uint64_t C =
            Buckets[size_t(S) * kBucketCount + B].load(std::memory_order_relaxed);
        Merged[B] += C;
        Total += C;
      }
    if (Total == 0)
      return 0;
    if (Q < 0)
      Q = 0;
    if (Q > 1)
      Q = 1;
    // Rank of the sample the quantile asks for, 1-based.
    uint64_t Rank = static_cast<uint64_t>(Q * double(Total - 1)) + 1;
    uint64_t Seen = 0;
    for (unsigned B = 0; B != kBucketCount; ++B) {
      Seen += Merged[B];
      if (Seen >= Rank) {
        uint64_t Low = bucketLow(B);
        uint64_t High = B + 1 < kBucketCount ? bucketLow(B + 1) : Low + 1;
        return Low + (High - Low) / 2;
      }
    }
    return bucketLow(kBucketCount - 1);
  }

private:
  unsigned ShardCount;
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets;
};

} // namespace serve
} // namespace esp

#endif // ESP_SERVE_LATENCY_H

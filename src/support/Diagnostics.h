//===--- Diagnostics.h - Diagnostic engine ----------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic engine used by every compiler stage. Diagnostics are
/// accumulated (not printed eagerly) so that tests can assert on them and
/// tools can choose their own rendering.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SUPPORT_DIAGNOSTICS_H
#define ESP_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace esp {

class SourceManager;

enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics produced by the lexer, parser, semantic checker,
/// lowering, and backends.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager &SM) : SM(SM) {}

  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message);

  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned getNumErrors() const { return NumErrors; }
  unsigned getNumWarnings() const { return NumWarnings; }

  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }

  /// Renders one diagnostic as "file:line:col: severity: message".
  std::string render(const Diagnostic &D) const;

  /// Renders all diagnostics, one per line, in order of report.
  std::string renderAll() const;

  /// True if any accumulated diagnostic message contains \p Needle.
  /// Convenience for tests.
  bool containsMessage(const std::string &Needle) const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
    NumWarnings = 0;
  }

private:
  const SourceManager &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace esp

#endif // ESP_SUPPORT_DIAGNOSTICS_H

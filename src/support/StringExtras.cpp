//===--- StringExtras.cpp - Small string helpers ---------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringExtras.h"

using namespace esp;

std::vector<std::string_view> esp::split(std::string_view Text, char Sep) {
  std::vector<std::string_view> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.push_back(Text.substr(Start));
      return Out;
    }
    Out.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string esp::join(const std::vector<std::string> &Pieces,
                      std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Pieces.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Pieces[I];
  }
  return Out;
}

uint64_t esp::fnv1aHash(const void *Data, size_t Size, uint64_t Seed) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = Seed;
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

unsigned esp::countEffectiveLines(std::string_view Text) {
  unsigned Count = 0;
  bool InBlockComment = false;
  for (std::string_view Line : split(Text, '\n')) {
    bool HasCode = false;
    for (size_t I = 0; I < Line.size(); ++I) {
      char C = Line[I];
      if (InBlockComment) {
        if (C == '*' && I + 1 < Line.size() && Line[I + 1] == '/') {
          InBlockComment = false;
          ++I;
        }
        continue;
      }
      if (C == '/' && I + 1 < Line.size() && Line[I + 1] == '/')
        break; // Rest of line is a comment.
      if (C == '/' && I + 1 < Line.size() && Line[I + 1] == '*') {
        InBlockComment = true;
        ++I;
        continue;
      }
      if (C != ' ' && C != '\t' && C != '\r')
        HasCode = true;
    }
    if (HasCode)
      ++Count;
  }
  return Count;
}

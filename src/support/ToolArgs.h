//===--- ToolArgs.h - Shared command-line scanner for the tools -*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One command-line grammar for espc, esplint, and espmc. Each tool
/// keeps its own flag set but gets --help/-h, --version, value-taking
/// options, integer validation, and unknown-option reporting with
/// identical wording and exit codes:
///
///   while (Args.next()) {
///     if (Args.flag("--check"))            Act = Check;
///     else if (Args.option("-o", Out))     ;
///     else if (Args.optionUInt("--max-states", N)) ;
///     else if (Args.positional())          Inputs.push_back(Args.arg());
///     else                                 Args.unknownOrBuiltin();
///   }
///   if (Args.shouldExit()) return Args.exitCode();
///
/// unknownOrBuiltin handles --help/--version (exit 0) and reports
/// anything else as an unknown option (exit 2), so tool-specific flags
/// always win over the builtins.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SUPPORT_TOOLARGS_H
#define ESP_SUPPORT_TOOLARGS_H

#include <cstdint>
#include <set>
#include <string>

namespace esp {

class ToolArgs {
public:
  /// \p UsageText is the full help body, printed verbatim for --help and
  /// after usage errors.
  ToolArgs(int Argc, char **Argv, std::string ToolName,
           std::string UsageText);

  /// Advances to the next argument. False when exhausted or after a
  /// terminal state (help, version, error) was reached.
  bool next();

  /// The current argument.
  const std::string &arg() const { return Current; }

  /// True when the current argument equals \p Name exactly.
  bool flag(const char *Name) const { return Current == Name; }

  /// True when the current argument is \p Name; consumes the following
  /// argument into \p Value. The --name=value spelling is accepted too.
  /// A missing value is a usage error. Repeated occurrences of the same
  /// option are accepted — the last value wins — with a warning on the
  /// first repeat (scripted invocations append overrides; see espserve).
  bool option(const char *Name, std::string &Value);

  /// Like option, but the value must parse as an integer (decimal),
  /// and for optionUInt be >= \p Min. Bad values are usage errors.
  bool optionUInt(const char *Name, uint64_t &Value, uint64_t Min = 0);
  bool optionInt(const char *Name, int64_t &Value);

  /// True when the current argument does not start with '-'.
  bool positional() const {
    return Current.empty() || Current[0] != '-';
  }

  /// Fallback for unmatched arguments: handles --help/-h, --version
  /// (exit 0), and --quiet/-q (recorded, see quiet()); reports anything
  /// else as an unknown option (exit 2), naming just the flag for the
  /// --name=value spelling.
  void unknownOrBuiltin();

  /// True once --quiet/-q was seen (any tool may honor it; the scanner
  /// accepts it everywhere so scripts can pass it uniformly).
  bool quiet() const { return Quiet; }

  /// Reports "tool: message" followed by the usage text; exit code 2.
  void usageError(const std::string &Message);

  /// Reports "tool: message" without usage; exit code 1 (runtime errors
  /// such as unreadable files).
  void error(const std::string &Message);

  void printUsage() const;

  /// True once a terminal state was reached; the tool should return
  /// exitCode() without doing any work.
  bool shouldExit() const { return Exit; }
  int exitCode() const { return Code; }

private:
  /// Warns (once per name) when a value-taking option repeats; the later
  /// value overwrites the earlier one in the caller's variable anyway.
  void noteOption(const char *Name);

  int Argc;
  char **Argv;
  int Index = 0;
  std::string Tool;
  std::string Usage;
  std::string Current;
  std::set<std::string> SeenOptions;
  bool Exit = false;
  bool Quiet = false;
  int Code = 0;
};

} // namespace esp

#endif // ESP_SUPPORT_TOOLARGS_H

//===--- SourceManager.h - Owns source buffers ------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SourceManager owns the text of every ESP source buffer and maps
/// SourceLocs back to file/line/column for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SUPPORT_SOURCEMANAGER_H
#define ESP_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace esp {

/// Human-readable decoded position for diagnostics.
struct DecodedLoc {
  std::string_view FileName;
  unsigned Line = 0;   ///< 1-based.
  unsigned Column = 0; ///< 1-based.
};

/// Owns source buffers and decodes SourceLocs.
class SourceManager {
public:
  /// Registers \p Text under \p Name and returns the new buffer's file id.
  uint32_t addBuffer(std::string Name, std::string Text);

  /// Reads \p Path from disk and registers it. Returns the file id, or
  /// UINT32_MAX if the file could not be read.
  uint32_t addFile(const std::string &Path);

  /// Returns the full text of buffer \p FileId.
  std::string_view getBuffer(uint32_t FileId) const;

  /// Returns the registered name of buffer \p FileId.
  std::string_view getBufferName(uint32_t FileId) const;

  unsigned getNumBuffers() const { return Buffers.size(); }

  /// Decodes \p Loc into file/line/column. Invalid locations decode to
  /// "<unknown>" with line and column 0.
  DecodedLoc decode(SourceLoc Loc) const;

  /// Returns the text of the line containing \p Loc (without newline),
  /// for use in caret diagnostics.
  std::string_view getLineText(SourceLoc Loc) const;

private:
  struct Buffer {
    std::string Name;
    std::string Text;
    /// Byte offsets of each line start, built lazily on first decode.
    mutable std::vector<uint32_t> LineStarts;
  };

  const std::vector<uint32_t> &getLineStarts(const Buffer &B) const;

  std::vector<Buffer> Buffers;
};

} // namespace esp

#endif // ESP_SUPPORT_SOURCEMANAGER_H

//===--- SourceManager.cpp - Owns source buffers --------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <fstream>
#include <sstream>

using namespace esp;

uint32_t SourceManager::addBuffer(std::string Name, std::string Text) {
  Buffers.push_back(Buffer{std::move(Name), std::move(Text), {}});
  return static_cast<uint32_t>(Buffers.size() - 1);
}

uint32_t SourceManager::addFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return UINT32_MAX;
  std::ostringstream Contents;
  Contents << In.rdbuf();
  return addBuffer(Path, Contents.str());
}

std::string_view SourceManager::getBuffer(uint32_t FileId) const {
  assert(FileId < Buffers.size() && "file id out of range");
  return Buffers[FileId].Text;
}

std::string_view SourceManager::getBufferName(uint32_t FileId) const {
  assert(FileId < Buffers.size() && "file id out of range");
  return Buffers[FileId].Name;
}

const std::vector<uint32_t> &
SourceManager::getLineStarts(const Buffer &B) const {
  if (!B.LineStarts.empty())
    return B.LineStarts;
  B.LineStarts.push_back(0);
  for (uint32_t I = 0, E = B.Text.size(); I != E; ++I)
    if (B.Text[I] == '\n')
      B.LineStarts.push_back(I + 1);
  return B.LineStarts;
}

DecodedLoc SourceManager::decode(SourceLoc Loc) const {
  if (!Loc.isValid() || Loc.getFileId() >= Buffers.size())
    return DecodedLoc{"<unknown>", 0, 0};
  const Buffer &B = Buffers[Loc.getFileId()];
  const std::vector<uint32_t> &Starts = getLineStarts(B);
  uint32_t Offset = std::min<uint32_t>(Loc.getOffset(), B.Text.size());
  // Find the last line start <= Offset.
  auto It = std::upper_bound(Starts.begin(), Starts.end(), Offset);
  unsigned Line = static_cast<unsigned>(It - Starts.begin());
  uint32_t LineStart = Starts[Line - 1];
  return DecodedLoc{B.Name, Line, Offset - LineStart + 1};
}

std::string_view SourceManager::getLineText(SourceLoc Loc) const {
  if (!Loc.isValid() || Loc.getFileId() >= Buffers.size())
    return {};
  const Buffer &B = Buffers[Loc.getFileId()];
  const std::vector<uint32_t> &Starts = getLineStarts(B);
  uint32_t Offset = std::min<uint32_t>(Loc.getOffset(), B.Text.size());
  auto It = std::upper_bound(Starts.begin(), Starts.end(), Offset);
  uint32_t LineStart = Starts[It - Starts.begin() - 1];
  size_t LineEnd = B.Text.find('\n', LineStart);
  if (LineEnd == std::string::npos)
    LineEnd = B.Text.size();
  return std::string_view(B.Text).substr(LineStart, LineEnd - LineStart);
}

//===--- ToolArgs.cpp - Shared command-line scanner for the tools -----------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ToolArgs.h"

#include <cstdio>
#include <cstdlib>

using namespace esp;

static const char kVersion[] = "0.5.0";

ToolArgs::ToolArgs(int Argc, char **Argv, std::string ToolName,
                   std::string UsageText)
    : Argc(Argc), Argv(Argv), Tool(std::move(ToolName)),
      Usage(std::move(UsageText)) {}

bool ToolArgs::next() {
  if (Exit || Index + 1 >= Argc)
    return false;
  Current = Argv[++Index];
  return true;
}

void ToolArgs::noteOption(const char *Name) {
  // Scripted invocations append overrides ("espserve $BASE_FLAGS
  // --requests 1000"), so a repeated option is not an error: the last
  // value wins, and the first repeat gets one warning.
  if (!SeenOptions.insert(Name).second && !Quiet)
    std::fprintf(stderr,
                 "%s: warning: option '%s' given more than once; "
                 "the last value wins\n",
                 Tool.c_str(), Name);
}

bool ToolArgs::option(const char *Name, std::string &Value) {
  // --name=value spelling: everything after the first '=' is the value
  // (which may itself contain '=' or be empty).
  size_t NameLen = std::string::traits_type::length(Name);
  if (Current.size() > NameLen && Current[NameLen] == '=' &&
      Current.compare(0, NameLen, Name) == 0) {
    noteOption(Name);
    Value = Current.substr(NameLen + 1);
    return true;
  }
  if (Current != Name)
    return false;
  if (Index + 1 >= Argc) {
    usageError(std::string(Name) + " expects a value");
    return true; // Consumed; the caller's chain must not keep matching.
  }
  noteOption(Name);
  Value = Argv[++Index];
  return true;
}

bool ToolArgs::optionUInt(const char *Name, uint64_t &Value, uint64_t Min) {
  std::string Text;
  if (!option(Name, Text))
    return false;
  if (Exit)
    return true;
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || Parsed < Min) {
    usageError(std::string(Name) + " expects a " +
               (Min > 0 ? "positive integer" : "non-negative integer") +
               ", got '" + Text + "'");
    return true;
  }
  Value = Parsed;
  return true;
}

bool ToolArgs::optionInt(const char *Name, int64_t &Value) {
  std::string Text;
  if (!option(Name, Text))
    return false;
  if (Exit)
    return true;
  char *End = nullptr;
  long long Parsed = std::strtoll(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0') {
    usageError(std::string(Name) + " expects an integer, got '" + Text + "'");
    return true;
  }
  Value = Parsed;
  return true;
}

void ToolArgs::unknownOrBuiltin() {
  if (Current == "--help" || Current == "-h") {
    printUsage();
    Exit = true;
    Code = 0;
    return;
  }
  if (Current == "--version") {
    std::printf("%s (esplang) %s\n", Tool.c_str(), kVersion);
    Exit = true;
    Code = 0;
    return;
  }
  if (Current == "--quiet" || Current == "-q") {
    Quiet = true;
    return;
  }
  // For --name=value, report only the flag: the value can be long
  // (a path) and is not what the user needs to fix.
  std::string Flag = Current.substr(0, Current.find('='));
  usageError("unknown option '" + Flag + "'");
}

void ToolArgs::usageError(const std::string &Message) {
  std::fprintf(stderr, "%s: %s\n", Tool.c_str(), Message.c_str());
  printUsage();
  Exit = true;
  Code = 2;
}

void ToolArgs::error(const std::string &Message) {
  std::fprintf(stderr, "%s: %s\n", Tool.c_str(), Message.c_str());
  Exit = true;
  Code = 1;
}

void ToolArgs::printUsage() const {
  std::fputs(Usage.c_str(), stderr);
}

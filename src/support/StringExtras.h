//===--- StringExtras.h - Small string helpers ------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the compiler and runtime.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SUPPORT_STRINGEXTRAS_H
#define ESP_SUPPORT_STRINGEXTRAS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace esp {

/// Splits \p Text on \p Sep, keeping empty pieces.
std::vector<std::string_view> split(std::string_view Text, char Sep);

/// Joins \p Pieces with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Pieces,
                 std::string_view Sep);

/// True if \p C can start an ESP identifier.
inline bool isIdentStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
}

/// True if \p C can continue an ESP identifier.
inline bool isIdentChar(char C) {
  return isIdentStart(C) || (C >= '0' && C <= '9');
}

/// True if \p C is an ASCII decimal digit.
inline bool isDigit(char C) { return C >= '0' && C <= '9'; }

/// FNV-1a over a byte string; used for state hashing in the model checker.
uint64_t fnv1aHash(const void *Data, size_t Size, uint64_t Seed = 0xcbf29ce484222325ULL);

/// splitmix64 finalizer: avalanches a 64-bit value. Applied on top of
/// FNV-1a for the model checker's hash-compaction fingerprints.
inline uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

/// LEB128-style variable-length encoding; the state serializer and the
/// COLLAPSE component vectors use it to keep state vectors small.
inline void appendVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>(V | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

/// Zigzag encoding for signed values fed to appendVarint.
inline uint64_t zigzagEncode(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^ static_cast<uint64_t>(V >> 63);
}

/// Counts non-blank, non-comment-only lines of an ESP or C source text.
/// Used by the lines-of-code experiment table.
unsigned countEffectiveLines(std::string_view Text);

} // namespace esp

#endif // ESP_SUPPORT_STRINGEXTRAS_H

//===--- Diagnostics.cpp - Diagnostic engine -------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/SourceManager.h"

#include <sstream>

using namespace esp;

void DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                              std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  else if (Severity == DiagSeverity::Warning)
    ++NumWarnings;
  Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

std::string DiagnosticEngine::render(const Diagnostic &D) const {
  DecodedLoc DL = SM.decode(D.Loc);
  std::ostringstream OS;
  OS << DL.FileName << ':' << DL.Line << ':' << DL.Column << ": "
     << severityName(D.Severity) << ": " << D.Message;
  return OS.str();
}

std::string DiagnosticEngine::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += render(D);
    Out += '\n';
  }
  return Out;
}

bool DiagnosticEngine::containsMessage(const std::string &Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

//===--- SourceLoc.h - Source locations and ranges --------------*- C++ -*-==//
//
// Part of the esplang project: a reproduction of "ESP: A Language for
// Programmable Devices" (PLDI 2001).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source locations. A SourceLoc identifies a byte offset in a
/// buffer owned by a SourceManager; line/column are computed on demand.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_SUPPORT_SOURCELOC_H
#define ESP_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace esp {

/// A position inside a source buffer registered with a SourceManager.
///
/// FileId 0 with Offset 0 is the canonical "unknown" location produced by
/// the default constructor; isValid() distinguishes it from real locations.
class SourceLoc {
public:
  SourceLoc() = default;
  SourceLoc(uint32_t FileId, uint32_t Offset)
      : FileId(FileId), Offset(Offset), Valid(true) {}

  bool isValid() const { return Valid; }
  uint32_t getFileId() const { return FileId; }
  uint32_t getOffset() const { return Offset; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Valid == B.Valid && A.FileId == B.FileId && A.Offset == B.Offset;
  }
  friend bool operator!=(const SourceLoc &A, const SourceLoc &B) {
    return !(A == B);
  }

private:
  uint32_t FileId = 0;
  uint32_t Offset = 0;
  bool Valid = false;
};

/// A half-open range [Begin, End) of source text.
class SourceRange {
public:
  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
  SourceLoc getBegin() const { return Begin; }
  SourceLoc getEnd() const { return End; }

private:
  SourceLoc Begin;
  SourceLoc End;
};

} // namespace esp

#endif // ESP_SUPPORT_SOURCELOC_H

//===--- EspFirmwareSource.h - VMMC firmware written in ESP -----*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VMMC firmware written in ESP (§4.6, Appendix B), covering the
/// send path (request handling, address translation, host-DMA fetch,
/// small-message special case, page/MTU splitting), the sliding-window
/// retransmission protocol with piggybacked acknowledgements (§5.3), the
/// receive path (demultiplexing, in-order reassembly, host-DMA delivery,
/// completion notification), and buffer recycling. All device access
/// goes through external interfaces (§4.5); the C++ side implements only
/// the simple operations (DMA programming, packet I/O, buffer lists),
/// mirroring the paper's split where the C code does the simple work and
/// all complex state-machine interaction lives in ESP.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_VMMC_ESPFIRMWARESOURCE_H
#define ESP_VMMC_ESPFIRMWARESOURCE_H

namespace esp {
namespace vmmc {

/// The complete VMMC firmware in ESP.
inline const char *getVmmcEspSource() {
  return R"ESP(
// ---- VMMC firmware in ESP (decl section) -------------------------------
const NNODES = 4;        // nodes addressable by this fabric
const WSIZE = 8;         // sliding-window width (packets)
const RTO = 4;           // retransmission timeout in watchdog ticks
const MTU = 4096;        // one packet per page
const PAGESIZE = 4096;
const PTSIZE = 64;       // translation-table entries
const SMALLMSG = 32;     // small messages are inlined (no fetch DMA)
const DATA = 0;
const ACK = 1;

type sendT = record of { dest: int, vAddr: int, size: int, token: int }
type updateT = record of { vAddr: int, pAddr: int }
type userT = union of { send: sendT, update: updateT }
type pktT = record of { dest: int, seq: int, ack: int, kind: int,
                        buf: int, size: int, msgBytes: int, token: int,
                        src: int }

// Host request queue (external C writer: the host library).
channel userReqC: userT
interface UserReq(out userReqC) {
  Send( { send |> { $dest, $vAddr, $size, $token } } ),
  Update( { update |> { $vAddr, $pAddr } } )
}

// Virtual-to-physical translation service.
channel ptReqC: record of { ret: int, vAddr: int }
channel ptReplyC: record of { ret: int, pAddr: int }

// Host DMA, fetch direction (external C reader programs the engine).
channel hdmaReqC: record of { pAddr: int, size: int, token: int }
interface HostFetch(in hdmaReqC) { Fetch( { $pAddr, $size, $token } ) }
channel hdmaDoneC: record of { token: int, buf: int }
interface HostFetchDone(out hdmaDoneC) { Done( { $token, $buf } ) }

// Send-side hand-off to the transmit window.
channel sendMsgC: record of { dest: int, buf: int, size: int,
                              msgBytes: int, token: int }

// Network transmit / receive (external).
channel netTxC: pktT
interface NetTx(in netTxC) {
  Tx( { $dest, $seq, $ack, $kind, $buf, $size, $msgBytes, $token, $src } )
}
channel netRxC: pktT
interface NetRx(out netRxC) {
  Rx( { $dest, $seq, $ack, $kind, $buf, $size, $msgBytes, $token, $src } )
}

// Receive-side plumbing.
channel txFbC: record of { src: int, theirAck: int, wantAck: int,
                           ackSeq: int }
channel deliverC: record of { src: int, size: int, msgBytes: int,
                              token: int }
channel rdmaReqC: record of { size: int, token: int }
interface HostDeliver(in rdmaReqC) { Deliver( { $size, $token } ) }
channel rdmaDoneC: record of { token: int }
interface HostDeliverDone(out rdmaDoneC) { Done( { $token } ) }
channel notifyC: record of { src: int, size: int, token: int }
interface Notify(in notifyC) { Recv( { $src, $size, $token } ) }
channel freeBufC: int
interface FreeBuf(in freeBufC) { Free( $buf ) }
channel timerC: int
interface Timer(out timerC) { Tick( $t ) }

// ---- process section ----------------------------------------------------

// SM1 of the paper: handles send requests; splits at page/MTU
// boundaries; small messages skip the fetch DMA entirely.
process userReq {
  while (true) {
    in( userReqC, { send |> { $dest, $vAddr, $size, $token } });
    $remaining = size;
    $off = 0;
    while (remaining > 0) {
      $chunk = remaining;
      if (chunk > MTU) chunk = MTU;
      out( ptReqC, { @, vAddr + off });
      in( ptReplyC, { @, $pAddr });
      if (size <= SMALLMSG) {
        // Small message: data travels with the request (no fetch DMA).
        out( sendMsgC, { dest, -1, chunk, size, token });
      } else {
        out( hdmaReqC, { pAddr, chunk, token });
        in( hdmaDoneC, { token, $buf });
        out( sendMsgC, { dest, buf, chunk, size, token });
      }
      remaining = remaining - chunk;
      off = off + chunk;
    }
  }
}

// The translation table (Appendix B). Update requests arrive on the same
// user channel and are dispatched here by pattern (§4.2).
process pageTable {
  $table: #array of int = #{ PTSIZE -> 0 };
  while (true) {
    alt {
      case( in( ptReqC, { $ret, $vAddr })) {
        out( ptReplyC,
             { ret, table[(vAddr / PAGESIZE) % PTSIZE] + vAddr % PAGESIZE });
      }
      case( in( userReqC, { update |> { $uVAddr, $uPAddr }})) {
        table[(uVAddr / PAGESIZE) % PTSIZE] = uPAddr;
      }
    }
  }
}

// The sliding-window retransmission protocol (§5.3): developed and
// verified with the model checker before ever running on the simulated
// card. Window slots are structure-of-arrays so the SPIN translation
// stays first-order.
process txWindow {
  $wUsed: #array of int = #{ WSIZE -> 0 };
  $wSeq:  #array of int = #{ WSIZE -> 0 };
  $wDest: #array of int = #{ WSIZE -> 0 };
  $wBuf:  #array of int = #{ WSIZE -> 0 };
  $wSize: #array of int = #{ WSIZE -> 0 };
  $wMsg:  #array of int = #{ WSIZE -> 0 };
  $wTok:  #array of int = #{ WSIZE -> 0 };
  $wTick: #array of int = #{ WSIZE -> 0 };
  $nextSeq: #array of int = #{ NNODES -> 0 };
  $pbAck:   #array of int = #{ NNODES -> 0 };
  $inflight = 0;
  $now = 0;
  while (true) {
    alt {
      case( inflight < WSIZE, in( sendMsgC, { $dest, $buf, $size, $msg, $tok })) {
        $s = 0;
        while (wUsed[s] == 1) { s = s + 1; }
        wUsed[s] = 1; wSeq[s] = nextSeq[dest]; wDest[s] = dest;
        wBuf[s] = buf; wSize[s] = size; wMsg[s] = msg; wTok[s] = tok;
        wTick[s] = now;
        inflight = inflight + 1;
        out( netTxC, { dest, nextSeq[dest], pbAck[dest], DATA, buf, size,
                       msg, tok, 0 });
        nextSeq[dest] = nextSeq[dest] + 1;
      }
      case( in( txFbC, { $src, $theirAck, $wantAck, $ackSeq })) {
        // Retire acknowledged slots and recycle their SRAM buffers.
        $s = 0;
        while (s < WSIZE) {
          if (wUsed[s] == 1 && wDest[s] == src && wSeq[s] < theirAck) {
            wUsed[s] = 0;
            inflight = inflight - 1;
            if (wBuf[s] >= 0) { out( freeBufC, wBuf[s]); }
          }
          s = s + 1;
        }
        if (wantAck == 1) {
          pbAck[src] = ackSeq;
          if (inflight == 0) {
            // No reverse data to piggyback on: explicit ack (§5.3).
            out( netTxC, { src, 0, ackSeq, ACK, -1, 0, 0, 0, 0 });
          }
        }
      }
      case( in( timerC, $t)) {
        now = now + 1;
        $s = 0;
        while (s < WSIZE) {
          if (wUsed[s] == 1 && now - wTick[s] >= RTO) {
            out( netTxC, { wDest[s], wSeq[s], pbAck[wDest[s]], DATA,
                           wBuf[s], wSize[s], wMsg[s], wTok[s], 0 });
            wTick[s] = now;
          }
          s = s + 1;
        }
      }
    }
  }
}

// Demultiplexes arriving packets: in-order data goes to delivery;
// acknowledgement information (piggybacked or explicit) feeds the
// transmit window.
process rxDemux {
  $expSeq: #array of int = #{ NNODES -> 0 };
  while (true) {
    in( netRxC, { $dest, $seq, $ack, $kind, $buf, $size, $msg, $tok,
                  $src });
    if (kind == DATA) {
      if (seq == expSeq[src]) {
        expSeq[src] = expSeq[src] + 1;
        out( deliverC, { src, size, msg, tok });
      }
      // Duplicates and out-of-order packets still force an ack so the
      // sender resynchronizes.
      out( txFbC, { src, ack, 1, expSeq[src] });
    } else {
      out( txFbC, { src, ack, 0, 0 });
    }
  }
}

// Delivery: host-DMA the payload into application memory (small
// messages were inlined and skip the DMA), reassemble, and notify.
process deliver {
  $got: #array of int = #{ NNODES -> 0 };
  while (true) {
    in( deliverC, { $src, $size, $msg, $tok });
    if (msg > SMALLMSG) {
      out( rdmaReqC, { size, tok });
      in( rdmaDoneC, { tok });
    }
    got[src] = got[src] + size;
    if (got[src] >= msg) {
      got[src] = 0;
      out( notifyC, { src, msg, tok });
    }
  }
}
)ESP";
}

/// The "simple operations" the paper leaves in C (§4.6): in this
/// reproduction they are the external bindings in EspFirmware.cpp.
unsigned getVmmcEspDeclLines();
unsigned getVmmcEspProcessLines();

} // namespace vmmc
} // namespace esp

#endif // ESP_VMMC_ESPFIRMWARESOURCE_H

//===--- EspFirmware.cpp - VMMC firmware running on the ESP runtime ---------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vmmc/EspFirmware.h"

#include "driver/Driver.h"
#include "obs/TracingObserver.h"
#include "support/StringExtras.h"
#include "vmmc/EspFirmwareSource.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace esp;
using namespace esp::vmmc;
using namespace esp::sim;

//===----------------------------------------------------------------------===//
// Source accounting (for the lines-of-code experiment)
//===----------------------------------------------------------------------===//

unsigned esp::vmmc::getVmmcEspDeclLines() {
  std::string Source = getVmmcEspSource();
  size_t Split = Source.find("// ---- process section");
  return countEffectiveLines(Source.substr(0, Split));
}

unsigned esp::vmmc::getVmmcEspProcessLines() {
  std::string Source = getVmmcEspSource();
  size_t Split = Source.find("// ---- process section");
  return countEffectiveLines(Source.substr(Split));
}

//===----------------------------------------------------------------------===//
// External bindings (the paper's user-supplied C functions, §4.5)
//===----------------------------------------------------------------------===//

namespace {

/// Packs a (token, buffer) pair into a DMA completion tag.
uint64_t packTag(int64_t Token, int Buf) {
  return (static_cast<uint64_t>(Token) << 8) |
         static_cast<uint64_t>(Buf & 0xff);
}

/// Host request queue: the external writer behind `UserReq`.
class UserReqWriter : public ExternalWriter {
public:
  explicit UserReqWriter(EspFirmware &FW) : FW(FW) {}
  int isReady() override {
    NicEnv *Env = FW.CurEnv;
    if (!Env || !Env->hasHostReq())
      return 0;
    return Env->peekHostReq().K == HostReq::Kind::Send ? 1 : 2;
  }
  void produce(int CaseIndex, Heap &, std::vector<Value> &Out) override {
    const HostReq &Req = FW.CurEnv->peekHostReq();
    if (CaseIndex == 1) {
      Out.push_back(Value::makeInt(Req.Dest));
      Out.push_back(Value::makeInt(static_cast<int64_t>(Req.VAddr)));
      Out.push_back(Value::makeInt(Req.Size));
      Out.push_back(Value::makeInt(static_cast<int64_t>(Req.Token)));
    } else {
      Out.push_back(Value::makeInt(static_cast<int64_t>(Req.VAddr)));
      Out.push_back(Value::makeInt(static_cast<int64_t>(Req.PAddr)));
    }
  }
  void accepted(int) override { FW.CurEnv->popHostReq(); }

private:
  EspFirmware &FW;
};

/// Host DMA fetch engine: external reader behind `HostFetch`.
class HostFetchReader : public ExternalReader {
public:
  explicit HostFetchReader(EspFirmware &FW) : FW(FW) {}
  bool isReady() override {
    NicEnv *Env = FW.CurEnv;
    if (!Env->bufferAvailable())
      return false; // A FreeBuf consume will unblock us.
    if (!Env->hostDmaFree()) {
      FW.RepollAt = Env->hostDmaBusyUntilTime();
      return false;
    }
    return true;
  }
  void consume(int, Heap &, const std::vector<Value> &Args) override {
    NicEnv *Env = FW.CurEnv;
    // Args: pAddr, size, token.
    int Buf = Env->allocBuffer();
    Env->startHostDmaFetch(static_cast<uint32_t>(Args[1].Scalar),
                           packTag(Args[2].Scalar, Buf));
  }

private:
  EspFirmware &FW;
};

/// Fetch completions: external writer behind `HostFetchDone`.
class FetchDoneWriter : public ExternalWriter {
public:
  explicit FetchDoneWriter(EspFirmware &FW) : FW(FW) {}
  int isReady() override {
    return (Stashed || FW.CurEnv->hasFetchDone()) ? 1 : 0;
  }
  void produce(int, Heap &, std::vector<Value> &Out) override {
    // Peek: NicEnv only exposes pop, so stash the tag until accepted.
    if (!Stashed) {
      Tag = FW.CurEnv->popFetchDone();
      Stashed = true;
    }
    Out.push_back(Value::makeInt(static_cast<int64_t>(Tag >> 8)));
    Out.push_back(Value::makeInt(static_cast<int64_t>(Tag & 0xff)));
  }
  void accepted(int) override { Stashed = false; }

private:
  EspFirmware &FW;
  uint64_t Tag = 0;
  bool Stashed = false;
};

/// Network transmit: external reader behind `NetTx`.
class NetTxReader : public ExternalReader {
public:
  explicit NetTxReader(EspFirmware &FW) : FW(FW) {}
  bool isReady() override {
    NicEnv *Env = FW.CurEnv;
    if (!Env->sendDmaFree()) {
      FW.RepollAt = Env->sendDmaBusyUntilTime();
      return false;
    }
    return true;
  }
  void consume(int, Heap &, const std::vector<Value> &Args) override {
    NicEnv *Env = FW.CurEnv;
    // Args: dest, seq, ack, kind, buf, size, msgBytes, token, src.
    Packet P;
    P.Dest = static_cast<int>(Args[0].Scalar);
    P.Seq = static_cast<uint32_t>(Args[1].Scalar);
    P.Ack = static_cast<uint32_t>(Args[2].Scalar);
    P.K = Args[3].Scalar == 0 ? Packet::Kind::Data : Packet::Kind::Ack;
    P.PayloadBytes = static_cast<uint32_t>(Args[5].Scalar);
    P.MsgBytes = static_cast<uint32_t>(Args[6].Scalar);
    P.Token = static_cast<uint64_t>(Args[7].Scalar);
    if (Args[4].Scalar < 0 && P.K == Packet::Kind::Data)
      // Inlined small message: the payload is copied by PIO.
      Env->charge(P.PayloadBytes * Env->costs().CyclesPerInlineByte);
    Env->transmit(P);
  }

private:
  EspFirmware &FW;
};

/// Packet arrival: external writer behind `NetRx`.
class NetRxWriter : public ExternalWriter {
public:
  explicit NetRxWriter(EspFirmware &FW) : FW(FW) {}
  int isReady() override { return FW.CurEnv->hasRxPacket() ? 1 : 0; }
  void produce(int, Heap &, std::vector<Value> &Out) override {
    const Packet &P = FW.CurEnv->peekRxPacket();
    Out.push_back(Value::makeInt(P.Dest));
    Out.push_back(Value::makeInt(P.Seq));
    Out.push_back(Value::makeInt(P.Ack));
    Out.push_back(Value::makeInt(P.K == Packet::Kind::Data ? 0 : 1));
    Out.push_back(Value::makeInt(-1));
    Out.push_back(Value::makeInt(P.PayloadBytes));
    Out.push_back(Value::makeInt(P.MsgBytes));
    Out.push_back(Value::makeInt(static_cast<int64_t>(P.Token)));
    Out.push_back(Value::makeInt(P.Src));
  }
  void accepted(int) override { FW.CurEnv->popRxPacket(); }

private:
  EspFirmware &FW;
};

/// Host DMA delivery: external reader behind `HostDeliver`.
class HostDeliverReader : public ExternalReader {
public:
  explicit HostDeliverReader(EspFirmware &FW) : FW(FW) {}
  bool isReady() override {
    NicEnv *Env = FW.CurEnv;
    if (!Env->hostDmaFree()) {
      FW.RepollAt = Env->hostDmaBusyUntilTime();
      return false;
    }
    return true;
  }
  void consume(int, Heap &, const std::vector<Value> &Args) override {
    // Args: size, token.
    FW.CurEnv->startHostDmaDeliver(static_cast<uint32_t>(Args[0].Scalar),
                                   static_cast<uint64_t>(Args[1].Scalar));
  }

private:
  EspFirmware &FW;
};

/// Delivery completions: external writer behind `HostDeliverDone`.
class DeliverDoneWriter : public ExternalWriter {
public:
  explicit DeliverDoneWriter(EspFirmware &FW) : FW(FW) {}
  int isReady() override {
    return (Stashed || FW.CurEnv->hasDeliverDone()) ? 1 : 0;
  }
  void produce(int, Heap &, std::vector<Value> &Out) override {
    if (!Stashed) {
      Tag = FW.CurEnv->popDeliverDone();
      Stashed = true;
    }
    Out.push_back(Value::makeInt(static_cast<int64_t>(Tag)));
  }
  void accepted(int) override { Stashed = false; }

private:
  EspFirmware &FW;
  uint64_t Tag = 0;
  bool Stashed = false;
};

/// Receive notification to the host: external reader behind `Notify`.
class NotifyReader : public ExternalReader {
public:
  explicit NotifyReader(EspFirmware &FW) : FW(FW) {}
  bool isReady() override { return true; }
  void consume(int, Heap &, const std::vector<Value> &Args) override {
    // Args: src, size, token.
    FW.CurEnv->notifyRecv(static_cast<int>(Args[0].Scalar),
                          static_cast<uint32_t>(Args[1].Scalar),
                          static_cast<uint64_t>(Args[2].Scalar));
  }

private:
  EspFirmware &FW;
};

/// Buffer recycling: external reader behind `FreeBuf`.
class FreeBufReader : public ExternalReader {
public:
  explicit FreeBufReader(EspFirmware &FW) : FW(FW) {}
  bool isReady() override { return true; }
  void consume(int, Heap &, const std::vector<Value> &Args) override {
    FW.CurEnv->freeBuffer(static_cast<int>(Args[0].Scalar));
  }

private:
  EspFirmware &FW;
};

/// Watchdog ticks: external writer behind `Timer`.
class TimerWriter : public ExternalWriter {
public:
  explicit TimerWriter(EspFirmware &FW) : FW(FW) {}
  int isReady() override { return FW.CurEnv->timerFired() ? 1 : 0; }
  void produce(int, Heap &, std::vector<Value> &Out) override {
    Out.push_back(Value::makeInt(static_cast<int64_t>(FW.CurEnv->ticks())));
  }
  void accepted(int) override { FW.CurEnv->clearTimerEvent(); }

private:
  EspFirmware &FW;
};

} // namespace

//===----------------------------------------------------------------------===//
// EspFirmware
//===----------------------------------------------------------------------===//

EspFirmware::EspFirmware(OptOptions Optimize) {
  Diags = std::make_unique<DiagnosticEngine>(SM);
  CompileOptions Options;
  Options.Optimize = true;
  Options.Opt = Optimize;
  CompileResult R =
      compileBuffer(SM, *Diags, "vmmc.esp", getVmmcEspSource(), Options);
  if (!R.Success) {
    std::fprintf(stderr, "VMMC ESP firmware failed to compile:\n%s",
                 Diags->renderAll().c_str());
    std::abort();
  }
  Prog = std::move(R.Prog);
  Module = std::move(R.Optimized);

  MachineOptions MO;
  MO.MaxObjects = 0;
  MO.ReuseObjectIds = true;
  M = std::make_unique<Machine>(Module, MO);
  M->bindWriter("UserReq", std::make_unique<UserReqWriter>(*this));
  M->bindReader("HostFetch", std::make_unique<HostFetchReader>(*this));
  M->bindWriter("HostFetchDone", std::make_unique<FetchDoneWriter>(*this));
  M->bindReader("NetTx", std::make_unique<NetTxReader>(*this));
  M->bindWriter("NetRx", std::make_unique<NetRxWriter>(*this));
  M->bindReader("HostDeliver", std::make_unique<HostDeliverReader>(*this));
  M->bindWriter("HostDeliverDone",
                std::make_unique<DeliverDoneWriter>(*this));
  M->bindReader("Notify", std::make_unique<NotifyReader>(*this));
  M->bindReader("FreeBuf", std::make_unique<FreeBufReader>(*this));
  M->bindWriter("Timer", std::make_unique<TimerWriter>(*this));
  M->start();
  Last = M->stats();
  if (M->error()) {
    std::fprintf(stderr, "VMMC ESP firmware failed at startup: %s\n",
                 M->error().Message.c_str());
    std::abort();
  }
}

EspFirmware::~EspFirmware() {
  // Workload drivers own firmware through the simulator and drop both
  // together, so close the trace here; explicit finishTracing() earlier
  // is fine too (TraceWriter::finish is idempotent).
  finishTracing();
}

void EspFirmware::enableTracing(obs::TraceWriter &W) {
  Tracer = std::make_unique<obs::TracingObserver>(W, [this]() -> uint64_t {
    // EventQueue time is nanoseconds; trace timestamps are microseconds.
    // CurEnv is only valid inside runQuantum — outside (finishTracing),
    // reuse the last stamp so the trace never jumps backwards to zero.
    if (CurEnv)
      TraceNow = CurEnv->localNow() / 1000;
    return TraceNow;
  });
  Tracer->attach(*M, name());
  M->setObserver(Tracer.get());
}

void EspFirmware::finishTracing() {
  if (!Tracer)
    return;
  Tracer->finishTrace(*M);
  M->setObserver(nullptr);
  Tracer.reset();
}

void EspFirmware::runQuantum(NicEnv &Env) {
  CurEnv = &Env;
  RepollAt = 0;
  const sim::CostModel &C = Env.costs();
  for (uint64_t Guard = 0; Guard < 1'000'000; ++Guard) {
    Machine::StepResult R = M->step();
    // Charge the CPU for what the runtime actually did (§6.1).
    const ExecStats &S = M->stats();
    uint64_t Cycles =
        (S.Instructions - Last.Instructions) * C.CyclesPerEspInstruction +
        (S.ContextSwitches - Last.ContextSwitches) *
            C.CyclesPerContextSwitch +
        (S.Rendezvous - Last.Rendezvous) * C.CyclesPerRendezvous +
        (S.PollRounds - Last.PollRounds) * C.CyclesPerPollRound;
    Last = S;
    Env.charge(Cycles);
    if (R == Machine::StepResult::Errored) {
      std::fprintf(stderr, "VMMC ESP firmware runtime error: %s (%s)\n",
                   M->error().Message.c_str(),
                   runtimeErrorKindName(M->error().Kind));
      std::abort();
    }
    if (R != Machine::StepResult::Progress)
      break;
  }
  CurEnv = nullptr;
}

//===--- ServeFirmware.h - Per-connection VMMC firmware in ESP --*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-instance VMMC serving firmware: a trimmed-down VMMC send
/// path — request intake, page-table translation, MTU fragmentation,
/// transmit accounting — written in ESP, one independent machine
/// instance per simulated client connection. The fleet serving runtime
/// (src/serve) runs thousands of these over one shared CompiledProgram;
/// each instance gets its own Heap and channel state.
///
/// Unlike the full firmware (EspFirmwareSource.h), which binds to the
/// cycle-accurate NIC simulator, this one has exactly two external
/// interfaces so the serving boundary stays epoll-shaped:
///
///  * `Req` (external writer): the load generator's requests enter here,
///    delivered from a per-machine ExternalPort inbox;
///  * `Resp` (external reader): one completion record per request leaves
///    here, closing the latency measurement.
///
/// The response is a pure function of the request — frags is the MTU
/// fragment count, bytes echoes the size, sum is a translation checksum
/// over the fragment addresses — so aggregate totals are deterministic
/// at any worker count and the load generator can predict them without
/// running a machine (LoadGen::expectedTotals).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_VMMC_SERVEFIRMWARE_H
#define ESP_VMMC_SERVEFIRMWARE_H

#include "ir/IR.h"

#include <cstdint>
#include <memory>
#include <string>

namespace esp {

class Program;
class SourceManager;
class DiagnosticEngine;

namespace vmmc {

/// Fragment size of the serve firmware; responses report
/// ceil(size / kServeMtu) fragments. Must match the MTU constant in the
/// ESP source.
inline constexpr uint32_t kServeMtu = 4096;
inline constexpr uint32_t kServePageSize = 4096;
inline constexpr uint32_t kServePtSize = 16;

/// The per-connection serving firmware in ESP.
const char *getServeEspSource();

/// The response record the firmware emits for a request (seq, vAddr,
/// size), mirrored in C++ so the load generator and the tests can
/// predict aggregate totals without running a machine. The firmware's
/// page table memoizes translations but the memoized value depends only
/// on the virtual address — never on lookup order or on when a serve
/// slot recycled the machine — so the model is a pure function.
struct ServeResponseModel {
  uint64_t Seq = 0;
  uint64_t Frags = 0;
  uint64_t Bytes = 0;
  uint64_t Sum = 0;
};

ServeResponseModel serveResponseModel(uint64_t Seq, uint32_t VAddr,
                                      uint32_t Size);

/// Order-independent digest of a response; summed over all responses it
/// is the aggregate checksum espserve verifies and the tests pin.
uint64_t serveResponseDigest(uint64_t Seq, uint64_t Frags, uint64_t Bytes,
                             uint64_t Sum);

/// Compiled serve firmware: AST + optimized ModuleIR, ready for
/// Machine construction. Aborts on compile failure (the source is a
/// builtin; failure is a build bug, like EspFirmware's).
struct ServeProgram {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<Program> Prog;
  ModuleIR Module;

  ServeProgram();
  ~ServeProgram(); // Out of line: members are incomplete here.
};

std::unique_ptr<ServeProgram> compileServeFirmware();

} // namespace vmmc
} // namespace esp

#endif // ESP_VMMC_SERVEFIRMWARE_H

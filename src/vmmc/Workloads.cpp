//===--- Workloads.cpp - VMMC microbenchmark workloads ----------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vmmc/Workloads.h"

#include "vmmc/EspFirmware.h"
#include "vmmc/OrigFirmware.h"

#include <cassert>

using namespace esp;
using namespace esp::vmmc;
using namespace esp::sim;

const char *esp::vmmc::firmwareKindName(FirmwareKind Kind) {
  switch (Kind) {
  case FirmwareKind::Esp:
    return "vmmcESP";
  case FirmwareKind::Orig:
    return "vmmcOrig";
  case FirmwareKind::OrigNoFastPaths:
    return "vmmcOrigNoFastPaths";
  }
  return "?";
}

std::unique_ptr<Firmware> esp::vmmc::makeFirmware(FirmwareKind Kind) {
  switch (Kind) {
  case FirmwareKind::Esp:
    return std::make_unique<EspFirmware>();
  case FirmwareKind::Orig:
    return std::make_unique<OrigFirmware>(/*FastPaths=*/true);
  case FirmwareKind::OrigNoFastPaths:
    return std::make_unique<OrigFirmware>(/*FastPaths=*/false);
  }
  return nullptr;
}

std::unique_ptr<Simulator> esp::vmmc::makeTwoNodeSystem(FirmwareKind Kind) {
  auto Sim = std::make_unique<Simulator>(2);
  for (unsigned Node = 0; Node != 2; ++Node) {
    Sim->nic(Node).setFirmware(makeFirmware(Kind));
    Sim->nic(Node).startTimer();
  }
  return Sim;
}

static HostReq makeSend(int Dest, uint32_t Bytes, uint64_t Token) {
  HostReq Req;
  Req.K = HostReq::Kind::Send;
  Req.Dest = Dest;
  Req.VAddr = 0x10000;
  Req.Size = Bytes;
  Req.Token = Token;
  return Req;
}

WorkloadResult esp::vmmc::runPingpong(FirmwareKind Kind, uint32_t MsgBytes,
                                      unsigned Iterations) {
  return runPingpongWith([Kind] { return makeFirmware(Kind); }, MsgBytes,
                         Iterations);
}

WorkloadResult esp::vmmc::runPingpongWith(const FirmwareFactory &Factory,
                                          uint32_t MsgBytes,
                                          unsigned Iterations) {
  auto Sim = std::make_unique<Simulator>(2);
  for (unsigned Node = 0; Node != 2; ++Node) {
    Sim->nic(Node).setFirmware(Factory());
    Sim->nic(Node).startTimer();
  }
  unsigned Total = Iterations + 4; // Warmup round trips.
  uint64_t NextToken = 1;
  unsigned Hops = 0;
  SimTime MeasureStart = 0;

  Sim->nic(1).OnRecv = [&](const RecvNotification &) {
    ++Hops;
    Sim->nic(1).postRequest(makeSend(0, MsgBytes, NextToken++));
  };
  Sim->nic(0).OnRecv = [&](const RecvNotification &) {
    ++Hops;
    if (Hops / 2 < Total)
      Sim->nic(0).postRequest(makeSend(1, MsgBytes, NextToken++));
  };

  // Warmup phase.
  Sim->nic(0).postRequest(makeSend(1, MsgBytes, NextToken++));
  bool WarmupDone =
      Sim->runUntil([&] { return Hops >= 8; }, 10'000'000'000ULL);
  MeasureStart = Sim->now();
  unsigned HopsAtStart = Hops;
  bool Done = WarmupDone &&
              Sim->runUntil([&] { return Hops >= 2 * Total; },
                            100'000'000'000ULL);

  WorkloadResult Result;
  Result.Completed = Done;
  unsigned MeasuredHops = Hops - HopsAtStart;
  if (MeasuredHops > 0)
    Result.OneWayLatencyUs =
        (Sim->now() - MeasureStart) / 1000.0 / MeasuredHops;
  Result.MessagesDelivered = Hops;
  Result.PacketsSent =
      Sim->nic(0).PacketsSent + Sim->nic(1).PacketsSent;
  Result.FirmwareCyclesNode0 = Sim->nic(0).TotalCycles;
  return Result;
}

WorkloadResult esp::vmmc::runOneWay(FirmwareKind Kind, uint32_t MsgBytes,
                                    unsigned NumMessages, unsigned Depth) {
  std::unique_ptr<Simulator> Sim = makeTwoNodeSystem(Kind);
  uint64_t NextToken = 1;
  unsigned Posted = 0;
  unsigned Received = 0;
  SimTime FirstByte = 0;

  auto postMore = [&] {
    while (Posted - Received < Depth && Posted < NumMessages) {
      Sim->nic(0).postRequest(makeSend(1, MsgBytes, NextToken++));
      ++Posted;
    }
  };
  Sim->nic(1).OnRecv = [&](const RecvNotification &Note) {
    if (Received == 0)
      FirstByte = Note.At;
    ++Received;
    postMore();
  };
  postMore();
  bool Done = Sim->runUntil([&] { return Received >= NumMessages; },
                            1'000'000'000'000ULL);

  WorkloadResult Result;
  Result.Completed = Done;
  Result.MessagesDelivered = Received;
  if (Done && Received > 1) {
    double Seconds = (Sim->now() - 0) / 1e9;
    Result.BandwidthMBs =
        (static_cast<double>(Received) * MsgBytes) / 1e6 / Seconds;
  }
  Result.PacketsSent =
      Sim->nic(0).PacketsSent + Sim->nic(1).PacketsSent;
  Result.FirmwareCyclesNode0 = Sim->nic(0).TotalCycles;
  return Result;
}

WorkloadResult esp::vmmc::runBidirectional(FirmwareKind Kind,
                                           uint32_t MsgBytes,
                                           unsigned NumMessages,
                                           unsigned Depth) {
  std::unique_ptr<Simulator> Sim = makeTwoNodeSystem(Kind);
  uint64_t NextToken = 1;
  unsigned Posted[2] = {0, 0};
  unsigned Received[2] = {0, 0};

  auto postMore = [&](int Node) {
    int Peer = 1 - Node;
    while (Posted[Node] - Received[Peer] < Depth &&
           Posted[Node] < NumMessages) {
      Sim->nic(Node).postRequest(makeSend(Peer, MsgBytes, NextToken++));
      ++Posted[Node];
    }
  };
  for (int Node = 0; Node != 2; ++Node) {
    Sim->nic(Node).OnRecv = [&, Node](const RecvNotification &) {
      ++Received[Node];
      postMore(1 - Node);
    };
  }
  postMore(0);
  postMore(1);
  bool Done = Sim->runUntil(
      [&] {
        return Received[0] >= NumMessages && Received[1] >= NumMessages;
      },
      1'000'000'000'000ULL);

  WorkloadResult Result;
  Result.Completed = Done;
  Result.MessagesDelivered = Received[0] + Received[1];
  if (Done) {
    double Seconds = Sim->now() / 1e9;
    Result.BandwidthMBs = (static_cast<double>(Received[0] + Received[1]) *
                           MsgBytes) /
                          1e6 / Seconds;
  }
  Result.PacketsSent =
      Sim->nic(0).PacketsSent + Sim->nic(1).PacketsSent;
  Result.FirmwareCyclesNode0 = Sim->nic(0).TotalCycles;
  return Result;
}

WorkloadResult esp::vmmc::runLossyPingpong(FirmwareKind Kind,
                                           uint32_t MsgBytes,
                                           unsigned Iterations,
                                           unsigned DropEveryN) {
  std::unique_ptr<Simulator> Sim = makeTwoNodeSystem(Kind);
  uint64_t NextToken = 1;
  unsigned Hops = 0;
  uint64_t DataPackets = 0;
  Sim->DropFn = [&](const Packet &P) {
    if (P.K != Packet::Kind::Data)
      return false;
    ++DataPackets;
    return DataPackets % DropEveryN == 0;
  };

  Sim->nic(1).OnRecv = [&](const RecvNotification &) {
    ++Hops;
    Sim->nic(1).postRequest(makeSend(0, MsgBytes, NextToken++));
  };
  Sim->nic(0).OnRecv = [&](const RecvNotification &) {
    ++Hops;
    if (Hops / 2 < Iterations)
      Sim->nic(0).postRequest(makeSend(1, MsgBytes, NextToken++));
  };
  Sim->nic(0).postRequest(makeSend(1, MsgBytes, NextToken++));
  bool Done = Sim->runUntil([&] { return Hops >= 2 * Iterations; },
                            1'000'000'000'000ULL);

  WorkloadResult Result;
  Result.Completed = Done;
  Result.MessagesDelivered = Hops;
  Result.PacketsSent =
      Sim->nic(0).PacketsSent + Sim->nic(1).PacketsSent;
  return Result;
}

//===--- OrigFirmware.cpp - Baseline C-style VMMC firmware ------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vmmc/OrigFirmware.h"

#include <cassert>

using namespace esp;
using namespace esp::vmmc;
using namespace esp::sim;

OrigFirmware::OrigFirmware(bool FastPaths) : FastPaths(FastPaths) {
  Rt.ChargeDispatch = [this] {
    if (Env)
      Env->charge(Env->costs().CyclesPerHandlerDispatch);
  };
  Rt.ChargeTransition = [this] {
    if (Env)
      Env->charge(Env->costs().CyclesPerStateTransition);
  };
  installHandlers();
  Rt.setState(SM_SEND, S_WaitReq);
  Rt.setState(SM_DELIVER, D_Idle);
}

void OrigFirmware::installHandlers() {
  Rt.setHandler(SM_SEND, S_WaitReq, EV_REQ, [this] { handleReq(); });
  Rt.setHandler(SM_SEND, S_WaitHostDma, EV_DMA_FREE,
                [this] { handleDmaFree(); });
  Rt.setHandler(SM_SEND, S_WaitFetch, EV_FETCH_DONE,
                [this] { handleFetchDone(); });
  Rt.setHandler(SM_SEND, S_WaitWindow, EV_WINDOW_SPACE,
                [this] { handleWindowSpace(); });
  Rt.setHandler(SM_WINDOW, 0, EV_ENQUEUE, [this] { handleEnqueue(); });
  Rt.setHandler(SM_RX, 0, EV_PKT, [this] { handleRxPacket(); });
  Rt.setHandler(SM_WINDOW, 0, EV_TICK, [this] { handleTick(); });
  Rt.setHandler(SM_WINDOW, 0, EV_TX_READY, [this] { handleTxReady(); });
  Rt.setHandler(SM_DELIVER, D_WaitRdma, EV_RDMA_DONE,
                [this] { handleRdmaDone(); });
}

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

uint64_t OrigFirmware::translate(uint64_t VAddr) {
  Env->charge(Env->costs().CyclesPerTableLookup);
  return PageTable[(VAddr / PAGESIZE) % PTSIZE] + VAddr % PAGESIZE;
}

bool OrigFirmware::tryStartFetch() {
  if (!Env->bufferAvailable() || !Env->hostDmaFree()) {
    if (!Env->hostDmaFree())
      Repoll = Env->hostDmaBusyUntilTime();
    return false;
  }
  Chunk = Remaining > MTU ? MTU : Remaining;
  uint64_t PAddr = translate(CurVAddr + Off);
  (void)PAddr;
  int Buf = Env->allocBuffer();
  Env->startHostDmaFetch(Chunk, (CurToken << 8) |
                                    static_cast<uint64_t>(Buf & 0xff));
  return true;
}

void OrigFirmware::transmitSlot(unsigned SlotIndex) {
  const Slot &S = Window[SlotIndex];
  Packet P;
  P.Dest = S.Dest;
  P.Seq = S.Seq;
  P.Ack = PbAck[S.Dest];
  P.K = Packet::Kind::Data;
  P.PayloadBytes = S.Size;
  P.MsgBytes = S.MsgBytes;
  P.Token = S.Token;
  if (S.Buf < 0)
    Env->charge(S.Size * Env->costs().CyclesPerInlineByte);
  Env->transmit(P);
}

void OrigFirmware::transmitAck(int Dest, uint32_t AckSeq) {
  Packet P;
  P.Dest = Dest;
  P.Ack = AckSeq;
  P.K = Packet::Kind::Ack;
  Env->transmit(P);
}

void OrigFirmware::enqueueWindow(int Dest, int Buf, uint32_t Size,
                                 uint32_t MsgBytes, uint64_t Token) {
  assert(Inflight < WSIZE && "window overflow");
  unsigned SlotIndex = 0;
  while (Window[SlotIndex].Used)
    ++SlotIndex;
  Slot &S = Window[SlotIndex];
  S.Used = true;
  S.Seq = NextSeq[Dest]++;
  S.Dest = Dest;
  S.Buf = Buf;
  S.Size = Size;
  S.MsgBytes = MsgBytes;
  S.Token = Token;
  S.Tick = NowTicks;
  ++Inflight;
  if (Env->sendDmaFree()) {
    transmitSlot(SlotIndex);
  } else {
    Repoll = Env->sendDmaBusyUntilTime();
    PendingTx.push_back(SlotIndex);
  }
}

void OrigFirmware::retireAcks(int Src, uint32_t TheirAck) {
  for (unsigned I = 0; I != WSIZE; ++I) {
    Slot &S = Window[I];
    if (!S.Used || S.Dest != Src || S.Seq >= TheirAck)
      continue;
    S.Used = false;
    --Inflight;
    if (S.Buf >= 0)
      Env->freeBuffer(S.Buf);
  }
  if (Inflight < WSIZE && HavePendingChunk)
    Rt.deliverEvent(SM_WINDOW, EV_ENQUEUE);
}

void OrigFirmware::startNextDelivery() {
  if (!Rt.isState(SM_DELIVER, D_Idle) || PendingDeliver.empty())
    return;
  CurDeliver = PendingDeliver.front();
  PendingDeliver.pop_front();
  if (CurDeliver.MsgBytes > SMALLMSG) {
    if (!Env->hostDmaFree())
      Repoll = Env->hostDmaBusyUntilTime();
    Env->startHostDmaDeliver(CurDeliver.Size, CurDeliver.Token);
    Rt.setState(SM_DELIVER, D_WaitRdma);
    return;
  }
  finishDelivery();
}

void OrigFirmware::finishDelivery() {
  Got[CurDeliver.Src] += CurDeliver.Size;
  if (Got[CurDeliver.Src] >= CurDeliver.MsgBytes) {
    Got[CurDeliver.Src] = 0;
    Env->notifyRecv(CurDeliver.Src, CurDeliver.MsgBytes, CurDeliver.Token);
  }
  Rt.setState(SM_DELIVER, D_Idle);
  startNextDelivery();
}

//===----------------------------------------------------------------------===//
// Handlers
//===----------------------------------------------------------------------===//

void OrigFirmware::handleReq() {
  const CostModel &C = Env->costs();
  HostReq Req = Env->popHostReq();
  if (Req.K == HostReq::Kind::Update) {
    Env->charge(C.CyclesPerHandlerWork + C.CyclesPerTableLookup);
    PageTable[(Req.VAddr / PAGESIZE) % PTSIZE] = Req.PAddr;
    return;
  }
  CurDest = Req.Dest;
  CurVAddr = Req.VAddr;
  CurSize = Req.Size;
  CurToken = Req.Token;
  Remaining = Req.Size;
  Off = 0;
  FastPathActive = false;

  // Hand-optimized fast path (§2.2): taken when the network DMA is free
  // and no other request is currently being processed. It violates the
  // module boundaries by touching the window and DMA state directly, but
  // collapses several handler dispatches into straight-line code.
  if (FastPaths && Inflight == 0 && PendingTx.empty() &&
      Env->sendDmaFree() && Req.Size <= MTU) {
    if (Req.Size <= SMALLMSG) {
      ++FastPathTaken;
      Env->charge(C.CyclesPerFastPathSend);
      translate(CurVAddr);
      enqueueWindow(CurDest, -1, Req.Size, Req.Size, CurToken);
      Remaining = 0;
      return;
    }
    if (Env->hostDmaFree() && Env->bufferAvailable()) {
      ++FastPathTaken;
      Env->charge(C.CyclesPerFastPathSend);
      FastPathActive = true;
      tryStartFetch();
      Rt.setState(SM_SEND, S_WaitFetch);
      return;
    }
  }

  // Slow path: every step crosses a handler boundary, passing data
  // through the Pend* globals exactly as Appendix A passes reqSM2.
  ++SlowPathTaken;
  Env->charge(C.CyclesPerHandlerWork);
  if (Req.Size <= SMALLMSG) {
    translate(CurVAddr);
    PendDest = CurDest;
    PendBuf = -1;
    PendSize = Req.Size;
    PendMsg = Req.Size;
    PendToken = CurToken;
    HavePendingChunk = true;
    Remaining = 0;
    Rt.deliverEvent(SM_WINDOW, EV_ENQUEUE);
    return;
  }
  if (tryStartFetch()) {
    Rt.setState(SM_SEND, S_WaitFetch);
    return;
  }
  Rt.setState(SM_SEND, S_WaitHostDma);
}

void OrigFirmware::handleDmaFree() {
  Env->charge(Env->costs().CyclesPerHandlerWork);
  if (tryStartFetch())
    Rt.setState(SM_SEND, S_WaitFetch);
}

void OrigFirmware::handleFetchDone() {
  const CostModel &C = Env->costs();
  uint64_t Tag = Env->popFetchDone();
  int Buf = static_cast<int>(Tag & 0xff);
  if (FastPathActive) {
    // Fast path: complete inline, no further handler hand-offs.
    FastPathActive = false;
    if (Inflight < WSIZE) {
      enqueueWindow(CurDest, Buf, Chunk, CurSize, CurToken);
      Remaining -= Chunk;
      Off += Chunk;
      if (Remaining == 0) {
        Rt.setState(SM_SEND, S_WaitReq);
        return;
      }
      if (tryStartFetch()) {
        Rt.setState(SM_SEND, S_WaitFetch);
        return;
      }
      Rt.setState(SM_SEND, S_WaitHostDma);
      return;
    }
    // Window unexpectedly full: fall through to the slow hand-off.
  }
  Env->charge(C.CyclesPerHandlerWork);
  PendDest = CurDest;
  PendBuf = Buf;
  PendSize = Chunk;
  PendMsg = CurSize;
  PendToken = CurToken;
  HavePendingChunk = true;
  Rt.deliverEvent(SM_WINDOW, EV_ENQUEUE);
  Remaining -= Chunk;
  Off += Chunk;
  if (Remaining == 0) {
    Rt.setState(SM_SEND, S_WaitReq);
    return;
  }
  // More chunks: wait until the hand-off drains before fetching again
  // (the Pend globals hold one chunk).
  Rt.setState(SM_SEND, S_WaitWindow);
}

void OrigFirmware::handleEnqueue() {
  Env->charge(Env->costs().CyclesPerHandlerWork);
  if (!HavePendingChunk)
    return;
  if (Inflight == WSIZE)
    return; // Retried when acks retire slots.
  HavePendingChunk = false;
  enqueueWindow(PendDest, PendBuf, PendSize, PendMsg, PendToken);
  if (Rt.isState(SM_SEND, S_WaitWindow))
    Rt.deliverEvent(SM_SEND, EV_WINDOW_SPACE);
}

void OrigFirmware::handleWindowSpace() {
  Env->charge(Env->costs().CyclesPerHandlerWork);
  if (Remaining == 0) {
    Rt.setState(SM_SEND, S_WaitReq);
    return;
  }
  if (tryStartFetch()) {
    Rt.setState(SM_SEND, S_WaitFetch);
    return;
  }
  Rt.setState(SM_SEND, S_WaitHostDma);
}

bool OrigFirmware::tryFastReceive() {
  // Receive-side fast path: in-order single-packet data with the
  // delivery engine idle is handled in straight-line code, bypassing the
  // handler machinery. Brittle on purpose (§6.2: applications often fall
  // off the fast path).
  const Packet &Peek = Env->peekRxPacket();
  if (Peek.K != Packet::Kind::Data || Peek.Seq != ExpSeq[Peek.Src] ||
      Peek.MsgBytes > MTU || !Rt.isState(SM_DELIVER, D_Idle) ||
      !PendingDeliver.empty())
    return false;
  if (Peek.MsgBytes > SMALLMSG && !Env->hostDmaFree())
    return false;
  ++FastPathTaken;
  Env->charge(Env->costs().CyclesPerFastPathRecv);
  Packet P = Env->popRxPacket();
  ++ExpSeq[P.Src];
  retireAcks(P.Src, P.Ack);
  PbAck[P.Src] = ExpSeq[P.Src];
  CurDeliver = Delivery{P.Src, P.PayloadBytes, P.MsgBytes, P.Token};
  if (P.MsgBytes > SMALLMSG) {
    Env->startHostDmaDeliver(P.PayloadBytes, P.Token);
    Rt.setState(SM_DELIVER, D_WaitRdma);
  } else {
    finishDelivery();
  }
  if (Inflight == 0) {
    if (Env->sendDmaFree()) {
      transmitAck(P.Src, ExpSeq[P.Src]);
    } else {
      Repoll = Env->sendDmaBusyUntilTime();
      PendingAcks.push_back({P.Src, ExpSeq[P.Src]});
    }
  }
  return true;
}

void OrigFirmware::handleRxPacket() {
  const CostModel &C = Env->costs();
  Env->charge(C.CyclesPerHandlerWork);
  Packet P = Env->popRxPacket();
  if (P.K == Packet::Kind::Data) {
    if (P.Seq == ExpSeq[P.Src]) {
      ++ExpSeq[P.Src];
      PendingDeliver.push_back(
          Delivery{P.Src, P.PayloadBytes, P.MsgBytes, P.Token});
      startNextDelivery();
    }
    retireAcks(P.Src, P.Ack);
    PbAck[P.Src] = ExpSeq[P.Src];
    if (Inflight == 0) {
      if (Env->sendDmaFree()) {
        transmitAck(P.Src, ExpSeq[P.Src]);
      } else {
        Repoll = Env->sendDmaBusyUntilTime();
        PendingAcks.push_back({P.Src, ExpSeq[P.Src]});
      }
    }
  } else {
    retireAcks(P.Src, P.Ack);
  }
}

void OrigFirmware::handleTick() {
  const CostModel &C = Env->costs();
  Env->charge(C.CyclesPerHandlerWork);
  ++NowTicks;
  for (unsigned I = 0; I != WSIZE; ++I) {
    Slot &S = Window[I];
    if (!S.Used || NowTicks - S.Tick < RTO)
      continue;
    if (Env->sendDmaFree()) {
      transmitSlot(I);
      S.Tick = NowTicks;
    } else {
      Repoll = Env->sendDmaBusyUntilTime();
    }
  }
}

void OrigFirmware::handleTxReady() {
  Env->charge(Env->costs().CyclesPerHandlerWork);
  while (!PendingTx.empty() && Env->sendDmaFree()) {
    unsigned SlotIndex = PendingTx.front();
    PendingTx.pop_front();
    if (Window[SlotIndex].Used)
      transmitSlot(SlotIndex);
  }
  while (!PendingAcks.empty() && Env->sendDmaFree()) {
    auto [Dest, Ack] = PendingAcks.front();
    PendingAcks.pop_front();
    transmitAck(Dest, Ack);
  }
  if ((!PendingTx.empty() || !PendingAcks.empty()) && !Env->sendDmaFree())
    Repoll = Env->sendDmaBusyUntilTime();
}

void OrigFirmware::handleRdmaDone() {
  Env->charge(Env->costs().CyclesPerHandlerWork);
  Env->popDeliverDone();
  finishDelivery();
}

//===----------------------------------------------------------------------===//
// Quantum loop (the generated idle loop of a C firmware)
//===----------------------------------------------------------------------===//

void OrigFirmware::runQuantum(NicEnv &E) {
  Env = &E;
  Repoll = 0;
  const CostModel &C = E.costs();
  bool Progress = true;
  while (Progress) {
    Progress = false;
    E.charge(C.CyclesPerPollRound);
    if (Rt.isState(SM_SEND, S_WaitReq) && !HavePendingChunk &&
        E.hasHostReq())
      Rt.deliverEvent(SM_SEND, EV_REQ);
    if (HavePendingChunk && Inflight < WSIZE)
      Rt.deliverEvent(SM_WINDOW, EV_ENQUEUE);
    if (Rt.isState(SM_SEND, S_WaitHostDma) && E.hostDmaFree() &&
        E.bufferAvailable())
      Rt.deliverEvent(SM_SEND, EV_DMA_FREE);
    if (E.hasFetchDone())
      Rt.deliverEvent(SM_SEND, EV_FETCH_DONE);
    if (E.hasDeliverDone())
      Rt.deliverEvent(SM_DELIVER, EV_RDMA_DONE);
    if (E.hasRxPacket()) {
      if (FastPaths && tryFastReceive())
        Progress = true;
      else
        Rt.deliverEvent(SM_RX, EV_PKT);
    }
    if (E.timerFired()) {
      E.clearTimerEvent();
      Rt.deliverEvent(SM_WINDOW, EV_TICK);
    }
    if ((!PendingTx.empty() || !PendingAcks.empty()) && E.sendDmaFree())
      Rt.deliverEvent(SM_WINDOW, EV_TX_READY);
    if (Rt.isState(SM_DELIVER, D_Idle) && !PendingDeliver.empty() &&
        (PendingDeliver.front().MsgBytes <= SMALLMSG || E.hostDmaFree()))
      startNextDelivery();
    Progress |= Rt.dispatchPending();
  }
  Env = nullptr;
}

unsigned esp::vmmc::getOrigFirmwareLines() {
  // Counted at build time from the source files; kept in sync by the
  // loc bench, which also reports the live counts.
  return 0;
}

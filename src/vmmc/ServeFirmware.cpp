//===--- ServeFirmware.cpp - Per-connection VMMC firmware in ESP ------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vmmc/ServeFirmware.h"

#include "driver/Driver.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <cstdlib>

using namespace esp;
using namespace esp::vmmc;

const char *esp::vmmc::getServeEspSource() {
  return R"ESP(
// ---- VMMC serving firmware (one instance per client connection) --------
const MTU = 4096;        // one fragment per page, like the send path
const PAGESIZE = 4096;
const PTSIZE = 16;       // translation-table entries per connection

type reqT = record of { seq: int, vAddr: int, size: int }

// Requests enter from the serve runtime's per-machine inbox.
channel reqC: reqT
interface Req(out reqC) { Post( { $seq, $vAddr, $size } ) }

// Virtual-to-physical translation service (internal rendezvous).
channel ptReqC: int
channel ptReplyC: int

// Translated fragments on their way to the transmitter.
channel fragC: record of { seq: int, pAddr: int, size: int, last: int }

// Completions leave to the serve runtime's collector.
channel respC: record of { seq: int, frags: int, bytes: int, sum: int }
interface Resp(in respC) { Done( { $seq, $frags, $bytes, $sum } ) }

// ---- process section ----------------------------------------------------

// The send path of the paper's SM1: take a request, translate each page,
// split at MTU boundaries, hand fragments to the transmitter.
process server {
  while (true) {
    in( reqC, { $seq, $vAddr, $size });
    $remaining = size;
    $off = 0;
    while (remaining > 0) {
      $chunk = remaining;
      if (chunk > MTU) chunk = MTU;
      out( ptReqC, vAddr + off );
      in( ptReplyC, $pAddr );
      remaining = remaining - chunk;
      $last = 0;
      if (remaining == 0) last = 1;
      out( fragC, { seq, pAddr, chunk, last });
      off = off + chunk;
    }
  }
}

// Per-connection translation table. Entries are memoized on first use,
// but the memoized value is a function of the index alone, so the
// translation a request sees never depends on lookup order or on the
// machine being recycled between connections — responses stay a pure
// function of the request (the aggregate-checksum invariant).
process pageTable {
  $table: #array of int = #{ PTSIZE -> 0 };
  while (true) {
    in( ptReqC, $va );
    $idx = (va / PAGESIZE) % PTSIZE;
    if (table[idx] == 0) { table[idx] = (idx + 1) * PAGESIZE; }
    out( ptReplyC, table[idx] + va % PAGESIZE );
  }
}

// Transmit accounting: collect the fragments of one request and emit the
// completion record the collector turns into a latency sample.
process txSender {
  while (true) {
    $seq = 0;
    $frags = 0;
    $bytes = 0;
    $sum = 0;
    $done = 0;
    while (done == 0) {
      in( fragC, { $s, $pAddr, $sz, $last });
      seq = s;
      frags = frags + 1;
      bytes = bytes + sz;
      sum = sum + pAddr % 1048576;
      if (last == 1) { done = 1; }
    }
    out( respC, { seq, frags, bytes, sum });
  }
}
)ESP";
}

ServeProgram::ServeProgram() = default;
ServeProgram::~ServeProgram() = default;

ServeResponseModel esp::vmmc::serveResponseModel(uint64_t Seq, uint32_t VAddr,
                                                 uint32_t Size) {
  ServeResponseModel R;
  R.Seq = Seq;
  uint64_t Remaining = Size;
  uint64_t Off = 0;
  while (Remaining > 0) {
    uint64_t Chunk = Remaining > kServeMtu ? kServeMtu : Remaining;
    uint64_t Va = VAddr + Off;
    uint64_t Idx = (Va / kServePageSize) % kServePtSize;
    uint64_t PAddr = (Idx + 1) * kServePageSize + Va % kServePageSize;
    ++R.Frags;
    R.Bytes += Chunk;
    R.Sum += PAddr % 1048576;
    Remaining -= Chunk;
    Off += Chunk;
  }
  return R;
}

uint64_t esp::vmmc::serveResponseDigest(uint64_t Seq, uint64_t Frags,
                                        uint64_t Bytes, uint64_t Sum) {
  // splitmix64 finalizer over the packed fields; summed across responses
  // the digest is order-independent, so it is identical at any worker
  // count once every request completed.
  uint64_t X = Seq * 0x9e3779b97f4a7c15ULL + (Frags << 48) + (Bytes << 20) +
               Sum + 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

std::unique_ptr<ServeProgram> esp::vmmc::compileServeFirmware() {
  auto P = std::make_unique<ServeProgram>();
  P->SM = std::make_unique<SourceManager>();
  P->Diags = std::make_unique<DiagnosticEngine>(*P->SM);
  CompileOptions Options;
  Options.Optimize = true;
  CompileResult R = compileBuffer(*P->SM, *P->Diags, "vmmc_serve.esp",
                                  getServeEspSource(), Options);
  if (!R.Success) {
    std::fprintf(stderr, "VMMC serve firmware failed to compile:\n%s",
                 P->Diags->renderAll().c_str());
    std::abort();
  }
  P->Prog = std::move(R.Prog);
  P->Module = std::move(R.Optimized);
  return P;
}

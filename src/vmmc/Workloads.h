//===--- Workloads.h - VMMC microbenchmark workloads ------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three microbenchmarks of Figure 5 (§6.2): pingpong latency,
/// one-way bandwidth, and bidirectional bandwidth between two simulated
/// machines, each runnable over vmmcESP, vmmcOrig, and
/// vmmcOrigNoFastPaths.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_VMMC_WORKLOADS_H
#define ESP_VMMC_WORKLOADS_H

#include "sim/Nic.h"

#include <memory>
#include <string>

namespace esp {
namespace vmmc {

enum class FirmwareKind { Esp, Orig, OrigNoFastPaths };

const char *firmwareKindName(FirmwareKind Kind);

/// Creates a firmware instance of the given kind.
std::unique_ptr<sim::Firmware> makeFirmware(FirmwareKind Kind);

/// Builds a 2-node simulator with the same firmware kind on both NICs
/// and watchdog timers running.
std::unique_ptr<sim::Simulator> makeTwoNodeSystem(FirmwareKind Kind);

struct WorkloadResult {
  double OneWayLatencyUs = 0; ///< Pingpong: per-one-way latency.
  double BandwidthMBs = 0;    ///< Bandwidth tests: payload MB/s.
  uint64_t MessagesDelivered = 0;
  uint64_t PacketsSent = 0;
  uint64_t FirmwareCyclesNode0 = 0;
  bool Completed = false;
};

/// Factory used by ablations to build custom firmware (e.g. the ESP
/// firmware with compiler optimizations disabled).
using FirmwareFactory = std::function<std::unique_ptr<sim::Firmware>()>;

/// Figure 5(a): pingpong latency for \p MsgBytes, averaged over
/// \p Iterations round trips (plus warmup).
WorkloadResult runPingpong(FirmwareKind Kind, uint32_t MsgBytes,
                           unsigned Iterations = 32);

/// Pingpong with a custom firmware factory (one instance per NIC).
WorkloadResult runPingpongWith(const FirmwareFactory &Factory,
                               uint32_t MsgBytes, unsigned Iterations = 32);

/// Figure 5(b): one-way bandwidth, sending \p NumMessages of
/// \p MsgBytes with up to \p Depth outstanding.
WorkloadResult runOneWay(FirmwareKind Kind, uint32_t MsgBytes,
                         unsigned NumMessages = 64, unsigned Depth = 8);

/// Figure 5(c): bidirectional bandwidth (both nodes stream
/// simultaneously); reports combined payload MB/s.
WorkloadResult runBidirectional(FirmwareKind Kind, uint32_t MsgBytes,
                                unsigned NumMessages = 64,
                                unsigned Depth = 8);

/// Correctness helper: run a pingpong under packet loss (drops every
/// \p DropEveryN-th data packet) to exercise retransmission.
WorkloadResult runLossyPingpong(FirmwareKind Kind, uint32_t MsgBytes,
                                unsigned Iterations, unsigned DropEveryN);

} // namespace vmmc
} // namespace esp

#endif // ESP_VMMC_WORKLOADS_H

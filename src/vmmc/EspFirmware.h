//===--- EspFirmware.h - VMMC firmware running on the ESP runtime -*- C++ -*-=//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vmmcESP: the VMMC firmware written in ESP, compiled by the ESP
/// compiler and executed by the ESP runtime on the simulated NIC. The
/// external interfaces bind to the NIC environment; firmware CPU time is
/// charged from the interpreter's real execution statistics (§6.1 cost
/// structure: instructions, context switches, rendezvous, poll rounds).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_VMMC_ESPFIRMWARE_H
#define ESP_VMMC_ESPFIRMWARE_H

#include "ir/Passes.h"
#include "runtime/Machine.h"
#include "sim/Nic.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <memory>

namespace esp {

namespace obs {
class TraceWriter;
class TracingObserver;
}

namespace vmmc {

/// The ESP-based VMMC firmware.
class EspFirmware : public sim::Firmware {
public:
  /// \p Optimize controls the §6.1 compiler optimizations (ablations
  /// disable them).
  explicit EspFirmware(OptOptions Optimize = OptOptions::all());
  ~EspFirmware() override;

  void runQuantum(sim::NicEnv &Env) override;
  const char *name() const override { return "vmmcESP"; }

  /// The live environment during a quantum (used by the bindings).
  sim::NicEnv *CurEnv = nullptr;
  /// Earliest time a busy device resource frees up; the NIC re-polls
  /// then if the firmware is stalled on it.
  sim::SimTime RepollAt = 0;

  Machine &machine() { return *M; }
  const ExecStats &lastStats() const { return Last; }

  /// Streams a Chrome trace of this firmware's execution into \p W,
  /// timestamped with simulated NIC time (EventQueue nanoseconds scaled
  /// to trace microseconds), so firmware slices line up with DMA and
  /// wire events. Call after construction, before the first quantum.
  void enableTracing(obs::TraceWriter &W);
  /// Closes the trace's open slices; call once the simulation is done.
  void finishTracing();

private:
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<Program> Prog;
  ModuleIR Module;
  std::unique_ptr<Machine> M;
  ExecStats Last;
  std::unique_ptr<obs::TracingObserver> Tracer;
  /// Last simulated-time trace stamp; reused when no quantum is live.
  uint64_t TraceNow = 0;
};

} // namespace vmmc
} // namespace esp

#endif // ESP_VMMC_ESPFIRMWARE_H

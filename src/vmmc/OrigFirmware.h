//===--- OrigFirmware.h - Baseline C-style VMMC firmware --------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vmmcOrig: the baseline VMMC firmware written in the traditional
/// event-driven state-machine style of the paper's Appendix A — a
/// setHandler/setState/deliverEvent runtime, handlers that communicate
/// through global variables, and hand-optimized fast paths that bypass
/// the state machines when the DMAs are free and no other request is in
/// flight (§2.2). Functionally identical to the ESP firmware; the
/// difference is the concurrency machinery, whose costs are charged per
/// handler dispatch and state transition instead of per interpreted ESP
/// instruction.
///
/// vmmcOrigNoFastPaths is the same firmware with the fast paths disabled
/// (the paper's third measurement series).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_VMMC_ORIGFIRMWARE_H
#define ESP_VMMC_ORIGFIRMWARE_H

#include "sim/Nic.h"

#include <deque>
#include <functional>
#include <map>
#include <vector>

namespace esp {
namespace vmmc {

/// The Appendix A event-driven state-machine runtime: handlers are
/// registered per (state machine, state, event); delivering an event
/// queues it; dispatch invokes the handler registered for the machine's
/// *current* state.
class SmRuntime {
public:
  using Handler = std::function<void()>;

  void setHandler(int Sm, int State, int Event, Handler H) {
    Handlers[key(Sm, State, Event)] = std::move(H);
  }
  void setState(int Sm, int State) {
    States[Sm] = State;
    if (ChargeTransition)
      ChargeTransition();
  }
  int getState(int Sm) const {
    auto It = States.find(Sm);
    return It == States.end() ? 0 : It->second;
  }
  bool isState(int Sm, int State) const { return getState(Sm) == State; }
  void deliverEvent(int Sm, int Event) { Queue.push_back({Sm, Event}); }

  /// Dispatches every queued event; returns true if any handler ran.
  /// Events with no handler for the current state are dropped (the
  /// hazard the paper complains about).
  bool dispatchPending() {
    bool Ran = false;
    while (!Queue.empty()) {
      auto [Sm, Event] = Queue.front();
      Queue.pop_front();
      auto It = Handlers.find(key(Sm, getState(Sm), Event));
      if (It == Handlers.end())
        continue;
      if (ChargeDispatch)
        ChargeDispatch();
      It->second();
      Ran = true;
    }
    return Ran;
  }

  std::function<void()> ChargeDispatch;
  std::function<void()> ChargeTransition;

private:
  static uint64_t key(int Sm, int State, int Event) {
    return (static_cast<uint64_t>(Sm) << 32) |
           (static_cast<uint64_t>(State & 0xffff) << 16) |
           static_cast<uint64_t>(Event & 0xffff);
  }
  std::map<uint64_t, Handler> Handlers;
  std::map<int, int> States;
  std::deque<std::pair<int, int>> Queue;
};

/// The baseline firmware.
class OrigFirmware : public sim::Firmware {
public:
  explicit OrigFirmware(bool FastPaths);

  void runQuantum(sim::NicEnv &Env) override;
  const char *name() const override {
    return FastPaths ? "vmmcOrig" : "vmmcOrigNoFastPaths";
  }
  sim::SimTime repollAt() const override { return Repoll; }

  uint64_t FastPathTaken = 0;
  uint64_t SlowPathTaken = 0;

private:
  // State machines and events (Appendix A style).
  enum Sm { SM_SEND, SM_WINDOW, SM_RX, SM_DELIVER };
  enum SendState { S_WaitReq, S_WaitHostDma, S_WaitFetch, S_WaitWindow };
  enum DeliverState { D_Idle, D_WaitRdma };
  enum Event {
    EV_REQ,
    EV_DMA_FREE,
    EV_FETCH_DONE,
    EV_ENQUEUE,       ///< SM1 -> SM2 hand-off through globals (reqSM2).
    EV_WINDOW_SPACE,
    EV_PKT,
    EV_TICK,
    EV_RDMA_DONE,
    EV_TX_READY,
  };

  void installHandlers();

  // Handlers.
  void handleReq();
  void handleDmaFree();
  void handleFetchDone();
  void handleEnqueue();
  void handleWindowSpace();
  bool tryFastReceive();
  void handleRxPacket();
  void handleTick();
  void handleRdmaDone();
  void handleTxReady();

  // Shared helpers (called directly across "state machines" — exactly
  // the global-variable coupling the paper describes).
  uint64_t translate(uint64_t VAddr);
  bool tryStartFetch();
  void enqueueWindow(int Dest, int Buf, uint32_t Size, uint32_t MsgBytes,
                     uint64_t Token);
  void transmitSlot(unsigned Slot);
  void transmitAck(int Dest, uint32_t AckSeq);
  void retireAcks(int Src, uint32_t TheirAck);
  void startNextDelivery();
  void finishDelivery();

  SmRuntime Rt;
  bool FastPaths;
  sim::NicEnv *Env = nullptr;
  sim::SimTime Repoll = 0;

  // ---- Global variables (the paper's reqSM1/reqSM2/pAddr/sendData). ----
  static constexpr unsigned WSIZE = 8;
  static constexpr unsigned NNODES = 4;
  static constexpr uint32_t MTU = 4096;
  static constexpr uint32_t PAGESIZE = 4096;
  static constexpr unsigned PTSIZE = 64;
  static constexpr uint32_t SMALLMSG = 32;
  static constexpr uint64_t RTO = 4;

  uint64_t PageTable[PTSIZE] = {};

  // Current send request.
  int CurDest = 0;
  uint64_t CurVAddr = 0;
  uint32_t CurSize = 0;
  uint64_t CurToken = 0;
  uint32_t Remaining = 0;
  uint32_t Off = 0;
  uint32_t Chunk = 0;
  bool FastPathActive = false;

  // Chunk handed from the send machine to the window machine through
  // globals (the paper's reqSM2 idiom); also parks here when the window
  // is full.
  bool HavePendingChunk = false;
  int PendDest = 0;
  int PendBuf = -1;
  uint32_t PendSize = 0;
  uint32_t PendMsg = 0;
  uint64_t PendToken = 0;

  // Transmit window.
  struct Slot {
    bool Used = false;
    uint32_t Seq = 0;
    int Dest = 0;
    int Buf = -1;
    uint32_t Size = 0;
    uint32_t MsgBytes = 0;
    uint64_t Token = 0;
    uint64_t Tick = 0;
  };
  Slot Window[WSIZE];
  uint32_t NextSeq[NNODES] = {};
  uint32_t PbAck[NNODES] = {};
  unsigned Inflight = 0;
  uint64_t NowTicks = 0;
  std::deque<unsigned> PendingTx;      ///< Slots waiting for the send DMA.
  std::deque<std::pair<int, uint32_t>> PendingAcks;

  // Receive path.
  uint32_t ExpSeq[NNODES] = {};
  uint32_t Got[NNODES] = {};
  struct Delivery {
    int Src;
    uint32_t Size;
    uint32_t MsgBytes;
    uint64_t Token;
  };
  std::deque<Delivery> PendingDeliver;
  Delivery CurDeliver{};
};

/// Lines-of-code accounting for the comparison table: the baseline
/// implementation's source files.
unsigned getOrigFirmwareLines();

} // namespace vmmc
} // namespace esp

#endif // ESP_VMMC_ORIGFIRMWARE_H

//===--- SafetyHarness.h - Per-process memory-safety verification -*- C++ -*-=//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's per-process memory-safety verification (§4.4/§5.3): since
/// channel transfer is semantically a deep copy, processes share no
/// objects and memory safety is a *local* property — each process can be
/// verified separately against a nondeterministic environment that sends
/// every possible value (over bounded scalar domains) on the channels the
/// process reads and accepts everything the process writes.
///
/// BoundedEnvModel enumerates the value space of a channel's element type
/// with a mixed-radix encoding: ints range over a small domain, bools
/// over both values, records/unions/arrays over the product/sum/power of
/// their component spaces.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_MC_SAFETYHARNESS_H
#define ESP_MC_SAFETYHARNESS_H

#include "mc/ModelChecker.h"

#include <set>
#include <string>
#include <vector>

namespace esp {

/// Environment that sends all values of a bounded domain on the driven
/// channels. Used standalone in tests and by verifyProcessMemorySafety.
class BoundedEnvModel : public EnvModel {
public:
  BoundedEnvModel(std::set<std::string> DrivenChannels,
                  std::vector<int64_t> IntDomain = {0, 1},
                  unsigned ArrayLen = 1)
      : Driven(std::move(DrivenChannels)), IntDomain(std::move(IntDomain)),
        ArrayLen(ArrayLen) {}

  unsigned numVariants(const ChannelDecl *Chan) const override;
  Value makeVariant(const ChannelDecl *Chan, unsigned Index,
                    Heap &H) const override;

  /// Size of the value space of \p T under this domain (saturates at
  /// 1<<20 to keep enumeration sane).
  uint64_t countVariants(const Type *T) const;

private:
  Value buildVariant(const Type *T, uint64_t Index, Heap &H) const;

  std::set<std::string> Driven;
  std::vector<int64_t> IntDomain;
  unsigned ArrayLen;
};

struct SafetyOptions {
  std::vector<int64_t> IntDomain = {0, 1};
  unsigned ArrayLen = 1;
  McOptions Mc;
};

/// Verifies the memory safety of one process in isolation (§5.3). The
/// environment drives every channel the process receives from and
/// consumes everything it sends. Returns the model-checking result;
/// a Violation verdict means a memory bug (or assertion failure) was
/// found, with a counterexample trace.
McResult verifyProcessMemorySafety(const Program &Prog,
                                   const std::string &ProcessName,
                                   const SafetyOptions &Options);

/// Verifies a *cluster* of processes together (`espmc --process a,b`):
/// the named processes run concurrently, channels between them
/// rendezvous for real, and the environment drives exactly the channels
/// some kept process receives from that no kept process writes. With
/// more than one process the interleaving space grows multiplicatively,
/// which is what `--por` is for. A single-name cluster differs from
/// verifyProcessMemorySafety only when the process writes a channel it
/// also reads (the cluster keeps such a channel internal).
McResult verifyProcessClusterMemorySafety(
    const Program &Prog, const std::vector<std::string> &ProcessNames,
    const SafetyOptions &Options);

} // namespace esp

#endif // ESP_MC_SAFETYHARNESS_H

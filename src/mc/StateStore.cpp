//===--- StateStore.cpp - Visited-state storage for the checker ------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mc/StateStore.h"

#include "support/StringExtras.h"

#include <cassert>

using namespace esp;

// The second FNV seed shared by the 128-bit and bit-state hashing (the
// sequential and parallel backends must agree on it bit-for-bit).
static constexpr uint64_t SecondHashSeed = 0x9e3779b97f4a7c15ULL;

//===----------------------------------------------------------------------===//
// StateCompressor
//===----------------------------------------------------------------------===//

uint32_t StateCompressor::intern(std::string_view Blob) {
  if (auto It = Index.find(Blob); It != Index.end())
    return It->second;
  auto [It, IsNew] = Index.emplace(std::string(Blob),
                                   static_cast<uint32_t>(Index.size()));
  assert(IsNew && "transparent find missed an existing key");
  (void)IsNew;
  Bytes += It->first.size() + sizeof(std::string) + 16; // Node overhead.
  return It->second;
}

//===----------------------------------------------------------------------===//
// VisitedSet
//===----------------------------------------------------------------------===//

VisitedSet VisitedSet::exact() { return VisitedSet(Impl::Exact); }

VisitedSet VisitedSet::hashCompact(bool Wide) {
  return VisitedSet(Wide ? Impl::Hash128 : Impl::Hash64);
}

VisitedSet VisitedSet::bitState(unsigned Bits) {
  assert(Bits >= 3 && Bits < 64 && "bit-state bits must be validated");
  VisitedSet S(Impl::BitState);
  S.BitTable.assign((size_t(1) << Bits) / 8, 0);
  S.BitMask = (uint64_t(1) << Bits) - 1;
  return S;
}

bool VisitedSet::insert(std::string_view Key) {
  bool New = false;
  switch (Kind) {
  case Impl::Exact:
    // Heterogeneous find: the common revisit probes without building a
    // std::string; only a genuinely new key allocates.
    if (ExactKeys.find(Key) == ExactKeys.end()) {
      ExactKeys.emplace(Key);
      New = true;
    }
    break;
  case Impl::Hash64:
    New = Fp64.insert(mix64(fnv1aHash(Key.data(), Key.size()))).second;
    break;
  case Impl::Hash128: {
    Fp128 F;
    F.Hi = mix64(fnv1aHash(Key.data(), Key.size()));
    F.Lo = mix64(fnv1aHash(Key.data(), Key.size(), SecondHashSeed));
    New = Fp128Set.insert(F).second;
    break;
  }
  case Impl::BitState: {
    // Two independent hash functions over one bit table (SPIN's
    // supertrace uses the same trick to cut collisions).
    uint64_t H1 = mix64(fnv1aHash(Key.data(), Key.size())) & BitMask;
    uint64_t H2 =
        mix64(fnv1aHash(Key.data(), Key.size(), SecondHashSeed)) & BitMask;
    bool Seen1 = BitTable[H1 / 8] & (1 << (H1 % 8));
    bool Seen2 = BitTable[H2 / 8] & (1 << (H2 % 8));
    BitTable[H1 / 8] |= 1 << (H1 % 8);
    BitTable[H2 / 8] |= 1 << (H2 % 8);
    New = !(Seen1 && Seen2);
    break;
  }
  }
  Stored += New;
  return New;
}

size_t VisitedSet::bytes() const {
  switch (Kind) {
  case Impl::Exact: {
    size_t Bytes = ExactKeys.bucket_count() * sizeof(void *);
    for (const std::string &Key : ExactKeys)
      Bytes += Key.size() + sizeof(std::string) + 16; // Node overhead.
    return Bytes;
  }
  case Impl::Hash64:
    return Fp64.size() * (sizeof(uint64_t) + 16) +
           Fp64.bucket_count() * sizeof(void *);
  case Impl::Hash128:
    return Fp128Set.size() * (sizeof(Fp128) + 16) +
           Fp128Set.bucket_count() * sizeof(void *);
  case Impl::BitState:
    return BitTable.size();
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// ConcurrentStateCompressor
//===----------------------------------------------------------------------===//

ConcurrentStateCompressor::ConcurrentStateCompressor(unsigned Log2Shards) {
  assert(Log2Shards < 16 && "unreasonable shard count");
  size_t NumShards = size_t(1) << Log2Shards;
  Shards.reserve(NumShards);
  for (size_t I = 0; I != NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  ShardShift = 64 - Log2Shards;
}

uint32_t ConcurrentStateCompressor::intern(std::string_view Blob) {
  uint64_t H = mix64(fnv1aHash(Blob.data(), Blob.size()));
  Shard &S = *Shards[H >> ShardShift];
  std::lock_guard<std::mutex> Lock(S.M);
  if (auto It = S.Index.find(Blob); It != S.Index.end())
    return It->second;
  uint32_t Id = NextIndex.fetch_add(1, std::memory_order_relaxed);
  auto [It, IsNew] = S.Index.emplace(std::string(Blob), Id);
  (void)IsNew;
  S.Bytes += It->first.size() + sizeof(std::string) + 16; // Node overhead.
  return Id;
}

size_t ConcurrentStateCompressor::components() const {
  return NextIndex.load(std::memory_order_relaxed);
}

size_t ConcurrentStateCompressor::tableBytes() const {
  size_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    Total += S->Bytes;
  }
  return Total;
}

//===----------------------------------------------------------------------===//
// ConcurrentVisitedSet
//===----------------------------------------------------------------------===//

ConcurrentVisitedSet::ConcurrentVisitedSet(Impl K, unsigned Log2Shards)
    : Kind(K) {
  if (K == Impl::BitState)
    return; // The bit table is allocated by the factory.
  assert(Log2Shards < 16 && "unreasonable shard count");
  size_t NumShards = size_t(1) << Log2Shards;
  Shards.reserve(NumShards);
  for (size_t I = 0; I != NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  ShardShift = 64 - Log2Shards;
}

ConcurrentVisitedSet ConcurrentVisitedSet::exact(unsigned Log2Shards) {
  return ConcurrentVisitedSet(Impl::Exact, Log2Shards);
}

ConcurrentVisitedSet ConcurrentVisitedSet::hashCompact(bool Wide,
                                                       unsigned Log2Shards) {
  return ConcurrentVisitedSet(Wide ? Impl::Hash128 : Impl::Hash64,
                              Log2Shards);
}

ConcurrentVisitedSet ConcurrentVisitedSet::bitState(unsigned Bits,
                                                    uint64_t Seed) {
  assert(Bits >= 6 && Bits < 64 && "bit-state bits must be validated");
  ConcurrentVisitedSet S(Impl::BitState, 0);
  S.NumBitWords = (size_t(1) << Bits) / 64;
  S.BitWords = std::make_unique<std::atomic<uint64_t>[]>(S.NumBitWords);
  for (size_t I = 0; I != S.NumBitWords; ++I)
    S.BitWords[I].store(0, std::memory_order_relaxed);
  S.BitMask = (uint64_t(1) << Bits) - 1;
  S.Seed = Seed;
  return S;
}

bool ConcurrentVisitedSet::insert(std::string_view Key) {
  bool New = false;
  if (Kind == Impl::BitState) {
    // Seed == 0 reproduces the sequential hashing exactly; a swarm seed
    // perturbs both probes so each worker prunes a different slice.
    uint64_t H1 =
        mix64(fnv1aHash(Key.data(), Key.size()) ^ Seed) & BitMask;
    uint64_t H2 =
        mix64(fnv1aHash(Key.data(), Key.size(), SecondHashSeed) ^ Seed) &
        BitMask;
    uint64_t Old1 = BitWords[H1 / 64].fetch_or(uint64_t(1) << (H1 % 64),
                                               std::memory_order_relaxed);
    uint64_t Old2 = BitWords[H2 / 64].fetch_or(uint64_t(1) << (H2 % 64),
                                               std::memory_order_relaxed);
    bool Seen1 = Old1 & (uint64_t(1) << (H1 % 64));
    bool Seen2 = Old2 & (uint64_t(1) << (H2 % 64));
    New = !(Seen1 && Seen2);
    if (New)
      Stored.fetch_add(1, std::memory_order_relaxed);
    return New;
  }

  // Sharded backends: the shard index comes from the fingerprint's high
  // bits; the stored fingerprint is the full 64/128-bit value, so the
  // collision behavior matches the sequential VisitedSet bit-for-bit.
  uint64_t Fp = mix64(fnv1aHash(Key.data(), Key.size()));
  Shard &S = *Shards[Fp >> ShardShift];
  switch (Kind) {
  case Impl::Exact: {
    std::lock_guard<std::mutex> Lock(S.M);
    if (S.ExactKeys.find(Key) == S.ExactKeys.end()) {
      S.ExactKeys.emplace(Key);
      New = true;
    }
    break;
  }
  case Impl::Hash64: {
    std::lock_guard<std::mutex> Lock(S.M);
    New = S.Fp64.insert(Fp).second;
    break;
  }
  case Impl::Hash128: {
    VisitedSet::Fp128 F;
    F.Hi = Fp;
    F.Lo = mix64(fnv1aHash(Key.data(), Key.size(), SecondHashSeed));
    std::lock_guard<std::mutex> Lock(S.M);
    New = S.Fp128Set.insert(F).second;
    break;
  }
  case Impl::BitState:
    break; // Handled above.
  }
  if (New)
    Stored.fetch_add(1, std::memory_order_relaxed);
  return New;
}

size_t ConcurrentVisitedSet::bytes() const {
  if (Kind == Impl::BitState)
    return NumBitWords * sizeof(uint64_t);
  size_t Total = 0;
  for (const std::unique_ptr<Shard> &Sp : Shards) {
    Shard &S = *Sp;
    std::lock_guard<std::mutex> Lock(S.M);
    switch (Kind) {
    case Impl::Exact:
      Total += S.ExactKeys.bucket_count() * sizeof(void *);
      for (const std::string &Key : S.ExactKeys)
        Total += Key.size() + sizeof(std::string) + 16; // Node overhead.
      break;
    case Impl::Hash64:
      Total += S.Fp64.size() * (sizeof(uint64_t) + 16) +
               S.Fp64.bucket_count() * sizeof(void *);
      break;
    case Impl::Hash128:
      Total += S.Fp128Set.size() * (sizeof(VisitedSet::Fp128) + 16) +
               S.Fp128Set.bucket_count() * sizeof(void *);
      break;
    case Impl::BitState:
      break;
    }
  }
  return Total;
}

//===--- StateStore.cpp - Visited-state storage for the checker ------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mc/StateStore.h"

#include "support/StringExtras.h"

#include <cassert>

using namespace esp;

//===----------------------------------------------------------------------===//
// StateCompressor
//===----------------------------------------------------------------------===//

uint32_t StateCompressor::intern(const std::string &Blob) {
  auto [It, IsNew] = Index.emplace(Blob, static_cast<uint32_t>(Index.size()));
  if (IsNew)
    Bytes += It->first.size() + sizeof(std::string) + 16; // Node overhead.
  return It->second;
}

//===----------------------------------------------------------------------===//
// VisitedSet
//===----------------------------------------------------------------------===//

VisitedSet VisitedSet::exact() { return VisitedSet(Impl::Exact); }

VisitedSet VisitedSet::hashCompact(bool Wide) {
  return VisitedSet(Wide ? Impl::Hash128 : Impl::Hash64);
}

VisitedSet VisitedSet::bitState(unsigned Bits) {
  assert(Bits >= 3 && Bits < 64 && "bit-state bits must be validated");
  VisitedSet S(Impl::BitState);
  S.BitTable.assign((size_t(1) << Bits) / 8, 0);
  S.BitMask = (uint64_t(1) << Bits) - 1;
  return S;
}

bool VisitedSet::insert(std::string_view Key) {
  bool New = false;
  switch (Kind) {
  case Impl::Exact:
    New = ExactKeys.emplace(Key).second;
    break;
  case Impl::Hash64:
    New = Fp64.insert(mix64(fnv1aHash(Key.data(), Key.size()))).second;
    break;
  case Impl::Hash128: {
    Fp128 F;
    F.Hi = mix64(fnv1aHash(Key.data(), Key.size()));
    F.Lo = mix64(fnv1aHash(Key.data(), Key.size(), 0x9e3779b97f4a7c15ULL));
    New = Fp128Set.insert(F).second;
    break;
  }
  case Impl::BitState: {
    // Two independent hash functions over one bit table (SPIN's
    // supertrace uses the same trick to cut collisions).
    uint64_t H1 = mix64(fnv1aHash(Key.data(), Key.size())) & BitMask;
    uint64_t H2 =
        mix64(fnv1aHash(Key.data(), Key.size(), 0x9e3779b97f4a7c15ULL)) &
        BitMask;
    bool Seen1 = BitTable[H1 / 8] & (1 << (H1 % 8));
    bool Seen2 = BitTable[H2 / 8] & (1 << (H2 % 8));
    BitTable[H1 / 8] |= 1 << (H1 % 8);
    BitTable[H2 / 8] |= 1 << (H2 % 8);
    New = !(Seen1 && Seen2);
    break;
  }
  }
  Stored += New;
  return New;
}

size_t VisitedSet::bytes() const {
  switch (Kind) {
  case Impl::Exact: {
    size_t Bytes = ExactKeys.bucket_count() * sizeof(void *);
    for (const std::string &Key : ExactKeys)
      Bytes += Key.size() + sizeof(std::string) + 16; // Node overhead.
    return Bytes;
  }
  case Impl::Hash64:
    return Fp64.size() * (sizeof(uint64_t) + 16) +
           Fp64.bucket_count() * sizeof(void *);
  case Impl::Hash128:
    return Fp128Set.size() * (sizeof(Fp128) + 16) +
           Fp128Set.bucket_count() * sizeof(void *);
  case Impl::BitState:
    return BitTable.size();
  }
  return 0;
}

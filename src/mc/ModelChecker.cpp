//===--- ModelChecker.cpp - Explicit-state model checker --------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mc/ModelChecker.h"

#include "support/StringExtras.h"

#include <chrono>
#include <random>
#include <sstream>
#include <unordered_set>

using namespace esp;

namespace {

/// Shared search harness for the three modes.
class Search {
public:
  Search(const ModuleIR &Module, const McOptions &Options)
      : Module(Module), Options(Options) {}

  McResult run() {
    auto Start = std::chrono::steady_clock::now();
    McResult Result;
    switch (Options.Mode) {
    case SearchMode::Exhaustive:
    case SearchMode::BitState:
      Result = dfs();
      break;
    case SearchMode::Simulation:
      Result = simulate();
      break;
    }
    Result.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    return Result;
  }

private:
  MachineOptions machineOptions() const {
    MachineOptions MO;
    MO.MaxObjects = Options.MaxObjects;
    MO.ReuseObjectIds = true;
    MO.DeepCopyTransfers = true;
    return MO;
  }

  /// Checks the machine's current state for violations; fills \p Result
  /// and returns true when one is found.
  bool checkState(Machine &M, McResult &Result) {
    if (M.error()) {
      Result.Verdict = McVerdict::Violation;
      Result.Violation = M.error();
      return true;
    }
    if (Options.CheckLeaks) {
      unsigned Leaked = M.countLeakedObjects();
      if (Leaked > 0) {
        Result.Verdict = McVerdict::Violation;
        Result.LeakedObjects = Leaked;
        Result.Violation.Kind = RuntimeErrorKind::OutOfObjects;
        Result.Violation.Message =
            std::to_string(Leaked) + " object(s) leaked (live but "
                                     "unreachable from any process)";
        return true;
      }
    }
    return false;
  }

  bool checkDeadlock(Machine &M, const std::vector<Move> &Moves,
                     McResult &Result) {
    if (!Options.CheckDeadlock || !Moves.empty() || M.error())
      return false;
    bool AnyBlocked = false;
    for (unsigned I = 0, E = M.numProcesses(); I != E; ++I)
      AnyBlocked |= M.proc(I).St == ProcState::Status::Blocked;
    if (!AnyBlocked)
      return false; // All processes finished: normal termination.
    Result.Verdict = McVerdict::Violation;
    Result.Deadlock = true;
    Result.Violation.Kind = RuntimeErrorKind::None;
    Result.Violation.Message = "deadlock: blocked processes with no "
                               "enabled move";
    return true;
  }

  //===--- Exhaustive / bit-state DFS --------------------------------------===//

  struct Frame {
    Machine::Snapshot Snap;
    std::vector<Move> Moves;
    size_t NextMove = 0;
    std::string TakenLabel;
  };

  bool wasVisited(const std::string &Key) {
    if (Options.Mode == SearchMode::Exhaustive)
      return !VisitedExact.insert(Key).second;
    // Bit-state hashing: two independent hash functions over one bit
    // table (SPIN's supertrace uses the same trick to cut collisions).
    uint64_t Mask = (uint64_t(1) << Options.BitStateBits) - 1;
    uint64_t H1 = fnv1aHash(Key.data(), Key.size()) & Mask;
    uint64_t H2 =
        fnv1aHash(Key.data(), Key.size(), 0x9e3779b97f4a7c15ULL) & Mask;
    bool Seen = BitTable[H1 / 8] & (1 << (H1 % 8));
    bool Seen2 = BitTable[H2 / 8] & (1 << (H2 % 8));
    BitTable[H1 / 8] |= 1 << (H1 % 8);
    BitTable[H2 / 8] |= 1 << (H2 % 8);
    return Seen && Seen2;
  }

  size_t visitedMemory() const {
    if (Options.Mode == SearchMode::BitState)
      return BitTable.size();
    size_t Bytes = 0;
    for (const std::string &Key : VisitedExact)
      Bytes += Key.size() + sizeof(std::string) + 16; // Bucket overhead.
    return Bytes;
  }

  void buildTrace(const std::vector<Frame> &Stack, McResult &Result) {
    for (const Frame &F : Stack)
      if (!F.TakenLabel.empty())
        Result.Trace.push_back(F.TakenLabel);
  }

  McResult dfs() {
    McResult Result;
    if (Options.Mode == SearchMode::BitState)
      BitTable.assign((size_t(1) << Options.BitStateBits) / 8, 0);

    Machine M(Module, machineOptions());
    M.setEnvModel(Options.Env);
    M.start();
    Result.StateVectorBytes = M.serializeState().size();
    ++Result.StatesExplored;
    if (checkState(M, Result))
      return Result;
    wasVisited(M.serializeState());
    ++Result.StatesStored;

    std::vector<Frame> Stack;
    {
      Frame Root;
      Root.Snap = M.snapshot();
      Root.Moves = M.enumerateMoves();
      if (checkState(M, Result) || checkDeadlock(M, Root.Moves, Result))
        return Result;
      Stack.push_back(std::move(Root));
    }

    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      if (Top.NextMove >= Top.Moves.size()) {
        Stack.pop_back();
        continue;
      }
      if (Result.StatesExplored >= Options.MaxStates) {
        Result.Verdict = McVerdict::StateLimit;
        Result.MemoryBytes = visitedMemory();
        return Result;
      }
      Move Chosen = Top.Moves[Top.NextMove++];
      M.restore(Top.Snap);
      M.applyMove(Chosen);
      ++Result.Transitions;
      ++Result.StatesExplored;
      if (checkState(M, Result)) {
        Top.TakenLabel = Chosen.str(Module);
        buildTrace(Stack, Result);
        Result.MemoryBytes = visitedMemory();
        return Result;
      }
      std::string Key = M.serializeState();
      if (wasVisited(Key))
        continue;
      ++Result.StatesStored;
      Frame Next;
      Next.Snap = M.snapshot();
      Next.Moves = M.enumerateMoves();
      Top.TakenLabel = Chosen.str(Module);
      if (checkState(M, Result) ||
          checkDeadlock(M, Next.Moves, Result)) {
        buildTrace(Stack, Result);
        Result.Trace.push_back(Chosen.str(Module));
        Result.MemoryBytes = visitedMemory();
        return Result;
      }
      Top.TakenLabel.clear();
      Next.TakenLabel.clear();
      if (Stack.size() >= Options.MaxDepth) {
        Stack.pop_back();
        continue;
      }
      if (Stack.size() + 1 > Result.MaxDepthReached)
        Result.MaxDepthReached = static_cast<unsigned>(Stack.size() + 1);
      Stack.push_back(std::move(Next));
    }
    Result.Verdict = Options.Mode == SearchMode::Exhaustive
                         ? McVerdict::OK
                         : McVerdict::PartialOK;
    Result.MemoryBytes = visitedMemory();
    return Result;
  }

  //===--- Random simulation ------------------------------------------------===//

  McResult simulate() {
    McResult Result;
    std::mt19937_64 Rng(Options.Seed);
    for (uint64_t Run = 0; Run != Options.SimulationRuns; ++Run) {
      Machine M(Module, machineOptions());
      M.setEnvModel(Options.Env);
      M.start();
      if (Run == 0)
        Result.StateVectorBytes = M.serializeState().size();
      std::vector<std::string> Trace;
      for (unsigned Depth = 0; Depth != Options.SimulationDepth; ++Depth) {
        ++Result.StatesExplored;
        if (checkState(M, Result)) {
          Result.Trace = Trace;
          return Result;
        }
        std::vector<Move> Moves = M.enumerateMoves();
        if (checkState(M, Result) || checkDeadlock(M, Moves, Result)) {
          Result.Trace = Trace;
          return Result;
        }
        if (Moves.empty())
          break; // Normal termination.
        const Move &Chosen =
            Moves[std::uniform_int_distribution<size_t>(0, Moves.size() -
                                                               1)(Rng)];
        Trace.push_back(Chosen.str(Module));
        M.applyMove(Chosen);
        ++Result.Transitions;
        if (Depth + 1 > Result.MaxDepthReached)
          Result.MaxDepthReached = Depth + 1;
      }
    }
    Result.Verdict = McVerdict::PartialOK;
    return Result;
  }

  const ModuleIR &Module;
  const McOptions &Options;
  std::unordered_set<std::string> VisitedExact;
  std::vector<uint8_t> BitTable;
};

} // namespace

McResult esp::checkModel(const ModuleIR &Module, const McOptions &Options) {
  Search S(Module, Options);
  return S.run();
}

std::string McResult::report() const {
  std::ostringstream OS;
  switch (Verdict) {
  case McVerdict::OK:
    OS << "verification completed: no errors found\n";
    break;
  case McVerdict::PartialOK:
    OS << "partial search completed: no errors found\n";
    break;
  case McVerdict::StateLimit:
    OS << "search truncated at state limit\n";
    break;
  case McVerdict::Violation:
    if (Deadlock)
      OS << "violation: deadlock\n";
    else
      OS << "violation: " << runtimeErrorKindName(Violation.Kind) << "\n";
    if (!Violation.Message.empty())
      OS << "  " << Violation.Message << "\n";
    break;
  }
  OS << "state-vector " << StateVectorBytes << " byte, depth reached "
     << MaxDepthReached << "\n";
  OS << StatesExplored << " states, explored\n";
  OS << StatesStored << " states, stored\n";
  OS << Transitions << " transitions\n";
  OS << "memory usage (visited set): " << (MemoryBytes / 1024.0 / 1024.0)
     << " Mbyte\n";
  OS << "elapsed " << Seconds << " s\n";
  if (!Trace.empty()) {
    OS << "counterexample (" << Trace.size() << " moves):\n";
    for (const std::string &Step : Trace)
      OS << "  " << Step << "\n";
  }
  return OS.str();
}

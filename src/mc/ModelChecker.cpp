//===--- ModelChecker.cpp - Explicit-state model checker --------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mc/ModelChecker.h"

#include "mc/ParallelSearch.h"
#include "mc/Por.h"
#include "mc/SearchCommon.h"
#include "mc/StateStore.h"
#include "obs/Json.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <random>
#include <sstream>
#include <thread>
#include <unordered_map>

using namespace esp;

unsigned esp::clampedBitStateBits(unsigned Bits) {
  return std::clamp(Bits, MinBitStateBits, MaxBitStateBits);
}

namespace {

/// Shared search harness for the three modes.
class Search {
public:
  Search(const ModuleIR &Module, const McOptions &Options)
      : Module(Module), Options(Options) {}

  McResult run() {
    auto Start = std::chrono::steady_clock::now();
    McResult Result;
    switch (Options.Mode) {
    case SearchMode::Exhaustive:
    case SearchMode::BitState:
      Result = dfs();
      break;
    case SearchMode::Simulation:
      Result = simulate();
      break;
    }
    Result.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    return Result;
  }

private:
  // The state checks are shared with the parallel engine
  // (SearchCommon.h): the determinism guarantee between --jobs 1 and
  // --jobs N rests on both agreeing exactly on what a violation is.
  MachineOptions machineOptions() const {
    return mc_detail::verifyMachineOptions(Options);
  }

  bool checkState(Machine &M, McResult &Result) {
    return mc_detail::checkStateViolation(M, Options, Result);
  }

  bool checkDeadlock(Machine &M, const std::vector<Move> &Moves,
                     McResult &Result) {
    return mc_detail::checkDeadlockViolation(M, Moves, Options, Result);
  }

  //===--- Exhaustive / bit-state DFS --------------------------------------===//

  /// One DFS level. Frames do not carry machine snapshots: the state of
  /// a frame is re-derived on demand from the nearest checkpoint by
  /// replaying the Taken moves of the frames in between.
  struct Frame {
    Move Taken; ///< Move that produced this frame's state (root: unused).
    std::vector<Move> Moves;
    size_t NextMove = 0;
    /// Moves[0..AmpleCount) is the ample prefix; equals Moves.size()
    /// without --por or when no eligible ample subset exists.
    size_t AmpleCount = 0;
    /// Cycle proviso (C3): an ample edge closed a cycle back into the
    /// DFS stack, so the frame expands its full move list after the
    /// ample prefix.
    bool Upgraded = false;
    /// Visited-set key of this frame's state; only populated under
    /// --por, where it backs the on-stack set for the cycle proviso.
    std::string StateKey;
  };

  /// Sparse snapshot: a full machine state every SnapshotStride levels.
  struct Checkpoint {
    size_t Depth; ///< Frame index the snapshot corresponds to.
    Machine::Snapshot Snap;
  };

  /// Emits each move of the counterexample exactly once: the Taken move
  /// of every non-root frame, then \p Final (the move that produced the
  /// violating state) when it has not been pushed as a frame.
  void buildTrace(const std::vector<Frame> &Stack, const Move *Final,
                  McResult &Result) {
    for (size_t I = 1; I < Stack.size(); ++I) {
      Result.TraceMoves.push_back(Stack[I].Taken);
      Result.Trace.push_back(Stack[I].Taken.str(Module));
    }
    if (Final) {
      Result.TraceMoves.push_back(*Final);
      Result.Trace.push_back(Final->str(Module));
    }
  }

  McResult dfs() {
    McResult Result;
    // Live progress publishing is observe-only: relaxed stores of the
    // same counters the result reports, so --progress cannot perturb the
    // search.
    obs::SearchProgress *Prog = Options.Progress;
    const unsigned Stride = std::max(1u, Options.SnapshotStride);
    VisitedSet Visited =
        Options.Mode == SearchMode::BitState
            ? VisitedSet::bitState(clampedBitStateBits(Options.BitStateBits))
            : Options.Visited == VisitedKind::Exact
                  ? VisitedSet::exact()
                  : VisitedSet::hashCompact(Options.Visited ==
                                            VisitedKind::Hash128);
    // COLLAPSE pays off only when full vectors are stored; fingerprint
    // and bit-state backends hash the flat canonical vector directly.
    const bool UseCollapse = Options.Collapse &&
                             Options.Mode != SearchMode::BitState &&
                             Options.Visited == VisitedKind::Exact;
    StateCompressor Compressor;

    // Scratch buffers reused across every state.
    std::string Raw;
    std::string Control;
    std::string Key;
    std::vector<std::string> Blobs;

    // Builds the visited-set key for the current machine state: the flat
    // canonical vector, or control bytes + interned component indices.
    auto makeKey = [&](Machine &M) -> const std::string & {
      if (!UseCollapse) {
        M.serializeState(Raw);
        return Raw;
      }
      size_t NumObjects = M.serializeComponents(Control, Blobs);
      Key = Control;
      for (size_t I = 0; I != NumObjects; ++I)
        appendVarint(Key, Compressor.intern(Blobs[I]));
      return Key;
    };

    auto finalize = [&](McResult &R) {
      R.ComponentTableBytes = Compressor.tableBytes();
      R.MemoryBytes = Visited.bytes() + Compressor.tableBytes();
    };

    // --por: ample-set selection from the static independence analysis.
    // Built once per search; selection mutates only move order, so the
    // non-POR path stays bit-identical.
    std::unique_ptr<mc_detail::PorContext> Por;
    if (Options.Por)
      Por = std::make_unique<mc_detail::PorContext>(
          Module, Options.EnvSendBudget != 0);
    // States currently on the DFS stack (key -> frame index), maintained
    // only under --por. The cycle proviso (C3) needs to distinguish an
    // edge that closes a cycle (some state on the cycle must expand its
    // full move list, or the deferred moves could be ignored forever
    // around it) from one that merely rejoins an already finished region
    // (safe: that state discharged its own proviso when it was
    // expanded). On a back edge we upgrade the *target* frame: every
    // cycle through the edge passes through the target, so the classic
    // C3 argument goes through, and upgrades concentrate on the few loop
    // head states instead of every predecessor that re-enters a loop.
    std::unordered_map<std::string, size_t> OnStack;
    auto selectAmple = [&](Machine &M, Frame &F) {
      F.AmpleCount = F.Moves.size();
      if (!Por)
        return;
      F.AmpleCount = Por->selectAmple(M, F.Moves);
      if (F.AmpleCount < F.Moves.size())
        ++Result.PorReducedStates;
      else
        ++Result.PorFullStates;
    };

    Machine M(Module, machineOptions());
    M.setEnvModel(Options.Env);
    M.start();
    M.serializeState(Raw);
    Result.StateVectorBytes = Raw.size();
    ++Result.StatesExplored;
    if (checkState(M, Result)) {
      finalize(Result);
      return Result;
    }
    std::string RootKeyCopy;
    {
      const std::string &RootKey = makeKey(M);
      Result.CompressedStateBytes = RootKey.size();
      Visited.insert(RootKey);
      if (Por)
        RootKeyCopy = RootKey;
    }
    ++Result.StatesStored;

    std::vector<Frame> Stack;
    std::vector<Checkpoint> Checkpoints;
    // Frame index whose state the machine currently holds; SIZE_MAX when
    // the machine sits in a state that is not on the stack.
    constexpr size_t Dirty = SIZE_MAX;
    size_t MachineAt = Dirty;

    {
      Frame Root;
      Root.Moves = M.enumerateMoves();
      if (M.error() ? checkState(M, Result)
                    : checkDeadlock(M, Root.Moves, Result)) {
        finalize(Result);
        return Result;
      }
      selectAmple(M, Root);
      if (Por) {
        Root.StateKey = std::move(RootKeyCopy);
        OnStack.emplace(Root.StateKey, 0);
      }
      Stack.push_back(std::move(Root));
      // The root checkpoint is taken after enumerateMoves so that every
      // restore resumes from exactly the state the first child departed
      // from (enumeration probes perturb generation counters, which is
      // canonically invisible but must be replayed consistently).
      Checkpoints.push_back({0, M.snapshot()});
      MachineAt = 0;
      Result.MaxDepthReached = 1;
    }

    // Restores the machine to the state of the top frame: nearest
    // checkpoint + replay of the Taken moves above it.
    auto restoreToTop = [&]() {
      size_t Target = Stack.size() - 1;
      if (MachineAt == Target)
        return;
      const Checkpoint &C = Checkpoints.back();
      assert(C.Depth <= Target && "checkpoint deeper than target frame");
      M.restore(C.Snap);
      for (size_t I = C.Depth + 1; I <= Target; ++I) {
        assert(!M.error() && "replayed a previously clean path into error");
        M.applyMove(Stack[I].Taken);
        ++Result.ReplayedMoves;
      }
      MachineAt = Target;
    };

    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      if (Top.NextMove >= (Top.Upgraded ? Top.Moves.size() : Top.AmpleCount)) {
        if (Por)
          OnStack.erase(Top.StateKey);
        Stack.pop_back();
        while (!Checkpoints.empty() &&
               Checkpoints.back().Depth >= Stack.size())
          Checkpoints.pop_back();
        if (MachineAt != Dirty && MachineAt >= Stack.size())
          MachineAt = Dirty;
        continue;
      }
      if (Result.StatesExplored >= Options.MaxStates) {
        Result.Verdict = McVerdict::StateLimit;
        finalize(Result);
        return Result;
      }
      Move Chosen = Top.Moves[Top.NextMove++];
      restoreToTop();
      M.applyMove(Chosen);
      MachineAt = Dirty;
      ++Result.Transitions;
      ++Result.StatesExplored;
      if (Prog) {
        Prog->Explored.store(Result.StatesExplored,
                             std::memory_order_relaxed);
        Prog->Transitions.store(Result.Transitions,
                                std::memory_order_relaxed);
        Prog->FrontierDepth.store(Stack.size(), std::memory_order_relaxed);
      }
      if (checkState(M, Result)) {
        buildTrace(Stack, &Chosen, Result);
        finalize(Result);
        return Result;
      }
      std::string ChildKeyCopy;
      {
        const std::string &ChildKey = makeKey(M);
        if (Por)
          ChildKeyCopy = ChildKey;
        if (!Visited.insert(ChildKey)) {
          // Cycle proviso (C3): an edge back onto the DFS stack closes a
          // cycle along which the deferred moves could be ignored
          // forever, so some state on the cycle must expand its full
          // move list. Every such cycle passes through the back edge's
          // target, so upgrading the target frame discharges C3 for all
          // cycles through this edge at once. When the source frame is
          // already fully expanded it lies on the cycle itself and
          // nothing more is needed. Rejoining a finished region is
          // harmless: that state discharged its own proviso when it was
          // expanded.
          if (Por && !Top.Upgraded && Top.AmpleCount < Top.Moves.size()) {
            auto It = OnStack.find(ChildKey);
            if (It != OnStack.end()) {
              Frame &Target = Stack[It->second];
              if (!Target.Upgraded &&
                  Target.AmpleCount < Target.Moves.size()) {
                Target.Upgraded = true;
                ++Result.PorProvisoUpgrades;
              }
            }
          }
          continue;
        }
      }
      ++Result.StatesStored;
      if (Prog) {
        Prog->Stored.store(Result.StatesStored, std::memory_order_relaxed);
        if (Result.StatesStored % 4096 == 0)
          Prog->VisitedBytes.store(Visited.bytes() + Compressor.tableBytes(),
                                   std::memory_order_relaxed);
      }
      if (Stack.size() >= Options.MaxDepth) {
        // Depth-bounded prune: the subtree below this state is not
        // explored, so an error-free search is only PartialOK.
        Result.DepthTruncated = true;
        continue;
      }
      Frame Next;
      Next.Taken = Chosen;
      Next.Moves = M.enumerateMoves();
      // Enumeration itself can fault (ambiguous dispatch, object-table
      // exhaustion while probing); leaks cannot appear here, so only the
      // error needs rechecking.
      if (M.error() ? checkState(M, Result)
                    : checkDeadlock(M, Next.Moves, Result)) {
        buildTrace(Stack, &Chosen, Result);
        finalize(Result);
        return Result;
      }
      selectAmple(M, Next);
      if (Por) {
        Next.StateKey = std::move(ChildKeyCopy);
        OnStack.emplace(Next.StateKey, Stack.size());
      }
      Stack.push_back(std::move(Next));
      MachineAt = Stack.size() - 1;
      if (MachineAt % Stride == 0)
        Checkpoints.push_back({MachineAt, M.snapshot()});
      Result.MaxDepthReached = std::max(
          Result.MaxDepthReached, static_cast<unsigned>(Stack.size()));
    }
    Result.Verdict =
        Options.Mode == SearchMode::Exhaustive && !Result.DepthTruncated
            ? McVerdict::OK
            : McVerdict::PartialOK;
    finalize(Result);
    return Result;
  }

  //===--- Random simulation ------------------------------------------------===//

  McResult simulate() {
    McResult Result;
    obs::SearchProgress *Prog = Options.Progress;
    std::mt19937_64 Rng(Options.Seed);
    for (uint64_t Run = 0; Run != Options.SimulationRuns; ++Run) {
      Machine M(Module, machineOptions());
      M.setEnvModel(Options.Env);
      M.start();
      if (Run == 0)
        Result.StateVectorBytes = M.serializeState().size();
      std::vector<std::string> Trace;
      std::vector<Move> TraceMoves;
      for (unsigned Depth = 0; Depth != Options.SimulationDepth; ++Depth) {
        ++Result.StatesExplored;
        if (Prog) {
          Prog->Explored.store(Result.StatesExplored,
                               std::memory_order_relaxed);
          Prog->Transitions.store(Result.Transitions,
                                  std::memory_order_relaxed);
        }
        if (checkState(M, Result)) {
          Result.Trace = Trace;
          Result.TraceMoves = TraceMoves;
          return Result;
        }
        std::vector<Move> Moves = M.enumerateMoves();
        if (checkState(M, Result) || checkDeadlock(M, Moves, Result)) {
          Result.Trace = Trace;
          Result.TraceMoves = TraceMoves;
          return Result;
        }
        if (Moves.empty())
          break; // Normal termination.
        const Move &Chosen =
            Moves[std::uniform_int_distribution<size_t>(0, Moves.size() -
                                                               1)(Rng)];
        Trace.push_back(Chosen.str(Module));
        TraceMoves.push_back(Chosen);
        M.applyMove(Chosen);
        ++Result.Transitions;
        if (Depth + 1 > Result.MaxDepthReached)
          Result.MaxDepthReached = Depth + 1;
      }
    }
    Result.Verdict = McVerdict::PartialOK;
    return Result;
  }

  const ModuleIR &Module;
  const McOptions &Options;
};

} // namespace

McResult esp::checkModel(const ModuleIR &Module, const McOptions &Options) {
  unsigned Jobs = Options.Jobs != 0
                      ? Options.Jobs
                      : std::max(1u, std::thread::hardware_concurrency());
  if (Jobs <= 1) {
    // --jobs 1: the sequential engine, untouched — zero regression risk.
    Search S(Module, Options);
    return S.run();
  }
  return runParallelSearch(Module, Options, Jobs);
}

bool esp::replayTrace(const ModuleIR &Module, const McOptions &Options,
                      const McResult &Result) {
  if (!Result.foundViolation())
    return false;
  MachineOptions MO;
  MO.MaxObjects = Options.MaxObjects;
  MO.ReuseObjectIds = true;
  MO.DeepCopyTransfers = true;
  Machine M(Module, MO);
  M.setEnvModel(Options.Env);
  M.start();
  for (const Move &Step : Result.TraceMoves) {
    if (M.error())
      return false; // Violated before the trace ended.
    std::vector<Move> Moves = M.enumerateMoves();
    if (M.error())
      return false;
    if (std::find(Moves.begin(), Moves.end(), Step) == Moves.end())
      return false; // The reported move is not enabled here.
    M.applyMove(Step);
  }
  if (Result.Deadlock)
    return M.isDeadlocked();
  if (Result.LeakedObjects > 0 && !M.error())
    return M.countLeakedObjects() == Result.LeakedObjects;
  if (!M.error())
    M.enumerateMoves(); // Errors that only surface during enumeration.
  return M.error().Kind == Result.Violation.Kind;
}

std::string McResult::report() const {
  std::ostringstream OS;
  switch (Verdict) {
  case McVerdict::OK:
    OS << "verification completed: no errors found\n";
    break;
  case McVerdict::PartialOK:
    OS << "partial search completed: no errors found\n";
    if (DepthTruncated)
      OS << "  warning: max search depth too small (search truncated at "
            "the depth bound)\n";
    break;
  case McVerdict::StateLimit:
    OS << "search truncated at state limit\n";
    break;
  case McVerdict::Violation:
    if (Deadlock)
      OS << "violation: deadlock\n";
    else
      OS << "violation: " << runtimeErrorKindName(Violation.Kind) << "\n";
    if (!Violation.Message.empty())
      OS << "  " << Violation.Message << "\n";
    break;
  }
  OS << "state-vector " << StateVectorBytes << " byte";
  if (CompressedStateBytes && CompressedStateBytes != StateVectorBytes)
    OS << " (stored " << CompressedStateBytes << " byte)";
  OS << ", depth reached " << MaxDepthReached << "\n";
  OS << StatesExplored << " states, explored\n";
  OS << StatesStored << " states, stored\n";
  OS << Transitions << " transitions\n";
  if (PorReducedStates || PorFullStates || PorProvisoUpgrades)
    OS << "partial-order reduction: " << PorReducedStates
       << " state(s) expanded with an ample subset, " << PorFullStates
       << " fully, " << PorProvisoUpgrades << " proviso upgrade(s)\n";
  if (ReplayedMoves)
    OS << ReplayedMoves << " moves replayed (checkpoint restore)\n";
  if (JobsUsed > 1) {
    OS << JobsUsed << " workers (";
    for (size_t I = 0; I != WorkerExplored.size(); ++I)
      OS << (I ? " " : "") << WorkerExplored[I];
    OS << " states each), " << SharedWorkItems
       << " work item(s) shared\n";
  }
  OS << "memory usage (visited set): " << (MemoryBytes / 1024.0 / 1024.0)
     << " Mbyte";
  if (ComponentTableBytes)
    OS << " (component table " << (ComponentTableBytes / 1024.0 / 1024.0)
       << " Mbyte)";
  OS << "\n";
  OS << "elapsed " << Seconds << " s\n";
  if (!Trace.empty()) {
    OS << "counterexample (" << Trace.size() << " moves):\n";
    for (const std::string &Step : Trace)
      OS << "  " << Step << "\n";
  }
  return OS.str();
}

std::string McResult::json() const {
  using obs::JsonValue;
  const char *V = "ok";
  switch (Verdict) {
  case McVerdict::OK:
    V = "ok";
    break;
  case McVerdict::PartialOK:
    V = "partial_ok";
    break;
  case McVerdict::StateLimit:
    V = "state_limit";
    break;
  case McVerdict::Violation:
    V = "violation";
    break;
  }
  JsonValue Root = JsonValue::object();
  Root.set("verdict", JsonValue::str(V));
  Root.set("states_explored", JsonValue::integer(StatesExplored));
  Root.set("states_stored", JsonValue::integer(StatesStored));
  Root.set("transitions", JsonValue::integer(Transitions));
  Root.set("max_depth_reached", JsonValue::integer(MaxDepthReached));
  Root.set("depth_truncated", JsonValue::boolean(DepthTruncated));
  Root.set("state_vector_bytes", JsonValue::integer(StateVectorBytes));
  Root.set("compressed_state_bytes",
           JsonValue::integer(CompressedStateBytes));
  Root.set("memory_bytes", JsonValue::integer(MemoryBytes));
  Root.set("replayed_moves", JsonValue::integer(ReplayedMoves));
  Root.set("seconds", JsonValue::number(Seconds));
  Root.set("jobs", JsonValue::integer(JobsUsed));
  if (PorReducedStates || PorFullStates || PorProvisoUpgrades) {
    Root.set("por_reduced_states", JsonValue::integer(PorReducedStates));
    Root.set("por_full_states", JsonValue::integer(PorFullStates));
    Root.set("por_proviso_upgrades",
             JsonValue::integer(PorProvisoUpgrades));
  }
  if (JobsUsed > 1) {
    JsonValue Explored = JsonValue::array();
    for (uint64_t N : WorkerExplored)
      Explored.push(JsonValue::integer(N));
    Root.set("worker_explored", std::move(Explored));
    JsonValue Items = JsonValue::array();
    for (uint64_t N : WorkerItems)
      Items.push(JsonValue::integer(N));
    Root.set("worker_items", std::move(Items));
    Root.set("shared_work_items", JsonValue::integer(SharedWorkItems));
  }
  if (foundViolation()) {
    Root.set("deadlock", JsonValue::boolean(Deadlock));
    Root.set("leaked_objects", JsonValue::integer(LeakedObjects));
    if (!Deadlock)
      Root.set("violation_kind",
               JsonValue::str(runtimeErrorKindName(Violation.Kind)));
    Root.set("trace_moves", JsonValue::integer(Trace.size()));
  }
  return Root.dump(1) + "\n";
}

//===--- StateStore.h - Visited-state storage for the checker ---*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory-efficient visited-state storage for the explicit-state model
/// checker, reproducing SPIN's answers to state explosion:
///
///  * StateCompressor — COLLAPSE compression: every distinct heap-object
///    blob is stored once in a component table; stored state vectors
///    carry small component indices instead of object contents.
///  * VisitedSet — unified visited-state set with four backends:
///    exact (full keys), hash-compaction (64- or 128-bit fingerprints
///    per state, SPIN's -DHC), and bit-state hashing (two bits per state
///    in a fixed table, SPIN's supertrace).
///
//===----------------------------------------------------------------------===//

#ifndef ESP_MC_STATESTORE_H
#define ESP_MC_STATESTORE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace esp {

/// COLLAPSE component table: interns serialized heap-object blobs and
/// hands out dense indices. A blob shared by millions of states (a
/// common buffer content, a steady-state record) is stored exactly once.
class StateCompressor {
public:
  /// Interns \p Blob, returning its component index. Identical blobs get
  /// identical indices for the lifetime of the compressor.
  uint32_t intern(const std::string &Blob);

  /// Number of distinct components stored.
  size_t components() const { return Index.size(); }

  /// Estimated memory held by the component table.
  size_t tableBytes() const { return Bytes; }

private:
  std::unordered_map<std::string, uint32_t> Index;
  size_t Bytes = 0;
};

/// Visited-state set. `insert` returns true when the key was new; a
/// false return in the lossy backends (hash-compaction fingerprint
/// collision, bit-state saturation) can prune an unvisited state — the
/// probability is negligible for hash-compaction (~n^2/2^64) and the
/// accepted trade-off of supertrace for bit-state.
class VisitedSet {
public:
  /// Exact storage of full keys (SPIN's default exhaustive storage).
  static VisitedSet exact();
  /// Hash-compaction: store one fingerprint per state. \p Wide selects
  /// 128-bit fingerprints over 64-bit.
  static VisitedSet hashCompact(bool Wide);
  /// Bit-state hashing over a 2^Bits-bit table with two independent
  /// hash functions. \p Bits must already be validated (see
  /// clampedBitStateBits in ModelChecker.h).
  static VisitedSet bitState(unsigned Bits);

  /// Inserts \p Key; true when it was not present before.
  bool insert(std::string_view Key);

  /// States recorded via insert() returning true.
  uint64_t size() const { return Stored; }

  /// Estimated memory held by the set.
  size_t bytes() const;

private:
  enum class Impl : uint8_t { Exact, Hash64, Hash128, BitState };

  explicit VisitedSet(Impl K) : Kind(K) {}

  struct Fp128 {
    uint64_t Hi = 0, Lo = 0;
    bool operator==(const Fp128 &O) const { return Hi == O.Hi && Lo == O.Lo; }
  };
  struct Fp128Hash {
    size_t operator()(const Fp128 &F) const { return static_cast<size_t>(F.Hi); }
  };

  Impl Kind;
  uint64_t Stored = 0;
  std::unordered_set<std::string> ExactKeys;
  std::unordered_set<uint64_t> Fp64;
  std::unordered_set<Fp128, Fp128Hash> Fp128Set;
  std::vector<uint8_t> BitTable;
  uint64_t BitMask = 0;
};

} // namespace esp

#endif // ESP_MC_STATESTORE_H

//===--- StateStore.h - Visited-state storage for the checker ---*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory-efficient visited-state storage for the explicit-state model
/// checker, reproducing SPIN's answers to state explosion:
///
///  * StateCompressor — COLLAPSE compression: every distinct heap-object
///    blob is stored once in a component table; stored state vectors
///    carry small component indices instead of object contents.
///  * VisitedSet — unified visited-state set with four backends:
///    exact (full keys), hash-compaction (64- or 128-bit fingerprints
///    per state, SPIN's -DHC), and bit-state hashing (two bits per state
///    in a fixed table, SPIN's supertrace).
///  * ConcurrentVisitedSet / ConcurrentStateCompressor — the same
///    backends for the parallel search (SPIN's multicore mode): a
///    lock-striped sharded table (shard selected by the fingerprint's
///    high bits) for exact/hash storage, an atomic fetch_or bit table
///    for bit-state, and a striped interning table for COLLAPSE.
///    Fingerprints match the sequential backends bit-for-bit, so a
///    completed parallel search stores exactly the states the
///    sequential one does.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_MC_STATESTORE_H
#define ESP_MC_STATESTORE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace esp {

/// Transparent hash for string-keyed tables: lets the hot lookup path
/// probe with a std::string_view and allocate a std::string only on
/// first insertion (C++20 heterogeneous lookup).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view S) const {
    return std::hash<std::string_view>{}(S);
  }
};

/// COLLAPSE component table: interns serialized heap-object blobs and
/// hands out dense indices. A blob shared by millions of states (a
/// common buffer content, a steady-state record) is stored exactly once.
class StateCompressor {
public:
  /// Interns \p Blob, returning its component index. Identical blobs get
  /// identical indices for the lifetime of the compressor. Only the
  /// first occurrence of a blob allocates; repeat lookups probe with the
  /// view directly.
  uint32_t intern(std::string_view Blob);

  /// Number of distinct components stored.
  size_t components() const { return Index.size(); }

  /// Estimated memory held by the component table.
  size_t tableBytes() const { return Bytes; }

private:
  std::unordered_map<std::string, uint32_t, TransparentStringHash,
                     std::equal_to<>>
      Index;
  size_t Bytes = 0;
};

/// Visited-state set. `insert` returns true when the key was new; a
/// false return in the lossy backends (hash-compaction fingerprint
/// collision, bit-state saturation) can prune an unvisited state — the
/// probability is negligible for hash-compaction (~n^2/2^64) and the
/// accepted trade-off of supertrace for bit-state.
class VisitedSet {
public:
  /// Exact storage of full keys (SPIN's default exhaustive storage).
  static VisitedSet exact();
  /// Hash-compaction: store one fingerprint per state. \p Wide selects
  /// 128-bit fingerprints over 64-bit.
  static VisitedSet hashCompact(bool Wide);
  /// Bit-state hashing over a 2^Bits-bit table with two independent
  /// hash functions. \p Bits must already be validated (see
  /// clampedBitStateBits in ModelChecker.h).
  static VisitedSet bitState(unsigned Bits);

  /// Inserts \p Key; true when it was not present before.
  bool insert(std::string_view Key);

  /// States recorded via insert() returning true.
  uint64_t size() const { return Stored; }

  /// Estimated memory held by the set.
  size_t bytes() const;

private:
  enum class Impl : uint8_t { Exact, Hash64, Hash128, BitState };

  explicit VisitedSet(Impl K) : Kind(K) {}

  struct Fp128 {
    uint64_t Hi = 0, Lo = 0;
    bool operator==(const Fp128 &O) const { return Hi == O.Hi && Lo == O.Lo; }
  };
  struct Fp128Hash {
    size_t operator()(const Fp128 &F) const {
      // Fold both halves: Hi alone would degrade 128-bit fingerprints
      // to 64-bit bucket distribution.
      return static_cast<size_t>(F.Hi ^ (F.Lo * 0xc6a4a7935bd1e995ULL));
    }
  };

  Impl Kind;
  uint64_t Stored = 0;
  std::unordered_set<std::string, TransparentStringHash, std::equal_to<>>
      ExactKeys;
  std::unordered_set<uint64_t> Fp64;
  std::unordered_set<Fp128, Fp128Hash> Fp128Set;
  std::vector<uint8_t> BitTable;
  uint64_t BitMask = 0;

  friend class ConcurrentVisitedSet; // Shares Fp128/Fp128Hash.
};

/// Thread-safe COLLAPSE component table for the parallel search. Blobs
/// are striped over shards by content hash; the global index counter is
/// atomic, so indices are dense but not in discovery order — a blob's
/// index is stable for the lifetime of the compressor, which is all the
/// visited-set key construction needs.
class ConcurrentStateCompressor {
public:
  explicit ConcurrentStateCompressor(unsigned Log2Shards = 6);

  /// Thread-safe intern; identical blobs get identical indices.
  uint32_t intern(std::string_view Blob);

  /// Number of distinct components stored. Exact once writers joined.
  size_t components() const;

  /// Estimated memory held by the component table.
  size_t tableBytes() const;

private:
  struct Shard {
    std::mutex M;
    std::unordered_map<std::string, uint32_t, TransparentStringHash,
                       std::equal_to<>>
        Index;
    size_t Bytes = 0;
  };

  std::vector<std::unique_ptr<Shard>> Shards;
  unsigned ShardShift;
  std::atomic<uint32_t> NextIndex{0};
};

/// Thread-safe visited-state set for the parallel search. Membership
/// semantics (fingerprint values, hence collision behavior) match the
/// sequential VisitedSet exactly; storage is lock-striped by the
/// fingerprint's high bits, and the bit-state table uses atomic
/// fetch_or. Under concurrent insertion of the *same* bit-state key,
/// two workers can both observe "new" (the two probe bits live in
/// different words) — acceptable for the lossy supertrace mode; the
/// exact/hash backends are linearizable per key.
class ConcurrentVisitedSet {
public:
  static ConcurrentVisitedSet exact(unsigned Log2Shards = 6);
  static ConcurrentVisitedSet hashCompact(bool Wide,
                                          unsigned Log2Shards = 6);
  /// \p Seed perturbs both probe hash functions; 0 reproduces the
  /// sequential bit-state hashing. Swarm workers pass distinct seeds so
  /// each covers a different random slice of a huge state space.
  static ConcurrentVisitedSet bitState(unsigned Bits, uint64_t Seed = 0);

  /// Movable (factory return); the atomic counter is transferred
  /// non-atomically, which is fine before any concurrent use.
  ConcurrentVisitedSet(ConcurrentVisitedSet &&O) noexcept
      : Kind(O.Kind), Shards(std::move(O.Shards)), ShardShift(O.ShardShift),
        Stored(O.Stored.load(std::memory_order_relaxed)),
        BitWords(std::move(O.BitWords)), NumBitWords(O.NumBitWords),
        BitMask(O.BitMask), Seed(O.Seed) {}

  /// Thread-safe insert; true when \p Key was not present before.
  bool insert(std::string_view Key);

  /// States recorded via insert() returning true. Exact after all
  /// writers joined.
  uint64_t size() const { return Stored.load(std::memory_order_relaxed); }

  /// Estimated memory held by the set.
  size_t bytes() const;

private:
  enum class Impl : uint8_t { Exact, Hash64, Hash128, BitState };

  struct Shard {
    std::mutex M;
    std::unordered_set<std::string, TransparentStringHash, std::equal_to<>>
        ExactKeys;
    std::unordered_set<uint64_t> Fp64;
    std::unordered_set<VisitedSet::Fp128, VisitedSet::Fp128Hash> Fp128Set;
  };

  ConcurrentVisitedSet(Impl K, unsigned Log2Shards);

  Impl Kind;
  std::vector<std::unique_ptr<Shard>> Shards;
  unsigned ShardShift = 0;
  std::atomic<uint64_t> Stored{0};

  // Bit-state backend.
  std::unique_ptr<std::atomic<uint64_t>[]> BitWords;
  size_t NumBitWords = 0;
  uint64_t BitMask = 0;
  uint64_t Seed = 0;
};

} // namespace esp

#endif // ESP_MC_STATESTORE_H

//===--- Por.cpp - Ample-set partial-order reduction ---------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mc/Por.h"

#include <algorithm>

using namespace esp;
using namespace esp::mc_detail;

namespace {

/// Internal participants of a move as a process bitmask. Environment
/// endpoints contribute nothing: the environment is stateless, so an
/// env-side send or receive touches only its internal partner.
uint64_t participants(const Move &Mv) {
  uint64_t Mask = 0;
  if (Mv.Writer >= 0)
    Mask |= 1ull << static_cast<unsigned>(Mv.Writer);
  if (Mv.Reader >= 0)
    Mask |= 1ull << static_cast<unsigned>(Mv.Reader);
  return Mask;
}

} // namespace

PorContext::PorContext(const ModuleIR &Module, bool EnvBudgeted)
    : Info(buildIndependence(Module)), EnvBudgeted(EnvBudgeted) {
  for (size_t P = 0; P != Info.Procs.size() && P < 64; ++P)
    if (Info.Procs[P].InClique)
      CliqueMask |= 1ull << P;
}

uint64_t PorContext::closure(const Machine &M, const int *Stop,
                             unsigned Seed) const {
  const unsigned NumProcs = M.numProcesses();
  uint64_t Closed = 1ull << Seed;
  unsigned Work[64];
  unsigned WorkSize = 0;
  Work[WorkSize++] = Seed;
  while (WorkSize) {
    unsigned Q = Work[--WorkSize];
    if (Stop[Q] < 0)
      continue; // Done/Failed: no future endpoints.
    const IndepStop &S = Info.Procs[Q].Stops[Stop[Q]];
    const ProcState &PS = M.proc(Q);
    for (size_t K = 0; K != S.Cases.size(); ++K) {
      const IndepCase &C = S.Cases[K];
      if (C.GuardFalse)
        continue;
      // Guards are frozen while the process is blocked, so a case that
      // is dynamically disabled here stays disabled until Q moves.
      if (K < PS.CaseEnabled.size() && !PS.CaseEnabled[K])
        continue;
      for (unsigned R = 0; R != NumProcs; ++R) {
        if ((Closed >> R) & 1)
          continue;
        if (Stop[R] < 0)
          continue;
        const IndepStop &RS = Info.Procs[R].Stops[Stop[R]];
        bool Pull = C.IsIn ? RS.ReachOut[C.Channel] : RS.ReachIn[C.Channel];
        // Under a finite per-channel environment budget two receives
        // from the same channel are dependent through the shared
        // counter (one can consume the last unit and disable the
        // other), so same-direction reader endpoints get pulled too.
        if (!Pull && EnvBudgeted && C.IsIn)
          Pull = RS.ReachIn[C.Channel];
        if (Pull) {
          Closed |= 1ull << R;
          Work[WorkSize++] = R;
        }
      }
    }
  }
  return Closed;
}

bool PorContext::moveHeapUnsafe(const Move &Mv, const int *Stop) const {
  auto CaseUnsafe = [&](int P, unsigned CaseIndex) {
    if (P < 0)
      return false; // Environment side: nothing to free.
    if (Stop[P] < 0)
      return true; // Should not happen for an enabled move; be safe.
    const IndepStop &S = Info.Procs[P].Stops[Stop[P]];
    if (CaseIndex >= S.Cases.size())
      return true;
    const IndepCase &C = S.Cases[CaseIndex];
    if (C.Channel != Mv.Channel)
      return true; // Static/dynamic disagreement: be safe.
    return C.HeapUnsafe;
  };
  return CaseUnsafe(Mv.Writer, Mv.WriterCase) ||
         CaseUnsafe(Mv.Reader, Mv.ReaderCase);
}

size_t PorContext::selectAmple(const Machine &M,
                               std::vector<Move> &Moves) const {
  const size_t NumMoves = Moves.size();
  if (NumMoves <= 1)
    return NumMoves; // A singleton expansion is already minimal.
  const unsigned NumProcs = M.numProcesses();
  if (NumProcs == 0 || NumProcs > 64 || Info.Procs.size() != NumProcs)
    return NumMoves;

  // Current stop per process; bail to full expansion when a blocked
  // process's PC is not a known stop point.
  int Stop[64];
  for (unsigned P = 0; P != NumProcs; ++P) {
    const ProcState &PS = M.proc(P);
    if (PS.St == ProcState::Status::Blocked) {
      int S = Info.stopIndex(P, PS.PC);
      if (S < 0)
        return NumMoves;
      Stop[P] = S;
    } else {
      Stop[P] = -1;
    }
  }

  std::vector<uint64_t> Part(NumMoves);
  uint64_t Active = 0;
  for (size_t I = 0; I != NumMoves; ++I) {
    Part[I] = participants(Moves[I]);
    if (!Part[I])
      return NumMoves; // An env-to-env move cannot exist; be safe.
    Active |= Part[I];
  }

  // Try every process with an enabled move as the closure seed and keep
  // the smallest eligible ample set (ties go to the lowest seed index,
  // which keeps the choice deterministic).
  size_t BestCount = NumMoves;
  uint64_t BestSet = 0;
  for (unsigned Seed = 0; Seed != NumProcs; ++Seed) {
    if (!((Active >> Seed) & 1))
      continue;
    uint64_t Closed = closure(M, Stop, Seed);
    if ((Active & ~Closed) == 0)
      continue; // Closure swallowed every active process: no reduction.
    size_t Count = 0;
    bool Ok = true;
    for (size_t I = 0; I != NumMoves && Ok; ++I) {
      if (Part[I] & ~Closed) {
        // C1 invariant: an enabled move never straddles the closure
        // (its other participant would have been pulled in). If the
        // static facts and the dynamic state ever disagree, fall back.
        if (Part[I] & Closed)
          Ok = false;
        continue;
      }
      ++Count;
      if (Part[I] & CliqueMask)
        Ok = false; // C2: clique members' moves stay visible.
      else if (moveHeapUnsafe(Moves[I], Stop))
        Ok = false; // C2: heap-visible commit bodies stay visible.
    }
    if (!Ok || Count == 0 || Count >= NumMoves)
      continue;
    if (Count < BestCount) {
      BestCount = Count;
      BestSet = Closed;
    }
  }
  if (BestCount >= NumMoves)
    return NumMoves;

  std::stable_partition(Moves.begin(), Moves.end(), [&](const Move &Mv) {
    return (participants(Mv) & ~BestSet) == 0;
  });
  return BestCount;
}

//===--- SearchCommon.h - Shared search-engine helpers ----------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helpers shared by the sequential (ModelChecker.cpp) and
/// parallel (ParallelSearch.cpp) search engines. The two engines must
/// agree exactly on what counts as a violation for the determinism
/// guarantee (--jobs N reports the --jobs 1 verdict on completed
/// searches), so the state checks live here, once.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_MC_SEARCHCOMMON_H
#define ESP_MC_SEARCHCOMMON_H

#include "mc/ModelChecker.h"

#include <string>
#include <vector>

namespace esp {
namespace mc_detail {

/// Machine configuration for verification mode: deep-copy transfers
/// (the paper's semantic model) over a bounded object table.
inline MachineOptions verifyMachineOptions(const McOptions &Options) {
  MachineOptions MO;
  MO.MaxObjects = Options.MaxObjects;
  MO.ReuseObjectIds = true;
  MO.DeepCopyTransfers = true;
  MO.EnvSendBudget = Options.EnvSendBudget;
  return MO;
}

/// Checks the machine's current state for violations (runtime error or
/// leaked objects); fills \p Result's violation fields and returns true
/// when one is found.
inline bool checkStateViolation(Machine &M, const McOptions &Options,
                                McResult &Result) {
  if (M.error()) {
    Result.Verdict = McVerdict::Violation;
    Result.Violation = M.error();
    return true;
  }
  if (Options.CheckLeaks) {
    unsigned Leaked = M.countLeakedObjects();
    if (Leaked > 0) {
      Result.Verdict = McVerdict::Violation;
      Result.LeakedObjects = Leaked;
      Result.Violation.Kind = RuntimeErrorKind::OutOfObjects;
      Result.Violation.Message =
          std::to_string(Leaked) + " object(s) leaked (live but "
                                   "unreachable from any process)";
      return true;
    }
  }
  return false;
}

/// Deadlock check over an already-enumerated move list: no enabled move
/// while some process is still blocked.
inline bool checkDeadlockViolation(Machine &M, const std::vector<Move> &Moves,
                                   const McOptions &Options,
                                   McResult &Result) {
  if (!Options.CheckDeadlock || !Moves.empty() || M.error())
    return false;
  bool AnyBlocked = false;
  for (unsigned I = 0, E = M.numProcesses(); I != E; ++I)
    AnyBlocked |= M.proc(I).St == ProcState::Status::Blocked;
  if (!AnyBlocked)
    return false; // All processes finished: normal termination.
  if (M.stuckOnEnvBudget())
    return false; // Finite workload consumed: quiescence, not deadlock.
  Result.Verdict = McVerdict::Violation;
  Result.Deadlock = true;
  Result.Violation.Kind = RuntimeErrorKind::None;
  Result.Violation.Message = "deadlock: blocked processes with no "
                             "enabled move";
  return true;
}

} // namespace mc_detail
} // namespace esp

#endif // ESP_MC_SEARCHCOMMON_H

//===--- SafetyHarness.cpp - Per-process memory-safety verification ---------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mc/SafetyHarness.h"

#include "frontend/PatternAnalysis.h"

#include <cassert>

using namespace esp;

static constexpr uint64_t VariantCap = 1 << 20;

uint64_t BoundedEnvModel::countVariants(const Type *T) const {
  switch (T->getKind()) {
  case TypeKind::Int:
    return IntDomain.size();
  case TypeKind::Bool:
    return 2;
  case TypeKind::Record: {
    uint64_t Product = 1;
    for (const TypeField &F : T->getFields()) {
      Product *= countVariants(F.FieldType);
      if (Product >= VariantCap)
        return VariantCap;
    }
    return Product;
  }
  case TypeKind::Union: {
    uint64_t Sum = 0;
    for (const TypeField &F : T->getFields()) {
      Sum += countVariants(F.FieldType);
      if (Sum >= VariantCap)
        return VariantCap;
    }
    return Sum;
  }
  case TypeKind::Array: {
    uint64_t Product = 1;
    uint64_t PerElem = countVariants(T->getElementType());
    for (unsigned I = 0; I != ArrayLen; ++I) {
      Product *= PerElem;
      if (Product >= VariantCap)
        return VariantCap;
    }
    return Product;
  }
  }
  return 1;
}

unsigned BoundedEnvModel::numVariants(const ChannelDecl *Chan) const {
  if (!Driven.count(Chan->Name))
    return 0;
  return static_cast<unsigned>(countVariants(Chan->ElemType));
}

Value BoundedEnvModel::buildVariant(const Type *T, uint64_t Index,
                                    Heap &H) const {
  switch (T->getKind()) {
  case TypeKind::Int:
    return Value::makeInt(IntDomain[Index % IntDomain.size()]);
  case TypeKind::Bool:
    return Value::makeBool(Index % 2 != 0);
  case TypeKind::Record: {
    std::optional<Value> Obj = H.allocate(T, T->getFields().size());
    assert(Obj && "env allocation failed; raise MaxObjects");
    for (size_t I = 0, N = T->getFields().size(); I != N; ++I) {
      uint64_t N_I = countVariants(T->getFields()[I].FieldType);
      Value Elem = buildVariant(T->getFields()[I].FieldType, Index % N_I, H);
      Index /= N_I;
      H.deref(*Obj)->Elems[I] = Elem;
    }
    return *Obj;
  }
  case TypeKind::Union: {
    size_t Arm = 0;
    for (const TypeField &F : T->getFields()) {
      uint64_t N_Arm = countVariants(F.FieldType);
      if (Index < N_Arm)
        break;
      Index -= N_Arm;
      ++Arm;
    }
    if (Arm >= T->getFields().size())
      Arm = T->getFields().size() - 1;
    std::optional<Value> Obj = H.allocate(T, 1);
    assert(Obj && "env allocation failed; raise MaxObjects");
    Value Sub = buildVariant(T->getFields()[Arm].FieldType, Index, H);
    HeapObject *ObjPtr = H.deref(*Obj);
    ObjPtr->Arm = static_cast<int32_t>(Arm);
    ObjPtr->Elems[0] = Sub;
    return *Obj;
  }
  case TypeKind::Array: {
    std::optional<Value> Obj = H.allocate(T, ArrayLen);
    assert(Obj && "env allocation failed; raise MaxObjects");
    uint64_t PerElem = countVariants(T->getElementType());
    for (unsigned I = 0; I != ArrayLen; ++I) {
      Value Elem = buildVariant(T->getElementType(), Index % PerElem, H);
      Index /= PerElem;
      H.deref(*Obj)->Elems[I] = Elem;
    }
    return *Obj;
  }
  }
  return Value::makeInt(0);
}

Value BoundedEnvModel::makeVariant(const ChannelDecl *Chan, unsigned Index,
                                   Heap &H) const {
  return buildVariant(Chan->ElemType, Index, H);
}

McResult esp::verifyProcessMemorySafety(const Program &Prog,
                                        const std::string &ProcessName,
                                        const SafetyOptions &Options) {
  // Lower the whole program unoptimized (the paper translates to SPIN
  // right after type checking, §5.2), then isolate the target process.
  ModuleIR Full = lowerProgram(Prog);
  ModuleIR Isolated;
  Isolated.Prog = Full.Prog;
  for (ProcIR &P : Full.Procs)
    if (P.Proc->Name == ProcessName)
      Isolated.Procs.push_back(std::move(P));
  assert(!Isolated.Procs.empty() && "no such process");

  // The environment drives every channel the process receives from.
  std::set<std::string> Driven;
  for (const Inst &I : Isolated.Procs[0].Insts) {
    if (I.Kind != InstKind::Block)
      continue;
    for (const IRCase &Case : I.Cases)
      if (Case.IsIn)
        Driven.insert(Case.Channel->Name);
  }

  BoundedEnvModel Env(Driven, Options.IntDomain, Options.ArrayLen);
  McOptions Mc = Options.Mc;
  Mc.Env = &Env;
  return checkModel(Isolated, Mc);
}

McResult esp::verifyProcessClusterMemorySafety(
    const Program &Prog, const std::vector<std::string> &ProcessNames,
    const SafetyOptions &Options) {
  ModuleIR Full = lowerProgram(Prog);
  ModuleIR Isolated;
  Isolated.Prog = Full.Prog;
  for (ProcIR &P : Full.Procs)
    for (const std::string &Name : ProcessNames)
      if (P.Proc->Name == Name) {
        Isolated.Procs.push_back(std::move(P));
        break;
      }
  assert(!Isolated.Procs.empty() && "no such process");

  // The environment drives a channel iff some kept process receives from
  // it and no kept process writes it; channels written inside the
  // cluster rendezvous between the kept processes instead.
  std::set<std::string> Read, Written;
  for (const ProcIR &P : Isolated.Procs)
    for (const Inst &I : P.Insts) {
      if (I.Kind != InstKind::Block)
        continue;
      for (const IRCase &Case : I.Cases)
        (Case.IsIn ? Read : Written).insert(Case.Channel->Name);
    }
  std::set<std::string> Driven;
  for (const std::string &Name : Read)
    if (!Written.count(Name))
      Driven.insert(Name);

  BoundedEnvModel Env(Driven, Options.IntDomain, Options.ArrayLen);
  McOptions Mc = Options.Mc;
  Mc.Env = &Env;
  return checkModel(Isolated, Mc);
}

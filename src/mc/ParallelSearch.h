//===--- ParallelSearch.h - Multi-core model-checking engine ----*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel search engine behind `espmc --jobs N` (SPIN's multicore
/// and swarm modes). N workers each own a private Machine built from the
/// shared read-only ModuleIR and explore disjoint subtrees handed out as
/// (checkpoint snapshot, move-prefix) work items — the representation
/// the snapshot-stride replay already produces — with work-stealing when
/// a worker's local stack drains. Visited-state storage is the
/// concurrent sharded backends of StateStore.h, whose fingerprints match
/// the sequential ones bit-for-bit, so a completed exhaustive search
/// reports the identical verdict and identical StatesStored /
/// StatesExplored / Transitions as the sequential engine.
///
/// Three parallel modes:
///  * exhaustive/bit-state: one cooperative search over a shared
///    visited set; the first violation wins, ties broken
///    deterministically by DFS order (lexicographically smallest
///    move-index path among the candidates found before the stop
///    propagates);
///  * swarm (bit-state only): independent full searches per worker with
///    distinct hash seeds and randomized move order; coverage is the
///    union of the workers';
///  * simulation: runs partitioned across workers, per-run seeds
///    derived from McOptions::Seed.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_MC_PARALLELSEARCH_H
#define ESP_MC_PARALLELSEARCH_H

#include "mc/ModelChecker.h"

namespace esp {

/// Runs the parallel engine with \p Jobs >= 2 workers. Called by
/// checkModel(); `--jobs 1` never reaches this (the sequential code
/// path is kept intact).
McResult runParallelSearch(const ModuleIR &Module, const McOptions &Options,
                           unsigned Jobs);

} // namespace esp

#endif // ESP_MC_PARALLELSEARCH_H

//===--- ParallelSearch.cpp - Multi-core model-checking engine -------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mc/ParallelSearch.h"

#include "mc/Por.h"
#include "mc/SearchCommon.h"
#include "mc/StateStore.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <thread>

using namespace esp;
using namespace esp::mc_detail;

namespace {

//===----------------------------------------------------------------------===//
// Work items and the shared queue
//===----------------------------------------------------------------------===//

/// One unexplored subtree: a full machine snapshot of its root state
/// (already counted and inserted into the visited set by whoever
/// discovered it) plus the move path from the search root, kept for
/// counterexample traces, and the per-level move indices, kept for the
/// deterministic violation tie-break.
struct WorkItem {
  Machine::Snapshot Snap;
  std::vector<Move> Path;
  std::vector<uint32_t> Index;
};

/// MPMC queue of work items with completion tracking: Outstanding
/// counts items queued plus items being processed, so pop() can return
/// "all done" exactly when the whole tree is explored.
class WorkQueue {
public:
  explicit WorkQueue(size_t LowWaterMark) : LowWater(LowWaterMark) {}

  void push(WorkItem Item) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Items.push_back(std::move(Item));
      ++Outstanding;
      ++Pushes;
      Approx.store(Items.size(), std::memory_order_relaxed);
    }
    CV.notify_one();
  }

  /// Blocks until an item is available, every item is done, or the
  /// search was stopped. Returns false in the latter two cases.
  bool pop(WorkItem &Out) {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock,
            [&] { return Stopped || !Items.empty() || Outstanding == 0; });
    if (Stopped || Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    Approx.store(Items.size(), std::memory_order_relaxed);
    return true;
  }

  /// The subtree of a popped item is fully explored.
  void taskDone() {
    std::lock_guard<std::mutex> Lock(M);
    if (--Outstanding == 0)
      CV.notify_all();
  }

  /// Violation or state limit: wake every blocked worker to exit.
  void stopAll() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stopped = true;
    }
    CV.notify_all();
  }

  /// Cheap hint for the offload heuristic (racy by design).
  bool hungry() const {
    return Approx.load(std::memory_order_relaxed) < LowWater;
  }

  /// Racy queue-length snapshot for progress reporting.
  size_t approxSize() const {
    return Approx.load(std::memory_order_relaxed);
  }

  /// Total items ever pushed; read after the workers joined.
  uint64_t pushes() const { return Pushes; }

private:
  mutable std::mutex M;
  std::condition_variable CV;
  std::deque<WorkItem> Items;
  size_t Outstanding = 0;
  uint64_t Pushes = 0;
  bool Stopped = false;
  std::atomic<size_t> Approx{0};
  size_t LowWater;
};

//===----------------------------------------------------------------------===//
// First-violation slot
//===----------------------------------------------------------------------===//

/// Collects violation candidates from the workers; the winner is the
/// lexicographically smallest move-index path (an ancestor beats its
/// descendants, a left sibling beats a right one) — i.e. the candidate
/// the sequential DFS would have reported first, among those found
/// before the stop flag propagated.
class ViolationSlot {
public:
  void offer(const McResult &V, std::vector<Move> Moves,
             std::vector<uint32_t> Index, const ModuleIR &Module) {
    std::lock_guard<std::mutex> Lock(M);
    if (Found &&
        !std::lexicographical_compare(Index.begin(), Index.end(),
                                      BestIndex.begin(), BestIndex.end()))
      return;
    Found = true;
    BestIndex = std::move(Index);
    Best = V;
    Best.TraceMoves = std::move(Moves);
    Best.Trace.clear();
    for (const Move &Mv : Best.TraceMoves)
      Best.Trace.push_back(Mv.str(Module));
  }

  bool found() const {
    std::lock_guard<std::mutex> Lock(M);
    return Found;
  }

  /// Merges the winning violation into \p Result; call after join.
  void mergeInto(McResult &Result) const {
    Result.Verdict = McVerdict::Violation;
    Result.Violation = Best.Violation;
    Result.Deadlock = Best.Deadlock;
    Result.LeakedObjects = Best.LeakedObjects;
    Result.Trace = Best.Trace;
    Result.TraceMoves = Best.TraceMoves;
  }

private:
  mutable std::mutex M;
  bool Found = false;
  std::vector<uint32_t> BestIndex;
  McResult Best;
};

//===----------------------------------------------------------------------===//
// Worker state
//===----------------------------------------------------------------------===//

struct WorkerStats {
  uint64_t Explored = 0;
  uint64_t Stored = 0;
  uint64_t Transitions = 0;
  uint64_t Replayed = 0;
  uint64_t Items = 0; ///< Work items popped (own pushes + steals).
  size_t MaxDepthReached = 0;
  bool DepthTruncated = false;
  // Partial-order reduction accounting (--por).
  uint64_t PorReduced = 0;
  uint64_t PorFull = 0;
  uint64_t PorUpgrades = 0;
};

/// Everything a worker thread owns: its Machine over the shared
/// read-only module, scratch buffers for key construction, counters.
struct WorkerCtx {
  Machine M;
  WorkerStats Stats;
  unsigned Wid = 0;    // Progress-slot index.
  std::mt19937_64 Rng; // Swarm move-order shuffling only.
  std::string Raw;
  std::string Control;
  std::string Key;
  std::vector<std::string> Blobs;

  WorkerCtx(const ModuleIR &Module, const MachineOptions &MO,
            const EnvModel *Env)
      : M(Module, MO) {
    M.setEnvModel(Env);
  }
};

//===----------------------------------------------------------------------===//
// The cooperative parallel DFS
//===----------------------------------------------------------------------===//

class ParallelDfs {
public:
  ParallelDfs(const ModuleIR &Module, const McOptions &Options, unsigned Jobs)
      : Module(Module), Options(Options), Jobs(Jobs),
        MO(verifyMachineOptions(Options)),
        Stride(std::max(1u, Options.SnapshotStride)),
        UseCollapse(Options.Collapse &&
                    Options.Mode != SearchMode::BitState &&
                    Options.Visited == VisitedKind::Exact),
        Queue(/*LowWaterMark=*/2 * Jobs) {
    // --por: one shared selector (const and thread-safe after
    // construction). Swarm shuffles move order per worker, which would
    // scatter the ample prefix, so it never reduces (espmc rejects the
    // combination up front).
    if (Options.Por && !Options.Swarm)
      Por = std::make_unique<PorContext>(Module, Options.EnvSendBudget != 0);
  }

  McResult run();
  McResult runSwarm();

private:
  ConcurrentVisitedSet makeVisited(uint64_t BitSeed) const {
    if (Options.Mode == SearchMode::BitState)
      return ConcurrentVisitedSet::bitState(
          clampedBitStateBits(Options.BitStateBits), BitSeed);
    if (Options.Visited == VisitedKind::Exact)
      return ConcurrentVisitedSet::exact();
    return ConcurrentVisitedSet::hashCompact(Options.Visited ==
                                             VisitedKind::Hash128);
  }

  /// Visited-set key of W's current machine state: the flat canonical
  /// vector, or control bytes + interned component indices (COLLAPSE).
  std::string_view makeKey(WorkerCtx &W) {
    if (!UseCollapse) {
      W.M.serializeState(W.Raw);
      return W.Raw;
    }
    size_t NumObjects = W.M.serializeComponents(W.Control, W.Blobs);
    W.Key = W.Control;
    for (size_t I = 0; I != NumObjects; ++I)
      appendVarint(W.Key, Compressor.intern(W.Blobs[I]));
    return W.Key;
  }

  void processItem(WorkerCtx &W, const WorkItem &Item,
                   ConcurrentVisitedSet &Visited, bool AllowOffload,
                   bool Shuffle, ConcurrentVisitedSet *UnionTable);
  void workerMain(unsigned Wid, ConcurrentVisitedSet &Visited);
  void aggregate(McResult &Result, const std::vector<WorkerStats> &Stats);

  const ModuleIR &Module;
  const McOptions &Options;
  const unsigned Jobs;
  const MachineOptions MO;
  const unsigned Stride;
  const bool UseCollapse;

  WorkQueue Queue;
  ViolationSlot Slot;
  std::unique_ptr<PorContext> Por;
  ConcurrentStateCompressor Compressor;
  std::vector<WorkerStats> Done;
  std::atomic<uint64_t> GlobalExplored{0};
  std::atomic<bool> Stop{false};
  std::atomic<bool> LimitHit{false};
};

/// One DFS level (same shape as the sequential engine, plus the move
/// index for the deterministic tie-break).
struct Frame {
  Move Taken;
  uint32_t TakenIndex = 0;
  std::vector<Move> Moves;
  size_t NextMove = 0;
  /// Moves[0..AmpleCount) is the ample prefix; equals Moves.size()
  /// without --por or when no eligible ample subset exists.
  size_t AmpleCount = 0;
  /// Cycle proviso (C3): a successor's visited-set insert failed, so
  /// the frame expands its full move list after the ample prefix.
  bool Upgraded = false;
};

struct Checkpoint {
  size_t Depth;
  Machine::Snapshot Snap;
};

void ParallelDfs::processItem(WorkerCtx &W, const WorkItem &Item,
                              ConcurrentVisitedSet &Visited,
                              bool AllowOffload, bool Shuffle,
                              ConcurrentVisitedSet *UnionTable) {
  Machine &M = W.M;
  M.restore(Item.Snap);
  const size_t BaseDepth = Item.Path.size();

  std::vector<Frame> Stack;
  std::vector<Checkpoint> Checkpoints;
  constexpr size_t Dirty = SIZE_MAX;
  size_t MachineAt = Dirty;

  // Builds the move path / index path from the item prefix plus the
  // local stack (and optionally the final move).
  auto fullPath = [&](const Move *Final, uint32_t FinalIndex,
                      std::vector<Move> &Moves, std::vector<uint32_t> &Idx) {
    Moves = Item.Path;
    Idx = Item.Index;
    for (size_t I = 1; I < Stack.size(); ++I) {
      Moves.push_back(Stack[I].Taken);
      Idx.push_back(Stack[I].TakenIndex);
    }
    if (Final) {
      Moves.push_back(*Final);
      Idx.push_back(FinalIndex);
    }
  };

  auto reportViolation = [&](const McResult &V, const Move *Final,
                             uint32_t FinalIndex) {
    std::vector<Move> Moves;
    std::vector<uint32_t> Idx;
    fullPath(Final, FinalIndex, Moves, Idx);
    Slot.offer(V, std::move(Moves), std::move(Idx), Module);
    Stop.store(true, std::memory_order_release);
    Queue.stopAll();
  };

  // Expand the item's root state. Its violation/leak check was done by
  // the worker that discovered (and inserted) it; the enumeration-fault
  // and deadlock checks belong to expansion, so they happen here.
  // --por: ample-set selection. The ample prefix is a deterministic
  // function of the state (stable partition over the canonical move
  // enumeration), so a re-expanded offloaded subtree picks the same
  // prefix regardless of which worker pops it.
  auto selectAmple = [&](Frame &F) {
    F.AmpleCount = F.Moves.size();
    if (!Por)
      return;
    F.AmpleCount = Por->selectAmple(M, F.Moves);
    if (F.AmpleCount < F.Moves.size())
      ++W.Stats.PorReduced;
    else
      ++W.Stats.PorFull;
  };

  {
    Frame Root;
    Root.Moves = M.enumerateMoves();
    if (Shuffle)
      std::shuffle(Root.Moves.begin(), Root.Moves.end(), W.Rng);
    McResult V;
    if (M.error() ? checkStateViolation(M, Options, V)
                  : checkDeadlockViolation(M, Root.Moves, Options, V)) {
      reportViolation(V, nullptr, 0);
      return;
    }
    selectAmple(Root);
    Stack.push_back(std::move(Root));
    Checkpoints.push_back({0, M.snapshot()});
    MachineAt = 0;
    W.Stats.MaxDepthReached =
        std::max(W.Stats.MaxDepthReached, BaseDepth + 1);
  }

  auto restoreToTop = [&]() {
    size_t Target = Stack.size() - 1;
    if (MachineAt == Target)
      return;
    const Checkpoint &C = Checkpoints.back();
    assert(C.Depth <= Target && "checkpoint deeper than target frame");
    M.restore(C.Snap);
    for (size_t I = C.Depth + 1; I <= Target; ++I) {
      assert(!M.error() && "replayed a previously clean path into error");
      M.applyMove(Stack[I].Taken);
      ++W.Stats.Replayed;
    }
    MachineAt = Target;
  };

  // Offload heuristic: hand a fresh subtree to the shared queue only
  // when other workers are hungry AND this worker keeps enough local
  // reserve — a narrow tree should run at pure local-DFS speed.
  auto haveLocalReserve = [&]() {
    size_t Reserve = 0;
    for (size_t I = Stack.size(); I-- > 0;) {
      Reserve += Stack[I].Moves.size() - Stack[I].NextMove;
      if (Reserve > 4)
        return true;
    }
    return false;
  };

  while (!Stack.empty()) {
    if (Stop.load(std::memory_order_relaxed))
      return;
    Frame &Top = Stack.back();
    if (Top.NextMove >= (Top.Upgraded ? Top.Moves.size() : Top.AmpleCount)) {
      Stack.pop_back();
      while (!Checkpoints.empty() &&
             Checkpoints.back().Depth >= Stack.size())
        Checkpoints.pop_back();
      if (MachineAt != Dirty && MachineAt >= Stack.size())
        MachineAt = Dirty;
      continue;
    }
    if (GlobalExplored.load(std::memory_order_relaxed) >=
        Options.MaxStates) {
      LimitHit.store(true, std::memory_order_relaxed);
      Stop.store(true, std::memory_order_release);
      Queue.stopAll();
      return;
    }
    Move Chosen = Top.Moves[Top.NextMove];
    uint32_t ChosenIndex = static_cast<uint32_t>(Top.NextMove);
    ++Top.NextMove;
    restoreToTop();
    M.applyMove(Chosen);
    MachineAt = Dirty;
    ++W.Stats.Transitions;
    ++W.Stats.Explored;
    GlobalExplored.fetch_add(1, std::memory_order_relaxed);
    // Publish to this worker's private progress slot (relaxed stores of
    // counters this thread alone writes — observe-only, tsan-clean).
    if (obs::SearchProgress *Prog = Options.Progress;
        Prog && W.Wid < obs::kMaxProgressWorkers) {
      obs::WorkerProgress &Slot = Prog->PerWorker[W.Wid];
      Slot.Explored.store(W.Stats.Explored, std::memory_order_relaxed);
      Slot.Transitions.store(W.Stats.Transitions,
                             std::memory_order_relaxed);
      Prog->FrontierDepth.store(Queue.approxSize(),
                                std::memory_order_relaxed);
    }
    {
      McResult V;
      if (checkStateViolation(M, Options, V)) {
        reportViolation(V, &Chosen, ChosenIndex);
        return;
      }
    }
    std::string_view Key = makeKey(W);
    if (!Visited.insert(Key)) {
      // Cycle proviso (C3): the successor was already inserted —
      // possibly by another worker, which only makes the upgrade more
      // conservative — so this frame may no longer defer its non-ample
      // moves.
      if (Por && !Top.Upgraded && Top.AmpleCount < Top.Moves.size()) {
        Top.Upgraded = true;
        ++W.Stats.PorUpgrades;
      }
      continue;
    }
    ++W.Stats.Stored;
    if (obs::SearchProgress *Prog = Options.Progress;
        Prog && W.Wid < obs::kMaxProgressWorkers) {
      Prog->PerWorker[W.Wid].Stored.store(W.Stats.Stored,
                                          std::memory_order_relaxed);
      // bytes() locks shards and (exact mode) walks keys, so sample it
      // sparsely.
      if (W.Stats.Stored % 32768 == 0)
        Prog->VisitedBytes.store(Visited.bytes() + Compressor.tableBytes(),
                                 std::memory_order_relaxed);
    }
    if (UnionTable)
      UnionTable->insert(Key);
    if (BaseDepth + Stack.size() >= Options.MaxDepth) {
      // Depth-bounded prune: the subtree below this state is not
      // explored, so an error-free search is only PartialOK.
      W.Stats.DepthTruncated = true;
      continue;
    }
    if (AllowOffload && Queue.hungry() && haveLocalReserve()) {
      WorkItem Child;
      Child.Snap = M.snapshot();
      std::vector<Move> Moves;
      std::vector<uint32_t> Idx;
      fullPath(&Chosen, ChosenIndex, Moves, Idx);
      Child.Path = std::move(Moves);
      Child.Index = std::move(Idx);
      Queue.push(std::move(Child));
      continue;
    }
    Frame Next;
    Next.Taken = Chosen;
    Next.TakenIndex = ChosenIndex;
    Next.Moves = M.enumerateMoves();
    if (Shuffle)
      std::shuffle(Next.Moves.begin(), Next.Moves.end(), W.Rng);
    // Enumeration itself can fault (ambiguous dispatch, object-table
    // exhaustion while probing); leaks cannot appear here, so only the
    // error needs rechecking.
    McResult V;
    if (M.error() ? checkStateViolation(M, Options, V)
                  : checkDeadlockViolation(M, Next.Moves, Options, V)) {
      reportViolation(V, &Chosen, ChosenIndex);
      return;
    }
    selectAmple(Next);
    Stack.push_back(std::move(Next));
    MachineAt = Stack.size() - 1;
    if (MachineAt % Stride == 0)
      Checkpoints.push_back({MachineAt, M.snapshot()});
    W.Stats.MaxDepthReached =
        std::max(W.Stats.MaxDepthReached, BaseDepth + Stack.size());
  }
}

void ParallelDfs::workerMain(unsigned Wid, ConcurrentVisitedSet &Visited) {
  WorkerCtx W(Module, MO, Options.Env);
  W.Wid = Wid;
  WorkItem Item;
  while (Queue.pop(Item)) {
    ++W.Stats.Items;
    if (obs::SearchProgress *Prog = Options.Progress;
        Prog && Wid < obs::kMaxProgressWorkers)
      Prog->PerWorker[Wid].Items.store(W.Stats.Items,
                                       std::memory_order_relaxed);
    processItem(W, Item, Visited, /*AllowOffload=*/true,
                /*Shuffle=*/false, /*UnionTable=*/nullptr);
    Queue.taskDone();
  }
  Done[Wid] = W.Stats;
}

void ParallelDfs::aggregate(McResult &Result,
                            const std::vector<WorkerStats> &Stats) {
  Result.JobsUsed = Jobs;
  for (const WorkerStats &S : Stats) {
    Result.StatesExplored += S.Explored;
    Result.StatesStored += S.Stored;
    Result.Transitions += S.Transitions;
    Result.ReplayedMoves += S.Replayed;
    Result.DepthTruncated |= S.DepthTruncated;
    Result.MaxDepthReached = std::max(
        Result.MaxDepthReached, static_cast<unsigned>(S.MaxDepthReached));
    Result.WorkerExplored.push_back(S.Explored);
    Result.WorkerItems.push_back(S.Items);
    Result.PorReducedStates += S.PorReduced;
    Result.PorFullStates += S.PorFull;
    Result.PorProvisoUpgrades += S.PorUpgrades;
  }
}

McResult ParallelDfs::run() {
  McResult Result;
  ConcurrentVisitedSet Visited = makeVisited(/*BitSeed=*/0);

  // Root state: counted and checked on the calling thread, exactly like
  // the sequential engine, then handed to the workers as the first item.
  WorkerCtx Root(Module, MO, Options.Env);
  Machine &M = Root.M;
  M.start();
  M.serializeState(Root.Raw);
  Result.StateVectorBytes = Root.Raw.size();
  ++Result.StatesExplored;
  GlobalExplored.store(1, std::memory_order_relaxed);
  if (checkStateViolation(M, Options, Result)) {
    Result.MemoryBytes = Visited.bytes();
    return Result;
  }
  {
    std::string_view RootKey = makeKey(Root);
    Result.CompressedStateBytes = RootKey.size();
    Visited.insert(RootKey);
  }
  ++Result.StatesStored;
  if (obs::SearchProgress *Prog = Options.Progress) {
    // Root-state counts live in the scalar fields; workers add deltas in
    // their private slots, so totals never double-count.
    Prog->Workers.store(std::min<unsigned>(Jobs, obs::kMaxProgressWorkers),
                        std::memory_order_relaxed);
    Prog->Explored.store(Result.StatesExplored, std::memory_order_relaxed);
    Prog->Stored.store(Result.StatesStored, std::memory_order_relaxed);
  }

  WorkItem RootItem;
  RootItem.Snap = M.snapshot();
  Queue.push(std::move(RootItem));

  Done.assign(Jobs, WorkerStats());
  std::vector<std::thread> Threads;
  Threads.reserve(Jobs);
  for (unsigned Wid = 0; Wid != Jobs; ++Wid)
    Threads.emplace_back([this, Wid, &Visited] { workerMain(Wid, Visited); });
  for (std::thread &T : Threads)
    T.join();

  aggregate(Result, Done);
  Result.SharedWorkItems = Queue.pushes() - 1; // Minus the root item.
  if (Slot.found())
    Slot.mergeInto(Result);
  else if (LimitHit.load(std::memory_order_relaxed))
    Result.Verdict = McVerdict::StateLimit;
  else
    Result.Verdict = Options.Mode == SearchMode::Exhaustive &&
                             !Result.DepthTruncated
                         ? McVerdict::OK
                         : McVerdict::PartialOK;
  Result.ComponentTableBytes = Compressor.tableBytes();
  Result.MemoryBytes = Visited.bytes() + Compressor.tableBytes();
  return Result;
}

//===----------------------------------------------------------------------===//
// Swarm bit-state: independent seeded searches, union coverage
//===----------------------------------------------------------------------===//

McResult ParallelDfs::runSwarm() {
  McResult Result;
  assert(Options.Mode == SearchMode::BitState && "swarm is bit-state only");
  const unsigned Bits = clampedBitStateBits(Options.BitStateBits);

  // The shared seed-0 table estimates the union of the workers'
  // coverage (and matches the table the sequential engine would use).
  ConcurrentVisitedSet UnionTable = ConcurrentVisitedSet::bitState(Bits, 0);

  WorkerCtx Root(Module, MO, Options.Env);
  Machine &M = Root.M;
  M.start();
  M.serializeState(Root.Raw);
  Result.StateVectorBytes = Root.Raw.size();
  ++Result.StatesExplored;
  GlobalExplored.store(1, std::memory_order_relaxed);
  if (checkStateViolation(M, Options, Result)) {
    Result.MemoryBytes = UnionTable.bytes();
    return Result;
  }
  {
    std::string_view RootKey = makeKey(Root);
    Result.CompressedStateBytes = RootKey.size();
    UnionTable.insert(RootKey);
  }
  if (obs::SearchProgress *Prog = Options.Progress) {
    Prog->Workers.store(std::min<unsigned>(Jobs, obs::kMaxProgressWorkers),
                        std::memory_order_relaxed);
    Prog->Explored.store(Result.StatesExplored, std::memory_order_relaxed);
  }
  Machine::Snapshot RootSnap = M.snapshot();

  Done.assign(Jobs, WorkerStats());
  std::vector<std::thread> Threads;
  Threads.reserve(Jobs);
  for (unsigned Wid = 0; Wid != Jobs; ++Wid) {
    Threads.emplace_back([this, Wid, Bits, &UnionTable, &RootSnap] {
      // Worker 0 reproduces the sequential search (seed 0, canonical
      // move order); the rest randomize both the hash slice and the
      // traversal order, SPIN-swarm style.
      uint64_t BitSeed =
          Wid == 0 ? 0
                   : mix64(Options.Seed ^ (0x9e3779b97f4a7c15ULL * Wid));
      ConcurrentVisitedSet Own = ConcurrentVisitedSet::bitState(Bits, BitSeed);
      WorkerCtx W(Module, MO, Options.Env);
      W.Wid = Wid;
      W.Stats.Items = 1; // Each swarm worker runs exactly the root item.
      W.Rng.seed(mix64(Options.Seed + Wid));
      // Insert the root into the private table so the collision
      // behavior matches a standalone search with this seed.
      W.M.restore(RootSnap);
      Own.insert(makeKey(W));
      WorkItem RootItem;
      RootItem.Snap = RootSnap;
      processItem(W, RootItem, Own, /*AllowOffload=*/false,
                  /*Shuffle=*/Wid != 0, &UnionTable);
      Done[Wid] = W.Stats;
    });
  }
  for (std::thread &T : Threads)
    T.join();

  aggregate(Result, Done);
  // For swarm, StatesStored reports the union coverage estimate: the
  // per-worker stored counts overlap heavily and are kept in
  // WorkerExplored/report() instead.
  Result.StatesStored = UnionTable.size();
  if (Slot.found())
    Slot.mergeInto(Result);
  else if (LimitHit.load(std::memory_order_relaxed))
    Result.Verdict = McVerdict::StateLimit;
  else
    Result.Verdict = McVerdict::PartialOK; // Bit-state is always partial.
  Result.MemoryBytes = UnionTable.bytes() * (1 + Jobs);
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// Parallel simulation
//===----------------------------------------------------------------------===//

namespace {

McResult runParallelSimulation(const ModuleIR &Module,
                               const McOptions &Options, unsigned Jobs) {
  McResult Result;
  const MachineOptions MO = verifyMachineOptions(Options);
  ViolationSlot Slot;
  std::atomic<bool> Stop{false};
  std::vector<WorkerStats> Stats(Jobs);
  std::atomic<size_t> RootVectorBytes{0};
  obs::SearchProgress *Prog = Options.Progress;
  if (Prog)
    Prog->Workers.store(std::min<unsigned>(Jobs, obs::kMaxProgressWorkers),
                        std::memory_order_relaxed);

  std::vector<std::thread> Threads;
  Threads.reserve(Jobs);
  for (unsigned Wid = 0; Wid != Jobs; ++Wid) {
    Threads.emplace_back([&, Wid] {
      WorkerStats &S = Stats[Wid];
      // Runs are partitioned round-robin; each run's seed is derived
      // from McOptions::Seed and the run index, so the walk a given run
      // takes does not depend on which worker executes it.
      for (uint64_t Run = Wid; Run < Options.SimulationRuns; Run += Jobs) {
        if (Stop.load(std::memory_order_relaxed))
          return;
        ++S.Items; // One item per simulation run.
        if (Prog && Wid < obs::kMaxProgressWorkers) {
          obs::WorkerProgress &PSlot = Prog->PerWorker[Wid];
          PSlot.Explored.store(S.Explored, std::memory_order_relaxed);
          PSlot.Transitions.store(S.Transitions,
                                  std::memory_order_relaxed);
          PSlot.Items.store(S.Items, std::memory_order_relaxed);
        }
        std::mt19937_64 Rng(
            mix64(Options.Seed ^ (0x9e3779b97f4a7c15ULL * (Run + 1))));
        Machine M(Module, MO);
        M.setEnvModel(Options.Env);
        M.start();
        if (Run == 0)
          RootVectorBytes.store(M.serializeState().size(),
                                std::memory_order_relaxed);
        std::vector<Move> TraceMoves;
        auto reportViolation = [&](const McResult &V) {
          Slot.offer(V, TraceMoves,
                     {static_cast<uint32_t>(Run)}, Module);
          Stop.store(true, std::memory_order_release);
        };
        for (unsigned Depth = 0; Depth != Options.SimulationDepth; ++Depth) {
          ++S.Explored;
          McResult V;
          if (checkStateViolation(M, Options, V)) {
            reportViolation(V);
            return;
          }
          std::vector<Move> Moves = M.enumerateMoves();
          if (M.error() ? checkStateViolation(M, Options, V)
                        : checkDeadlockViolation(M, Moves, Options, V)) {
            reportViolation(V);
            return;
          }
          if (Moves.empty())
            break; // Normal termination.
          const Move &Chosen =
              Moves[std::uniform_int_distribution<size_t>(
                  0, Moves.size() - 1)(Rng)];
          TraceMoves.push_back(Chosen);
          M.applyMove(Chosen);
          ++S.Transitions;
          S.MaxDepthReached = std::max<size_t>(S.MaxDepthReached, Depth + 1);
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  Result.JobsUsed = Jobs;
  for (const WorkerStats &S : Stats) {
    Result.StatesExplored += S.Explored;
    Result.Transitions += S.Transitions;
    Result.MaxDepthReached = std::max(
        Result.MaxDepthReached, static_cast<unsigned>(S.MaxDepthReached));
    Result.WorkerExplored.push_back(S.Explored);
    Result.WorkerItems.push_back(S.Items);
  }
  Result.StateVectorBytes = RootVectorBytes.load(std::memory_order_relaxed);
  if (Slot.found())
    Slot.mergeInto(Result);
  else
    Result.Verdict = McVerdict::PartialOK;
  return Result;
}

} // namespace

McResult esp::runParallelSearch(const ModuleIR &Module,
                                const McOptions &Options, unsigned Jobs) {
  assert(Jobs >= 2 && "the sequential engine handles Jobs <= 1");
  auto Start = std::chrono::steady_clock::now();
  McResult Result;
  switch (Options.Mode) {
  case SearchMode::Simulation:
    Result = runParallelSimulation(Module, Options, Jobs);
    break;
  case SearchMode::BitState:
    if (Options.Swarm) {
      ParallelDfs Engine(Module, Options, Jobs);
      Result = Engine.runSwarm();
      break;
    }
    [[fallthrough]];
  case SearchMode::Exhaustive: {
    ParallelDfs Engine(Module, Options, Jobs);
    Result = Engine.run();
    break;
  }
  }
  Result.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}

//===--- Por.h - Ample-set partial-order reduction --------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ample-set selector behind `espmc --por`. Built once per search
/// from the static independence analysis (src/analysis/Independence.h),
/// then consulted at every expanded state to pick a subset of the
/// enabled moves that provably suffices for the checked properties.
///
/// The selection discharges the classic ample-set side conditions:
///
///  * C0 (nonempty): only nonempty proper subsets are returned; a
///    deadlocked state has no moves and is always "fully" expanded, so
///    deadlock detection is unaffected.
///  * C1 (dependency closure): starting from one seed process, the
///    closure pulls in every process that could reach the opposite end
///    of a channel one of the closed processes has a dynamically-enabled
///    case on (guards are frozen while a process is blocked, and
///    endpoint reachability is the analysis's transitive per-stop fact).
///    The ample set is then every enabled move whose participants lie
///    inside the closure — a persistent set: the first move touching a
///    closed process on any path of the full graph is an ample move.
///  * C2 (invisibility): moves of visibility-clique members (channels
///    that can raise AmbiguousDispatch) and moves whose commit bodies
///    free heap objects or halt are never placed in an ample set, so
///    the error predicates those moves feed stay observable. Leak and
///    assertion checks are evaluated on every visited state as before.
///  * C3 (cycle proviso): handled lazily by the search engines. The
///    sequential DFS keeps the set of on-stack states; an edge from a
///    reduced frame back onto the stack closes a cycle, and the *target*
///    frame is upgraded to full expansion (every cycle through a back
///    edge passes through its target, and any cycle of the final reduced
///    graph contains a back edge, so each gets a fully expanded state —
///    which also resolves the ignoring problem). The parallel engine has
///    no global stack and uses the conservative variant: any ample edge
///    whose visited-set insert fails upgrades its source frame, so
///    parallel reduced counts can exceed the sequential ones (verdicts
///    are unaffected either way).
///
/// Whenever a condition cannot be discharged the selector falls back to
/// full expansion, so `--por` can never weaken a verdict. Counts can
/// shrink (goldens gain `--por` variants); all counterexamples remain
/// replayTrace-valid because ample moves are real enabled moves.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_MC_POR_H
#define ESP_MC_POR_H

#include "analysis/Independence.h"
#include "runtime/Machine.h"

#include <cstddef>
#include <vector>

namespace esp {
namespace mc_detail {

/// The per-search ample-set selector. Const after construction and
/// thread-safe: ParallelSearch shares one instance across all workers.
class PorContext {
public:
  /// \p EnvBudgeted must be true when the search runs under a finite
  /// per-channel environment budget (McOptions::EnvSendBudget != 0):
  /// sends on one channel then share that channel's counter, so two
  /// processes receiving from the same channel become dependent through
  /// it — the closure additionally pulls same-direction endpoints.
  explicit PorContext(const ModuleIR &Module, bool EnvBudgeted = false);

  /// Reorders \p Moves so a valid ample subset forms a prefix and
  /// returns the subset's size; returns Moves.size() when no eligible
  /// proper subset exists (full expansion). The partition is stable, so
  /// the result is deterministic for a deterministic move enumeration.
  size_t selectAmple(const Machine &M, std::vector<Move> &Moves) const;

private:
  /// Dependency closure seeded at process \p Seed over the current stop
  /// configuration; returns the closed process-set bitmask.
  uint64_t closure(const Machine &M, const int *Stop, unsigned Seed) const;

  /// C2 check: may applying \p Mv free heap objects or halt a process
  /// before its next stop?
  bool moveHeapUnsafe(const Move &Mv, const int *Stop) const;

  IndependenceInfo Info;
  uint64_t CliqueMask = 0;
  bool EnvBudgeted = false;
};

} // namespace mc_detail
} // namespace esp

#endif // ESP_MC_POR_H

//===--- ModelChecker.h - Explicit-state model checker ----------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit-state model checker for ESP programs, standing in for SPIN
/// (§5). It explores the interleavings of the Machine in verification
/// mode (deep-copy transfers — the semantic model the paper's SPIN
/// translation uses) and supports SPIN's three exploration modes (§5.1):
///
///  * exhaustive: depth-first search with exact visited-state storage,
///  * bit-state hashing: partial search storing one bit per hashed state,
///  * simulation: random walks (the mode the paper used for development).
///
/// Properties checked: runtime errors (assertions, memory safety, match
/// failures), deadlock, and memory leaks (directly via a reachability
/// sweep, and indirectly via bounded-object-table exhaustion, §5.2).
/// Violations come with a counterexample trace of moves.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_MC_MODELCHECKER_H
#define ESP_MC_MODELCHECKER_H

#include "runtime/Machine.h"

#include <string>
#include <vector>

namespace esp {

enum class SearchMode : uint8_t { Exhaustive, BitState, Simulation };

struct McOptions {
  SearchMode Mode = SearchMode::Exhaustive;
  uint64_t MaxStates = 10'000'000;
  unsigned MaxDepth = 100'000;
  /// Object-table bound; exhaustion flags a leak (§5.2). 0 = unbounded.
  uint32_t MaxObjects = 256;
  /// Report live-but-unreachable objects as violations.
  bool CheckLeaks = true;
  bool CheckDeadlock = true;
  /// log2 of the bit-state table size (BitState mode).
  unsigned BitStateBits = 24;
  /// Number and length of random walks (Simulation mode).
  uint64_t SimulationRuns = 256;
  unsigned SimulationDepth = 4096;
  uint64_t Seed = 0x9e3779b97f4a7c15ULL;
  /// Environment model for open programs (not owned).
  EnvModel *Env = nullptr;
};

enum class McVerdict : uint8_t {
  OK,             ///< Full search completed with no violation.
  Violation,      ///< A violation was found (see Violation/Deadlock/Leaked).
  StateLimit,     ///< Search stopped at MaxStates (partial result).
  PartialOK,      ///< Partial search (bit-state/simulation) saw no violation.
};

struct McResult {
  McVerdict Verdict = McVerdict::OK;
  uint64_t StatesExplored = 0;
  uint64_t StatesStored = 0;
  uint64_t Transitions = 0;
  unsigned MaxDepthReached = 0;
  size_t StateVectorBytes = 0;   ///< Size of the serialized root state.
  size_t MemoryBytes = 0;        ///< Estimated visited-set memory.
  double Seconds = 0.0;

  // Violation details.
  RuntimeError Violation;
  bool Deadlock = false;
  unsigned LeakedObjects = 0;
  std::vector<std::string> Trace;

  bool foundViolation() const { return Verdict == McVerdict::Violation; }

  /// SPIN-like textual report for tools and benches.
  std::string report() const;
};

/// Runs the model checker over \p Module (which should be lowered
/// *without* optimizations, matching the paper's early translation,
/// §5.2).
McResult checkModel(const ModuleIR &Module, const McOptions &Options);

} // namespace esp

#endif // ESP_MC_MODELCHECKER_H

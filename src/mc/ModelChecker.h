//===--- ModelChecker.h - Explicit-state model checker ----------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit-state model checker for ESP programs, standing in for SPIN
/// (§5). It explores the interleavings of the Machine in verification
/// mode (deep-copy transfers — the semantic model the paper's SPIN
/// translation uses) and supports SPIN's three exploration modes (§5.1):
///
///  * exhaustive: depth-first search with exact visited-state storage,
///  * bit-state hashing: partial search storing one bit per hashed state,
///  * simulation: random walks (the mode the paper used for development).
///
/// Properties checked: runtime errors (assertions, memory safety, match
/// failures), deadlock, and memory leaks (directly via a reachability
/// sweep, and indirectly via bounded-object-table exhaustion, §5.2).
/// Violations come with a counterexample trace of moves.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_MC_MODELCHECKER_H
#define ESP_MC_MODELCHECKER_H

#include "obs/Progress.h"
#include "runtime/Machine.h"

#include <string>
#include <vector>

namespace esp {

enum class SearchMode : uint8_t { Exhaustive, BitState, Simulation };

/// How the exhaustive search stores visited states (SPIN's storage
/// trade-offs). Hash compaction stores one fingerprint per state: a
/// collision can prune an unvisited state, but at 64/128 bits the miss
/// probability (~n^2/2^64) is negligible, so a completed search still
/// reports OK. Exact mode is the certainty fallback.
enum class VisitedKind : uint8_t { Exact, Hash64, Hash128 };

/// Valid range for McOptions::BitStateBits; values outside are clamped
/// (a tiny table would index out of bounds, 1<<64 is UB).
inline constexpr unsigned MinBitStateBits = 10;
inline constexpr unsigned MaxBitStateBits = 28;
unsigned clampedBitStateBits(unsigned Bits);

struct McOptions {
  SearchMode Mode = SearchMode::Exhaustive;
  uint64_t MaxStates = 10'000'000;
  unsigned MaxDepth = 100'000;
  /// Object-table bound; exhaustion flags a leak (§5.2). 0 = unbounded.
  uint32_t MaxObjects = 256;
  /// Report live-but-unreachable objects as violations.
  bool CheckLeaks = true;
  bool CheckDeadlock = true;
  /// Visited-state storage for exhaustive search (default: 64-bit hash
  /// compaction; Exact keeps full state vectors).
  VisitedKind Visited = VisitedKind::Hash64;
  /// COLLAPSE compression of exact-mode state vectors: heap-object blobs
  /// are interned once in a component table and the stored vectors carry
  /// component indices. No effect on hash/bit-state storage, which never
  /// stores vectors.
  bool Collapse = true;
  /// DFS keeps one full Machine::Snapshot every SnapshotStride levels
  /// and re-derives intermediate states by replaying moves from the
  /// nearest checkpoint. 1 = checkpoint every level (fastest backtrack,
  /// most memory).
  unsigned SnapshotStride = 16;
  /// log2 of the bit-state table size (BitState mode); clamped to
  /// [MinBitStateBits, MaxBitStateBits].
  unsigned BitStateBits = 24;
  /// Number and length of random walks (Simulation mode).
  uint64_t SimulationRuns = 256;
  unsigned SimulationDepth = 4096;
  uint64_t Seed = 0x9e3779b97f4a7c15ULL;
  /// Worker threads. 1 = the sequential engine (unchanged code path);
  /// 0 = hardware concurrency. N > 1 runs the parallel engine: N
  /// Machines over the shared read-only ModuleIR, disjoint subtrees
  /// handed out as (snapshot, move-prefix) work items with
  /// work-stealing, and a concurrent visited set. For completed
  /// exhaustive searches the verdict and StatesStored/StatesExplored/
  /// Transitions are identical to Jobs == 1.
  unsigned Jobs = 1;
  /// Swarm verification (BitState mode with Jobs > 1 only): instead of
  /// one cooperative search, each worker runs an independent full
  /// search with its own hash seed and randomized move order; coverage
  /// is the union of the workers' (SPIN's swarm). StatesStored then
  /// reports the union estimate from a shared seed-0 bit table.
  bool Swarm = false;
  /// Ample-set partial-order reduction (`espmc --por`, src/mc/Por.h):
  /// expand only an ample subset of the enabled moves wherever the
  /// static independence analysis can discharge the C0-C3 conditions,
  /// with full expansion as the fallback. Verdicts are preserved;
  /// explored/stored counts usually shrink, so reduced runs have their
  /// own goldens. Ignored in Simulation mode and incompatible with
  /// Swarm (shuffled move order would break the ample prefix).
  bool Por = false;
  /// Finite environment workload (`espmc --env-budget N`): the machine
  /// enumerates at most N environment sends per channel along any path
  /// (0 = unbounded; per channel, not a global pool, so sends on
  /// unrelated channels stay independent for --por). Bounds an open
  /// harness to "verify N requests end to end", which makes the state
  /// space finite — and largely acyclic,
  /// which is where --por pays off: the cycle proviso rarely forces full
  /// expansion, so delivery interleavings collapse to representatives.
  uint32_t EnvSendBudget = 0;
  /// Environment model for open programs (not owned). Shared read-only
  /// across worker Machines when Jobs > 1, so implementations must be
  /// thread-safe for const calls (BoundedEnvModel is).
  const EnvModel *Env = nullptr;
  /// Optional live progress sink (not owned). The engines publish
  /// explored/stored/transition counts and frontier depth into it while
  /// searching, so a ticker thread can report states/sec. Observe-only:
  /// never affects verdicts, counts, or exploration order.
  obs::SearchProgress *Progress = nullptr;
};

enum class McVerdict : uint8_t {
  OK,             ///< Full search completed with no violation.
  Violation,      ///< A violation was found (see Violation/Deadlock/Leaked).
  StateLimit,     ///< Search stopped at MaxStates (partial result).
  PartialOK,      ///< Partial search (bit-state/simulation/depth-truncated)
                  ///< saw no violation.
};

struct McResult {
  McVerdict Verdict = McVerdict::OK;
  uint64_t StatesExplored = 0;
  uint64_t StatesStored = 0;
  uint64_t Transitions = 0;
  unsigned MaxDepthReached = 0;
  /// True when the DFS pruned at MaxDepth: the search is partial and an
  /// OK verdict is downgraded to PartialOK (SPIN: "max search depth too
  /// small").
  bool DepthTruncated = false;
  size_t StateVectorBytes = 0;   ///< Size of the serialized root state.
  size_t CompressedStateBytes = 0; ///< Stored key size of the root state.
  size_t ComponentTableBytes = 0;  ///< COLLAPSE component-table memory.
  size_t MemoryBytes = 0;        ///< Visited set + component table memory.
  uint64_t ReplayedMoves = 0;    ///< Moves re-applied restoring checkpoints.
  double Seconds = 0.0;

  // Parallel-search accounting (JobsUsed == 1 for the sequential engine).
  unsigned JobsUsed = 1;
  /// States explored per worker (empty for the sequential engine).
  std::vector<uint64_t> WorkerExplored;
  /// Work items each worker popped from a queue (its own plus steals;
  /// empty for the sequential engine).
  std::vector<uint64_t> WorkerItems;
  /// Work items handed off between workers (work-stealing traffic).
  uint64_t SharedWorkItems = 0;

  // Partial-order reduction accounting (all zero unless McOptions::Por).
  /// States expanded with a proper ample subset of their moves.
  uint64_t PorReducedStates = 0;
  /// States expanded fully (no eligible ample subset).
  uint64_t PorFullStates = 0;
  /// Reduced frames upgraded to full expansion by the cycle proviso.
  uint64_t PorProvisoUpgrades = 0;

  // Violation details.
  RuntimeError Violation;
  bool Deadlock = false;
  unsigned LeakedObjects = 0;
  std::vector<std::string> Trace;
  /// The same counterexample as Trace, as replayable moves.
  std::vector<Move> TraceMoves;

  bool foundViolation() const { return Verdict == McVerdict::Violation; }

  /// SPIN-like textual report for tools and benches.
  std::string report() const;

  /// Machine-readable result (espmc --stats-json).
  std::string json() const;
};

/// Runs the model checker over \p Module (which should be lowered
/// *without* optimizations, matching the paper's early translation,
/// §5.2).
McResult checkModel(const ModuleIR &Module, const McOptions &Options);

/// Re-executes \p Result's counterexample (TraceMoves) on a fresh
/// machine built with the same \p Options and checks that it actually
/// ends in the reported violation: every move must be enabled when it is
/// applied, and the final state must exhibit the reported error kind,
/// deadlock, or leak. Returns false for a trace that does not replay.
bool replayTrace(const ModuleIR &Module, const McOptions &Options,
                 const McResult &Result);

} // namespace esp

#endif // ESP_MC_MODELCHECKER_H

//===--- Driver.h - The shared ESP compilation pipeline ---------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// esp::compile is the one front door to the compilation pipeline:
/// register inputs, parse, type-check, lower, optionally optimize. Every
/// tool, test, and benchmark goes through it instead of hand-wiring
/// Parser + Sema + lowerProgram, so the pipeline stages and their order
/// live in exactly one place.
///
/// The result carries both lowerings the paper distinguishes: the
/// unoptimized IR the verifier consumes (translation happens right after
/// type checking, §5.2) and the §6.1-optimized IR the code generator and
/// the execution-mode runtime consume.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_DRIVER_DRIVER_H
#define ESP_DRIVER_DRIVER_H

#include "frontend/AST.h"
#include "ir/IR.h"
#include "ir/Passes.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace esp {

class SourceManager;
class DiagnosticEngine;

namespace obs {
class MetricsRegistry;
}

/// One compilation input: a file on disk, or an in-memory buffer
/// registered under a label (builtin firmware, tests, benchmarks).
struct CompileInput {
  std::string Name;                  ///< Path, or buffer label.
  std::optional<std::string> Source; ///< Inline text; read from disk if unset.

  static CompileInput file(std::string Path) {
    CompileInput In;
    In.Name = std::move(Path);
    return In;
  }
  static CompileInput buffer(std::string Label, std::string Text) {
    CompileInput In;
    In.Name = std::move(Label);
    In.Source = std::move(Text);
    return In;
  }
};

struct CompileOptions {
  /// Also produce CompileResult::Optimized (the §6.1 passes).
  bool Optimize = false;
  /// Which passes, when Optimize is set.
  OptOptions Opt = OptOptions::all();
  /// Combine the inputs into one buffer with "// ---- name ----" banners
  /// even when there is only one — the paper's pgm.SPIN + test.SPIN
  /// layout used by espmc, where harness files extend the program.
  bool Concatenate = false;
};

struct CompileResult {
  std::unique_ptr<Program> Prog;
  /// Unoptimized lowering: what the model checker and the analyses run
  /// on (§5.2). Valid when Success.
  ModuleIR Module;
  /// Optimized lowering (valid when Success and Options.Optimize).
  ModuleIR Optimized;
  /// What the optimizer did (zeroes unless Options.Optimize).
  OptStats Opt;
  /// Set when an input could not be read; the tools print it verbatim.
  /// I/O failures do not go through the DiagnosticEngine because they
  /// have no source location.
  std::string IOError;
  /// Pipeline-stage timings and sizes (driver.parse_us, driver.sema_us,
  /// driver.lower_us, driver.optimize_us, driver.source_bytes). Only
  /// populated when obs::enabled(); null otherwise — compilation pays
  /// nothing for the plumbing when observability is off.
  std::shared_ptr<obs::MetricsRegistry> Metrics;
  bool Success = false;

  explicit operator bool() const { return Success; }
};

/// Runs the pipeline over \p Inputs. Diagnostics accumulate in \p Diags;
/// the caller renders them (tools print, tests assert). Success means
/// every input was read, parsed, and type-checked with no errors and the
/// requested lowerings are populated.
CompileResult compile(SourceManager &SM, DiagnosticEngine &Diags,
                      const std::vector<CompileInput> &Inputs,
                      const CompileOptions &Options = CompileOptions());

/// Single in-memory buffer convenience (tests, benchmarks, builtins).
CompileResult compileBuffer(SourceManager &SM, DiagnosticEngine &Diags,
                            std::string Label, std::string Source,
                            const CompileOptions &Options = CompileOptions());

} // namespace esp

#endif // ESP_DRIVER_DRIVER_H

//===--- Driver.cpp - The shared ESP compilation pipeline -------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <fstream>
#include <sstream>

using namespace esp;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Text;
  Text << In.rdbuf();
  Out = Text.str();
  return true;
}

} // namespace

CompileResult esp::compile(SourceManager &SM, DiagnosticEngine &Diags,
                           const std::vector<CompileInput> &Inputs,
                           const CompileOptions &Options) {
  CompileResult Result;
  if (Inputs.empty()) {
    Result.IOError = "no input files";
    return Result;
  }

  if (Options.Concatenate || Inputs.size() > 1) {
    // The pgm.SPIN + test.SPIN layout (Figure 4): harness files are part
    // of the same program, so all inputs become one buffer with banner
    // comments marking the boundaries.
    std::string Combined;
    for (const CompileInput &In : Inputs) {
      std::string Text;
      if (In.Source) {
        Text = *In.Source;
      } else if (!readFile(In.Name, Text)) {
        Result.IOError = "cannot read '" + In.Name + "'";
        return Result;
      }
      Combined += "// ---- ";
      Combined += In.Name;
      Combined += " ----\n";
      Combined += Text;
      Combined += "\n";
    }
    Result.Prog = Parser::parse(SM, Diags, Inputs[0].Name, Combined);
  } else {
    const CompileInput &In = Inputs[0];
    uint32_t FileId;
    if (In.Source) {
      FileId = SM.addBuffer(In.Name, *In.Source);
    } else {
      FileId = SM.addFile(In.Name);
      if (FileId == UINT32_MAX) {
        Result.IOError = "cannot read '" + In.Name + "'";
        return Result;
      }
    }
    Parser P(SM, FileId, Diags);
    Result.Prog = P.parseProgram();
    if (Diags.hasErrors())
      Result.Prog = nullptr;
  }

  if (!Result.Prog || !checkProgram(*Result.Prog, Diags))
    return Result;

  Result.Module = lowerProgram(*Result.Prog);
  if (Options.Optimize) {
    Result.Optimized = lowerProgram(*Result.Prog);
    Result.Opt = optimizeModule(Result.Optimized, Options.Opt);
  }
  Result.Success = true;
  return Result;
}

CompileResult esp::compileBuffer(SourceManager &SM, DiagnosticEngine &Diags,
                                 std::string Label, std::string Source,
                                 const CompileOptions &Options) {
  std::vector<CompileInput> Inputs;
  Inputs.push_back(CompileInput::buffer(std::move(Label), std::move(Source)));
  return compile(SM, Diags, Inputs, Options);
}

//===--- Driver.cpp - The shared ESP compilation pipeline -------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <chrono>
#include <fstream>
#include <sstream>

using namespace esp;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Text;
  Text << In.rdbuf();
  Out = Text.str();
  return true;
}

/// Charges wall time to a counter when metrics are on; no clock reads
/// otherwise.
class StageTimer {
public:
  StageTimer(obs::MetricsRegistry *Reg, const char *Name) : Reg(Reg) {
    if (Reg) {
      C = &Reg->counter(Name);
      Start = std::chrono::steady_clock::now();
    }
  }
  ~StageTimer() {
    if (Reg)
      C->add(std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - Start)
                 .count());
  }

private:
  obs::MetricsRegistry *Reg;
  obs::Counter *C = nullptr;
  std::chrono::steady_clock::time_point Start;
};

} // namespace

CompileResult esp::compile(SourceManager &SM, DiagnosticEngine &Diags,
                           const std::vector<CompileInput> &Inputs,
                           const CompileOptions &Options) {
  CompileResult Result;
  if (Inputs.empty()) {
    Result.IOError = "no input files";
    return Result;
  }
  if (obs::enabled())
    Result.Metrics = std::make_shared<obs::MetricsRegistry>();
  obs::MetricsRegistry *Reg = Result.Metrics.get();

  if (Options.Concatenate || Inputs.size() > 1) {
    // The pgm.SPIN + test.SPIN layout (Figure 4): harness files are part
    // of the same program, so all inputs become one buffer with banner
    // comments marking the boundaries.
    std::string Combined;
    for (const CompileInput &In : Inputs) {
      std::string Text;
      if (In.Source) {
        Text = *In.Source;
      } else if (!readFile(In.Name, Text)) {
        Result.IOError = "cannot read '" + In.Name + "'";
        return Result;
      }
      Combined += "// ---- ";
      Combined += In.Name;
      Combined += " ----\n";
      Combined += Text;
      Combined += "\n";
    }
    if (Reg)
      Reg->counter("driver.source_bytes").add(Combined.size());
    StageTimer T(Reg, "driver.parse_us");
    Result.Prog = Parser::parse(SM, Diags, Inputs[0].Name, Combined);
  } else {
    const CompileInput &In = Inputs[0];
    uint32_t FileId;
    if (In.Source) {
      FileId = SM.addBuffer(In.Name, *In.Source);
    } else {
      FileId = SM.addFile(In.Name);
      if (FileId == UINT32_MAX) {
        Result.IOError = "cannot read '" + In.Name + "'";
        return Result;
      }
    }
    if (Reg)
      Reg->counter("driver.source_bytes").add(SM.getBuffer(FileId).size());
    StageTimer T(Reg, "driver.parse_us");
    Parser P(SM, FileId, Diags);
    Result.Prog = P.parseProgram();
    if (Diags.hasErrors())
      Result.Prog = nullptr;
  }

  if (!Result.Prog)
    return Result;
  {
    StageTimer T(Reg, "driver.sema_us");
    if (!checkProgram(*Result.Prog, Diags))
      return Result;
  }

  {
    StageTimer T(Reg, "driver.lower_us");
    Result.Module = lowerProgram(*Result.Prog);
  }
  if (Options.Optimize) {
    StageTimer T(Reg, "driver.optimize_us");
    Result.Optimized = lowerProgram(*Result.Prog);
    Result.Opt = optimizeModule(Result.Optimized, Options.Opt);
  }
  Result.Success = true;
  return Result;
}

CompileResult esp::compileBuffer(SourceManager &SM, DiagnosticEngine &Diags,
                                 std::string Label, std::string Source,
                                 const CompileOptions &Options) {
  std::vector<CompileInput> Inputs;
  Inputs.push_back(CompileInput::buffer(std::move(Label), std::move(Source)));
  return compile(SM, Diags, Inputs, Options);
}

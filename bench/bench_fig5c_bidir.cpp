//===--- bench_fig5c_bidir.cpp - Figure 5(c): bidirectional bandwidth -------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Reproduces Figure 5(c): total bandwidth when both machines stream to
// each other simultaneously, 4 B to 64 KB. Paper shape: the gaps are
// *smaller* than in the one-way test (firmware overhead overlaps with
// traffic in both directions, and acks piggyback on reverse data):
// vmmcESP ~23% below vmmcOrig at 1 KB and similar at 64 KB; ~20% below
// vmmcOrigNoFastPaths at 1 KB, similar at 64 KB.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "vmmc/Workloads.h"

using namespace esp;
using namespace esp::bench;
using namespace esp::vmmc;

int main() {
  printHeader("Figure 5(c): bidirectional total bandwidth (MB/s)");
  std::printf("%8s %12s %12s %22s %10s %10s\n", "size", "vmmcESP",
              "vmmcOrig", "vmmcOrigNoFastPaths", "ESP/Orig", "ESP/NoFP");
  for (uint32_t Size : bandwidthSizes()) {
    unsigned Messages = Size >= 16384 ? 16 : 32;
    WorkloadResult Esp = runBidirectional(FirmwareKind::Esp, Size, Messages);
    WorkloadResult Orig =
        runBidirectional(FirmwareKind::Orig, Size, Messages);
    WorkloadResult NoFp =
        runBidirectional(FirmwareKind::OrigNoFastPaths, Size, Messages);
    if (!Esp.Completed || !Orig.Completed || !NoFp.Completed) {
      std::printf("%8s  INCOMPLETE\n", sizeLabel(Size).c_str());
      return 1;
    }
    std::printf("%8s %12.2f %12.2f %22.2f %10.2f %10.2f\n",
                sizeLabel(Size).c_str(), Esp.BandwidthMBs,
                Orig.BandwidthMBs, NoFp.BandwidthMBs,
                Esp.BandwidthMBs / Orig.BandwidthMBs,
                Esp.BandwidthMBs / NoFp.BandwidthMBs);
  }
  std::printf("\npaper: ESP/Orig ~0.77 at 1K and ~1.0 at 64K; ESP/NoFP "
              "~0.80 at 1K and ~1.0 at 64K\n");
  return 0;
}

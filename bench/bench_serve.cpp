//===--- bench_serve.cpp - Fleet serving throughput and latency -------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Measures the src/serve runtime: a fleet of VMMC serve-firmware machine
// instances (one shared CompiledProgram, per-machine heap and channel
// state) on a work-stealing pool, driven by the deterministic load
// generator. Reports aggregate requests/sec plus p50/p99/p999 request
// latency per worker count, into BENCH_serve.json.
//
// `--quick` is the CI smoke configuration (256 machines, 20k requests);
// the full run is the headline fleet scale: 10k machines, 1M requests,
// workers 1/2/4. Every row re-verifies the aggregate checksum against
// the load generator's prediction — a throughput number from a run that
// dropped or duplicated work would be meaningless.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "serve/Serve.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace esp;
using namespace esp::bench;

namespace {

struct JsonRow {
  std::string Name;
  uint64_t Machines = 0;
  uint64_t Requests = 0;
  unsigned Workers = 0;
  double ReqPerSec = 0;
  uint64_t P50Ns = 0;
  uint64_t P99Ns = 0;
  uint64_t P999Ns = 0;
  uint64_t Steals = 0;
  uint64_t Resets = 0;
  uint64_t Stalls = 0;
  std::string Verdict;
};

std::vector<JsonRow> JsonRows;

void writeJson(bool Quick) {
  std::FILE *Out = std::fopen("BENCH_serve.json", "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return;
  }
  std::fprintf(Out, "{\n  \"bench\": \"serve\",\n  \"quick\": %s,\n"
                    "  \"rows\": [\n",
               Quick ? "true" : "false");
  for (size_t I = 0; I != JsonRows.size(); ++I) {
    const JsonRow &Row = JsonRows[I];
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"machines\": %llu, "
                 "\"requests\": %llu, \"workers\": %u, "
                 "\"req_per_sec\": %.2f, \"p50_ns\": %llu, "
                 "\"p99_ns\": %llu, \"p999_ns\": %llu, "
                 "\"steals\": %llu, \"resets\": %llu, "
                 "\"backpressure_stalls\": %llu, \"verdict\": \"%s\"}%s\n",
                 Row.Name.c_str(),
                 static_cast<unsigned long long>(Row.Machines),
                 static_cast<unsigned long long>(Row.Requests), Row.Workers,
                 Row.ReqPerSec, static_cast<unsigned long long>(Row.P50Ns),
                 static_cast<unsigned long long>(Row.P99Ns),
                 static_cast<unsigned long long>(Row.P999Ns),
                 static_cast<unsigned long long>(Row.Steals),
                 static_cast<unsigned long long>(Row.Resets),
                 static_cast<unsigned long long>(Row.Stalls),
                 Row.Verdict.c_str(), I + 1 == JsonRows.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("\nwrote BENCH_serve.json (%zu rows)\n", JsonRows.size());
}

void runRow(const std::string &Name, uint32_t Machines, uint64_t Requests,
            unsigned Workers, uint64_t ConnRequests) {
  serve::ServeOptions Opt;
  Opt.Machines = Machines;
  Opt.Requests = Requests;
  Opt.Workers = Workers;
  Opt.ConnRequests = ConnRequests;
  serve::ServeResult R = serve::runServe(Opt);

  JsonRow Row;
  Row.Name = Name;
  Row.Machines = Machines;
  Row.Requests = Requests;
  Row.Workers = Workers;
  Row.ReqPerSec = R.RequestsPerSec;
  Row.P50Ns = R.P50Ns;
  Row.P99Ns = R.P99Ns;
  Row.P999Ns = R.P999Ns;
  Row.Steals = R.Steals;
  Row.Resets = R.Resets;
  Row.Stalls = R.BackpressureStalls;
  Row.Verdict = R.Ok ? "ok" : ("FAIL: " + R.Error);
  JsonRows.push_back(Row);

  std::printf("  %-22s %6u mach %8llu req %2u wrk: %10.0f req/s  "
              "p50 %7.1f us  p99 %7.1f us  p999 %7.1f us  [%s]\n",
              Name.c_str(), Machines,
              static_cast<unsigned long long>(Requests), Workers,
              R.RequestsPerSec, R.P50Ns / 1000.0, R.P99Ns / 1000.0,
              R.P999Ns / 1000.0, R.Ok ? "ok" : R.Error.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;

  printHeader("Fleet serving: aggregate req/s and latency percentiles");

  if (Quick) {
    runRow("smoke", 256, 20'000, 1, 64);
    runRow("smoke", 256, 20'000, 4, 64);
  } else {
    // The headline configuration: 10k machines, 1M requests. The recycle
    // threshold keeps Machine::reset() on the hot path at full scale.
    for (unsigned Workers : {1u, 2u, 4u})
      runRow("fleet10k", 10'000, 1'000'000, Workers, 256);
    runRow("fleet1k", 1'000, 200'000, 4, 256);
  }

  writeJson(Quick);

  for (const JsonRow &Row : JsonRows)
    if (Row.Verdict != "ok")
      return 1;
  return 0;
}

//===--- BenchUtil.h - Shared benchmark table helpers -----------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table formatting shared by the experiment-reproduction benches. Every
/// bench prints the series of one paper table or figure; EXPERIMENTS.md
/// records these outputs against the paper's reported values.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_BENCH_BENCHUTIL_H
#define ESP_BENCH_BENCHUTIL_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace esp {
namespace bench {

inline void printHeader(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

inline std::string sizeLabel(uint32_t Bytes) {
  char Buf[32];
  if (Bytes >= 1024 && Bytes % 1024 == 0)
    std::snprintf(Buf, sizeof Buf, "%uK", Bytes / 1024);
  else
    std::snprintf(Buf, sizeof Buf, "%u", Bytes);
  return Buf;
}

/// The message-size sweep of Figure 5(a): 4 B to 4 KB.
inline std::vector<uint32_t> latencySizes() {
  return {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
}

/// The message-size sweep of Figures 5(b) and 5(c): 4 B to 64 KB.
inline std::vector<uint32_t> bandwidthSizes() {
  return {4,    8,    16,   32,   64,    128,   256,  512,
          1024, 2048, 4096, 8192, 16384, 32768, 65536};
}

} // namespace bench
} // namespace esp

#endif // ESP_BENCH_BENCHUTIL_H

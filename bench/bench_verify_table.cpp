//===--- bench_verify_table.cpp - Memory-safety verification table ----------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Reproduces the §5.3 verification experiments:
//
//  * per-process memory-safety verification of the actual VMMC firmware
//    processes (the paper: the biggest process took 2251 states, 0.5 s,
//    2.2 MB in exhaustive mode),
//  * injected memory bugs (use-after-free, leak) detected in every case,
//  * the processes with unbounded counters (the transmit window's
//    sequence numbers) use bit-state partial search, matching SPIN's
//    answer to state-space growth.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Driver.h"
#include "support/Diagnostics.h"
#include "mc/SafetyHarness.h"
#include "support/SourceManager.h"
#include "vmmc/EspFirmwareSource.h"

using namespace esp;
using namespace esp::bench;

namespace {

std::unique_ptr<Program> compileFirmware(SourceManager &SM,
                                         DiagnosticEngine &Diags) {
  CompileResult R =
      compileBuffer(SM, Diags, "vmmc.esp", vmmc::getVmmcEspSource());
  if (!R.Success) {
    std::fprintf(stderr, "firmware failed to compile:\n%s",
                 Diags.renderAll().c_str());
    std::exit(1);
  }
  return std::move(R.Prog);
}

void verifyRow(const Program &Prog, const char *Name, SearchMode Mode,
               uint64_t MaxStates) {
  SafetyOptions Options;
  Options.IntDomain = {0, 1};
  Options.Mc.Mode = Mode;
  Options.Mc.MaxStates = MaxStates;
  Options.Mc.MaxObjects = 128;
  McResult R = verifyProcessMemorySafety(Prog, Name, Options);
  const char *Verdict = "SAFE";
  if (R.Verdict == McVerdict::Violation)
    Verdict = "VIOLATION";
  else if (R.Verdict == McVerdict::StateLimit)
    Verdict = "truncated";
  else if (R.Verdict == McVerdict::PartialOK)
    Verdict = "SAFE(part)";
  std::printf("%-12s %-12s %10llu %10llu %9.3f %9.2f  %s\n", Name,
              Mode == SearchMode::Exhaustive ? "exhaustive" : "bit-state",
              static_cast<unsigned long long>(R.StatesExplored),
              static_cast<unsigned long long>(R.StatesStored), R.Seconds,
              R.MemoryBytes / 1024.0 / 1024.0, Verdict);
}

void injectedBugRow(const char *Label, const char *Source,
                    const char *ProcName) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult CR = compileBuffer(SM, Diags, Label, Source);
  if (!CR.Success) {
    std::printf("%-34s compile error\n", Label);
    return;
  }
  std::unique_ptr<Program> Prog = std::move(CR.Prog);
  SafetyOptions Options;
  McResult R = verifyProcessMemorySafety(*Prog, ProcName, Options);
  std::printf("%-34s %-14s %8llu states %8.3f s  trace:%zu moves\n", Label,
              R.foundViolation()
                  ? runtimeErrorKindName(R.Violation.Kind)
                  : "NOT FOUND",
              static_cast<unsigned long long>(R.StatesExplored), R.Seconds,
              R.Trace.size());
}

} // namespace

int main() {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  std::unique_ptr<Program> Prog = compileFirmware(SM, Diags);

  printHeader("Table: per-process memory-safety verification (section 5.3)");
  std::printf("paper reference: biggest process = 2251 states, 0.5 s, "
              "2.2 MB, exhaustive\n\n");
  std::printf("%-12s %-12s %10s %10s %9s %9s  %s\n", "process", "mode",
              "explored", "stored", "sec", "MB", "verdict");
  verifyRow(*Prog, "pageTable", SearchMode::Exhaustive, 2'000'000);
  verifyRow(*Prog, "userReq", SearchMode::Exhaustive, 2'000'000);
  verifyRow(*Prog, "deliver", SearchMode::Exhaustive, 2'000'000);
  verifyRow(*Prog, "rxDemux", SearchMode::Exhaustive, 2'000'000);
  // The transmit window's sequence numbers grow without bound, so its
  // state space is infinite; bit-state partial search covers it (SPIN's
  // supertrace mode, §5.1).
  verifyRow(*Prog, "txWindow", SearchMode::BitState, 60'000);

  printHeader("Injected memory bugs are found in every case (section 5.3)");
  injectedBugRow("use-after-free (reader)", R"(
type msgT = record of { v: int, data: array of int }
channel c: msgT
channel d: int
process buggy {
  while (true) {
    in(c, { $v, $data });
    unlink(data);
    out(d, data[0]);
  }
}
)",
                 "buggy");
  injectedBugRow("double unlink", R"(
type msgT = record of { v: int, data: array of int }
channel c: msgT
process buggy {
  while (true) {
    in(c, { $v, $data });
    unlink(data);
    unlink(data);
  }
}
)",
                 "buggy");
  injectedBugRow("leak (never unlinked)", R"(
type msgT = record of { v: int, data: array of int }
channel c: msgT
process buggy {
  while (true) {
    in(c, { $v, $data });
  }
}
)",
                 "buggy");
  injectedBugRow("leak (conditional path)", R"(
type msgT = record of { v: int, data: array of int }
channel c: msgT
channel d: int
process buggy {
  while (true) {
    in(c, { $v, $data });
    if (v > 0) {
      unlink(data);
    } else {
      out(d, v);
    }
  }
}
)",
                 "buggy");
  return 0;
}

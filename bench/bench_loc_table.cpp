//===--- bench_loc_table.cpp - Lines-of-code comparison table ---------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Reproduces the paper's lines-of-code comparison (§4.6): the original
// VMMC firmware was ~15600 lines of C (about 1100 of them fast paths);
// the ESP reimplementation was ~500 lines of ESP (200 declarations + 300
// process code) plus ~3000 lines of simple C. This bench counts the
// corresponding artifacts of this reproduction: the embedded ESP
// firmware source (split the same way) and, when the build exposes the
// source tree, the baseline firmware and binding sources.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/StringExtras.h"
#include "vmmc/EspFirmwareSource.h"

#include <fstream>
#include <sstream>

using namespace esp;
using namespace esp::bench;
using namespace esp::vmmc;

static unsigned countFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return 0;
  std::ostringstream Text;
  Text << In.rdbuf();
  return countEffectiveLines(Text.str());
}

int main() {
  printHeader("Table: lines of code (paper section 4.6)");

  unsigned Decl = getVmmcEspDeclLines();
  unsigned Proc = getVmmcEspProcessLines();

#ifdef ESP_SOURCE_DIR
  std::string Root = ESP_SOURCE_DIR;
#else
  std::string Root = ".";
#endif
  unsigned OrigLines = countFile(Root + "/src/vmmc/OrigFirmware.cpp") +
                       countFile(Root + "/src/vmmc/OrigFirmware.h");
  unsigned HelperLines = countFile(Root + "/src/vmmc/EspFirmware.cpp") +
                         countFile(Root + "/src/vmmc/EspFirmware.h");

  std::printf("%-42s %10s %10s\n", "artifact", "this repro", "paper");
  std::printf("%-42s %10u %10s\n", "ESP firmware: declarations", Decl,
              "~200");
  std::printf("%-42s %10u %10s\n", "ESP firmware: process code", Proc,
              "~300");
  std::printf("%-42s %10u %10s\n", "ESP firmware: total ESP", Decl + Proc,
              "~500");
  std::printf("%-42s %10u %10s\n",
              "helper C (bindings/simple operations)", HelperLines,
              "~3000");
  std::printf("%-42s %10u %10s\n",
              "baseline C-style firmware (per feature)", OrigLines,
              "15600");
  std::printf("\nprocesses in the ESP firmware: 5 (paper: 7)\n");
  std::printf("channels in the ESP firmware: 15 (paper: 17)\n");
  std::printf("note: the paper's 15600-line baseline implements the full "
              "production feature set;\nthis repro's baseline covers the "
              "same features as its ESP firmware, so the\nmeaningful "
              "comparison is the ~%.1fx ESP-vs-C ratio for equivalent "
              "control logic\n(paper reports ~10x when counting only "
              "comparable functionality).\n",
              OrigLines ? static_cast<double>(OrigLines) / (Decl + Proc)
                        : 0.0);
  return 0;
}

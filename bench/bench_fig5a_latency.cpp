//===--- bench_fig5a_latency.cpp - Figure 5(a): pingpong latency ------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Reproduces Figure 5(a): one-way latency of a pingpong between
// applications on two machines, for message sizes 4 B to 4 KB, over
// vmmcESP, vmmcOrig (hand-optimized fast paths), and
// vmmcOrigNoFastPaths.
//
// Paper shape to reproduce: vmmcESP ~2x vmmcOrig at 4 B; vmmcESP at most
// ~1.35x vmmcOrigNoFastPaths (worst at 64 B) and comparable at 4 B and
// 4 KB; a discontinuity at the 32/64 B boundary (small-message special
// case).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "vmmc/Workloads.h"

using namespace esp;
using namespace esp::bench;
using namespace esp::vmmc;

int main() {
  printHeader("Figure 5(a): pingpong one-way latency (usec)");
  std::printf("%8s %12s %12s %22s %10s %10s\n", "size", "vmmcESP",
              "vmmcOrig", "vmmcOrigNoFastPaths", "ESP/Orig", "ESP/NoFP");
  for (uint32_t Size : latencySizes()) {
    WorkloadResult Esp = runPingpong(FirmwareKind::Esp, Size, 24);
    WorkloadResult Orig = runPingpong(FirmwareKind::Orig, Size, 24);
    WorkloadResult NoFp =
        runPingpong(FirmwareKind::OrigNoFastPaths, Size, 24);
    if (!Esp.Completed || !Orig.Completed || !NoFp.Completed) {
      std::printf("%8s  INCOMPLETE\n", sizeLabel(Size).c_str());
      return 1;
    }
    std::printf("%8s %12.2f %12.2f %22.2f %10.2f %10.2f\n",
                sizeLabel(Size).c_str(), Esp.OneWayLatencyUs,
                Orig.OneWayLatencyUs, NoFp.OneWayLatencyUs,
                Esp.OneWayLatencyUs / Orig.OneWayLatencyUs,
                Esp.OneWayLatencyUs / NoFp.OneWayLatencyUs);
  }
  std::printf("\npaper: ESP/Orig ~2.0 at 4B; ESP/NoFP <= ~1.35 (worst at "
              "64B), ~1.0 at 4B and 4K\n");
  return 0;
}

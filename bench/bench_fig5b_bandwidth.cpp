//===--- bench_fig5b_bandwidth.cpp - Figure 5(b): one-way bandwidth ---------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Reproduces Figure 5(b): one-way bandwidth between two machines for
// message sizes 4 B to 64 KB. Paper shape: vmmcESP delivers ~41% less
// bandwidth than vmmcOrig at 1 KB narrowing to ~14% at 64 KB, and ~25% /
// ~12% less than vmmcOrigNoFastPaths at the same points.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "vmmc/Workloads.h"

using namespace esp;
using namespace esp::bench;
using namespace esp::vmmc;

int main() {
  printHeader("Figure 5(b): one-way bandwidth (MB/s)");
  std::printf("%8s %12s %12s %22s %10s %10s\n", "size", "vmmcESP",
              "vmmcOrig", "vmmcOrigNoFastPaths", "ESP/Orig", "ESP/NoFP");
  for (uint32_t Size : bandwidthSizes()) {
    unsigned Messages = Size >= 16384 ? 24 : 48;
    WorkloadResult Esp = runOneWay(FirmwareKind::Esp, Size, Messages);
    WorkloadResult Orig = runOneWay(FirmwareKind::Orig, Size, Messages);
    WorkloadResult NoFp =
        runOneWay(FirmwareKind::OrigNoFastPaths, Size, Messages);
    if (!Esp.Completed || !Orig.Completed || !NoFp.Completed) {
      std::printf("%8s  INCOMPLETE\n", sizeLabel(Size).c_str());
      return 1;
    }
    std::printf("%8s %12.2f %12.2f %22.2f %10.2f %10.2f\n",
                sizeLabel(Size).c_str(), Esp.BandwidthMBs,
                Orig.BandwidthMBs, NoFp.BandwidthMBs,
                Esp.BandwidthMBs / Orig.BandwidthMBs,
                Esp.BandwidthMBs / NoFp.BandwidthMBs);
  }
  std::printf("\npaper: ESP/Orig ~0.59 at 1K rising to ~0.86 at 64K; "
              "ESP/NoFP ~0.75 at 1K rising to ~0.88 at 64K\n");
  return 0;
}

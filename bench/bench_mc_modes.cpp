//===--- bench_mc_modes.cpp - Model checker exploration modes ---------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Reproduces the §5.1 discussion of SPIN's three exploration modes:
// exhaustive search, bit-state hashing (partial search with far less
// memory), and random simulation (the development mode, "more effective
// in discovering bugs" than a faithful simulator because it randomizes
// every choice). Each mode runs over (a) a correct producer/consumer
// system scaled up until exhaustive search is expensive, and (b) the
// same system with a seeded race-dependent assertion bug.
//
// A second table compares the visited-state storage back-ends (exact,
// COLLAPSE-compressed exact, hash compaction) on the same system and on
// the VMMC firmware's per-process memory-safety harness (§5.3), and the
// measurements are emitted to BENCH_mc_modes.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Driver.h"
#include "mc/SafetyHarness.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "vmmc/EspFirmwareSource.h"

#include <string>
#include <vector>

using namespace esp;
using namespace esp::bench;

namespace {

/// One measured configuration, accumulated for BENCH_mc_modes.json.
struct JsonRow {
  std::string System;
  std::string Config;
  unsigned Jobs = 1;
  /// StatesStored(full) / StatesStored(--por) for reduced rows; 1.0
  /// elsewhere. Only meaningful when both searches ran to completion.
  double ReductionFactor = 1.0;
  McResult R;
};

std::vector<JsonRow> JsonRows;

double statesPerSec(const McResult &R) {
  return R.Seconds > 0 ? R.StatesExplored / R.Seconds : 0.0;
}

double bytesPerState(const McResult &R) {
  return R.StatesStored > 0 ? static_cast<double>(R.MemoryBytes) / R.StatesStored
                            : 0.0;
}

void record(const std::string &System, const std::string &Config,
            const McResult &R, unsigned Jobs = 1, double Reduction = 1.0) {
  JsonRows.push_back({System, Config, Jobs, Reduction, R});
}

void writeJson() {
  std::FILE *Out = std::fopen("BENCH_mc_modes.json", "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write BENCH_mc_modes.json\n");
    return;
  }
  std::fprintf(Out, "{\n  \"bench\": \"mc_modes\",\n  \"rows\": [\n");
  for (size_t I = 0; I != JsonRows.size(); ++I) {
    const JsonRow &Row = JsonRows[I];
    const McResult &R = Row.R;
    std::fprintf(
        Out,
        "    {\"system\": \"%s\", \"config\": \"%s\", \"jobs\": %u, "
        "\"states_explored\": %llu, \"states_stored\": %llu, "
        "\"transitions\": %llu, \"seconds\": %.6f, "
        "\"states_per_sec\": %.1f, \"bytes_per_state\": %.2f, "
        "\"peak_visited_bytes\": %zu, \"component_table_bytes\": %zu, "
        "\"state_vector_bytes\": %zu, \"compressed_state_bytes\": %zu, "
        "\"replayed_moves\": %llu, \"max_depth\": %u, "
        "\"reduction_factor\": %.2f, \"verdict\": \"%s\"}%s\n",
        Row.System.c_str(), Row.Config.c_str(), Row.Jobs,
        static_cast<unsigned long long>(R.StatesExplored),
        static_cast<unsigned long long>(R.StatesStored),
        static_cast<unsigned long long>(R.Transitions), R.Seconds,
        statesPerSec(R), bytesPerState(R), R.MemoryBytes,
        R.ComponentTableBytes, R.StateVectorBytes, R.CompressedStateBytes,
        static_cast<unsigned long long>(R.ReplayedMoves),
        R.MaxDepthReached, Row.ReductionFactor,
        R.foundViolation()       ? "violation"
        : R.Verdict == McVerdict::OK ? "ok"
                                     : "partial",
        I + 1 == JsonRows.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("\nwrote BENCH_mc_modes.json (%zu rows)\n", JsonRows.size());
}

/// N producers, one server, one consumer; the bug variant asserts a
/// property that only fails in one interleaving class.
std::string makeModel(unsigned Messages, bool SeedBug) {
  std::string Source = "const N = " + std::to_string(Messages) + ";\n";
  Source += R"(
channel reqC: record of { ret: int, v: int }
channel repC: record of { ret: int, v: int }
channel doneC: int
process clientA {
  $i = 0;
  while (i < N) {
    out( reqC, { @, i });
    in( repC, { @, $r });
    i = i + 1;
  }
  out( doneC, 1);
}
process clientB {
  $i = 0;
  while (i < N) {
    out( reqC, { @, i + 100 });
    in( repC, { @, $r });
    i = i + 1;
  }
  out( doneC, 2);
}
process server {
  $served = 0;
  $lastA = -1;
  while (true) {
    in( reqC, { $who, $v });
    served = served + 1;
)";
  if (SeedBug)
    // Fails only when B's first request is served before any of A's:
    // a race the depth-first developer run can easily miss.
    Source += "    assert(!(served == 1 && v >= 100));\n";
  Source += R"(
    out( repC, { who, v * 2 });
  }
}
process joiner {
  in( doneC, $a);
  in( doneC, $b);
  assert(a + b == 3);
}
)";
  return Source;
}

/// Owns the whole pipeline: the lowered IR points into the AST, so the
/// Program must stay alive as long as the ModuleIR is used.
struct CompiledModel {
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<Program> Prog;
  ModuleIR Module;
};

std::unique_ptr<CompiledModel> compileModel(const std::string &Model) {
  auto C = std::make_unique<CompiledModel>();
  C->Diags = std::make_unique<DiagnosticEngine>(C->SM);
  CompileResult R = compileBuffer(C->SM, *C->Diags, "model", Model);
  if (!R.Success) {
    std::fprintf(stderr, "compile error:\n%s", C->Diags->renderAll().c_str());
    std::exit(1);
  }
  C->Prog = std::move(R.Prog);
  C->Module = std::move(R.Module);
  return C;
}

const char *verdictLabel(const McResult &R) {
  return R.foundViolation()
             ? "BUG FOUND"
             : (R.Verdict == McVerdict::OK ? "proved safe" : "no bug seen");
}

void runModeRow(const char *Label, const ModuleIR &Module, SearchMode Mode,
                unsigned BitBits) {
  McOptions Options;
  Options.Mode = Mode;
  Options.BitStateBits = BitBits;
  Options.MaxStates = 4'000'000;
  Options.SimulationRuns = 64;
  Options.CheckDeadlock = false; // server loops forever by design.
  McResult R = checkModel(Module, Options);
  const char *ModeName = Mode == SearchMode::Exhaustive ? "exhaustive"
                         : Mode == SearchMode::BitState ? "bit-state"
                                                        : "simulation";
  std::printf("%-28s %-11s %10llu %10llu %9.3f %9.2f  %s\n", Label, ModeName,
              static_cast<unsigned long long>(R.StatesExplored),
              static_cast<unsigned long long>(R.StatesStored), R.Seconds,
              R.MemoryBytes / 1024.0 / 1024.0, verdictLabel(R));
  record(Label, ModeName, R);
}

struct VisitedConfig {
  const char *Name;
  VisitedKind Visited;
  bool Collapse;
};

constexpr VisitedConfig VisitedConfigs[] = {
    {"exact", VisitedKind::Exact, false},
    {"exact+collapse", VisitedKind::Exact, true},
    {"hash64", VisitedKind::Hash64, true},
    {"hash128", VisitedKind::Hash128, true},
};

void runVisitedRow(const char *Label, const ModuleIR &Module,
                   const VisitedConfig &Cfg) {
  McOptions Options;
  Options.Visited = Cfg.Visited;
  Options.Collapse = Cfg.Collapse;
  Options.MaxStates = 4'000'000;
  Options.CheckDeadlock = false;
  McResult R = checkModel(Module, Options);
  std::printf("%-28s %-15s %10llu %9.3f %10.0f %8.1f %9.2f  %s\n", Label,
              Cfg.Name, static_cast<unsigned long long>(R.StatesStored),
              R.Seconds, statesPerSec(R), bytesPerState(R),
              R.MemoryBytes / 1024.0 / 1024.0, verdictLabel(R));
  record(Label, Cfg.Name, R);
}

/// One parallel-scaling measurement: same search, N workers. The
/// baseline seconds come from the Jobs=1 row so the speedup column is
/// relative to the unchanged sequential engine.
double runParallelRow(const char *Label, const ModuleIR &Module,
                      const VisitedConfig &Cfg, unsigned Jobs,
                      double BaselineSec) {
  McOptions Options;
  Options.Visited = Cfg.Visited;
  Options.Collapse = Cfg.Collapse;
  Options.MaxStates = 4'000'000;
  Options.CheckDeadlock = false;
  Options.Jobs = Jobs;
  McResult R = checkModel(Module, Options);
  double Speedup = R.Seconds > 0 && BaselineSec > 0 ? BaselineSec / R.Seconds
                                                    : 0.0;
  std::printf("%-28s %-15s %5u %10llu %9.3f %10.0f %8.2fx  %s\n", Label,
              Cfg.Name, Jobs, static_cast<unsigned long long>(R.StatesStored),
              R.Seconds, statesPerSec(R), Speedup, verdictLabel(R));
  record(Label, std::string(Cfg.Name) + "-parallel", R, Jobs);
  return R.Seconds;
}

/// Parallel scaling of the VMMC pageTable safety harness -- the
/// headline states/sec measurement for `--jobs N`.
double runVmmcParallelRow(const Program &Prog, const char *ProcName,
                          const VisitedConfig &Cfg, unsigned Jobs,
                          double BaselineSec) {
  SafetyOptions Options;
  Options.IntDomain = {0, 1};
  Options.Mc.MaxStates = 2'000'000;
  Options.Mc.MaxObjects = 128;
  Options.Mc.Visited = Cfg.Visited;
  Options.Mc.Collapse = Cfg.Collapse;
  Options.Mc.Jobs = Jobs;
  McResult R = verifyProcessMemorySafety(Prog, ProcName, Options);
  double Speedup = R.Seconds > 0 && BaselineSec > 0 ? BaselineSec / R.Seconds
                                                    : 0.0;
  std::printf("%-28s %-15s %5u %10llu %9.3f %10.0f %8.2fx  %s\n", ProcName,
              Cfg.Name, Jobs, static_cast<unsigned long long>(R.StatesStored),
              R.Seconds, statesPerSec(R), Speedup,
              R.foundViolation() ? "VIOLATION" : "SAFE");
  record(std::string("vmmc:") + ProcName,
         std::string(Cfg.Name) + "-parallel", R, Jobs);
  return R.Seconds;
}

/// One full-vs-`--por` pair over a VMMC process cluster under a finite
/// per-channel environment budget (`--env-budget`). Returns the
/// stored-state reduction factor; both rows land in the JSON.
double runPorPair(const Program &Prog,
                  const std::vector<std::string> &Procs,
                  uint32_t EnvBudget, unsigned Jobs, uint64_t MaxStates) {
  std::string Name = "vmmc:";
  for (size_t I = 0; I != Procs.size(); ++I)
    Name += (I ? "+" : "") + Procs[I];
  if (EnvBudget)
    Name += "@budget" + std::to_string(EnvBudget);

  SafetyOptions Options;
  Options.Mc.MaxStates = MaxStates;
  Options.Mc.EnvSendBudget = EnvBudget;
  Options.Mc.Jobs = Jobs;
  McResult Full = verifyProcessClusterMemorySafety(Prog, Procs, Options);
  Options.Mc.Por = true;
  McResult Por = verifyProcessClusterMemorySafety(Prog, Procs, Options);

  bool BothComplete = Full.Verdict == McVerdict::OK &&
                      Por.Verdict == McVerdict::OK;
  double Reduction = BothComplete && Por.StatesStored
                         ? static_cast<double>(Full.StatesStored) /
                               Por.StatesStored
                         : 1.0;
  auto Print = [&](const char *Cfg, const McResult &R, double Factor) {
    std::printf("%-34s %-6s %5u %10llu %6u %9.3f %8.2fx  %s\n", Name.c_str(),
                Cfg, Jobs, static_cast<unsigned long long>(R.StatesStored),
                R.MaxDepthReached, R.Seconds, Factor, verdictLabel(R));
  };
  Print("full", Full, 1.0);
  Print("--por", Por, Reduction);
  record(Name, "full", Full, Jobs);
  record(Name, "por", Por, Jobs, Reduction);
  return Reduction;
}

void runVmmcRow(const Program &Prog, const char *ProcName,
                const VisitedConfig &Cfg) {
  SafetyOptions Options;
  Options.IntDomain = {0, 1};
  Options.Mc.MaxStates = 2'000'000;
  Options.Mc.MaxObjects = 128;
  Options.Mc.Visited = Cfg.Visited;
  Options.Mc.Collapse = Cfg.Collapse;
  McResult R = verifyProcessMemorySafety(Prog, ProcName, Options);
  std::printf("%-28s %-15s %10llu %9.3f %10.0f %8.1f %9.2f  %s\n", ProcName,
              Cfg.Name, static_cast<unsigned long long>(R.StatesStored),
              R.Seconds, statesPerSec(R), bytesPerState(R),
              R.MemoryBytes / 1024.0 / 1024.0,
              R.foundViolation() ? "VIOLATION" : "SAFE");
  record(std::string("vmmc:") + ProcName, Cfg.Name, R);
}

} // namespace

int main() {
  printHeader("Table: exploration modes (section 5.1)");
  std::printf("%-28s %-11s %10s %10s %9s %9s  %s\n", "system", "mode",
              "explored", "stored", "sec", "MB", "verdict");

  auto Clean = compileModel(makeModel(6, /*SeedBug=*/false));
  runModeRow("2 clients x 6 msgs, clean", Clean->Module, SearchMode::Exhaustive,
             0);
  runModeRow("2 clients x 6 msgs, clean", Clean->Module, SearchMode::BitState,
             18);
  runModeRow("2 clients x 6 msgs, clean", Clean->Module, SearchMode::Simulation,
             0);

  auto Buggy = compileModel(makeModel(6, /*SeedBug=*/true));
  runModeRow("same + seeded race bug", Buggy->Module, SearchMode::Exhaustive,
             0);
  runModeRow("same + seeded race bug", Buggy->Module, SearchMode::BitState, 18);
  runModeRow("same + seeded race bug", Buggy->Module, SearchMode::Simulation,
             0);

  printHeader("Table: visited-state storage (COLLAPSE + hash compaction)");
  std::printf("%-28s %-15s %10s %9s %10s %8s %9s  %s\n", "system", "visited",
              "stored", "sec", "states/s", "B/state", "MB", "verdict");
  for (const VisitedConfig &Cfg : VisitedConfigs)
    runVisitedRow("2 clients x 6 msgs, clean", Clean->Module, Cfg);

  std::printf("\nVMMC firmware per-process safety harness (section 5.3):\n");
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult FirmwareResult =
      compileBuffer(SM, Diags, "vmmc.esp", vmmc::getVmmcEspSource());
  if (!FirmwareResult.Success) {
    std::fprintf(stderr, "firmware failed to compile:\n%s",
                 Diags.renderAll().c_str());
    return 1;
  }
  std::unique_ptr<Program> Firmware = std::move(FirmwareResult.Prog);
  for (const VisitedConfig &Cfg : VisitedConfigs)
    runVmmcRow(*Firmware, "pageTable", Cfg);
  for (const VisitedConfig &Cfg : VisitedConfigs)
    runVmmcRow(*Firmware, "userReq", Cfg);

  printHeader("Table: parallel search scaling (--jobs N)");
  std::printf("%-28s %-15s %5s %10s %9s %10s %9s  %s\n", "system", "visited",
              "jobs", "stored", "sec", "states/s", "speedup", "verdict");
  // A larger instance than the mode table: parallel speedup needs a
  // state space that takes real time, or thread startup dominates.
  // Jobs=1 is the untouched sequential engine; every parallel row must
  // report the identical stored-state count (the determinism guarantee).
  auto Big = compileModel(makeModel(40, /*SeedBug=*/false));
  for (size_t I = 0; I != 3; ++I) { // exact, exact+collapse, hash64
    const VisitedConfig &Cfg = VisitedConfigs[I];
    double Base = runParallelRow("2 clients x 40 msgs, clean", Big->Module,
                                 Cfg, 1, 0.0);
    for (unsigned Jobs : {2u, 4u, 8u})
      runParallelRow("2 clients x 40 msgs, clean", Big->Module, Cfg, Jobs,
                     Base);
  }
  {
    const VisitedConfig &Cfg = VisitedConfigs[2]; // hash64
    double Base = runVmmcParallelRow(*Firmware, "pageTable", Cfg, 1, 0.0);
    for (unsigned Jobs : {2u, 4u, 8u})
      runVmmcParallelRow(*Firmware, "pageTable", Cfg, Jobs, Base);
  }

  printHeader("Table: partial-order reduction (--por, ample sets)");
  std::printf("%-34s %-6s %5s %10s %6s %9s %9s  %s\n", "system", "config",
              "jobs", "stored", "depth", "sec", "factor", "verdict");
  // Single-process harnesses: every move shares the one process, so no
  // proper ample subset exists and the factor is honestly 1.0.
  runPorPair(*Firmware, {"pageTable"}, 0, 1, 2'000'000);
  runPorPair(*Firmware, {"userReq"}, 0, 1, 2'000'000);
  // The headline: two channel-disjoint processes under a finite
  // per-channel environment workload (--env-budget). The budgeted space
  // is acyclic enough that the cycle proviso never fires and the
  // reduced search collapses the interleaving product.
  runPorPair(*Firmware, {"pageTable", "deliver"}, 4, 1, 5'000'000);
  runPorPair(*Firmware, {"pageTable", "deliver"}, 4, 4, 5'000'000);
  // Equal-memory depth row: at the same 50000-state cap the reduced
  // search spends its budget pushing the txWindow chain deeper instead
  // of permuting independent rxDemux moves (both runs truncate, so the
  // stored counts are incomparable and the factor stays 1.0).
  runPorPair(*Firmware, {"rxDemux", "txWindow"}, 0, 1, 50'000);

  std::printf("\npaper: exhaustive explores everything; bit-state covers "
              "large spaces in\nbounded memory; randomized simulation "
              "finds most bugs during development.\nCOLLAPSE and hash "
              "compaction are SPIN's answers to state-vector memory.\n");

  writeJson();
  return 0;
}

//===--- bench_mc_modes.cpp - Model checker exploration modes ---------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Reproduces the §5.1 discussion of SPIN's three exploration modes:
// exhaustive search, bit-state hashing (partial search with far less
// memory), and random simulation (the development mode, "more effective
// in discovering bugs" than a faithful simulator because it randomizes
// every choice). Each mode runs over (a) a correct producer/consumer
// system scaled up until exhaustive search is expensive, and (b) the
// same system with a seeded race-dependent assertion bug.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "mc/ModelChecker.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <string>

using namespace esp;
using namespace esp::bench;

namespace {

/// N producers, one server, one consumer; the bug variant asserts a
/// property that only fails in one interleaving class.
std::string makeModel(unsigned Messages, bool SeedBug) {
  std::string Source = "const N = " + std::to_string(Messages) + ";\n";
  Source += R"(
channel reqC: record of { ret: int, v: int }
channel repC: record of { ret: int, v: int }
channel doneC: int
process clientA {
  $i = 0;
  while (i < N) {
    out( reqC, { @, i });
    in( repC, { @, $r });
    i = i + 1;
  }
  out( doneC, 1);
}
process clientB {
  $i = 0;
  while (i < N) {
    out( reqC, { @, i + 100 });
    in( repC, { @, $r });
    i = i + 1;
  }
  out( doneC, 2);
}
process server {
  $served = 0;
  $lastA = -1;
  while (true) {
    in( reqC, { $who, $v });
    served = served + 1;
)";
  if (SeedBug)
    // Fails only when B's first request is served before any of A's:
    // a race the depth-first developer run can easily miss.
    Source += "    assert(!(served == 1 && v >= 100));\n";
  Source += R"(
    out( repC, { who, v * 2 });
  }
}
process joiner {
  in( doneC, $a);
  in( doneC, $b);
  assert(a + b == 3);
}
)";
  return Source;
}

void runRow(const char *Label, const std::string &Model, SearchMode Mode,
            unsigned BitBits) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  std::unique_ptr<Program> Prog = Parser::parse(SM, Diags, "model", Model);
  if (!Prog || !checkProgram(*Prog, Diags)) {
    std::printf("compile error:\n%s", Diags.renderAll().c_str());
    return;
  }
  ModuleIR Module = lowerProgram(*Prog);
  McOptions Options;
  Options.Mode = Mode;
  Options.BitStateBits = BitBits;
  Options.MaxStates = 4'000'000;
  Options.SimulationRuns = 64;
  Options.CheckDeadlock = false; // server loops forever by design.
  McResult R = checkModel(Module, Options);
  const char *ModeName = Mode == SearchMode::Exhaustive ? "exhaustive"
                         : Mode == SearchMode::BitState ? "bit-state"
                                                        : "simulation";
  const char *Verdict =
      R.foundViolation()
          ? "BUG FOUND"
          : (R.Verdict == McVerdict::OK ? "proved safe" : "no bug seen");
  std::printf("%-28s %-11s %10llu %10llu %9.3f %9.2f  %s\n", Label,
              ModeName, static_cast<unsigned long long>(R.StatesExplored),
              static_cast<unsigned long long>(R.StatesStored), R.Seconds,
              R.MemoryBytes / 1024.0 / 1024.0, Verdict);
}

} // namespace

int main() {
  printHeader("Table: exploration modes (section 5.1)");
  std::printf("%-28s %-11s %10s %10s %9s %9s  %s\n", "system", "mode",
              "explored", "stored", "sec", "MB", "verdict");

  std::string Clean = makeModel(6, /*SeedBug=*/false);
  runRow("2 clients x 6 msgs, clean", Clean, SearchMode::Exhaustive, 0);
  runRow("2 clients x 6 msgs, clean", Clean, SearchMode::BitState, 18);
  runRow("2 clients x 6 msgs, clean", Clean, SearchMode::Simulation, 0);

  std::string Buggy = makeModel(6, /*SeedBug=*/true);
  runRow("same + seeded race bug", Buggy, SearchMode::Exhaustive, 0);
  runRow("same + seeded race bug", Buggy, SearchMode::BitState, 18);
  runRow("same + seeded race bug", Buggy, SearchMode::Simulation, 0);

  std::printf("\npaper: exhaustive explores everything; bit-state covers "
              "large spaces in\nbounded memory; randomized simulation "
              "finds most bugs during development.\n");
  return 0;
}

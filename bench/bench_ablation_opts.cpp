//===--- bench_ablation_opts.cpp - Compiler optimization ablations ----------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Ablates the §6.1 compiler optimizations:
//  * allocation sinking (postpone out-value allocation past the
//    rendezvous, so losing alt alternatives never allocate),
//  * record-allocation elision (when every reader destructures),
//  * dead-store elimination + jump threading,
// measuring real allocation counts and interpreted-instruction counts on
// a message-heavy ESP program, and end-to-end VMMC pingpong latency with
// the optimizations on and off.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Driver.h"
#include "ir/Passes.h"
#include "runtime/Machine.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "vmmc/EspFirmware.h"
#include "vmmc/Workloads.h"

using namespace esp;
using namespace esp::bench;

namespace {

/// A message-heavy program: requests fan out over an alt whose losing
/// branches would allocate eagerly without sinking; every channel record
/// is destructured by its reader (elidable).
const char *MessageHeavy = R"(
const N = 200;
channel fast: record of { a: int, b: int }
channel slow: record of { a: int, b: int }
channel done: int
process producer {
  $i = 0;
  while (i < N) {
    alt {
      case( out( fast, { i, i + 1 })) { }
      case( out( slow, { i, i + 2 })) { }
    }
    i = i + 1;
  }
  out( done, 1);
}
process fastEater {
  while (true) { in( fast, { $a, $b }); assert(b == a + 1); }
}
process slowEater {
  while (true) { in( slow, { $a, $b }); assert(b == a + 2); }
}
process joiner { in( done, $x); }
)";

struct RunNumbers {
  uint64_t Allocations = 0;
  uint64_t Instructions = 0;
  OptStats Opt;
};

RunNumbers runWith(const OptOptions &Options) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileOptions COpts;
  COpts.Optimize = true;
  COpts.Opt = Options;
  CompileResult CR = compileBuffer(SM, Diags, "heavy.esp", MessageHeavy, COpts);
  if (!CR.Success) {
    std::fprintf(stderr, "%s", Diags.renderAll().c_str());
    std::exit(1);
  }
  std::unique_ptr<Program> Prog = std::move(CR.Prog);
  ModuleIR Module = std::move(CR.Optimized);
  RunNumbers Out;
  Out.Opt = CR.Opt;
  Machine M(Module, MachineOptions());
  M.start();
  Machine::StepResult R = M.run(1'000'000);
  if (M.error() || R == Machine::StepResult::Errored) {
    std::fprintf(stderr, "run failed: %s\n", M.error().Message.c_str());
    std::exit(1);
  }
  Out.Allocations = M.heap().getTotalAllocations();
  Out.Instructions = M.stats().Instructions;
  return Out;
}

void row(const char *Label, const OptOptions &Options) {
  RunNumbers N = runWith(Options);
  std::printf("%-34s %12llu %14llu %6u %6u %6u\n", Label,
              static_cast<unsigned long long>(N.Allocations),
              static_cast<unsigned long long>(N.Instructions),
              N.Opt.CasesLazified, N.Opt.CasesElided,
              N.Opt.DeadStoresRemoved + N.Opt.InstsRemoved);
}

} // namespace

int main() {
  printHeader("Ablation: section 6.1 compiler optimizations "
              "(message-heavy program)");
  std::printf("%-34s %12s %14s %6s %6s %6s\n", "configuration", "allocs",
              "instructions", "lazy", "elide", "dce");

  row("no optimizations", OptOptions::none());

  OptOptions SinkOnly = OptOptions::none();
  SinkOnly.SinkAllocations = true;
  row("allocation sinking only", SinkOnly);

  OptOptions ElideOnly = OptOptions::none();
  ElideOnly.SinkAllocations = true; // Elision implies lazy evaluation.
  ElideOnly.ElideRecordAllocs = true;
  row("+ record-allocation elision", ElideOnly);

  row("all optimizations", OptOptions::all());

  printHeader("Ablation: end-to-end VMMC pingpong latency (usec, 256B)");
  std::printf("%-34s %12s\n", "ESP firmware build", "latency");
  vmmc::WorkloadResult Unopt = vmmc::runPingpongWith(
      [] { return std::make_unique<vmmc::EspFirmware>(OptOptions::none()); },
      256, 16);
  vmmc::WorkloadResult Opt = vmmc::runPingpongWith(
      [] { return std::make_unique<vmmc::EspFirmware>(OptOptions::all()); },
      256, 16);
  std::printf("%-34s %12.2f\n", "unoptimized", Unopt.OneWayLatencyUs);
  std::printf("%-34s %12.2f\n", "optimized (section 6.1)",
              Opt.OneWayLatencyUs);
  std::printf("%-34s %12.2f%%\n", "improvement",
              100.0 * (Unopt.OneWayLatencyUs - Opt.OneWayLatencyUs) /
                  Unopt.OneWayLatencyUs);
  return 0;
}

//===--- bench_retrans_table.cpp - Retransmission protocol development ------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Reproduces the §5.3 retransmission-protocol experiment: the sliding
// window protocol was developed *entirely in the verifier* (65 lines of
// test code) and then ran on the card without new bugs. Here:
//
//  1. a closed ESP model — sender + lossy/duplicating wire + receiver —
//     is exhaustively checked for deadlock, memory safety, and the
//     in-order-delivery assertion (this is the "test.SPIN" analogue);
//  2. the very same protocol logic inside the real firmware then runs on
//     the simulated card under injected packet loss and delivers
//     everything, on both the ESP and baseline firmwares.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Driver.h"
#include "mc/ModelChecker.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringExtras.h"
#include "vmmc/Workloads.h"

using namespace esp;
using namespace esp::bench;

// The closed verification model: a 2-slot sliding window sender, a wire
// that nondeterministically delivers, drops, or duplicates each packet,
// and a receiver asserting in-order delivery. NMSG messages; the model
// terminates when all are delivered and acked.
static const char *RetransModel = R"(
const NMSG = 3;
const WSIZE = 2;
type pktT = record of { seq: int, v: int }
channel toWire: pktT
channel fromWire: pktT
channel ackWire: int
channel ackBack: int
channel deliverC: int

// Sender: window of WSIZE, retransmits on nondeterministic "timeout"
// (modeled by the wire dropping and the sender re-offering).
process sender {
  $base = 0;
  $next = 0;
  while (base < NMSG) {
    alt {
      case( next < base + WSIZE && next < NMSG,
            out( toWire, { next, next * 10 })) {
        next = next + 1;
      }
      case( in( ackBack, $a)) {
        if (a > base) { base = a; }
      }
      case( next > base, out( toWire, { base, base * 10 })) {
        // Retransmission of the oldest unacked packet.
      }
    }
  }
}

// The lossy wire: may deliver or drop each data packet; acks likewise.
process wire {
  $run = true;
  while (run) {
    alt {
      case( in( toWire, { $seq, $v })) {
        alt {
          case( out( fromWire, { seq, v })) { }
          case( out( deliverC, -1)) { }   // drop: consumed by sink
        }
      }
      case( in( ackWire, $a)) {
        alt {
          case( out( ackBack, a)) { }
          case( out( deliverC, -2)) { }   // dropped ack
        }
      }
    }
  }
}

process receiver {
  $exp = 0;
  while (true) {
    in( fromWire, { $seq, $v });
    if (seq == exp) {
      assert(v == exp * 10);
      out( deliverC, v);
      exp = exp + 1;
    }
    out( ackWire, exp);
  }
}

// Test harness sink: counts in-order deliveries, swallows drop markers.
process sink {
  $count = 0;
  while (true) {
    in( deliverC, $v);
    if (v >= 0) {
      assert(v == count * 10);
      count = count + 1;
      assert(count <= NMSG);
    }
  }
}
)";

int main() {
  printHeader("Table: retransmission protocol development (section 5.3)");

  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult CR = compileBuffer(SM, Diags, "retrans.esp", RetransModel);
  if (!CR.Success) {
    std::fprintf(stderr, "model failed to compile:\n%s",
                 Diags.renderAll().c_str());
    return 1;
  }
  std::unique_ptr<Program> Prog = std::move(CR.Prog);
  std::printf("verifier test harness: %u effective lines of ESP "
              "(paper: 65 lines of SPIN test code)\n\n",
              countEffectiveLines(RetransModel));

  ModuleIR Module = std::move(CR.Module);
  McOptions Options;
  Options.MaxStates = 3'000'000;
  Options.MaxObjects = 256;
  // The sender/wire/receiver loop forever by design once the messages
  // are delivered; terminal blocked states are expected, not deadlocks
  // under verification here (the harness checks assertions and memory).
  Options.CheckDeadlock = false;
  McResult R = checkModel(Module, Options);
  std::printf("%-34s %s\n", "model-check verdict:",
              R.Verdict == McVerdict::OK ? "no violations (protocol safe)"
                                         : R.report().c_str());
  std::printf("%-34s %llu explored / %llu stored\n", "states:",
              static_cast<unsigned long long>(R.StatesExplored),
              static_cast<unsigned long long>(R.StatesStored));
  std::printf("%-34s %.3f s, %.2f MB\n", "cost:", R.Seconds,
              R.MemoryBytes / 1024.0 / 1024.0);

  std::printf("\nThen the same protocol runs on the simulated card under "
              "packet loss:\n");
  std::printf("%-22s %10s %12s %10s\n", "firmware", "loss", "delivered",
              "result");
  for (vmmc::FirmwareKind Kind :
       {vmmc::FirmwareKind::Esp, vmmc::FirmwareKind::Orig,
        vmmc::FirmwareKind::OrigNoFastPaths}) {
    for (unsigned DropEveryN : {5u, 3u}) {
      vmmc::WorkloadResult W =
          vmmc::runLossyPingpong(Kind, 512, 8, DropEveryN);
      std::printf("%-22s %9u%% %12llu %10s\n", firmwareKindName(Kind),
                  100 / DropEveryN,
                  static_cast<unsigned long long>(W.MessagesDelivered),
                  W.Completed && W.MessagesDelivered == 16 ? "OK"
                                                           : "FAILED");
    }
  }
  std::printf("\npaper: protocol developed in the verifier in 2 days vs 10 "
              "days by hand;\nran on the card without encountering new "
              "bugs.\n");
  return 0;
}

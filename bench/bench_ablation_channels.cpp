//===--- bench_ablation_channels.cpp - Channel runtime microbenchmarks ------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Microbenchmarks of the channel runtime backing the §6.1 design
// discussion: blocking at an alt must be cheap regardless of how many
// alternatives it has (the paper's per-process bitmask scheme vs
// per-pattern wait queues). Uses google-benchmark to time rendezvous
// throughput as the number of alt cases and the number of competing
// writers grows; near-flat per-rendezvous cost supports the bitmask
// design.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "runtime/Machine.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

using namespace esp;

namespace {

/// One consumer blocking on an alt over \p NumChannels channels; one
/// producer cycling over them. Measures rendezvous cost vs alt width.
std::string makeAltWidthProgram(unsigned NumChannels, unsigned Messages) {
  std::string Source = "const N = " + std::to_string(Messages) + ";\n";
  for (unsigned I = 0; I != NumChannels; ++I)
    Source += "channel c" + std::to_string(I) + ": int\n";
  Source += "channel done: int\n";
  Source += "process producer {\n  $i = 0;\n  while (i < N) {\n";
  Source += "    $which = i % " + std::to_string(NumChannels) + ";\n";
  for (unsigned I = 0; I != NumChannels; ++I)
    Source += "    if (which == " + std::to_string(I) + ") { out(c" +
              std::to_string(I) + ", i); }\n";
  Source += "    i = i + 1;\n  }\n  out(done, 1);\n}\n";
  Source += "process consumer {\n  while (true) {\n    alt {\n";
  for (unsigned I = 0; I != NumChannels; ++I)
    Source += "      case( in( c" + std::to_string(I) + ", $v)) { }\n";
  Source += "    }\n  }\n}\n";
  Source += "process joiner { in(done, $x); }\n";
  return Source;
}

/// \p NumWriters producers all write one channel; one reader drains.
std::string makeWriterFanProgram(unsigned NumWriters, unsigned Messages) {
  std::string Source = "const N = " + std::to_string(Messages) + ";\n";
  Source += "channel c: int\nchannel done: int\n";
  for (unsigned W = 0; W != NumWriters; ++W) {
    Source += "process writer" + std::to_string(W) + " {\n";
    Source += "  $i = 0;\n  while (i < N) { out(c, i); i = i + 1; }\n";
    Source += "  out(done, 1);\n}\n";
  }
  Source += "process reader { while (true) { in(c, $v); } }\n";
  Source += "process joiner {\n  $n = 0;\n  while (n < " +
            std::to_string(NumWriters) +
            ") { in(done, $x); n = n + 1; }\n}\n";
  return Source;
}

struct Compiled {
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<Program> Prog;
  ModuleIR Module;
};

std::unique_ptr<Compiled> compileSource(const std::string &Source) {
  auto C = std::make_unique<Compiled>();
  C->Diags = std::make_unique<DiagnosticEngine>(C->SM);
  CompileResult R = compileBuffer(C->SM, *C->Diags, "bench.esp", Source);
  if (!R.Success) {
    std::fprintf(stderr, "%s", C->Diags->renderAll().c_str());
    std::exit(1);
  }
  C->Prog = std::move(R.Prog);
  C->Module = std::move(R.Module);
  return C;
}

void BM_AltWidth(benchmark::State &State) {
  unsigned Width = static_cast<unsigned>(State.range(0));
  unsigned Messages = 512;
  auto C = compileSource(makeAltWidthProgram(Width, Messages));
  uint64_t Rendezvous = 0;
  for (auto _ : State) {
    Machine M(C->Module, MachineOptions());
    M.start();
    Machine::StepResult R = M.run(1'000'000);
    if (R != Machine::StepResult::Quiescent &&
        R != Machine::StepResult::Halted)
      State.SkipWithError("machine did not finish");
    Rendezvous = M.stats().Rendezvous;
  }
  State.counters["rendezvous"] = static_cast<double>(Rendezvous);
  State.counters["ns_per_rendezvous"] = benchmark::Counter(
      static_cast<double>(Rendezvous) * State.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_AltWidth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_WriterFan(benchmark::State &State) {
  unsigned Writers = static_cast<unsigned>(State.range(0));
  unsigned Messages = 512 / Writers;
  auto C = compileSource(makeWriterFanProgram(Writers, Messages));
  for (auto _ : State) {
    Machine M(C->Module, MachineOptions());
    M.start();
    Machine::StepResult R = M.run(1'000'000);
    if (R != Machine::StepResult::Quiescent &&
        R != Machine::StepResult::Halted)
      State.SkipWithError("machine did not finish");
  }
}
BENCHMARK(BM_WriterFan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Rendezvous ping: two processes bouncing a token; the tightest channel
/// loop, dominated by context switch + transfer cost.
void BM_RendezvousPing(benchmark::State &State) {
  auto C = compileSource(R"(
const N = 1024;
channel ping: int
channel pong: int
process a {
  $i = 0;
  while (i < N) { out(ping, i); in(pong, $r); i = i + 1; }
}
process b {
  $i = 0;
  while (i < N) { in(ping, $v); out(pong, v + 1); i = i + 1; }
}
)");
  for (auto _ : State) {
    Machine M(C->Module, MachineOptions());
    M.start();
    if (M.run(1'000'000) != Machine::StepResult::Halted)
      State.SkipWithError("machine did not halt");
  }
}
BENCHMARK(BM_RendezvousPing);

} // namespace

BENCHMARK_MAIN();

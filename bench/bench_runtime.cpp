//===--- bench_runtime.cpp - Runtime fast-path states/sec + latency ---------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Quantifies the runtime fast path (precompiled dispatch, per-channel
// blocked bitmasks + pattern prefilter, heap free lists; see
// docs/runtime.md): model-checker throughput in states/sec on the VMMC
// firmware's per-process safety harnesses, and the Figure 5(a) pingpong
// latency over the same Machine. Small searches are looped in-process so
// the states/sec figure is stable; the search counts themselves are the
// determinism goldens (tests/test_determinism.cpp) and must not move.
//
// Results are emitted to BENCH_runtime.json. `--quick` trims repeats and
// the latency sweep for the CI smoke job.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "driver/Driver.h"
#include "mc/SafetyHarness.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "vmmc/EspFirmwareSource.h"
#include "vmmc/Workloads.h"

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

using namespace esp;
using namespace esp::bench;

namespace {

struct JsonRow {
  std::string Section;
  std::string Name;
  std::string Config;
  double Value = 0;       // states/sec or usec
  std::string Unit;
  uint64_t Explored = 0;  // per single search (0 for latency rows)
  uint64_t Stored = 0;
  uint64_t Transitions = 0;
  unsigned Repeats = 1;
  std::string Verdict;
};

std::vector<JsonRow> JsonRows;

void writeJson(bool Quick) {
  std::FILE *Out = std::fopen("BENCH_runtime.json", "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
    return;
  }
  std::fprintf(Out, "{\n  \"bench\": \"runtime\",\n  \"quick\": %s,\n"
                    "  \"rows\": [\n",
               Quick ? "true" : "false");
  for (size_t I = 0; I != JsonRows.size(); ++I) {
    const JsonRow &Row = JsonRows[I];
    std::fprintf(Out,
                 "    {\"section\": \"%s\", \"name\": \"%s\", "
                 "\"config\": \"%s\", \"value\": %.2f, \"unit\": \"%s\", "
                 "\"states_explored\": %llu, \"states_stored\": %llu, "
                 "\"transitions\": %llu, \"repeats\": %u, "
                 "\"verdict\": \"%s\"}%s\n",
                 Row.Section.c_str(), Row.Name.c_str(), Row.Config.c_str(),
                 Row.Value, Row.Unit.c_str(),
                 static_cast<unsigned long long>(Row.Explored),
                 static_cast<unsigned long long>(Row.Stored),
                 static_cast<unsigned long long>(Row.Transitions),
                 Row.Repeats, Row.Verdict.c_str(),
                 I + 1 == JsonRows.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("\nwrote BENCH_runtime.json (%zu rows)\n", JsonRows.size());
}

/// Run one per-process safety search `Repeats` times and report aggregate
/// states/sec. Small searches (pageTable is 221 states) finish in well
/// under a millisecond, so a single run is all timer noise; the counts of
/// every repeat must agree (canonical purity) and are printed once.
void throughputRow(const Program &Prog, const char *ProcName,
                   uint64_t MaxStates, unsigned Repeats) {
  uint64_t Explored = 0, Stored = 0, Transitions = 0;
  double Seconds = 0;
  std::string Verdict = "ok";
  for (unsigned I = 0; I != Repeats; ++I) {
    SafetyOptions Options;
    Options.IntDomain = {0, 1};
    Options.Mc.MaxObjects = 128;
    if (MaxStates)
      Options.Mc.MaxStates = MaxStates;
    McResult R = verifyProcessMemorySafety(Prog, ProcName, Options);
    Seconds += R.Seconds;
    if (I == 0) {
      Explored = R.StatesExplored;
      Stored = R.StatesStored;
      Transitions = R.Transitions;
      Verdict = R.foundViolation()           ? "violation"
                : R.Verdict == McVerdict::OK ? "ok"
                                             : "partial";
    } else if (R.StatesExplored != Explored || R.StatesStored != Stored ||
               R.Transitions != Transitions) {
      std::fprintf(stderr, "%s: counts drifted across repeats\n", ProcName);
      std::exit(1);
    }
  }
  double StatesPerSec =
      Seconds > 0 ? static_cast<double>(Explored) * Repeats / Seconds : 0;
  std::string Config =
      MaxStates ? "bounded@" + std::to_string(MaxStates) : "exhaustive";
  std::printf("%-12s %-16s %10llu %10llu %11llu %4u %12.0f  %s\n", ProcName,
              Config.c_str(), static_cast<unsigned long long>(Explored),
              static_cast<unsigned long long>(Stored),
              static_cast<unsigned long long>(Transitions), Repeats,
              StatesPerSec, Verdict.c_str());
  JsonRows.push_back({"mc_throughput", ProcName, Config, StatesPerSec,
                      "states_per_sec", Explored, Stored, Transitions,
                      Repeats, Verdict});
}

void latencyRow(uint32_t Size, unsigned Roundtrips) {
  vmmc::WorkloadResult Esp =
      vmmc::runPingpong(vmmc::FirmwareKind::Esp, Size, Roundtrips);
  vmmc::WorkloadResult Orig =
      vmmc::runPingpong(vmmc::FirmwareKind::Orig, Size, Roundtrips);
  if (!Esp.Completed || !Orig.Completed) {
    std::printf("%8s  INCOMPLETE\n", sizeLabel(Size).c_str());
    std::exit(1);
  }
  std::printf("%8s %12.2f %12.2f %10.2f\n", sizeLabel(Size).c_str(),
              Esp.OneWayLatencyUs, Orig.OneWayLatencyUs,
              Esp.OneWayLatencyUs / Orig.OneWayLatencyUs);
  JsonRows.push_back({"fig5a_latency", "vmmcESP", sizeLabel(Size),
                      Esp.OneWayLatencyUs, "usec", 0, 0, 0, Roundtrips,
                      "completed"});
  JsonRows.push_back({"fig5a_latency", "vmmcOrig", sizeLabel(Size),
                      Orig.OneWayLatencyUs, "usec", 0, 0, 0, Roundtrips,
                      "completed"});
}

/// Host-time cost of the fig5a pingpong: wall-clock microseconds per
/// round trip over many iterations, so firmware construction amortizes
/// out and the Machine stepping cost dominates. The simulated latencies
/// above are invariant under the fast path (the simulator's clock is
/// deterministic); this row is where the engine speedup shows.
void hostTimeRow(vmmc::FirmwareKind Kind, uint32_t Size, unsigned Roundtrips) {
  auto Start = std::chrono::steady_clock::now();
  vmmc::WorkloadResult R = vmmc::runPingpong(Kind, Size, Roundtrips);
  auto End = std::chrono::steady_clock::now();
  if (!R.Completed) {
    std::printf("%8s  INCOMPLETE\n", sizeLabel(Size).c_str());
    std::exit(1);
  }
  double TotalUs =
      std::chrono::duration<double, std::micro>(End - Start).count();
  double UsPerRt = TotalUs / Roundtrips;
  std::printf("%-10s %8s %8u %14.2f %16.3f\n", vmmc::firmwareKindName(Kind),
              sizeLabel(Size).c_str(), Roundtrips, TotalUs / 1000.0, UsPerRt);
  JsonRows.push_back({"fig5a_host_time", vmmc::firmwareKindName(Kind),
                      sizeLabel(Size), UsPerRt, "host_usec_per_roundtrip", 0,
                      0, 0, Roundtrips, "completed"});
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0) {
      Quick = true;
    } else {
      std::fprintf(stderr, "usage: bench_runtime [--quick]\n");
      return 2;
    }
  }

  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R =
      compileBuffer(SM, Diags, "vmmc.esp", vmmc::getVmmcEspSource());
  if (!R.Success) {
    std::fprintf(stderr, "firmware failed to compile:\n%s",
                 Diags.renderAll().c_str());
    return 1;
  }

  printHeader("Model-checker throughput (VMMC per-process safety harness)");
  std::printf("%-12s %-16s %10s %10s %11s %4s %12s  %s\n", "process",
              "config", "explored", "stored", "transitions", "reps",
              "states/s", "verdict");
  // pageTable is the acceptance-criterion search: 221 states, so it is
  // looped many times; the larger bounded searches need fewer repeats.
  throughputRow(*R.Prog, "pageTable", 0, Quick ? 50 : 400);
  throughputRow(*R.Prog, "userReq", 0, Quick ? 20 : 150);
  throughputRow(*R.Prog, "deliver", 0, Quick ? 50 : 400);
  throughputRow(*R.Prog, "txWindow", 50'000, Quick ? 2 : 10);
  throughputRow(*R.Prog, "rxDemux", 50'000, Quick ? 2 : 10);

  printHeader("Figure 5(a) pingpong one-way latency (usec) over the same "
              "Machine");
  std::printf("%8s %12s %12s %10s\n", "size", "vmmcESP", "vmmcOrig",
              "ESP/Orig");
  std::vector<uint32_t> Sizes =
      Quick ? std::vector<uint32_t>{4, 4096} : latencySizes();
  for (uint32_t Size : Sizes)
    latencyRow(Size, 24);

  printHeader("Host wall-clock per pingpong round trip (engine cost)");
  std::printf("%-10s %8s %8s %14s %16s\n", "firmware", "size", "reps",
              "total ms", "usec/roundtrip");
  unsigned HostReps = Quick ? 300 : 2000;
  hostTimeRow(vmmc::FirmwareKind::Esp, 4, HostReps);
  hostTimeRow(vmmc::FirmwareKind::Esp, 4096, HostReps);
  hostTimeRow(vmmc::FirmwareKind::Orig, 4, HostReps);

  writeJson(Quick);
  return 0;
}

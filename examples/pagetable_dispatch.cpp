//===--- pagetable_dispatch.cpp - Pattern dispatch + external interfaces ------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// The paper's Appendix B page-table scenario: one request channel whose
// union messages are dispatched *by pattern* to two different processes
// (§4.2), with the host side implemented as external C++ bindings using
// the paper's IsReady/per-case protocol (§4.5).
//
// Build and run:  ./build/examples/pagetable_dispatch
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "ir/Passes.h"
#include "runtime/Machine.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <deque>
#include <vector>

using namespace esp;

static const char *Source = R"(
const PTSIZE = 16;
type lookupT = record of { vPage: int }
type updateT = record of { vPage: int, pPage: int }
type userT = union of { lookup: lookupT, update: updateT }

channel userReqC: userT
interface UserReq(out userReqC) {
  Lookup( { lookup |> { $vPage } } ),
  Update( { update |> { $vPage, $pPage } } )
}
channel resultC: int
interface Result(in resultC) { Translated( $pPage ) }

// Translation requests are dispatched here by the `lookup` pattern.
process translator {
  while (true) {
    in( userReqC, { lookup |> { $vPage } });
    out( ptReqC, { @, vPage });
    in( ptReplyC, { @, $pPage });
    out( resultC, pPage);
  }
}

// Updates are dispatched directly to the page table (Appendix B).
process pageTable {
  $table: #array of int = #{ PTSIZE -> 0 };
  while (true) {
    alt {
      case( in( ptReqC, { $ret, $vPage })) {
        out( ptReplyC, { ret, table[vPage % PTSIZE] });
      }
      case( in( userReqC, { update |> { $vPage, $pPage }})) {
        table[vPage % PTSIZE] = pPage;
      }
    }
  }
}

channel ptReqC: record of { ret: int, vPage: int }
channel ptReplyC: record of { ret: int, pPage: int }
)";

namespace {

struct HostRequest {
  bool IsLookup;
  int64_t VPage;
  int64_t PPage;
};

/// The host side of UserReq: the paper's UserReqIsReady/UserReqSend/
/// UserReqUpdate trio as one binding object.
class HostDriver : public ExternalWriter {
public:
  std::deque<HostRequest> Queue;
  int isReady() override {
    if (Queue.empty())
      return 0;
    return Queue.front().IsLookup ? 1 : 2;
  }
  void produce(int CaseIndex, Heap &, std::vector<Value> &Out) override {
    const HostRequest &Req = Queue.front();
    Out.push_back(Value::makeInt(Req.VPage));
    if (CaseIndex == 2)
      Out.push_back(Value::makeInt(Req.PPage));
  }
  void accepted(int) override { Queue.pop_front(); }
};

class ResultCollector : public ExternalReader {
public:
  std::vector<int64_t> Results;
  bool isReady() override { return true; }
  void consume(int, Heap &, const std::vector<Value> &Args) override {
    Results.push_back(Args[0].Scalar);
  }
};

} // namespace

int main() {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileOptions COpts;
  COpts.Optimize = true;
  CompileResult R = compileBuffer(SM, Diags, "pagetable.esp", Source, COpts);
  if (!R.Success) {
    std::fprintf(stderr, "compilation failed:\n%s",
                 Diags.renderAll().c_str());
    return 1;
  }
  std::unique_ptr<Program> Prog = std::move(R.Prog);
  ModuleIR Module = std::move(R.Optimized);
  Machine M(Module, MachineOptions());

  auto Driver = std::make_unique<HostDriver>();
  HostDriver *DriverPtr = Driver.get();
  auto Collector = std::make_unique<ResultCollector>();
  ResultCollector *CollectorPtr = Collector.get();
  M.bindWriter("UserReq", std::move(Driver));
  M.bindReader("Result", std::move(Collector));

  // Install a few mappings, then look them up. The updates and lookups
  // travel on the *same* channel; the union arm routes each message to
  // the right process without any explicit demultiplexer.
  DriverPtr->Queue.push_back({false, 3, 300});
  DriverPtr->Queue.push_back({false, 7, 700});
  DriverPtr->Queue.push_back({true, 3, 0});
  DriverPtr->Queue.push_back({true, 7, 0});
  DriverPtr->Queue.push_back({true, 5, 0});

  M.start();
  M.run(100000);
  if (M.error()) {
    std::fprintf(stderr, "runtime error: %s\n", M.error().Message.c_str());
    return 1;
  }

  std::printf("lookups returned:");
  for (int64_t R : CollectorPtr->Results)
    std::printf(" %lld", static_cast<long long>(R));
  std::printf("\n");
  bool OK = CollectorPtr->Results ==
            std::vector<int64_t>{300, 700, 0};
  std::printf("%s\n", OK ? "dispatch worked: updates and lookups routed "
                           "by pattern"
                         : "UNEXPECTED RESULTS");
  return OK ? 0 : 1;
}

//===--- quickstart.cpp - esplang quickstart example -------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// The smallest end-to-end tour of the public API: compile an ESP program
// (the paper's add5 process, §4.3, made self-checking), execute it on
// the ESP runtime, model-check it, and print the generated C and
// Promela targets' sizes (Figure 4's two outputs).
//
// Build and run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "codegen/CCodeGen.h"
#include "codegen/PromelaGen.h"
#include "driver/Driver.h"
#include "ir/Passes.h"
#include "mc/ModelChecker.h"
#include "runtime/Machine.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdio>

using namespace esp;

static const char *Source = R"(
// Three processes connected by two rendezvous channels (§4.2/§4.3).
channel c1: int
channel c2: int

process producer {
  $i = 0;
  while (i < 10) { out(c1, i); i = i + 1; }
}

process add5 {
  while (true) { in(c1, $x); out(c2, x + 5); }
}

process consumer {
  $n = 0;
  while (n < 10) { in(c2, $y); assert(y == n + 5); n = n + 1; }
}
)";

int main() {
  // 1. Compile: parse + semantic checks (types, patterns, channels).
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileOptions COpts;
  COpts.Optimize = true;
  CompileResult CR = compileBuffer(SM, Diags, "quickstart.esp", Source, COpts);
  if (!CR.Success) {
    std::fprintf(stderr, "compilation failed:\n%s",
                 Diags.renderAll().c_str());
    return 1;
  }
  std::unique_ptr<Program> Prog = std::move(CR.Prog);
  std::printf("compiled: %zu processes, %zu channels\n",
              Prog->Processes.size(), Prog->Channels.size());

  // 2. The driver lowered to the state-machine IR and optimized (§6.1).
  ModuleIR Module = std::move(CR.Optimized);
  OptStats Opt = CR.Opt;
  std::printf("optimized: %u dead stores removed, %u jumps threaded\n",
              Opt.DeadStoresRemoved, Opt.JumpsThreaded);

  // 3. Execute on the ESP runtime (stack-based scheduler, §6.1).
  Machine M(Module, MachineOptions());
  M.start();
  Machine::StepResult R = M.run(100000);
  if (M.error()) {
    std::fprintf(stderr, "runtime error: %s\n", M.error().Message.c_str());
    return 1;
  }
  std::printf("executed: %s, %llu rendezvous, %llu context switches\n",
              R == Machine::StepResult::Quiescent ? "quiescent" : "halted",
              (unsigned long long)M.stats().Rendezvous,
              (unsigned long long)M.stats().ContextSwitches);

  // 4. Verify: explore every interleaving (§5). The add5 server loops
  //    forever, so terminal blocked states are expected; check
  //    assertions and memory safety only.
  ModuleIR Unoptimized = std::move(CR.Module); // §5.2: translate early.
  McOptions Mc;
  Mc.CheckDeadlock = false;
  McResult Verification = checkModel(Unoptimized, Mc);
  std::printf("verified: %s (%llu states)\n",
              Verification.Verdict == McVerdict::OK ? "no violations"
                                                    : "VIOLATION",
              (unsigned long long)Verification.StatesExplored);

  // 5. The two Figure 4 targets.
  std::string CCode = generateC(Module);
  std::string Spin = generatePromela(*Prog);
  std::printf("generated: %zu bytes of C, %zu bytes of Promela\n",
              CCode.size(), Spin.size());
  return Verification.Verdict == McVerdict::OK ? 0 : 1;
}

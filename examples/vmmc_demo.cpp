//===--- vmmc_demo.cpp - The VMMC case study end to end -----------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Runs the full VMMC case study (§4.6/§6.2): the ESP firmware compiled
// from real ESP source and executing on the simulated Myrinet NIC,
// against the hand-written baseline with and without fast paths —
// delivering actual messages over the simulated wire, surviving packet
// loss through the verified retransmission protocol, and printing a
// miniature Figure 5(a).
//
// Build and run:  ./build/examples/vmmc_demo
//
// With --trace <file>, additionally runs a traced pingpong and writes a
// Chrome trace_event JSON of node 0's ESP firmware in simulated NIC
// time (load in chrome://tracing or Perfetto; see docs/observability.md).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "vmmc/EspFirmware.h"
#include "vmmc/EspFirmwareSource.h"
#include "vmmc/Workloads.h"

#include <cstdio>
#include <memory>
#include <string>

using namespace esp;
using namespace esp::vmmc;

int main(int Argc, char **Argv) {
  std::string TracePath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--trace" && I + 1 < Argc) {
      TracePath = Argv[++I];
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TracePath = Arg.substr(8);
    } else {
      std::fprintf(stderr, "usage: vmmc_demo [--trace <file>]\n");
      return 2;
    }
  }

  std::printf("VMMC firmware in ESP: %u lines of declarations + %u lines "
              "of process code\n\n",
              getVmmcEspDeclLines(), getVmmcEspProcessLines());

  std::printf("mini Figure 5(a): one-way pingpong latency (usec)\n");
  std::printf("%8s %10s %10s %10s\n", "size", "ESP", "Orig", "NoFastPath");
  for (uint32_t Size : {4u, 64u, 1024u, 4096u}) {
    WorkloadResult Esp = runPingpong(FirmwareKind::Esp, Size, 12);
    WorkloadResult Orig = runPingpong(FirmwareKind::Orig, Size, 12);
    WorkloadResult NoFp =
        runPingpong(FirmwareKind::OrigNoFastPaths, Size, 12);
    std::printf("%8u %10.2f %10.2f %10.2f\n", Size, Esp.OneWayLatencyUs,
                Orig.OneWayLatencyUs, NoFp.OneWayLatencyUs);
  }

  std::printf("\nretransmission under 25%% packet loss (verified protocol, "
              "section 5.3):\n");
  WorkloadResult Lossy =
      runLossyPingpong(FirmwareKind::Esp, 512, 8, /*DropEveryN=*/4);
  std::printf("  delivered %llu/16 messages: %s\n",
              (unsigned long long)Lossy.MessagesDelivered,
              Lossy.Completed ? "ok" : "FAILED");

  std::printf("\none-way bandwidth at 64KB:\n");
  WorkloadResult Bw = runOneWay(FirmwareKind::Esp, 65536, 16);
  std::printf("  vmmcESP: %.1f MB/s\n", Bw.BandwidthMBs);

  if (!TracePath.empty()) {
    // Trace node 0's firmware (the first one the factory builds) over a
    // 1KB pingpong; the firmware closes the trace when the simulator
    // tears it down.
    obs::TraceWriter Trace;
    bool TracedFirst = false;
    runPingpongWith(
        [&] {
          auto FW = std::make_unique<EspFirmware>();
          if (!TracedFirst) {
            TracedFirst = true;
            FW->enableTracing(Trace);
          }
          return FW;
        },
        1024, 12);
    if (!Trace.writeFile(TracePath)) {
      std::fprintf(stderr, "vmmc_demo: cannot write '%s'\n",
                   TracePath.c_str());
      return 1;
    }
    std::printf("\nwrote %zu trace events to %s\n", Trace.eventCount(),
                TracePath.c_str());
  }
  return Lossy.Completed ? 0 : 1;
}

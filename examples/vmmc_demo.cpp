//===--- vmmc_demo.cpp - The VMMC case study end to end -----------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Runs the full VMMC case study (§4.6/§6.2): the ESP firmware compiled
// from real ESP source and executing on the simulated Myrinet NIC,
// against the hand-written baseline with and without fast paths —
// delivering actual messages over the simulated wire, surviving packet
// loss through the verified retransmission protocol, and printing a
// miniature Figure 5(a).
//
// Build and run:  ./build/examples/vmmc_demo
//
//===----------------------------------------------------------------------===//

#include "vmmc/EspFirmwareSource.h"
#include "vmmc/Workloads.h"

#include <cstdio>

using namespace esp;
using namespace esp::vmmc;

int main() {
  std::printf("VMMC firmware in ESP: %u lines of declarations + %u lines "
              "of process code\n\n",
              getVmmcEspDeclLines(), getVmmcEspProcessLines());

  std::printf("mini Figure 5(a): one-way pingpong latency (usec)\n");
  std::printf("%8s %10s %10s %10s\n", "size", "ESP", "Orig", "NoFastPath");
  for (uint32_t Size : {4u, 64u, 1024u, 4096u}) {
    WorkloadResult Esp = runPingpong(FirmwareKind::Esp, Size, 12);
    WorkloadResult Orig = runPingpong(FirmwareKind::Orig, Size, 12);
    WorkloadResult NoFp =
        runPingpong(FirmwareKind::OrigNoFastPaths, Size, 12);
    std::printf("%8u %10.2f %10.2f %10.2f\n", Size, Esp.OneWayLatencyUs,
                Orig.OneWayLatencyUs, NoFp.OneWayLatencyUs);
  }

  std::printf("\nretransmission under 25%% packet loss (verified protocol, "
              "section 5.3):\n");
  WorkloadResult Lossy =
      runLossyPingpong(FirmwareKind::Esp, 512, 8, /*DropEveryN=*/4);
  std::printf("  delivered %llu/16 messages: %s\n",
              (unsigned long long)Lossy.MessagesDelivered,
              Lossy.Completed ? "ok" : "FAILED");

  std::printf("\none-way bandwidth at 64KB:\n");
  WorkloadResult Bw = runOneWay(FirmwareKind::Esp, 65536, 16);
  std::printf("  vmmcESP: %.1f MB/s\n", Bw.BandwidthMBs);
  return Lossy.Completed ? 0 : 1;
}

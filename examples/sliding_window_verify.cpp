//===--- sliding_window_verify.cpp - Develop with the verifier ---------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// The §5.3 development workflow: the retransmission protocol was written
// and debugged *inside the verifier* before ever touching the device.
// This example walks that path: a first protocol draft with a real bug
// (it frees the packet buffer as soon as it transmits, so a
// retransmission after loss touches freed memory), which the model
// checker catches with a counterexample trace; then the fixed protocol,
// which verifies cleanly and then executes.
//
// Build and run:  ./build/examples/sliding_window_verify
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "mc/ModelChecker.h"
#include "runtime/Machine.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <string>

using namespace esp;

/// Stop-and-wait protocol over a lossy wire. With KEEP_UNTIL_ACK == 0
/// the sender unlinks the payload right after the first transmission —
/// the injected bug; with 1 it unlinks only once acked.
static std::string makeProtocol(bool KeepUntilAck) {
  std::string Source = "const KEEP = ";
  Source += KeepUntilAck ? "1" : "0";
  Source += ";\n";
  Source += R"(
const NMSG = 2;
type pktT = record of { seq: int, data: array of int }
channel toWire: pktT
channel fromWire: pktT
channel ackC: int
channel trash: int

process sender {
  $seq = 0;
  while (seq < NMSG) {
    $payload: array of int = { 2 -> seq };
    out( toWire, { seq, payload });
    if (KEEP == 0) { unlink(payload); }   // BUG when the wire drops!
    $acked = false;
    while (!acked) {
      alt {
        case( in( ackC, $a)) {
          if (a == seq) { acked = true; }
        }
        case( out( toWire, { seq, payload })) {
          // Retransmission: touches `payload` again.
        }
      }
    }
    if (KEEP == 1) { unlink(payload); }
    seq = seq + 1;
  }
}

// The wire nondeterministically delivers or drops each packet.
process wire {
  while (true) {
    in( toWire, { $seq, $data });
    alt {
      case( out( fromWire, { seq, data })) { unlink(data); }
      case( out( trash, seq)) { unlink(data); }   // dropped
    }
  }
}

process receiver {
  $expected = 0;
  while (true) {
    in( fromWire, { $seq, $data });
    assert(data[0] == seq);
    unlink(data);
    if (seq == expected) { expected = expected + 1; }
    out( ackC, seq);
  }
}

process sink {
  while (true) { in( trash, $x); }
}
)";
  return Source;
}

static McResult verify(const std::string &Source, const char *Label) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult CR = compileBuffer(SM, Diags, Label, Source);
  if (!CR.Success) {
    std::fprintf(stderr, "compile failed:\n%s", Diags.renderAll().c_str());
    std::exit(1);
  }
  ModuleIR Module = std::move(CR.Module); // Unoptimized, §5.2.
  McOptions Options;
  Options.CheckDeadlock = false; // wire/receiver/sink loop forever.
  Options.MaxObjects = 64;
  McResult R = checkModel(Module, Options);
  std::printf("[%s] %s — %llu states explored\n", Label,
              R.foundViolation()
                  ? runtimeErrorKindName(R.Violation.Kind)
                  : "no violations",
              (unsigned long long)R.StatesExplored);
  if (R.foundViolation()) {
    std::printf("  counterexample (%zu moves):\n", R.Trace.size());
    for (const std::string &Step : R.Trace)
      std::printf("    %s\n", Step.c_str());
  }
  return R;
}

int main() {
  std::printf("Step 1: model-check the first draft (frees the payload "
              "right after the first send)\n");
  McResult Draft = verify(makeProtocol(false), "draft");
  if (!Draft.foundViolation()) {
    std::printf("expected the draft to fail!\n");
    return 1;
  }

  std::printf("\nStep 2: fix per the counterexample (keep the buffer "
              "until acked), re-verify\n");
  McResult Fixed = verify(makeProtocol(true), "fixed");
  if (Fixed.foundViolation())
    return 1;

  std::printf("\nStep 3: only now run the protocol (the paper ported to "
              "the card at this point;\nthe retransmission protocol ran "
              "without new bugs)\n");
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult CR = compileBuffer(SM, Diags, "fixed.esp", makeProtocol(true));
  std::unique_ptr<Program> Prog = std::move(CR.Prog);
  ModuleIR Module = std::move(CR.Module);
  Machine M(Module, MachineOptions());
  M.start();
  // The wire and receiver loop forever and the sender's retransmission
  // alternative is always enabled, so run until the sender process (index
  // 0) finishes its NMSG messages.
  uint64_t Steps = 0;
  while (M.proc(0).St != ProcState::Status::Done && Steps++ < 1'000'000 &&
         M.step() == Machine::StepResult::Progress)
    ;
  if (M.error()) {
    std::printf("runtime error: %s\n", M.error().Message.c_str());
    return 1;
  }
  bool SenderDone = M.proc(0).St == ProcState::Status::Done;
  std::printf("execution: sender %s after %llu rendezvous\n",
              SenderDone ? "delivered all messages and terminated"
                         : "still running",
              (unsigned long long)M.stats().Rendezvous);
  return SenderDone ? 0 : 1;
}

//===--- test_machine.cpp - Interpreter and scheduler tests -----------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

using namespace esp;
using namespace esp::test;

namespace {

/// A three-stage pipeline exercising rendezvous, while loops, and
/// assertions (the paper's add5 example, §4.3, made self-checking).
const char *PipelineSource = R"(
channel c1: int
channel c2: int
process producer {
  $i = 0;
  while (i < 5) { out(c1, i); i = i + 1; }
}
process add5 {
  $n = 0;
  while (n < 5) { in(c1, $x); out(c2, x + 5); n = n + 1; }
}
process consumer {
  $n = 0;
  while (n < 5) { in(c2, $y); assert(y == n + 5); n = n + 1; }
}
)";

TEST(Machine, PipelineRunsToCompletion) {
  auto C = compile(PipelineSource);
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  ASSERT_FALSE(M.error()) << M.error().Message;
  Machine::StepResult R = M.run(10000);
  EXPECT_EQ(R, Machine::StepResult::Halted) << M.error().Message;
  EXPECT_TRUE(M.allDone());
  EXPECT_GE(M.stats().Rendezvous, 10u); // 5 messages on each channel.
}

TEST(Machine, AssertionFailureIsReported) {
  auto C = compile(R"(
channel c: int
process a { out(c, 3); }
process b { in(c, $x); assert(x == 4); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  M.run(1000);
  EXPECT_EQ(M.error().Kind, RuntimeErrorKind::AssertFailed);
}

TEST(Machine, PatternDispatchRoutesToCorrectProcess) {
  // The paper's core dispatch idea: two processes receive from one
  // channel, selected by the union arm (§4.2).
  auto C = compile(R"(
type sendT = record of { dest: int, size: int }
type updateT = record of { vAddr: int, pAddr: int }
type userT = union of { send: sendT, update: updateT }
channel reqC: userT
channel sendDoneC: int
channel updateDoneC: int
process sender {
  in(reqC, { send |> { $dest, $size } });
  out(sendDoneC, dest + size);
}
process updater {
  in(reqC, { update |> { $vAddr, $pAddr } });
  out(updateDoneC, vAddr * 1000 + pAddr);
}
process driver {
  out(reqC, { update |> { 7, 99 } });
  out(reqC, { send |> { 3, 64 } });
  in(sendDoneC, $a);
  assert(a == 67);
  in(updateDoneC, $b);
  assert(b == 7099);
}
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  Machine::StepResult R = M.run(10000);
  EXPECT_EQ(R, Machine::StepResult::Halted) << M.error().Message;
}

TEST(Machine, ReplyDispatchByProcessId) {
  // `@` dispatch: two clients use one server; replies routed by id.
  auto C = compile(R"(
channel reqC: record of { ret: int, v: int }
channel replyC: record of { ret: int, v: int }
process clientA {
  out(reqC, { @, 10 });
  in(replyC, { @, $r });
  assert(r == 20);
}
process clientB {
  out(reqC, { @, 100 });
  in(replyC, { @, $r });
  assert(r == 200);
}
process server {
  $n = 0;
  while (n < 2) {
    in(reqC, { $who, $v });
    out(replyC, { who, v * 2 });
    n = n + 1;
  }
}
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  Machine::StepResult R = M.run(10000);
  EXPECT_EQ(R, Machine::StepResult::Halted) << M.error().Message;
}

TEST(Machine, FifoQueueWithGuards) {
  // The paper's guarded-alt FIFO queue (§4.2).
  auto C = compile(R"(
const SIZE = 4;
channel chan1: int
channel chan2: int
process fifo {
  $q: #array of int = #{ SIZE -> 0 };
  $hd = 0; $tl = 0; $cnt = 0;
  while (true) {
    alt {
      case( cnt < SIZE, in( chan1, $v)) { q[tl] = v; tl = (tl + 1) % SIZE; cnt = cnt + 1; }
      case( cnt > 0, out( chan2, q[hd])) { hd = (hd + 1) % SIZE; cnt = cnt - 1; }
    }
  }
}
process producer {
  $i = 0;
  while (i < 20) { out(chan1, i * 3); i = i + 1; }
}
process consumer {
  $i = 0;
  while (i < 20) { in(chan2, $v); assert(v == i * 3); i = i + 1; }
}
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  // The fifo process loops forever; producer and consumer finish. The
  // machine becomes quiescent with fifo blocked on an empty queue.
  Machine::StepResult R = M.run(100000);
  EXPECT_EQ(R, Machine::StepResult::Quiescent) << M.error().Message;
  EXPECT_FALSE(M.error());
}

TEST(Machine, MutableArrayUpdatesVisibleThroughAlias) {
  auto C = compile(R"(
channel done: int
process p {
  $a1: #array of int = #{ 8 -> 0 };
  $a2 = a1;
  a2[3] = 7;
  assert(a1[3] == 7);
  out(done, 1);
}
process q { in(done, $x); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(1000), Machine::StepResult::Halted) << M.error().Message;
}

TEST(Machine, UseAfterFreeDetected) {
  auto C = compile(R"(
channel done: int
process p {
  $a: #array of int = #{ 4 -> 0 };
  unlink(a);
  a[0] = 1;
  out(done, 1);
}
process q { in(done, $x); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  M.run(1000);
  EXPECT_EQ(M.error().Kind, RuntimeErrorKind::UseAfterFree);
}

TEST(Machine, DoubleUnlinkDetected) {
  auto C = compile(R"(
channel done: int
process p {
  $a: #array of int = #{ 4 -> 0 };
  unlink(a);
  unlink(a);
  out(done, 1);
}
process q { in(done, $x); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  M.run(1000);
  EXPECT_EQ(M.error().Kind, RuntimeErrorKind::UseAfterFree);
}

TEST(Machine, LinkKeepsObjectAlive) {
  auto C = compile(R"(
channel done: int
process p {
  $a: #array of int = #{ 4 -> 5 };
  link(a);
  unlink(a);
  assert(a[2] == 5);
  unlink(a);
  out(done, 1);
}
process q { in(done, $x); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(1000), Machine::StepResult::Halted) << M.error().Message;
}

TEST(Machine, SendSharesThenExplicitUnlinkFrees) {
  // The paper's SM1 idiom: send a record containing data, then unlink the
  // local reference (Appendix B).
  auto C = compile(R"(
type dataT = array of int
type msgT = record of { dest: int, data: dataT }
channel c: msgT
channel done: int
process sender {
  $data: dataT = { 16 -> 42 };
  out(c, { 9, data });
  unlink(data);
  out(done, 1);
}
process receiver {
  in(c, { $dest, $d });
  assert(dest == 9);
  assert(d[15] == 42);
  unlink(d);
}
process j { in(done, $x); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(10000), Machine::StepResult::Halted) << M.error().Message;
  // Everything should be freed: the record shell and the array.
  EXPECT_EQ(M.heap().getLiveCount(), 0u);
}

TEST(Machine, DeepCopyTransfersBehaveIdentically) {
  // Verification mode (deep copies) must produce the same observable
  // behaviour as the refcount-sharing execution mode.
  auto C = compile(R"(
type dataT = array of int
type msgT = record of { dest: int, data: dataT }
channel c: msgT
channel done: int
process sender {
  $data: dataT = { 16 -> 42 };
  out(c, { 9, data });
  unlink(data);
  out(done, 1);
}
process receiver {
  in(c, { $dest, $d });
  assert(dest == 9);
  assert(d[15] == 42);
  unlink(d);
}
process j { in(done, $x); }
)");
  ASSERT_TRUE(C);
  MachineOptions Options;
  Options.DeepCopyTransfers = true;
  Machine M(C->Module, Options);
  M.start();
  EXPECT_EQ(M.run(10000), Machine::StepResult::Halted) << M.error().Message;
  EXPECT_EQ(M.heap().getLiveCount(), 0u);
}

TEST(Machine, BoundedHeapExhaustionDetectsLeak) {
  // Leaking in a loop exhausts a bounded object table (§5.2's leak
  // detection through objectId exhaustion).
  auto C = compile(R"(
channel done: int
process leaky {
  $i = 0;
  while (i < 100) {
    $a: #array of int = #{ 4 -> 0 };
    i = i + 1;
  }
  out(done, 1);
}
process j { in(done, $x); }
)");
  ASSERT_TRUE(C);
  MachineOptions Options;
  Options.MaxObjects = 16;
  Machine M(C->Module, Options);
  M.start();
  M.run(10000);
  EXPECT_EQ(M.error().Kind, RuntimeErrorKind::OutOfObjects);
}

TEST(Machine, CastProducesIndependentCopy) {
  auto C = compile(R"(
channel done: int
process p {
  $m: #array of int = #{ 4 -> 1 };
  m[0] = 10;
  $frozen = cast(m);
  m[0] = 99;
  assert(frozen[0] == 10);
  unlink(m);
  unlink(frozen);
  out(done, 1);
}
process q { in(done, $x); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(1000), Machine::StepResult::Halted) << M.error().Message;
  EXPECT_EQ(M.heap().getLiveCount(), 0u);
}

TEST(Machine, DivisionByZeroDetected) {
  auto C = compile(R"(
channel c: int
process p { $x = 0; out(c, 10 / x); }
process q { in(c, $y); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  M.run(1000);
  EXPECT_EQ(M.error().Kind, RuntimeErrorKind::DivideByZero);
}

TEST(Machine, IndexOutOfBoundsDetected) {
  auto C = compile(R"(
channel c: int
process p { $a: #array of int = #{ 4 -> 0 }; out(c, a[9]); }
process q { in(c, $y); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  M.run(1000);
  EXPECT_EQ(M.error().Kind, RuntimeErrorKind::IndexOutOfBounds);
}

TEST(Machine, InvalidUnionFieldAccessDetected) {
  auto C = compile(R"(
type uT = union of { a: int, b: int }
channel c: uT
process p { out(c, { a |> 5 }); }
process q { in(c, $u); assert(u.b == 5); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  M.run(1000);
  EXPECT_EQ(M.error().Kind, RuntimeErrorKind::InvalidUnionField);
}

TEST(Machine, QuiescentWhenNoPartnerExists) {
  auto C = compile(R"(
channel c: int
channel d: int
process p { in(c, $x); out(d, x); }
process q { in(d, $y); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(1000), Machine::StepResult::Quiescent);
  EXPECT_FALSE(M.error());
}

TEST(Machine, StatsCountContextSwitches) {
  auto C = compile(PipelineSource);
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  M.run(10000);
  EXPECT_GT(M.stats().ContextSwitches, 0u);
  EXPECT_GT(M.stats().Instructions, 0u);
}

TEST(Machine, OptimizedModuleProducesSameResult) {
  OptOptions Options = OptOptions::all();
  auto C = compile(PipelineSource, &Options);
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(10000), Machine::StepResult::Halted) << M.error().Message;
}

/// Records every observer callback for assertion.
struct CountingObserver : MachineObserver {
  uint64_t Steps = 0;
  uint64_t Sends = 0;
  uint64_t Recvs = 0;
  uint64_t Allocs = 0;
  StepResult Last = StepResult::Progress;

  void onStep(const Machine &, StepResult Result) override {
    ++Steps;
    Last = Result;
  }
  void onSend(const Machine &, uint32_t, int) override { ++Sends; }
  void onRecv(const Machine &, uint32_t, int) override { ++Recvs; }
  void onAlloc(const Machine &, const Value &) override { ++Allocs; }
};

TEST(Machine, ObserverSeesStepsAndRendezvous) {
  auto C = compile(PipelineSource);
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  CountingObserver Obs;
  M.setObserver(&Obs);
  M.start();
  EXPECT_EQ(M.run(10000), StepResult::Halted);
  EXPECT_GT(Obs.Steps, 0u);
  EXPECT_EQ(Obs.Last, StepResult::Halted);
  // Ten rendezvous: five on c1, five on c2; each fires both callbacks.
  EXPECT_EQ(Obs.Sends, M.stats().Rendezvous);
  EXPECT_EQ(Obs.Recvs, M.stats().Rendezvous);
  EXPECT_EQ(Obs.Sends, 10u);
}

TEST(Machine, ObserverSeesAllocations) {
  const char *Source = R"(
type msgT = record of { a: int, b: int }
channel c: msgT
process w {
  $i = 0;
  while (i < 4) { out(c, { i, i }); i = i + 1; }
}
process r {
  $n = 0;
  while (n < 4) { in(c, { $a, $b }); n = n + 1; }
}
)";
  auto C = compile(Source);
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  CountingObserver Obs;
  M.setObserver(&Obs);
  M.start();
  EXPECT_EQ(M.run(10000), StepResult::Halted) << M.error().Message;
  EXPECT_EQ(Obs.Allocs, M.heap().getTotalAllocations());
  EXPECT_GT(Obs.Allocs, 0u);
}

TEST(Machine, StepResultIsTheNamespaceScopeEnum) {
  // Out-of-tree callers spell the result either way; both must compile
  // and agree.
  static_assert(std::is_same_v<Machine::StepResult, esp::StepResult>);
  auto C = compile(PipelineSource);
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  esp::StepResult R = M.step();
  EXPECT_TRUE(R == StepResult::Progress || R == StepResult::Quiescent);
}

} // namespace
